package svm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small assembly dialect into bytecode. Each line is
// `[label:] [mnemonic [operand]]`; `;` starts a comment; operands of the
// jump and call instructions may be labels. Example:
//
//	        push 10
//	        storeg 0
//	loop:   loadg 0
//	        jz done
//	        loadg 0
//	        push 1
//	        sub
//	        storeg 0
//	        jmp loop
//	done:   halt
func Assemble(src string) ([]Instr, error) {
	mnemonics := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		mnemonics[op.String()] = op
	}

	type pending struct {
		instr int
		label string
		line  int
	}
	var (
		prog    []Instr
		labels  = map[string]int{}
		fixups  []pending
		lineNum int
	)
	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Labels, possibly several, may prefix the instruction.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("svm: line %d: bad label %q", lineNum, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("svm: line %d: duplicate label %q", lineNum, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op, ok := mnemonics[strings.ToLower(fields[0])]
		if !ok {
			return nil, fmt.Errorf("svm: line %d: unknown mnemonic %q", lineNum, fields[0])
		}
		in := Instr{Op: op}
		switch {
		case op.hasOperand() && len(fields) == 2:
			if v, err := strconv.ParseInt(fields[1], 0, 64); err == nil {
				in.Arg = v
			} else {
				fixups = append(fixups, pending{instr: len(prog), label: fields[1], line: lineNum})
			}
		case op.hasOperand():
			return nil, fmt.Errorf("svm: line %d: %s requires an operand", lineNum, op)
		case len(fields) != 1:
			return nil, fmt.Errorf("svm: line %d: %s takes no operand", lineNum, op)
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("svm: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Arg = int64(target)
	}
	return prog, nil
}

// MustAssemble is Assemble for static programs; it panics on error.
func MustAssemble(src string) []Instr {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Disassemble renders bytecode back to assembler text, one instruction per
// line, prefixed with its address.
func Disassemble(prog []Instr) string {
	var b strings.Builder
	for i, in := range prog {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
