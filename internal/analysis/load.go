package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// golang.org/x/tools: package discovery and dependency compilation go
// through `go list -export`, and imports are resolved from the build
// cache's export data via the standard gc importer. Everything works
// offline — the module has no external dependencies.
type Loader struct {
	// RepoDir is the module root `go list` runs in.
	RepoDir string
	Fset    *token.FileSet

	imp types.Importer

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
}

// NewLoader returns a Loader rooted at the module directory.
func NewLoader(repoDir string) *Loader {
	l := &Loader{
		RepoDir: repoDir,
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -export -json` with the given arguments and records
// every returned package's export data location.
func (l *Loader) goList(args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Incomplete"}, args...)...)
	cmd.Dir = l.RepoDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	l.mu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()
	return pkgs, nil
}

// lookup resolves an import path to its export data, compiling it through
// `go list -export` on first use. It serves the gc importer, so it may be
// asked for indirect dependencies that earlier list calls did not cover.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if _, err := l.goList("--", path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (l *Loader) config() types.Config {
	return types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

// Load type-checks the module packages matching the go list patterns
// (test files excluded) and returns them in deterministic order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(append([]string{"-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Incomplete {
			return nil, fmt.Errorf("package %s did not compile", p.ImportPath)
		}
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := l.config()
		info := newInfo()
		tpkg, err := conf.Check(p.ImportPath, l.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath, Dir: p.Dir,
			Fset: l.Fset, Files: files, Types: tpkg, Info: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir type-checks the .go files of one bare directory that is not part
// of the module's package graph (analysistest fixtures, seeded-violation
// smoke files). Imports — including starfish packages — resolve through
// the same export-data path as Load.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := l.config()
	info := newInfo()
	tpkg, err := conf.Check(dir, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		PkgPath: dir, Dir: dir,
		Fset: l.Fset, Files: files, Types: tpkg, Info: info,
	}, nil
}
