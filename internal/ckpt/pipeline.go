package ckpt

import (
	"bytes"
	"fmt"
	"sync"

	"starfish/internal/wire"
)

// DefaultFullEvery is the full-image cadence: one full record, then
// FullEvery-1 delta records, then the next full record starts a new chain
// (and makes the old one garbage).
const DefaultFullEvery = 8

// Pipeline is the incremental checkpoint capture path: a Backend wrapper
// that turns per-epoch Put calls into content-addressed records over a
// ChunkedBackend.
//
//   - The first checkpoint of a rank (and every FullEvery-th after it) is a
//     full record: every 4 KiB block of the image, content-addressed.
//   - Checkpoints in between are delta records: the writer diffs the image
//     against its cached copy of the previous epoch (ComputeDelta's block
//     rule) and stores only the changed blocks plus a ~40-byte-per-block
//     envelope.
//   - Identical blocks are stored once: across epochs (unchanged blocks are
//     not even re-sent), and across ranks (the backend deduplicates by
//     content hash, so the code/globals segments every rank shares land in
//     the store a single time).
//   - GC is chain-aware: collecting up to a delta record is clamped down to
//     the record's full base so the chain stays reconstructable; once a new
//     full record commits, the previous chain is collected whole.
//
// Get reconstructs base + delta chain; backends that materialize chains
// themselves (RecordResolver, e.g. rstore's replica-side cache) are
// preferred so a restore from replicated memory stays pointer-speed.
//
// One Pipeline serves one application on one node; ranks are tracked
// independently. It is safe for concurrent use.
type Pipeline struct {
	inner ChunkedBackend
	// FullEvery is the full-record cadence; <=1 disables deltas entirely
	// (every epoch is a full record).
	fullEvery int

	// Observer, when non-nil, receives one EpochEvent per captured record.
	// It must be set before the first Put and must not block (the event
	// plane's emitters satisfy both). Defined here rather than taking an
	// event-store type because ckpt sits below evstore in the import
	// graph; the daemon adapts the callback onto its store.
	Observer func(EpochEvent)

	mu    sync.Mutex
	ranks map[wire.Rank]*rankState

	stats PipelineStats
}

// EpochEvent describes one captured checkpoint record.
type EpochEvent struct {
	App   wire.AppID
	Rank  wire.Rank
	Index uint64
	// Delta marks an incremental record; Base is the index it diffs
	// against (deltas only).
	Delta bool
	Base  uint64
	// ChainLen counts records since and including the chain's full base.
	ChainLen int
	// RawBytes is the image size; StoredBytes the envelope plus block
	// bytes actually written.
	RawBytes, StoredBytes int
}

// rankState is the writer-side capture cache of one rank.
type rankState struct {
	lastRaw   []byte // our own copy of the previous epoch's image
	lastIndex uint64 // checkpoint index of lastRaw
	sinceFull int    // records since (and including) the chain's full base
}

// PipelineStats counts capture-side work, the savings metric of the
// incremental pipeline.
type PipelineStats struct {
	Fulls, Deltas uint64
	// RawBytes is the total image bytes handed to Put; StoredBytes is the
	// envelope plus block bytes actually handed to the backend.
	RawBytes, StoredBytes uint64
}

var _ Backend = (*Pipeline)(nil)

// NewPipeline wraps a chunked backend in the incremental capture path.
// fullEvery <= 0 selects DefaultFullEvery.
func NewPipeline(inner ChunkedBackend, fullEvery int) *Pipeline {
	if fullEvery <= 0 {
		fullEvery = DefaultFullEvery
	}
	return &Pipeline{inner: inner, fullEvery: fullEvery, ranks: make(map[wire.Rank]*rankState)}
}

// Stats returns a snapshot of the capture counters.
func (p *Pipeline) Stats() PipelineStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Put captures checkpoint n of (app, rank) as a full or delta record,
// per the cadence policy.
func (p *Pipeline) Put(app wire.AppID, rank wire.Rank, n uint64, img []byte, meta *Meta) error {
	p.mu.Lock()
	st := p.ranks[rank]
	if st == nil {
		st = &rankState{}
		p.ranks[rank] = st
	}
	// A delta is only valid against the immediately preceding index; a gap
	// (restart, skipped epoch) restarts the chain with a full record.
	asDelta := p.fullEvery > 1 && st.lastRaw != nil &&
		st.lastIndex+1 == n && st.sinceFull < p.fullEvery
	base := st.lastIndex
	var baseRaw []byte
	if asDelta {
		baseRaw = st.lastRaw
	}
	p.mu.Unlock()

	var env []byte
	var blocks []RecBlock
	if asDelta {
		env, blocks = encodeDeltaEpoch(base, baseRaw, img)
	} else {
		env, blocks = encodeFullEpoch(img)
	}
	if err := p.inner.PutRecord(app, rank, n, env, blocks, meta); err != nil {
		return err
	}

	p.mu.Lock()
	// Cache our own copy: img belongs to the caller, and next epoch's diff
	// must not race the application mutating its state.
	if st.lastRaw == nil || cap(st.lastRaw) < len(img) {
		st.lastRaw = make([]byte, len(img))
	}
	st.lastRaw = st.lastRaw[:len(img)]
	copy(st.lastRaw, img)
	st.lastIndex = n
	if asDelta {
		st.sinceFull++
		p.stats.Deltas++
	} else {
		st.sinceFull = 1
		p.stats.Fulls++
	}
	p.stats.RawBytes += uint64(len(img))
	stored := len(env)
	for _, b := range blocks {
		stored += len(b.Data)
	}
	p.stats.StoredBytes += uint64(stored)
	chainLen := st.sinceFull
	p.mu.Unlock()
	if p.Observer != nil {
		p.Observer(EpochEvent{
			App: app, Rank: rank, Index: n,
			Delta: asDelta, Base: base, ChainLen: chainLen,
			RawBytes: len(img), StoredBytes: stored,
		})
	}
	return nil
}

// encodeFullEpoch builds a full record over every block of img. Block data
// aliases img (valid for the PutRecord call only, per the contract).
func encodeFullEpoch(img []byte) ([]byte, []RecBlock) {
	raw := SplitBlocks(img)
	refs := make([]BlockRef, len(raw))
	blocks := make([]RecBlock, 0, len(raw))
	seen := make(map[BlockID]bool, len(raw))
	for i, b := range raw {
		ref := BlockRef{ID: HashBlock(b), Len: uint32(len(b))}
		refs[i] = ref
		if !seen[ref.ID] {
			seen[ref.ID] = true
			blocks = append(blocks, RecBlock{Ref: ref, Data: b})
		}
	}
	return EncodeFullRecord(len(img), refs), blocks
}

// encodeDeltaEpoch builds a delta record holding only the blocks of next
// that differ from base (ComputeDelta's block rule, applied without the
// per-block copies — block data aliases next).
func encodeDeltaEpoch(baseIndex uint64, base, next []byte) ([]byte, []RecBlock) {
	var deltas []DeltaRef
	var blocks []RecBlock
	seen := make(map[BlockID]bool)
	nBlocks := (len(next) + DeltaBlockSize - 1) / DeltaBlockSize
	for i := 0; i < nBlocks; i++ {
		lo := i * DeltaBlockSize
		hi := min(lo+DeltaBlockSize, len(next))
		nb := next[lo:hi]
		if lo < len(base) {
			oldHi := min(lo+DeltaBlockSize, len(base))
			if ob := base[lo:oldHi]; len(ob) == len(nb) && bytes.Equal(ob, nb) {
				continue
			}
		}
		ref := BlockRef{ID: HashBlock(nb), Len: uint32(len(nb))}
		deltas = append(deltas, DeltaRef{Index: uint32(i), Ref: ref})
		if !seen[ref.ID] {
			seen[ref.ID] = true
			blocks = append(blocks, RecBlock{Ref: ref, Data: nb})
		}
	}
	return EncodeDeltaRecord(baseIndex, len(base), len(next), deltas), blocks
}

// Get reconstructs checkpoint n of (app, rank). Raw (pre-pipeline) images
// pass through untouched; record chains are resolved by the backend when it
// can (RecordResolver) and block-by-block otherwise.
func (p *Pipeline) Get(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error) {
	if rr, ok := p.inner.(RecordResolver); ok {
		return rr.ResolveRecord(app, rank, n)
	}
	env, meta, err := envelopeGet(p.inner, app, rank, n)
	if err != nil {
		return nil, nil, err
	}
	if !IsRecord(env) {
		return env, meta, nil
	}
	raw, err := ResolveChain(p.inner, app, rank, n, env)
	if err != nil {
		return nil, nil, err
	}
	return raw, meta, nil
}

// ResolveChain reconstructs the raw image behind record envelope env
// (checkpoint n of (app, rank)) by walking its delta chain back to the full
// base and replaying it forward. It is the generic, storage-agnostic
// resolver; backends with their own materialized chains need not use it.
func ResolveChain(be ChunkedBackend, app wire.AppID, rank wire.Rank, n uint64, env []byte) ([]byte, error) {
	// Walk back to the full base, collecting the chain (newest first).
	type link struct {
		n   uint64
		rec *Record
	}
	var chain []link
	for {
		rec, err := DecodeRecord(env)
		if err != nil {
			return nil, fmt.Errorf("%w: record #%d of app %d rank %d: %v",
				ErrBrokenChain, n, app, rank, err)
		}
		chain = append(chain, link{n, rec})
		if rec.Kind == RecFull {
			break
		}
		if rec.Base >= n {
			return nil, fmt.Errorf("%w: record #%d of app %d rank %d has non-descending base #%d",
				ErrBrokenChain, n, app, rank, rec.Base)
		}
		n = rec.Base
		var err2 error
		env, _, err2 = envelopeGet(be, app, rank, n)
		if err2 != nil {
			return nil, fmt.Errorf("%w: record #%d of app %d rank %d: %v",
				ErrBrokenChain, n, app, rank, err2)
		}
		if !IsRecord(env) {
			return nil, fmt.Errorf("%w: record #%d of app %d rank %d is not a record envelope",
				ErrBrokenChain, n, app, rank)
		}
	}

	// Assemble the full base, then replay the deltas forward.
	baseLink := chain[len(chain)-1]
	raw := make([]byte, baseLink.rec.RawLen)
	off := 0
	for _, ref := range baseLink.rec.Refs {
		if off+int(ref.Len) > len(raw) {
			return nil, fmt.Errorf("%w: full record #%d overruns image", ErrMissingBlock, baseLink.n)
		}
		b, err := fetchBlock(be, app, rank, ref)
		if err != nil {
			return nil, err
		}
		copy(raw[off:], b)
		off += int(ref.Len)
	}
	if off != len(raw) {
		return nil, fmt.Errorf("%w: full record #%d assembles %d of %d bytes",
			ErrMissingBlock, baseLink.n, off, len(raw))
	}
	for i := len(chain) - 2; i >= 0; i-- {
		rec := chain[i].rec
		if rec.RawLen != len(raw) {
			next := make([]byte, rec.RawLen)
			copy(next, raw[:min(len(raw), rec.RawLen)])
			raw = next
		}
		for _, d := range rec.Deltas {
			lo := int(d.Index) * DeltaBlockSize
			if lo+int(d.Ref.Len) > len(raw) {
				return nil, fmt.Errorf("%w: delta record #%d block %d overruns image",
					ErrMissingBlock, chain[i].n, d.Index)
			}
			b, err := fetchBlock(be, app, rank, d.Ref)
			if err != nil {
				return nil, err
			}
			copy(raw[lo:], b)
		}
	}
	return raw, nil
}

// fetchBlock gets one block and verifies its content address, so a corrupt
// or substituted block surfaces as ErrMissingBlock instead of silently
// restoring wrong state.
func fetchBlock(be ChunkedBackend, app wire.AppID, rank wire.Rank, ref BlockRef) ([]byte, error) {
	b, err := be.GetBlock(app, rank, ref)
	if err != nil {
		return nil, fmt.Errorf("%w: block %s: %v", ErrMissingBlock, ref.ID, err)
	}
	if uint32(len(b)) != ref.Len || HashBlock(b) != ref.ID {
		return nil, fmt.Errorf("%w: block %s fails verification", ErrMissingBlock, ref.ID)
	}
	return b, nil
}

// GC collects checkpoints of (app, rank) below keepFrom, clamped down so a
// surviving delta chain keeps its full base: if checkpoint keepFrom is a
// delta record, collection stops at its chain's base instead. When keepFrom
// is a full record (a new chain just committed), the previous chain —
// records and, in the backend, its now-unreferenced blocks — goes away
// whole.
func (p *Pipeline) GC(app wire.AppID, rank wire.Rank, keepFrom uint64) error {
	base, err := p.chainBase(app, rank, keepFrom)
	if err == nil && base < keepFrom {
		keepFrom = base
	}
	return p.inner.GC(app, rank, keepFrom)
}

// chainBase walks the delta chain of checkpoint n down to its full record's
// index. Raw images and missing checkpoints are their own base.
func (p *Pipeline) chainBase(app wire.AppID, rank wire.Rank, n uint64) (uint64, error) {
	for {
		env, _, err := envelopeGet(p.inner, app, rank, n)
		if err != nil || !IsRecord(env) {
			return n, err
		}
		rec, err := DecodeRecord(env)
		if err != nil {
			return n, err
		}
		if rec.Kind == RecFull || rec.Base >= n {
			return n, nil
		}
		n = rec.Base
	}
}

// Put-through methods.

func (p *Pipeline) List(app wire.AppID, rank wire.Rank) ([]uint64, error) {
	return p.inner.List(app, rank)
}

func (p *Pipeline) Ranks(app wire.AppID) ([]wire.Rank, error) { return p.inner.Ranks(app) }

func (p *Pipeline) CommitLine(app wire.AppID, line RecoveryLine) error {
	return p.inner.CommitLine(app, line)
}

func (p *Pipeline) CommittedLine(app wire.AppID) (RecoveryLine, error) {
	return p.inner.CommittedLine(app)
}

// DropApp drops the app's records and the writer-side capture caches.
func (p *Pipeline) DropApp(app wire.AppID) error {
	p.mu.Lock()
	p.ranks = make(map[wire.Rank]*rankState)
	p.mu.Unlock()
	return p.inner.DropApp(app)
}
