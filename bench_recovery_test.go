// Recovery-path benchmarks. A restart's storage cost is dominated by
// fetching the committed checkpoint image of every rank; these benchmarks
// measure that fetch against each backend so the disk-vs-replicated-memory
// gap is tracked across PRs. scripts/check.sh records the results in
// BENCH_recovery.json and enforces the >=5x rstore-vs-disk bar at 8 MiB.
package starfish_test

import (
	"fmt"
	"testing"

	"starfish/internal/ckpt"
	"starfish/internal/rstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

const recoveryImageSize = 8 << 20 // the paper-scale checkpoint image

// seedBackend stores one committed checkpoint on be and returns its index.
func seedBackend(b *testing.B, be ckpt.Backend, size int) uint64 {
	b.Helper()
	img := make([]byte, size)
	for i := range img {
		img[i] = byte(i)
	}
	const n = 3
	if err := be.Put(1, 0, n, img, &ckpt.Meta{Rank: 0, Index: n}); err != nil {
		b.Fatal(err)
	}
	if err := be.CommitLine(1, ckpt.RecoveryLine{0: n}); err != nil {
		b.Fatal(err)
	}
	return n
}

// restoreOnce is the storage half of one rank's restart: read the committed
// line, then fetch that checkpoint image.
func restoreOnce(b *testing.B, be ckpt.Backend, n uint64) {
	line, err := be.CommittedLine(1)
	if err != nil {
		b.Fatal(err)
	}
	img, _, err := be.Get(1, 0, line[0])
	if err != nil {
		b.Fatal(err)
	}
	if len(img) != recoveryImageSize || line[0] != n {
		b.Fatalf("bad restore: %d bytes, index %d", len(img), line[0])
	}
}

// newRstorePair builds a two-node replicated memory store (k=2) on a
// fastnet, so node 1's images are replicated into node 2's RAM.
func newRstorePair(b *testing.B) (*rstore.Store, *rstore.Store) {
	b.Helper()
	fn := vni.NewFastnet(0)
	addr := func(id wire.NodeID) string { return fmt.Sprintf("bench-rs-n%d", id) }
	var stores []*rstore.Store
	for id := wire.NodeID(1); id <= 2; id++ {
		s, err := rstore.New(rstore.Config{
			Node: id, Transport: fn, Addr: addr(id), PeerAddr: addr, Replicas: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		stores = append(stores, s)
	}
	for _, s := range stores {
		s.UpdateView([]wire.NodeID{1, 2})
	}
	return stores[0], stores[1]
}

// BenchmarkRecovery compares one rank's restart-time checkpoint fetch
// across storage backends at the 8 MiB point:
//
//   - backend=disk: the shared-file-system store of the paper (os file
//     read per fetch).
//   - backend=rstore: a surviving node's local RAM shard (the common case
//     after a crash — the replica is already in memory, returned
//     copy-free).
//   - backend=rstore-peer: worst case, the image must be pulled from a
//     peer's RAM over the network (the local copy is evicted every
//     iteration to force the remote fetch).
func BenchmarkRecovery(b *testing.B) {
	b.Run("backend=disk/size=8MB", func(b *testing.B) {
		store, err := ckpt.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		n := seedBackend(b, store, recoveryImageSize)
		b.SetBytes(recoveryImageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			restoreOnce(b, store, n)
		}
	})

	b.Run("backend=rstore/size=8MB", func(b *testing.B) {
		writer, survivor := newRstorePair(b)
		n := seedBackend(b, writer, recoveryImageSize)
		waitReplica(b, survivor, n)
		b.SetBytes(recoveryImageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			restoreOnce(b, survivor, n)
		}
	})

	b.Run("backend=rstore-peer/size=8MB", func(b *testing.B) {
		writer, survivor := newRstorePair(b)
		n := seedBackend(b, writer, recoveryImageSize)
		waitReplica(b, survivor, n)
		b.SetBytes(recoveryImageSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			survivor.Evict(1, 0, n)
			restoreOnce(b, survivor, n)
		}
	})
}

// waitReplica blocks until the replication push for checkpoint n landed.
func waitReplica(b *testing.B, s *rstore.Store, n uint64) {
	b.Helper()
	for i := 0; i < 10000; i++ {
		if s.Holds(1, 0, n) {
			return
		}
	}
	b.Fatal("replica never arrived")
}
