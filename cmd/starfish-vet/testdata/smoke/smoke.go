// Seeded violations, one per analyzer. scripts/check.sh runs
// `starfish-vet -dir` on this directory and requires every check to fire
// and the tool to exit nonzero — proving the analyzers still detect the
// bug classes they exist for (a vet suite that silently stopped finding
// anything would otherwise look like a clean repo).
package smoke

import (
	"sync"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/wire"
)

func poolViolation() {
	wire.GetBuf(32) // poolcheck: acquired buffer discarded on the spot
}

func lockViolation(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // lockcheck: sleeping under a mutex
	mu.Unlock()
}

func goroutineViolation() {
	go func() { // goleak: loops forever with no stop signal
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func errViolation(f func() error) {
	_ = f() // errdrop: error silently discarded
}

//starfish:deterministic
func detViolation() int64 {
	return time.Now().UnixNano() // detcheck: wall clock under the determinism contract
}

type smokeA struct{ mu sync.Mutex }
type smokeB struct{ mu sync.Mutex }

var (
	sa smokeA
	sb smokeB
)

// orderViolationAB and orderViolationBA take the pair in opposite orders:
// a lock-order cycle (lockorder).
func orderViolationAB() {
	sa.mu.Lock()
	sb.mu.Lock()
	sb.mu.Unlock()
	sa.mu.Unlock()
}

func orderViolationBA() {
	sb.mu.Lock()
	sa.mu.Lock()
	sa.mu.Unlock()
	sb.mu.Unlock()
}

func evViolation() evstore.Record {
	return evstore.Ev("bogus-kind") // evcheck: kind not declared in the Registry
}
