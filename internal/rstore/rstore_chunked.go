package rstore

import (
	"encoding/binary"
	"fmt"

	"starfish/internal/ckpt"
	"starfish/internal/wire"
)

// Chunked (content-addressed) replication — the rstore half of the
// incremental checkpoint pipeline (see ckpt.Pipeline).
//
// A record epoch replicates in three steps, all idempotent:
//
//  1. kBlockHas asks the holder which of the record's blocks it already has
//     (cross-epoch and cross-rank dedup: unchanged blocks and blocks shared
//     with other ranks are never sent again).
//  2. kBlockPut pushes the missing blocks, batched. The receiver pins them:
//     a pinned block survives GC until the record referencing it lands.
//  3. kPutRec pushes the record envelope. The receiver accepts it only if
//     every referenced block is present, replying with the still-missing ids
//     otherwise (a GC broadcast may race step 2), and the pusher re-pushes
//     and retries until the reply is empty.
//
// Holders materialize the raw image behind the newest record of each
// (app, rank) eagerly as records arrive (s.resolved), so a restore from a
// delta chain is a map lookup — pointer-speed, like raw-image restores —
// instead of a block-by-block chain walk.

var _ ckpt.ChunkedBackend = (*Store)(nil)
var _ ckpt.RecordResolver = (*Store)(nil)
var _ ckpt.EnvelopeGetter = (*Store)(nil)

// blockBatchTarget bounds one kBlockPut frame (plus one block of slack).
const blockBatchTarget = 1 << 20

// PutRecord stores a record epoch locally and replicates it to the holder
// peers: new blocks into the content-addressed shard, the envelope into the
// ordinary (app, rank, n) image slot.
func (s *Store) PutRecord(app wire.AppID, rank wire.Rank, n uint64, env []byte, blocks []ckpt.RecBlock, meta *ckpt.Meta) error {
	if meta == nil {
		meta = &ckpt.Meta{Rank: rank, Index: n}
	}
	k := key{app, rank, n}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("rstore: store closed")
	}
	for _, b := range blocks {
		if _, ok := s.blocks[b.Ref.ID]; !ok {
			// Block data is only valid for the duration of the call
			// (ChunkedBackend contract): copy.
			s.blocks[b.Ref.ID] = &blockEntry{data: append([]byte(nil), b.Data...)}
		}
	}
	s.setImageLocked(k, env, meta, true)
	s.indexAddLocked(app, rank, n)
	s.materializeLocked(k)
	holders := s.holdersLocked(app, rank)
	members := append([]wire.NodeID(nil), s.members...)
	s.mu.Unlock()

	mb := meta.Encode()
	for _, h := range holders {
		if h == s.cfg.Node {
			continue
		}
		if err := s.pushRecord(h, k, mb, env); err != nil {
			s.logf("[rstore %d] push record #%d of app %d rank %d to node %d: %v",
				s.cfg.Node, n, app, rank, h, err)
		}
	}
	s.broadcastIndex(members, []key{k})
	return nil
}

// GetBlock serves a content-addressed block from the local shard, falling
// back to peers (holders of (app, rank) first) and caching the result.
func (s *Store) GetBlock(app wire.AppID, rank wire.Rank, ref ckpt.BlockRef) ([]byte, error) {
	s.mu.Lock()
	if be, ok := s.blocks[ref.ID]; ok {
		d := be.data
		s.mu.Unlock()
		return d, nil
	}
	peers := s.fetchOrderLocked(app, rank)
	s.mu.Unlock()
	for _, peer := range peers {
		m := &wire.Msg{Type: wire.TControl, Kind: kBlockGet, Payload: ref.ID[:]}
		reply, err := s.request(peer, m)
		if err != nil || reply.Kind != kBlockOK || uint32(len(reply.Payload)) != ref.Len {
			continue
		}
		data := reply.Payload // pooled receive buffer, retained by aliasing
		s.mu.Lock()
		if _, ok := s.blocks[ref.ID]; !ok {
			s.blocks[ref.ID] = &blockEntry{data: data}
		}
		s.mu.Unlock()
		return data, nil
	}
	return nil, fmt.Errorf("%w: block %s (no in-memory replica)", ckpt.ErrMissingBlock, ref.ID)
}

// ResolveRecord returns the raw image behind checkpoint n of (app, rank):
// raw images pass through, record chains come from the materialized cache
// when the newest epoch is asked for, and are chain-walked otherwise.
func (s *Store) ResolveRecord(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *ckpt.Meta, error) {
	img, meta, err := s.getImage(app, rank, n)
	if err != nil {
		return nil, nil, err
	}
	if !ckpt.IsRecord(img) {
		return img, meta, nil
	}
	raw, err := s.resolveEnv(app, rank, n, img)
	if err != nil {
		return nil, nil, err
	}
	return raw, meta, nil
}

// resolveEnv reconstructs the raw image behind record envelope env.
func (s *Store) resolveEnv(app wire.AppID, rank wire.Rank, n uint64, env []byte) ([]byte, error) {
	k := key{app, rank, n}
	s.mu.Lock()
	if raw, ok := s.resolved[k]; ok {
		s.mu.Unlock()
		return raw, nil
	}
	s.mu.Unlock()
	// Cold path: the chain walk reads earlier links through GetEnvelope, so
	// it sees envelopes, never recursively resolved images.
	raw, err := ckpt.ResolveChain(s, app, rank, n, env)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.resolved[k] = raw
	s.mu.Unlock()
	return raw, nil
}

// GetEnvelope returns slot n's stored bytes verbatim — the record envelope
// for chunked epochs — unlike Get, which resolves records into raw images.
// Chain walkers (GC clamping, ckpt.ResolveChain) depend on seeing the links.
func (s *Store) GetEnvelope(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *ckpt.Meta, error) {
	return s.getImage(app, rank, n)
}

// ---------------------------------------------------------------------------
// Local bookkeeping (all *Locked: callers hold s.mu)
// ---------------------------------------------------------------------------

// setImageLocked installs img (raw image or record envelope) in slot k,
// adjusting block reference counts: the new envelope's blocks are referenced
// before the old one's are released, so blocks shared by both never dip to
// zero. A replica push must not demote an origin entry's bookkeeping, and
// any previously materialized image for the slot is stale.
func (s *Store) setImageLocked(k key, img []byte, meta *ckpt.Meta, origin bool) {
	s.refEnvLocked(img, 1)
	if e, ok := s.images[k]; ok {
		s.refEnvLocked(e.img, -1)
		e.img, e.meta = img, meta
		e.origin = e.origin || origin
	} else {
		s.images[k] = &entry{img: img, meta: meta, origin: origin}
	}
	delete(s.resolved, k)
}

// deleteImageLocked removes slot k and every piece of state hanging off it
// (block references, replica acks, the materialized image).
func (s *Store) deleteImageLocked(k key) {
	if e, ok := s.images[k]; ok {
		s.refEnvLocked(e.img, -1)
		delete(s.images, k)
	}
	delete(s.acked, k)
	delete(s.resolved, k)
}

// refEnvLocked adjusts the reference counts of every block a record envelope
// names (one count per occurrence). Raw images are a no-op. A block gaining
// its first reference no longer needs its pre-record pin; a block dropping
// to zero unpinned references is garbage.
func (s *Store) refEnvLocked(env []byte, d int) {
	if !ckpt.IsRecord(env) {
		return
	}
	refs, err := ckpt.RecordRefs(env)
	if err != nil {
		return
	}
	for _, r := range refs {
		be := s.blocks[r.ID]
		if be == nil {
			continue
		}
		be.refs += d
		if d > 0 {
			be.pinned = false
		}
		if be.refs <= 0 && !be.pinned {
			delete(s.blocks, r.ID)
		}
	}
}

// materializeLocked eagerly reconstructs the raw image behind the record in
// slot k from local blocks (full records) or from the previous epoch's
// materialized image plus local blocks (delta records), then drops older
// materializations of the same (app, rank) — one resident raw image per rank
// bounds the cache, and restores overwhelmingly want the newest epoch.
// Failure is silent: the cold chain walk in resolveEnv still works.
func (s *Store) materializeLocked(k key) {
	e := s.images[k]
	if e == nil || !ckpt.IsRecord(e.img) {
		return
	}
	rec, err := ckpt.DecodeRecord(e.img)
	if err != nil {
		return
	}
	var raw []byte
	switch rec.Kind {
	case ckpt.RecFull:
		raw = make([]byte, rec.RawLen)
		off := 0
		for _, ref := range rec.Refs {
			be := s.blocks[ref.ID]
			if be == nil || off+int(ref.Len) > len(raw) {
				return
			}
			copy(raw[off:], be.data)
			off += int(ref.Len)
		}
		if off != len(raw) {
			return
		}
	case ckpt.RecDelta:
		base, ok := s.resolved[key{k.app, k.rank, rec.Base}]
		if !ok || len(base) != rec.BaseLen {
			return
		}
		raw = make([]byte, rec.RawLen)
		// Copy, never extend in place: base is published (Get returned
		// pointers to it).
		copy(raw, base[:min(len(base), rec.RawLen)])
		for _, d := range rec.Deltas {
			lo := int(d.Index) * ckpt.DeltaBlockSize
			be := s.blocks[d.Ref.ID]
			if be == nil || lo+int(d.Ref.Len) > len(raw) {
				return
			}
			copy(raw[lo:], be.data)
		}
	default:
		return
	}
	s.resolved[k] = raw
	for rk := range s.resolved {
		if rk.app == k.app && rk.rank == k.rank && rk.n < k.n {
			delete(s.resolved, rk)
		}
	}
}

// ---------------------------------------------------------------------------
// Pusher side
// ---------------------------------------------------------------------------

// pushRecord replicates one record epoch to a peer: need/have negotiation,
// missing blocks, then the envelope, looping on the kRecOK still-missing
// list until the peer holds the complete record.
func (s *Store) pushRecord(peer wire.NodeID, k key, metaBytes, env []byte) error {
	s.mu.Lock()
	s.pushes++
	s.mu.Unlock()
	refs, err := ckpt.RecordRefs(env)
	if err == nil {
		err = fmt.Errorf("rstore: record push to node %d never completed", peer)
		byID := make(map[ckpt.BlockID]ckpt.BlockRef, len(refs))
		need := make([]ckpt.BlockRef, 0, len(refs))
		for _, r := range refs {
			if _, ok := byID[r.ID]; !ok {
				byID[r.ID] = r
				need = append(need, r)
			}
		}
		for attempt := 0; attempt <= s.cfg.RequestRetries; attempt++ {
			var missing []ckpt.BlockRef
			missing, err = s.blockQuery(peer, need)
			if err == nil {
				err = s.pushBlocks(peer, missing)
			}
			var still []ckpt.BlockID
			if err == nil {
				still, err = s.putRec(peer, k, metaBytes, env)
			}
			if err == nil && len(still) == 0 {
				s.mu.Lock()
				s.ackLocked(k, peer)
				s.mu.Unlock()
				return nil
			}
			if err == nil {
				// The peer GCed blocks between our pushes: push exactly
				// those again next round.
				need = need[:0]
				for _, id := range still {
					if r, ok := byID[id]; ok {
						need = append(need, r)
					}
				}
				err = fmt.Errorf("rstore: node %d still missing %d blocks", peer, len(still))
			}
			if s.isClosed() {
				break
			}
		}
	}
	s.mu.Lock()
	s.pushFailures++
	s.mu.Unlock()
	return err
}

// blockQuery asks a peer which of the given blocks it already holds and
// returns the ones it does not.
func (s *Store) blockQuery(peer wire.NodeID, refs []ckpt.BlockRef) ([]ckpt.BlockRef, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	payload := make([]byte, 0, 4+32*len(refs))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(refs)))
	for _, r := range refs {
		payload = append(payload, r.ID[:]...)
	}
	m := &wire.Msg{Type: wire.TControl, Kind: kBlockHas, Payload: payload}
	reply, err := s.request(peer, m)
	if err != nil {
		return nil, err
	}
	if reply.Kind != kHasOK || len(reply.Payload) != len(refs) {
		return nil, fmt.Errorf("rstore: bad kBlockHas reply from node %d", peer)
	}
	s.mu.Lock()
	s.repBytes += uint64(len(payload))
	s.mu.Unlock()
	var missing []ckpt.BlockRef
	for i, held := range reply.Payload {
		if held == 0 {
			missing = append(missing, refs[i])
		}
	}
	return missing, nil
}

// pushBlocks sends block contents to a peer in ~1 MiB batches, each staged
// into an exactly-sized pooled buffer that moves to the peer copy-free.
func (s *Store) pushBlocks(peer wire.NodeID, refs []ckpt.BlockRef) error {
	for i := 0; i < len(refs); {
		// Snapshot the batch's data slice headers under mu; block data is
		// immutable once stored, so building the frame outside mu is safe.
		s.mu.Lock()
		var datas [][]byte
		size := 4
		j := i
		for j < len(refs) && (j == i || size < blockBatchTarget) {
			be := s.blocks[refs[j].ID]
			if be == nil {
				s.mu.Unlock()
				return fmt.Errorf("rstore: local block %s vanished mid-push", refs[j].ID)
			}
			datas = append(datas, be.data)
			size += 36 + len(be.data)
			j++
		}
		s.mu.Unlock()

		buf := wire.GetBuf(size)
		binary.BigEndian.PutUint32(buf, uint32(j-i))
		off := 4
		for bi, data := range datas {
			id := refs[i+bi].ID
			copy(buf[off:], id[:])
			binary.BigEndian.PutUint32(buf[off+32:], uint32(len(data)))
			copy(buf[off+36:], data)
			off += 36 + len(data)
		}
		m := &wire.Msg{Type: wire.TControl, Kind: kBlockPut, Payload: buf, Pooled: true}
		reply, err := s.request(peer, m)
		if err != nil {
			return err
		}
		if reply.Kind != kOK {
			return fmt.Errorf("rstore: bad kBlockPut reply from node %d", peer)
		}
		s.mu.Lock()
		s.repBytes += uint64(size)
		s.mu.Unlock()
		i = j
	}
	return nil
}

// putRec sends the record envelope; the reply lists blocks the peer is
// (still) missing — empty means the record landed.
func (s *Store) putRec(peer wire.NodeID, k key, metaBytes, env []byte) ([]ckpt.BlockID, error) {
	payload := make([]byte, 0, 4+len(metaBytes)+len(env))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(metaBytes)))
	payload = append(payload, metaBytes...)
	payload = append(payload, env...)
	m := &wire.Msg{
		Type: wire.TControl, Kind: kPutRec,
		App: k.app, Src: k.rank, Seq: k.n,
		Payload: payload,
	}
	reply, err := s.request(peer, m)
	if err != nil {
		return nil, err
	}
	if reply.Kind != kRecOK || len(reply.Payload) < 4 {
		return nil, fmt.Errorf("rstore: bad kPutRec reply from node %d", peer)
	}
	s.mu.Lock()
	s.repBytes += uint64(len(payload))
	s.mu.Unlock()
	count := binary.BigEndian.Uint32(reply.Payload)
	if uint64(len(reply.Payload)) != 4+32*uint64(count) {
		return nil, fmt.Errorf("rstore: bad kPutRec reply from node %d", peer)
	}
	still := make([]ckpt.BlockID, count)
	for i := range still {
		copy(still[i][:], reply.Payload[4+32*i:])
	}
	return still, nil
}

// ---------------------------------------------------------------------------
// Receiver side (called from handle; single-frame requests)
// ---------------------------------------------------------------------------

// handlePutRec installs a record envelope if every block it references is
// local, and otherwise replies with the missing ids so the pusher can try
// again — the closing move of the push protocol's GC race.
func (s *Store) handlePutRec(m *wire.Msg) *wire.Msg {
	env, meta, err := decodeMetaEnv(m.Payload)
	if err != nil {
		return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
	}
	refs, err := ckpt.RecordRefs(env)
	if err != nil {
		return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
	}
	k := key{m.App, m.Src, m.Seq}
	s.mu.Lock()
	var missing []ckpt.BlockID
	seen := make(map[ckpt.BlockID]bool, len(refs))
	for _, r := range refs {
		if _, ok := s.blocks[r.ID]; !ok && !seen[r.ID] {
			seen[r.ID] = true
			missing = append(missing, r.ID)
		}
	}
	if len(missing) == 0 {
		s.setImageLocked(k, env, meta, false)
		s.indexAddLocked(m.App, m.Src, m.Seq)
		s.materializeLocked(k)
	}
	s.mu.Unlock()
	payload := make([]byte, 0, 4+32*len(missing))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(missing)))
	for _, id := range missing {
		payload = append(payload, id[:]...)
	}
	return &wire.Msg{Type: wire.TControl, Kind: kRecOK, Payload: payload}
}

// handleBlockHas answers a need/have query: one byte per queried id.
func (s *Store) handleBlockHas(m *wire.Msg) *wire.Msg {
	p := m.Payload
	if len(p) < 4 {
		return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
	}
	count := binary.BigEndian.Uint32(p)
	if uint64(len(p)) != 4+32*uint64(count) {
		return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
	}
	held := make([]byte, count)
	var id ckpt.BlockID
	s.mu.Lock()
	for i := range held {
		copy(id[:], p[4+32*i:])
		if _, ok := s.blocks[id]; ok {
			held[i] = 1
		}
	}
	s.mu.Unlock()
	return &wire.Msg{Type: wire.TControl, Kind: kHasOK, Payload: held}
}

// handleBlockPut stores a batch of blocks, pinned until a record references
// them. Block data aliases the pooled receive frame, which is retained.
func (s *Store) handleBlockPut(m *wire.Msg) *wire.Msg {
	p := m.Payload
	if len(p) < 4 {
		return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
	}
	count := binary.BigEndian.Uint32(p)
	off := 4
	s.mu.Lock()
	for i := uint32(0); i < count; i++ {
		if off+36 > len(p) {
			s.mu.Unlock()
			return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
		}
		var id ckpt.BlockID
		copy(id[:], p[off:])
		blen := int(binary.BigEndian.Uint32(p[off+32:]))
		if off+36+blen > len(p) {
			s.mu.Unlock()
			return &wire.Msg{Type: wire.TControl, Kind: kGetMiss}
		}
		if be, ok := s.blocks[id]; ok {
			be.pinned = be.pinned || be.refs <= 0
		} else {
			s.blocks[id] = &blockEntry{data: p[off+36 : off+36+blen], pinned: true}
		}
		off += 36 + blen
	}
	s.mu.Unlock()
	return &wire.Msg{Type: wire.TControl, Kind: kOK}
}

// handleBlockGet serves one block by content address.
func (s *Store) handleBlockGet(m *wire.Msg) *wire.Msg {
	if len(m.Payload) != 32 {
		return &wire.Msg{Type: wire.TControl, Kind: kBlockMiss}
	}
	var id ckpt.BlockID
	copy(id[:], m.Payload)
	s.mu.Lock()
	be, ok := s.blocks[id]
	var data []byte
	if ok {
		data = be.data
	}
	s.mu.Unlock()
	if !ok {
		return &wire.Msg{Type: wire.TControl, Kind: kBlockMiss}
	}
	buf := wire.GetBuf(len(data))
	copy(buf, data)
	return &wire.Msg{Type: wire.TControl, Kind: kBlockOK, Payload: buf, Pooled: true}
}
