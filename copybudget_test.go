// Copy-budget enforcement: the fast path is allowed exactly one payload
// copy per hop (the MPI API boundary), and none at all for owned sends.
// This is the testable form of the paper's "messages are never copied
// between layers" claim, checked against the wire.CopySite counters.
package starfish_test

import (
	"testing"

	"starfish/internal/mpi"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

func copyBudgetWorld(t *testing.T) (c0, c1 *mpi.Comm) {
	t.Helper()
	fn := vni.NewFastnet(0)
	nic0, err := vni.NewNIC(fn, "cb-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nic0.Close() })
	nic1, err := vni.NewNIC(fn, "cb-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nic1.Close() })
	addrs := map[wire.Rank]string{0: nic0.Addr(), 1: nic1.Addr()}
	c0, err = mpi.New(mpi.Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c0.Close)
	c1, err = mpi.New(mpi.Config{App: 1, Rank: 1, Size: 2, NIC: nic1, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close)
	return c0, c1
}

// TestFastPathCopyBudget sends N messages over fastnet and asserts the copy
// counters: each plain Send costs exactly one API-boundary copy and nothing
// else; each owned send costs zero.
func TestFastPathCopyBudget(t *testing.T) {
	c0, c1 := copyBudgetWorld(t)
	const n, size = 20, 4096
	buf := make([]byte, size)

	countsBefore, bytesBefore := wire.CopyStats()
	go func() {
		for i := 0; i < n; i++ {
			c0.Send(1, 1, buf)
		}
	}()
	for i := 0; i < n; i++ {
		data, st, err := c1.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Pooled {
			wire.PutBuf(data)
		}
	}
	countsAfter, bytesAfter := wire.CopyStats()

	if got := countsAfter[wire.CopyBoundary] - countsBefore[wire.CopyBoundary]; got != n {
		t.Errorf("boundary copies = %d, want %d (one per Send)", got, n)
	}
	if got := bytesAfter[wire.CopyBoundary] - bytesBefore[wire.CopyBoundary]; got != n*size {
		t.Errorf("boundary bytes = %d, want %d", got, n*size)
	}
	if got := countsAfter[wire.CopyClone] - countsBefore[wire.CopyClone]; got != 0 {
		t.Errorf("clone copies = %d, want 0 (pooled payloads move)", got)
	}
	if got := countsAfter[wire.CopyCR] - countsBefore[wire.CopyCR]; got != 0 {
		t.Errorf("C/R copies = %d, want 0 (no checkpoint active)", got)
	}

	// Owned sends: zero copies anywhere on the path.
	countsBefore, _ = wire.CopyStats()
	go func() {
		for i := 0; i < n; i++ {
			c0.SendOwned(1, 2, wire.GetBuf(size))
		}
	}()
	for i := 0; i < n; i++ {
		data, st, err := c1.Recv(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Pooled {
			t.Fatal("owned send arrived unpooled")
		}
		wire.PutBuf(data)
	}
	countsAfter, _ = wire.CopyStats()
	for _, s := range []wire.CopySite{wire.CopyClone, wire.CopyBoundary, wire.CopyCR} {
		if got := countsAfter[s] - countsBefore[s]; got != 0 {
			t.Errorf("%v copies = %d, want 0 on the owned path", s, got)
		}
	}
}
