package gcs

import "sync"

// equeue is an unbounded FIFO of Events with a channel face. The engine
// goroutine must never block on a slow consumer (that could deadlock the
// protocol), so deliveries go through this queue and a pump goroutine.
type equeue struct {
	mu     sync.Mutex
	cv     *sync.Cond
	items  []Event
	closed bool
	out    chan Event
}

func newEqueue() *equeue {
	q := &equeue{out: make(chan Event, 64)}
	q.cv = sync.NewCond(&q.mu)
	go q.pump()
	return q
}

// push enqueues an event. Pushes after close are dropped.
func (q *equeue) push(e Event) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, e)
		q.cv.Signal()
	}
	q.mu.Unlock()
}

// close marks the queue finished; the out channel closes once drained.
func (q *equeue) close() {
	q.mu.Lock()
	q.closed = true
	q.cv.Signal()
	q.mu.Unlock()
}

func (q *equeue) pump() {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cv.Wait()
		}
		if len(q.items) == 0 && q.closed {
			q.mu.Unlock()
			close(q.out)
			return
		}
		e := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		q.out <- e
	}
}
