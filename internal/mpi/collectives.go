package mpi

import (
	"fmt"

	"starfish/internal/wire"
)

// Collective operations. All are built on the point-to-point layer with
// reserved tags, so they inherit the fast path. Every rank of the
// communicator must call the collective; tags separate concurrent
// collectives of different kinds but, as in MPI, collectives of the same
// kind must be issued in the same order everywhere.
//
// Internal tags live above 1<<30 so they can never collide with user tags.
const (
	tagBarrier int32 = 1<<30 + iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagScan
	tagGatherv
	tagSendrecv
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	n := c.cfg.Size
	if n == 1 {
		return nil
	}
	me := int(c.cfg.Rank)
	for dist := 1; dist < n; dist *= 2 {
		dst := wire.Rank((me + dist) % n)
		src := wire.Rank((me - dist + n) % n)
		req := c.Irecv(src, tagBarrier)
		if err := c.Send(dst, tagBarrier, nil); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		if _, _, err := req.Wait(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
	}
	return nil
}

// Bcast broadcasts buf from root to all ranks along a binomial tree and
// returns the received buffer (root returns buf unchanged).
func (c *Comm) Bcast(root wire.Rank, buf []byte) ([]byte, error) {
	n := c.cfg.Size
	if n == 1 {
		return buf, nil
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (int(c.cfg.Rank) - int(root) + n) % n

	if vrank != 0 {
		// Receive from the parent in the binomial tree.
		data, _, err := c.Recv(wire.AnyRank, tagBcast)
		if err != nil {
			return nil, fmt.Errorf("bcast: %w", err)
		}
		buf = data
	}
	// Forward to children: for each bit above my lowest set bit.
	mask := 1
	for mask < n && vrank&(mask-1) == 0 {
		if vrank&mask == 0 {
			child := vrank | mask
			if child < n {
				real := wire.Rank((child + int(root)) % n)
				if err := c.Send(real, tagBcast, buf); err != nil {
					return nil, fmt.Errorf("bcast: %w", err)
				}
			}
		}
		mask <<= 1
	}
	return buf, nil
}

// ReduceFunc combines two equally-shaped buffers into one.
type ReduceFunc func(a, b []byte) ([]byte, error)

// Reduce combines every rank's contribution with fn and delivers the
// result to root (binomial-tree reduction). fn must be associative and
// commutative. Non-root ranks return nil.
func (c *Comm) Reduce(root wire.Rank, contrib []byte, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	if n == 1 {
		return contrib, nil
	}
	vrank := (int(c.cfg.Rank) - int(root) + n) % n
	acc := contrib
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := vrank &^ mask
			real := wire.Rank((parent + int(root)) % n)
			if err := c.Send(real, tagReduce, acc); err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
			return nil, nil
		}
		child := vrank | mask
		if child < n {
			data, _, err := c.Recv(wire.Rank((child+int(root))%n), tagReduce)
			if err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
			if acc, err = fn(acc, data); err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
		}
		mask <<= 1
	}
	return acc, nil
}

// Allreduce combines every rank's contribution and returns the result at
// every rank (reduce to rank 0 + broadcast).
func (c *Comm) Allreduce(contrib []byte, fn ReduceFunc) ([]byte, error) {
	acc, err := c.Reduce(0, contrib, fn)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, acc)
}

// Gather collects every rank's contribution at root; root receives a slice
// indexed by rank. Non-root ranks return nil.
func (c *Comm) Gather(root wire.Rank, contrib []byte) ([][]byte, error) {
	if c.cfg.Rank != root {
		if err := c.Send(root, tagGather, contrib); err != nil {
			return nil, fmt.Errorf("gather: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, c.cfg.Size)
	out[root] = contrib
	for i := 0; i < c.cfg.Size-1; i++ {
		data, st, err := c.Recv(wire.AnyRank, tagGather)
		if err != nil {
			return nil, fmt.Errorf("gather: %w", err)
		}
		out[st.Source] = data
	}
	return out, nil
}

// Scatter distributes parts (indexed by rank, only meaningful at root) so
// each rank receives parts[rank].
func (c *Comm) Scatter(root wire.Rank, parts [][]byte) ([]byte, error) {
	if c.cfg.Rank == root {
		if len(parts) != c.cfg.Size {
			return nil, fmt.Errorf("scatter: %w: %d parts for %d ranks", ErrBadLength, len(parts), c.cfg.Size)
		}
		for r := 0; r < c.cfg.Size; r++ {
			if wire.Rank(r) == root {
				continue
			}
			if err := c.Send(wire.Rank(r), tagScatter, parts[r]); err != nil {
				return nil, fmt.Errorf("scatter: %w", err)
			}
		}
		return parts[root], nil
	}
	data, _, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, fmt.Errorf("scatter: %w", err)
	}
	return data, nil
}

// Allgather collects every rank's contribution at every rank (ring
// algorithm: n-1 steps, each forwarding the piece received last step).
func (c *Comm) Allgather(contrib []byte) ([][]byte, error) {
	n := c.cfg.Size
	out := make([][]byte, n)
	out[c.cfg.Rank] = contrib
	if n == 1 {
		return out, nil
	}
	me := int(c.cfg.Rank)
	right := wire.Rank((me + 1) % n)
	left := wire.Rank((me - 1 + n) % n)
	carry := contrib
	carryOwner := me
	for step := 0; step < n-1; step++ {
		req := c.Irecv(left, tagAllgather)
		if err := c.Send(right, tagAllgather, carry); err != nil {
			return nil, fmt.Errorf("allgather: %w", err)
		}
		data, _, err := req.Wait()
		if err != nil {
			return nil, fmt.Errorf("allgather: %w", err)
		}
		carryOwner = (carryOwner - 1 + n) % n
		carry = data
		out[carryOwner] = data
	}
	return out, nil
}

// Alltoall performs a personalized all-to-all exchange: parts[r] goes to
// rank r; the result's element r came from rank r.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	n := c.cfg.Size
	if len(parts) != n {
		return nil, fmt.Errorf("alltoall: %w: %d parts for %d ranks", ErrBadLength, len(parts), n)
	}
	out := make([][]byte, n)
	out[c.cfg.Rank] = parts[c.cfg.Rank]
	me := int(c.cfg.Rank)
	// Pairwise exchange: at step s, talk to rank me^s when n is a power
	// of two; otherwise use the rotation schedule.
	reqs := make([]*Request, 0, n-1)
	for step := 1; step < n; step++ {
		dst := wire.Rank((me + step) % n)
		src := wire.Rank((me - step + n) % n)
		req := c.Irecv(src, tagAlltoall)
		reqs = append(reqs, req)
		if err := c.Send(dst, tagAlltoall, parts[dst]); err != nil {
			return nil, fmt.Errorf("alltoall: %w", err)
		}
	}
	for step := 1; step < n; step++ {
		src := wire.Rank((me - step + n) % n)
		data, _, err := reqs[step-1].Wait()
		if err != nil {
			return nil, fmt.Errorf("alltoall: %w", err)
		}
		out[src] = data
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// fn(contrib_0, ..., contrib_r) (linear chain).
func (c *Comm) Scan(contrib []byte, fn ReduceFunc) ([]byte, error) {
	me := int(c.cfg.Rank)
	acc := contrib
	if me > 0 {
		prev, _, err := c.Recv(wire.Rank(me-1), tagScan)
		if err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
		if acc, err = fn(prev, contrib); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	if me < c.cfg.Size-1 {
		if err := c.Send(wire.Rank(me+1), tagScan, acc); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	return acc, nil
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv): buf goes
// to dst while one message is received from src — deadlock-free even when
// every rank calls it simultaneously in a ring, because the send is eager.
func (c *Comm) Sendrecv(dst wire.Rank, sendTag int32, buf []byte, src wire.Rank, recvTag int32) ([]byte, Status, error) {
	req := c.Irecv(src, recvTag)
	if err := c.Send(dst, sendTag, buf); err != nil {
		return nil, Status{}, fmt.Errorf("sendrecv: %w", err)
	}
	data, st, err := req.Wait()
	if err != nil {
		return nil, st, fmt.Errorf("sendrecv: %w", err)
	}
	return data, st, nil
}

// Gatherv collects variable-length contributions at root (MPI_Gatherv).
// Buffers carry their own lengths in this library, so the signature matches
// Gather; it uses a distinct internal tag so concurrent Gather and Gatherv
// collectives cannot cross-match. Non-root ranks return nil.
func (c *Comm) Gatherv(root wire.Rank, contrib []byte) ([][]byte, error) {
	if c.cfg.Rank != root {
		if err := c.Send(root, tagGatherv, contrib); err != nil {
			return nil, fmt.Errorf("gatherv: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, c.cfg.Size)
	out[root] = contrib
	for i := 0; i < c.cfg.Size-1; i++ {
		data, st, err := c.Recv(wire.AnyRank, tagGatherv)
		if err != nil {
			return nil, fmt.Errorf("gatherv: %w", err)
		}
		out[st.Source] = data
	}
	return out, nil
}
