package gcs

import (
	"fmt"
	"testing"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

// testGroup spins up n endpoints on one fastnet, joined through endpoint 1.
func testGroup(t *testing.T, n int) (*vni.Fastnet, []*Endpoint) {
	t.Helper()
	fn := vni.NewFastnet(0)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Node:           wire.NodeID(i + 1),
			Transport:      fn,
			Addr:           fmt.Sprintf("node%d", i+1),
			HeartbeatEvery: 5 * time.Millisecond,
		}
		if i > 0 {
			cfg.Contact = "node1"
		}
		ep, err := Join(cfg)
		if err != nil {
			t.Fatalf("Join node%d: %v", i+1, err)
		}
		eps[i] = ep
		t.Cleanup(ep.Close)
	}
	return fn, eps
}

// nextEvent waits for the next event with a deadline.
func nextEvent(t *testing.T, ep *Endpoint) Event {
	t.Helper()
	select {
	case e, ok := <-ep.Events():
		if !ok {
			t.Fatalf("node %d: events channel closed", ep.Node())
		}
		return e
	case <-time.After(10 * time.Second):
		t.Fatalf("node %d: timed out waiting for event", ep.Node())
		panic("unreachable")
	}
}

// waitForView drains events until a view with exactly the given members
// arrives, returning it (and any casts seen along the way).
func waitForView(t *testing.T, ep *Endpoint, members ...wire.NodeID) (View, []Event) {
	t.Helper()
	var casts []Event
	deadline := time.After(10 * time.Second)
	for {
		select {
		case e, ok := <-ep.Events():
			if !ok {
				t.Fatalf("node %d: events closed while waiting for view %v", ep.Node(), members)
			}
			if e.Kind == ECast {
				casts = append(casts, e)
				continue
			}
			if e.Kind == EView && sameMembers(e.View.Members, members) {
				return e.View, casts
			}
		case <-deadline:
			t.Fatalf("node %d: no view with members %v", ep.Node(), members)
		}
	}
}

func sameMembers(a, b []wire.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSingletonGroup(t *testing.T) {
	_, eps := testGroup(t, 1)
	e := nextEvent(t, eps[0])
	if e.Kind != EView {
		t.Fatalf("first event = %v, want EView", e.Kind)
	}
	if len(e.View.Members) != 1 || e.View.Members[0] != 1 || e.View.Coord != 1 {
		t.Errorf("view = %v", e.View)
	}
}

func TestJoinGrowsView(t *testing.T) {
	_, eps := testGroup(t, 3)
	for i, ep := range eps {
		v, _ := waitForView(t, ep, 1, 2, 3)
		if v.Coord != 1 {
			t.Errorf("node %d: coord = %d, want 1", i+1, v.Coord)
		}
		if v.Addrs[2] != "node2" {
			t.Errorf("node %d: addr map %v", i+1, v.Addrs)
		}
	}
}

func TestCastReachesAllIncludingSender(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	if err := eps[1].Cast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i, ep := range eps {
		e := nextEvent(t, ep)
		if e.Kind != ECast || string(e.Payload) != "hello" || e.From != 2 {
			t.Errorf("node %d: got %+v", i+1, e)
		}
	}
}

func TestTotalOrderAcrossSenders(t *testing.T) {
	_, eps := testGroup(t, 4)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	const perSender = 25
	for s, ep := range eps {
		go func(s int, ep *Endpoint) {
			for i := 0; i < perSender; i++ {
				ep.Cast([]byte(fmt.Sprintf("%d:%d", s, i)))
			}
		}(s, ep)
	}
	total := perSender * len(eps)
	sequences := make([][]string, len(eps))
	for i, ep := range eps {
		for len(sequences[i]) < total {
			e := nextEvent(t, ep)
			if e.Kind == ECast {
				sequences[i] = append(sequences[i], string(e.Payload))
			}
		}
	}
	for i := 1; i < len(sequences); i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("total order violated at position %d: node1 saw %q, node%d saw %q",
					j, sequences[0][j], i+1, sequences[i][j])
			}
		}
	}
}

func TestPerSenderFIFO(t *testing.T) {
	_, eps := testGroup(t, 2)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := eps[1].Cast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		e := nextEvent(t, eps[0])
		if e.Kind != ECast || e.Payload[0] != byte(i) {
			t.Fatalf("position %d: got %+v", i, e)
		}
	}
}

func TestPointToPointSend(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	if err := eps[0].Send(3, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[2])
	if e.Kind != ESend || e.From != 1 || string(e.Payload) != "direct" {
		t.Errorf("got %+v", e)
	}
	if err := eps[0].Send(99, nil); err != ErrNoMember {
		t.Errorf("Send to non-member: %v, want ErrNoMember", err)
	}
}

func TestMemberCrashTriggersViewChange(t *testing.T) {
	fn, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	// Crash node 3 (not the coordinator).
	fn.Crash("node3")
	go eps[2].Close()

	for _, ep := range eps[:2] {
		v, _ := waitForView(t, ep, 1, 2)
		if v.Coord != 1 {
			t.Errorf("coord = %d, want 1", v.Coord)
		}
	}
	// Group still works.
	if err := eps[0].Cast([]byte("after")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[:2] {
		e := nextEvent(t, ep)
		if e.Kind != ECast || string(e.Payload) != "after" {
			t.Errorf("post-crash cast: %+v", e)
		}
	}
}

func TestCoordinatorCrashFailover(t *testing.T) {
	fn, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	// Crash the coordinator (node 1). Node 2 must take over.
	fn.Crash("node1")
	go eps[0].Close()

	for _, ep := range eps[1:] {
		v, _ := waitForView(t, ep, 2, 3)
		if v.Coord != 2 {
			t.Errorf("node %d: new coord = %d, want 2", ep.Node(), v.Coord)
		}
	}
	// The group must still sequence casts.
	if err := eps[2].Cast([]byte("survived")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[1:] {
		e := nextEvent(t, ep)
		if e.Kind != ECast || string(e.Payload) != "survived" {
			t.Errorf("node %d: %+v", ep.Node(), e)
		}
	}
}

func TestCastDuringCoordinatorFailure(t *testing.T) {
	// A cast issued while the coordinator is dead must still be delivered
	// exactly once after failover (pending-cast retransmission + dedup).
	fn, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	fn.Crash("node1")
	go eps[0].Close()
	// Issue immediately, before the failure detector has fired.
	if err := eps[2].Cast([]byte("limbo")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[1:] {
		_, casts := waitForView(t, ep, 2, 3)
		// The cast may arrive before or after the view.
		got := len(casts)
		for got == 0 {
			e := nextEvent(t, ep)
			if e.Kind == ECast {
				casts = append(casts, e)
				got++
			}
		}
		if string(casts[0].Payload) != "limbo" {
			t.Errorf("node %d: got %q", ep.Node(), casts[0].Payload)
		}
		// Exactly once: no duplicate should follow. Send a sentinel and
		// make sure the very next cast is the sentinel.
		ep2 := ep
		if err := ep2.Cast([]byte("sentinel")); err != nil {
			t.Fatal(err)
		}
		for {
			e := nextEvent(t, ep2)
			if e.Kind != ECast {
				continue
			}
			if string(e.Payload) == "limbo" {
				t.Fatalf("node %d: duplicate delivery of pending cast", ep2.Node())
			}
			if string(e.Payload) == "sentinel" {
				break
			}
		}
	}
}

func TestLeaveShrinksView(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	if err := eps[2].Leave(); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[:2] {
		waitForView(t, ep, 1, 2)
	}
}

func TestCoordinatorLeaveHandsOver(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	if err := eps[0].Leave(); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[1:] {
		v, _ := waitForView(t, ep, 2, 3)
		if v.Coord != 2 {
			t.Errorf("coord after handover = %d, want 2", v.Coord)
		}
	}
	if err := eps[1].Cast([]byte("go on")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[2])
	if e.Kind != ECast || string(e.Payload) != "go on" {
		t.Errorf("%+v", e)
	}
}

func TestStateTransferToJoiner(t *testing.T) {
	fn := vni.NewFastnet(0)
	state := []byte("replicated-config-v17")
	a, err := Join(Config{
		Node: 1, Transport: fn, Addr: "node1",
		HeartbeatEvery: 5 * time.Millisecond,
		StateProvider:  func() []byte { return state },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	nextEvent(t, a) // own first view

	b, err := Join(Config{
		Node: 2, Transport: fn, Addr: "node2", Contact: "node1",
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	e := nextEvent(t, b)
	if e.Kind != EView {
		t.Fatalf("first joiner event = %v", e.Kind)
	}
	if string(e.State) != string(state) {
		t.Errorf("state transfer = %q, want %q", e.State, state)
	}
}

func TestJoinBadContact(t *testing.T) {
	fn := vni.NewFastnet(0)
	_, err := Join(Config{
		Node: 1, Transport: fn, Addr: "n1", Contact: "missing",
		HeartbeatEvery: time.Millisecond,
	})
	if err == nil {
		t.Fatal("Join with dead contact succeeded")
	}
}

func TestViewAccessor(t *testing.T) {
	_, eps := testGroup(t, 2)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2)
	}
	v := eps[0].View()
	if !sameMembers(v.Members, []wire.NodeID{1, 2}) {
		t.Errorf("View() = %v", v)
	}
	if !v.Contains(2) || v.Contains(9) {
		t.Error("Contains misbehaves")
	}
}

func TestCloseIsIdempotentAndEndsEvents(t *testing.T) {
	_, eps := testGroup(t, 1)
	nextEvent(t, eps[0])
	eps[0].Close()
	eps[0].Close()
	if _, ok := <-eps[0].Events(); ok {
		// Draining any residue is fine, but the channel must close.
		for range eps[0].Events() {
		}
	}
	if err := eps[0].Cast(nil); err != ErrLeft {
		t.Errorf("Cast after Close: %v, want ErrLeft", err)
	}
}

func TestViewEncodeDecodeRoundTrip(t *testing.T) {
	v := View{
		ID:      7,
		Coord:   3,
		Members: []wire.NodeID{3, 5, 9},
		Addrs:   map[wire.NodeID]string{3: "a", 5: "b", 9: "c"},
	}
	got, err := decodeView(encodeView(&v))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Coord != 3 || !sameMembers(got.Members, v.Members) || got.Addrs[5] != "b" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestSeqMsgRoundTrip(t *testing.T) {
	m := seqMsg{Seq: 42, Kind: dCast, Sender: 3, SenderSeq: 17, Payload: []byte("p")}
	got, err := decodeSeqMsg(encodeSeqMsg(&m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.Kind != dCast || got.Sender != 3 || got.SenderSeq != 17 || string(got.Payload) != "p" {
		t.Errorf("round trip = %+v", got)
	}
}
