package svm

// Write tracking for incremental checkpointing. A VM with tracking enabled
// remembers which parts of its state changed since the last ResetDirty, and
// DirtyByteSpans maps that onto byte ranges of the *encoded image* — the
// dirty hints ckpt.ComputeDeltaHinted consumes. The hints are conservative
// (sound): a byte outside every span is guaranteed unchanged since the
// baseline, while bytes inside a span merely may have changed.
//
// Only the two opcodes that write addressable state (STOREM, STOREG) are
// instrumented; the small, constantly churning sections (counters, stack,
// call stack, output) are simply always reported dirty, and any section
// whose *length* changed dirties everything after it, because counted
// sections shift all downstream image offsets.

// Span is a half-open byte range [Off, Off+Len) of an encoded image.
type Span struct {
	Off, Len int
}

// Segment is a named span of an encoded image (see SegmentSpans).
type Segment struct {
	Name string
	Span
}

// dirtyState is the tracked baseline: section lengths at the last reset plus
// what was written since.
type dirtyState struct {
	codeLen   int
	stackLen  int
	callLen   int
	globalLen int
	memLen    int
	outLen    int

	globals bool
	// memLo/memHi is the dirty word range of Mem ([0,0) = clean).
	memLo, memHi int
}

// TrackDirty enables write tracking, with the VM's current state as the
// clean baseline. Call it right after encoding the image the next delta will
// diff against (typically each checkpoint).
func (m *VM) TrackDirty() {
	m.dirty = &dirtyState{}
	m.ResetDirty()
}

// ResetDirty re-baselines tracking at the VM's current state (a no-op when
// tracking is disabled).
func (m *VM) ResetDirty() {
	d := m.dirty
	if d == nil {
		return
	}
	*d = dirtyState{
		codeLen:   len(m.Code),
		stackLen:  len(m.Stack),
		callLen:   len(m.CallStack),
		globalLen: len(m.Globals),
		memLen:    len(m.Mem),
		outLen:    len(m.Output),
	}
}

func (d *dirtyState) markMem(addr int) {
	if d.memLo == d.memHi { // first write
		d.memLo, d.memHi = addr, addr+1
		return
	}
	if addr < d.memLo {
		d.memLo = addr
	}
	if addr >= d.memHi {
		d.memHi = addr + 1
	}
}

// DirtyByteSpans returns the byte ranges of the current EncodeImage output
// that may differ from the baseline image, or nil when tracking is disabled
// (nil tells ckpt.ComputeDeltaHinted to fall back to a full diff).
//
//starfish:deterministic
func (m *VM) DirtyByteSpans() []Span {
	d := m.dirty
	if d == nil {
		return nil
	}
	wb := m.Arch.wordBytes()
	total := m.ImageSize()
	// Header plus PC/Steps/Halted counters: change every step.
	spans := []Span{{0, 24}}
	off := 24

	rest := func() []Span { return append(spans, Span{off, total - off}) }

	// Code: length changes cannot happen in-run, but a resized code section
	// (hand-mutated VM) shifts everything — bail to "rest dirty".
	codeSize := 4 + len(m.Code)*(1+wb)
	if len(m.Code) != d.codeLen {
		return rest()
	}
	off += codeSize

	// Stack and call stack: small and hot, always reported dirty; a length
	// change shifts the sections behind them.
	stackSize := 4 + len(m.Stack)*wb
	if len(m.Stack) != d.stackLen {
		return rest()
	}
	if stackSize > 4 {
		spans = append(spans, Span{off, stackSize})
	}
	off += stackSize

	callSize := 4 + len(m.CallStack)*wb
	if len(m.CallStack) != d.callLen {
		return rest()
	}
	if callSize > 4 {
		spans = append(spans, Span{off, callSize})
	}
	off += callSize

	globalSize := 4 + len(m.Globals)*wb
	if len(m.Globals) != d.globalLen {
		return rest()
	}
	if d.globals {
		spans = append(spans, Span{off, globalSize})
	}
	off += globalSize

	// Mem: the big segment and the whole point of the hints — only the
	// written word range is dirty.
	memSize := 4 + len(m.Mem)*wb
	if len(m.Mem) != d.memLen {
		return rest()
	}
	if d.memHi > d.memLo {
		spans = append(spans, Span{off + 4 + d.memLo*wb, (d.memHi - d.memLo) * wb})
	}
	off += memSize

	// Output: append-only; a length change is the only way it dirties, and
	// it is the last section, so only its own bytes are affected.
	if len(m.Output) != d.outLen {
		spans = append(spans, Span{off, total - off})
	}
	return spans
}

// SegmentSpans maps an encoded image into its named sections without
// decoding any words: where the code, stack, globals and heap bytes live.
// This is the differ's view of segment boundaries — e.g. the code and
// globals segments every rank of an SPMD app shares, which content-addressed
// block storage then stores once cluster-wide.
func SegmentSpans(img []byte) ([]Segment, error) {
	arch, err := ImageArch(img)
	if err != nil {
		return nil, err
	}
	wb := arch.wordBytes()
	r := &imageReader{arch: arch, buf: img[8:]}
	pos := func() int { return len(img) - len(r.buf) }

	segs := []Segment{{Name: "header", Span: Span{0, 24}}}
	for i := 0; i < 4; i++ { // pc, steps hi/lo, halted
		if _, err := r.u32(); err != nil {
			return nil, err
		}
	}

	section := func(name string, elemBytes int) error {
		start := pos()
		n, err := r.count()
		if err != nil {
			return err
		}
		need := n * elemBytes
		if len(r.buf) < need {
			return errShortImage
		}
		r.buf = r.buf[need:]
		segs = append(segs, Segment{Name: name, Span: Span{start, pos() - start}})
		return nil
	}
	if err := section("code", 1+wb); err != nil {
		return nil, err
	}
	for _, name := range []string{"stack", "callstack", "globals", "mem", "output"} {
		if err := section(name, wb); err != nil {
			return nil, err
		}
	}
	if len(r.buf) != 0 {
		return nil, ErrBadImage
	}
	return segs, nil
}
