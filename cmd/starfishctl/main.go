// starfishctl is the management client for a Starfish cluster — the
// command-line replacement for the paper's Java GUI. It speaks the ASCII
// management protocol of §3.1.1 to any daemon.
//
//	starfishctl -addr 127.0.0.1:7100 -admin starfish NODES
//	starfishctl -addr 127.0.0.1:7100 -user alice SUBMIT 1 ring 3 sfs portable restart 0 <hexargs>
//	starfishctl -addr 127.0.0.1:7100 -user alice SUBMIT 2 ring 3 sfs portable restart 0 - memory
//	starfishctl -addr 127.0.0.1:7100 -user alice STATUS 1
//	starfishctl -addr 127.0.0.1:7100 -admin starfish RSTORE   # memory-store health
//	starfishctl -addr 127.0.0.1:7100 -admin starfish EVENTS component=gcs since=30s
//	starfishctl -addr 127.0.0.1:7100 -admin starfish TAIL component=gcs kind=view-change
//	starfishctl -addr 127.0.0.1:7100 -admin starfish      # interactive session
//
// SUBMIT's optional trailing field selects the checkpoint storage backend
// (disk, memory, or tiered); RSTORE reports the local replicated
// memory-store shard: size, replica health, and push/fetch counters.
//
// TAIL streams structured event records live (admin only) and keeps
// following across daemon restarts: every record line carries its sequence
// number, so after a disconnect the client reconnects and resumes the query
// with `seq><last-seen>` — no duplicates, no gaps within the retention
// window.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/mgmt"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7100", "daemon management address")
		admin = flag.String("admin", "", "log in as administrator with this password")
		user  = flag.String("user", "", "log in as this user")
	)
	flag.Parse()

	c, err := mgmt.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch {
	case *admin != "":
		err = c.LoginAdmin(*admin)
	case *user != "":
		err = c.LoginUser(*user)
	default:
		log.Fatal("starfishctl: one of -admin or -user is required")
	}
	if err != nil {
		log.Fatalf("starfishctl: login: %v", err)
	}

	if flag.NArg() > 0 {
		if strings.EqualFold(flag.Arg(0), "TAIL") {
			c.Close()
			if *admin == "" {
				log.Fatal("starfishctl: TAIL requires -admin")
			}
			tailLoop(*addr, *admin, strings.Join(flag.Args()[1:], " "))
			return
		}
		run(c, strings.Join(flag.Args(), " "))
		return
	}

	// Interactive session.
	fmt.Println("starfishctl: connected; type commands (QUIT to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		run(c, line)
		if strings.EqualFold(line, "QUIT") {
			return
		}
	}
}

// tailLoop follows an event query across reconnects: it remembers the last
// sequence number printed and, after any disconnect, dials again and
// narrows the query to `seq><last-seen>` so the stream resumes exactly
// where it stopped. It returns when the server ends a stream cleanly.
func tailLoop(addr, password, query string) {
	var lastSeen uint64
	for attempt := 0; ; attempt++ {
		err := tailOnce(addr, password, query, &lastSeen)
		if err == nil {
			return
		}
		if attempt == 0 {
			// Login or query errors on the very first attempt are fatal —
			// retrying a bad query forever helps nobody.
			log.Fatalf("starfishctl: tail: %v", err)
		}
		log.Printf("starfishctl: tail disconnected (%v); resuming after seq %d", err, lastSeen)
		time.Sleep(500 * time.Millisecond)
	}
}

func tailOnce(addr, password, query string, lastSeen *uint64) error {
	c, err := mgmt.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.LoginAdmin(password); err != nil {
		return err
	}
	q := query
	if *lastSeen > 0 {
		q = strings.TrimSpace(fmt.Sprintf("%s seq>%d", query, *lastSeen))
	}
	return c.Tail(q, func(line string) error {
		fmt.Println(line)
		if seq, ok := evstore.LineSeq(line); ok {
			*lastSeen = seq
		}
		return nil
	})
}

func run(c *mgmt.Client, line string) {
	if strings.EqualFold(strings.Fields(line)[0], "TAIL") {
		fmt.Fprintln(os.Stderr, "ERR interactive TAIL is not supported; run: starfishctl -admin <pw> TAIL <query>")
		return
	}
	out, err := c.Do(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ERR %v\n", err)
		if flag.NArg() > 0 {
			os.Exit(1)
		}
		return
	}
	if len(out) == 0 {
		fmt.Println("OK")
		return
	}
	for _, l := range out {
		if l != "" {
			fmt.Println(l)
		}
	}
}
