package errdrop

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestErrdropFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
