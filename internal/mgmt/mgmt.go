// Package mgmt implements Starfish's management protocol (§3.1.1): an
// ASCII, line-oriented protocol spoken over a TCP connection to any
// daemon. A session begins with a login identifying it as a management
// (administrator) connection or a user connection; management sessions may
// reconfigure the cluster, user sessions are limited to submitting and
// controlling their own applications. The paper's Java GUI is a thin
// client of this protocol; this repository's cmd/starfishctl plays that
// role.
//
// Protocol sketch (requests are single lines; responses are "OK ..." or
// "ERR ..."; multi-line responses are terminated by a lone "."):
//
//	LOGIN ADMIN <password>      LOGIN USER <name>
//	NODES                       ENABLE NODE <id> | DISABLE NODE <id>
//	SET <key> <value>           GET <key>
//	APPS                        STATUS <app>
//	SUBMIT <app> <name> <ranks> <protocol> <encoder> <policy> <every> <hexargs> [store] [delta[:N]]
//	SUSPEND <app>  RESUME <app>  DELETE <app>  CHECKPOINT <app>  MIGRATE <app>
//	RSTORE                      (replicated-memory store health counters)
//	EVENTS <query>              (structured event records matching the
//	                            evstore filter query; newest-biased,
//	                            default limit 1000)
//	TAIL <query>                (streams matching records as they happen;
//	                            any client line — say STOP — ends the
//	                            stream, which the server closes with ".")
//	QUIT
//
// Every TAIL record line starts with "seq=<n>"; a disconnected client
// resumes without gaps or duplicates by reconnecting and issuing
// `TAIL <query> seq><last-seen>` (sequence numbers are assigned once, at
// record receive time, and never reused).
package mgmt

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"

	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/evstore"
	"starfish/internal/gcs"
	"starfish/internal/proc"
	"starfish/internal/rstore"
	"starfish/internal/wire"
)

// Cluster is the slice of daemon functionality the management protocol
// drives; *daemon.Daemon satisfies it.
type Cluster interface {
	Submit(spec proc.AppSpec) error
	Suspend(app wire.AppID) error
	Resume(app wire.AppID) error
	Delete(app wire.AppID) error
	Checkpoint(app wire.AppID) error
	Migrate(app wire.AppID) error
	SetNodeEnabled(node wire.NodeID, enabled bool) error
	SetParam(key, value string) error
	Param(key string) string
	AppInfo(app wire.AppID) (daemon.AppInfo, bool)
	Apps() []wire.AppID
	View() gcs.View
	// StoreStats reports the node's replicated-memory checkpoint store
	// counters; ok is false when no memory store is configured.
	StoreStats() (rstore.Stats, bool)
	// EventStore is the node's structured event store; nil disables the
	// EVENTS and TAIL verbs.
	EventStore() *evstore.Store
	// ResolveApp maps a registered application name to an id, so event
	// queries can say `app=ring` instead of `app=7`.
	ResolveApp(name string) (wire.AppID, bool)
}

var _ Cluster = (*daemon.Daemon)(nil)

// Server serves management sessions for one daemon.
type Server struct {
	cluster Cluster
	// AdminPassword guards management logins ("starfish" by default —
	// the paper predates modern security practice, and so does this
	// protocol; do not expose it beyond a trusted LAN).
	adminPassword string
}

// NewServer creates a management server for the given cluster contact.
func NewServer(c Cluster, adminPassword string) *Server {
	if adminPassword == "" {
		adminPassword = "starfish"
	}
	return &Server{cluster: c, adminPassword: adminPassword}
}

// Serve accepts sessions until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		//starfish:allow goleak session ends when its conn closes: Scan errors out and the goroutine returns
		go s.session(conn)
	}
}

// session runs one connection.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)

	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\r\n", args...)
		w.Flush()
	}

	admin := false
	user := ""
	reply("OK starfish management service")
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		verb := strings.ToUpper(fields[0])

		if verb == "QUIT" {
			reply("OK bye")
			return
		}
		if verb == "LOGIN" {
			a, u, err := s.login(fields)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			admin, user = a, u
			if admin {
				reply("OK management connection")
			} else {
				reply("OK user session for %s", user)
			}
			continue
		}
		if !admin && user == "" {
			reply("ERR login required")
			continue
		}
		if verb == "TAIL" {
			if !admin {
				reply("ERR management connection required")
				continue
			}
			if !s.tail(r, w, reply, fields) {
				return // client disconnected mid-stream
			}
			continue
		}
		out, err := s.dispatch(admin, user, verb, fields)
		if err != nil {
			reply("ERR %v", err)
			continue
		}
		if len(out) == 0 {
			reply("OK")
			continue
		}
		if len(out) == 1 {
			reply("OK %s", out[0])
			continue
		}
		reply("OK %d lines", len(out))
		for _, l := range out {
			reply("%s", l)
		}
		reply(".")
	}
}

// parseEventQuery parses and app-resolves the query text after an EVENTS
// or TAIL verb.
func (s *Server) parseEventQuery(fields []string) (*evstore.Store, *evstore.Query, error) {
	st := s.cluster.EventStore()
	if st == nil {
		return nil, nil, fmt.Errorf("no event store on this node")
	}
	q, err := evstore.ParseQuery(strings.Join(fields[1:], " "))
	if err != nil {
		return nil, nil, err
	}
	if err := q.ResolveApps(func(name string) (uint64, bool) {
		id, ok := s.cluster.ResolveApp(name)
		return uint64(id), ok
	}); err != nil {
		return nil, nil, err
	}
	return st, q, nil
}

// tail streams records matching the query until the client sends any line
// (conventionally STOP) or disconnects; the stream is closed with a lone
// ".". It returns false when the client is gone and the session should end.
//
// No gaps, no duplicates: the loop re-queries everything after the last
// streamed seq whenever the store's change generation fires, so delivery is
// pull-based — there is no per-subscriber buffer to overflow. Taking the
// generation channel before the query closes the race between the two.
func (s *Server) tail(r *bufio.Scanner, w *bufio.Writer, reply func(string, ...any), fields []string) bool {
	st, q, err := s.parseEventQuery(fields)
	if err != nil {
		reply("ERR %v", err)
		return true
	}
	if q.Limit > 0 {
		reply("ERR limit is not meaningful for TAIL")
		return true
	}
	reply("OK tailing")
	// One Scan owns the connection's read side until the client speaks
	// (or leaves); its result is always consumed before returning.
	stopped := make(chan bool, 1)
	//starfish:allow goleak single Scan, consumed by the select below before tail returns
	go func() {
		stopped <- r.Scan()
	}()
	var last uint64
	for {
		ch := st.Changed()
		for _, rec := range st.QueryAfter(q, last) {
			fmt.Fprintf(w, "%s\r\n", rec.String())
			last = rec.Seq
		}
		if w.Flush() != nil {
			// Dead connection: the pending Scan fails promptly; consume it.
			<-stopped
			return false
		}
		select {
		case alive := <-stopped:
			reply(".")
			return alive
		case <-ch:
		case <-st.Done():
			// Store closed (node shutting down). Drain records that raced
			// with the close, then go quiet — the read side still belongs
			// to the pending Scan, so wait for the client to stop or
			// disconnect before handing the session loop back.
			for _, rec := range st.QueryAfter(q, last) {
				fmt.Fprintf(w, "%s\r\n", rec.String())
				last = rec.Seq
			}
			w.Flush()
			alive := <-stopped
			reply(".")
			return alive
		}
	}
}

func (s *Server) login(fields []string) (admin bool, user string, err error) {
	if len(fields) < 3 {
		return false, "", fmt.Errorf("usage: LOGIN ADMIN <password> | LOGIN USER <name>")
	}
	switch strings.ToUpper(fields[1]) {
	case "ADMIN":
		if fields[2] != s.adminPassword {
			return false, "", fmt.Errorf("bad credentials")
		}
		return true, "admin", nil
	case "USER":
		return false, fields[2], nil
	default:
		return false, "", fmt.Errorf("unknown login kind %q", fields[1])
	}
}

// checkOwner enforces that user sessions only touch their own apps.
func (s *Server) checkOwner(admin bool, user string, app wire.AppID) error {
	if admin {
		return nil
	}
	info, ok := s.cluster.AppInfo(app)
	if !ok {
		return fmt.Errorf("unknown app %d", app)
	}
	if info.Spec.Owner != user {
		return fmt.Errorf("app %d belongs to %q", app, info.Spec.Owner)
	}
	return nil
}

func parseAppID(s string) (wire.AppID, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad app id %q", s)
	}
	return wire.AppID(v), nil
}

func (s *Server) dispatch(admin bool, user, verb string, fields []string) ([]string, error) {
	switch verb {
	case "NODES":
		v := s.cluster.View()
		out := []string{fmt.Sprintf("view %d coordinator %d", v.ID, v.Coord)}
		for _, m := range v.Members {
			out = append(out, fmt.Sprintf("node %d addr %s", m, v.Addrs[m]))
		}
		return out, nil

	case "ENABLE", "DISABLE":
		if !admin {
			return nil, fmt.Errorf("management connection required")
		}
		if len(fields) != 3 || strings.ToUpper(fields[1]) != "NODE" {
			return nil, fmt.Errorf("usage: %s NODE <id>", verb)
		}
		id, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", fields[2])
		}
		return nil, s.cluster.SetNodeEnabled(wire.NodeID(id), verb == "ENABLE")

	case "SET":
		if !admin {
			return nil, fmt.Errorf("management connection required")
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("usage: SET <key> <value>")
		}
		return nil, s.cluster.SetParam(fields[1], strings.Join(fields[2:], " "))

	case "GET":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: GET <key>")
		}
		return []string{s.cluster.Param(fields[1])}, nil

	case "APPS":
		ids := s.cluster.Apps()
		out := make([]string, 0, len(ids)+1)
		for _, id := range ids {
			info, ok := s.cluster.AppInfo(id)
			if !ok {
				continue
			}
			if !admin && info.Spec.Owner != user {
				continue
			}
			out = append(out, fmt.Sprintf("app %d %s status %s gen %d owner %s",
				id, info.Spec.Name, info.Status, info.Gen, info.Spec.Owner))
		}
		if len(out) == 0 {
			out = []string{"no applications"}
		}
		if len(out) == 1 {
			out = append(out, "") // force multi-line framing for parsers
		}
		return out, nil

	case "STATUS":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: STATUS <app>")
		}
		id, err := parseAppID(fields[1])
		if err != nil {
			return nil, err
		}
		if err := s.checkOwner(admin, user, id); err != nil {
			return nil, err
		}
		info, _ := s.cluster.AppInfo(id)
		out := []string{
			fmt.Sprintf("app %d %s", id, info.Spec.Name),
			fmt.Sprintf("status %s gen %d done %d/%d", info.Status, info.Gen, info.DoneRanks, info.Spec.Ranks),
			fmt.Sprintf("protocol %s encoder %s policy %s store %s",
				info.Spec.Protocol, info.Spec.Encoder, info.Spec.Policy, info.Spec.Store),
		}
		ranks := make([]int, 0, len(info.Placement))
		for r := range info.Placement {
			ranks = append(ranks, int(r))
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			out = append(out, fmt.Sprintf("rank %d node %d", r, info.Placement[wire.Rank(r)]))
		}
		if info.Failure != "" {
			out = append(out, "failure "+info.Failure)
		}
		return out, nil

	case "RSTORE":
		st, ok := s.cluster.StoreStats()
		if !ok {
			return nil, fmt.Errorf("no replicated memory store on this node")
		}
		return []string{
			fmt.Sprintf("node %d members %d replicas %d", st.Node, st.Members, st.Replicas),
			fmt.Sprintf("images %d bytes %d index %d commits %d", st.Images, st.Bytes, st.IndexEntries, st.Commits),
			fmt.Sprintf("under-replicated %d pushes %d push-failures %d", st.UnderReplicated, st.Pushes, st.PushFailures),
			fmt.Sprintf("peer-fetches %d peer-fetch-misses %d", st.PeerFetches, st.PeerFetchMisses),
		}, nil

	case "SUBMIT":
		if len(fields) < 9 || len(fields) > 11 {
			return nil, fmt.Errorf("usage: SUBMIT <app> <name> <ranks> <protocol> <encoder> <policy> <every> <hexargs> [store] [delta[:N]]")
		}
		id, err := parseAppID(fields[1])
		if err != nil {
			return nil, err
		}
		ranks, err := strconv.Atoi(fields[3])
		if err != nil || ranks <= 0 {
			return nil, fmt.Errorf("bad rank count %q", fields[3])
		}
		protocol, err := ParseProtocol(fields[4])
		if err != nil {
			return nil, err
		}
		encoder, err := ParseEncoder(fields[5])
		if err != nil {
			return nil, err
		}
		policy, err := ParsePolicy(fields[6])
		if err != nil {
			return nil, err
		}
		every, err := strconv.ParseUint(fields[7], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad checkpoint interval %q", fields[7])
		}
		var args []byte
		if fields[8] != "-" {
			args, err = hex.DecodeString(fields[8])
			if err != nil {
				return nil, fmt.Errorf("bad hex args: %v", err)
			}
		}
		store := ckpt.StoreDisk
		if len(fields) >= 10 {
			store, err = ParseStoreKind(fields[9])
			if err != nil {
				return nil, err
			}
		}
		var delta bool
		var fullEvery uint32
		if len(fields) == 11 {
			delta, fullEvery, err = ParseDeltaOption(fields[10])
			if err != nil {
				return nil, err
			}
		}
		return nil, s.cluster.Submit(proc.AppSpec{
			ID: id, Name: fields[2], Args: args, Ranks: ranks,
			Protocol: protocol, Encoder: encoder, Policy: policy,
			CkptEverySteps: every, Owner: user, Store: store,
			DeltaCkpt: delta, FullEvery: fullEvery,
		})

	case "EVENTS":
		if !admin {
			return nil, fmt.Errorf("management connection required")
		}
		st, q, err := s.parseEventQuery(fields)
		if err != nil {
			return nil, err
		}
		if q.Limit == 0 {
			q.Limit = 1000 // newest 1000 unless the query says otherwise
		}
		recs := st.Query(q)
		out := make([]string, 0, len(recs))
		for i := range recs {
			// A lone record rides the single-line OK framing: its "seq="
			// prefix cannot be mistaken for an "N lines" header.
			out = append(out, recs[i].String())
		}
		return out, nil

	case "SUSPEND", "RESUME", "DELETE", "CHECKPOINT", "MIGRATE":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: %s <app>", verb)
		}
		id, err := parseAppID(fields[1])
		if err != nil {
			return nil, err
		}
		if err := s.checkOwner(admin, user, id); err != nil {
			return nil, err
		}
		switch verb {
		case "SUSPEND":
			return nil, s.cluster.Suspend(id)
		case "RESUME":
			return nil, s.cluster.Resume(id)
		case "DELETE":
			return nil, s.cluster.Delete(id)
		case "CHECKPOINT":
			return nil, s.cluster.Checkpoint(id)
		default:
			return nil, s.cluster.Migrate(id)
		}

	default:
		return nil, fmt.Errorf("unknown command %q", verb)
	}
}

// ParseProtocol maps a protocol name to its ckpt constant.
func ParseProtocol(s string) (ckpt.Protocol, error) {
	switch strings.ToLower(s) {
	case "stop-and-sync", "sfs":
		return ckpt.StopAndSync, nil
	case "chandy-lamport", "cl":
		return ckpt.ChandyLamport, nil
	case "independent", "ind":
		return ckpt.Independent, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

// ParseEncoder maps an encoder name to its ckpt constant.
func ParseEncoder(s string) (ckpt.Kind, error) {
	switch strings.ToLower(s) {
	case "native":
		return ckpt.Native, nil
	case "portable", "vm":
		return ckpt.Portable, nil
	default:
		return 0, fmt.Errorf("unknown encoder %q", s)
	}
}

// ParseStoreKind maps a storage-backend name to its ckpt constant.
func ParseStoreKind(s string) (ckpt.StoreKind, error) {
	switch strings.ToLower(s) {
	case "disk":
		return ckpt.StoreDisk, nil
	case "memory", "mem", "rstore":
		return ckpt.StoreMemory, nil
	case "tiered":
		return ckpt.StoreTiered, nil
	default:
		return 0, fmt.Errorf("unknown store kind %q", s)
	}
}

// ParseDeltaOption parses the optional SUBMIT delta flag: "full" disables
// the incremental pipeline, "delta" enables it at the default full-record
// cadence, "delta:N" enables it with a full record every N epochs.
func ParseDeltaOption(s string) (delta bool, fullEvery uint32, err error) {
	low := strings.ToLower(s)
	switch {
	case low == "full":
		return false, 0, nil
	case low == "delta":
		return true, 0, nil
	case strings.HasPrefix(low, "delta:"):
		n, err := strconv.ParseUint(low[len("delta:"):], 10, 32)
		if err != nil || n == 0 {
			return false, 0, fmt.Errorf("bad delta cadence %q", s)
		}
		return true, uint32(n), nil
	default:
		return false, 0, fmt.Errorf("unknown delta option %q", s)
	}
}

// ParsePolicy maps a policy name to its proc constant.
func ParsePolicy(s string) (proc.Policy, error) {
	switch strings.ToLower(s) {
	case "kill":
		return proc.PolicyKill, nil
	case "restart":
		return proc.PolicyRestart, nil
	case "notify":
		return proc.PolicyNotify, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// ---- client ----

// Client speaks the management protocol; it backs cmd/starfishctl and the
// protocol tests.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a daemon's management address and consumes the banner.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}
	c.r.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if _, err := c.readLine(); err != nil { // banner
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLine() (string, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	return strings.TrimRight(c.r.Text(), "\r"), nil
}

// Do sends one command line and returns the response body. Multi-line
// responses are returned as the slice of lines; single-line OK responses
// return the text after "OK".
func (c *Client) Do(line string) ([]string, error) {
	if _, err := fmt.Fprintf(c.w, "%s\r\n", line); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	first, err := c.readLine()
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasPrefix(first, "ERR "):
		return nil, fmt.Errorf("%s", strings.TrimPrefix(first, "ERR "))
	case first == "OK":
		return nil, nil
	case strings.HasPrefix(first, "OK "):
		rest := strings.TrimPrefix(first, "OK ")
		var n int
		if _, err := fmt.Sscanf(rest, "%d lines", &n); err == nil {
			var out []string
			for {
				l, err := c.readLine()
				if err != nil {
					return nil, err
				}
				if l == "." {
					return out, nil
				}
				out = append(out, l)
			}
		}
		return []string{rest}, nil
	default:
		return nil, fmt.Errorf("mgmt: malformed response %q", first)
	}
}

// LoginAdmin authenticates a management connection.
func (c *Client) LoginAdmin(password string) error {
	_, err := c.Do("LOGIN ADMIN " + password)
	return err
}

// LoginUser opens a user session.
func (c *Client) LoginUser(name string) error {
	_, err := c.Do("LOGIN USER " + name)
	return err
}

// Events fetches stored event records matching an evstore filter query.
func (c *Client) Events(query string) ([]string, error) {
	return c.Do(strings.TrimSpace("EVENTS " + query))
}

// ErrStopTail is returned by a Tail callback to end the stream cleanly.
var ErrStopTail = errors.New("mgmt: stop tail")

// Tail streams event records matching the query, invoking fn for each
// record line until fn returns an error or the server ends the stream.
// Returning ErrStopTail stops tailing cleanly (remaining in-flight lines
// are discarded); any other fn error is returned as-is, with the session
// left mid-stream — the caller should close the connection. Each line
// starts with "seq=<n>" (see evstore.LineSeq); resume after a disconnect
// by adding `seq><last-seen>` to the query of the next Tail.
func (c *Client) Tail(query string, fn func(line string) error) error {
	if _, err := fmt.Fprintf(c.w, "%s\r\n", strings.TrimSpace("TAIL "+query)); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	first, err := c.readLine()
	if err != nil {
		return err
	}
	if strings.HasPrefix(first, "ERR ") {
		return fmt.Errorf("%s", strings.TrimPrefix(first, "ERR "))
	}
	if !strings.HasPrefix(first, "OK") {
		return fmt.Errorf("mgmt: malformed response %q", first)
	}
	stopping := false
	for {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if line == "." {
			return nil
		}
		if stopping {
			continue // drain in-flight lines after STOP
		}
		switch err := fn(line); {
		case err == nil:
		case errors.Is(err, ErrStopTail):
			if _, werr := fmt.Fprintf(c.w, "STOP\r\n"); werr != nil {
				return werr
			}
			if werr := c.w.Flush(); werr != nil {
				return werr
			}
			stopping = true
		default:
			return err
		}
	}
}

// Submit sends a SUBMIT command for the given spec.
func (c *Client) Submit(spec proc.AppSpec) error {
	args := "-"
	if len(spec.Args) > 0 {
		args = hex.EncodeToString(spec.Args)
	}
	cmd := fmt.Sprintf("SUBMIT %d %s %d %s %s %s %d %s %s",
		spec.ID, spec.Name, spec.Ranks, spec.Protocol, spec.Encoder,
		strings.ToLower(spec.Policy.String()), spec.CkptEverySteps, args,
		spec.Store)
	if spec.DeltaCkpt {
		if spec.FullEvery > 0 {
			cmd += fmt.Sprintf(" delta:%d", spec.FullEvery)
		} else {
			cmd += " delta"
		}
	}
	_, err := c.Do(cmd)
	return err
}
