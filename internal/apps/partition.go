package apps

import (
	"fmt"
	"sync"

	"starfish/internal/proc"
	"starfish/internal/wire"
)

// Partition is a trivially parallel workload: NChunks independent work
// items are divided among the ranks by round-robin over the alive set.
// When a node dies, the surviving processes receive a view-change upcall,
// repartition the chunk space so the whole computation is still covered
// with no duplicates (§3.2.1), and continue without interruption. Each
// chunk costs WorkPerChunk "operations" (a deterministic arithmetic loop).
//
// A rank finishes when every chunk assigned to it under the final alive
// set is processed; it fails if its processed set does not cover that
// assignment.
type Partition struct {
	NChunks      int
	WorkPerChunk int

	mu          sync.Mutex
	alive       []wire.Rank
	processed   map[int]bool
	sum         int64
	cursor      int
	announce    bool
	Repartition int // repartition coordination casts observed
}

// PartitionArgs encodes submission arguments.
func PartitionArgs(chunks, workPerChunk int) []byte {
	w := wire.NewWriter(8)
	w.U32(uint32(chunks)).U32(uint32(workPerChunk))
	return w.Bytes()
}

// DecodePartition parses PartitionArgs.
func DecodePartition(args []byte) (*Partition, error) {
	r := wire.NewReader(args)
	a := &Partition{NChunks: int(r.U32()), WorkPerChunk: int(r.U32())}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if a.NChunks <= 0 {
		return nil, fmt.Errorf("partition: bad chunk count %d", a.NChunks)
	}
	return a, nil
}

// Init implements proc.App and registers the view-change upcall.
func (a *Partition) Init(ctx *proc.Ctx) error {
	a.processed = make(map[int]bool)
	for r := 0; r < ctx.Size; r++ {
		a.alive = append(a.alive, wire.Rank(r))
	}
	ctx.OnView(func(alive, departed []wire.Rank) {
		a.mu.Lock()
		a.alive = append([]wire.Rank(nil), alive...)
		a.cursor = 0 // rescan: our share may have grown
		a.announce = true
		a.mu.Unlock()
	})
	ctx.OnCoordination(func(from wire.Rank, payload []byte) {
		if string(payload) == "repartitioned" {
			a.mu.Lock()
			a.Repartition++
			a.mu.Unlock()
		}
	})
	return nil
}

// Restore implements proc.App.
func (a *Partition) Restore(ctx *proc.Ctx, state []byte) error {
	if err := a.Init(ctx); err != nil {
		return err
	}
	r := wire.NewReader(state)
	a.sum = r.I64()
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		a.processed[int(r.U32())] = true
	}
	return r.Err()
}

// Snapshot implements proc.App.
func (a *Partition) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := wire.NewWriter(16 + 4*len(a.processed))
	w.I64(a.sum)
	w.U32(uint32(len(a.processed)))
	for c := 0; c < a.NChunks; c++ {
		if a.processed[c] {
			w.U32(uint32(c))
		}
	}
	return w.Bytes(), nil
}

// mine reports whether chunk c belongs to this rank under the current
// alive set.
func (a *Partition) mine(c int, rank wire.Rank) bool {
	owner := a.alive[c%len(a.alive)]
	return owner == rank
}

// Step implements proc.App: process the next unprocessed owned chunk.
func (a *Partition) Step(ctx *proc.Ctx) (bool, error) {
	a.mu.Lock()
	if a.announce {
		// Tell the other survivors we repartitioned — an application-
		// level coordination message riding the daemons' reliable
		// multicast (§2.2's coordination message type).
		a.announce = false
		a.mu.Unlock()
		if err := ctx.Coordinate([]byte("repartitioned")); err != nil {
			return false, err
		}
		a.mu.Lock()
	}
	// Find the next chunk this rank owns and has not processed.
	c := -1
	for ; a.cursor < a.NChunks; a.cursor++ {
		if a.mine(a.cursor, ctx.Rank) && !a.processed[a.cursor] {
			c = a.cursor
			break
		}
	}
	if c < 0 {
		// Nothing left: verify coverage of the final assignment.
		for i := 0; i < a.NChunks; i++ {
			if a.mine(i, ctx.Rank) && !a.processed[i] {
				a.mu.Unlock()
				return true, fmt.Errorf("partition rank %d: chunk %d unprocessed", ctx.Rank, i)
			}
		}
		a.mu.Unlock()
		return true, nil
	}
	a.mu.Unlock()

	// Deterministic "work".
	v := int64(c)
	for i := 0; i < a.WorkPerChunk; i++ {
		v = (v*1103515245 + 12345) & 0x7fffffff
	}

	a.mu.Lock()
	a.processed[c] = true
	a.sum += v
	a.mu.Unlock()
	return false, nil
}

// Processed returns how many chunks this rank handled.
func (a *Partition) Processed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.processed)
}
