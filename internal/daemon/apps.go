package daemon

import (
	"fmt"
	"sort"

	"starfish/internal/ckpt"
	"starfish/internal/evstore"
	"starfish/internal/gcs"
	"starfish/internal/lwg"
	"starfish/internal/proc"
	"starfish/internal/wire"
)

// ---- public API (used by the management module and the cluster harness) ----

// Submit launches an application on the cluster. The spec is replicated to
// every daemon, which derive the same placement and spawn their share of
// the processes.
func (d *Daemon) Submit(spec proc.AppSpec) error {
	if spec.Ranks <= 0 {
		return fmt.Errorf("daemon: spec needs at least one rank")
	}
	return d.castCmd(&Cmd{Kind: CmdSubmit, App: spec.ID, Spec: &spec})
}

// Suspend pauses an application at its next safe points.
func (d *Daemon) Suspend(app wire.AppID) error {
	return d.castCmd(&Cmd{Kind: CmdSuspend, App: app})
}

// Resume continues a suspended application.
func (d *Daemon) Resume(app wire.AppID) error {
	return d.castCmd(&Cmd{Kind: CmdResume, App: app})
}

// Delete terminates an application and removes its replicated state.
func (d *Daemon) Delete(app wire.AppID) error {
	return d.castCmd(&Cmd{Kind: CmdDelete, App: app})
}

// Checkpoint triggers a checkpoint round of the application's protocol
// (system-initiated checkpointing).
func (d *Daemon) Checkpoint(app wire.AppID) error {
	return d.castCmd(&Cmd{Kind: CmdCheckpoint, App: app})
}

// Migrate restarts the application from its most recent recovery line with
// a freshly computed placement — this is how Starfish moves processes to
// better or newly added nodes (§3.2.1).
func (d *Daemon) Migrate(app wire.AppID) error {
	line, err := d.recoveryLine(app)
	if err != nil {
		return err
	}
	return d.castCmd(&Cmd{Kind: CmdRestart, App: app, Line: line})
}

// SetNodeEnabled includes or excludes a node from future placements.
func (d *Daemon) SetNodeEnabled(node wire.NodeID, enabled bool) error {
	return d.castCmd(&Cmd{Kind: CmdSetNodeEnabled, Node: node, Flag: enabled})
}

// SetParam replicates a named cluster parameter.
func (d *Daemon) SetParam(key, value string) error {
	return d.castCmd(&Cmd{Kind: CmdSetParam, Key: key, Value: value})
}

// Param reads a replicated cluster parameter.
func (d *Daemon) Param(key string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.params[key]
}

// AppInfo is a snapshot of an application's replicated state.
type AppInfo struct {
	Spec      proc.AppSpec
	Status    AppStatus
	Gen       uint32
	Placement map[wire.Rank]wire.NodeID
	DoneRanks int
	Failure   string
}

// AppInfo returns the state of one application (ok=false if unknown).
func (d *Daemon) AppInfo(app wire.AppID) (AppInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.apps[app]
	if !ok {
		return AppInfo{}, false
	}
	info := AppInfo{
		Spec: st.spec, Status: st.status, Gen: st.gen,
		Placement: make(map[wire.Rank]wire.NodeID, len(st.placement)),
		DoneRanks: len(st.done), Failure: st.failure,
	}
	for r, n := range st.placement {
		info.Placement[r] = n
	}
	return info, true
}

// Apps lists known application ids, sorted.
func (d *Daemon) Apps() []wire.AppID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]wire.AppID, 0, len(d.apps))
	for id := range d.apps {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// View returns the daemon's current main-group view.
func (d *Daemon) View() gcs.View {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.view.Clone()
}

// recoveryLine determines the line an application would restart from right
// now: the committed line for coordinated protocols, the computed line for
// the independent protocol, all-zeros (fresh restart) if no checkpoints
// exist.
func (d *Daemon) recoveryLine(app wire.AppID) (ckpt.RecoveryLine, error) {
	d.mu.Lock()
	st, ok := d.apps[app]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("daemon: unknown app %d", app)
	}
	zero := make(ckpt.RecoveryLine, st.spec.Ranks)
	for r := 0; r < st.spec.Ranks; r++ {
		zero[wire.Rank(r)] = 0
	}
	be := d.backendFor(&st.spec)
	if st.spec.Protocol.Coordinated() {
		line, err := be.CommittedLine(app)
		if err != nil {
			return zero, nil
		}
		return line, nil
	}
	line, err := ckpt.GatherLine(be, app)
	if err != nil {
		return zero, nil
	}
	// Ranks with no checkpoints restart from scratch.
	for r := 0; r < st.spec.Ranks; r++ {
		if _, ok := line[wire.Rank(r)]; !ok {
			line[wire.Rank(r)] = 0
		}
	}
	return line, nil
}

// ---- replicated command application (total order ⇒ identical everywhere) ----

func (d *Daemon) applyCmd(c *Cmd) {
	switch c.Kind {
	case CmdSubmit:
		d.applySubmit(c)
	case CmdDelete:
		d.applyDelete(c)
	case CmdSuspend, CmdResume:
		kind := proc.CfgSuspend
		status := StatusSuspended
		if c.Kind == CmdResume {
			kind = proc.CfgResume
			status = StatusRunning
		}
		d.mu.Lock()
		st := d.apps[c.App]
		if st != nil && (st.status == StatusRunning || st.status == StatusSuspended) {
			st.status = status
		}
		eps := d.localEndpointsLocked(c.App)
		d.mu.Unlock()
		if st != nil {
			name := "suspend"
			if c.Kind == CmdResume {
				name = "resume"
			}
			d.ev.Emit(evstore.EvApp(name, c.App))
		}
		for _, ep := range eps {
			ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: kind, App: c.App})
		}
	case CmdCheckpoint:
		d.mu.Lock()
		st := d.apps[c.App]
		var eps []*endpoint
		if st != nil {
			if st.spec.Protocol == ckpt.Independent {
				eps = d.localEndpointsLocked(c.App) // everyone checkpoints
			} else if ep, ok := d.local[c.App][0]; ok {
				eps = []*endpoint{ep} // rank 0 initiates the round
			}
		}
		d.mu.Unlock()
		for _, ep := range eps {
			ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgCkptNow, App: c.App})
		}
	case CmdRankDone:
		d.applyRankDone(c)
	case CmdRestart:
		d.applyRestart(c)
	case CmdSetNodeEnabled:
		d.mu.Lock()
		if c.Flag {
			delete(d.disabled, c.Node)
		} else {
			d.disabled[c.Node] = true
		}
		d.mu.Unlock()
	case CmdSetParam:
		d.mu.Lock()
		d.params[c.Key] = c.Value
		d.mu.Unlock()
	}
}

func (d *Daemon) applySubmit(c *Cmd) {
	if c.Spec == nil {
		return
	}
	d.mu.Lock()
	if _, dup := d.apps[c.App]; dup {
		d.mu.Unlock()
		d.logf("duplicate submit of app %d ignored", c.App)
		return
	}
	st := &appState{
		spec:   *c.Spec,
		status: StatusLaunching,
		gen:    1,
		done:   make(map[wire.Rank]bool),
		addrs:  make(map[wire.Rank]string),
	}
	st.placement = placeRanks(st.spec.Ranks, d.eligibleNodesLocked())
	d.apps[c.App] = st
	if st.placement == nil {
		st.status = StatusFailed
		st.failure = ErrNoNodes.Error()
		d.mu.Unlock()
		d.ev.Emit(evstore.EvApp("app-failed", c.App, evstore.F("err", ErrNoNodes)))
		return
	}
	d.mu.Unlock()
	d.ev.Emit(evstore.EvApp("submit", c.App,
		evstore.F("name", st.spec.Name),
		evstore.F("ranks", st.spec.Ranks),
		evstore.F("protocol", st.spec.Protocol),
		evstore.F("policy", st.spec.Policy)))
	d.spawnLocal(c.App)
}

func (d *Daemon) applyDelete(c *Cmd) {
	d.mu.Lock()
	var be ckpt.Backend
	if st, ok := d.apps[c.App]; ok {
		be = d.backendFor(&st.spec)
	}
	_, known := d.apps[c.App]
	delete(d.apps, c.App)
	eps := d.localEndpointsLocked(c.App)
	delete(d.local, c.App)
	d.mu.Unlock()
	if known {
		d.ev.Emit(evstore.EvApp("delete", c.App))
	}
	d.router.Drop(c.App)
	for _, ep := range eps {
		ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgAbort, App: c.App})
		ep.link.Close()
	}
	if d.leader() {
		d.castLW(&lwg.Op{Kind: lwg.OpDissolve, App: c.App})
		if be == nil {
			be = d.cfg.Store
		}
		if be != nil {
			be.DropApp(c.App)
		}
	}
}

func (d *Daemon) applyRankDone(c *Cmd) {
	d.mu.Lock()
	st := d.apps[c.App]
	if st == nil || c.Gen != st.gen || st.status == StatusDone || st.status == StatusFailed {
		d.mu.Unlock()
		return
	}
	if c.Err != "" && c.Err != proc.ErrAborted.Error() {
		st.failure = c.Err
		st.status = StatusFailed
		eps := d.localEndpointsLocked(c.App)
		delete(d.local, c.App)
		d.mu.Unlock()
		d.ev.Emit(evstore.EvRank("app-failed", c.App, c.Rank, evstore.F("err", c.Err)))
		d.router.Drop(c.App)
		// A genuine application error: tear everything down.
		for _, ep := range eps {
			ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgAbort, App: c.App})
			ep.link.Close()
		}
		return
	}
	st.done[c.Rank] = true
	d.mu.Unlock()
	d.checkComplete(c.App)
}

// checkComplete marks an application done once every non-lost rank has
// finished, tearing down local endpoints and dissolving the group.
func (d *Daemon) checkComplete(app wire.AppID) {
	d.mu.Lock()
	st := d.apps[app]
	if st == nil || st.status == StatusDone || st.status == StatusFailed {
		d.mu.Unlock()
		return
	}
	for r := 0; r < st.spec.Ranks; r++ {
		if !st.done[wire.Rank(r)] && !st.lost[wire.Rank(r)] {
			d.mu.Unlock()
			return
		}
	}
	st.status = StatusDone
	eps := d.localEndpointsLocked(app)
	delete(d.local, app)
	d.mu.Unlock()
	d.ev.Emit(evstore.EvApp("app-done", app))
	d.router.Drop(app)
	// All ranks finished: tear down local endpoints (processes exit their
	// serve loop when the link closes) and dissolve the group.
	for _, ep := range eps {
		ep.link.Close()
	}
	if d.leader() {
		d.castLW(&lwg.Op{Kind: lwg.OpDissolve, App: app})
	}
}

func (d *Daemon) applyRestart(c *Cmd) {
	d.mu.Lock()
	st := d.apps[c.App]
	if st == nil || st.status == StatusDone || st.status == StatusFailed {
		// Completed apps are not restarted (a migrate command can race
		// with completion).
		d.mu.Unlock()
		return
	}
	st.gen++
	st.status = StatusRestarting
	st.line = c.Line
	st.started = false
	st.done = make(map[wire.Rank]bool)
	st.addrs = make(map[wire.Rank]string)
	st.placement = placeRanks(st.spec.Ranks, d.eligibleNodesLocked())
	oldEps := d.localEndpointsLocked(c.App)
	delete(d.local, c.App)
	noNodes := st.placement == nil
	if noNodes {
		st.status = StatusFailed
		st.failure = ErrNoNodes.Error()
	}
	gen := st.gen
	d.mu.Unlock()
	if noNodes {
		d.ev.Emit(evstore.EvApp("app-failed", c.App, evstore.F("err", ErrNoNodes)))
	} else {
		d.ev.Emit(evstore.EvApp("restarting", c.App,
			evstore.F("gen", gen), evstore.F("line", c.Line)))
	}

	// Abort the previous incarnation's local processes and drop its
	// sequencer streams; the new generation forms fresh ones in spawnLocal.
	d.router.Drop(c.App)
	for _, ep := range oldEps {
		ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgAbort, App: c.App})
		ep.link.Close()
	}
	if noNodes {
		return
	}
	d.spawnLocal(c.App)
}

// ---- spawning and start coordination ----

// spawnLocal creates this daemon's share of an application's processes for
// the current generation and announces them to the lightweight group.
func (d *Daemon) spawnLocal(app wire.AppID) {
	d.mu.Lock()
	st := d.apps[app]
	if st == nil {
		d.mu.Unlock()
		return
	}
	gen := st.gen
	spec := st.spec
	var myRanks []wire.Rank
	hosts := make(map[wire.NodeID]bool)
	for r, node := range st.placement {
		hosts[node] = true
		if node == d.cfg.Node {
			myRanks = append(myRanks, r)
		}
	}
	sort.Slice(myRanks, func(i, j int) bool { return myRanks[i] < myRanks[j] })
	d.mu.Unlock()
	groupNodes := make([]wire.NodeID, 0, len(hosts))
	for n := range hosts {
		groupNodes = append(groupNodes, n)
	}

	meta := lwMeta{Gen: gen, Addrs: make(map[wire.Rank]string, len(myRanks))}
	if len(myRanks) > 0 {
		eps := make(map[wire.Rank]*endpoint, len(myRanks))
		for _, rank := range myRanks {
			pside, dside := proc.NewChanLink(0)
			p, err := proc.New(proc.Config{
				Spec:       spec,
				Rank:       rank,
				Arch:       d.cfg.Arch,
				Store:      d.backendFor(&spec),
				Link:       pside,
				Transport:  d.cfg.Transport,
				ListenAddr: d.cfg.DataAddr(app, gen, rank),
				Events:     d.cfg.Events.Emitter("proc"),
				Logf:       d.cfg.Logf,
			})
			if err != nil {
				d.logf("spawn app %d rank %d: %v", app, rank, err)
				continue
			}
			ep := &endpoint{rank: rank, gen: gen, link: dside, p: p}
			eps[rank] = ep
			meta.Addrs[rank] = p.Addr()
			go d.pumpEndpoint(app, ep)
			p.Start()
		}
		d.mu.Lock()
		d.local[app] = eps
		d.mu.Unlock()
	}
	// Join the lightweight group (even with zero local ranks a daemon may
	// skip joining; only hosting daemons are members). The hosting daemons
	// also form the app's per-group sequencer stream: the router announces
	// our OpJoin only once the local stream endpoint exists (creator first,
	// carrying its contact address in the metadata), so by the time every
	// member's join has sequenced — the condition maybeStart gates on —
	// every member's stream endpoint is up and scoped casts can bypass the
	// main group entirely.
	if len(myRanks) > 0 {
		d.router.Ensure(app, gen, groupNodes, func(gcsAddr string) {
			m := meta
			m.GCS = gcsAddr
			if err := d.castLW(&lwg.Op{
				Kind: lwg.OpJoin, App: app, Node: d.cfg.Node, Meta: encodeLWMeta(&m),
			}); err != nil {
				d.logf("lw join app %d: %v", app, err)
			}
		})
	} else {
		// Not hosting this generation: leave the group if we were in it.
		d.castLW(&lwg.Op{Kind: lwg.OpLeave, App: app, Node: d.cfg.Node})
	}
}

// pumpEndpoint forwards one local process's messages into the daemon loop.
func (d *Daemon) pumpEndpoint(app wire.AppID, ep *endpoint) {
	for {
		select {
		case m := <-ep.link.Recv():
			select {
			case d.inbox <- inboxMsg{app: app, rank: ep.rank, gen: ep.gen, m: m}:
			case <-d.stop:
				return
			}
		case <-ep.link.Done():
			return
		case <-d.stop:
			return
		}
	}
}

// handleProcessMsg routes one message from a local application process.
func (d *Daemon) handleProcessMsg(im inboxMsg) {
	switch im.m.Type {
	case wire.TConfiguration:
		if im.m.Kind == proc.CfgDone {
			d.castCmd(&Cmd{
				Kind: CmdRankDone, App: im.app, Rank: im.rank, Gen: im.gen,
				Err: string(im.m.Payload),
			})
		}
	case wire.TCheckpoint, wire.TCoordination:
		// Relay through the app's own sequencer stream: reliable, ordered,
		// scoped to the daemons hosting this application, and independent
		// of every other app's traffic. The message itself is opaque to us.
		// When this node has no stream for the generation (formation
		// fallback), the cast rides the main group instead — exactly one
		// path either way.
		payload := encodeRelay(&im.m)
		if err := d.router.Cast(im.app, im.gen, payload); err != nil {
			d.castLW(&lwg.Op{Kind: lwg.OpCast, App: im.app, Node: d.cfg.Node,
				Payload: payload})
		}
	}
}

// applyLWOp feeds a lightweight-group operation through the membership
// module and routes the resulting notifications.
func (d *Daemon) applyLWOp(op lwg.Op, from wire.NodeID) {
	notes := d.lwm.HandleOp(op, from)
	for _, n := range notes {
		d.handleLWNotification(n)
	}
	// Joins can complete an app's address map even if we produce no local
	// notification payload changes. A creator's join also carries the
	// per-group stream contact the other members' routers are waiting on.
	if op.Kind == lwg.OpJoin {
		if meta, err := decodeLWMeta(op.Meta); err == nil && meta.GCS != "" {
			d.router.SetContact(op.App, meta.Gen, meta.GCS)
		}
		d.maybeStart(op.App)
	}
}

func (d *Daemon) handleLWNotification(n lwg.Notification) {
	switch n.Kind {
	case lwg.NCast:
		m, err := decodeRelay(n.Payload)
		if err != nil {
			d.logf("bad relay payload: %v", err)
			return
		}
		d.mu.Lock()
		eps := d.localEndpointsLocked(n.App)
		d.mu.Unlock()
		for _, ep := range eps {
			ep.link.Send(m)
		}
	case lwg.NView:
		// Lightweight membership changes reach processes via the
		// endpoint modules; crash-driven shrinks are handled in
		// handleMainView (which has the policy context).
	}
}

// maybeStart issues CfgStart to local processes once every rank's data
// address is known for the current generation.
func (d *Daemon) maybeStart(app wire.AppID) {
	d.mu.Lock()
	st := d.apps[app]
	if st == nil || st.started {
		d.mu.Unlock()
		return
	}
	// Collect addresses from all members' join metadata.
	addrs := make(map[wire.Rank]string, st.spec.Ranks)
	for _, member := range d.lwm.Members(app) {
		metaBytes := d.lwm.MemberMeta(app, member)
		if len(metaBytes) == 0 {
			continue
		}
		meta, err := decodeLWMeta(metaBytes)
		if err != nil || meta.Gen != st.gen {
			continue
		}
		for r, a := range meta.Addrs {
			addrs[r] = a
		}
	}
	if len(addrs) < st.spec.Ranks {
		d.mu.Unlock()
		return // not all ranks announced yet
	}
	st.started = true
	st.addrs = addrs
	if st.status == StatusLaunching || st.status == StatusRestarting {
		st.status = StatusRunning
	}
	line := st.line
	gen := st.gen
	size := st.spec.Ranks
	eps := d.localEndpointsLocked(app)
	d.mu.Unlock()
	d.ev.Emit(evstore.EvApp("running", app, evstore.F("gen", gen)))

	var next uint64 = 1
	for _, idx := range line {
		if idx >= next {
			next = idx + 1
		}
	}
	for _, ep := range eps {
		si := proc.StartInfo{
			Gen: gen, Size: size, Addrs: addrs, NextCkptIndex: next,
		}
		if line != nil {
			si.Restore = true
			si.RestoreIndex = line[ep.rank]
			si.Line = map[wire.Rank]uint64(line)
		}
		ep.link.Send(wire.Msg{
			Type: wire.TConfiguration, Kind: proc.CfgStart, App: app,
			Payload: si.Encode(),
		})
	}
}

func (d *Daemon) localEndpointsLocked(app wire.AppID) []*endpoint {
	eps := d.local[app]
	out := make([]*endpoint, 0, len(eps))
	for _, ep := range eps {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}

// ---- failure handling (§3.2.2) ----

// handleMainView reacts to a Starfish-group view change: reconcile
// lightweight groups, then apply each affected application's
// fault-tolerance policy.
func (d *Daemon) handleMainView(v gcs.View) {
	// Re-point the replicated memory store at the new membership before any
	// recovery decision reads from it: replica placement and peer fetches
	// must not target departed nodes.
	if d.cfg.Memory != nil {
		d.cfg.Memory.UpdateView(v.Members)
	}
	d.mu.Lock()
	prev := d.view
	d.view = v
	affected := map[wire.AppID][]wire.NodeID{}
	for _, app := range d.lwm.Groups() {
		var gone []wire.NodeID
		for _, member := range d.lwm.Members(app) {
			if !v.Contains(member) {
				gone = append(gone, member)
			}
		}
		if len(gone) > 0 {
			affected[app] = gone
		}
	}
	// Placement counts too, not just lightweight membership: a node can
	// die after ranks were placed on it but before its (handshake-deferred)
	// lightweight join sequenced. The app would otherwise wait forever for
	// a join that is never coming.
	for app, st := range d.apps {
		if st.status == StatusDone || st.status == StatusFailed {
			continue
		}
		for _, node := range st.placement {
			if v.Contains(node) || containsNode(affected[app], node) {
				continue
			}
			affected[app] = append(affected[app], node)
		}
	}
	d.mu.Unlock()

	// Forward the main group's failure verdicts into the per-group
	// sequencer streams: their engines run no detector of their own and
	// only remove members the main group has confirmed dead. Re-admitted
	// nodes (a departed id rejoining) get their tombstone retracted.
	for _, n := range prev.Members {
		if !v.Contains(n) {
			d.router.ReportDead(n)
		}
	}
	for _, n := range v.Members {
		d.router.ReportAlive(n)
	}

	// Update lightweight membership (deterministic at every daemon).
	d.lwm.HandleMainView(v.Members)

	for app, gone := range affected {
		d.applyFailurePolicy(app, gone)
	}
}

func containsNode(nodes []wire.NodeID, n wire.NodeID) bool {
	for _, m := range nodes {
		if m == n {
			return true
		}
	}
	return false
}

// applyFailurePolicy handles the loss of nodes hosting an application.
func (d *Daemon) applyFailurePolicy(app wire.AppID, gone []wire.NodeID) {
	d.mu.Lock()
	st := d.apps[app]
	if st == nil || st.status == StatusDone || st.status == StatusFailed {
		d.mu.Unlock()
		return
	}
	// Which ranks died with those nodes?
	var lost []wire.Rank
	for r, node := range st.placement {
		for _, g := range gone {
			if node == g {
				lost = append(lost, r)
			}
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	policy := st.spec.Policy
	size := st.spec.Ranks
	placement := st.placement
	d.mu.Unlock()
	if len(lost) == 0 {
		return
	}
	d.logf("app %d lost ranks %v (nodes %v); policy %v", app, lost, gone, policy)
	d.ev.Emit(evstore.EvApp("rank-lost", app,
		evstore.F("nodes", evstore.List(gone)),
		evstore.F("ranks", evstore.List(lost)),
		evstore.F("policy", policy)))

	switch policy {
	case proc.PolicyKill:
		d.mu.Lock()
		st.status = StatusFailed
		st.failure = fmt.Sprintf("node failure killed ranks %v", lost)
		eps := d.localEndpointsLocked(app)
		delete(d.local, app)
		d.mu.Unlock()
		d.router.Drop(app)
		for _, ep := range eps {
			ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgAbort, App: app})
			ep.link.Close()
		}
	case proc.PolicyNotify:
		// Tell surviving local processes which ranks are gone; they
		// repartition and continue (§3.2.2's second mechanism).
		var alive []wire.Rank
		lostSet := map[wire.Rank]bool{}
		d.mu.Lock()
		if st.lost == nil {
			st.lost = make(map[wire.Rank]bool)
		}
		for _, r := range lost {
			st.lost[r] = true
		}
		d.mu.Unlock()
		for _, r := range lost {
			lostSet[r] = true
		}
		for r := 0; r < size; r++ {
			if !lostSet[wire.Rank(r)] {
				alive = append(alive, wire.Rank(r))
			}
		}
		info := proc.LWViewInfo{Alive: alive, Departed: lost}
		d.mu.Lock()
		eps := d.localEndpointsLocked(app)
		d.mu.Unlock()
		for _, ep := range eps {
			ep.link.Send(wire.Msg{
				Type: wire.TLWMembership, Kind: proc.LWViewKind, App: app,
				Payload: info.Encode(),
			})
		}
		// The lost ranks will never report; completion may already be
		// satisfied by the survivors.
		d.checkComplete(app)
	case proc.PolicyRestart:
		// The leader computes the recovery line and replicates the
		// restart decision. Everyone else waits for the command.
		if !d.leader() {
			return
		}
		line, err := d.recoveryLine(app)
		if err != nil {
			d.logf("recovery line for app %d: %v", app, err)
			return
		}
		d.logf("restarting app %d from line %v (placement was %v)", app, line, placement)
		if err := d.castCmd(&Cmd{Kind: CmdRestart, App: app, Line: line}); err != nil {
			d.logf("restart cast: %v", err)
		}
	}
}
