// Command starfish-vet runs the repo's custom static checks — poolcheck,
// lockcheck, goleak, errdrop — over module packages (test files excluded).
//
// Usage:
//
//	starfish-vet [-checks poolcheck,lockcheck] [packages...]
//	starfish-vet -dir path/to/bare/dir
//
// Exit status is 1 when any diagnostic is reported. The -dir mode
// analyzes a directory of Go files outside the module package graph (used
// by scripts/check.sh to prove each analyzer still fires on a seeded
// violation). Suppress an individual finding with a
// `//starfish:allow <check> <reason>` comment on or above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"starfish/internal/analysis"
	"starfish/internal/analysis/errdrop"
	"starfish/internal/analysis/goleak"
	"starfish/internal/analysis/lockcheck"
	"starfish/internal/analysis/poolcheck"
)

var all = []*analysis.Analyzer{
	poolcheck.Analyzer,
	lockcheck.Analyzer,
	goleak.Analyzer,
	errdrop.Analyzer,
}

func main() {
	dir := flag.String("dir", "", "analyze the .go files of one bare directory instead of module packages")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: starfish-vet [-checks names] [packages...] | starfish-vet -dir path\n\nchecks:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	enabled := all
	if *checks != "" {
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					enabled = append(enabled, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "starfish-vet: unknown check %q\n", name)
				os.Exit(2)
			}
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)

	var pkgs []*analysis.Package
	if *dir != "" {
		p, err := loader.LoadDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
			os.Exit(2)
		}
		pkgs = []*analysis.Package{p}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
			os.Exit(2)
		}
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, enabled)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			pos := pkg.Fset.Position(d.Pos)
			rel := pos.Filename
			if r, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Check, d.Message)
		}
	}
	if bad {
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module directory, so the tool works
// from any subdirectory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
