package cluster

import (
	"testing"
	"time"

	"starfish/internal/apps"
	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/proc"
	"starfish/internal/wire"
)

// TestCrashClusterLeader kills node 1 — simultaneously the group
// coordinator (sequencer), the cluster leader (restart decisions), and the
// host of rank 0 (the checkpoint coordinator). The group must fail over,
// a new leader must drive the restart, and the application must finish.
func TestCrashClusterLeader(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)
	spec := ringSpec(30, 3, 300000)
	spec.CkptEverySteps = 2000
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(30, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(30, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
	if info.Gen < 2 {
		t.Errorf("gen = %d, want restart", info.Gen)
	}
	// The surviving daemons agree node 2 now coordinates.
	d := c.AnyDaemon()
	if v := d.View(); v.Coord != 2 {
		t.Errorf("coordinator = %d, want 2", v.Coord)
	}
}

// TestCrashDuringCheckpointRound kills a node while a stop-and-sync round
// is (very likely) in flight. Whatever state the round was in, the restart
// must land on a consistent line and the application must finish
// correctly (the ring app self-verifies).
func TestCrashDuringCheckpointRound(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)
	spec := ringSpec(31, 3, 300000)
	spec.CkptEverySteps = 500 // frequent rounds: the crash lands in one
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(31, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// Trigger another round and crash immediately, racing the protocol.
	c.AnyDaemon().Checkpoint(31)
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(31, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}

// TestDoubleCrash kills two of five nodes in quick succession; the
// application restarts (possibly twice) and completes on the survivors.
func TestDoubleCrash(t *testing.T) {
	c := newCluster(t, 5)
	waitMainView(t, c, 5)
	spec := ringSpec(32, 5, 300000)
	spec.CkptEverySteps = 2000
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(32, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(4); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Crash(5); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(32, 150*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
	for r, n := range info.Placement {
		if n == 4 || n == 5 {
			t.Errorf("rank %d still on crashed node %d", r, n)
		}
	}
}

// TestRestartUsesHeterogeneousNodes verifies that a portable-encoder app
// restarted on a different node converts its checkpoint between the nodes'
// simulated architectures (the cluster assigns Table-2 machines
// round-robin, so re-placement changes architectures).
func TestRestartUsesHeterogeneousNodes(t *testing.T) {
	c := newCluster(t, 4)
	waitMainView(t, c, 4)
	vm := &proc.VMApp{StepSlice: 20, NGlobals: 2, Globals: []int64{0, 8000}, Source: `
loop:   loadg 1
        jz done
        loadg 0
        push 1
        add
        storeg 0
        loadg 1
        push 1
        sub
        storeg 1
        jmp loop
done:   halt`}
	spec := proc.AppSpec{
		ID: 33, Name: proc.VMAppName, Args: proc.EncodeVMApp(vm), Ranks: 2,
		Protocol: ckpt.Independent, Encoder: ckpt.Portable,
		CkptEverySteps: 10, Policy: proc.PolicyRestart,
	}
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	// Wait for checkpoints, then kill node 2 (big-endian 32-bit Sun): the
	// VM images written there restore on other architectures.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ns0, _ := c.Store().List(33, 0)
		ns1, _ := c.Store().List(33, 1)
		if len(ns0) > 0 && len(ns1) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(33, 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}

// TestIndependentSkewedCheckpointsRestart forces the ranks of an
// uncoordinated app to checkpoint at different cadences (rank-dependent
// intervals are impossible through the spec, so we trigger extra local
// checkpoints via the management path on top of a slow automatic cadence),
// then crashes and verifies the recovery line + sender-log replay produce
// a correct resumed run.
func TestIndependentSkewedCheckpointsRestart(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)
	spec := ringSpec(34, 3, 300000)
	spec.Protocol = ckpt.Independent
	spec.CkptEverySteps = 1037 // odd cadence; ranks drift apart
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for r := wire.Rank(0); r < 3; r++ {
			if ns, _ := c.Store().List(34, r); len(ns) < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoints too slow")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(34, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}

// TestChandyLamportCrashRestart exercises the third protocol under crash.
func TestChandyLamportCrashRestart(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)
	spec := ringSpec(35, 3, 300000)
	spec.Protocol = ckpt.ChandyLamport
	spec.CkptEverySteps = 2000
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(35, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(35, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}

// TestPingPongAppOnCluster runs the paper's latency application through
// the full stack.
func TestPingPongAppOnCluster(t *testing.T) {
	c := newCluster(t, 2)
	waitMainView(t, c, 2)
	spec := proc.AppSpec{
		ID: 36, Name: apps.PingPongName,
		Args:  apps.PingPongArgs([]int{1, 1024}, 20, false),
		Ranks: 2, Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable,
		Policy: proc.PolicyKill,
	}
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(36, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}
