package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"starfish/internal/wire"
)

// Content-addressed block storage for the disk Store. Blocks live beside the
// per-rank record envelopes, shared by every app and rank:
//
//	<dir>/blocks/<hex sha256>.blk
//
// Disk is the cold tier, so blocks are sealed compressed (DEFLATE): a full
// image of a mostly-zero heap costs almost nothing at rest, and the restore
// path that actually matters for the paper's recovery numbers — replicated
// memory — never touches these files. The filesystem doubles as the index:
// GC is a mark-sweep over the record envelopes that survived, so unreferenced
// blocks (superseded delta chains) cannot outlive their last referencing
// record even across daemon restarts.

// chunkMu serializes block writes and sweeps per store directory. Multiple
// Store handles may share one directory (the simulated shared file system),
// so the lock is keyed by directory, not by handle.
var chunkMu sync.Mutex

var _ ChunkedBackend = (*Store)(nil)

func (s *Store) blocksDir() string { return filepath.Join(s.dir, "blocks") }

func (s *Store) blockPath(id BlockID) string {
	return filepath.Join(s.blocksDir(), hex.EncodeToString(id[:])+".blk")
}

// PutRecord stores a record envelope in the ordinary (app, rank, n) image
// slot and its new blocks, compressed, in the shared block directory. Blocks
// already sealed under their content address are skipped — that is the
// cross-epoch and cross-rank deduplication.
func (s *Store) PutRecord(app wire.AppID, rank wire.Rank, n uint64, env []byte, blocks []RecBlock, meta *Meta) error {
	chunkMu.Lock()
	defer chunkMu.Unlock()
	if err := os.MkdirAll(s.blocksDir(), 0o755); err != nil {
		return err
	}
	for _, b := range blocks {
		path := s.blockPath(b.Ref.ID)
		if _, err := os.Stat(path); err == nil {
			continue // already sealed: deduplicated
		}
		if err := atomicWrite(path, SealBlock(b.Data)); err != nil {
			return err
		}
	}
	// The envelope lands last, so a crash mid-PutRecord leaves sealed
	// blocks without a referencing record — invisible garbage the next
	// sweep collects — never a record with missing blocks.
	return s.Put(app, rank, n, env, meta)
}

// GetBlock reads and unseals one content-addressed block.
func (s *Store) GetBlock(_ wire.AppID, _ wire.Rank, ref BlockRef) ([]byte, error) {
	sealed, err := os.ReadFile(s.blockPath(ref.ID))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: block %s", ErrMissingBlock, ref.ID)
	}
	if err != nil {
		return nil, err
	}
	data, err := UnsealBlock(sealed, int(ref.Len))
	if err != nil {
		return nil, fmt.Errorf("%w: block %s: %v", ErrMissingBlock, ref.ID, err)
	}
	return data, nil
}

// SealBlock compresses a byte block with DEFLATE (BestSpeed). It is the
// shared cold-tier sealing primitive: the disk store seals checkpoint blocks
// with it, and evstore seals event chunks with it.
func SealBlock(data []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("ckpt: flate level: %v", err)) // constant valid level
	}
	if _, err := zw.Write(data); err != nil {
		panic(fmt.Sprintf("ckpt: flate write: %v", err)) // bytes.Buffer cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(fmt.Sprintf("ckpt: flate close: %v", err))
	}
	return buf.Bytes()
}

// UnsealBlock decompresses a sealed block, bounding the output at the
// expected length.
func UnsealBlock(sealed []byte, want int) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(sealed))
	defer zr.Close()
	out := make([]byte, 0, want)
	// Read one byte past want so a wrong-length block is detected rather
	// than silently truncated.
	lim := io.LimitReader(zr, int64(want)+1)
	buf := make([]byte, 32*1024)
	for {
		n, err := lim.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("sealed block is %d bytes, want %d", len(out), want)
	}
	return out, nil
}

// GC removes record slots below keepFrom like the base implementation, then
// sweeps the block directory: a block survives only while some remaining
// record envelope (of any app or rank in this store) references it.
func (s *Store) GC(app wire.AppID, rank wire.Rank, keepFrom uint64) error {
	if err := s.gcSlots(app, rank, keepFrom); err != nil {
		return err
	}
	return s.sweepBlocks()
}

// DropApp removes the app's records and sweeps newly unreferenced blocks.
func (s *Store) DropApp(app wire.AppID) error {
	if err := os.RemoveAll(filepath.Join(s.dir, fmt.Sprintf("app-%d", app))); err != nil {
		return err
	}
	return s.sweepBlocks()
}

// sweepBlocks is the mark phase (every block referenced by any surviving
// record envelope) followed by the sweep (unlink the rest). The walk reads
// only envelopes — raw images are recognized and skipped by magic.
func (s *Store) sweepBlocks() error {
	chunkMu.Lock()
	defer chunkMu.Unlock()
	blocks, err := os.ReadDir(s.blocksDir())
	if errors.Is(err, os.ErrNotExist) || len(blocks) == 0 {
		return nil
	}
	if err != nil {
		return err
	}
	marked := make(map[BlockID]bool)
	apps, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, appEnt := range apps {
		if !appEnt.IsDir() || !strings.HasPrefix(appEnt.Name(), "app-") {
			continue
		}
		appDir := filepath.Join(s.dir, appEnt.Name())
		rankEnts, err := os.ReadDir(appDir)
		if err != nil {
			return err
		}
		for _, rankEnt := range rankEnts {
			if !rankEnt.IsDir() || !strings.HasPrefix(rankEnt.Name(), "rank-") {
				continue
			}
			rankDir := filepath.Join(appDir, rankEnt.Name())
			files, err := os.ReadDir(rankDir)
			if err != nil {
				return err
			}
			for _, f := range files {
				if !strings.HasPrefix(f.Name(), "ckpt-") || !strings.HasSuffix(f.Name(), ".img") {
					continue
				}
				env, err := os.ReadFile(filepath.Join(rankDir, f.Name()))
				if err != nil || !IsRecord(env) {
					continue
				}
				refs, err := RecordRefs(env)
				if err != nil {
					continue // unreadable envelope: keep its blocks unmarked
				}
				for _, r := range refs {
					marked[r.ID] = true
				}
			}
		}
	}
	for _, b := range blocks {
		name := b.Name()
		if !strings.HasSuffix(name, ".blk") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".blk"))
		if err != nil || len(raw) != len(BlockID{}) {
			continue // foreign file: not ours to delete
		}
		var id BlockID
		copy(id[:], raw)
		if marked[id] {
			continue
		}
		if err := os.Remove(filepath.Join(s.blocksDir(), name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}
