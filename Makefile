GO ?= go

.PHONY: check quick lint build test race bench chaos

# Full CI gate: vet, build, tests, -race on the fast-path and
# checkpoint-storage packages, and the allocation + recovery benchmarks
# (results folded into BENCH_fastpath.json / BENCH_recovery.json).
check:
	scripts/check.sh

# Fast inner-loop gate: vet/build/test only.
quick:
	scripts/check.sh --quick

# Static gates: gofmt, go vet, and the repo's own starfish-vet analyzers
# (pooled-buffer ownership, lock discipline, goroutine lifecycle, error
# drops on write paths, the //starfish:deterministic contract, global
# lock-acquisition order, and the event-kind registry), run as one
# interprocedural program. See DESIGN.md "Static invariants".
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/starfish-vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/wire/ ./internal/vni/ ./internal/mpi/
	$(GO) test -race ./internal/ckpt/ ./internal/rstore/ ./internal/daemon/ ./internal/cluster/
	$(GO) test -race ./internal/gossip/ ./internal/lwg/ ./internal/gcs/ ./internal/evstore/

bench:
	$(GO) test -run XXX -bench 'BenchmarkWireCodec|BenchmarkFastPathRoundTrip' -benchmem -benchtime 2s .
	$(GO) test -run XXX -bench 'BenchmarkRecovery/' -benchmem -benchtime 1s .

# Chaos soak: the full fixed-seed fault matrix (kill, partition+heal, 5%
# control-plane loss, 100ms delay spikes) under -race, plus the chaosnet
# unit tests. `starfish-bench -fig 7f` produces BENCH_chaos.json.
chaos:
	$(GO) test -race -count 1 ./internal/chaosnet/
	$(GO) test -race -count 1 -v -run 'TestChaosSoak|TestChaosTransparentLayer' ./internal/cluster/
