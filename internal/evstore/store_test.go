package evstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starfish/internal/leakcheck"
)

func mustQuery(t testing.TB, in string) *Query {
	t.Helper()
	q, err := ParseQuery(in)
	if err != nil {
		t.Fatalf("parse %q: %v", in, err)
	}
	return q
}

// TestAppendSeqAndStamp checks seq/timestamp/node assignment at receive.
func TestAppendSeqAndStamp(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 9})
	defer s.Close()
	before := time.Now().UnixNano()
	for i := 0; i < 5; i++ {
		r := Record{Seq: 777, WriteTS: -5, Node: 1} // producer fields are overwritten
		if got := s.Append(r); got != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, got)
		}
	}
	recs := s.Query(mustQuery(t, ""))
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Node != 9 || r.WriteTS < before {
			t.Errorf("record %d: seq=%d node=%d ts=%d", i, r.Seq, r.Node, r.WriteTS)
		}
	}
}

// TestEmitterPath checks the non-blocking emitter: component stamping,
// drain into the store, overflow accounting after Close.
func TestEmitterPath(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 2})
	em := s.Emitter("gcs")
	em.Emit(Ev("view-change", F("view", 4)))
	em.Emit(Record{Component: "custom", Kind: "x", Rank: NoRank})
	// Wait for the drain goroutine to land both.
	deadline := time.Now().Add(2 * time.Second)
	for s.LastSeq() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	recs := s.Query(mustQuery(t, ""))
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Component != "gcs" || recs[1].Component != "custom" {
		t.Errorf("components = %q, %q", recs[0].Component, recs[1].Component)
	}
	if v, ok := recs[0].Get("view"); !ok || v != "4" {
		t.Errorf("view attr = %q,%v", v, ok)
	}
	s.Close()
	em.Emit(Ev("late"))
	// A nil emitter and nil store are inert.
	var nilEm *Emitter
	nilEm.Emit(Ev("x"))
	(*Store)(nil).Emit(Ev("x"))
	(*Store)(nil).Close()
}

// TestSealRetentionAndQuery fills several chunks, checks sealing, whole-
// chunk retention, and that queries agree with a forced full scan.
func TestSealRetentionAndQuery(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 1, ChunkRecords: 10, MaxChunks: 3})
	defer s.Close()
	for i := 0; i < 55; i++ {
		s.Append(EvApp("tick", 7, F("i", i), F("mod", i%4)))
	}
	st := s.Stats()
	if st.SealedChunks != 3 || st.RetiredChunks != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ActiveRecords != 5 || st.SealedRecords != 30 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LastSeq != 55 || st.Appended != 55 {
		t.Fatalf("stats = %+v", st)
	}
	// Retention dropped seqs 1..20; the rest must be intact and ordered.
	recs := s.Query(mustQuery(t, ""))
	if len(recs) != 35 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(21+i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	// Index-pruned results must equal a full scan for a spread of queries.
	for _, in := range []string{"", "mod=2", "seq>30 seq<=40", "kind=tick", "kind=nope", "app=7 mod=0 limit=3"} {
		q := mustQuery(t, in)
		indexed := s.Query(q)
		q.ForceScan = true
		scanned := s.Query(q)
		if len(indexed) != len(scanned) {
			t.Fatalf("query %q: indexed %d vs scan %d", in, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i].Seq != scanned[i].Seq {
				t.Fatalf("query %q: row %d seq %d vs %d", in, i, indexed[i].Seq, scanned[i].Seq)
			}
		}
	}
	// Limit keeps the newest matches.
	got := s.Query(mustQuery(t, "limit=4"))
	if len(got) != 4 || got[0].Seq != 52 || got[3].Seq != 55 {
		t.Fatalf("limit query = %+v", got)
	}
	// QueryAfter is the tail resume primitive.
	after := s.QueryAfter(mustQuery(t, "kind=tick"), 50)
	if len(after) != 5 || after[0].Seq != 51 {
		t.Fatalf("QueryAfter = %d records, first %d", len(after), after[0].Seq)
	}
}

// TestChunkPruning proves sealed-index pruning skips chunks (mayMatch
// false) while returning identical results.
func TestChunkPruning(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 1, ChunkRecords: 8, MaxChunks: 100})
	defer s.Close()
	for i := 0; i < 80; i++ {
		kind := "common"
		if i == 70 {
			kind = "rare"
		}
		s.Append(Ev(kind, F("i", i)))
	}
	q := mustQuery(t, "kind=rare")
	s.mu.Lock()
	chunks := append([]*sealedChunk(nil), s.sealed...)
	s.mu.Unlock()
	kept := 0
	for _, c := range chunks {
		if c.mayMatch(q, 0, 0, time.Now()) {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("pruning kept %d of %d chunks, want 1", kept, len(chunks))
	}
	recs := s.Query(q)
	if len(recs) != 1 {
		t.Fatalf("got %d rare records", len(recs))
	}
	if v, _ := recs[0].Get("i"); v != "70" {
		t.Fatalf("rare record = %s", recs[0].String())
	}
}

// TestChangedWakeup checks the generation-channel contract.
func TestChangedWakeup(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 1})
	ch := s.Changed()
	select {
	case <-ch:
		t.Fatal("changed fired before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ch
	}()
	s.Append(Ev("x"))
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Changed waiter not woken by append")
	}
	// Close wakes current waiters and closes Done.
	ch = s.Changed()
	s.Close()
	select {
	case <-ch:
	default:
		t.Fatal("Close did not wake Changed waiters")
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	s.Close() // idempotent
}

// TestConcurrentEmitQuery hammers the store from many goroutines while
// querying; run under -race this is the data-race check for the snapshot
// scan path.
func TestConcurrentEmitQuery(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 1, ChunkRecords: 64})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			em := s.Emitter(fmt.Sprintf("c%d", g))
			for i := 0; i < 500; i++ {
				em.Emit(Ev("spin", F("i", i)))
			}
		}(g)
	}
	q := mustQuery(t, "kind=spin")
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Query(q)
			}
		}
	}()
	wg.Wait()
	close(stop)
	qwg.Wait()
	// Everything emitted must eventually land (buffer is 4096 > 2000).
	deadline := time.Now().Add(5 * time.Second)
	for s.LastSeq() < 2000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.LastSeq != 2000 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Seqs are strictly increasing with no gaps or dups.
	recs := s.Query(mustQuery(t, ""))
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestFanout checks the harness-side sink multiplexer.
func TestFanout(t *testing.T) {
	defer leakcheck.Check(t, 0)
	a := Open(Config{Node: 1})
	b := Open(Config{Node: 2})
	defer a.Close()
	defer b.Close()
	var f Fanout
	f.Add(a)
	f.Add(b.Emitter("cluster"))
	f.Add(nil) // inert
	f.Emit(Ev("kill", F("target", 3)))
	for _, s := range []*Store{a, b} {
		deadline := time.Now().Add(2 * time.Second)
		for s.LastSeq() < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := s.Query(mustQuery(t, "kind=kill")); len(got) != 1 {
			t.Fatalf("node %d got %d kill records", s.cfg.Node, len(got))
		}
	}
	f.Remove(a)
	f.Emit(Ev("second"))
	waitSeq(t, b, 2)
	if got := a.Query(mustQuery(t, "kind=second")); len(got) != 0 {
		t.Fatal("removed sink still receiving")
	}
}

func waitSeq(t testing.TB, s *Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.LastSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("store stuck at seq %d, want %d", s.LastSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseFlushesEmitted: records emitted before Close are drained, not
// lost.
func TestCloseFlushesEmitted(t *testing.T) {
	defer leakcheck.Check(t, 0)
	s := Open(Config{Node: 1})
	em := s.Emitter("x")
	for i := 0; i < 100; i++ {
		em.Emit(Ev("e", F("i", i)))
	}
	s.Close()
	if got := len(s.Query(mustQuery(t, "kind=e"))); got != 100 {
		t.Fatalf("after close: %d records, want 100", got)
	}
}
