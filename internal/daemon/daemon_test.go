package daemon

import (
	"testing"
	"testing/quick"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/proc"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

func TestCmdEncodeDecode(t *testing.T) {
	spec := proc.AppSpec{
		ID: 7, Name: "ring", Args: []byte{1, 2, 3}, Ranks: 4,
		Protocol: ckpt.ChandyLamport, Encoder: ckpt.Native,
		CkptEverySteps: 50, Policy: proc.PolicyNotify, Owner: "alice",
	}
	c := Cmd{
		Kind: CmdRestart, App: 7, Node: 3, Rank: 2, Gen: 5,
		Err: "boom", Flag: true, Key: "k", Value: "v",
		Spec: &spec,
		Line: ckpt.RecoveryLine{0: 3, 1: 2},
	}
	got, err := decodeCmd(encodeCmd(&c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != CmdRestart || got.App != 7 || got.Node != 3 || got.Rank != 2 ||
		got.Gen != 5 || got.Err != "boom" || !got.Flag || got.Key != "k" || got.Value != "v" {
		t.Errorf("round trip = %+v", got)
	}
	if got.Spec == nil || got.Spec.Name != "ring" || got.Spec.Owner != "alice" {
		t.Errorf("spec = %+v", got.Spec)
	}
	if !got.Line.Equal(c.Line) {
		t.Errorf("line = %v", got.Line)
	}
	// Command without spec or line.
	c2 := Cmd{Kind: CmdSuspend, App: 9}
	got2, err := decodeCmd(encodeCmd(&c2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Spec != nil || got2.Line != nil || got2.Kind != CmdSuspend {
		t.Errorf("round trip = %+v", got2)
	}
	if _, err := decodeCmd([]byte{1, 2}); err == nil {
		t.Error("short command decoded")
	}
}

func TestCmdKindStrings(t *testing.T) {
	kinds := []CmdKind{CmdSubmit, CmdDelete, CmdSuspend, CmdResume, CmdCheckpoint,
		CmdRankDone, CmdRestart, CmdSetNodeEnabled, CmdSetParam}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", k, s)
		}
		seen[s] = true
	}
}

func TestLWMetaEncodeDecode(t *testing.T) {
	m := lwMeta{Gen: 3, Addrs: map[wire.Rank]string{2: "b", 0: "a", 5: "c"}}
	got, err := decodeLWMeta(encodeLWMeta(&m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 3 || len(got.Addrs) != 3 || got.Addrs[0] != "a" || got.Addrs[5] != "c" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeLWMeta([]byte{1}); err == nil {
		t.Error("short meta decoded")
	}
}

func TestRelayEncodeDecode(t *testing.T) {
	m := wire.Msg{Type: wire.TCheckpoint, Kind: ckpt.KAck, App: 3, Src: 1, Payload: []byte("x")}
	got, err := decodeRelay(encodeRelay(&m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != wire.TCheckpoint || got.Kind != ckpt.KAck || got.Src != 1 || string(got.Payload) != "x" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeRelay(nil); err == nil {
		t.Error("nil relay decoded")
	}
}

func TestPlaceRanks(t *testing.T) {
	nodes := []wire.NodeID{1, 2, 3}
	p := placeRanks(5, nodes)
	want := map[wire.Rank]wire.NodeID{0: 1, 1: 2, 2: 3, 3: 1, 4: 2}
	for r, n := range want {
		if p[r] != n {
			t.Errorf("rank %d placed on %d, want %d", r, p[r], n)
		}
	}
	if placeRanks(3, nil) != nil {
		t.Error("placement without nodes should be nil")
	}
	// One node takes everything.
	p = placeRanks(3, []wire.NodeID{9})
	for r := wire.Rank(0); r < 3; r++ {
		if p[r] != 9 {
			t.Errorf("rank %d on %d", r, p[r])
		}
	}
}

func TestQuickPlaceRanksProperties(t *testing.T) {
	// Properties: every rank is placed; load is balanced within 1; all
	// placements are eligible nodes.
	prop := func(ranksRaw, nodesRaw uint8) bool {
		ranks := int(ranksRaw%12) + 1
		nnodes := int(nodesRaw%5) + 1
		var nodes []wire.NodeID
		for i := 0; i < nnodes; i++ {
			nodes = append(nodes, wire.NodeID(i+1))
		}
		p := placeRanks(ranks, nodes)
		if len(p) != ranks {
			return false
		}
		load := map[wire.NodeID]int{}
		for r := wire.Rank(0); r < wire.Rank(ranks); r++ {
			n, ok := p[r]
			if !ok || n < 1 || int(n) > nnodes {
				return false
			}
			load[n]++
		}
		minL, maxL := ranks, 0
		for _, n := range nodes {
			l := load[n]
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		return maxL-minL <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDaemonPairLifecycle exercises a daemon pair directly (below the
// cluster harness): join, replicate a parameter, submit, finish.
func TestDaemonPairLifecycle(t *testing.T) {
	fn := vni.NewFastnet(0)
	store, err := ckpt.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(node wire.NodeID, contact string) *Daemon {
		d, err := New(Config{
			Node: node, Transport: fn,
			GCSAddr: string(rune('A'+node)) + "-gcs", Contact: contact,
			Store: store, Arch: svm.Machines[0],
			HeartbeatEvery: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d
	}
	d1 := mk(1, "")
	d2 := mk(2, d1.GCSAddr())

	deadline := time.Now().Add(10 * time.Second)
	for len(d2.View().Members) != 2 || len(d1.View().Members) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("daemons never formed a view")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !d1.leader() || d2.leader() {
		t.Error("leadership wrong")
	}

	if err := d2.SetParam("a", "b"); err != nil {
		t.Fatal(err)
	}
	for d1.Param("a") != "b" {
		if time.Now().After(deadline) {
			t.Fatal("param never replicated")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unknown-app queries.
	if _, ok := d1.AppInfo(42); ok {
		t.Error("unknown app has info")
	}
	if err := d1.Submit(proc.AppSpec{Ranks: 0}); err == nil {
		t.Error("zero-rank submit accepted")
	}
	if err := d1.Migrate(42); err == nil {
		t.Error("migrate of unknown app succeeded")
	}

	// Submit the built-in VM app (no MPI traffic) and wait for Done.
	vm := &proc.VMApp{StepSlice: 100, NGlobals: 2, Globals: []int64{0, 50}, Source: `
        push 0
        storeg 0
loop:   loadg 1
        jz done
        loadg 0
        loadg 1
        add
        storeg 0
        loadg 1
        push 1
        sub
        storeg 1
        jmp loop
done:   halt`}
	spec := proc.AppSpec{
		ID: 1, Name: proc.VMAppName, Args: proc.EncodeVMApp(vm), Ranks: 2,
		Protocol: ckpt.Independent, Encoder: ckpt.Portable, Policy: proc.PolicyRestart,
	}
	if err := d1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	for {
		info, ok := d2.AppInfo(1)
		if ok && info.Status == StatusDone {
			break
		}
		if ok && info.Status == StatusFailed {
			t.Fatalf("app failed: %s", info.Failure)
		}
		if time.Now().After(deadline) {
			t.Fatalf("app never finished (info=%+v ok=%v)", info, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ids := d1.Apps()
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("Apps() = %v", ids)
	}
}

func TestAppStatusStrings(t *testing.T) {
	for _, s := range []AppStatus{StatusLaunching, StatusRunning, StatusSuspended,
		StatusDone, StatusFailed, StatusRestarting} {
		if s.String() == "" {
			t.Errorf("status %d has no name", s)
		}
	}
}

func TestSubmitWithNoEligibleNodesFails(t *testing.T) {
	fn := vni.NewFastnet(0)
	store, _ := ckpt.NewStore(t.TempDir())
	d, err := New(Config{
		Node: 1, Transport: fn, GCSAddr: "noelig-gcs", Store: store,
		Arch: svm.Machines[0], HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if err := d.SetNodeEnabled(1, false); err != nil {
		t.Fatal(err)
	}
	// Wait for the disable command to apply.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.mu.Lock()
		disabled := d.disabled[1]
		d.mu.Unlock()
		if disabled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disable never applied")
		}
		time.Sleep(2 * time.Millisecond)
	}
	spec := proc.AppSpec{
		ID: 1, Name: proc.VMAppName, Args: proc.EncodeVMApp(&proc.VMApp{Source: "halt"}),
		Ranks: 1, Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: proc.PolicyKill,
	}
	if err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	for {
		info, ok := d.AppInfo(1)
		if ok && info.Status == StatusFailed {
			if info.Failure != ErrNoNodes.Error() {
				t.Errorf("failure = %q", info.Failure)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("app not failed: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonsOverTCP runs the full daemon stack on real loopback TCP —
// group communication, lightweight-group relays, and application data all
// cross kernel sockets, as they would between physical workstations.
func TestDaemonsOverTCP(t *testing.T) {
	tcp := vni.NewTCP()
	store, err := ckpt.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dataAddr := func(wire.AppID, uint32, wire.Rank) string { return "127.0.0.1:0" }
	d1, err := New(Config{
		Node: 1, Transport: tcp, GCSAddr: "127.0.0.1:0", Store: store,
		Arch: svm.Machines[0], DataAddr: dataAddr,
		HeartbeatEvery: 10 * time.Millisecond, FailAfter: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d1.Close)
	d2, err := New(Config{
		Node: 2, Transport: tcp, GCSAddr: "127.0.0.1:0", Contact: d1.GCSAddr(),
		Store: store, Arch: svm.Machines[1], DataAddr: dataAddr,
		HeartbeatEvery: 10 * time.Millisecond, FailAfter: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d2.Close)

	deadline := time.Now().Add(15 * time.Second)
	for len(d1.View().Members) != 2 || len(d2.View().Members) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("TCP daemons never formed a view")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A communicating MPI app whose data path crosses TCP: the ring.
	// (Registered by the cluster tests' shared apps package would be a
	// cycle here, so use the pending-free built-in VM app plus a second
	// spec exercising checkpoints.)
	vm := &proc.VMApp{StepSlice: 200, NGlobals: 2, Globals: []int64{0, 3000}, Source: `
loop:   loadg 1
        jz done
        loadg 0
        push 1
        add
        storeg 0
        loadg 1
        push 1
        sub
        storeg 1
        jmp loop
done:   halt`}
	spec := proc.AppSpec{
		ID: 1, Name: proc.VMAppName, Args: proc.EncodeVMApp(vm), Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable,
		CkptEverySteps: 5, Policy: proc.PolicyRestart,
	}
	if err := d2.Submit(spec); err != nil {
		t.Fatal(err)
	}
	for {
		info, ok := d1.AppInfo(1)
		if ok && info.Status == StatusDone {
			break
		}
		if ok && info.Status == StatusFailed {
			t.Fatalf("app failed: %s", info.Failure)
		}
		if time.Now().After(deadline) {
			t.Fatalf("app never finished: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Checkpoint rounds committed over TCP too.
	if _, err := store.CommittedLine(1); err != nil {
		t.Errorf("no committed line: %v", err)
	}
}
