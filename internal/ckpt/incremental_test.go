package ckpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeltaIdenticalStates(t *testing.T) {
	state := make([]byte, 3*DeltaBlockSize+100)
	for i := range state {
		state[i] = byte(i)
	}
	d := ComputeDelta(state, state)
	if len(d.Blocks) != 0 {
		t.Errorf("identical states produced %d changed blocks", len(d.Blocks))
	}
	out, err := d.Apply(state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, state) {
		t.Error("apply of empty delta changed state")
	}
}

func TestDeltaSingleBlockChange(t *testing.T) {
	base := make([]byte, 8*DeltaBlockSize)
	next := append([]byte(nil), base...)
	next[5*DeltaBlockSize+17] = 0xFF
	d := ComputeDelta(base, next)
	if len(d.Blocks) != 1 {
		t.Fatalf("changed blocks = %d, want 1", len(d.Blocks))
	}
	if _, ok := d.Blocks[5]; !ok {
		t.Errorf("wrong block: %v", d.Blocks)
	}
	out, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, next) {
		t.Error("apply mismatch")
	}
	// Savings: the delta is far smaller than the full state.
	if d.Size() >= len(next)/2 {
		t.Errorf("delta size %d not small vs %d", d.Size(), len(next))
	}
}

func TestDeltaGrowAndShrink(t *testing.T) {
	base := make([]byte, 2*DeltaBlockSize)
	grown := make([]byte, 3*DeltaBlockSize+7)
	for i := range grown {
		grown[i] = byte(i * 3)
	}
	d := ComputeDelta(base, grown)
	out, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, grown) {
		t.Error("grow mismatch")
	}
	// Shrink back.
	d2 := ComputeDelta(grown, base)
	out, err = d2.Apply(grown)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, base) {
		t.Error("shrink mismatch")
	}
}

func TestDeltaWrongBase(t *testing.T) {
	d := ComputeDelta(make([]byte, 100), make([]byte, 100))
	if _, err := d.Apply(make([]byte, 99)); err == nil {
		t.Error("wrong-length base accepted")
	}
}

func TestDeltaEncodeDecode(t *testing.T) {
	base := make([]byte, 2*DeltaBlockSize)
	next := append([]byte(nil), base...)
	next[0] = 1
	next[DeltaBlockSize] = 2
	d := ComputeDelta(base, next)
	got, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, next) {
		t.Error("decoded delta apply mismatch")
	}
	if _, err := DecodeDelta([]byte{1, 2, 3}); err == nil {
		t.Error("garbage delta decoded")
	}
}

func TestDeltaChainReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	state := make([]byte, 5*DeltaBlockSize)
	r.Read(state)
	base := append([]byte(nil), state...)

	var deltas []*Delta
	var states [][]byte
	for i := 0; i < 6; i++ {
		next := append([]byte(nil), state...)
		// Mutate a few random spots; occasionally grow.
		for j := 0; j < 3; j++ {
			next[r.Intn(len(next))] ^= 0x5A
		}
		if i == 3 {
			next = append(next, make([]byte, DeltaBlockSize/2)...)
		}
		deltas = append(deltas, ComputeDelta(state, next))
		states = append(states, next)
		state = next
	}
	got, err := DeltaChain(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, states[len(states)-1]) {
		t.Error("chain reconstruction mismatch")
	}
}

func TestQuickDeltaRoundTrip(t *testing.T) {
	prop := func(base, next []byte) bool {
		d := ComputeDelta(base, next)
		enc, err := DecodeDelta(d.Encode())
		if err != nil {
			return false
		}
		out, err := enc.Apply(base)
		if err != nil {
			return false
		}
		return bytes.Equal(out, next)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeltaSparseChangesAreSmall(t *testing.T) {
	// Property: changing k bytes touches at most k blocks, so the delta
	// payload is bounded by k*(blocksize+8)+16.
	prop := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw%8) + 1
		base := make([]byte, 16*DeltaBlockSize)
		r.Read(base)
		next := append([]byte(nil), base...)
		for i := 0; i < k; i++ {
			next[r.Intn(len(next))]++
		}
		d := ComputeDelta(base, next)
		return len(d.Blocks) <= k && d.Size() <= k*(DeltaBlockSize+8)+16
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
