// Event-plane benchmarks. scripts/check.sh runs them and folds the results
// into BENCH_events.json, which gates three properties of the subsystem:
// single-node ingest stays above 100k records/s, the sealed-chunk indexes
// buy a real speedup over brute-force chunk scans, and instrumenting the
// 64 KiB fast-path round trip with an emitter costs no more than 2%.
package starfish_test

import (
	"fmt"
	"testing"

	"starfish/internal/evstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// benchStore fills a store with n records shaped like a real run: a
// cluster-formation burst of gcs view changes up front, then a long steady
// body of rstore replication traffic. The burst fits inside the first
// chunk, so a view-change query is the needle the sealed-chunk indexes are
// built for: every later chunk's component value set excludes gcs.
func benchStore(b *testing.B, n int) *evstore.Store {
	b.Helper()
	st := evstore.Open(evstore.Config{Node: 1})
	b.Cleanup(st.Close)
	for i := 0; i < n; i++ {
		if i < n/64 {
			r := evstore.Ev("view-change", evstore.F("view", i), evstore.F("members", 4))
			r.Component = "gcs"
			st.Append(r)
			continue
		}
		r := evstore.EvRank("push", wire.AppID(i%8), wire.Rank(i%4),
			evstore.F("bytes", 1<<14), evstore.F("replica", i%3))
		r.Component = "rstore"
		st.Append(r)
	}
	return st
}

// BenchmarkEvents is the event-plane suite; sub-benchmarks are selected by
// name in scripts/check.sh and gated through BENCH_events.json.
func BenchmarkEvents(b *testing.B) {
	b.Run("ingest", func(b *testing.B) {
		st := evstore.Open(evstore.Config{Node: 1})
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := evstore.EvRank("push", 3, 1,
				evstore.F("bytes", 1<<14), evstore.F("replica", 2))
			r.Component = "rstore"
			st.Append(r)
		}
	})

	// emit: the producer-side cost of one Emitter.Emit — record build,
	// TryLock fast path, append, chunk-seal amortization. The fastpath gate
	// below divides this by the 64-round-trip batch to bound what
	// instrumentation adds per message; a direct measurement is steadier
	// than differencing two ~4µs round-trip timings whose run-to-run noise
	// on a loaded single-core box exceeds the 2% budget being enforced.
	b.Run("emit", func(b *testing.B) {
		st := evstore.Open(evstore.Config{Node: 1})
		defer st.Close()
		em := st.Emitter("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			em.Emit(evstore.Ev("batch",
				evstore.F("msgs", 64), evstore.F("bytes", 64*2*(64<<10))))
		}
	})

	// query=indexed vs query=scan: the same sparse query over the same
	// >=100k-record store, with and without sealed-index chunk pruning.
	const queryRecords = 120_000
	for _, mode := range []string{"indexed", "scan"} {
		b.Run("query="+mode, func(b *testing.B) {
			st := benchStore(b, queryRecords)
			q, err := evstore.ParseQuery("component=gcs kind=view-change members=4")
			if err != nil {
				b.Fatal(err)
			}
			q.ForceScan = mode == "scan"
			want := len(st.Query(q))
			if want == 0 {
				b.Fatal("query matches nothing")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(st.Query(q)); got != want {
					b.Fatalf("query returned %d records, want %d", got, want)
				}
			}
		})
	}

	// tail=8: one record landing fans out to 8 attached tails, each
	// resuming from its own last-seen seq (the server-side cost model of
	// 8 concurrent `starfishctl tail` clients).
	b.Run("tail=8", func(b *testing.B) {
		st := benchStore(b, 10_000)
		q, err := evstore.ParseQuery("component=rstore")
		if err != nil {
			b.Fatal(err)
		}
		const tails = 8
		last := make([]uint64, tails)
		for i := range last {
			last[i] = st.LastSeq()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := evstore.Ev("push", evstore.F("bytes", 1<<14))
			r.Component = "rstore"
			st.Append(r)
			for t := 0; t < tails; t++ {
				for _, rec := range st.QueryAfter(q, last[t]) {
					last[t] = rec.Seq
				}
			}
		}
	})

	// fastpath=plain vs fastpath=events: the pooled 64 KiB MPI round trip
	// bare, then instrumented with a live emitter at control-plane
	// density — one record per 64 round trips. No Starfish component
	// emits per data-plane message (events mark view changes, replication
	// passes, checkpoint epochs, lifecycle transitions); one marker per
	// 64-message batch is denser than any real emitter. scripts/check.sh
	// enforces the <=2% overhead budget on emit/64 against the plain
	// round trip and keeps this A/B pair as a coarse tripwire (<=10%)
	// that would catch a mode that actually blocks or emits per message.
	const size = 64 << 10
	for _, mode := range []string{"plain", "events"} {
		b.Run(fmt.Sprintf("fastpath=%s/size=64KB", mode), func(b *testing.B) {
			prev := wire.SetPoolGuard(false)
			defer wire.SetPoolGuard(prev)
			var em *evstore.Emitter
			if mode == "events" {
				st := evstore.Open(evstore.Config{Node: 1})
				defer st.Close()
				em = st.Emitter("bench")
			}
			c0, cleanup := fastPathWorld(b, vni.NewFastnet(0), true)
			defer cleanup()
			buf := make([]byte, size)
			b.SetBytes(2 * size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c0.Send(1, 0, buf); err != nil {
					b.Fatal(err)
				}
				data, mst, err := c0.Recv(1, 0)
				if err != nil {
					b.Fatal(err)
				}
				if mst.Pooled {
					wire.PutBuf(data)
				}
				if em != nil && i%64 == 0 {
					em.Emit(evstore.Ev("batch",
						evstore.F("msgs", 64), evstore.F("bytes", 64*2*size)))
				}
			}
		})
	}
}
