// Package detcheck enforces the //starfish:deterministic contract: a
// function carrying the marker on its doc comment — or any function of a
// package whose package doc carries it — must produce identical results
// given identical inputs, run after run and replica after replica. That is
// the property hot-rank replication leans on: a replica consuming the same
// message stream as the primary must arrive at the same state.
//
// A marked function must not reach, directly or transitively through the
// program call graph:
//
//   - wall-clock reads (time.Now/Since/Until/After/Tick, timer and ticker
//     construction, time.Sleep) or os.Getpid;
//   - the unseeded global math/rand source, or crypto/rand (seeded
//     generators built with rand.New(rand.NewSource(seed)) are fine —
//     their methods are deterministic given the seed);
//   - goroutine spawns (results then depend on scheduling);
//   - map iteration with order-sensitive effects. Ranging over a map is
//     permitted when the body's effects are per-key (map writes, deletes,
//     scalar accumulation), or when every slice appended to inside the
//     loop is passed to sort.Slice/sort.Sort/sort.Strings/... later in the
//     same block; anything else — sends, early returns, breaks, calls into
//     functions that observe ordering — taints the function.
//
// Calls through interfaces are not followed: injected observers (an
// evstore.Sink, a logger) sit outside the deterministic core by design,
// and the runtime wires them explicitly. Taints that sit inside a callee
// that is itself marked deterministic are reported at the callee only, so
// one bug yields one diagnostic.
package detcheck

import (
	"starfish/internal/analysis"
)

// Analyzer is the detcheck check.
var Analyzer = &analysis.Analyzer{
	Name:    "detcheck",
	Doc:     "functions marked //starfish:deterministic must not reach clocks, unseeded randomness, goroutine spawns, or order-sensitive map iteration",
	ProgRun: run,
}

func run(pass *analysis.ProgPass) error {
	for _, fn := range pass.Prog.MarkedDeterministic() {
		sum := pass.Prog.Summary(fn)
		if sum == nil {
			continue
		}
		for _, t := range sum.Taints {
			// A taint inherited from a callee that is itself marked is
			// reported at the callee, where the evidence lives.
			if t.Via != nil && pass.Prog.IsMarkedDeterministic(t.Via) {
				continue
			}
			pass.Reportf(t.Pos, "%s is marked //starfish:deterministic but reaches %s",
				fn.Name(), analysis.DescribeSite(t))
		}
	}
	return nil
}
