// starfishd runs one Starfish daemon over real TCP: daemons on different
// machines (or processes) form the Starfish group, host application
// processes, and serve the management protocol. The first daemon creates
// the cluster; the rest join through any existing daemon's group address.
//
//	# first node
//	starfishd -node 1 -gcs 127.0.0.1:7001 -mgmt 127.0.0.1:7100 -store /tmp/sf
//	# second node
//	starfishd -node 2 -gcs 127.0.0.1:7002 -contact 127.0.0.1:7001 -store /tmp/sf
//
// Submit work with starfishctl against any daemon's -mgmt address. The
// checkpoint store directory must be shared between the nodes (in a real
// deployment, a network file system).
//
// To enable the replicated in-memory checkpoint store (applications
// submitted with store "memory" or "tiered"), give every daemon an
// -rstore listen address plus the full node→address map:
//
//	starfishd ... -rstore 127.0.0.1:7201 \
//	    -rstore-peers 1=127.0.0.1:7201,2=127.0.0.1:7202
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"starfish/internal/chaosnet"
	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/evstore"
	"starfish/internal/mgmt"
	"starfish/internal/rstore"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"

	// Register the built-in applications so SUBMIT can name them.
	_ "starfish/internal/apps"
)

func main() {
	var (
		node    = flag.Uint("node", 1, "cluster-unique node id")
		gcsAddr = flag.String("gcs", "127.0.0.1:7001", "group-communication listen address")
		contact = flag.String("contact", "", "existing daemon's -gcs address (empty creates a cluster)")
		mgmtAdr = flag.String("mgmt", "", "management listen address (empty disables)")
		storeD  = flag.String("store", "", "shared checkpoint-store directory (required)")
		rsAddr  = flag.String("rstore", "", "replicated memory-store listen address (empty disables)")
		rsPeers = flag.String("rstore-peers", "", "node=addr,... map of every daemon's -rstore address")
		rsRepl  = flag.Int("replicas", 2, "in-memory checkpoint replication factor")
		archIdx = flag.Int("arch", 0, "simulated architecture index (0..5, Table 2)")
		dataAdr = flag.String("data-host", "127.0.0.1", "host for application data-path listeners")
		passwd  = flag.String("admin-password", "starfish", "management admin password")
		verbose = flag.Bool("v", false, "log daemon diagnostics")

		gossipEvery  = flag.Duration("gossip-every", 0, "SWIM gossip probe round length (default: the heartbeat interval, 25ms)")
		gossipFanout = flag.Int("gossip-fanout", 0, "indirect-probe proxies asked before suspecting a silent peer (default 3)")
		suspectAfter = flag.Duration("suspect-after", 0, "how long a gossip suspicion may stay unrefuted before the member is confirmed dead (default: half the detection budget, 100ms)")

		evChunk = flag.Int("events-chunk", evstore.DefaultChunkRecords, "event-store records per sealed chunk")
		evMax   = flag.Int("events-chunks", evstore.DefaultMaxChunks, "event-store sealed-chunk retention (0 disables the event plane)")

		chaosSeed   = flag.Int64("chaos-seed", 0, "seed a deterministic fault-injection layer over TCP (0 disables)")
		chaosDrop   = flag.Float64("chaos-drop", 0, "per-message drop probability (requires -chaos-seed)")
		chaosDup    = flag.Float64("chaos-dup", 0, "per-message duplication probability (requires -chaos-seed)")
		chaosDelay  = flag.Duration("chaos-delay", 0, "added latency of a delay spike (requires -chaos-seed)")
		chaosDelayP = flag.Float64("chaos-delay-prob", 0, "per-message delay-spike probability (requires -chaos-seed)")
	)
	flag.Parse()
	if *storeD == "" {
		log.Fatal("starfishd: -store is required")
	}
	if *archIdx < 0 || *archIdx >= len(svm.Machines) {
		log.Fatalf("starfishd: -arch must be 0..%d", len(svm.Machines)-1)
	}
	store, err := ckpt.NewStore(*storeD)
	if err != nil {
		log.Fatal(err)
	}
	var logf func(string, ...any)
	if *verbose {
		logf = log.Printf
	}

	// The structured event store behind the EVENTS/TAIL management verbs.
	var events *evstore.Store
	if *evMax > 0 {
		events = evstore.Open(evstore.Config{
			Node:         wire.NodeID(*node),
			ChunkRecords: *evChunk,
			MaxChunks:    *evMax,
			Logf:         logf,
		})
	}

	// The daemon's transport: real TCP, optionally wrapped in a seeded
	// chaosnet layer so wire faults on a live deployment are reproducible
	// from the seed (same seed, same per-link decision sequence).
	var tr vni.Transport = vni.NewTCP()
	if *chaosSeed != 0 {
		cn := chaosnet.New(tr, *chaosSeed, chaosnet.Config{})
		cn.Controller().SetEvents(events.Emitter("chaosnet"))
		cn.Controller().SetDefaultFaults(chaosnet.Faults{
			Drop:      *chaosDrop,
			Dup:       *chaosDup,
			Delay:     *chaosDelay,
			DelayProb: *chaosDelayP,
		})
		tr = cn.Node(fmt.Sprintf("n%d", *node))
		log.Printf("starfishd: chaos layer enabled (seed %#x, drop %.3f, dup %.3f, delay %v@%.3f)",
			*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay, *chaosDelayP)
	} else if *chaosDrop != 0 || *chaosDup != 0 || *chaosDelayP != 0 {
		log.Fatal("starfishd: -chaos-drop/-chaos-dup/-chaos-delay-prob require -chaos-seed")
	}
	var mem *rstore.Store
	if *rsAddr != "" {
		peers, err := parsePeers(*rsPeers)
		if err != nil {
			log.Fatalf("starfishd: -rstore-peers: %v", err)
		}
		peers[wire.NodeID(*node)] = *rsAddr
		mem, err = rstore.New(rstore.Config{
			Node:      wire.NodeID(*node),
			Transport: tr,
			Addr:      *rsAddr,
			PeerAddr:  func(id wire.NodeID) string { return peers[id] },
			Replicas:  *rsRepl,
			Events:    events.Emitter("rstore"),
			Logf:      logf,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("starfishd: replicated memory store on %s (k=%d)", *rsAddr, *rsRepl)
	}

	host := *dataAdr
	d, err := daemon.New(daemon.Config{
		Node:      wire.NodeID(*node),
		Transport: tr,
		GCSAddr:   *gcsAddr,
		Contact:   *contact,
		Store:     store,
		Memory:    mem,
		Arch:      svm.Machines[*archIdx],
		// Application processes bind ephemeral TCP ports; the addresses
		// are exchanged through the lightweight group metadata. Per-group
		// sequencer streams do the same: members learn the creator's
		// concrete address from its join announce.
		DataAddr:     func(wire.AppID, uint32, wire.Rank) string { return host + ":0" },
		GroupAddr:    func(wire.AppID, uint32) string { return host + ":0" },
		GossipEvery:  *gossipEvery,
		GossipFanout: *gossipFanout,
		SuspectAfter: *suspectAfter,
		Events:       events,
		Logf:         logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("starfishd: node %d up, group %s, arch %s", d.Node(), d.GCSAddr(), svm.Machines[*archIdx])

	if *mgmtAdr != "" {
		l, err := net.Listen("tcp", *mgmtAdr)
		if err != nil {
			log.Fatal(err)
		}
		//starfish:allow goleak management server lives for the daemon process; Serve returns when the listener is closed at exit
		go mgmt.NewServer(d, *passwd).Serve(l)
		log.Printf("starfishd: management service on %s", l.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "starfishd: %v, leaving cluster\n", s)
	d.Leave()
	if mem != nil {
		mem.Close()
	}
	events.Close()
}

// parsePeers parses "1=host:port,2=host:port" into a node→address map.
func parsePeers(s string) (map[wire.NodeID]string, error) {
	peers := make(map[wire.NodeID]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want node=addr)", part)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node id %q: %v", id, err)
		}
		peers[wire.NodeID(n)] = addr
	}
	return peers, nil
}
