package cluster

import (
	"os"
	"testing"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/wire"
)

// TestMemoryStoreRecoveryWithoutDisk is the acceptance test of the
// replicated in-memory store: an application checkpointing to replicated
// RAM (k=2) survives a node crash and restarts from a surviving peer's
// memory with no disk involvement — the shared checkpoint directory is
// deleted outright before the crash to prove it.
func TestMemoryStoreRecoveryWithoutDisk(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)

	spec := ringSpec(40, 3, 300000)
	spec.Store = ckpt.StoreMemory
	spec.CkptEverySteps = 2000
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	line, err := c.WaitCommittedLine(40, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, n := range line {
		if n > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatalf("committed line %v has no real checkpoint", line)
	}
	// Nothing must have touched the disk store, and nothing may later: the
	// directory ceases to exist.
	if ns, _ := c.Store().List(40, 0); len(ns) != 0 {
		t.Fatalf("disk store has checkpoints %v for a memory-store app", ns)
	}
	if err := os.RemoveAll(c.Store().Dir()); err != nil {
		t.Fatal(err)
	}

	// Crash a node hosting a rank; the restart restores every rank from
	// surviving RAM replicas.
	info, ok := c.AnyDaemon().AppInfo(40)
	if !ok {
		t.Fatal("app vanished")
	}
	var victim wire.NodeID
	for _, node := range info.Placement {
		if node > victim {
			victim = node
		}
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}

	final, err := c.WaitApp(40, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", final.Status, final.Failure)
	}
	if final.Gen < 2 {
		t.Errorf("gen = %d, want a restart", final.Gen)
	}
	for r, n := range final.Placement {
		if n == victim {
			t.Errorf("rank %d still on crashed node %d", r, n)
		}
	}
	// The surviving memory stores still hold the images the restart used.
	total := 0
	for _, id := range c.Nodes() {
		mem, err := c.MemStore(id)
		if err != nil {
			t.Fatal(err)
		}
		st := mem.Stats()
		total += st.Images
	}
	if total == 0 {
		t.Error("no in-memory checkpoint images on any survivor")
	}
}

// TestDeltaChainRecoveryMidChain is the acceptance test of the incremental
// checkpoint pipeline under churn: an application checkpointing full + delta
// records to replicated RAM is killed while its committed line points at a
// delta record several links past the full base, and the restart must
// reconstruct base + chain from surviving replicas.
func TestDeltaChainRecoveryMidChain(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)

	spec := ringSpec(42, 3, 300000)
	spec.Store = ckpt.StoreMemory
	spec.CkptEverySteps = 2000
	spec.DeltaCkpt = true
	spec.FullEvery = 1000 // one full base, then every epoch rides the chain
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}

	// Wait until the committed line is genuinely mid-chain: at least two
	// delta records past the full base on some rank.
	deadline := time.Now().Add(30 * time.Second)
	for {
		line, err := c.WaitCommittedLine(42, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var top uint64
		for _, n := range line {
			if n > top {
				top = n
			}
		}
		if top >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("committed line %v never advanced past the chain base", line)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The delta path is actually in use: content-addressed blocks are
	// resident in daemon RAM, not opaque images alone.
	blocks := 0
	for _, id := range c.Nodes() {
		mem, err := c.MemStore(id)
		if err != nil {
			t.Fatal(err)
		}
		blocks += mem.Stats().Blocks
	}
	if blocks == 0 {
		t.Fatal("delta-enabled app stored no content-addressed blocks")
	}

	// Kill a node hosting a rank mid-chain.
	info, ok := c.AnyDaemon().AppInfo(42)
	if !ok {
		t.Fatal("app vanished")
	}
	var victim wire.NodeID
	for _, node := range info.Placement {
		if node > victim {
			victim = node
		}
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}

	final, err := c.WaitApp(42, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", final.Status, final.Failure)
	}
	if final.Gen < 2 {
		t.Errorf("gen = %d, want a restart", final.Gen)
	}
	for r, n := range final.Placement {
		if n == victim {
			t.Errorf("rank %d still on crashed node %d", r, n)
		}
	}
}

// TestTieredStoreSpillsAndRecovers runs an application on the tiered
// backend: checkpoints commit at RAM speed but spill to disk in the
// background, so both tiers can serve the restart.
func TestTieredStoreSpillsAndRecovers(t *testing.T) {
	c := newCluster(t, 3)
	waitMainView(t, c, 3)

	spec := ringSpec(41, 3, 300000)
	spec.Store = ckpt.StoreTiered
	spec.CkptEverySteps = 2000
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(41, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	// The background spill lands the same images on disk.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ns, _ := c.Store().List(41, 0)
		if len(ns) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tiered backend never spilled to disk")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(41, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
}
