// Package gossip implements a SWIM-style gossip failure detector: the
// replacement for the all-to-coordinator heartbeats that capped the main
// Starfish group at tens of nodes. Each protocol round a member pings one
// peer chosen from a shuffled ring; a peer that misses the direct ack is
// probed indirectly through k proxies (ping-req), and only when both paths
// stay silent is it marked suspect. Suspicion is a rumor, not a verdict: it
// is piggybacked on subsequent messages together with an incarnation
// number, and the accused node refutes it by re-announcing itself alive at
// a higher incarnation. A suspect that stays unrefuted for SuspectAfter is
// confirmed dead. Per round every member sends O(1) messages regardless of
// group size — the property that lets failure detection scale where
// heartbeat fan-in cannot.
//
// The Detector is a pure state machine: it never reads the wall clock,
// spawns no goroutines and owns no sockets. The caller (the gcs engine
// loop, or a virtual-time benchmark) drives it with Tick/Handle, passing
// `now` explicitly, and transmits the Envelopes it returns. That makes the
// protocol deterministic under a seed and benchmarkable at thousands of
// simulated nodes without wall-clock sleeping.
//
//starfish:deterministic
package gossip

import (
	"fmt"
	"sort"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/wire"
)

// Status is a member's health as seen by one detector.
type Status uint8

// Member states.
const (
	Alive Status = iota + 1
	Suspect
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("gossip.Status(%d)", uint8(s))
	}
}

// Params tunes the protocol.
type Params struct {
	// ProbeEvery is the protocol round length: one direct ping is sent per
	// round (default 25ms).
	ProbeEvery time.Duration
	// ProbeTimeout is how long each probe stage (direct ping, then the
	// indirect ping-req fan-out) may stay unanswered before escalating
	// (default ProbeEvery).
	ProbeTimeout time.Duration
	// SuspectAfter is how long a suspicion may stay unrefuted before the
	// member is confirmed dead (default 8 rounds).
	SuspectAfter time.Duration
	// IndirectFanout is k, the number of proxies a failed direct probe is
	// retried through (default 3).
	IndirectFanout int
	// MaxPiggyback bounds the membership updates carried per message
	// (default 8).
	MaxPiggyback int
}

func (p Params) withDefaults() Params {
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = 25 * time.Millisecond
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = p.ProbeEvery
	}
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 8 * p.ProbeEvery
	}
	if p.IndirectFanout <= 0 {
		p.IndirectFanout = 3
	}
	if p.MaxPiggyback <= 0 {
		p.MaxPiggyback = 8
	}
	return p
}

// Config assembles one detector.
type Config struct {
	// Self is this member's id; it never appears in the probe ring.
	Self wire.NodeID
	// Seed makes probe-target and proxy selection deterministic.
	Seed uint64
	Params
	// Events optionally receives ping-timeout / suspect / refute /
	// confirm-dead records (the daemon passes its store's "gossip" emitter).
	Events evstore.Sink
}

// Envelope is one outbound protocol message; the caller resolves the
// destination id to a transport address.
type Envelope struct {
	To      wire.NodeID
	Payload []byte
}

// Change reports one observed status transition, in occurrence order.
type Change struct {
	Node   wire.NodeID
	Status Status
	Inc    uint32
}

// Stats counts protocol work for load measurement.
type Stats struct {
	// Rounds is the number of protocol rounds started.
	Rounds uint64
	// Sent is the number of protocol messages emitted (pings, acks,
	// ping-reqs — piggybacked updates ride for free).
	Sent uint64
}

// Update is one piggybacked membership rumor.
type Update struct {
	Node   wire.NodeID
	Status Status
	Inc    uint32
}

// Message kinds.
const (
	mPing    uint8 = 1
	mAck     uint8 = 2
	mPingReq uint8 = 3
)

// Message is the decoded wire form of one protocol message.
type Message struct {
	Kind uint8
	From wire.NodeID
	// Target is the node a ping-req asks the proxy to probe.
	Target wire.NodeID
	// Origin is the original prober of a proxied ping: the proxy stamps it
	// on the ping, the target echoes it on the ack, and the proxy relays
	// the ack back to it. Zero on direct probes.
	Origin wire.NodeID
	// Seq correlates acks with the probe (always the origin's sequence).
	Seq     uint64
	Updates []Update
}

// EncodeMessage serializes a protocol message.
func EncodeMessage(m *Message) []byte {
	w := wire.NewWriter(16 + 9*len(m.Updates))
	w.U8(m.Kind).U32(uint32(m.From)).U32(uint32(m.Target)).U32(uint32(m.Origin)).U64(m.Seq)
	w.U8(uint8(len(m.Updates)))
	for _, u := range m.Updates {
		w.U32(uint32(u.Node)).U8(uint8(u.Status)).U32(u.Inc)
	}
	return w.Bytes()
}

// DecodeMessage parses a protocol message.
func DecodeMessage(b []byte) (Message, error) {
	r := wire.NewReader(b)
	m := Message{
		Kind:   r.U8(),
		From:   wire.NodeID(r.U32()),
		Target: wire.NodeID(r.U32()),
		Origin: wire.NodeID(r.U32()),
		Seq:    r.U64(),
	}
	n := r.U8()
	for i := uint8(0); i < n && r.Err() == nil; i++ {
		m.Updates = append(m.Updates, Update{
			Node:   wire.NodeID(r.U32()),
			Status: Status(r.U8()),
			Inc:    r.U32(),
		})
	}
	if r.Err() != nil {
		return Message{}, r.Err()
	}
	if m.Kind < mPing || m.Kind > mPingReq {
		return Message{}, fmt.Errorf("gossip: bad message kind %d", m.Kind)
	}
	return m, nil
}

// member is one peer's tracked state.
type member struct {
	status Status
	inc    uint32
	// suspectAt is the local time suspicion (first- or second-hand) began;
	// the dead verdict fires SuspectAfter later.
	suspectAt time.Time
}

// probe is one outstanding liveness check.
type probe struct {
	target wire.NodeID
	seq    uint64
	sentAt time.Time
	// indirectAt is when the ping-req fan-out went out (zero while the
	// direct ping is still in flight).
	indirectAt time.Time
}

// rumor is one update queued for piggybacking; it is retransmitted a
// logarithmic number of times for epidemic spread, then dropped.
type rumor struct {
	u     Update
	sends int
}

// Detector is one member's view of the group. It is NOT safe for concurrent
// use: drive it from a single goroutine.
type Detector struct {
	cfg     Config
	members map[wire.NodeID]*member
	// ring is the shuffled probe order; a full pass reshuffles, giving the
	// bounded worst-case detection time of round-robin randomized probing.
	ring    []wire.NodeID
	ringPos int

	selfInc   uint32
	nextSeq   uint64
	probes    []probe
	rumors    []*rumor
	changes   []Change
	lastRound time.Time
	rng       uint64
	stats     Stats
}

// New creates a detector with an empty membership.
func New(cfg Config) *Detector {
	cfg.Params = cfg.Params.withDefaults()
	return &Detector{
		cfg:     cfg,
		members: make(map[wire.NodeID]*member),
		rng:     cfg.Seed*0x9e3779b97f4a7c15 + uint64(cfg.Self) + 1,
	}
}

// rand is a splitmix64 step: deterministic under the seed, no global state.
func (d *Detector) rand() uint64 {
	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// SetMembers reconciles the tracked peers with an externally agreed
// membership (the gcs view): new peers start alive, departed peers are
// forgotten, self is ignored. Rumors about departed peers are dropped.
func (d *Detector) SetMembers(ids []wire.NodeID) {
	want := make(map[wire.NodeID]bool, len(ids))
	for _, id := range ids {
		if id != d.cfg.Self {
			want[id] = true
		}
	}
	changed := false
	for id := range d.members {
		if !want[id] {
			delete(d.members, id)
			changed = true
		}
	}
	for id := range want {
		if d.members[id] == nil {
			d.members[id] = &member{status: Alive}
			changed = true
		}
	}
	if !changed {
		return
	}
	keep := d.rumors[:0]
	for _, ru := range d.rumors {
		if ru.u.Node == d.cfg.Self || d.members[ru.u.Node] != nil {
			keep = append(keep, ru)
		}
	}
	d.rumors = keep
	var live []probe
	for _, p := range d.probes {
		if d.members[p.target] != nil {
			live = append(live, p)
		}
	}
	d.probes = live
	d.reshuffle()
}

func (d *Detector) reshuffle() {
	d.ring = d.ring[:0]
	for id := range d.members {
		d.ring = append(d.ring, id)
	}
	// Sort before shuffling: the Fisher-Yates below is seeded, so starting
	// from a canonical order keeps the permutation deterministic (map
	// iteration order would otherwise leak in).
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i] < d.ring[j] })
	for i := len(d.ring) - 1; i > 0; i-- {
		j := int(d.rand() % uint64(i+1))
		d.ring[i], d.ring[j] = d.ring[j], d.ring[i]
	}
	d.ringPos = 0
}

// Status returns the tracked state of one peer (Alive also for unknown ids:
// membership is the caller's authority, not the detector's).
func (d *Detector) Status(n wire.NodeID) Status {
	if m := d.members[n]; m != nil {
		return m.status
	}
	return Alive
}

// Changes drains observed status transitions in order.
func (d *Detector) Changes() []Change {
	out := d.changes
	d.changes = nil
	return out
}

// Stats returns cumulative protocol-load counters.
func (d *Detector) Stats() Stats { return d.stats }

func (d *Detector) event(r evstore.Record) {
	if d.cfg.Events != nil {
		d.cfg.Events.Emit(r)
	}
}

// maxRumorSends is the per-rumor retransmission budget: c*log2(n), the
// classic epidemic-dissemination bound.
func (d *Detector) maxRumorSends() int {
	n := len(d.members) + 2
	bits := 0
	for v := n; v > 0; v >>= 1 {
		bits++
	}
	return 3 * bits
}

// queueRumor replaces any queued update about the same node (newer
// information supersedes) and resets its retransmission budget.
func (d *Detector) queueRumor(u Update) {
	for _, ru := range d.rumors {
		if ru.u.Node == u.Node {
			ru.u = u
			ru.sends = 0
			return
		}
	}
	d.rumors = append(d.rumors, &rumor{u: u})
}

// piggyback selects up to MaxPiggyback least-sent rumors and charges their
// budgets, dropping exhausted ones.
func (d *Detector) piggyback() []Update {
	limit := d.maxRumorSends()
	keep := d.rumors[:0]
	for _, ru := range d.rumors {
		if ru.sends < limit {
			keep = append(keep, ru)
		}
	}
	d.rumors = keep
	if len(d.rumors) == 0 {
		return nil
	}
	// Selection sort of the least-sent prefix; rumor queues are tiny.
	out := make([]Update, 0, d.cfg.MaxPiggyback)
	for i := 0; i < len(d.rumors) && len(out) < d.cfg.MaxPiggyback; i++ {
		min := i
		for j := i + 1; j < len(d.rumors); j++ {
			if d.rumors[j].sends < d.rumors[min].sends {
				min = j
			}
		}
		d.rumors[i], d.rumors[min] = d.rumors[min], d.rumors[i]
		d.rumors[i].sends++
		out = append(out, d.rumors[i].u)
	}
	return out
}

func (d *Detector) send(to wire.NodeID, m Message) Envelope {
	m.From = d.cfg.Self
	m.Updates = append(m.Updates, d.piggyback()...)
	d.stats.Sent++
	return Envelope{To: to, Payload: EncodeMessage(&m)}
}

// Tick advances timers: it starts a protocol round when due, escalates
// unanswered probes to ping-req then suspicion, and confirms unrefuted
// suspects dead. Call it at least once per ProbeTimeout.
func (d *Detector) Tick(now time.Time) []Envelope {
	var out []Envelope

	// Escalate outstanding probes.
	keep := d.probes[:0]
	for _, p := range d.probes {
		m := d.members[p.target]
		if m == nil {
			continue
		}
		switch {
		case p.indirectAt.IsZero() && now.Sub(p.sentAt) >= d.cfg.ProbeTimeout:
			d.event(evstore.Ev("ping-timeout", evstore.F("target", p.target)))
			for _, proxy := range d.pickProxies(p.target) {
				out = append(out, d.send(proxy, Message{Kind: mPingReq, Target: p.target, Seq: p.seq}))
			}
			p.indirectAt = now
			keep = append(keep, p)
		case !p.indirectAt.IsZero() && now.Sub(p.indirectAt) >= d.cfg.ProbeTimeout:
			d.suspect(p.target, m, m.inc, now)
		default:
			keep = append(keep, p)
		}
	}
	d.probes = keep

	// Start a new round when due.
	if d.lastRound.IsZero() || now.Sub(d.lastRound) >= d.cfg.ProbeEvery {
		d.lastRound = now
		d.stats.Rounds++
		if t, ok := d.nextTarget(); ok {
			d.nextSeq++
			d.probes = append(d.probes, probe{target: t, seq: d.nextSeq, sentAt: now})
			out = append(out, d.send(t, Message{Kind: mPing, Seq: d.nextSeq}))
		}
	}

	// Confirm long-unrefuted suspects dead (sorted: rumor order reaches
	// the wire, and determinism is part of the contract).
	var expired []wire.NodeID
	for id, m := range d.members {
		if m.status == Suspect && now.Sub(m.suspectAt) >= d.cfg.SuspectAfter {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		d.confirmDead(id, d.members[id], d.members[id].inc)
	}
	return out
}

// nextTarget walks the shuffled ring, skipping confirmed-dead peers and
// peers already under probe.
func (d *Detector) nextTarget() (wire.NodeID, bool) {
	probing := make(map[wire.NodeID]bool, len(d.probes))
	for _, p := range d.probes {
		probing[p.target] = true
	}
	for tries := 0; tries < len(d.ring); tries++ {
		if d.ringPos >= len(d.ring) {
			d.reshuffle()
			if len(d.ring) == 0 {
				return 0, false
			}
		}
		id := d.ring[d.ringPos]
		d.ringPos++
		m := d.members[id]
		if m == nil || m.status == Dead || probing[id] {
			continue
		}
		return id, true
	}
	return 0, false
}

// pickProxies selects up to IndirectFanout live peers other than target.
func (d *Detector) pickProxies(target wire.NodeID) []wire.NodeID {
	var pool []wire.NodeID
	for id, m := range d.members {
		if id != target && m.status != Dead {
			pool = append(pool, id)
		}
	}
	// Deterministic pool order (map iteration is not), then partial shuffle.
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	k := d.cfg.IndirectFanout
	if k > len(pool) {
		k = len(pool)
	}
	for i := 0; i < k; i++ {
		j := i + int(d.rand()%uint64(len(pool)-i))
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

func (d *Detector) suspect(id wire.NodeID, m *member, inc uint32, now time.Time) {
	if m.status != Alive || inc < m.inc {
		return
	}
	m.status = Suspect
	m.inc = inc
	m.suspectAt = now
	d.queueRumor(Update{Node: id, Status: Suspect, Inc: inc})
	d.changes = append(d.changes, Change{Node: id, Status: Suspect, Inc: inc})
	d.event(evstore.Ev("suspect", evstore.F("target", id), evstore.F("inc", inc)))
}

func (d *Detector) confirmDead(id wire.NodeID, m *member, inc uint32) {
	if m.status == Dead {
		return
	}
	m.status = Dead
	if inc > m.inc {
		m.inc = inc
	}
	d.queueRumor(Update{Node: id, Status: Dead, Inc: m.inc})
	d.changes = append(d.changes, Change{Node: id, Status: Dead, Inc: m.inc})
	d.event(evstore.Ev("confirm-dead", evstore.F("target", id), evstore.F("inc", m.inc)))
}

func (d *Detector) markAlive(id wire.NodeID, m *member, inc uint32) {
	if inc > m.inc {
		m.inc = inc
	}
	if m.status == Alive {
		return
	}
	m.status = Alive
	d.changes = append(d.changes, Change{Node: id, Status: Alive, Inc: m.inc})
}

// applyUpdate merges one piggybacked rumor under SWIM's precedence rules:
// alive@i beats suspect@j and alive@j iff i>j; suspect@i beats alive@j iff
// i>=j and suspect@j iff i>j; dead beats everything at its incarnation, and
// is itself refuted only by alive at a strictly higher incarnation (so a
// falsely buried node can resurrect by bumping its incarnation).
func (d *Detector) applyUpdate(u Update, now time.Time) {
	if u.Node == d.cfg.Self {
		// Someone thinks we are suspect/dead: refute by re-announcing at a
		// higher incarnation.
		if u.Status != Alive && u.Inc >= d.selfInc {
			d.selfInc = u.Inc + 1
			d.queueRumor(Update{Node: d.cfg.Self, Status: Alive, Inc: d.selfInc})
			d.event(evstore.Ev("refute", evstore.F("inc", d.selfInc), evstore.F("was", u.Status)))
		}
		return
	}
	m := d.members[u.Node]
	if m == nil {
		return // not in the agreed membership: stale rumor
	}
	switch u.Status {
	case Alive:
		if u.Inc > m.inc {
			d.markAlive(u.Node, m, u.Inc)
			d.queueRumor(u)
		}
	case Suspect:
		fresher := (m.status == Alive && u.Inc >= m.inc) ||
			(m.status == Suspect && u.Inc > m.inc)
		if fresher {
			wasAlive := m.status == Alive
			m.inc = u.Inc
			if wasAlive {
				m.status = Suspect
				m.suspectAt = now
				d.changes = append(d.changes, Change{Node: u.Node, Status: Suspect, Inc: u.Inc})
				d.event(evstore.Ev("suspect",
					evstore.F("target", u.Node), evstore.F("inc", u.Inc),
					evstore.F("via", "rumor")))
			}
			d.queueRumor(u)
		}
	case Dead:
		if m.status != Dead && u.Inc >= m.inc {
			d.confirmDead(u.Node, m, u.Inc)
		}
	}
}

// Handle processes one received protocol message and returns the replies to
// transmit. Any valid message from a tracked peer doubles as first-hand
// evidence that the peer is alive.
func (d *Detector) Handle(now time.Time, payload []byte) ([]Envelope, error) {
	msg, err := DecodeMessage(payload)
	if err != nil {
		return nil, err
	}
	for _, u := range msg.Updates {
		d.applyUpdate(u, now)
	}
	if m := d.members[msg.From]; m != nil && m.status != Alive {
		// Hearing from a suspect directly clears the local suspicion (the
		// incarnation-bumped refute still travels the rumor path).
		d.markAlive(msg.From, m, m.inc)
	}

	var out []Envelope
	switch msg.Kind {
	case mPing:
		// Answer to the sender; for proxied pings the echoed Origin lets
		// the proxy route the ack home.
		out = append(out, d.send(msg.From, Message{Kind: mAck, Origin: msg.Origin, Seq: msg.Seq}))
	case mPingReq:
		if d.members[msg.Target] != nil {
			out = append(out, d.send(msg.Target, Message{Kind: mPing, Origin: msg.From, Seq: msg.Seq}))
		}
	case mAck:
		if msg.Origin != 0 && msg.Origin != d.cfg.Self {
			// We proxied this probe: relay the ack to the origin.
			if d.members[msg.Origin] != nil {
				out = append(out, d.send(msg.Origin, Message{Kind: mAck, Origin: msg.Origin, Seq: msg.Seq}))
			}
			return out, nil
		}
		keep := d.probes[:0]
		for _, p := range d.probes {
			if p.seq == msg.Seq {
				if m := d.members[p.target]; m != nil {
					d.markAlive(p.target, m, m.inc)
				}
				continue
			}
			keep = append(keep, p)
		}
		d.probes = keep
	}
	return out, nil
}
