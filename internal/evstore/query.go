package evstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The filter query language. A query is a space-separated conjunction of
// terms:
//
//	component=gcs kind=view-change app=ring since=5s seq>1042 limit=100
//
// Each term is key OP value. Builtin keys:
//
//	seq, node, app, rank  — numeric; ops = != > >= < <=
//	component, kind       — string; ops = !=
//	since                 — =<duration>; matches records younger than that
//	limit                 — =N; keep only the newest N matching records
//
// app additionally accepts a non-numeric value (an application name) with
// = and !=; the caller resolves names to ids with Query.ResolveApps before
// evaluation (the mgmt layer does this against the daemon's app table).
// Any other key matches the record's KV attributes: k=v requires an
// attribute k with value v, k!=v requires its absence or a different value.
// Values with spaces or quotes are written Go-quoted: msg="boom now".

// Op is a term's comparison operator.
type Op uint8

// Operators.
const (
	OpEq Op = iota
	OpNe
	OpGt
	OpGe
	OpLt
	OpLe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	}
	return "?"
}

// Pred is one parsed term.
type Pred struct {
	Key string
	Op  Op
	// Val is the raw value; Num is its numeric form when IsNum.
	Val   string
	Num   uint64
	IsNum bool
	// Dur is set for since terms.
	Dur time.Duration
}

// Query is a parsed filter: the conjunction of Preds, plus the limit term.
type Query struct {
	Preds []Pred
	// Limit keeps only the newest Limit matching records (0 = unlimited).
	Limit int
	// ForceScan disables sealed-index chunk pruning; queries decompress
	// and filter every chunk. Benchmarks use it to measure what the
	// indexes buy.
	ForceScan bool
}

// numericKey reports whether k is a builtin key with a numeric record
// field.
func numericKey(k string) bool {
	switch k {
	case "seq", "node", "app", "rank":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

type tokKind uint8

const (
	tokKey tokKind = iota
	tokOp
	tokValue
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func isKeyByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case !first && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		return true
	}
	return false
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t') {
		l.pos++
	}
}

// key scans a term key.
func (l *lexer) key() (token, error) {
	l.skipSpace()
	start := l.pos
	if start >= len(l.in) {
		return token{kind: tokEOF, pos: start}, nil
	}
	if !isKeyByte(l.in[l.pos], true) {
		return token{}, fmt.Errorf("col %d: expected a key, got %q", l.pos+1, rune(l.in[l.pos]))
	}
	for l.pos < len(l.in) && isKeyByte(l.in[l.pos], false) {
		l.pos++
	}
	return token{kind: tokKey, text: l.in[start:l.pos], pos: start}, nil
}

// op scans a comparison operator immediately after a key (no spaces
// allowed inside a term).
func (l *lexer) op() (token, error) {
	start := l.pos
	if start >= len(l.in) {
		return token{}, fmt.Errorf("col %d: expected an operator", start+1)
	}
	two := ""
	if start+2 <= len(l.in) {
		two = l.in[start : start+2]
	}
	switch {
	case two == "!=" || two == ">=" || two == "<=":
		l.pos += 2
		return token{kind: tokOp, text: two, pos: start}, nil
	case l.in[start] == '=' || l.in[start] == '>' || l.in[start] == '<':
		l.pos++
		return token{kind: tokOp, text: l.in[start : start+1], pos: start}, nil
	}
	return token{}, fmt.Errorf("col %d: expected an operator, got %q", start+1, rune(l.in[start]))
}

// value scans a bare or Go-quoted value immediately after the operator.
func (l *lexer) value() (token, error) {
	start := l.pos
	if start < len(l.in) && l.in[start] == '"' {
		// Quoted: find the closing quote, honoring backslash escapes,
		// then let strconv.Unquote handle the escape grammar.
		i := start + 1
		for i < len(l.in) {
			switch l.in[i] {
			case '\\':
				i += 2
				continue
			case '"':
				raw := l.in[start : i+1]
				v, err := strconv.Unquote(raw)
				if err != nil {
					return token{}, fmt.Errorf("col %d: bad quoted value %s", start+1, raw)
				}
				l.pos = i + 1
				return token{kind: tokValue, text: v, pos: start}, nil
			}
			i++
		}
		return token{}, fmt.Errorf("col %d: unterminated quoted value", start+1)
	}
	for l.pos < len(l.in) && l.in[l.pos] != ' ' && l.in[l.pos] != '\t' {
		l.pos++
	}
	if l.pos == start {
		return token{}, fmt.Errorf("col %d: expected a value", start+1)
	}
	return token{kind: tokValue, text: l.in[start:l.pos], pos: start}, nil
}

// lex tokenizes the whole query. Exposed to the golden lexer tests via
// lexQuery.
func lexQuery(in string) ([]token, error) {
	l := &lexer{in: in}
	var toks []token
	for {
		k, err := l.key()
		if err != nil {
			return nil, err
		}
		if k.kind == tokEOF {
			toks = append(toks, k)
			return toks, nil
		}
		o, err := l.op()
		if err != nil {
			return nil, err
		}
		v, err := l.value()
		if err != nil {
			return nil, err
		}
		toks = append(toks, k, o, v)
	}
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

var opByText = map[string]Op{
	"=": OpEq, "!=": OpNe, ">": OpGt, ">=": OpGe, "<": OpLt, "<=": OpLe,
}

// ParseQuery parses a filter query. The empty query matches everything.
func ParseQuery(in string) (*Query, error) {
	toks, err := lexQuery(in)
	if err != nil {
		return nil, err
	}
	q := &Query{}
	for i := 0; i+2 < len(toks); i += 3 {
		key, opTok, val := toks[i], toks[i+1], toks[i+2]
		op := opByText[opTok.text]
		p := Pred{Key: key.text, Op: op, Val: val.text}
		if n, err := strconv.ParseUint(val.text, 10, 64); err == nil {
			p.Num, p.IsNum = n, true
		}
		switch key.text {
		case "limit":
			if op != OpEq {
				return nil, fmt.Errorf("col %d: limit takes =", opTok.pos+1)
			}
			n, err := strconv.Atoi(val.text)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("col %d: limit wants a positive count, got %q", val.pos+1, val.text)
			}
			q.Limit = n
			continue
		case "since":
			if op != OpEq {
				return nil, fmt.Errorf("col %d: since takes =", opTok.pos+1)
			}
			d, err := time.ParseDuration(val.text)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("col %d: since wants a positive duration, got %q", val.pos+1, val.text)
			}
			p.Dur = d
		case "seq", "node", "rank":
			if !p.IsNum {
				return nil, fmt.Errorf("col %d: %s wants a number, got %q", val.pos+1, key.text, val.text)
			}
		case "app":
			// Numbers always; names only with = and != (resolved by the
			// caller, see ResolveApps).
			if !p.IsNum && op != OpEq && op != OpNe {
				return nil, fmt.Errorf("col %d: app %s wants a numeric id", val.pos+1, op)
			}
		case "component", "kind":
			if op != OpEq && op != OpNe {
				return nil, fmt.Errorf("col %d: %s supports only = and !=", opTok.pos+1, key.text)
			}
		default:
			if op != OpEq && op != OpNe {
				return nil, fmt.Errorf("col %d: attribute %s supports only = and !=", opTok.pos+1, key.text)
			}
		}
		q.Preds = append(q.Preds, p)
	}
	return q, nil
}

// String renders the query back in canonical form (terms in parse order,
// limit last). Parsing the result yields an equivalent query.
func (q *Query) String() string {
	var b strings.Builder
	for i, p := range q.Preds {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.Key)
		b.WriteString(p.Op.String())
		appendVal(&b, p.Val)
	}
	if q.Limit > 0 {
		if len(q.Preds) > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "limit=%d", q.Limit)
	}
	return b.String()
}

// ResolveApps rewrites app=<name> (and app!=<name>) terms to numeric ids
// using resolve. It returns an error naming the first unknown application.
func (q *Query) ResolveApps(resolve func(name string) (uint64, bool)) error {
	for i := range q.Preds {
		p := &q.Preds[i]
		if p.Key != "app" || p.IsNum {
			continue
		}
		id, ok := resolve(p.Val)
		if !ok {
			return fmt.Errorf("unknown application %q", p.Val)
		}
		p.Num, p.IsNum = id, true
		p.Val = strconv.FormatUint(id, 10)
	}
	return nil
}

// sinceCutoff returns the latest since= cutoff as unix nanos, or 0.
func (q *Query) sinceCutoff(now time.Time) int64 {
	var cut int64
	for _, p := range q.Preds {
		if p.Key == "since" {
			if c := now.Add(-p.Dur).UnixNano(); c > cut {
				cut = c
			}
		}
	}
	return cut
}

func cmpNum(have uint64, op Op, want uint64) bool {
	switch op {
	case OpEq:
		return have == want
	case OpNe:
		return have != want
	case OpGt:
		return have > want
	case OpGe:
		return have >= want
	case OpLt:
		return have < want
	case OpLe:
		return have <= want
	}
	return false
}

// match evaluates the conjunction against one record. cutoff is the
// precomputed since= bound (0 = none).
func (q *Query) match(r *Record, cutoff int64) bool {
	if cutoff != 0 && r.WriteTS < cutoff {
		return false
	}
	for i := range q.Preds {
		p := &q.Preds[i]
		switch p.Key {
		case "since":
			// Handled via cutoff.
		case "seq":
			if !cmpNum(r.Seq, p.Op, p.Num) {
				return false
			}
		case "node":
			if !cmpNum(uint64(r.Node), p.Op, p.Num) {
				return false
			}
		case "app":
			if !p.IsNum {
				return false // unresolved name matches nothing
			}
			if !cmpNum(uint64(r.App), p.Op, p.Num) {
				return false
			}
		case "rank":
			if r.Rank < 0 {
				if p.Op != OpNe {
					return false
				}
			} else if !cmpNum(uint64(r.Rank), p.Op, p.Num) {
				return false
			}
		case "component":
			if (r.Component == p.Val) != (p.Op == OpEq) {
				return false
			}
		case "kind":
			if (r.Kind == p.Val) != (p.Op == OpEq) {
				return false
			}
		default:
			v, ok := r.Get(p.Key)
			if (ok && v == p.Val) != (p.Op == OpEq) {
				return false
			}
		}
	}
	return true
}

// Match reports whether the query matches r, evaluating since= terms
// against now.
func (q *Query) Match(r *Record, now time.Time) bool {
	return q.match(r, q.sinceCutoff(now))
}
