package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDeltaRoundTrip drives the whole incremental encode path with arbitrary
// state pairs: the delta from base to next, serialized and parsed back, must
// reconstruct next exactly — including states that shrink, grow, or land off
// block boundaries. Apply and ApplyInPlace must agree.
func FuzzDeltaRoundTrip(f *testing.F) {
	block := func(fill byte, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	// Same size, one changed block.
	f.Add(block(1, 3*DeltaBlockSize), append(block(1, 2*DeltaBlockSize), block(2, DeltaBlockSize)...))
	// Growth past the base, off-boundary.
	f.Add(block(3, DeltaBlockSize/2), block(3, 4*DeltaBlockSize+17))
	// Shrink to a prefix, and shrink within the shared tail block.
	f.Add(block(4, 4*DeltaBlockSize), block(4, DeltaBlockSize+1))
	f.Add(block(5, DeltaBlockSize+100), block(5, DeltaBlockSize+99))
	// Degenerate sizes.
	f.Add([]byte{}, []byte{})
	f.Add([]byte{}, []byte{42})
	f.Add([]byte{42}, []byte{})

	f.Fuzz(func(t *testing.T, base, next []byte) {
		d := ComputeDelta(base, next)
		if d.BaseLen != len(base) || d.NewLen != len(next) {
			t.Fatalf("delta lengths %d/%d, want %d/%d", d.BaseLen, d.NewLen, len(base), len(next))
		}
		dec, err := DecodeDelta(d.Encode())
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		out, err := dec.Apply(base)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if !bytes.Equal(out, next) {
			t.Fatalf("round trip mismatch: %d bytes -> %d bytes", len(base), len(next))
		}
		// ApplyInPlace consumes its base; feed it a private copy.
		inPlace, err := dec.ApplyInPlace(append([]byte(nil), base...))
		if err != nil {
			t.Fatalf("apply in place: %v", err)
		}
		if !bytes.Equal(inPlace, next) {
			t.Fatal("ApplyInPlace disagrees with Apply")
		}
		// A wrong-length base must be rejected, never silently applied.
		if _, err := dec.Apply(append(base, 0)); err == nil {
			t.Fatal("apply accepted a base of the wrong length")
		}
	})
}
