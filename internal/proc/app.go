// Package proc implements the Starfish application process: the runtime
// that hosts user MPI code together with the group handler, MPI module,
// checkpoint/restart module and VNI of Figure 1, wired through the object
// bus and driven by a step scheduler.
//
// An application process is goroutine-hosted (Go cannot checkpoint live OS
// processes), so checkpointable state is explicit: applications implement
// the App interface with a Snapshot/Restore pair, or run bytecode on the
// Starfish VM whose whole image is checkpointable — mirroring the paper's
// native-vs-VM-level split. Execution is step-structured: the runtime
// interleaves application steps with control work, and checkpoints are
// taken at step boundaries (the application-level safe points standard in
// rollback-recovery systems).
package proc

import (
	"fmt"
	"sort"
	"sync"

	"starfish/internal/mpi"
	"starfish/internal/svm"
	"starfish/internal/wire"
)

// App is the interface user applications implement. Step is called
// repeatedly until it reports done; checkpoints are taken between Step
// calls, so Snapshot must return the complete state needed by Restore to
// continue from that boundary.
//
// Apps should be written in a bulk-synchronous style: every receive a step
// performs must be satisfied by messages peers send during the same step.
// This guarantees the stop-and-sync protocol can always bring the
// application to a global safe point.
type App interface {
	// Init starts a fresh run.
	Init(ctx *Ctx) error
	// Restore resumes from a Snapshot taken at a step boundary.
	Restore(ctx *Ctx, state []byte) error
	// Step performs one unit of work and reports whether the application
	// is finished.
	Step(ctx *Ctx) (done bool, err error)
	// Snapshot returns the application state at the current boundary.
	Snapshot() ([]byte, error)
}

// Factory builds an App from its submission arguments.
type Factory func(args []byte) (App, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes an application type available for submission under name.
// All nodes of a cluster run the same binary, so registration by name is
// how daemons spawn arbitrary user applications. Register panics on
// duplicate names.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("proc: app %q registered twice", name))
	}
	registry[name] = f
}

// NewApp instantiates a registered application.
func NewApp(name string, args []byte) (App, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proc: unknown app %q", name)
	}
	return f(args)
}

// RegisteredApps returns the registered app names, sorted.
func RegisteredApps() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Ctx is the application's view of its process runtime: the MPI module
// plus the Starfish-specific upcalls and downcalls of §1. Standard MPI
// programs simply use Comm and ignore the rest.
type Ctx struct {
	// Comm is the MPI module (fast data path).
	Comm *mpi.Comm
	// Rank and Size identify this process within the application.
	Rank wire.Rank
	Size int
	// Gen counts incarnations: 0 for the initial launch, +1 per restart.
	Gen uint32
	// Arch is the simulated architecture of the hosting node.
	Arch svm.Arch

	p *Process
}

// RequestCheckpoint is the user-initiated checkpoint downcall: it asks the
// runtime to start a checkpoint round of the application's configured
// protocol at the next safe point.
func (c *Ctx) RequestCheckpoint() {
	if c.p != nil {
		c.p.requestCheckpoint()
	}
}

// OnView registers the view-change upcall: fn is invoked at a step
// boundary after a lightweight view change, with the surviving ranks and
// the ranks that departed since the last view. Applications that do not
// register a handler keep the conventional MPI programming model.
func (c *Ctx) OnView(fn func(alive, departed []wire.Rank)) {
	if c.p != nil {
		c.p.viewHandler = fn
	}
}

// OnCoordination registers a handler for application-level coordination
// messages (sent with Coordinate), delivered at step boundaries.
func (c *Ctx) OnCoordination(fn func(from wire.Rank, payload []byte)) {
	if c.p != nil {
		c.p.coordHandler = fn
	}
}

// Coordinate multicasts an application-level coordination message to all
// of the application's processes through the daemons and the lightweight
// group (reliable, totally ordered — the slow path).
func (c *Ctx) Coordinate(payload []byte) error {
	if c.p == nil {
		return fmt.Errorf("proc: no runtime")
	}
	return c.p.sendToDaemon(wire.Msg{
		Type: wire.TCoordination, App: c.p.spec.ID, Src: c.Rank, Payload: payload,
	})
}

// Logf logs through the process runtime (no-op unless the host installed a
// logger).
func (c *Ctx) Logf(format string, args ...any) {
	if c.p != nil && c.p.logf != nil {
		c.p.logf("[app %d rank %d] "+format, append([]any{c.p.spec.ID, c.Rank}, args...)...)
	}
}

// ---- the built-in SVM application ----

// VMApp runs a Starfish VM program as a Starfish application. Its
// checkpointable state is the complete VM image, which makes it fully
// transparent and heterogeneous: the image converts between architectures
// on restore.
type VMApp struct {
	StepSlice int // VM instructions per Step
	Source    string
	NGlobals  int
	Globals   []int64 // initial values for the first NGlobals globals
	HeapWords int     // pre-allocated heap (checkpoint-size experiments)

	vm *svm.VM
}

// VMAppName is the registry name of the built-in VM application.
const VMAppName = "svm"

func init() {
	Register(VMAppName, func(args []byte) (App, error) { return DecodeVMApp(args) })
}

// EncodeVMApp serializes a VMApp description for submission.
func EncodeVMApp(a *VMApp) []byte {
	w := wire.NewWriter(64 + len(a.Source))
	w.U32(uint32(a.StepSlice)).U32(uint32(a.NGlobals)).U32(uint32(a.HeapWords))
	w.String(a.Source)
	w.U32(uint32(len(a.Globals)))
	for _, g := range a.Globals {
		w.I64(g)
	}
	return w.Bytes()
}

// DecodeVMApp parses a description produced by EncodeVMApp.
func DecodeVMApp(args []byte) (*VMApp, error) {
	r := wire.NewReader(args)
	a := &VMApp{
		StepSlice: int(r.U32()),
		NGlobals:  int(r.U32()),
		HeapWords: int(r.U32()),
		Source:    r.String(),
	}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		a.Globals = append(a.Globals, r.I64())
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if a.StepSlice <= 0 {
		a.StepSlice = 1000
	}
	return a, nil
}

// Init implements App: assemble and boot the VM on the node architecture.
func (a *VMApp) Init(ctx *Ctx) error {
	prog, err := svm.Assemble(a.Source)
	if err != nil {
		return err
	}
	ng := a.NGlobals
	if ng < len(a.Globals) {
		ng = len(a.Globals)
	}
	a.vm = svm.New(ctx.Arch, prog, ng)
	copy(a.vm.Globals, a.Globals)
	if a.HeapWords > 0 {
		a.vm.Grow(a.HeapWords)
	}
	a.vm.TrackDirty()
	return nil
}

// Restore implements App: decode the image, converting representations if
// the previous incarnation ran on a different architecture.
func (a *VMApp) Restore(ctx *Ctx, state []byte) error {
	vm, err := svm.DecodeImage(state, ctx.Arch)
	if err != nil {
		return err
	}
	a.vm = vm
	a.vm.TrackDirty()
	return nil
}

// Step implements App: run one slice of instructions.
func (a *VMApp) Step(*Ctx) (bool, error) {
	return a.vm.RunSteps(a.StepSlice)
}

// Snapshot implements App: the native-representation VM image. Each
// snapshot re-baselines the VM's write tracking, so DirtySpans always
// describes changes relative to the previous snapshot.
func (a *VMApp) Snapshot() ([]byte, error) {
	img := a.vm.EncodeImage()
	a.vm.ResetDirty()
	return img, nil
}

// DirtySpans returns the byte ranges of the next snapshot that may differ
// from the previous one (dirty hints for the incremental differ), nil when
// unknown.
func (a *VMApp) DirtySpans() []svm.Span { return a.vm.DirtyByteSpans() }

// VM exposes the underlying machine (inspection in tests and examples).
func (a *VMApp) VM() *svm.VM { return a.vm }
