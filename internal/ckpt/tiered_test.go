package ckpt

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"starfish/internal/wire"
)

// memBackend is a minimal in-memory Backend for exercising Tiered without
// pulling in the replicated store (which lives downstream of this package).
type memBackend struct {
	mu      sync.Mutex
	images  map[[3]uint64][]byte
	metas   map[[3]uint64]*Meta
	commits map[wire.AppID]RecoveryLine
	fail    bool
}

func newMemBackend() *memBackend {
	return &memBackend{
		images:  make(map[[3]uint64][]byte),
		metas:   make(map[[3]uint64]*Meta),
		commits: make(map[wire.AppID]RecoveryLine),
	}
}

func bkey(app wire.AppID, rank wire.Rank, n uint64) [3]uint64 {
	return [3]uint64{uint64(app), uint64(uint32(rank)), n}
}

func (m *memBackend) Put(app wire.AppID, rank wire.Rank, n uint64, img []byte, meta *Meta) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return errors.New("memBackend: injected failure")
	}
	m.images[bkey(app, rank, n)] = append([]byte(nil), img...)
	if meta == nil {
		meta = &Meta{Rank: rank, Index: n}
	}
	m.metas[bkey(app, rank, n)] = meta
	return nil
}

func (m *memBackend) Get(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	img, ok := m.images[bkey(app, rank, n)]
	if !ok {
		return nil, nil, ErrNoCheckpoint
	}
	return img, m.metas[bkey(app, rank, n)], nil
}

func (m *memBackend) List(app wire.AppID, rank wire.Rank) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []uint64
	for k := range m.images {
		if k[0] == uint64(app) && k[1] == uint64(uint32(rank)) {
			out = append(out, k[2])
		}
	}
	sortU64(out)
	return out, nil
}

func (m *memBackend) Ranks(app wire.AppID) ([]wire.Rank, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[wire.Rank]bool{}
	var out []wire.Rank
	for k := range m.images {
		r := wire.Rank(uint32(k[1]))
		if k[0] == uint64(app) && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sortRanks(out)
	return out, nil
}

func (m *memBackend) CommitLine(app wire.AppID, line RecoveryLine) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits[app] = line
	return nil
}

func (m *memBackend) CommittedLine(app wire.AppID) (RecoveryLine, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	line, ok := m.commits[app]
	if !ok {
		return nil, ErrNoCheckpoint
	}
	return line, nil
}

func (m *memBackend) GC(app wire.AppID, rank wire.Rank, keepFrom uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.images {
		if k[0] == uint64(app) && k[1] == uint64(uint32(rank)) && k[2] < keepFrom {
			delete(m.images, k)
			delete(m.metas, k)
		}
	}
	return nil
}

func (m *memBackend) DropApp(app wire.AppID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.images {
		if k[0] == uint64(app) {
			delete(m.images, k)
			delete(m.metas, k)
		}
	}
	delete(m.commits, app)
	return nil
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestTieredSpillsToDisk(t *testing.T) {
	fast := newMemBackend()
	disk, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, disk, t.Logf)
	defer tiered.Close()

	img := bytes.Repeat([]byte{3}, 512)
	if err := tiered.Put(1, 0, 1, img, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tiered.CommitLine(1, RecoveryLine{0: 1}); err != nil {
		t.Fatalf("CommitLine: %v", err)
	}
	tiered.Flush()

	// The disk tier caught up in the background.
	got, _, err := disk.Get(1, 0, 1)
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("disk Get after spill = %v", err)
	}
	line, err := disk.CommittedLine(1)
	if err != nil || line[0] != 1 {
		t.Fatalf("disk CommittedLine after spill = %v, %v", line, err)
	}
}

func TestTieredReadsFallBackToDisk(t *testing.T) {
	fast := newMemBackend()
	disk, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Seed disk only — models a cluster-wide restart that wiped all RAM.
	if err := disk.Put(2, 1, 4, []byte("cold"), nil); err != nil {
		t.Fatal(err)
	}
	if err := disk.CommitLine(2, RecoveryLine{1: 4}); err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, disk, t.Logf)
	defer tiered.Close()

	img, meta, err := tiered.Get(2, 1, 4)
	if err != nil || string(img) != "cold" || meta.Index != 4 {
		t.Fatalf("Get fallback = %q, %+v, %v", img, meta, err)
	}
	line, err := tiered.CommittedLine(2)
	if err != nil || line[1] != 4 {
		t.Fatalf("CommittedLine fallback = %v, %v", line, err)
	}
	ns, err := tiered.List(2, 1)
	if err != nil || len(ns) != 1 || ns[0] != 4 {
		t.Fatalf("List union = %v, %v", ns, err)
	}
	rs, err := tiered.Ranks(2)
	if err != nil || len(rs) != 1 || rs[0] != 1 {
		t.Fatalf("Ranks union = %v, %v", rs, err)
	}
}

func TestTieredListUnionsBothTiers(t *testing.T) {
	fast := newMemBackend()
	slow := newMemBackend()
	tiered := NewTiered(fast, slow, t.Logf)
	defer tiered.Close()

	// One index in memory only, one on "disk" only, one in both.
	if err := fast.Put(3, 0, 1, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := slow.Put(3, 0, 2, []byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := fast.Put(3, 0, 3, []byte("c"), nil); err != nil {
		t.Fatal(err)
	}
	if err := slow.Put(3, 0, 3, []byte("c"), nil); err != nil {
		t.Fatal(err)
	}
	ns, err := tiered.List(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3}
	if len(ns) != len(want) {
		t.Fatalf("List = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("List = %v, want %v", ns, want)
		}
	}
}

func TestTieredSpillFailureIsCounted(t *testing.T) {
	fast := newMemBackend()
	slow := newMemBackend()
	slow.fail = true
	tiered := NewTiered(fast, slow, t.Logf)
	defer tiered.Close()

	if err := tiered.Put(4, 0, 1, []byte("x"), nil); err != nil {
		t.Fatalf("Put must succeed despite spill failure: %v", err)
	}
	tiered.Flush()
	if tiered.SpillErrors() != 1 {
		t.Fatalf("SpillErrors = %d, want 1", tiered.SpillErrors())
	}
	// The fast tier still serves the image.
	img, _, err := tiered.Get(4, 0, 1)
	if err != nil || string(img) != "x" {
		t.Fatalf("Get after failed spill = %q, %v", img, err)
	}
}

func TestTieredGCOrderedBehindPut(t *testing.T) {
	fast := newMemBackend()
	disk, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(fast, disk, t.Logf)
	defer tiered.Close()

	// A GC queued after a Put of the same index must not collect it: the
	// spill queue preserves order.
	if err := tiered.Put(5, 0, 1, []byte("old"), nil); err != nil {
		t.Fatal(err)
	}
	if err := tiered.Put(5, 0, 2, []byte("new"), nil); err != nil {
		t.Fatal(err)
	}
	if err := tiered.GC(5, 0, 2); err != nil {
		t.Fatal(err)
	}
	tiered.Flush()
	if _, _, err := tiered.Get(5, 0, 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Get collected = %v, want ErrNoCheckpoint", err)
	}
	img, _, err := disk.Get(5, 0, 2)
	if err != nil || string(img) != "new" {
		t.Fatalf("disk kept = %q, %v", img, err)
	}
}
