// Package lockorder detects potential deadlocks from inconsistent lock
// acquisition order. It builds a global graph over lock classes — a class
// is the named struct type owning a mutex field ("gcs.Engine.mu") or a
// package-level mutex variable — with an edge A -> B whenever some
// function acquires a B-class lock while holding an A-class lock, either
// directly or through a summarized callee. Any cycle in that graph means
// two goroutines can each hold one lock of the cycle while waiting for
// the next: a deadlock waiting for the right interleaving.
//
// Each cycle is reported once, with a witness per edge: the function, the
// position the held lock was taken, and the position (and callee, when
// interprocedural) of the conflicting acquisition. Self-edges (re-entry
// on the same class) are skipped — they are instance-level recursion, a
// different bug class with too many false positives across distinct
// instances of one type.
//
// The per-function walk is source-order and path-insensitive: branch-local
// lock/unlock pairs cancel out, and deferred unlocks keep the class held
// to the end of the body (which is exactly when the lock is released).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"starfish/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:    "lockorder",
	Doc:     "report cycles in the global lock-acquisition-order graph (potential deadlocks), with a witness path per edge",
	ProgRun: run,
}

// edge is one observed acquisition order: `to` acquired while `from` held.
type edge struct {
	from, to string
	fn       *types.Func // function the acquisition happens in
	holdPos  token.Pos   // where the held (from) lock was taken
	acqPos   token.Pos   // where the to lock was acquired (or the call site)
	via      *types.Func // non-nil when the acquisition is inside a callee
}

func run(pass *analysis.ProgPass) error {
	edges := make(map[[2]string]edge) // first witness per ordered pair
	for _, fn := range pass.Prog.FuncsSorted() {
		c := &collector{
			pass: pass,
			info: pass.Prog.PackageOf(fn).Info,
			fn:   fn,
			held: make(map[string]token.Pos),
			out:  edges,
		}
		c.stmts(pass.Prog.Decl(fn).Body.List)
	}
	report(pass, edges)
	return nil
}

type collector struct {
	pass *analysis.ProgPass
	info *types.Info
	fn   *types.Func
	held map[string]token.Pos
	out  map[[2]string]edge
}

func (c *collector) addEdges(to string, acqPos token.Pos, via *types.Func) {
	for from, holdPos := range c.held {
		if from == to {
			continue // self-edge: instance recursion, not order inversion
		}
		key := [2]string{from, to}
		if _, ok := c.out[key]; !ok {
			c.out[key] = edge{from: from, to: to, fn: c.fn,
				holdPos: holdPos, acqPos: acqPos, via: via}
		}
	}
}

func (c *collector) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *collector) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r)
		}
		for _, l := range s.Lhs {
			c.expr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Post)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.expr(s.Tag)
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, x := range s.List {
			c.expr(x)
		}
		c.stmts(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		c.stmts(s.Body)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r)
		}
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.GoStmt:
		// The spawned call runs with fresh locks; its body (if a literal)
		// is walked as its own root below via expr -> FuncLit handling.
		c.expr(s.Call.Fun)
	case *ast.DeferStmt:
		// Deferred unlocks release at return, so the class stays held for
		// the rest of the body — which is what the linear walk models by
		// doing nothing here.
	}
}

func (c *collector) expr(x ast.Expr) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs on its own schedule with its own held set.
			sub := &collector{pass: c.pass, info: c.info, fn: c.fn,
				held: make(map[string]token.Pos), out: c.out}
			sub.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *collector) call(call *ast.CallExpr) {
	if m := mutexRecv(c.info, call, "Lock", "RLock"); m != nil {
		if class := analysis.LockClassOf(c.info, m); class != "" {
			c.addEdges(class, call.Pos(), nil)
			if _, ok := c.held[class]; !ok {
				c.held[class] = call.Pos()
			}
		}
		return
	}
	if m := mutexRecv(c.info, call, "Unlock", "RUnlock"); m != nil {
		if class := analysis.LockClassOf(c.info, m); class != "" {
			delete(c.held, class)
		}
		return
	}
	fn := analysis.Callee(c.info, call)
	sum := c.pass.Prog.Summary(fn)
	if sum == nil || fn == c.fn {
		return
	}
	// Locks the callee may take anywhere inside order after everything
	// currently held here.
	for _, cs := range sum.LockClasses {
		via := cs.Via
		if via == nil {
			via = fn
		}
		c.addEdges(cs.Class, call.Pos(), via)
	}
	// Lock/unlock helpers change what this frame holds.
	for _, ref := range sum.UnLocks {
		if class := c.classOfRef(call, ref); class != "" {
			delete(c.held, class)
		}
	}
	for _, ref := range sum.NetLocks {
		if class := c.classOfRef(call, ref); class != "" {
			if _, ok := c.held[class]; !ok {
				c.held[class] = call.Pos()
			}
		}
	}
}

// mutexRecv returns the mutex expression of a call to one of the named
// sync.Mutex/RWMutex methods, or nil.
func mutexRecv(info *types.Info, call *ast.CallExpr, methods ...string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
		}
	}
	if !match {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || !analysis.IsMutex(tv.Type) {
		return nil
	}
	return sel.X
}

// classOfRef maps a callee's receiver/parameter-rooted lock ref to its
// global class by resolving the field path against the caller-side
// receiver or argument type.
func (c *collector) classOfRef(call *ast.CallExpr, ref analysis.LockRef) string {
	var root ast.Expr
	if ref.Param < 0 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		root = sel.X
	} else {
		if ref.Param >= len(call.Args) {
			return ""
		}
		root = call.Args[ref.Param]
	}
	tv, ok := c.info.Types[root]
	if !ok {
		return ""
	}
	return classOfPath(tv.Type, ref.Path)
}

// classOfPath walks the field path from t and names the owner type of the
// final mutex field: classOfPath(*Engine, "state.mu") is the class of the
// mu field on the type of Engine.state.
func classOfPath(t types.Type, path string) string {
	if path == "" {
		return "" // the root value itself is the mutex: no global class
	}
	parts := strings.Split(path, ".")
	cur := t
	for _, p := range parts[:len(parts)-1] {
		obj, _, _ := types.LookupFieldOrMethod(cur, true, typePkg(cur), p)
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		cur = v.Type()
	}
	if ptr, ok := cur.(*types.Pointer); ok {
		cur = ptr.Elem()
	}
	named, ok := cur.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + parts[len(parts)-1]
}

func typePkg(t types.Type) *types.Package {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg()
	}
	return nil
}

// ---- cycle detection and reporting ----

func report(pass *analysis.ProgPass, edges map[[2]string]edge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodes[key[0]], nodes[key[1]] = true, true
	}
	for _, scc := range tarjan(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		var witness []edge
		for key, e := range edges {
			if in[key[0]] && in[key[1]] {
				witness = append(witness, e)
			}
		}
		sort.Slice(witness, func(i, j int) bool {
			if witness[i].from != witness[j].from {
				return witness[i].from < witness[j].from
			}
			return witness[i].to < witness[j].to
		})
		classes := append([]string(nil), scc...)
		sort.Strings(classes)
		var b strings.Builder
		fmt.Fprintf(&b, "lock-order cycle among [%s]:", strings.Join(classes, ", "))
		for _, e := range witness {
			fmt.Fprintf(&b, " %s -> %s (%s holds %s since %s, acquires %s at %s",
				e.from, e.to, e.fn.Name(), e.from,
				pass.Fset.Position(e.holdPos), e.to, pass.Fset.Position(e.acqPos))
			if e.via != nil {
				fmt.Fprintf(&b, " via %s", e.via.Name())
			}
			b.WriteString(");")
		}
		pass.Report(analysis.Diagnostic{
			Pos:     witness[0].acqPos,
			Check:   "lockorder",
			Message: strings.TrimSuffix(b.String(), ";"),
		})
	}
}

// tarjan returns the strongly connected components of the class graph in
// deterministic order.
func tarjan(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, vs := range adj {
		sort.Strings(vs)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
