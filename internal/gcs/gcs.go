// Package gcs is the group communication substrate of Starfish — the
// stand-in for the Ensemble toolkit the paper builds on.
//
// It provides process groups with virtual synchrony semantics: a totally
// ordered, reliable multicast; automatic failure detection; and view events
// that every surviving member delivers at the same point of the message
// stream. Views and application casts travel through the same sequencer, so
// "membership change" is just another totally ordered message — which is
// what makes the replicated daemon state machine of §3.1.1 trivial to keep
// coherent.
//
// The implementation uses a coordinator/sequencer: the lowest-id member of
// the current view sequences all multicasts and membership changes. When
// the coordinator fails, the surviving member with the lowest id runs a
// synchronization round (collecting every member's delivered suffix,
// re-broadcasting messages not yet seen everywhere) before installing the
// next view — the classic flush giving virtual synchrony.
package gcs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// EventKind discriminates the events a group endpoint delivers.
type EventKind uint8

// Event kinds.
const (
	// EView announces a new view. Every member delivers the same sequence
	// of views interleaved identically with casts.
	EView EventKind = iota + 1
	// ECast delivers a totally ordered multicast.
	ECast
	// ESend delivers a point-to-point message from another member. Sends
	// are FIFO per sender but not ordered relative to casts.
	ESend
)

// Event is what the group delivers to its user, in order, on Events().
type Event struct {
	Kind EventKind
	// View is set for EView events.
	View View
	// From is the sending member for ECast and ESend.
	From wire.NodeID
	// Payload is the application bytes for ECast and ESend.
	Payload []byte
	// State carries the state-transfer snapshot; set only on the first
	// EView a joining member receives (captured by the coordinator's
	// StateProvider at join time).
	State []byte
}

// View is a group membership epoch.
type View struct {
	// ID increases by one per installed view.
	ID uint64
	// Coord is the sequencer of this view (lowest member id).
	Coord wire.NodeID
	// Members lists the member ids in ascending order.
	Members []wire.NodeID
	// Addrs maps each member to its transport listen address.
	Addrs map[wire.NodeID]string
}

// Contains reports whether node is a member of the view.
func (v *View) Contains(node wire.NodeID) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the view.
func (v *View) Clone() View {
	c := View{ID: v.ID, Coord: v.Coord}
	c.Members = append([]wire.NodeID(nil), v.Members...)
	c.Addrs = make(map[wire.NodeID]string, len(v.Addrs))
	for k, a := range v.Addrs {
		c.Addrs[k] = a
	}
	return c
}

func (v *View) String() string {
	return fmt.Sprintf("view{id=%d coord=%d members=%v}", v.ID, v.Coord, v.Members)
}

// Config parameterizes one group endpoint.
type Config struct {
	// Node is this member's unique id. Lower ids win coordinator election.
	Node wire.NodeID
	// Transport is the network to use (shared Fastnet in simulation, TCP
	// between real daemons).
	Transport vni.Transport
	// Addr is the listen address for this endpoint.
	Addr string
	// Contact is the address of any current member; empty creates a new
	// singleton group.
	Contact string
	// HeartbeatEvery is the failure-detector probe interval
	// (default 25ms).
	HeartbeatEvery time.Duration
	// FailAfter is how long without a heartbeat before a member is
	// declared crashed (default 8 probe intervals). SuspectAfterMisses
	// takes precedence when set.
	FailAfter time.Duration
	// SuspectAfterMisses, when positive, declares a member crashed after
	// that many consecutive missed probe intervals — a tunable miss
	// threshold instead of the fixed FailAfter multiple, so deployments on
	// lossy or delay-spiky links can trade detection latency for fewer
	// spurious view changes.
	SuspectAfterMisses int
	// StateProvider, if non-nil, is called on the coordinator when a new
	// member joins; its snapshot is handed to the joiner with its first
	// view (state transfer).
	StateProvider func() []byte
	// Events optionally receives structured records about view changes,
	// suspicions and elections. The sink is expected to tag the component
	// (the daemon passes its store's "gcs" emitter).
	Events evstore.Sink

	// UseGossip replaces the all-to-coordinator heartbeat failure detector
	// with a SWIM-style gossip detector (internal/gossip) multiplexed over
	// this endpoint's transport: O(1) probe load per member per round
	// instead of O(n) fan-in at the coordinator. View changes still require
	// the gossip detector's *confirmed-dead* verdict, so transient silence
	// is refuted, not punished.
	UseGossip bool
	// GossipEvery is the gossip protocol round length (default
	// HeartbeatEvery). Only meaningful with UseGossip.
	GossipEvery time.Duration
	// GossipFanout is k, the number of proxies an unanswered direct ping is
	// retried through before suspicion (default 3).
	GossipFanout int
	// SuspectAfter is how long a gossip suspicion may stay unrefuted before
	// the member is confirmed dead (default FailAfter/2, so probing plus
	// the refutation grace period together stay within the heartbeat
	// mode's detection budget).
	SuspectAfter time.Duration
	// GossipSeed seeds the detector's probe-order randomness; zero derives
	// a per-node seed from Node.
	GossipSeed uint64
	// GossipEvents receives the detector's ping-timeout / suspect / refute /
	// confirm-dead records (the daemon passes its store's "gossip" emitter;
	// nil discards them).
	GossipEvents evstore.Sink

	// ExternalFD disables the endpoint's own failure detection entirely:
	// membership verdicts are injected through ReportDead/ReportAlive by a
	// supervisor that already agreed on them elsewhere (the lwg router
	// forwards the main group's verdicts into each per-app group). Because
	// injected verdicts carry that external agreement, crash-driven view
	// changes skip the local quorum rule — a two-member app group may lose
	// both members' "majority" without wedging.
	ExternalFD bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatEvery <= 0 {
		out.HeartbeatEvery = 25 * time.Millisecond
	}
	if out.SuspectAfterMisses > 0 {
		out.FailAfter = time.Duration(out.SuspectAfterMisses) * out.HeartbeatEvery
	}
	if out.FailAfter <= 0 {
		out.FailAfter = 8 * out.HeartbeatEvery
	}
	if out.GossipEvery <= 0 {
		out.GossipEvery = out.HeartbeatEvery
	}
	if out.GossipFanout <= 0 {
		out.GossipFanout = 3
	}
	if out.SuspectAfter <= 0 {
		// Half the detection budget goes to probing and indirect-probe
		// escalation, half to the refutation grace period, keeping
		// end-to-end detection latency comparable to the heartbeat mode's
		// FailAfter silence window.
		out.SuspectAfter = out.FailAfter / 2
	}
	if out.GossipSeed == 0 {
		out.GossipSeed = uint64(out.Node)*0x9e3779b97f4a7c15 + 1
	}
	return out
}

// Errors returned by the endpoint API.
var (
	ErrLeft     = errors.New("gcs: endpoint has left the group")
	ErrNoMember = errors.New("gcs: destination is not a group member")
	ErrJoin     = errors.New("gcs: join failed")
)

// ---- internal protocol ----

// Sub-kinds carried in wire.Msg.Kind for Type=TControl gcs traffic.
const (
	kJoinReq   uint16 = 0x10 // joiner -> contact -> coordinator
	kWelcome   uint16 = 0x11 // coordinator -> joiner (first view + state)
	kMcastReq  uint16 = 0x12 // member -> coordinator
	kDeliver   uint16 = 0x13 // coordinator -> all (sequenced cast or view)
	kHeartbeat uint16 = 0x14 // member <-> coordinator liveness
	kP2P       uint16 = 0x15 // member -> member direct
	kSyncReq   uint16 = 0x16 // failover candidate -> survivors
	kSyncResp  uint16 = 0x17 // survivor -> candidate
	kLeave     uint16 = 0x18 // departing member -> coordinator
	// kRetransReq asks the coordinator to resend sequenced messages above
	// the sender's delivered horizon — the gap-repair path that lets the
	// group make progress when kDeliver traffic is lost on the wire.
	kRetransReq uint16 = 0x19 // member -> coordinator (payload: delivered)
	// kGossip carries a SWIM gossip protocol message (gossip.Message)
	// multiplexed over the group endpoint's transport when UseGossip is set.
	kGossip uint16 = 0x20 // member <-> member (payload: gossip message)
)

// retransBatch bounds how many log entries one kRetransReq resends, so a
// member far behind catches up in bursts rather than one giant storm.
const retransBatch = 64

// deliverKind discriminates sequenced messages.
const (
	dCast uint8 = 1
	dView uint8 = 2
)

// seqMsg is one sequenced (totally ordered) message as stored in the
// retransmission log and carried by kDeliver.
type seqMsg struct {
	Seq       uint64
	Kind      uint8 // dCast or dView
	Sender    wire.NodeID
	SenderSeq uint64
	Payload   []byte // cast payload, or encoded view for dView
}

func encodeSeqMsg(m *seqMsg) []byte {
	w := wire.NewWriter(32 + len(m.Payload))
	w.U64(m.Seq).U8(m.Kind).U32(uint32(m.Sender)).U64(m.SenderSeq).Bytes32(m.Payload)
	return w.Bytes()
}

func decodeSeqMsg(b []byte) (seqMsg, error) {
	r := wire.NewReader(b)
	m := seqMsg{
		Seq:       r.U64(),
		Kind:      r.U8(),
		Sender:    wire.NodeID(r.U32()),
		SenderSeq: r.U64(),
	}
	m.Payload = append([]byte(nil), r.Bytes32()...)
	return m, r.Err()
}

func encodeView(v *View) []byte {
	w := wire.NewWriter(64)
	w.U64(v.ID).U32(uint32(v.Coord)).U32(uint32(len(v.Members)))
	for _, m := range v.Members {
		w.U32(uint32(m)).String(v.Addrs[m])
	}
	return w.Bytes()
}

func decodeView(b []byte) (View, error) {
	r := wire.NewReader(b)
	v := View{ID: r.U64(), Coord: wire.NodeID(r.U32())}
	n := r.U32()
	v.Addrs = make(map[wire.NodeID]string, n)
	for i := uint32(0); i < n; i++ {
		id := wire.NodeID(r.U32())
		v.Members = append(v.Members, id)
		v.Addrs[id] = r.String()
	}
	return v, r.Err()
}

// sortMembers orders ids ascending (coordinator = first).
func sortMembers(ms []wire.NodeID) {
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
}
