// Package errdrop flags discarded errors in non-test code:
//
//   - any assignment of an error-typed value to the blank identifier
//     (`_ = conn.Close()`, `v, _ := decode(b)` where the dropped value is
//     the error);
//   - bare call statements that silently drop the error of a write-path
//     function in the wire, vni, ckpt, or rstore packages whose name says
//     it moves or persists data (Write*, Send*, Flush, Push*, Store,
//     Put*, Commit*, Sync, Replicate*, Save*).
//
// A drop that is genuinely safe is annotated in place:
//
//	//starfish:allow errdrop <why the error cannot matter here>
//
// The reason is mandatory — an unexplained suppression is itself reported.
package errdrop

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"starfish/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarded errors (blank assignment anywhere; dropped results on wire/vni/ckpt write paths)",
	Run:  run,
}

// writePathPkgs are the packages whose bare-call error drops are flagged.
var writePathPkgs = map[string]bool{
	"starfish/internal/wire":   true,
	"starfish/internal/vni":    true,
	"starfish/internal/ckpt":   true,
	"starfish/internal/rstore": true,
}

// writePathName matches function names that move or persist data.
var writePathName = regexp.MustCompile(`^(Write|Send|Flush|Push|Store|Put|Commit|Sync|Replicate|Save)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ExprStmt:
				checkBareCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkAssign flags blank-assigned error values.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	// Tuple form: x, _ := call() — result types come from the call.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok {
			return
		}
		tup, ok := tv.Type.(*types.Tuple)
		if !ok || tup.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s discarded: handle it or annotate //starfish:allow errdrop <reason>",
					calleeLabel(pass, call))
			}
		}
		return
	}
	// 1:1 form(s): _ = expr.
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) || i >= len(s.Rhs) {
			continue
		}
		rhs := s.Rhs[i]
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		label := "value"
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			label = calleeLabel(pass, call)
		}
		pass.Reportf(lhs.Pos(), "error result of %s discarded: handle it or annotate //starfish:allow errdrop <reason>", label)
	}
}

// checkBareCall flags `f(...)` statements that drop a write-path error.
func checkBareCall(pass *analysis.Pass, s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !writePathPkgs[fn.Pkg().Path()] {
		return
	}
	if !writePathName.MatchString(fn.Name()) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			pass.Reportf(call.Pos(),
				"error result of write-path call %s dropped: handle it or annotate //starfish:allow errdrop <reason>",
				calleeLabel(pass, call))
			return
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil {
		full := fn.FullName()
		// Trim module path noise: starfish/internal/wire.WriteMsg -> wire.WriteMsg.
		full = strings.ReplaceAll(full, "starfish/internal/", "")
		return full
	}
	return "call"
}
