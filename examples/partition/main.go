// Partition demonstrates the paper's second fault-tolerance mechanism
// (§3.2.2): a trivially parallel application that registers a view-change
// listener. When a node dies, the surviving processes receive the new
// lightweight view, repartition the chunk space among themselves so the
// whole computation stays covered with no duplicates, and continue without
// any rollback at all.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"time"

	"starfish/internal/apps"
	"starfish/internal/core"
)

func main() {
	env, err := core.New(core.Options{Nodes: 3, StoreDir: "/tmp/starfish-partition"})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Shutdown()
	if err := env.WaitView(3, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: nodes %v\n", env.Nodes())

	const appID = 1
	job := core.Job{
		ID:    appID,
		Name:  apps.PartitionName,
		Args:  apps.PartitionArgs(900, 20000), // 900 chunks of work
		Ranks: 3,
		// No checkpointing needed: the application absorbs failures by
		// repartitioning.
		Policy: core.PolicyNotify,
	}
	if err := env.Submit(job); err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition submitted: 900 chunks over 3 ranks, policy=notify")

	// Let it chew through part of the work, then kill a node.
	time.Sleep(50 * time.Millisecond)
	victim := core.NodeID(2)
	fmt.Printf("crashing node %d — survivors repartition on the view upcall\n", victim)
	if err := env.Crash(victim); err != nil {
		log.Fatal(err)
	}

	status, err := env.Wait(appID, 120*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application finished: status=%v generation=%d\n", status.Status, status.Gen)
	if status.Status != core.StatusDone {
		log.Fatalf("run failed: %s", status.Failure)
	}
	if status.Gen != 1 {
		log.Fatalf("no restart should have happened, got generation %d", status.Gen)
	}
	fmt.Println("ok: all 900 chunks covered by the survivors, no restart, no rollback")
}
