// Package goleak enforces the goroutine-lifecycle discipline: every `go`
// statement in non-test code must be tied to a shutdown or completion
// signal, so no goroutine outlives the component that spawned it. It is
// the static complement of the runtime internal/leakcheck helper.
//
// A goroutine is compliant when its body (or a same-package function it
// calls, followed transitively) does any of:
//
//   - receive from — or select on — a stop/quit/done/shutdown channel or
//     ctx.Done();
//   - range over a channel (the loop ends when the sender closes it);
//   - wait on a sync.Cond (the canonical cond-guarded drain loop, whose
//     producer signals it on close);
//   - call sync.WaitGroup.Done (the spawner drains it on Close);
//   - defer close(ch) — the Close-drained pattern: the spawner waits on
//     the channel, and whatever unblocks the body (a Close erroring out a
//     Recv/Accept) ends the goroutine;
//   - for one-shot bodies (no loops): signal completion by closing a
//     channel or sending a result on one — the request-scoped pattern of
//     Isend/Irecv.
//
// Loops only count against a goroutine when they appear in the spawned
// body itself; loops inside functions it calls are that callee's concern
// (they run under the same lifecycle evidence the body provides).
//
// Goroutines whose body is out of package (e.g. go pkg.Thing.Serve(l))
// cannot be inspected; they must carry a //starfish:allow goleak
// annotation stating what bounds their lifetime.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"starfish/internal/analysis"
)

// Analyzer is the goleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "every spawned goroutine must observe a stop channel/context, be WaitGroup-tracked, or signal completion",
	Run:  run,
}

// stopNames are substrings (lower-cased match) of channel expressions that
// count as lifecycle signals: `<-p.stop`, `<-ctx.Done()`, `<-s.closed`...
var stopNames = []string{"stop", "quit", "done", "close", "shut", "exit", "kill", "die", "ctx"}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			c.checkGo(g)
			return true
		})
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

func (c *checker) checkGo(g *ast.GoStmt) {
	body := c.bodyOf(g.Call)
	if body == nil {
		c.pass.Reportf(g.Pos(),
			"goroutine body is outside this package; tie it to a stop signal or annotate what bounds its lifetime")
		return
	}
	scan := newScan(c)
	scan.block(body)
	if scan.observesStop || scan.wgDone || scan.deferredClose {
		return
	}
	if !scan.hasLoop && scan.signalsCompletion {
		return
	}
	if scan.hasLoop {
		c.pass.Reportf(g.Pos(),
			"goroutine loops with no stop signal: observe a stop/quit channel, ctx.Done, or range a closable channel")
		return
	}
	c.pass.Reportf(g.Pos(),
		"goroutine neither observes a stop signal nor signals completion (close/send on a done channel, WaitGroup.Done)")
}

// bodyOf resolves the spawned call to an inspectable body: a literal, or a
// same-package function/method declaration.
func (c *checker) bodyOf(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	default:
		if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil {
			if fd, ok := c.decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// scan walks a goroutine body, following same-package calls to a bounded
// depth, accumulating lifecycle evidence.
type scan struct {
	c                 *checker
	visited           map[*ast.BlockStmt]bool
	depth             int
	observesStop      bool
	wgDone            bool
	hasLoop           bool // loops in the spawned body itself (depth 0)
	signalsCompletion bool
	deferredClose     bool // defer close(ch): the Close-drained pattern
}

const maxDepth = 4

func newScan(c *checker) *scan {
	return &scan{c: c, visited: make(map[*ast.BlockStmt]bool)}
}

func (s *scan) block(b *ast.BlockStmt) {
	if b == nil || s.visited[b] || s.depth > maxDepth {
		return
	}
	s.visited[b] = true
	info := s.c.pass.TypesInfo
	ast.Inspect(b, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if s.depth == 0 {
				s.hasLoop = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					// for range ch ends when the channel is closed: that IS
					// the lifecycle tie.
					s.observesStop = true
					return true
				}
			}
			if s.depth == 0 {
				s.hasLoop = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && s.isStopChan(n.X) {
				s.observesStop = true
			}
		case *ast.SendStmt:
			s.signalsCompletion = true
		case *ast.DeferStmt:
			if isCloseCall(info, s.c, n.Call) {
				s.deferredClose = true
			}
		case *ast.CallExpr:
			switch name := analysis.CalleeName(info, n); name {
			case "(*sync.WaitGroup).Done":
				s.wgDone = true
			case "(context.Context).Err", "(*sync.WaitGroup).Wait":
				// ctx.Err polling counts as observing the context;
				// waiting on a group means it ends with the group.
				s.observesStop = true
			case "(*sync.Cond).Wait":
				// A cond-guarded drain loop: the producer signals the cond
				// when it closes, and the loop returns on the closed flag.
				s.observesStop = true
			default:
				if isCloseCall(info, s.c, n) {
					s.signalsCompletion = true
					return true
				}
				s.follow(n)
			}
		}
		return true
	})
}

// isStopChan reports whether a received-from expression looks like a
// lifecycle channel: its rendered form mentions a stop-ish name and its
// type is a channel (or it is ctx.Done()).
func (s *scan) isStopChan(x ast.Expr) bool {
	text := strings.ToLower(types.ExprString(x))
	for _, frag := range stopNames {
		if strings.Contains(text, frag) {
			return true
		}
	}
	return false
}

// isCloseCall reports whether call is the builtin close(ch).
func isCloseCall(info *types.Info, _ *checker, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// follow descends into a same-package callee's body.
func (s *scan) follow(call *ast.CallExpr) {
	fn := analysis.Callee(s.c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	fd, ok := s.c.decls[fn]
	if !ok {
		return
	}
	s.depth++
	s.block(fd.Body)
	s.depth--
}
