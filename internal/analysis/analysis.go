// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, used by the starfish-vet
// static checkers (poolcheck, lockcheck, goleak, errdrop, detcheck,
// lockorder, evcheck).
//
// The x/tools module is deliberately not vendored: the repo builds with the
// standard library alone. This package keeps the same shape — an Analyzer
// with a Run func over a Pass carrying the package's syntax and type
// information — so the checkers could be ported to the real framework by
// swapping import paths.
//
// # Interprocedural model
//
// On top of the per-package passes, the runner builds a Program: every
// analyzed package, an index of all function declarations, and a bottom-up
// Summary per function (pool-ownership effects per parameter, lock deltas,
// blocking and determinism evidence, global lock classes). Per-package
// analyzers reach it through Pass.Prog to see through helper calls;
// program-level analyzers (Analyzer.ProgRun) run once over the whole
// Program.
//
// # Suppression pragma
//
// A diagnostic can be suppressed at a specific site with a comment:
//
//	//starfish:allow <check>[,<check>...] <reason>
//
// placed either on the flagged line or on the line directly above it. The
// reason is mandatory; an allow pragma without one is itself reported. The
// pragma is deliberately narrow (per-line, per-check) so a suppression
// cannot hide future regressions elsewhere in the file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer describes one static check. Exactly one of Run (per-package)
// and ProgRun (whole-program) is set.
type Analyzer struct {
	// Name identifies the check in diagnostics and in //starfish:allow
	// pragmas. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package and reports findings through
	// pass.Report.
	Run func(pass *Pass) error
	// ProgRun performs the check once over the whole program (lockorder's
	// cross-package cycle detection, detcheck's transitive taint check,
	// evcheck's registry validation).
	ProgRun func(pass *ProgPass) error
}

// Pass carries the per-package inputs to an Analyzer.Run and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, with comments
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole-program view: function summaries let the analyzer
	// see through calls into helpers (including cross-package ones).
	Prog *Program
	// Report records one finding. Safe to call multiple times; the runner
	// sorts and pragma-filters afterwards.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Check: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ProgPass carries the whole-program inputs to an Analyzer.ProgRun.
type ProgPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Fset     *token.FileSet
	Report   func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *ProgPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Check: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of one check.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Check runs the analyzers over a single package (building a one-package
// Program for the interprocedural parts), applies //starfish:allow
// suppression, and returns the surviving diagnostics in file/line order.
// It is the analysistest entry point; the vet driver uses CheckProgram.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return CheckProgram(BuildProgram("", []*Package{pkg}), analyzers, 1)
}

// CheckProgram runs per-package analyzers over every package of the
// program — with up to workers packages in flight at once — and
// program-level analyzers once, applies //starfish:allow suppression, and
// returns the surviving diagnostics in file/line order.
//
// Summaries are computed eagerly by BuildProgram, so concurrent analyzer
// runs only ever read the Program.
func CheckProgram(prog *Program, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	if workers < 1 {
		workers = 1
	}
	var (
		mu    sync.Mutex
		diags []Diagnostic
		errs  []error
	)
	report := func(d Diagnostic) {
		mu.Lock()
		diags = append(diags, d)
		mu.Unlock()
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, pkg := range prog.Pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(pkg *Package) {
			defer func() { <-sem; wg.Done() }()
			for _, a := range analyzers {
				if a.Run == nil {
					continue
				}
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
					Prog:      prog,
					Report:    report,
				}
				if err := a.Run(pass); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err))
					mu.Unlock()
				}
			}
		}(pkg)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}

	fset := prog.Fset()
	for _, a := range analyzers {
		if a.ProgRun == nil {
			continue
		}
		pass := &ProgPass{Analyzer: a, Prog: prog, Fset: fset, Report: report}
		if err := a.ProgRun(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, pkg := range prog.Pkgs {
		al, b := collectAllows(pkg.Fset, pkg.Files)
		for k := range al {
			allows[k] = true
		}
		bad = append(bad, b...)
	}
	diags = append(filterAllowed(fset, diags, allows), bad...)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
