// Package analysistest runs an analyzer over a golden fixture directory
// and compares the diagnostics it reports — after //starfish:allow pragma
// filtering — against `// want "substring"` comments in the fixture
// source. It is the stdlib-only stand-in for
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line may carry several expectations:
//
//	wire.PutBuf(b) // want "double release" "second thing"
//
// Every reported diagnostic must match one want on its line (substring
// match against the message), and every want must be matched by exactly
// one diagnostic.
package analysistest

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"starfish/internal/analysis"
)

var (
	wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
	strRE  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type site struct {
	file string
	line int
}

// Run loads dir as a bare (outside the module graph) package, applies the
// analyzer, and fails the test on any mismatch between diagnostics and
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(moduleRoot(t))
	pkg, err := loader.LoadDir(abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Check(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, abs)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := site{pos.Filename, pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Check, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: missing diagnostic matching %q", k.file, k.line, w)
		}
	}
}

// collectWants extracts `// want "..."` expectations from every .go file
// of the fixture directory, keyed by file and line.
func collectWants(t *testing.T, dir string) map[site][]string {
	t.Helper()
	wants := make(map[site][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := site{path, i + 1}
			for _, q := range strRE.FindAllString(m[1], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, q, err)
				}
				wants[k] = append(wants[k], s)
			}
			if len(wants[k]) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted expectation", path, i+1)
			}
		}
	}
	return wants
}

// moduleRoot locates the enclosing module so fixture imports of starfish
// packages resolve through the loader's export-data path.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a Go module")
	}
	return filepath.Dir(gomod)
}
