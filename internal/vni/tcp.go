package vni

import (
	"bufio"
	"net"
	"sync"

	"starfish/internal/wire"
)

// TCP is the kernel-socket transport, the stand-in for the paper's
// "regular IP stack" measurements. Every message crosses the kernel twice
// (send syscall, receive syscall) plus serialization, which is exactly the
// overhead Figure 5 contrasts against the user-level BIP path.
type TCP struct{}

// NewTCP returns the TCP transport.
func NewTCP() *TCP { return &TCP{} }

// Name implements Transport.
func (t *TCP) Name() string { return "tcp" }

// Listen implements Transport. Use "127.0.0.1:0" to bind an ephemeral port
// and recover the concrete address via Listener.Addr.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Close() error { return l.l.Close() }
func (l *tcpListener) Addr() string { return l.l.Addr().String() }

type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex // serializes whole frames
	w  *bufio.Writer
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Latency benchmarks need Nagle off, like any MPI transport.
		_ = tc.SetNoDelay(true)
	}
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
}

func (c *tcpConn) Send(m *wire.Msg) error {
	wire.CountMsg(m.Type)
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := wire.WriteMsg(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *tcpConn) Recv() (wire.Msg, error) {
	// Recv is called only from the connection's polling goroutine, so the
	// buffered reader needs no locking.
	return wire.ReadMsg(c.r)
}

func (c *tcpConn) Close() error { return c.c.Close() }

func (c *tcpConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
