package starfish_test

import (
	"testing"
	"time"

	"starfish/internal/apps"
	"starfish/internal/core"
	"starfish/internal/wire"
)

// TestTable1MessageMatrix is the Table-1 experiment: run a workload that
// exercises the whole architecture and verify that every one of the six
// message types actually flowed, with data messages (fast path) dominating
// the system traffic by a wide margin. The static legality matrix itself
// (which endpoint kinds may exchange which type) is asserted by
// internal/wire's tests; this test audits a live run.
func TestTable1MessageMatrix(t *testing.T) {
	wire.ResetMsgCounts()
	env, err := core.New(core.Options{Nodes: 3, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Shutdown()
	if err := env.WaitView(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// Workload 1: MPI traffic + coordinated checkpoints (data, control,
	// checkpoint/restart, configuration).
	if err := env.Submit(core.Job{
		ID: 1, Name: apps.RingName, Args: apps.RingArgs(500), Ranks: 3,
		CheckpointEverySteps: 50, Policy: core.PolicyRestart,
	}); err != nil {
		t.Fatal(err)
	}
	if st, err := env.Wait(1, 60*time.Second); err != nil || st.Status != core.StatusDone {
		t.Fatalf("ring: %v / %+v", err, st)
	}

	// Workload 2: a node crash under the notify policy (lightweight
	// membership + coordination).
	if err := env.Submit(core.Job{
		ID: 2, Name: apps.PartitionName, Args: apps.PartitionArgs(600, 1000000),
		Ranks: 3, Policy: core.PolicyNotify,
	}); err != nil {
		t.Fatal(err)
	}
	// Crash only once the app runs: a kill during the formation handshake
	// folds the lost ranks into the start info instead, and the survivors
	// then have nothing to announce (and so no coordination messages).
	if err := env.Cluster().WaitStatus(2, core.StatusRunning, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := env.Crash(3); err != nil {
		t.Fatal(err)
	}
	if st, err := env.Wait(2, 60*time.Second); err != nil || st.Status != core.StatusDone {
		t.Fatalf("partition: %v / %+v", err, st)
	}

	counts := wire.MsgCounts()
	for _, ty := range []wire.Type{
		wire.TControl, wire.TCoordination, wire.TData,
		wire.TLWMembership, wire.TConfiguration, wire.TCheckpoint,
	} {
		if counts[ty] == 0 {
			t.Errorf("message type %v never flowed", ty)
		}
	}
	// The architectural claim behind the fast path: application data
	// dwarfs every workload-driven system message category. (Control
	// traffic is excluded: it is heartbeat-driven and scales with wall
	// time, not with the workload — under a slowed run, e.g. the race
	// detector, its count is unbounded.)
	for _, ty := range []wire.Type{wire.TCoordination,
		wire.TLWMembership, wire.TConfiguration, wire.TCheckpoint} {
		if counts[wire.TData] < 2*counts[ty] {
			t.Errorf("data (%d) does not dominate %v (%d)", counts[wire.TData], ty, counts[ty])
		}
	}
}
