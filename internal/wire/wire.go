// Package wire defines the message taxonomy and binary encoding used by all
// Starfish components.
//
// The message types mirror Table 1 of the paper: control messages travel
// between daemons, coordination and checkpoint/restart messages travel
// between application processes through the daemons, data messages travel
// on the fast path between MPI modules, lightweight-membership messages
// travel between a daemon's lightweight endpoint module and its application
// process, and configuration messages travel between a local daemon and its
// application process.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Type classifies a message per Table 1 of the paper.
type Type uint8

// The six Starfish message types.
const (
	TInvalid Type = iota
	// TControl messages are exchanged solely between Starfish daemons
	// (cluster configuration, spawn requests, health reports).
	TControl
	// TCoordination messages are exchanged between application processes,
	// relayed through daemons and the lightweight group.
	TCoordination
	// TData messages carry user MPI payloads on the fast path
	// (application -> MPI module -> VNI), never through the object bus.
	TData
	// TLWMembership messages inform an application process of lightweight
	// view changes, and let a process leave its lightweight group.
	TLWMembership
	// TConfiguration messages synchronize an application process with its
	// local daemon at initialization/termination and carry settings.
	TConfiguration
	// TCheckpoint messages are exchanged by checkpoint/restart modules
	// through the daemons; they are opaque to the daemons themselves.
	TCheckpoint

	typeCount
)

// String returns the Table-1 name of the message type.
func (t Type) String() string {
	switch t {
	case TControl:
		return "control"
	case TCoordination:
		return "coordination"
	case TData:
		return "data"
	case TLWMembership:
		return "lightweight-membership"
	case TConfiguration:
		return "configuration"
	case TCheckpoint:
		return "checkpoint/restart"
	default:
		return fmt.Sprintf("wire.Type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the six defined message types.
func (t Type) Valid() bool { return t > TInvalid && t < typeCount }

// Endpoint classifies the software component that sends or receives a
// message. It exists so the Table-1 routing matrix can be audited at runtime.
type Endpoint uint8

// Endpoint kinds, matching the architecture boxes in Figure 1.
const (
	EInvalid    Endpoint = iota
	EDaemon              // a Starfish daemon (management or membership module)
	ELWEndpoint          // a lightweight endpoint module inside a daemon
	EProcess             // an application process (group handler / app module)
	EMPIModule           // the MPI module, fast-path termination point
	ECRModule            // a checkpoint/restart module
	endpointCount
)

// String returns a short human-readable endpoint name.
func (e Endpoint) String() string {
	switch e {
	case EDaemon:
		return "daemon"
	case ELWEndpoint:
		return "lw-endpoint"
	case EProcess:
		return "process"
	case EMPIModule:
		return "mpi-module"
	case ECRModule:
		return "cr-module"
	default:
		return fmt.Sprintf("wire.Endpoint(%d)", uint8(e))
	}
}

// route is a legal (sender, receiver) endpoint pair for a message type.
type route struct{ from, to Endpoint }

// legalRoutes encodes Table 1: for each message type, the endpoint pairs
// allowed to exchange it. Daemons relay coordination and C/R messages, so
// daemon endpoints appear as legal intermediate hops for those types.
var legalRoutes = map[Type][]route{
	TControl: {{EDaemon, EDaemon}},
	TCoordination: {
		{EProcess, EDaemon}, {EDaemon, EDaemon}, {EDaemon, EProcess},
		{EProcess, EProcess},
	},
	TData: {{EMPIModule, EMPIModule}},
	TLWMembership: {
		{ELWEndpoint, EProcess}, {EProcess, ELWEndpoint},
	},
	TConfiguration: {
		{EDaemon, EProcess}, {EProcess, EDaemon},
	},
	TCheckpoint: {
		{ECRModule, EDaemon}, {EDaemon, EDaemon}, {EDaemon, ECRModule},
		{ECRModule, ECRModule},
	},
}

// LegalRoute reports whether Table 1 permits a message of type t to travel
// from endpoint kind `from` to endpoint kind `to`.
func LegalRoute(t Type, from, to Endpoint) bool {
	for _, r := range legalRoutes[t] {
		if r.from == from && r.to == to {
			return true
		}
	}
	return false
}

// AppID identifies a running application within the cluster. Zero means
// "no application" (pure system traffic).
type AppID uint32

// NodeID identifies a cluster node (equivalently, its daemon).
type NodeID uint32

// Rank is an MPI rank within an application's lightweight group.
type Rank int32

// AnyRank matches any source rank in receive operations (MPI_ANY_SOURCE).
const AnyRank Rank = -1

// AnyTag matches any tag in receive operations (MPI_ANY_TAG).
const AnyTag int32 = -1

// Msg is the unit of communication between Starfish components.
//
// For data messages Src/Dst are MPI ranks within App's lightweight group;
// for system messages they identify nodes (cast from NodeID). Seq carries
// transport- or protocol-level sequence numbers; Kind is a protocol-specific
// sub-type (e.g. which C/R protocol message this is).
//
// # Payload ownership
//
// Pooled marks Payload as checked out of the global BufPool, with exactly
// one owner at any time. Ownership moves with the message along the fast
// path: a transport Send takes ownership of a pooled payload (the caller
// must not reuse the buffer afterwards — this is what makes the path
// zero-copy), and whoever finally consumes a pooled message calls Release
// exactly once. Dropping a pooled message without Release is safe (the
// buffer is garbage-collected, the pool just misses a reuse). Messages with
// Pooled == false keep the historical semantics: Send copies or serializes
// the payload before returning and the caller may reuse its buffer.
type Msg struct {
	Type    Type
	Kind    uint16 // protocol-specific sub-type
	App     AppID
	Src     Rank
	Dst     Rank
	Tag     int32
	Seq     uint64
	Payload []byte
	// Pooled reports that Payload is owned via the BufPool ownership
	// discipline above. It is transport metadata, not part of the wire
	// encoding.
	Pooled bool
}

// Release returns a pool-owned payload to the BufPool and clears the
// message's payload fields. It is a no-op for non-pooled or nil payloads,
// and safe to call on an already-released Msg value (but never on two Msg
// values sharing one pooled payload — that is a double release, caught by
// the guard mode under `go test`).
func (m *Msg) Release() {
	if m.Pooled && m.Payload != nil {
		PutBuf(m.Payload)
	}
	m.Payload = nil
	m.Pooled = false
}

const headerLen = 1 + 2 + 4 + 4 + 4 + 4 + 8 + 4 // fields above, payload length last

// MaxPayload bounds the payload of a single framed message (16 MiB). Larger
// application buffers are fragmented by the MPI layer.
const MaxPayload = 16 << 20

// ErrPayloadTooLarge is returned when encoding a message whose payload
// exceeds MaxPayload.
var ErrPayloadTooLarge = errors.New("wire: payload exceeds MaxPayload")

// ErrBadFrame is returned when a decoded frame is structurally invalid.
var ErrBadFrame = errors.New("wire: malformed frame")

// EncodedLen returns the number of bytes Encode will produce for m.
func (m *Msg) EncodedLen() int { return headerLen + len(m.Payload) }

// AppendEncode appends the wire encoding of m to buf and returns the
// extended slice. The encoding is fixed-width big-endian; it is the framing
// used on every TCP connection and by the in-process transports when they
// exercise the serialization path.
func (m *Msg) AppendEncode(buf []byte) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return buf, ErrPayloadTooLarge
	}
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint16(buf, m.Kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.App))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Dst))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Tag))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf, nil
}

// HeaderLen is the fixed size of a frame header.
const HeaderLen = headerLen

// EncodeHeader writes m's fixed-size frame header (including the payload
// length) into hdr, which must be at least HeaderLen bytes. It lets
// transports send header and payload as two vectored writes with no
// intermediate frame allocation.
func (m *Msg) EncodeHeader(hdr []byte) error {
	if len(hdr) < headerLen {
		return ErrShortBuffer
	}
	if len(m.Payload) > MaxPayload {
		return ErrPayloadTooLarge
	}
	hdr[0] = byte(m.Type)
	binary.BigEndian.PutUint16(hdr[1:], m.Kind)
	binary.BigEndian.PutUint32(hdr[3:], uint32(m.App))
	binary.BigEndian.PutUint32(hdr[7:], uint32(m.Src))
	binary.BigEndian.PutUint32(hdr[11:], uint32(m.Dst))
	binary.BigEndian.PutUint32(hdr[15:], uint32(m.Tag))
	binary.BigEndian.PutUint64(hdr[19:], m.Seq)
	binary.BigEndian.PutUint32(hdr[27:], uint32(len(m.Payload)))
	return nil
}

// DecodeHeader parses a fixed-size frame header, returning the message
// metadata (Payload nil) and the frame's payload length. It validates the
// type byte and the length bound but does not touch payload bytes, so
// stream readers can decode straight from the two reads of a frame without
// restitching header and payload into one buffer.
func DecodeHeader(hdr []byte) (Msg, int, error) {
	if len(hdr) < headerLen {
		return Msg{}, 0, ErrBadFrame
	}
	var m Msg
	m.Type = Type(hdr[0])
	if !m.Type.Valid() {
		return Msg{}, 0, fmt.Errorf("%w: type %d", ErrBadFrame, hdr[0])
	}
	m.Kind = binary.BigEndian.Uint16(hdr[1:])
	m.App = AppID(binary.BigEndian.Uint32(hdr[3:]))
	m.Src = Rank(binary.BigEndian.Uint32(hdr[7:]))
	m.Dst = Rank(binary.BigEndian.Uint32(hdr[11:]))
	m.Tag = int32(binary.BigEndian.Uint32(hdr[15:]))
	m.Seq = binary.BigEndian.Uint64(hdr[19:])
	n := binary.BigEndian.Uint32(hdr[27:])
	if n > MaxPayload {
		return Msg{}, 0, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	return m, int(n), nil
}

// Encode returns the wire encoding of m.
func (m *Msg) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, m.EncodedLen()))
}

// Decode parses one message from buf, returning the message and the number
// of bytes consumed. The returned message's Payload aliases buf.
func Decode(buf []byte) (Msg, int, error) {
	if len(buf) < headerLen {
		return Msg{}, 0, ErrBadFrame
	}
	m, n, err := DecodeHeader(buf)
	if err != nil {
		return Msg{}, 0, err
	}
	if len(buf) < headerLen+n {
		return Msg{}, 0, ErrBadFrame
	}
	if n > 0 {
		m.Payload = buf[headerLen : headerLen+n : headerLen+n]
	}
	return m, headerLen + n, nil
}

// WriteMsg writes the framed encoding of m to w as two vectored writes
// (header from a stack buffer, then the payload), with no intermediate
// frame allocation. Callers that need frames coalesced into one stream
// write should hand WriteMsg a buffered writer.
func WriteMsg(w io.Writer, m *Msg) error {
	var hdr [headerLen]byte
	if err := m.EncodeHeader(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(m.Payload) == 0 {
		return nil
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMsg reads one framed message from r. The returned message owns its
// payload (no aliasing of internal buffers). The header is decoded straight
// from a stack buffer and only the payload hits the heap.
func ReadMsg(r io.Reader) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	m, n, err := DecodeHeader(hdr[:])
	if err != nil {
		return Msg{}, err
	}
	if n == 0 {
		return m, nil
	}
	m.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Msg{}, err
	}
	return m, nil
}

// ReadMsgBuf is ReadMsg with the payload placed in a buffer checked out of
// the global BufPool: the returned message is pool-owned (Pooled == true)
// and its final consumer should call Release. This is the per-connection
// receive path — together with BufPool recycling it makes a stream read
// allocation-free in the steady state.
func ReadMsgBuf(r io.Reader) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Msg{}, err
	}
	m, n, err := DecodeHeader(hdr[:])
	if err != nil {
		return Msg{}, err
	}
	if n == 0 {
		return m, nil
	}
	m.Payload = GetBuf(n)
	m.Pooled = true
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		m.Release()
		return Msg{}, err
	}
	return m, nil
}

// Clone returns a deep copy of m: its payload no longer aliases any buffer
// and is not pool-owned.
func (m *Msg) Clone() Msg {
	c := *m
	c.Pooled = false
	if m.Payload != nil {
		CountCopy(CopyClone, len(m.Payload))
		c.Payload = append([]byte(nil), m.Payload...)
	}
	return c
}
