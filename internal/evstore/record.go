// Package evstore is the structured event plane of Starfish: a per-node,
// in-memory, bounded store of typed records describing what the cluster did
// — view changes, suspicions, elections, injected faults, replication
// passes, checkpoint epochs, application lifecycle transitions.
//
// The design follows a log-store shape: records land in an append-only
// active chunk; when the chunk fills it is sealed — a per-chunk index
// (seq range, time range, distinct values per key) is built and the record
// bytes are DEFLATE-compressed with the checkpoint block machinery
// (ckpt.SealBlock) — and retention drops whole sealed chunks from the old
// end. Queries evaluate a small filter language over the sealed indexes
// (skipping chunks that cannot match) plus the live active chunk.
//
// Sequence numbers are assigned at receive time, exactly once, and are
// strictly increasing per store. That is the streaming contract the mgmt
// TAIL verb builds on: a client that remembers the last seq it saw can
// reconnect with `seq>N` and resume without gaps or duplicates (within the
// retention window).
//
// Producers never block: Emit enqueues into a buffered FIFO channel and,
// when the store mutex is free (one TryLock), drains it synchronously;
// when the mutex is held — a chunk seal compressing, a query snapshotting —
// a standby goroutine is kicked to sweep instead, and overflow drops the
// record and counts it. Hot paths (the gcs engine loop, rstore pushes)
// therefore pay a few field stores, one channel send and one uncontended
// TryLock per event, independent of consumer speed, with no per-record
// goroutine wakeup.
package evstore

import (
	"fmt"
	"strconv"
	"strings"

	"starfish/internal/wire"
)

// KV is one key=value attribute of a record.
type KV struct {
	K, V string
}

// Record is one structured event.
type Record struct {
	// Seq is the store-assigned sequence number: strictly increasing,
	// never reused, assigned when the store receives the record.
	Seq uint64
	// WriteTS is the receive timestamp in nanoseconds since the Unix
	// epoch, assigned together with Seq.
	WriteTS int64
	// Node is the node whose store received the record (stamped by the
	// store; producers need not set it).
	Node wire.NodeID
	// Component names the emitting subsystem: daemon, gcs, gossip, lwg,
	// chaosnet, rstore, ckpt, proc, cluster.
	Component string
	// Kind is the event type within the component (view-change, suspect,
	// confirm-dead, drop, rereplicate, epoch, ...).
	Kind string
	// App is the application the event concerns; 0 when not app-scoped.
	App wire.AppID
	// Rank is the rank the event concerns; -1 when not rank-scoped.
	Rank int32
	// KV holds free-form attributes.
	KV []KV
}

// NoRank marks a record as not rank-scoped.
const NoRank int32 = -1

// Ev builds a cluster-scoped record (no app, no rank). The component is
// stamped by the Emitter.
func Ev(kind string, kv ...KV) Record {
	return Record{Kind: kind, Rank: NoRank, KV: kv}
}

// EvApp builds an app-scoped record.
func EvApp(kind string, app wire.AppID, kv ...KV) Record {
	return Record{Kind: kind, App: app, Rank: NoRank, KV: kv}
}

// EvRank builds an app+rank-scoped record.
func EvRank(kind string, app wire.AppID, rank wire.Rank, kv ...KV) Record {
	return Record{Kind: kind, App: app, Rank: int32(rank), KV: kv}
}

// F formats one attribute; v renders with fmt.Sprint (events are rare
// enough that the convenience beats the allocation).
func F(k string, v any) KV {
	switch s := v.(type) {
	case string:
		return KV{K: k, V: s}
	}
	return KV{K: k, V: fmt.Sprint(v)}
}

// List formats a slice as a comma-separated attribute value (no spaces, so
// the line format needs no quoting).
func List[T any](xs []T) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprint(&b, x)
	}
	return b.String()
}

// Get returns the value of attribute k and whether it is present.
func (r *Record) Get(k string) (string, bool) {
	for _, kv := range r.KV {
		if kv.K == k {
			return kv.V, true
		}
	}
	return "", false
}

// needsQuote reports whether a value must be quoted in the line format.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '"', '\\':
			return true
		}
	}
	return false
}

func appendVal(b *strings.Builder, v string) {
	if needsQuote(v) {
		b.WriteString(strconv.Quote(v))
	} else {
		b.WriteString(v)
	}
}

// String renders the record in the wire line format used by the mgmt
// EVENTS/TAIL verbs:
//
//	seq=12 ts=1754500000123456789 node=3 component=gcs kind=view-change app=7 rank=0 view=4
//
// Every field is key=value; values containing spaces or quotes are
// Go-quoted. seq= is always the first field, so a tail client can recover
// its resume point from the line prefix alone. app= and rank= are omitted
// when the record is not app- or rank-scoped.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d ts=%d node=%d component=", r.Seq, r.WriteTS, r.Node)
	appendVal(&b, r.Component)
	b.WriteString(" kind=")
	appendVal(&b, r.Kind)
	if r.App != 0 {
		fmt.Fprintf(&b, " app=%d", r.App)
	}
	if r.Rank >= 0 {
		fmt.Fprintf(&b, " rank=%d", r.Rank)
	}
	for _, kv := range r.KV {
		b.WriteByte(' ')
		b.WriteString(kv.K)
		b.WriteByte('=')
		appendVal(&b, kv.V)
	}
	return b.String()
}

// LineSeq extracts the sequence number from a record line produced by
// Record.String. It is what a tail client uses to track its resume point.
func LineSeq(line string) (uint64, bool) {
	rest, ok := strings.CutPrefix(line, "seq=")
	if !ok {
		return 0, false
	}
	num, _, _ := strings.Cut(rest, " ")
	seq, err := strconv.ParseUint(num, 10, 64)
	return seq, err == nil
}

// Registry declares every (component, kind) pair the runtime emits. It is
// the contract between producers and queries: the evcheck analyzer derives
// the kinds actually passed to Ev/EvApp/EvRank and rejects any that are
// not declared here, and checks every kind referenced by a query (chaos
// soak assertions, EXPERIMENTS.md transcripts, starfishctl docs) against
// this table — a typo'd kind otherwise fails silently as an eternally
// empty query result.
//
// The lwg component re-emits the gcs engine kinds: each lightweight group
// runs its own gcs engine instance whose records are stamped "lwg" by the
// group's emitter.
var Registry = map[string][]string{
	"daemon": {"submit", "delete", "app-done", "app-failed", "rank-lost",
		"restarting", "running", "suspend", "resume"},
	"ckpt": {"epoch"},
	"gcs": {"suspect", "excluded", "view-change", "election-start",
		"election-win", "election-abort", "election-stalled"},
	"lwg": {"suspect", "excluded", "view-change", "election-start",
		"election-win", "election-abort", "election-stalled"},
	"gossip": {"ping-timeout", "suspect", "confirm-dead", "refute"},
	"proc":   {"start", "done", "restore", "checkpoint", "commit"},
	"rstore": {"view", "push-failure", "gc", "rereplicate"},
	"chaosnet": {"set-faults", "clear-faults", "partition",
		"partition-oneway", "heal", "kill-dials", "allow-dials",
		"reset-link", "drop", "delay", "dup"},
	"cluster": {"add-node", "kill", "leave"},
}

// KnownKind reports whether kind is declared in the Registry for any
// component.
func KnownKind(kind string) bool {
	for _, kinds := range Registry {
		for _, k := range kinds {
			if k == kind {
				return true
			}
		}
	}
	return false
}

// KnownFor reports whether kind is declared for the given component.
func KnownFor(component, kind string) bool {
	for _, k := range Registry[component] {
		if k == kind {
			return true
		}
	}
	return false
}

// Sink accepts records. Store and Emitter implement it; instrumented
// components hold a Sink so tests can wire any collector, and a nil Sink
// (or nil *Emitter inside one) means "event plane disabled".
type Sink interface {
	Emit(r Record)
}

// Emitter is a component-tagged, non-blocking front end to a store. A nil
// Emitter discards records, so wiring code can hand out
// store.Emitter("gcs") without nil-checking the store.
type Emitter struct {
	st   *Store
	comp string
}

// Emit stamps the emitter's component (when the record has none) and hands
// the record to the store without blocking. On overflow the record is
// dropped and counted.
func (e *Emitter) Emit(r Record) {
	if e == nil || e.st == nil {
		return
	}
	if r.Component == "" {
		r.Component = e.comp
	}
	e.st.Emit(r)
}
