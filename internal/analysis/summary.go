package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ParamEffect classifies what a function does with one of its parameters
// (or its receiver), as far as pooled-buffer ownership is concerned.
type ParamEffect int

const (
	// ParamEscapes: the parameter may be retained, stored, conditionally
	// released, or otherwise leave the function's control. Callers must
	// stop tracking the argument (the pre-interprocedural behavior).
	ParamEscapes ParamEffect = iota
	// ParamRead: the parameter is only inspected; ownership stays with the
	// caller, which keeps tracking the argument across the call.
	ParamRead
	// ParamReleases: the parameter is released exactly once,
	// unconditionally (top-level or deferred release). The call is a
	// release site for the argument.
	ParamReleases
)

func (e ParamEffect) String() string {
	switch e {
	case ParamRead:
		return "read"
	case ParamReleases:
		return "releases"
	default:
		return "escapes"
	}
}

// Site is one piece of located evidence: a blocking operation, a
// determinism taint. Via is nil when the evidence sits directly in the
// summarized function, else the callee through which it is reached.
type Site struct {
	What string
	Pos  token.Pos
	Via  *types.Func
}

// LockRef names a mutex reachable from a function's receiver or
// parameters: Param -1 is the receiver, Path the field chain ("mu",
// "state.mu", "" when the root itself is the mutex).
type LockRef struct {
	Param int
	Path  string
	Pos   token.Pos
}

// ClassSite records that a function may acquire a mutex of the given
// class (pkg.Type.field or pkg.var) somewhere inside, possibly through
// callees (Via).
type ClassSite struct {
	Class string
	Pos   token.Pos
	Via   *types.Func
}

// Summary is the bottom-up interprocedural abstraction of one function:
// everything the analyzers need to see through a call to it without
// re-walking its body.
type Summary struct {
	Fn   *types.Func
	Recv ParamEffect
	// Params has one effect per declared parameter (variadic callers clamp
	// trailing arguments to the last entry).
	Params []ParamEffect
	// AcquiresResult: every return path yields a freshly acquired pooled
	// value in result 0, so callers own it. ResultMsg tells wire.Msg from
	// []byte.
	AcquiresResult bool
	ResultMsg      bool
	// Blocks is non-empty when the function may park the goroutine
	// (channel ops, sleeps, dials, waits), directly or transitively.
	Blocks []Site
	// NetLocks are mutexes still held when the function returns (lock
	// helpers); UnLocks are mutexes it releases (unlock helpers). Both are
	// receiver/parameter-rooted and cover unconditional top-level
	// operations only.
	NetLocks []LockRef
	UnLocks  []LockRef
	// LockClasses are the global lock classes the function may acquire
	// anywhere inside, transitively. lockorder builds its graph from them.
	LockClasses []ClassSite
	// Taints is non-empty when the function is not deterministic: wall
	// clock, unseeded randomness, goroutine spawns, order-sensitive map
	// iteration — direct or transitive.
	Taints []Site
}

// maxSites bounds evidence lists: summaries carry witnesses, not
// exhaustive listings.
const maxSites = 4

type builder struct {
	prog *Program
	pkg  *Package
	fn   *types.Func
	decl *ast.FuncDecl
}

func (b *builder) info() *types.Info { return b.pkg.Info }

func summarize(p *Program, fn *types.Func, decl *ast.FuncDecl, pkg *Package) *Summary {
	b := &builder{prog: p, pkg: pkg, fn: fn, decl: decl}
	s := &Summary{Fn: fn}

	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return s
	}
	if recv := sig.Recv(); recv != nil {
		s.Recv = b.classifyVar(recv, false)
	}
	s.Params = make([]ParamEffect, sig.Params().Len())
	for i := range s.Params {
		s.Params[i] = b.classifyVar(sig.Params().At(i), false)
	}
	s.AcquiresResult, s.ResultMsg = b.acquireResult(sig)
	s.NetLocks, s.UnLocks = b.lockDeltas(sig)
	s.Blocks = b.blockSites()
	s.LockClasses = b.lockClasses()
	s.Taints = b.detTaints()
	return s
}

// paramIndex resolves v to the summarized function's receiver (-1) or
// parameter index, or (0, false).
func (b *builder) paramIndex(sig *types.Signature, v *types.Var) (int, bool) {
	if recv := sig.Recv(); recv != nil && recv == v {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i, true
		}
	}
	return 0, false
}

// ---- parameter ownership classification ---------------------------------

// useScan accumulates how one variable is used across the body.
type useScan struct {
	b      *builder
	target *types.Var
	// returnsOK treats `return target` as a plain read (used when
	// classifying a locally-acquired variable for AcquiresResult).
	returnsOK bool

	depth       int // conditional nesting; releases above 0 are not definite
	escaped     bool
	releases    int // definite (depth-0, incl. deferred-at-top) releases
	condRelease bool
}

// classifyVar classifies how the function treats one incoming variable.
func (b *builder) classifyVar(v *types.Var, returnsOK bool) ParamEffect {
	u := &useScan{b: b, target: v, returnsOK: returnsOK}
	u.stmt(b.decl.Body)
	switch {
	case u.escaped, u.condRelease, u.releases > 1:
		return ParamEscapes
	case u.releases == 1:
		return ParamReleases
	default:
		return ParamRead
	}
}

func (u *useScan) isTarget(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return u.b.info().Uses[id] == u.target || u.b.info().Defs[id] == u.target
}

func (u *useScan) release() {
	if u.depth > 0 {
		u.condRelease = true
		return
	}
	u.releases++
}

func (u *useScan) stmt(s ast.Stmt) {
	if s == nil || u.escaped {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			u.stmt(st)
		}
	case *ast.ExprStmt:
		u.expr(s.X, false)
	case *ast.AssignStmt:
		// Self-slicing keeps ownership: p = p[:n].
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 && u.isTarget(s.Lhs[0]) {
			if sl, ok := ast.Unparen(s.Rhs[0]).(*ast.SliceExpr); ok && u.isTarget(sl.X) {
				u.expr(sl.Low, false)
				u.expr(sl.High, false)
				u.expr(sl.Max, false)
				return
			}
		}
		for _, r := range s.Rhs {
			u.expr(r, true)
		}
		for _, l := range s.Lhs {
			if u.isTarget(l) {
				u.escaped = true // reassigned: no longer the caller's value
				continue
			}
			u.expr(l, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						u.expr(val, true)
					}
				}
			}
		}
	case *ast.IfStmt:
		u.stmt(s.Init)
		u.expr(s.Cond, false)
		u.depth++
		u.stmt(s.Body)
		u.stmt(s.Else)
		u.depth--
	case *ast.ForStmt:
		u.stmt(s.Init)
		u.expr(s.Cond, false)
		u.depth++
		u.stmt(s.Body)
		u.stmt(s.Post)
		u.depth--
	case *ast.RangeStmt:
		u.expr(s.X, false)
		u.depth++
		u.stmt(s.Body)
		u.depth--
	case *ast.SwitchStmt:
		u.stmt(s.Init)
		u.expr(s.Tag, false)
		u.depth++
		u.stmt(s.Body)
		u.depth--
	case *ast.TypeSwitchStmt:
		u.stmt(s.Init)
		u.depth++
		u.stmt(s.Assign)
		u.stmt(s.Body)
		u.depth--
	case *ast.SelectStmt:
		u.depth++
		u.stmt(s.Body)
		u.depth--
	case *ast.CaseClause:
		for _, x := range s.List {
			u.expr(x, false)
		}
		for _, st := range s.Body {
			u.stmt(st)
		}
	case *ast.CommClause:
		u.stmt(s.Comm)
		for _, st := range s.Body {
			u.stmt(st)
		}
	case *ast.ReturnStmt:
		for i, r := range s.Results {
			if u.returnsOK && i == 0 && u.isTarget(r) {
				continue
			}
			u.expr(r, true)
		}
	case *ast.SendStmt:
		u.expr(s.Chan, false)
		u.expr(s.Value, true)
	case *ast.DeferStmt:
		u.deferCall(s.Call)
	case *ast.GoStmt:
		u.expr(s.Call.Fun, true)
		for _, a := range s.Call.Args {
			u.expr(a, true)
		}
	case *ast.LabeledStmt:
		u.stmt(s.Stmt)
	case *ast.IncDecStmt:
		u.expr(s.X, false)
	}
}

// deferCall treats a deferred release of the target as a definite release
// (it runs on every exit); any other deferred reference escapes.
func (u *useScan) deferCall(call *ast.CallExpr) {
	name := CalleeName(u.b.info(), call)
	if idx, ok := PoolReleases[name]; ok && idx < len(call.Args) && u.isTarget(call.Args[idx]) {
		if u.depth > 0 {
			u.condRelease = true
		} else {
			u.releases++
		}
		return
	}
	if name == MsgRelease {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && u.isTarget(sel.X) {
			if u.depth > 0 {
				u.condRelease = true
			} else {
				u.releases++
			}
			return
		}
	}
	u.expr(call.Fun, true)
	for _, a := range call.Args {
		u.expr(a, true)
	}
}

func (u *useScan) expr(x ast.Expr, aliasing bool) {
	if x == nil || u.escaped {
		return
	}
	switch x := x.(type) {
	case *ast.Ident:
		if u.isTarget(x) && aliasing {
			u.escaped = true
		}
	case *ast.ParenExpr:
		u.expr(x.X, aliasing)
	case *ast.CallExpr:
		u.call(x)
	case *ast.UnaryExpr:
		u.expr(x.X, x.Op == token.AND || aliasing)
	case *ast.StarExpr:
		u.expr(x.X, false)
	case *ast.SliceExpr:
		u.expr(x.X, aliasing)
		u.expr(x.Low, false)
		u.expr(x.High, false)
		u.expr(x.Max, false)
	case *ast.IndexExpr:
		u.expr(x.X, false)
		u.expr(x.Index, false)
	case *ast.SelectorExpr:
		u.expr(x.X, aliasing)
	case *ast.BinaryExpr:
		u.expr(x.X, false)
		u.expr(x.Y, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			u.expr(el, true)
		}
	case *ast.KeyValueExpr:
		u.expr(x.Key, false)
		u.expr(x.Value, aliasing)
	case *ast.TypeAssertExpr:
		u.expr(x.X, aliasing)
	case *ast.FuncLit:
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && u.isTarget(id) {
				u.escaped = true
			}
			return !u.escaped
		})
	}
}

func (u *useScan) call(call *ast.CallExpr) {
	info := u.b.info()
	name := CalleeName(info, call)

	if idx, ok := PoolReleases[name]; ok {
		for i, a := range call.Args {
			if i == idx && u.isTarget(a) {
				u.release()
				continue
			}
			u.expr(a, i == idx || true)
		}
		u.recvRead(call)
		return
	}
	if name == MsgRelease {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && u.isTarget(sel.X) {
			u.release()
			return
		}
	}

	// Builtins: append may retain any argument; the rest only inspect.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			aliasing := id.Name == "append"
			for _, a := range call.Args {
				u.expr(a, aliasing)
			}
			return
		}
	}
	// Type conversions inspect only.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			u.expr(a, false)
		}
		return
	}

	// Summarized program callee: apply its per-parameter effects.
	fn := Callee(info, call)
	if sum := u.b.prog.Summary(fn); sum != nil && fn != u.b.fn {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if u.isTarget(sel.X) {
				switch sum.Recv {
				case ParamReleases:
					u.release()
				case ParamEscapes:
					u.escaped = true
				}
			} else {
				u.expr(sel.X, false)
			}
		}
		sig, _ := fn.Type().(*types.Signature)
		for i, a := range call.Args {
			eff := ParamEscapes
			if sig != nil && sig.Params().Len() > 0 {
				j := i
				if j >= len(sum.Params) {
					j = len(sum.Params) - 1
				}
				eff = sum.Params[j]
			}
			if u.isTarget(a) {
				switch eff {
				case ParamReleases:
					u.release()
				case ParamEscapes:
					u.escaped = true
				}
				continue
			}
			u.expr(a, eff == ParamEscapes)
		}
		return
	}

	// Unknown callee: method receivers are treated as reads (matching
	// poolcheck), arguments conservatively escape.
	u.recvRead(call)
	for _, a := range call.Args {
		u.expr(a, true)
	}
}

func (u *useScan) recvRead(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		u.expr(sel.X, false)
	}
}

// ---- acquire-through-return classification ------------------------------

// IsPooledType reports whether t is a type poolcheck tracks: []byte or
// wire.Msg (possibly via pointer). The bool result mirrors
// PoolAcquireSpec.Msg.
func IsPooledType(t types.Type) (msg, ok bool) {
	if sl, isSlice := t.Underlying().(*types.Slice); isSlice {
		if bt, isBasic := sl.Elem().Underlying().(*types.Basic); isBasic && bt.Kind() == types.Byte {
			return false, true
		}
	}
	if IsNamed(t, "starfish/internal/wire", "Msg") {
		return true, true
	}
	return false, false
}

// AcquireSpecFor resolves a call to a pool-acquire site: either a direct
// entry of PoolAcquires or a program function summarized as returning a
// fresh pooled value.
func AcquireSpecFor(info *types.Info, prog *Program, call *ast.CallExpr) (PoolAcquireSpec, bool) {
	name := CalleeName(info, call)
	if spec, ok := PoolAcquires[name]; ok {
		return spec, true
	}
	if prog == nil {
		return PoolAcquireSpec{}, false
	}
	if sum := prog.Summary(Callee(info, call)); sum != nil && sum.AcquiresResult {
		return PoolAcquireSpec{Result: 0, Msg: sum.ResultMsg}, true
	}
	return PoolAcquireSpec{}, false
}

func (b *builder) acquireResult(sig *types.Signature) (bool, bool) {
	if sig.Results().Len() == 0 {
		return false, false
	}
	msg, pooled := IsPooledType(sig.Results().At(0).Type())
	if !pooled {
		return false, false
	}
	var returns []*ast.ReturnStmt
	ast.Inspect(b.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})
	if len(returns) == 0 {
		return false, false
	}
	for _, r := range returns {
		if len(r.Results) == 0 {
			return false, false // named results: not modeled
		}
		e := ast.Unparen(r.Results[0])
		if call, ok := e.(*ast.CallExpr); ok {
			if _, ok := AcquireSpecFor(b.info(), b.prog, call); ok {
				continue
			}
			return false, false
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return false, false
		}
		v, _ := b.info().Uses[id].(*types.Var)
		if v == nil || !b.localOwnedReturn(v) {
			return false, false
		}
	}
	return true, msg
}

// localOwnedReturn reports whether local v is bound from a pool acquire
// and neither escapes nor is released before being returned.
func (b *builder) localOwnedReturn(v *types.Var) bool {
	acquired := false
	ast.Inspect(b.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, ok := AcquireSpecFor(b.info(), b.prog, call)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i != spec.Result {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if b.info().Defs[id] == v || b.info().Uses[id] == v {
					acquired = true
				}
			}
		}
		return true
	})
	if !acquired {
		return false
	}
	u := &useScan{b: b, target: v, returnsOK: true}
	u.stmt(b.decl.Body)
	return !u.escaped && u.releases == 0 && !u.condRelease
}

// ---- lock acquisition deltas --------------------------------------------

// lockRootRef resolves a mutex expression rooted at the function's
// receiver or a parameter: c.mu -> (-1, "mu"), st.inner.mu ->
// (paramIdx(st), "inner.mu").
func (b *builder) lockRootRef(sig *types.Signature, m ast.Expr) (LockRef, bool) {
	var path []string
	for {
		switch e := ast.Unparen(m).(type) {
		case *ast.SelectorExpr:
			path = append([]string{e.Sel.Name}, path...)
			m = e.X
		case *ast.Ident:
			v, _ := b.info().Uses[e].(*types.Var)
			if v == nil {
				return LockRef{}, false
			}
			idx, ok := b.paramIndex(sig, v)
			if !ok {
				return LockRef{}, false
			}
			return LockRef{Param: idx, Path: joinPath(path)}, true
		default:
			return LockRef{}, false
		}
	}
}

func joinPath(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

// mutexMethodRecv returns the mutex expression of a call to one of the
// named sync.Mutex/RWMutex methods, or nil.
func mutexMethodRecv(info *types.Info, call *ast.CallExpr, methods ...string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
		}
	}
	if !match {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || !IsMutex(tv.Type) {
		return nil
	}
	return sel.X
}

// lockDeltas computes the unconditional top-level lock effects: mutexes
// held at return (lock helpers) and mutexes released (unlock helpers).
func (b *builder) lockDeltas(sig *types.Signature) (net, un []LockRef) {
	add := func(list []LockRef, r LockRef) []LockRef {
		for _, x := range list {
			if x.Param == r.Param && x.Path == r.Path {
				return list
			}
		}
		return append(list, r)
	}
	remove := func(list []LockRef, r LockRef) ([]LockRef, bool) {
		for i, x := range list {
			if x.Param == r.Param && x.Path == r.Path {
				return append(list[:i], list[i+1:]...), true
			}
		}
		return list, false
	}
	lock := func(r LockRef) {
		var hit bool
		if un, hit = remove(un, r); !hit {
			net = add(net, r)
		}
	}
	unlock := func(r LockRef) {
		var hit bool
		if net, hit = remove(net, r); !hit {
			un = add(un, r)
		}
	}
	// substRef maps a callee lock ref into this function's frame, when the
	// corresponding receiver/argument is itself rooted here.
	substRef := func(call *ast.CallExpr, ref LockRef) (LockRef, bool) {
		var root ast.Expr
		if ref.Param < 0 {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return LockRef{}, false
			}
			root = sel.X
		} else {
			if ref.Param >= len(call.Args) {
				return LockRef{}, false
			}
			root = call.Args[ref.Param]
		}
		base, ok := b.lockRootRef(sig, root)
		if !ok {
			return LockRef{}, false
		}
		path := base.Path
		if ref.Path != "" {
			if path != "" {
				path += "."
			}
			path += ref.Path
		}
		return LockRef{Param: base.Param, Path: path, Pos: call.Pos()}, true
	}
	applyCall := func(call *ast.CallExpr, deferred bool) {
		if m := mutexMethodRecv(b.info(), call, "Lock", "RLock"); m != nil {
			if ref, ok := b.lockRootRef(sig, m); ok && !deferred {
				ref.Pos = call.Pos()
				lock(ref)
			}
			return
		}
		if m := mutexMethodRecv(b.info(), call, "Unlock", "RUnlock"); m != nil {
			if ref, ok := b.lockRootRef(sig, m); ok {
				ref.Pos = call.Pos()
				if deferred {
					// Released on every exit: not held from the caller's
					// point of view.
					net, _ = remove(net, ref)
				} else {
					unlock(ref)
				}
			}
			return
		}
		fn := Callee(b.info(), call)
		if sum := b.prog.Summary(fn); sum != nil && fn != b.fn {
			for _, ref := range sum.NetLocks {
				if r, ok := substRef(call, ref); ok {
					if deferred {
						continue
					}
					lock(r)
				}
			}
			for _, ref := range sum.UnLocks {
				if r, ok := substRef(call, ref); ok {
					if deferred {
						net, _ = remove(net, r)
					} else {
						unlock(r)
					}
				}
			}
		}
	}
	for _, s := range b.decl.Body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				applyCall(call, false)
			}
		case *ast.DeferStmt:
			applyCall(s.Call, true)
		}
	}
	return net, un
}

// ---- blocking evidence --------------------------------------------------

func (b *builder) blockSites() []Site {
	var out []Site
	b.blockStmt(b.decl.Body, &out)
	return out
}

func (b *builder) blockAdd(out *[]Site, s Site) {
	if len(*out) < maxSites {
		*out = append(*out, s)
	}
}

func (b *builder) blockStmt(s ast.Stmt, out *[]Site) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.blockStmt(st, out)
		}
	case *ast.ExprStmt:
		b.blockExpr(s.X, out)
	case *ast.SendStmt:
		b.blockAdd(out, Site{What: "channel send", Pos: s.Pos()})
		b.blockExpr(s.Value, out)
	case *ast.SelectStmt:
		if !selectHasDefault(s.Body) {
			b.blockAdd(out, Site{What: "blocking select", Pos: s.Pos()})
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					b.blockStmt(st, out)
				}
			}
		}
	case *ast.RangeStmt:
		if tv, ok := b.info().Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				b.blockAdd(out, Site{What: "range over channel", Pos: s.X.Pos()})
			}
		}
		b.blockExpr(s.X, out)
		b.blockStmt(s.Body, out)
	case *ast.IfStmt:
		b.blockStmt(s.Init, out)
		b.blockExpr(s.Cond, out)
		b.blockStmt(s.Body, out)
		b.blockStmt(s.Else, out)
	case *ast.ForStmt:
		b.blockStmt(s.Init, out)
		b.blockExpr(s.Cond, out)
		b.blockStmt(s.Body, out)
		b.blockStmt(s.Post, out)
	case *ast.SwitchStmt:
		b.blockStmt(s.Init, out)
		b.blockExpr(s.Tag, out)
		b.blockStmt(s.Body, out)
	case *ast.TypeSwitchStmt:
		b.blockStmt(s.Init, out)
		b.blockStmt(s.Assign, out)
		b.blockStmt(s.Body, out)
	case *ast.CaseClause:
		for _, x := range s.List {
			b.blockExpr(x, out)
		}
		for _, st := range s.Body {
			b.blockStmt(st, out)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			b.blockExpr(r, out)
		}
		for _, l := range s.Lhs {
			b.blockExpr(l, out)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.blockExpr(v, out)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.blockExpr(r, out)
		}
	case *ast.LabeledStmt:
		b.blockStmt(s.Stmt, out)
	}
	// Defer and go statements are deliberately skipped: deferred calls run
	// at return and goroutines on their own stack, matching lockcheck.
}

func selectHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (b *builder) blockExpr(x ast.Expr, out *[]Site) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				b.blockAdd(out, Site{What: "channel receive", Pos: n.Pos()})
			}
		case *ast.CallExpr:
			name := CalleeName(b.info(), n)
			if desc, ok := BlockingCalls[name]; ok {
				b.blockAdd(out, Site{What: "call to " + desc, Pos: n.Pos()})
				return true
			}
			fn := Callee(b.info(), n)
			if sum := b.prog.Summary(fn); sum != nil && fn != b.fn && len(sum.Blocks) > 0 {
				b.blockAdd(out, Site{What: sum.Blocks[0].What, Pos: n.Pos(), Via: fn})
			}
		}
		return true
	})
}

// ---- global lock classes ------------------------------------------------

// LockClassOf names the global class of a mutex expression: the named
// struct type owning the mutex field ("gcs.Engine.mu") or a package-level
// variable ("wire.poolMu"). Locals and unclassifiable expressions return
// "".
func LockClassOf(info *types.Info, m ast.Expr) string {
	switch e := ast.Unparen(m).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil || v.Pkg() == nil {
			return ""
		}
		if v.Parent() != v.Pkg().Scope() {
			return "" // local: no global identity
		}
		return v.Pkg().Name() + "." + v.Name()
	}
	return ""
}

func (b *builder) lockClasses() []ClassSite {
	seen := make(map[string]ClassSite)
	ast.Inspect(b.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs on another goroutine's schedule
		case *ast.CallExpr:
			if m := mutexMethodRecv(b.info(), n, "Lock", "RLock"); m != nil {
				if class := LockClassOf(b.info(), m); class != "" {
					if _, ok := seen[class]; !ok {
						seen[class] = ClassSite{Class: class, Pos: n.Pos()}
					}
				}
				return true
			}
			fn := Callee(b.info(), n)
			if sum := b.prog.Summary(fn); sum != nil && fn != b.fn {
				for _, cs := range sum.LockClasses {
					if _, ok := seen[cs.Class]; !ok {
						seen[cs.Class] = ClassSite{Class: cs.Class, Pos: n.Pos(), Via: fn}
					}
				}
			}
		}
		return true
	})
	out := make([]ClassSite, 0, len(seen))
	for _, cs := range seen {
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ---- determinism taints -------------------------------------------------

func (b *builder) detTaints() []Site {
	var out []Site
	b.detBlock(b.decl.Body.List, &out)
	return out
}

func (b *builder) detAdd(out *[]Site, s Site) {
	if len(*out) < maxSites {
		*out = append(*out, s)
	}
}

func (b *builder) detBlock(list []ast.Stmt, out *[]Site) {
	for i, s := range list {
		b.detStmt(s, list, i, out)
	}
}

func (b *builder) detStmt(s ast.Stmt, blk []ast.Stmt, idx int, out *[]Site) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.detBlock(s.List, out)
	case *ast.GoStmt:
		b.detAdd(out, Site{What: "goroutine spawn (scheduling-dependent)", Pos: s.Pos()})
	case *ast.RangeStmt:
		b.detExpr(s.X, out)
		if tv, ok := b.info().Types[s.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if what, bad := b.mapRangeTaint(s, blk, idx); bad {
					b.detAdd(out, Site{What: what, Pos: s.Pos()})
				}
			}
		}
		b.detBlock(s.Body.List, out)
	case *ast.IfStmt:
		b.detStmt(s.Init, blk, idx, out)
		b.detExpr(s.Cond, out)
		b.detBlock(s.Body.List, out)
		b.detStmt(s.Else, blk, idx, out)
	case *ast.ForStmt:
		b.detStmt(s.Init, blk, idx, out)
		b.detExpr(s.Cond, out)
		b.detBlock(s.Body.List, out)
		b.detStmt(s.Post, blk, idx, out)
	case *ast.SwitchStmt:
		b.detStmt(s.Init, blk, idx, out)
		b.detExpr(s.Tag, out)
		b.detBlock(s.Body.List, out)
	case *ast.TypeSwitchStmt:
		b.detStmt(s.Init, blk, idx, out)
		b.detStmt(s.Assign, blk, idx, out)
		b.detBlock(s.Body.List, out)
	case *ast.SelectStmt:
		b.detBlock(s.Body.List, out)
	case *ast.CaseClause:
		for _, x := range s.List {
			b.detExpr(x, out)
		}
		b.detBlock(s.Body, out)
	case *ast.CommClause:
		b.detStmt(s.Comm, blk, idx, out)
		b.detBlock(s.Body, out)
	case *ast.ExprStmt:
		b.detExpr(s.X, out)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			b.detExpr(r, out)
		}
		for _, l := range s.Lhs {
			b.detExpr(l, out)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.detExpr(v, out)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.detExpr(r, out)
		}
	case *ast.SendStmt:
		b.detExpr(s.Chan, out)
		b.detExpr(s.Value, out)
	case *ast.DeferStmt:
		b.detExpr(s.Call, out)
	case *ast.LabeledStmt:
		b.detStmt(s.Stmt, blk, idx, out)
	case *ast.IncDecStmt:
		b.detExpr(s.X, out)
	}
}

func (b *builder) detExpr(x ast.Expr, out *[]Site) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.detBlock(n.Body.List, out)
			return false
		case *ast.CallExpr:
			fn := Callee(b.info(), n)
			if fn != nil {
				pkgPath := ""
				if fn.Pkg() != nil {
					pkgPath = fn.Pkg().Path()
				}
				sig, _ := fn.Type().(*types.Signature)
				hasRecv := sig != nil && sig.Recv() != nil
				if desc, bad := NondetCallee(fn.FullName(), pkgPath, fn.Name(), hasRecv); bad {
					b.detAdd(out, Site{What: desc, Pos: n.Pos()})
					return true
				}
			}
			if sum := b.prog.Summary(fn); sum != nil && fn != b.fn && len(sum.Taints) > 0 {
				b.detAdd(out, Site{What: sum.Taints[0].What, Pos: n.Pos(), Via: fn})
			}
		}
		return true
	})
}

// sortCalls recognize the stdlib sorters that canonicalize a slice
// collected from a map range.
var sortCalls = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Strings":          true,
	"sort.Ints":             true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

// mapRangeTaint decides whether ranging over a map leaks iteration order:
// per-key effects (map writes, deletes, scalar updates) are order-free;
// slice appends are accepted when the destination is sorted later in the
// same block; anything else (sends, calls, early exits) is order-sensitive.
func (b *builder) mapRangeTaint(rs *ast.RangeStmt, blk []ast.Stmt, idx int) (string, bool) {
	var dests []string
	bad := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if bad != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			bad = "map iteration captures a closure"
			return false
		case *ast.SendStmt:
			bad = "map iteration order reaches a channel send"
		case *ast.ReturnStmt:
			bad = "map iteration order decides an early return"
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				bad = "map iteration order decides a break"
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isAppendCall(b.info(), call) && i < len(n.Lhs) {
					dests = append(dests, types.ExprString(n.Lhs[i]))
				}
			}
		case *ast.CallExpr:
			if isOrderFreeCall(b.info(), n) {
				return true
			}
			bad = "map iteration order reaches a call to " + calleeShort(b.info(), n)
		}
		return true
	})
	if bad != "" {
		return bad, true
	}
	if len(dests) == 0 {
		return "", false
	}
	sorted := make(map[string]bool)
	for _, s := range blk[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if sortCalls[CalleeName(b.info(), call)] {
			sorted[types.ExprString(call.Args[0])] = true
		}
	}
	for _, d := range dests {
		if !sorted[d] {
			return "map iteration order reaches " + d + " without a subsequent sort", true
		}
	}
	return "", false
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// pureCalls are known value-pure functions: no state, no observable effect
// beyond the return value, so calling them per key cannot leak iteration
// order.
var pureCalls = map[string]bool{
	"(time.Time).Sub":             true,
	"(time.Time).Before":          true,
	"(time.Time).After":           true,
	"(time.Time).Equal":           true,
	"(time.Time).Compare":         true,
	"(time.Time).IsZero":          true,
	"(time.Duration).Seconds":     true,
	"(time.Duration).Nanoseconds": true,
}

// isOrderFreeCall accepts builtins, type conversions, and known-pure
// functions inside a map-range body: they cannot observe iteration order
// beyond their per-key inputs.
func isOrderFreeCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			return true
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return pureCalls[CalleeName(info, call)]
}

func calleeShort(info *types.Info, call *ast.CallExpr) string {
	if fn := Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "an unresolved function"
}

// DescribeSite renders evidence with its via-chain for diagnostics:
// "channel send (via drainLoop)".
func DescribeSite(s Site) string {
	if s.Via == nil {
		return s.What
	}
	return s.What + " (via " + s.Via.Name() + ")"
}
