module starfish

go 1.22
