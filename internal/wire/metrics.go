package wire

import "sync/atomic"

// Global per-type message counters, incremented by every transport and
// daemon-process link send in the system. They exist for the Table-1
// audit: a full application run can be accounted for by message type,
// demonstrating which traffic flows through the system (and, notably, that
// data volume dwarfs control volume). The counters are process-global and
// monotonic; benchmarks reset them around a run.
var msgCounts [typeCount]atomic.Uint64

// CountMsg records one sent message of type t.
func CountMsg(t Type) {
	if t.Valid() {
		msgCounts[t].Add(1)
	}
}

// MsgCounts returns a snapshot of the global per-type send counters,
// indexed by Type.
func MsgCounts() [8]uint64 {
	var out [8]uint64
	for t := TInvalid + 1; t < typeCount; t++ {
		out[t] = msgCounts[t].Load()
	}
	return out
}

// ResetMsgCounts zeroes the global counters.
func ResetMsgCounts() {
	for t := range msgCounts {
		msgCounts[t].Store(0)
	}
}

// CopySite classifies where on the data path a payload copy happened. The
// counters back the fast-path copy budget (DESIGN.md): the paper's
// performance claim is that data messages are never copied between software
// layers, so every remaining copy must be attributable to a deliberate
// site.
type CopySite uint8

const (
	// CopyClone is Msg.Clone — the transport-level defensive copy taken
	// for non-pooled sends (modelling the NIC DMA on fastnet).
	CopyClone CopySite = iota
	// CopyBoundary is the MPI API boundary: mpi.Send must give the caller
	// its buffer back, so the payload is staged once into a pooled buffer.
	CopyBoundary
	// CopyCR covers checkpoint/restart bookkeeping copies: sender-side
	// message logs, channel recording, and pending-queue capture. These
	// are off the hot path (they only run while a checkpoint is active or
	// logging is enabled).
	CopyCR
	// CopyColl is collective-internal staging: packing a segment, scatter
	// block, or reduction accumulator into a pooled buffer inside a
	// collective algorithm (distinct from the per-call API boundary copy).
	CopyColl

	copySiteCount
)

// String names the copy site.
func (s CopySite) String() string {
	switch s {
	case CopyClone:
		return "clone"
	case CopyBoundary:
		return "api-boundary"
	case CopyCR:
		return "checkpoint-restart"
	case CopyColl:
		return "collective-staging"
	default:
		return "unknown-copy-site"
	}
}

var (
	copyCounts [copySiteCount]atomic.Uint64
	copyBytes  [copySiteCount]atomic.Uint64
)

// CountCopy records one payload copy of n bytes at site s.
func CountCopy(s CopySite, n int) {
	if s < copySiteCount {
		copyCounts[s].Add(1)
		copyBytes[s].Add(uint64(n))
	}
}

// CopyStats returns per-site (copies, bytes) snapshots, indexed by
// CopySite.
func CopyStats() (counts, bytes [8]uint64) {
	for s := CopySite(0); s < copySiteCount; s++ {
		counts[s] = copyCounts[s].Load()
		bytes[s] = copyBytes[s].Load()
	}
	return counts, bytes
}

// CopiedBytes returns the total payload bytes copied across all sites —
// the number the fast-path benchmarks divide by operations to report
// copied bytes per round trip.
func CopiedBytes() uint64 {
	var total uint64
	for s := CopySite(0); s < copySiteCount; s++ {
		total += copyBytes[s].Load()
	}
	return total
}

// ResetCopyStats zeroes the copy counters.
func ResetCopyStats() {
	for s := range copyCounts {
		copyCounts[s].Store(0)
		copyBytes[s].Store(0)
	}
}

// Collective segment counters. The pipelined collective algorithms split
// large buffers into segments/chunks; these process-global counters record
// how many such internal fragments were put on the wire and how many
// payload bytes they carried, so benchmarks can report segmentation
// overhead per operation.
var (
	collSegCount atomic.Uint64
	collSegBytes atomic.Uint64
)

// CountCollSeg records one collective-internal segment of n payload bytes.
func CountCollSeg(n int) {
	collSegCount.Add(1)
	collSegBytes.Add(uint64(n))
}

// CollSegStats returns the (segments, bytes) counters.
func CollSegStats() (segs, bytes uint64) {
	return collSegCount.Load(), collSegBytes.Load()
}

// ResetCollSegStats zeroes the collective segment counters.
func ResetCollSegStats() {
	collSegCount.Store(0)
	collSegBytes.Store(0)
}
