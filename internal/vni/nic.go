package vni

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"starfish/internal/wire"
)

// NIC is the per-process network endpoint: it listens on one address,
// maintains connections to peers, and runs the polling thread of §2.2.1.
//
// The paper's polling thread continuously polls the network and moves
// arrived messages into a queue of received messages, so that (a) an eager
// sender never blocks on an unprepared receiver, and (b) the receive-side
// kernel interaction is overlapped with application work. Here one polling
// goroutine per connection performs the blocking Recv and feeds the shared
// received-message queue; the application-visible Recv is a plain queue
// pop, which is what makes receive operations fast.
type NIC struct {
	tr    Transport
	local string
	ln    Listener

	mu       sync.Mutex
	conns    map[string]Conn // dialed, by remote listen address
	accepted []Conn          // inbound connections, closed with the NIC
	closed   bool

	// dialing single-flights concurrent Connect calls per address: the
	// first caller dials, the rest wait for its outcome.
	dialing map[string]*dialCall
	// dialCool fail-fasts Connects to an address whose last full dial
	// round failed, so senders to a dead peer do not pay the in-call
	// backoff on every message.
	dialCool map[string]dialCool

	// Dial-retry policy, see SetDialRetry.
	dialAttempts int
	dialBackoff  time.Duration
	dialCooldown time.Duration

	inq  chan wire.Msg
	wg   sync.WaitGroup
	done chan struct{}

	stats Stats
}

// Stats counts traffic through a NIC, keyed by wire message type. It backs
// the Table-1 audit and general diagnostics.
type Stats struct {
	mu        sync.Mutex
	SentMsgs  [8]uint64
	SentBytes [8]uint64
	RecvMsgs  [8]uint64
	RecvBytes [8]uint64
}

func (s *Stats) countSend(t wire.Type, payloadLen int) {
	s.mu.Lock()
	s.SentMsgs[t]++
	s.SentBytes[t] += uint64(payloadLen)
	s.mu.Unlock()
}

func (s *Stats) countRecv(m *wire.Msg) {
	s.mu.Lock()
	s.RecvMsgs[m.Type]++
	s.RecvBytes[m.Type] += uint64(len(m.Payload))
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (sent, recv [8]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.SentMsgs, s.RecvMsgs
}

// NewNIC creates a NIC listening on addr via tr and starts accepting.
// queueLen sizes the received-message queue (<=0 selects 4096).
func NewNIC(tr Transport, addr string, queueLen int) (*NIC, error) {
	if queueLen <= 0 {
		queueLen = 4096
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	n := &NIC{
		tr:       tr,
		local:    ln.Addr(),
		ln:       ln,
		conns:    make(map[string]Conn),
		dialing:  make(map[string]*dialCall),
		dialCool: make(map[string]dialCool),
		inq:      make(chan wire.Msg, queueLen),
		done:     make(chan struct{}),

		dialAttempts: 4,
		dialBackoff:  time.Millisecond,
		dialCooldown: 250 * time.Millisecond,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the NIC's bound listen address.
func (n *NIC) Addr() string { return n.local }

// Stats returns the NIC's traffic counters.
func (n *NIC) Stats() *Stats { return &n.stats }

func (n *NIC) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.accepted = append(n.accepted, c)
		n.mu.Unlock()
		n.startPoller(c)
	}
}

// startPoller launches the polling goroutine for one connection: it moves
// every arrived message into the received-message queue.
func (n *NIC) startPoller(c Conn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			n.stats.countRecv(&m)
			select {
			case n.inq <- m:
			case <-n.done:
				m.Release() // dropped on shutdown: recycle the pooled payload
				return
			}
		}
	}()
}

// dialCall single-flights a dial: the owner closes done after setting err.
type dialCall struct {
	done chan struct{}
	err  error
}

// dialCool marks an address whose last full dial round failed; Connects
// before until return err without dialing.
type dialCool struct {
	until time.Time
	err   error
}

// SetDialRetry tunes the dial-retry policy: up to attempts dials per
// Connect with exponential backoff from base (jittered ±50%) between them,
// and a fail-fast cooldown after a fully failed round during which further
// Connects return the cached error immediately. Zero values keep the
// current setting. Call before the NIC is shared between goroutines.
func (n *NIC) SetDialRetry(attempts int, base, cooldown time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if attempts > 0 {
		n.dialAttempts = attempts
	}
	if base > 0 {
		n.dialBackoff = base
	}
	if cooldown > 0 {
		n.dialCooldown = cooldown
	}
}

// Connect ensures a connection to the peer listening at addr, dialing if
// needed. Concurrent Connects to the same address are single-flighted: one
// goroutine dials (with bounded exponential-backoff retry), the rest wait
// for its outcome, so a dial race can never leak a second connection. It
// is idempotent and safe for concurrent use.
func (n *NIC) Connect(addr string) error {
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return ErrClosed
		}
		if _, ok := n.conns[addr]; ok {
			n.mu.Unlock()
			return nil
		}
		if dc := n.dialing[addr]; dc != nil {
			n.mu.Unlock()
			select {
			case <-dc.done:
			case <-n.done:
				return ErrClosed
			}
			if dc.err != nil {
				return dc.err
			}
			continue // the owner registered the conn; re-check the map
		}
		if cool, ok := n.dialCool[addr]; ok {
			if time.Now().Before(cool.until) {
				n.mu.Unlock()
				return cool.err
			}
			delete(n.dialCool, addr)
		}
		dc := &dialCall{done: make(chan struct{})}
		n.dialing[addr] = dc
		n.mu.Unlock()

		c, err := n.dialRetry(addr)

		n.mu.Lock()
		delete(n.dialing, addr)
		if err != nil {
			n.dialCool[addr] = dialCool{until: time.Now().Add(n.dialCooldown), err: err}
			n.mu.Unlock()
			dc.err = err
			close(dc.done)
			return err
		}
		if n.closed {
			n.mu.Unlock()
			c.Close()
			dc.err = ErrClosed
			close(dc.done)
			return ErrClosed
		}
		n.conns[addr] = c
		n.mu.Unlock()
		close(dc.done)
		n.startPoller(c)
		return nil
	}
}

// dialRetry dials addr up to dialAttempts times, sleeping an exponentially
// growing, jittered backoff between attempts. Transient outages (a peer
// restarting its listener, an injected dial failure window) are absorbed
// here; a persistent failure is reported after the last attempt and then
// fail-fasted by the Connect cooldown.
func (n *NIC) dialRetry(addr string) (Conn, error) {
	var lastErr error
	for i := 0; i < n.dialAttempts; i++ {
		c, err := n.tr.Dial(addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i+1 >= n.dialAttempts {
			break
		}
		d := n.dialBackoff << uint(i)
		// Jitter to ±50% so a cluster's reconnect storms decorrelate.
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		select {
		case <-time.After(d):
		case <-n.done:
			return nil, ErrClosed
		}
	}
	return nil, lastErr
}

// Send transmits m to the peer at addr, connecting on first use. Pooled
// messages follow the ownership discipline of wire.Msg: on success the
// payload has moved to the transport (or receiver) and m.Payload is nil;
// on failure ownership stays with the caller.
func (n *NIC) Send(addr string, m *wire.Msg) error {
	n.mu.Lock()
	c, ok := n.conns[addr]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		if err := n.Connect(addr); err != nil {
			return err
		}
		n.mu.Lock()
		c = n.conns[addr]
		n.mu.Unlock()
		if c == nil {
			return fmt.Errorf("vni: connect to %q raced with close", addr)
		}
	}
	// Captured before Send: a successful send of a pooled message moves or
	// releases the payload, so its length is unreadable afterwards.
	t, payloadLen := m.Type, len(m.Payload)
	if err := c.Send(m); err != nil {
		return err
	}
	n.stats.countSend(t, payloadLen)
	return nil
}

// Disconnect drops the connection to addr, if any.
func (n *NIC) Disconnect(addr string) {
	n.mu.Lock()
	c := n.conns[addr]
	delete(n.conns, addr)
	n.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Queue exposes the received-message queue fed by the polling goroutines.
// Consumers (the MPI progress engine, the daemon router) drain it.
func (n *NIC) Queue() <-chan wire.Msg { return n.inq }

// Close shuts the NIC down: stops accepting, closes all connections, and
// unblocks the polling goroutines.
func (n *NIC) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]Conn, 0, len(n.conns)+len(n.accepted))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	conns = append(conns, n.accepted...)
	n.conns = map[string]Conn{}
	n.accepted = nil
	n.mu.Unlock()

	close(n.done)
	n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return nil
}
