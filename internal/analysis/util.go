package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of a call expression, or nil for
// builtins, type conversions, function-typed variables, and interface
// methods (which still resolve: interface method calls yield the interface
// *types.Func).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleeName returns the callee's FullName — e.g.
// "starfish/internal/wire.GetBuf" or "(*sync.Mutex).Lock" — or "".
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := Callee(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func IsMutex(t types.Type) bool {
	return IsNamed(t, "sync", "Mutex") || IsNamed(t, "sync", "RWMutex")
}

// UsedVar resolves an identifier expression to the local or package-level
// variable it uses, or nil.
func UsedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
