package apps

import (
	"fmt"
	"time"

	"starfish/internal/proc"
	"starfish/internal/wire"
)

// Sizer is the checkpoint-size workload of figures 3 and 4: an application
// whose in-memory state is a tunable byte array. Each step touches the
// array (so the state is genuinely live data) and the application runs
// until told how many steps to take. Checkpointing a Sizer measures the
// cost of dumping StateBytes of application state through either encoder.
type Sizer struct {
	StateBytes int
	Steps      int64
	// StepSleep models per-step compute time without burning CPU (the
	// benchmarks run many simulated nodes on few cores; a spinning
	// workload would starve the runtime itself).
	StepSleep time.Duration

	step int64
	data []byte
}

// SizerArgs encodes submission arguments.
func SizerArgs(stateBytes int, steps int64) []byte {
	return SizerArgsSleep(stateBytes, steps, time.Millisecond)
}

// SizerArgsSleep encodes submission arguments with an explicit per-step
// compute time.
func SizerArgsSleep(stateBytes int, steps int64, sleep time.Duration) []byte {
	w := wire.NewWriter(24)
	w.U32(uint32(stateBytes)).I64(steps).I64(int64(sleep))
	return w.Bytes()
}

// DecodeSizer parses SizerArgs.
func DecodeSizer(args []byte) (*Sizer, error) {
	r := wire.NewReader(args)
	a := &Sizer{StateBytes: int(r.U32()), Steps: r.I64(), StepSleep: time.Duration(r.I64())}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if a.StateBytes < 0 {
		return nil, fmt.Errorf("sizer: negative state size")
	}
	return a, nil
}

// Init implements proc.App.
func (a *Sizer) Init(*proc.Ctx) error {
	a.data = make([]byte, a.StateBytes)
	for i := range a.data {
		a.data[i] = byte(i)
	}
	return nil
}

// Restore implements proc.App.
func (a *Sizer) Restore(_ *proc.Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.StateBytes = int(r.U32())
	a.Steps = r.I64()
	a.step = r.I64()
	a.data = append([]byte(nil), r.Bytes32()...)
	return r.Err()
}

// Snapshot implements proc.App.
func (a *Sizer) Snapshot() ([]byte, error) {
	w := wire.NewWriter(32 + len(a.data))
	w.U32(uint32(a.StateBytes)).I64(a.Steps).I64(a.step).Bytes32(a.data)
	return w.Bytes(), nil
}

// Step implements proc.App: touch a slice of the state and advance.
func (a *Sizer) Step(*proc.Ctx) (bool, error) {
	if a.step >= a.Steps {
		return true, nil
	}
	stride := 4096
	for i := int(a.step) % stride; i < len(a.data); i += stride {
		a.data[i]++
	}
	if a.StepSleep > 0 {
		time.Sleep(a.StepSleep)
	}
	a.step++
	return a.step >= a.Steps, nil
}
