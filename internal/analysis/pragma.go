package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker is the suppression pragma prefix. Syntax:
//
//	//starfish:allow <check>[,<check>...] <reason>
//
// The pragma suppresses diagnostics of the named checks on the comment's
// own line and on the line directly below it (so it works both inline and
// as a lead comment).
const allowMarker = "//starfish:allow"

// allowKey identifies one suppressed (file, line, check) site.
type allowKey struct {
	file  string
	line  int
	check string
}

// collectAllows scans the files' comments for allow pragmas. It returns the
// set of suppressed sites and, as diagnostics, any malformed pragma (no
// check name, or no reason — the reason is mandatory documentation).
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowMarker)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //starfish:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Check: "pragma",
						Message: "starfish:allow pragma names no check (want //starfish:allow <check> <reason>)"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Check: "pragma",
						Message: "starfish:allow pragma has no reason (want //starfish:allow <check> <reason>)"})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					check = strings.TrimSpace(check)
					if check == "" {
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, check}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, check}] = true
				}
			}
		}
	}
	return allows, bad
}

// filterAllowed drops diagnostics whose (file, line, check) is suppressed.
func filterAllowed(fset *token.FileSet, diags []Diagnostic, allows map[allowKey]bool) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if allows[allowKey{pos.Filename, pos.Line, d.Check}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
