// Package evcheck keeps the event plane honest: every event kind the
// runtime emits must be declared in the evstore Registry, every kind the
// Registry declares must actually be emitted somewhere, and every kind a
// query references — chaos-soak assertions, EXPERIMENTS.md transcripts,
// the starfishctl usage docs — must be emitted under the component the
// query names. A typo'd kind in a query does not error at runtime; it
// just matches nothing, forever, which in a soak assertion means a check
// that can never fail. This analyzer turns that silence into a build
// failure.
//
// Emit sites are calls to evstore.Ev/EvApp/EvRank. The kind argument is
// resolved statically at three levels: a string literal at the call; a
// local variable whose every assignment is a string literal (the daemon's
// suspend/resume toggle); or a parameter of the enclosing function, in
// which case every call site of that function must pass a literal (the
// chaosnet faultEvent helper). Anything else is reported — event kinds
// must stay statically analyzable.
//
// The query-side and registry-completeness checks need the whole repo to
// be loaded (the emitted set must be complete), so they only run when the
// analyzed program contains starfish/internal/cluster.
package evcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"starfish/internal/analysis"
	"starfish/internal/evstore"
)

// Analyzer is the evcheck check.
var Analyzer = &analysis.Analyzer{
	Name:    "evcheck",
	Doc:     "event kinds must be declared in the evstore Registry, emitted kinds and query-referenced kinds must agree",
	ProgRun: run,
}

// emitConstructors are the evstore record constructors whose first
// argument is the event kind.
var emitConstructors = map[string]bool{
	"starfish/internal/evstore.Ev":     true,
	"starfish/internal/evstore.EvApp":  true,
	"starfish/internal/evstore.EvRank": true,
}

// queryFiles are the repo files whose kind=/component= references are
// validated, relative to the repo root.
var queryFiles = []string{
	"internal/cluster/chaos_test.go",
	"internal/cluster/tail_chaos_test.go",
	"cmd/starfishctl/main.go",
	"EXPERIMENTS.md",
}

func run(pass *analysis.ProgPass) error {
	ec := &checker{pass: pass, emitted: make(map[string]bool)}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if emitConstructors[analysis.CalleeName(pkg.Info, call)] {
					ec.emitSite(pkg, call)
				}
				return true
			})
		}
	}
	// The cross-referencing checks need the full emitted set, which only a
	// whole-repo load provides.
	repoMode := pass.Prog.RepoRoot != ""
	if repoMode {
		repoMode = false
		for _, pkg := range pass.Prog.Pkgs {
			if pkg.PkgPath == "starfish/internal/cluster" {
				repoMode = true
			}
		}
	}
	if repoMode {
		ec.queryScan()
		ec.completeness()
	}
	return nil
}

type checker struct {
	pass    *analysis.ProgPass
	emitted map[string]bool
}

// emitSite resolves the kind argument of one Ev/EvApp/EvRank call and
// checks each resolved kind against the Registry.
func (ec *checker) emitSite(pkg *analysis.Package, call *ast.CallExpr) {
	arg := ast.Unparen(call.Args[0])
	if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		ec.kindAt(lit.Pos(), unquote(lit))
		return
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		ec.pass.Reportf(arg.Pos(), "event kind is not statically resolvable (want a string literal, a literal-assigned local, or a parameter passed literals)")
		return
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		ec.pass.Reportf(arg.Pos(), "event kind is not statically resolvable")
		return
	}
	if fn, idx := ec.paramOwner(v); fn != nil {
		ec.paramKinds(fn, idx)
		return
	}
	ec.localKinds(pkg, v, arg.Pos())
}

// kindAt records one resolved emitted kind and validates it against the
// declared Registry.
func (ec *checker) kindAt(pos token.Pos, kind string) {
	ec.emitted[kind] = true
	if !evstore.KnownKind(kind) {
		ec.pass.Reportf(pos, "event kind %q is not declared in the evstore Registry", kind)
	}
}

// paramOwner finds the program function declaring v as a parameter.
func (ec *checker) paramOwner(v *types.Var) (*types.Func, int) {
	for _, fn := range ec.pass.Prog.FuncsSorted() {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return fn, i
			}
		}
	}
	return nil, 0
}

// paramKinds resolves a kind that arrives as a function parameter: every
// call site of the function must pass a string literal at that position.
func (ec *checker) paramKinds(fn *types.Func, idx int) {
	for _, pkg := range ec.pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || analysis.Callee(pkg.Info, call) != fn || idx >= len(call.Args) {
					return true
				}
				a := ast.Unparen(call.Args[idx])
				if lit, ok := a.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					ec.kindAt(lit.Pos(), unquote(lit))
				} else {
					ec.pass.Reportf(a.Pos(), "event kind passed to %s is not a string literal: the kind cannot be validated against the Registry", fn.Name())
				}
				return true
			})
		}
	}
}

// localKinds resolves a kind held in a local variable: every assignment to
// it must be a string literal.
func (ec *checker) localKinds(pkg *analysis.Package, v *types.Var, at token.Pos) {
	found := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if pkg.Info.Defs[id] != v && pkg.Info.Uses[id] != v {
					continue
				}
				found = true
				if i >= len(as.Rhs) {
					ec.pass.Reportf(at, "event kind variable %s has a non-literal assignment", v.Name())
					continue
				}
				if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					ec.kindAt(lit.Pos(), unquote(lit))
				} else {
					ec.pass.Reportf(as.Rhs[i].Pos(), "event kind variable %s is assigned a non-literal value: the kind cannot be validated against the Registry", v.Name())
				}
			}
			return true
		})
	}
	if !found {
		ec.pass.Reportf(at, "event kind is not statically resolvable")
	}
}

func unquote(lit *ast.BasicLit) string {
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return lit.Value
	}
	return s
}

// ---- query-side validation ----

// queryScan reads the known query surfaces (soak assertions, docs) as
// text, extracts component=/kind= references, and checks each against the
// Registry and the emitted set.
func (ec *checker) queryScan() {
	for _, rel := range queryFiles {
		path := filepath.Join(ec.pass.Prog.RepoRoot, rel)
		content, err := os.ReadFile(path)
		if err != nil {
			continue // surface moved or absent: nothing to validate
		}
		tf := ec.pass.Fset.AddFile(path, -1, len(content))
		tf.SetLinesForContent(content)
		for _, ref := range extractRefs(string(content)) {
			pos := tf.Pos(ref.off)
			if !ec.emitted[ref.kind] {
				ec.pass.Reportf(pos, "query references event kind %q, which no code emits — it can only ever match nothing", ref.kind)
				continue
			}
			if ref.component != "" && !evstore.KnownFor(ref.component, ref.kind) {
				ec.pass.Reportf(pos, "query pairs component=%s with kind=%s, but the Registry declares no such event for that component", ref.component, ref.kind)
			}
		}
	}
}

type queryRef struct {
	component, kind string
	off             int // byte offset of the kind= token
}

// extractRefs pulls component=/kind= pairs out of text, line by line. A
// kind pairs with the nearest component= on its own line, when present.
func extractRefs(content string) []queryRef {
	var refs []queryRef
	off := 0
	for _, line := range strings.SplitAfter(content, "\n") {
		component := ""
		if i := strings.Index(line, "component="); i >= 0 {
			component = tokenValue(line[i+len("component="):])
		}
		rest, base := line, 0
		for {
			i := strings.Index(rest, "kind=")
			if i < 0 {
				break
			}
			val := tokenValue(rest[i+len("kind="):])
			if val != "" {
				refs = append(refs, queryRef{
					component: component,
					kind:      val,
					off:       off + base + i,
				})
			}
			base += i + len("kind=")
			rest = line[base:]
		}
		off += len(line)
	}
	return refs
}

// tokenValue takes the leading run of kind-name characters; placeholders
// and empty values yield "".
func tokenValue(s string) string {
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			end++
			continue
		}
		break
	}
	return s[:end]
}

// completeness reports Registry kinds that no code emits, positioned at
// the Registry declaration.
func (ec *checker) completeness() {
	pos := token.NoPos
	for _, pkg := range ec.pass.Prog.Pkgs {
		if pkg.PkgPath != "starfish/internal/evstore" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for _, name := range vs.Names {
					if name.Name == "Registry" {
						pos = name.Pos()
					}
				}
				return true
			})
		}
	}
	if pos == token.NoPos {
		return // evstore not part of this program
	}
	var missing []string
	for comp, kinds := range evstore.Registry {
		for _, k := range kinds {
			if !ec.emitted[k] {
				missing = append(missing, comp+"/"+k)
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		ec.pass.Reportf(pos, "Registry declares %s but no code emits that kind", m)
	}
}
