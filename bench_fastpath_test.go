// Fast-path allocation/copy benchmarks. These back the copy-budget work:
// scripts/check.sh runs them with -benchmem and records the results in
// BENCH_fastpath.json so the allocation trajectory of the data path is
// tracked across PRs.
package starfish_test

import (
	"bytes"
	"fmt"
	"testing"

	"starfish/internal/mpi"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// BenchmarkWireCodec measures framing cost in isolation: one message
// encoded into a stream and decoded back, per iteration. The pooled variant
// reads through ReadMsgBuf and releases, so steady state recycles one buffer.
func BenchmarkWireCodec(b *testing.B) {
	prev := wire.SetPoolGuard(false)
	defer wire.SetPoolGuard(prev)
	for _, size := range []int{64, 4096, 64 << 10} {
		m := wire.Msg{Type: wire.TData, App: 1, Src: 0, Dst: 1, Tag: 7, Seq: 9, Payload: make([]byte, size)}
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var buf bytes.Buffer
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := wire.WriteMsg(&buf, &m); err != nil {
					b.Fatal(err)
				}
				got, err := wire.ReadMsgBuf(&buf)
				if err != nil {
					b.Fatal(err)
				}
				if len(got.Payload) != size {
					b.Fatal("bad payload")
				}
				got.Release()
			}
		})
	}
}

// BenchmarkFastPathRoundTrip measures a full MPI ping-pong round trip over
// the fastnet transport (the BIP/Myrinet stand-in) at the Figure-5 64 KiB
// point, reporting allocations and copied payload bytes per operation.
//
// The default variant uses the pooled recycling idiom (echo forwards with
// SendOwned, the origin releases the reply): one API-boundary copy per round
// trip and zero steady-state allocations. The naive variant ignores pooling
// entirely, as pre-copy-budget code did.
func BenchmarkFastPathRoundTrip(b *testing.B) {
	prev := wire.SetPoolGuard(false)
	defer wire.SetPoolGuard(prev)
	const size = 64 << 10
	b.Run("size=64KB", func(b *testing.B) {
		c0, cleanup := fastPathWorld(b, vni.NewFastnet(0), true)
		defer cleanup()
		buf := make([]byte, size)
		b.SetBytes(2 * size)
		copied0 := wire.CopiedBytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c0.Send(1, 0, buf); err != nil {
				b.Fatal(err)
			}
			data, st, err := c0.Recv(1, 0)
			if err != nil {
				b.Fatal(err)
			}
			if st.Pooled {
				wire.PutBuf(data)
			}
		}
		b.ReportMetric(float64(wire.CopiedBytes()-copied0)/float64(b.N), "copied-B/op")
	})
	b.Run("size=64KB/naive", func(b *testing.B) {
		c0, cleanup := fastPathWorld(b, vni.NewFastnet(0), false)
		defer cleanup()
		buf := make([]byte, size)
		b.SetBytes(2 * size)
		copied0 := wire.CopiedBytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c0.Send(1, 0, buf); err != nil {
				b.Fatal(err)
			}
			if _, _, err := c0.Recv(1, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(wire.CopiedBytes()-copied0)/float64(b.N), "copied-B/op")
	})
}

// fastPathWorld builds a two-rank world on fn and starts an echo server on
// rank 1. With echoOwned the echo forwards received pooled buffers with
// SendOwned (the zero-copy idiom); otherwise it re-sends through the copying
// API.
func fastPathWorld(b *testing.B, fn *vni.Fastnet, echoOwned bool) (*mpi.Comm, func()) {
	b.Helper()
	nic0, err := vni.NewNIC(fn, "fp-0", 0)
	if err != nil {
		b.Fatal(err)
	}
	nic1, err := vni.NewNIC(fn, "fp-1", 0)
	if err != nil {
		b.Fatal(err)
	}
	addrs := map[wire.Rank]string{0: nic0.Addr(), 1: nic1.Addr()}
	c0, err := mpi.New(mpi.Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs})
	if err != nil {
		b.Fatal(err)
	}
	c1, err := mpi.New(mpi.Config{App: 1, Rank: 1, Size: 2, NIC: nic1, Addrs: addrs})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			data, st, err := c1.Recv(0, 0)
			if err != nil {
				return
			}
			if echoOwned && st.Pooled {
				err = c1.SendOwned(0, 0, data)
			} else {
				err = c1.Send(0, 0, data)
			}
			if err != nil {
				return
			}
		}
	}()
	return c0, func() {
		c0.Close()
		c1.Close()
		<-done
		nic0.Close()
		nic1.Close()
	}
}
