package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"starfish/internal/wire"
)

// pipeStore builds a Pipeline over a fresh disk Store.
func pipeStore(t *testing.T, fullEvery int) (*Pipeline, *Store) {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewPipeline(st, fullEvery), st
}

// epochImages builds a deterministic sequence of images: epoch 0 is random,
// each later epoch mutates a few whole blocks of its predecessor.
func epochImages(t *testing.T, epochs, blocks int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	imgs := make([][]byte, epochs)
	imgs[0] = make([]byte, blocks*DeltaBlockSize)
	rng.Read(imgs[0])
	for e := 1; e < epochs; e++ {
		img := append([]byte(nil), imgs[e-1]...)
		for i := 0; i < 2; i++ {
			b := rng.Intn(blocks)
			rng.Read(img[b*DeltaBlockSize : (b+1)*DeltaBlockSize])
		}
		imgs[e] = img
	}
	return imgs
}

func TestPipelineRoundTripOverDisk(t *testing.T) {
	p, st := pipeStore(t, 4)
	imgs := epochImages(t, 10, 16)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatalf("put #%d: %v", n, err)
		}
	}
	// Every slot holds a record envelope, not a raw image.
	for n := range imgs {
		env, _, err := st.Get(1, 0, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		if !IsRecord(env) {
			t.Fatalf("slot #%d is not a record envelope", n)
		}
	}
	// Cadence 4: fulls at 0, 4, 8 — the rest are deltas.
	stats := p.Stats()
	if stats.Fulls != 3 || stats.Deltas != 7 {
		t.Errorf("fulls/deltas = %d/%d, want 3/7", stats.Fulls, stats.Deltas)
	}
	if stats.StoredBytes >= stats.RawBytes/2 {
		t.Errorf("stored %d bytes of %d raw: no incremental savings", stats.StoredBytes, stats.RawBytes)
	}
	// Every epoch reconstructs exactly, full or mid-chain.
	for n, want := range imgs {
		got, meta, err := p.Get(1, 0, uint64(n))
		if err != nil {
			t.Fatalf("get #%d: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("epoch #%d reconstructed wrong image", n)
		}
		if meta.Index != uint64(n) {
			t.Errorf("epoch #%d meta index = %d", n, meta.Index)
		}
	}
}

func TestPipelineShrinkAndGrow(t *testing.T) {
	p, _ := pipeStore(t, 8)
	sizes := []int{
		5*DeltaBlockSize + 123, // base
		3 * DeltaBlockSize,     // shrink to block boundary
		7*DeltaBlockSize + 1,   // grow past the base
		7 * DeltaBlockSize,     // shrink by one byte
	}
	rng := rand.New(rand.NewSource(3))
	var imgs [][]byte
	prev := []byte(nil)
	for _, sz := range sizes {
		img := make([]byte, sz)
		copy(img, prev)
		if sz > len(prev) {
			rng.Read(img[len(prev):])
		}
		imgs = append(imgs, img)
		prev = img
	}
	for n, img := range imgs {
		if err := p.Put(9, 2, uint64(n), img, nil); err != nil {
			t.Fatalf("put #%d: %v", n, err)
		}
	}
	if st := p.Stats(); st.Deltas != 3 {
		t.Errorf("deltas = %d, want 3 (resizes must stay on the chain)", st.Deltas)
	}
	for n, want := range imgs {
		got, _, err := p.Get(9, 2, uint64(n))
		if err != nil {
			t.Fatalf("get #%d: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("epoch #%d (len %d) reconstructed wrong image", n, len(want))
		}
	}
}

func TestPipelineIndexGapForcesFull(t *testing.T) {
	p, _ := pipeStore(t, 8)
	imgs := epochImages(t, 3, 8)
	if err := p.Put(2, 0, 0, imgs[0], nil); err != nil {
		t.Fatal(err)
	}
	// Index 2 does not follow 0: the delta chain cannot span the gap.
	if err := p.Put(2, 0, 2, imgs[1], nil); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Fulls != 2 || st.Deltas != 0 {
		t.Errorf("fulls/deltas = %d/%d, want 2/0 after an index gap", st.Fulls, st.Deltas)
	}
	got, _, err := p.Get(2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, imgs[1]) {
		t.Error("post-gap full record reconstructed wrong image")
	}
}

// removeSlot deletes the stored envelope of checkpoint n directly from the
// disk store, simulating a lost chain link.
func removeSlot(t *testing.T, st *Store, app wire.AppID, rank wire.Rank, n uint64) {
	t.Helper()
	if err := os.Remove(st.imgPath(app, rank, n)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(st.metaPath(app, rank, n)); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineBrokenChainTyped(t *testing.T) {
	p, st := pipeStore(t, 8)
	imgs := epochImages(t, 4, 8)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Remove a mid-chain delta record: epoch 3 builds on 2 builds on 1.
	removeSlot(t, st, 1, 0, 2)
	_, _, err := p.Get(1, 0, 3)
	if !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("err = %v, want ErrBrokenChain", err)
	}
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, must wrap ErrNoCheckpoint for the restart path", err)
	}
	// Epoch 1 is still intact below the break.
	if got, _, err := p.Get(1, 0, 1); err != nil || !bytes.Equal(got, imgs[1]) {
		t.Fatalf("epoch below the break must survive: %v", err)
	}
}

func TestPipelineMissingBlockTyped(t *testing.T) {
	p, st := pipeStore(t, 8)
	imgs := epochImages(t, 2, 8)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Remove one content block referenced by the delta record.
	env, _, err := st.Get(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := RecordRefs(env)
	if err != nil || len(refs) == 0 {
		t.Fatalf("delta record has no refs: %v", err)
	}
	if err := os.Remove(st.blockPath(refs[0].ID)); err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Get(1, 0, 1)
	if !errors.Is(err, ErrMissingBlock) {
		t.Fatalf("err = %v, want ErrMissingBlock", err)
	}
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, must wrap ErrNoCheckpoint", err)
	}
}

func TestPipelineCorruptBlockTyped(t *testing.T) {
	p, st := pipeStore(t, 8)
	imgs := epochImages(t, 2, 8)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatal(err)
		}
	}
	env, _, err := st.Get(1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := RecordRefs(env)
	if err != nil || len(refs) == 0 {
		t.Fatalf("delta record has no refs: %v", err)
	}
	// Substitute different content of the right length: unsealing succeeds,
	// the content-address check must catch it.
	bogus := make([]byte, refs[0].Len)
	for i := range bogus {
		bogus[i] = 0xEE
	}
	if err := os.WriteFile(st.blockPath(refs[0].ID), SealBlock(bogus), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Get(1, 0, 1)
	if !errors.Is(err, ErrMissingBlock) {
		t.Fatalf("err = %v, want ErrMissingBlock for substituted block", err)
	}
}

// countBlockFiles counts sealed blocks in the store's shared block dir.
func countBlockFiles(t *testing.T, st *Store) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(st.Dir(), "blocks"))
	if errors.Is(err, os.ErrNotExist) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".blk") {
			n++
		}
	}
	return n
}

func TestPipelineGCClampsToChainBase(t *testing.T) {
	p, st := pipeStore(t, 8)
	imgs := epochImages(t, 6, 8)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatal(err)
		}
	}
	// keepFrom=3 is a delta record; GC must clamp down to the chain's full
	// base (epoch 0) so the chain stays reconstructable.
	if err := p.GC(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	ns, err := st.List(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 6 || ns[0] != 0 {
		t.Fatalf("list after clamped GC = %v, want all six epochs kept", ns)
	}
	got, _, err := p.Get(1, 0, 5)
	if err != nil || !bytes.Equal(got, imgs[5]) {
		t.Fatalf("chain unreconstructable after clamped GC: %v", err)
	}
}

func TestPipelineGCCollectsSupersededChain(t *testing.T) {
	p, st := pipeStore(t, 4)
	imgs := epochImages(t, 8, 8)
	for n, img := range imgs {
		if err := p.Put(1, 0, uint64(n), img, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := countBlockFiles(t, st)
	if before == 0 {
		t.Fatal("no sealed blocks before GC")
	}
	// Epoch 4 is a full record (cadence 4): GC there drops the whole first
	// chain — records 0..3 and every block only they referenced.
	if err := p.GC(1, 0, 4); err != nil {
		t.Fatal(err)
	}
	ns, err := st.List(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 4 || ns[0] != 4 {
		t.Fatalf("list after GC = %v, want epochs 4..7", ns)
	}
	after := countBlockFiles(t, st)
	if after >= before {
		t.Errorf("block files %d -> %d: superseded chain's blocks not swept", before, after)
	}
	// No orphan links: every survivor must reconstruct from what remains.
	for n := 4; n < 8; n++ {
		got, _, err := p.Get(1, 0, uint64(n))
		if err != nil || !bytes.Equal(got, imgs[n]) {
			t.Fatalf("epoch #%d broken after GC: %v", n, err)
		}
	}
	// A fresh sweep finds nothing more: the live chain keeps all its blocks.
	if err := st.sweepBlocks(); err != nil {
		t.Fatal(err)
	}
	if again := countBlockFiles(t, st); again != after {
		t.Errorf("idempotent sweep removed %d more blocks", after-again)
	}
}

func TestPipelineCrossRankDedup(t *testing.T) {
	p, st := pipeStore(t, 8)
	img := epochImages(t, 1, 16)[0]
	if err := p.Put(1, 0, 0, img, nil); err != nil {
		t.Fatal(err)
	}
	blocksAfterRank0 := countBlockFiles(t, st)
	// Rank 1 checkpoints the identical image: zero new blocks hit the disk.
	if err := p.Put(1, 1, 0, img, nil); err != nil {
		t.Fatal(err)
	}
	if n := countBlockFiles(t, st); n != blocksAfterRank0 {
		t.Errorf("identical second rank added %d blocks", n-blocksAfterRank0)
	}
	got, _, err := p.Get(1, 1, 0)
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("rank 1 restore from deduplicated blocks: %v", err)
	}
}

func TestPipelineRawImagePassThrough(t *testing.T) {
	p, st := pipeStore(t, 8)
	// A pre-pipeline raw image in the slot must come back verbatim.
	raw := []byte("not a record envelope, just bytes")
	if err := st.Put(1, 0, 0, raw, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Get(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Error("raw image did not pass through the pipeline untouched")
	}
}

func TestSealedBlocksCompress(t *testing.T) {
	// The cold tier seals compressed: a zero block costs almost nothing.
	zero := make([]byte, DeltaBlockSize)
	sealed := SealBlock(zero)
	if len(sealed) >= DeltaBlockSize/8 {
		t.Errorf("zero block sealed to %d bytes", len(sealed))
	}
	back, err := UnsealBlock(sealed, DeltaBlockSize)
	if err != nil || !bytes.Equal(back, zero) {
		t.Fatalf("unseal: %v", err)
	}
	// Wrong expected length must error, not truncate.
	if _, err := UnsealBlock(sealed, DeltaBlockSize-1); err == nil {
		t.Error("unseal with wrong length succeeded")
	}
}
