package ckpt

import (
	"fmt"
	"sort"

	"starfish/internal/wire"
)

// Backend is the checkpoint-repository abstraction the C/R stack writes to
// and restarts from. The original system of the paper assumed one shared
// file system (the disk Store); making the repository pluggable lets an
// application choose, at submission time and next to its C/R protocol, where
// its checkpoint images live:
//
//   - StoreDisk: the on-disk Store — durable, shared, slow.
//   - StoreMemory: the replicated in-memory store (internal/rstore) — each
//     daemon holds a RAM shard and pushes k replicas to peers, so recovery
//     never touches a file system and survives node loss.
//   - StoreTiered: memory-first with asynchronous disk spill — RAM-speed
//     recovery with disk durability as the backstop.
//
// Implementations must be safe for concurrent use: every local application
// process of every application shares one backend instance per node.
type Backend interface {
	// Put stores checkpoint n of (app, rank): the encoded image and its
	// interval metadata (nil meta stores an empty Meta{Rank, Index}).
	Put(app wire.AppID, rank wire.Rank, n uint64, img []byte, meta *Meta) error
	// Get loads checkpoint n of (app, rank). Implementations may return an
	// image that references internal storage; callers must treat it as
	// read-only.
	Get(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error)
	// List returns the checkpoint indices available for (app, rank),
	// ascending.
	List(app wire.AppID, rank wire.Rank) ([]uint64, error)
	// Ranks returns the ranks that have at least one checkpoint for app.
	Ranks(app wire.AppID) ([]wire.Rank, error)
	// CommitLine atomically records a committed recovery line for app.
	CommitLine(app wire.AppID, line RecoveryLine) error
	// CommittedLine reads back the last committed recovery line for app, or
	// ErrNoCheckpoint if none was ever committed.
	CommittedLine(app wire.AppID) (RecoveryLine, error)
	// GC removes checkpoints of (app, rank) older than keepFrom.
	GC(app wire.AppID, rank wire.Rank, keepFrom uint64) error
	// DropApp removes every stored checkpoint of app.
	DropApp(app wire.AppID) error
}

// The disk store is the reference Backend implementation.
var _ Backend = (*Store)(nil)

// StoreKind selects a checkpoint storage backend for one application.
type StoreKind uint8

// The storage backends an application can select at submission time.
const (
	// StoreDisk is the on-disk repository (default; zero value decodes as
	// disk for compatibility with pre-backend specs).
	StoreDisk StoreKind = iota
	// StoreMemory is the replicated in-memory repository.
	StoreMemory
	// StoreTiered is memory-first with asynchronous disk spill.
	StoreTiered
)

func (k StoreKind) String() string {
	switch k {
	case StoreDisk:
		return "disk"
	case StoreMemory:
		return "memory"
	case StoreTiered:
		return "tiered"
	default:
		return fmt.Sprintf("ckpt.StoreKind(%d)", uint8(k))
	}
}

// EncodeLine serializes a recovery line; the format is shared by every
// Backend so commit records are portable between storage tiers.
func EncodeLine(line RecoveryLine) []byte {
	ranks := make([]wire.Rank, 0, len(line))
	for r := range line {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	w := wire.NewWriter(4 + 12*len(line))
	w.U32(uint32(len(line)))
	for _, r := range ranks {
		w.U32(uint32(r)).U64(line[r])
	}
	return w.Bytes()
}

// DecodeLine parses a recovery line written by EncodeLine.
func DecodeLine(b []byte) (RecoveryLine, error) {
	r := wire.NewReader(b)
	n := r.U32()
	line := make(RecoveryLine, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		rank := wire.Rank(r.U32())
		line[rank] = r.U64()
	}
	if r.Err() != nil {
		return nil, ErrBadImage
	}
	return line, nil
}
