package rstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"starfish/internal/chaosnet"
	"starfish/internal/ckpt"
	"starfish/internal/leakcheck"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

func addr(id wire.NodeID) string { return fmt.Sprintf("rs-n%d", id) }

// newCluster builds n stores on one shared fastnet and installs the full
// membership on each.
func newCluster(t *testing.T, fn *vni.Fastnet, n int, replicas int) map[wire.NodeID]*Store {
	t.Helper()
	stores := make(map[wire.NodeID]*Store, n)
	members := make([]wire.NodeID, 0, n)
	for i := 1; i <= n; i++ {
		id := wire.NodeID(i)
		members = append(members, id)
		s, err := New(Config{
			Node:      id,
			Transport: fn,
			Addr:      addr(id),
			PeerAddr:  addr,
			Replicas:  replicas,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatalf("New(node %d): %v", id, err)
		}
		stores[id] = s
		t.Cleanup(func() { s.Close() })
	}
	for _, s := range stores {
		s.UpdateView(members)
	}
	return stores
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPutGetLocal(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 3, 2)
	s := stores[1]

	img := bytes.Repeat([]byte{0xAB}, 1024)
	meta := &ckpt.Meta{Rank: 0, Index: 3, SentCounts: map[wire.Rank]uint64{1: 7}}
	if err := s.Put(1, 0, 3, img, meta); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, gm, err := s.Get(1, 0, 3)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("image mismatch: %d bytes", len(got))
	}
	if gm.Index != 3 || gm.SentCounts[1] != 7 {
		t.Fatalf("meta mismatch: %+v", gm)
	}
	ns, err := s.List(1, 0)
	if err != nil || len(ns) != 1 || ns[0] != 3 {
		t.Fatalf("List = %v, %v", ns, err)
	}
	if _, _, err := s.Get(1, 0, 99); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("Get missing = %v, want ErrNoCheckpoint", err)
	}
}

func TestReplicationToHolders(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 3, 2)
	s := stores[1]

	if err := s.Put(7, 2, 1, []byte("state"), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// The writer keeps a copy; each holder other than the writer got a push.
	holders := s.holdersLocked(7, 2)
	copies := 0
	for id, st := range stores {
		if st.Holds(7, 2, 1) {
			copies++
			if id != 1 {
				found := false
				for _, h := range holders {
					if h == id {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %d holds a copy but is not a holder %v", id, holders)
				}
			}
		}
	}
	if copies < 2 {
		t.Fatalf("want >= 2 in-memory copies, got %d", copies)
	}
	// The index reached every node, holder or not.
	for id, st := range stores {
		ns, err := st.List(7, 2)
		if err != nil || len(ns) != 1 || ns[0] != 1 {
			t.Fatalf("node %d List = %v, %v", id, ns, err)
		}
		rs, err := st.Ranks(7)
		if err != nil || len(rs) != 1 || rs[0] != 2 {
			t.Fatalf("node %d Ranks = %v, %v", id, rs, err)
		}
	}
}

func TestPeerFetchAfterWriterCrash(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 3, 2)
	writer := stores[1]

	img := bytes.Repeat([]byte{0x5A}, 64<<10)
	if err := writer.Put(9, 0, 5, img, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := writer.CommitLine(9, ckpt.RecoveryLine{0: 5}); err != nil {
		t.Fatalf("CommitLine: %v", err)
	}

	// Kill the writer: sever its network and close its store.
	fn.Crash(addr(1))
	writer.Close()
	survivors := []wire.NodeID{2, 3}
	for _, id := range survivors {
		stores[id].UpdateView(survivors)
	}

	// Some survivor holds a replica; any survivor can read it, fetching from
	// a peer when it is not a local holder.
	for _, id := range survivors {
		got, meta, err := stores[id].Get(9, 0, 5)
		if err != nil {
			t.Fatalf("node %d Get after crash: %v", id, err)
		}
		if !bytes.Equal(got, img) || meta.Index != 5 {
			t.Fatalf("node %d got wrong image/meta", id)
		}
		line, err := stores[id].CommittedLine(9)
		if err != nil || line[0] != 5 {
			t.Fatalf("node %d CommittedLine = %v, %v", id, line, err)
		}
	}
}

func TestViewChangeReReplicates(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 4, 2)
	writer := stores[1]

	if err := writer.Put(3, 1, 2, bytes.Repeat([]byte{1}, 4096), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	holders := writer.holdersLocked(3, 1)
	// Crash a non-writer holder so the image drops below k copies.
	var victim wire.NodeID
	for _, h := range holders {
		if h != 1 {
			victim = h
		}
	}
	if victim == 0 {
		// Both replica slots landed on the writer's node (k > live peers
		// should not happen with 4 nodes and k=2, but guard anyway).
		t.Skip("no non-writer holder to crash")
	}
	fn.Crash(addr(victim))
	stores[victim].Close()

	var next []wire.NodeID
	for id := range stores {
		if id != victim {
			next = append(next, id)
		}
	}
	for _, id := range next {
		stores[id].UpdateView(next)
	}

	// Re-replication restores k copies among survivors and the writer's
	// under-replication counter drains to zero.
	waitFor(t, "re-replication", func() bool {
		copies := 0
		for _, id := range next {
			if stores[id].Holds(3, 1, 2) {
				copies++
			}
		}
		return copies >= 2 && stores[1].Stats().UnderReplicated == 0
	})
}

// TestReReplicateAfterTwoViewChanges drives the store through two
// consecutive membership churns, each killing a replica holder. After each
// view change the surviving stores must restore every image to k live
// copies, and the data must still be fetchable — byte-identical — from a
// node that never held it.
func TestReReplicateAfterTwoViewChanges(t *testing.T) {
	leakcheck.Check(t, 0)
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 5, 3)
	writer := stores[1]

	const k = 3
	images := map[wire.Rank][]byte{
		0: bytes.Repeat([]byte{0x11}, 8<<10),
		1: bytes.Repeat([]byte{0x22}, 8<<10),
		2: bytes.Repeat([]byte{0x33}, 8<<10),
	}
	for r, img := range images {
		if err := writer.Put(6, r, 1, img, nil); err != nil {
			t.Fatalf("Put rank %d: %v", r, err)
		}
	}

	live := []wire.NodeID{1, 2, 3, 4, 5}
	for round := 1; round <= 2; round++ {
		// Kill a non-writer node that holds at least one of the images, so
		// the churn actually drops a replica.
		var victim wire.NodeID
		for _, id := range live {
			if id == 1 {
				continue
			}
			for r := range images {
				if stores[id].Holds(6, r, 1) {
					victim = id
					break
				}
			}
			if victim != 0 {
				break
			}
		}
		if victim == 0 {
			t.Fatalf("round %d: no non-writer holder to crash among %v", round, live)
		}
		fn.Crash(addr(victim))
		stores[victim].Close()

		var next []wire.NodeID
		for _, id := range live {
			if id != victim {
				next = append(next, id)
			}
		}
		live = next
		for _, id := range live {
			stores[id].UpdateView(live)
		}

		waitFor(t, fmt.Sprintf("re-replication after view change %d", round), func() bool {
			for r := range images {
				copies := 0
				for _, id := range live {
					if stores[id].Holds(6, r, 1) {
						copies++
					}
				}
				if copies < k {
					return false
				}
			}
			return writer.Stats().UnderReplicated == 0
		})
	}

	// Data intact: every image reads back byte-identical on every survivor,
	// including nodes fetching from a peer rather than a local copy.
	for _, id := range live {
		for r, img := range images {
			got, _, err := stores[id].Get(6, r, 1)
			if err != nil {
				t.Fatalf("node %d Get rank %d: %v", id, r, err)
			}
			if !bytes.Equal(got, img) {
				t.Fatalf("node %d rank %d: image corrupted after churn", id, r)
			}
		}
	}
}

// TestRequestsSurviveLossyLinks runs replication and peer fetches over a
// chaosnet link that drops and duplicates messages. Tag-matched replies,
// request timeouts, and per-attempt restaging must together hide the loss:
// the Put succeeds, replicas appear, and a peer fetch returns intact bytes.
func TestRequestsSurviveLossyLinks(t *testing.T) {
	leakcheck.Check(t, 0)
	net := chaosnet.New(vni.NewFastnet(0), 0xC0FFEE, chaosnet.Config{})
	defer net.Controller().Close()
	net.Controller().SetDefaultFaults(chaosnet.Faults{Drop: 0.15, Dup: 0.1})

	stores := make(map[wire.NodeID]*Store, 3)
	members := []wire.NodeID{1, 2, 3}
	for _, id := range members {
		s, err := New(Config{
			Node:           id,
			Transport:      net.Node(addr(id)),
			Addr:           addr(id),
			PeerAddr:       addr,
			Replicas:       2,
			RequestTimeout: 150 * time.Millisecond,
			RequestRetries: 6,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("New(node %d): %v", id, err)
		}
		stores[id] = s
		t.Cleanup(func() { s.Close() })
	}
	for _, s := range stores {
		s.UpdateView(members)
	}

	img := bytes.Repeat([]byte{0x77}, 32<<10)
	if err := stores[1].Put(8, 0, 1, img, nil); err != nil {
		t.Fatalf("Put over lossy links: %v", err)
	}
	waitFor(t, "replication over lossy links", func() bool {
		copies := 0
		for _, id := range members {
			if stores[id].Holds(8, 0, 1) {
				copies++
			}
		}
		return copies >= 2
	})
	// Fetch from whichever node is not a holder (or re-fetch via Evict).
	var reader *Store
	for _, id := range members {
		if !stores[id].Holds(8, 0, 1) {
			reader = stores[id]
			break
		}
	}
	if reader == nil {
		reader = stores[2]
		reader.Evict(8, 0, 1)
	}
	got, _, err := reader.Get(8, 0, 1)
	if err != nil {
		t.Fatalf("Get over lossy links: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("peer fetch over lossy links returned corrupted image")
	}
	st := net.Controller().Stats()
	if st.Drops == 0 {
		t.Fatalf("chaosnet injected no drops (stats %+v); test exercised nothing", st)
	}
}

func TestGCAndDropPropagate(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 3, 3)
	s := stores[1]

	for n := uint64(1); n <= 3; n++ {
		if err := s.Put(4, 0, n, []byte{byte(n)}, nil); err != nil {
			t.Fatalf("Put #%d: %v", n, err)
		}
	}
	if err := s.GC(4, 0, 3); err != nil {
		t.Fatalf("GC: %v", err)
	}
	for id, st := range stores {
		ns, _ := st.List(4, 0)
		if len(ns) != 1 || ns[0] != 3 {
			t.Fatalf("node %d after GC: List = %v", id, ns)
		}
		if st.Holds(4, 0, 1) || st.Holds(4, 0, 2) {
			t.Fatalf("node %d still holds collected images", id)
		}
	}
	if err := s.DropApp(4); err != nil {
		t.Fatalf("DropApp: %v", err)
	}
	for id, st := range stores {
		rs, _ := st.Ranks(4)
		if len(rs) != 0 {
			t.Fatalf("node %d after DropApp: Ranks = %v", id, rs)
		}
	}
}

func TestEvictRefetches(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 3, 2)
	s := stores[1]

	img := bytes.Repeat([]byte{7}, 2048)
	if err := s.Put(5, 0, 1, img, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Evict(5, 0, 1)
	if s.Holds(5, 0, 1) {
		t.Fatal("Evict left the local copy")
	}
	got, _, err := s.Get(5, 0, 1)
	if err != nil {
		t.Fatalf("Get after evict: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("refetched image mismatch")
	}
	if s.Stats().PeerFetches == 0 {
		t.Fatal("expected a peer fetch")
	}
}

func TestStatsCounters(t *testing.T) {
	fn := vni.NewFastnet(0)
	stores := newCluster(t, fn, 2, 2)
	s := stores[1]

	if err := s.Put(2, 0, 1, []byte("abcd"), nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st := s.Stats()
	if st.Images != 1 || st.Bytes != 4 {
		t.Fatalf("Stats images/bytes = %d/%d", st.Images, st.Bytes)
	}
	if st.Members != 2 || st.Replicas != 2 {
		t.Fatalf("Stats members/replicas = %d/%d", st.Members, st.Replicas)
	}
	if st.Pushes == 0 {
		t.Fatalf("Stats pushes = 0, want > 0")
	}
	if st.UnderReplicated != 0 {
		t.Fatalf("Stats under-replicated = %d, want 0", st.UnderReplicated)
	}
	if s := st.String(); s == "" {
		t.Fatal("Stats.String empty")
	}
	// GatherLine works over the store as a Backend from any member.
	if err := s.Put(2, 1, 1, []byte("efgh"), nil); err != nil {
		t.Fatalf("Put rank 1: %v", err)
	}
	line, err := ckpt.GatherLine(stores[2], 2)
	if err != nil {
		t.Fatalf("GatherLine on peer: %v", err)
	}
	if line[0] != 1 || line[1] != 1 {
		t.Fatalf("GatherLine = %v", line)
	}
}
