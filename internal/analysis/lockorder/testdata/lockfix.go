// Package lockfix is the lockorder golden fixture: lock classes acquired
// in conflicting orders across functions, with `// want` expectations on
// the reported witness positions.
package lockfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var (
	ga A
	gb B
	gc C
	gd D
	ge E
	gf F
)

// abPath and baPath acquire the A/B pair in opposite orders: a cycle. The
// diagnostic lands on the first witness in (from, to) order — the B
// acquisition under A.
func abPath() {
	ga.mu.Lock()
	gb.mu.Lock() // want "lock-order cycle among [lockfix.A.mu, lockfix.B.mu]"
	gb.mu.Unlock()
	ga.mu.Unlock()
}

func baPath() {
	gb.mu.Lock()
	ga.mu.Lock()
	ga.mu.Unlock()
	gb.mu.Unlock()
}

// lockD acquires D internally; cdPath reaches it while holding C, so the
// C -> D edge is interprocedural (witness names the callee).
func lockD() {
	gd.mu.Lock()
	gd.mu.Unlock()
}

func cdPath() {
	gc.mu.Lock()
	lockD() // want "lock-order cycle among [lockfix.C.mu, lockfix.D.mu]"
	gc.mu.Unlock()
}

func dcPath() {
	gd.mu.Lock()
	gc.mu.Lock()
	gc.mu.Unlock()
	gd.mu.Unlock()
}

// consistentOne/consistentTwo take the E/F pair in the same order
// everywhere: an edge, but no cycle, so nothing is reported.
func consistentOne() {
	ge.mu.Lock()
	gf.mu.Lock()
	gf.mu.Unlock()
	ge.mu.Unlock()
}

func consistentTwo() {
	ge.mu.Lock()
	defer ge.mu.Unlock() // deferred: E stays held to the end of the body
	gf.mu.Lock()
	gf.mu.Unlock()
}

// reentrant self-edges (same class; think two instances of one type) are
// deliberately not reported: that is recursion on an instance, not an
// order inversion between classes.
func reentrant(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
