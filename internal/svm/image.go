package svm

import (
	"bytes"
	"fmt"
)

// Image format: a 8-byte magic+tag header followed by sections written in
// the *native representation* of the checkpointing machine. The tag is the
// paper's "concise indication of what that representation is"; everything
// after it — counts and words alike — uses the tagged endianness and word
// length. Conversion happens entirely at decode (restart) time, so taking
// a checkpoint never pays conversion cost, matching [2].
//
//	magic   [5]byte  "SVMv1"
//	endian  u8       0=little, 1=big
//	word    u8       32 or 64
//	flags   u8       reserved (0)
//	pc, steps, halted, then counted sections:
//	code (op u8 + arg word each), stack, callstack, globals, mem, output
var imageMagic = [5]byte{'S', 'V', 'M', 'v', '1'}

// EncodeImage serializes the VM's complete state in its own architecture's
// native representation.
func (m *VM) EncodeImage() []byte {
	a := m.Arch
	size := m.ImageSize()
	buf := make([]byte, 0, size)
	buf = append(buf, imageMagic[:]...)
	buf = append(buf, byte(a.Order), byte(a.WordBits), 0)

	// Execution counters are metadata, not program values: they are stored
	// as fixed 32-bit quantities (in native byte order) so a long-running
	// computation's step count survives narrow-word machines.
	buf = a.putU32(buf, uint32(m.PC))
	buf = a.putU32(buf, uint32(m.Steps>>32))
	buf = a.putU32(buf, uint32(m.Steps))
	buf = a.putU32(buf, uint32(boolWord(m.Halted)))

	buf = a.putU32(buf, uint32(len(m.Code)))
	for _, in := range m.Code {
		buf = append(buf, byte(in.Op))
		buf = a.putWord(buf, in.Arg)
	}
	for _, sec := range [][]int64{m.Stack, m.CallStack, m.Globals, m.Mem, m.Output} {
		buf = a.putU32(buf, uint32(len(sec)))
		for _, v := range sec {
			buf = a.putWord(buf, v)
		}
	}
	return buf
}

// imageReader walks an image in its stored representation.
type imageReader struct {
	arch Arch
	buf  []byte
}

func (r *imageReader) word() (int64, error) {
	v, err := r.arch.getWord(r.buf)
	if err != nil {
		return 0, err
	}
	r.buf = r.buf[r.arch.wordBytes():]
	return v, nil
}

func (r *imageReader) u32() (uint32, error) {
	v, err := r.arch.getU32(r.buf)
	if err != nil {
		return 0, err
	}
	r.buf = r.buf[4:]
	return v, nil
}

func (r *imageReader) count() (int, error) {
	v, err := r.arch.getU32(r.buf)
	if err != nil {
		return 0, err
	}
	r.buf = r.buf[4:]
	if int(v) > len(r.buf) { // each element is at least one byte
		return 0, ErrBadImage
	}
	return int(v), nil
}

func (r *imageReader) byte() (byte, error) {
	if len(r.buf) < 1 {
		return 0, errShortImage
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

// ImageArch returns the architecture tag of an encoded image without
// decoding it.
func ImageArch(img []byte) (Arch, error) {
	if len(img) < 8 || !bytes.Equal(img[:5], imageMagic[:]) {
		return Arch{}, ErrBadImage
	}
	order := Endian(img[5])
	bits := int(img[6])
	if order > BigEndian || (bits != 32 && bits != 64) {
		return Arch{}, fmt.Errorf("%w: bad representation tag", ErrBadImage)
	}
	return Arch{Name: "image", Order: order, WordBits: bits}, nil
}

// DecodeImage reconstructs a VM from img for execution on target. When the
// image representation differs from target, every word is converted: byte
// order is swapped as needed and word length widened (sign-extension) or
// narrowed. Narrowing fails with ErrWordOverflow if any live value does not
// fit the target word, because the computation could not have produced that
// state on the target machine.
func DecodeImage(img []byte, target Arch) (*VM, error) {
	src, err := ImageArch(img)
	if err != nil {
		return nil, err
	}
	r := &imageReader{arch: src, buf: img[8:]}

	conv := func(v int64) (int64, error) {
		if !target.fits(v) {
			return 0, fmt.Errorf("%w: value %d into %d-bit word", ErrWordOverflow, v, target.WordBits)
		}
		return v, nil
	}

	pc, err := r.u32()
	if err != nil {
		return nil, err
	}
	stepsHi, err := r.u32()
	if err != nil {
		return nil, err
	}
	stepsLo, err := r.u32()
	if err != nil {
		return nil, err
	}
	halted, err := r.u32()
	if err != nil {
		return nil, err
	}

	m := &VM{
		Arch:   target,
		PC:     int(int32(pc)),
		Steps:  uint64(stepsHi)<<32 | uint64(stepsLo),
		Halted: halted != 0,
	}

	ncode, err := r.count()
	if err != nil {
		return nil, err
	}
	m.Code = make([]Instr, ncode)
	for i := range m.Code {
		op, err := r.byte()
		if err != nil {
			return nil, err
		}
		if Op(op) >= opCount {
			return nil, fmt.Errorf("%w: opcode %d", ErrBadInstrImage, op)
		}
		arg, err := r.word()
		if err != nil {
			return nil, err
		}
		if arg, err = conv(arg); err != nil {
			return nil, err
		}
		m.Code[i] = Instr{Op: Op(op), Arg: arg}
	}

	for _, dst := range []*[]int64{&m.Stack, &m.CallStack, &m.Globals, &m.Mem, &m.Output} {
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		sec := make([]int64, n)
		for i := range sec {
			v, err := r.word()
			if err != nil {
				return nil, err
			}
			if sec[i], err = conv(v); err != nil {
				return nil, err
			}
		}
		*dst = sec
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(r.buf))
	}
	return m, nil
}

// ImageSize returns the encoded size of the VM's state without encoding it.
func (m *VM) ImageSize() int {
	a := m.Arch
	words := len(m.Stack) + len(m.CallStack) + len(m.Globals) + len(m.Mem) + len(m.Output)
	// 8 header + 4 counters (u32) + 6 section counts (u32).
	return 8 + 4*4 + words*a.wordBytes() + 6*4 + len(m.Code)*(1+a.wordBytes())
}
