package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

// world builds n communicators for app 1 over a private fastnet.
func world(t *testing.T, n int) []*Comm {
	t.Helper()
	return worldCfg(t, n, func(*Config) {})
}

func worldCfg(t *testing.T, n int, mod func(*Config)) []*Comm {
	t.Helper()
	fn := vni.NewFastnet(0)
	nics := make([]*vni.NIC, n)
	addrs := make(map[wire.Rank]string, n)
	for i := 0; i < n; i++ {
		nic, err := vni.NewNIC(fn, fmt.Sprintf("rank%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		nics[i] = nic
		addrs[wire.Rank(i)] = nic.Addr()
		t.Cleanup(func() { nic.Close() })
	}
	comms := make([]*Comm, n)
	for i := 0; i < n; i++ {
		cfg := Config{App: 1, Rank: wire.Rank(i), Size: n, NIC: nics[i], Addrs: addrs}
		mod(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
		t.Cleanup(c.Close)
	}
	return comms
}

// runRanks runs fn concurrently on every rank and fails the test on error.
func runRanks(t *testing.T, comms []*Comm, fn func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(comms))
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			errs[i] = fn(c)
		}(i, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective deadlocked")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	comms := world(t, 2)
	go func() {
		comms[0].Send(1, 7, []byte("hello rank 1"))
	}()
	data, st, err := comms[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello rank 1" || st.Source != 0 || st.Tag != 7 {
		t.Errorf("data=%q st=%+v", data, st)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	comms := world(t, 3)
	go comms[1].Send(0, 5, []byte("from1"))
	go comms[2].Send(0, 9, []byte("from2"))
	seen := map[wire.Rank]string{}
	for i := 0; i < 2; i++ {
		data, st, err := comms[0].Recv(wire.AnyRank, wire.AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		seen[st.Source] = string(data)
	}
	if seen[1] != "from1" || seen[2] != "from2" {
		t.Errorf("seen = %v", seen)
	}
}

func TestTagSelectivity(t *testing.T) {
	comms := world(t, 2)
	comms[0].Send(1, 1, []byte("one"))
	comms[0].Send(1, 2, []byte("two"))
	// Receive tag 2 first even though tag 1 arrived first.
	data, _, err := comms[1].Recv(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Errorf("tag 2 recv = %q", data)
	}
	data, _, _ = comms[1].Recv(0, 1)
	if string(data) != "one" {
		t.Errorf("tag 1 recv = %q", data)
	}
}

func TestFIFOPerPair(t *testing.T) {
	comms := world(t, 2)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			comms[0].Send(1, 3, []byte{byte(i)})
		}
	}()
	for i := 0; i < n; i++ {
		data, _, err := comms[1].Recv(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("position %d: got %d", i, data[0])
		}
	}
}

func TestProbeAndIprobe(t *testing.T) {
	comms := world(t, 2)
	if _, ok := comms[1].Iprobe(wire.AnyRank, wire.AnyTag); ok {
		t.Error("Iprobe on empty queue reported a message")
	}
	comms[0].Send(1, 42, []byte("probe me"))
	st, err := comms[1].Probe(0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || st.Tag != 42 {
		t.Errorf("probe status = %+v", st)
	}
	// Probe must not consume.
	if _, ok := comms[1].Iprobe(0, 42); !ok {
		t.Error("message consumed by Probe")
	}
	data, _, _ := comms[1].Recv(0, 42)
	if string(data) != "probe me" {
		t.Errorf("recv after probe = %q", data)
	}
}

func TestIsendIrecvWaitTest(t *testing.T) {
	comms := world(t, 2)
	req := comms[1].Irecv(0, 8)
	if req.Test() {
		t.Error("Irecv completed before any send")
	}
	sreq := comms[0].Isend(1, 8, []byte("async"))
	if err := WaitAll(sreq); err != nil {
		t.Fatal(err)
	}
	data, st, err := req.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "async" || st.Tag != 8 {
		t.Errorf("data=%q st=%+v", data, st)
	}
	if !req.Test() {
		t.Error("Test false after Wait")
	}
}

func TestSendErrors(t *testing.T) {
	comms := world(t, 2)
	if err := comms[0].Send(5, 0, nil); !errors.Is(err, ErrBadRank) {
		t.Errorf("send to rank 5: %v", err)
	}
	if err := comms[0].Send(-1, 0, nil); !errors.Is(err, ErrBadRank) {
		t.Errorf("send to rank -1: %v", err)
	}
	big := make([]byte, wire.MaxPayload+1)
	if err := comms[0].Send(1, 0, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized send: %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	comms := world(t, 2)
	errc := make(chan error, 1)
	go func() {
		_, _, err := comms[1].Recv(0, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	comms[1].Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("recv after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := comms[1].Send(0, 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestDeadPeer(t *testing.T) {
	comms := world(t, 3)
	comms[0].SetDead(2)
	if err := comms[0].Send(2, 0, nil); !errors.Is(err, ErrPeerDead) {
		t.Errorf("send to dead: %v", err)
	}
	if _, _, err := comms[0].Recv(2, 0); !errors.Is(err, ErrPeerDead) {
		t.Errorf("recv from dead: %v", err)
	}
	alive := comms[0].Alive()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
		t.Errorf("alive = %v", alive)
	}
	// A blocked Recv naming the rank must unblock when it is marked dead.
	errc := make(chan error, 1)
	go func() {
		_, _, err := comms[1].Recv(2, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	comms[1].SetDead(2)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDead) {
			t.Errorf("blocked recv: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Recv did not observe peer death")
	}
}

func TestPauseSendsBlocksUntilResume(t *testing.T) {
	comms := world(t, 2)
	comms[0].PauseSends()
	var sent atomic.Bool
	go func() {
		comms[0].Send(1, 0, []byte("x"))
		sent.Store(true)
	}()
	time.Sleep(20 * time.Millisecond)
	if sent.Load() {
		t.Fatal("Send completed while paused")
	}
	comms[0].ResumeSends()
	if _, _, err := comms[1].Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	if !sent.Load() {
		t.Error("Send still blocked after resume")
	}
}

func TestCountsAndWaitDrained(t *testing.T) {
	comms := world(t, 2)
	for i := 0; i < 5; i++ {
		comms[0].Send(1, 0, []byte{byte(i)})
	}
	sc := comms[0].SentCounts()
	if sc[1] != 5 {
		t.Errorf("sent counts = %v", sc)
	}
	// WaitDrained completes once all 5 arrive, without consuming them.
	if err := comms[1].WaitDrained(map[wire.Rank]uint64{0: 5}); err != nil {
		t.Fatal(err)
	}
	rc := comms[1].RecvCounts()
	if rc[0] != 5 {
		t.Errorf("recv counts = %v", rc)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := comms[1].Recv(0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIntervalStamping(t *testing.T) {
	var deps []string
	var mu sync.Mutex
	comms := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 1 {
			cfg.OnReceive = func(src wire.Rank, iv uint64) {
				mu.Lock()
				deps = append(deps, fmt.Sprintf("%d@%d", src, iv))
				mu.Unlock()
			}
		}
	})
	comms[0].SetInterval(3)
	if comms[0].Interval() != 3 {
		t.Error("Interval roundtrip")
	}
	comms[0].Send(1, 0, []byte("x"))
	_, st, err := comms[1].Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Interval != 3 {
		t.Errorf("status interval = %d", st.Interval)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(deps) != 1 || deps[0] != "0@3" {
		t.Errorf("deps = %v", deps)
	}
}

func TestMarkersAndRecording(t *testing.T) {
	markerc := make(chan [2]uint64, 4)
	comms := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 1 {
			cfg.OnMarker = func(src wire.Rank, id uint64) {
				markerc <- [2]uint64{uint64(src), id}
			}
		}
	})
	// Rank 1 snapshots and starts recording channel 0->1, then rank 0
	// sends two data messages followed by its marker: both messages are
	// pre-marker channel state.
	comms[1].StartRecording(9, []wire.Rank{0})
	comms[0].Send(1, 0, []byte("in-flight-1"))
	comms[0].Send(1, 0, []byte("in-flight-2"))
	comms[0].SendMarker(1, 9)

	select {
	case m := <-markerc:
		if m[0] != 0 || m[1] != 9 {
			t.Errorf("marker = %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("marker never arrived")
	}
	if still := comms[1].StopRecordingFrom(0); still {
		t.Error("recording should be finished")
	}
	rec := comms[1].Recorded()
	if len(rec) != 2 || string(rec[0].Data) != "in-flight-1" || string(rec[1].Data) != "in-flight-2" {
		t.Fatalf("recorded = %+v", rec)
	}
	// Recorded messages are also delivered normally.
	for i := 0; i < 2; i++ {
		if _, _, err := comms[1].Recv(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// And can be re-injected on a restored incarnation.
	comms[1].InjectRecorded(rec, true)
	data, _, err := comms[1].Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "in-flight-1" {
		t.Errorf("replayed = %q", data)
	}
}

func TestMarkerIsFIFOWithData(t *testing.T) {
	// A message sent after the marker must not be recorded: marker and
	// data share the channel's FIFO order.
	var markerSeen atomic.Bool
	var late atomic.Bool
	comms := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 1 {
			cfg.OnMarker = func(wire.Rank, uint64) { markerSeen.Store(true) }
			cfg.OnReceive = func(wire.Rank, uint64) {
				if markerSeen.Load() {
					late.Store(true)
				}
			}
		}
	})
	comms[1].StartRecording(1, []wire.Rank{0})
	comms[0].Send(1, 0, []byte("pre"))
	comms[0].SendMarker(1, 1)
	comms[0].Send(1, 0, []byte("post"))
	// Drain both messages.
	comms[1].Recv(0, 0)
	comms[1].Recv(0, 0)
	if !markerSeen.Load() {
		t.Fatal("marker lost")
	}
	// The recording should only hold "pre"... but StopRecordingFrom is
	// the C/R module's job; simulate it reacting to the marker callback
	// ordering: since handle() runs on one goroutine per channel, the
	// post message was processed after the marker. We can't stop
	// recording from the callback here (test simplification), so check
	// the arrival order instead.
	if !late.Load() {
		t.Error("post-marker message was processed before the marker (FIFO violated)")
	}
}

func TestNewBadConfig(t *testing.T) {
	if _, err := New(Config{Rank: 0, Size: 0}); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := New(Config{Rank: 5, Size: 2}); err == nil {
		t.Error("rank out of range accepted")
	}
}

func TestStaleAppTrafficIgnored(t *testing.T) {
	fn := vni.NewFastnet(0)
	nicA, _ := vni.NewNIC(fn, "a", 0)
	nicB, _ := vni.NewNIC(fn, "b", 0)
	defer nicA.Close()
	defer nicB.Close()
	addrs := map[wire.Rank]string{0: "a", 1: "b"}
	c, err := New(Config{App: 2, Rank: 1, Size: 2, NIC: nicB, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A message from app 1 (previous incarnation) must be dropped.
	nicA.Send("b", &wire.Msg{Type: wire.TData, App: 1, Src: 0, Dst: 1})
	nicA.Send("b", &wire.Msg{Type: wire.TData, App: 2, Src: 0, Dst: 1, Payload: []byte("current")})
	data, _, err := c.Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "current" {
		t.Errorf("got %q", data)
	}
	if _, ok := c.Iprobe(wire.AnyRank, wire.AnyTag); ok {
		t.Error("stale message was queued")
	}
}

func TestHoldAndCut(t *testing.T) {
	comms := world(t, 3)
	// Two messages arrive and sit in the queue (pre-snapshot state).
	comms[1].Send(0, 0, []byte("pre-a"))
	comms[2].Send(0, 0, []byte("pre-b"))
	if err := comms[0].WaitDrained(map[wire.Rank]uint64{1: 1, 2: 1}); err != nil {
		t.Fatal(err)
	}
	// Rank 1's marker arrived: hold its channel, then more data arrives
	// from rank 1 (post-marker) and rank 2 (pre-marker).
	comms[0].HoldFrom(1)
	comms[1].Send(0, 0, []byte("post-1"))
	comms[2].Send(0, 0, []byte("inflight-2"))
	if err := comms[0].WaitDrained(map[wire.Rank]uint64{2: 2}); err != nil {
		t.Fatal(err)
	}
	// Give the held message time to arrive at the NIC and be diverted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		comms[0].mu.Lock()
		n := len(comms[0].held)
		comms[0].mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("held message never diverted")
		}
		time.Sleep(time.Millisecond)
	}

	// Snapshot: capture pending, record rank 2's channel, release rank 1.
	pending, _, _ := comms[0].Cut(1, []wire.Rank{2})
	if len(pending) != 3 { // pre-a, pre-b, inflight-2
		t.Fatalf("pending = %d messages: %+v", len(pending), pending)
	}
	// Post-snapshot: rank 2 sends channel-state message then (in the real
	// protocol) its marker.
	comms[2].Send(0, 0, []byte("channel-state"))
	// Consume everything; the released post-1 plus 4 others.
	got := map[string]bool{}
	for i := 0; i < 5; i++ {
		data, _, err := comms[0].Recv(wire.AnyRank, wire.AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		got[string(data)] = true
	}
	for _, want := range []string{"pre-a", "pre-b", "post-1", "inflight-2", "channel-state"} {
		if !got[want] {
			t.Errorf("missing %q in %v", want, got)
		}
	}
	comms[0].StopRecordingFrom(2)
	rec := comms[0].Recorded()
	if len(rec) != 1 || string(rec[0].Data) != "channel-state" {
		t.Errorf("recorded = %+v", rec)
	}
}
