package mgmt

import (
	"net"
	"strings"
	"testing"
	"time"

	"starfish/internal/apps"
	"starfish/internal/ckpt"
	"starfish/internal/cluster"
	"starfish/internal/daemon"
	"starfish/internal/proc"
)

// startServer brings up a cluster and a management listener on it.
func startServer(t *testing.T, nodes int) (*cluster.Cluster, string) {
	t.Helper()
	c, err := cluster.New(cluster.Options{Nodes: nodes, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := NewServer(c.AnyDaemon(), "sekrit")
	go srv.Serve(l)

	// Wait for full view so placements use every node.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(c.AnyDaemon().View().Members) == nodes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("view incomplete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c, l.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLoginRequired(t *testing.T) {
	_, addr := startServer(t, 1)
	c := dial(t, addr)
	if _, err := c.Do("APPS"); err == nil {
		t.Error("command before login succeeded")
	}
	if err := c.LoginAdmin("wrong"); err == nil {
		t.Error("bad password accepted")
	}
	if err := c.LoginAdmin("sekrit"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("APPS"); err != nil {
		t.Errorf("APPS after login: %v", err)
	}
}

func TestNodesListing(t *testing.T) {
	_, addr := startServer(t, 3)
	c := dial(t, addr)
	if err := c.LoginAdmin("sekrit"); err != nil {
		t.Fatal(err)
	}
	lines, err := c.Do("NODES")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 { // header + 3 nodes
		t.Fatalf("NODES = %v", lines)
	}
	if !strings.Contains(lines[0], "coordinator 1") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestSubmitAndStatusViaProtocol(t *testing.T) {
	cl, addr := startServer(t, 2)
	c := dial(t, addr)
	if err := c.LoginUser("alice"); err != nil {
		t.Fatal(err)
	}
	spec := proc.AppSpec{
		ID: 1, Name: apps.RingName, Args: apps.RingArgs(40), Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: proc.PolicyRestart,
	}
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	info, err := cl.WaitApp(1, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v (%s)", info.Status, info.Failure)
	}
	if info.Spec.Owner != "alice" {
		t.Errorf("owner = %q", info.Spec.Owner)
	}
	lines, err := c.Do("STATUS 1")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"app 1 ring", "status done", "rank 0 node", "rank 1 node"} {
		if !strings.Contains(joined, want) {
			t.Errorf("STATUS output missing %q:\n%s", want, joined)
		}
	}
}

func TestOwnershipEnforcement(t *testing.T) {
	cl, addr := startServer(t, 2)
	alice := dial(t, addr)
	if err := alice.LoginUser("alice"); err != nil {
		t.Fatal(err)
	}
	spec := proc.AppSpec{
		ID: 2, Name: apps.RingName, Args: apps.RingArgs(1 << 30), Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: proc.PolicyKill,
	}
	if err := alice.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitStatus(2, daemon.StatusRunning, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	bob := dial(t, addr)
	if err := bob.LoginUser("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Do("DELETE 2"); err == nil {
		t.Error("bob deleted alice's app")
	}
	if _, err := bob.Do("STATUS 2"); err == nil {
		t.Error("bob saw alice's app status")
	}
	// APPS hides foreign apps from users.
	lines, err := bob.Do("APPS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(lines, "\n"), "no applications") {
		t.Errorf("bob's APPS = %v", lines)
	}
	// Admin may delete anything.
	admin := dial(t, addr)
	if err := admin.LoginAdmin("sekrit"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Do("DELETE 2"); err != nil {
		t.Errorf("admin delete: %v", err)
	}
}

func TestUserCannotManageCluster(t *testing.T) {
	_, addr := startServer(t, 2)
	c := dial(t, addr)
	if err := c.LoginUser("mallory"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("DISABLE NODE 2"); err == nil {
		t.Error("user disabled a node")
	}
	if _, err := c.Do("SET scheduler fifo"); err == nil {
		t.Error("user set a cluster parameter")
	}
}

func TestParamsViaProtocol(t *testing.T) {
	_, addr := startServer(t, 1)
	c := dial(t, addr)
	if err := c.LoginAdmin("sekrit"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("SET queue.max 17"); err != nil {
		t.Fatal(err)
	}
	// Replication is asynchronous even on one node.
	deadline := time.Now().Add(10 * time.Second)
	for {
		lines, err := c.Do("GET queue.max")
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 1 && lines[0] == "17" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET = %v", lines)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckpointViaProtocol(t *testing.T) {
	cl, addr := startServer(t, 2)
	c := dial(t, addr)
	if err := c.LoginUser("alice"); err != nil {
		t.Fatal(err)
	}
	spec := proc.AppSpec{
		ID: 3, Name: apps.RingName, Args: apps.RingArgs(1 << 30), Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: proc.PolicyRestart,
	}
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitStatus(3, daemon.StatusRunning, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("CHECKPOINT 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitCommittedLine(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("DELETE 3"); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedCommands(t *testing.T) {
	_, addr := startServer(t, 1)
	c := dial(t, addr)
	if err := c.LoginAdmin("sekrit"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"FROBNICATE", "STATUS", "STATUS notanumber", "SUBMIT 1 ring",
		"ENABLE 3", "SUBMIT 1 ring x sfs portable restart 0 -",
		"SUBMIT 1 ring 2 bogus portable restart 0 -",
		"SUBMIT 1 ring 2 sfs bogus restart 0 -",
		"SUBMIT 1 ring 2 sfs portable bogus 0 -",
		"SUBMIT 1 ring 2 sfs portable restart 0 zz",
	} {
		if _, err := c.Do(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	// The session must still work afterwards.
	if _, err := c.Do("APPS"); err != nil {
		t.Errorf("session broken after errors: %v", err)
	}
}

func TestParsers(t *testing.T) {
	if p, err := ParseProtocol("cl"); err != nil || p != ckpt.ChandyLamport {
		t.Errorf("ParseProtocol(cl) = %v, %v", p, err)
	}
	if p, err := ParseProtocol("independent"); err != nil || p != ckpt.Independent {
		t.Errorf("ParseProtocol = %v, %v", p, err)
	}
	if _, err := ParseProtocol("x"); err == nil {
		t.Error("bad protocol accepted")
	}
	if e, err := ParseEncoder("vm"); err != nil || e != ckpt.Portable {
		t.Errorf("ParseEncoder(vm) = %v, %v", e, err)
	}
	if _, err := ParseEncoder("x"); err == nil {
		t.Error("bad encoder accepted")
	}
	if p, err := ParsePolicy("notify"); err != nil || p != proc.PolicyNotify {
		t.Errorf("ParsePolicy = %v, %v", p, err)
	}
	if _, err := ParsePolicy("x"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestQuit(t *testing.T) {
	_, addr := startServer(t, 1)
	c := dial(t, addr)
	if _, err := c.Do("QUIT"); err != nil {
		t.Fatal(err)
	}
}
