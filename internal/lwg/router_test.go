package lwg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starfish/internal/gcs"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// The router property test simulates the daemon layer around a set of
// Routers: a single totally-ordered "main stream" (the bus) carries the
// OpJoin announces exactly as main-group casts would, and each node's
// harness applies them in order. The properties checked, per app and per
// member: every scoped cast is delivered exactly once, and every member
// settles on the same final stream view.

// mainMsg is one simulated main-group cast.
type mainMsg struct {
	op   OpKind
	app  wire.AppID
	node wire.NodeID
	addr string // creator contact for OpJoin
	body string // payload for OpCast (fallback path)
}

// rtHarness wires n routers to one fastnet plus the simulated main bus.
type rtHarness struct {
	t       *testing.T
	nodes   []wire.NodeID
	routers map[wire.NodeID]*Router
	apps    map[wire.AppID][]wire.NodeID

	bus chan mainMsg

	mu    sync.Mutex
	seen  map[wire.NodeID]map[wire.AppID]map[string]int // node -> app -> payload -> count
	joins map[wire.AppID]map[wire.NodeID]bool           // announced OpJoins (any node's view: total order)
	views map[wire.NodeID]map[wire.AppID]gcs.View       // latest stream view per node per app

	stop chan struct{}
	wg   sync.WaitGroup
}

func newRtHarness(t *testing.T, n int, apps map[wire.AppID][]wire.NodeID) *rtHarness {
	t.Helper()
	fn := vni.NewFastnet(0)
	h := &rtHarness{
		t:       t,
		routers: make(map[wire.NodeID]*Router),
		apps:    apps,
		bus:     make(chan mainMsg, 4096),
		seen:    make(map[wire.NodeID]map[wire.AppID]map[string]int),
		joins:   make(map[wire.AppID]map[wire.NodeID]bool),
		views:   make(map[wire.NodeID]map[wire.AppID]gcs.View),
		stop:    make(chan struct{}),
	}
	for i := 1; i <= n; i++ {
		id := wire.NodeID(i)
		h.nodes = append(h.nodes, id)
		h.seen[id] = make(map[wire.AppID]map[string]int)
		h.views[id] = make(map[wire.AppID]gcs.View)
		r := NewRouter(RouterConfig{
			Self:      id,
			Transport: fn,
			GroupAddr: func(app wire.AppID, gen uint32) string {
				return fmt.Sprintf("lwg-a%d-g%d-n%d", app, gen, id)
			},
			HeartbeatEvery: 2 * time.Millisecond,
			FailAfter:      20 * time.Millisecond,
		})
		h.routers[id] = r
		h.wg.Add(1)
		go h.pumpRouter(id, r)
	}
	h.wg.Add(1)
	go h.pumpBus()
	t.Cleanup(func() {
		for _, r := range h.routers {
			r.Close()
		}
		close(h.stop)
		h.wg.Wait()
	})
	return h
}

// pumpRouter drains one router's merged group events.
func (h *rtHarness) pumpRouter(id wire.NodeID, r *Router) {
	defer h.wg.Done()
	for ge := range r.Events() {
		switch ge.Ev.Kind {
		case gcs.ECast:
			h.record(id, ge.App, string(ge.Ev.Payload))
		case gcs.EView:
			h.mu.Lock()
			h.views[id][ge.App] = ge.Ev.View
			h.mu.Unlock()
		}
	}
}

// pumpBus applies the totally ordered main stream: SetContact fan-out for
// OpJoin, scoped fallback delivery for OpCast.
func (h *rtHarness) pumpBus() {
	defer h.wg.Done()
	for {
		select {
		case m := <-h.bus:
			switch m.op {
			case OpJoin:
				h.mu.Lock()
				if h.joins[m.app] == nil {
					h.joins[m.app] = make(map[wire.NodeID]bool)
				}
				h.joins[m.app][m.node] = true
				h.mu.Unlock()
				if m.addr != "" {
					for _, id := range h.nodes {
						h.routers[id].SetContact(m.app, 1, m.addr)
					}
				}
			case OpCast:
				// Receiver-side scoping, like Manager.HandleOp does for
				// main-stream casts.
				for _, member := range h.apps[m.app] {
					h.record(member, m.app, m.body)
				}
			}
		case <-h.stop:
			return
		}
	}
}

func (h *rtHarness) record(node wire.NodeID, app wire.AppID, payload string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen[node] == nil {
		return // crashed node: deliveries after close are not asserted on
	}
	byApp := h.seen[node]
	if byApp[app] == nil {
		byApp[app] = make(map[string]int)
	}
	byApp[app][payload]++
}

// ensureAll starts every member's endpoint for every app and waits until
// all OpJoins appeared on the bus (the daemon's maybeStart gate).
func (h *rtHarness) ensureAll() {
	h.t.Helper()
	for app, members := range h.apps {
		app, members := app, members
		for _, node := range members {
			node := node
			h.routers[node].Ensure(app, 1, members, func(gcsAddr string) {
				h.bus <- mainMsg{op: OpJoin, app: app, node: node, addr: gcsAddr}
			})
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		h.mu.Lock()
		for app, members := range h.apps {
			for _, node := range members {
				if !h.joins[app][node] {
					done = false
				}
			}
		}
		h.mu.Unlock()
		if done {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatal("timed out waiting for all OpJoin announces")
		}
		time.Sleep(time.Millisecond)
	}
}

// castAll sends k tagged casts per member per app, in a seed-shuffled
// order, routing through the stream with main-path fallback.
func (h *rtHarness) castAll(seed uint64, k int, round string, members func(wire.AppID) []wire.NodeID) {
	h.t.Helper()
	type job struct {
		app  wire.AppID
		node wire.NodeID
		i    int
	}
	var jobs []job
	for app := range h.apps {
		for _, node := range members(app) {
			for i := 0; i < k; i++ {
				jobs = append(jobs, job{app, node, i})
			}
		}
	}
	// Deterministic shuffle: interleaving differs per seed.
	rng := seed*6364136223846793005 + 1442695040888963407
	for i := len(jobs) - 1; i > 0; i-- {
		rng = rng*6364136223846793005 + 1442695040888963407
		j := int((rng >> 33) % uint64(i+1))
		jobs[i], jobs[j] = jobs[j], jobs[i]
	}
	for _, jb := range jobs {
		payload := fmt.Sprintf("%s-a%d-n%d-%d", round, jb.app, jb.node, jb.i)
		if err := h.routers[jb.node].Cast(jb.app, 1, []byte(payload)); err != nil {
			// No stream on this node: the daemon would fall back to an
			// OpCast on the main group. Exactly one path per cast.
			h.bus <- mainMsg{op: OpCast, app: jb.app, node: jb.node, body: payload}
		}
	}
}

// waitExactlyOnce blocks until every member of every app saw every
// expected payload of the round, then asserts none arrived twice.
func (h *rtHarness) waitExactlyOnce(k int, round string, members func(wire.AppID) []wire.NodeID) {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		missing := ""
		h.mu.Lock()
		for app := range h.apps {
			ms := members(app)
			for _, receiver := range ms {
				for _, sender := range ms {
					for i := 0; i < k; i++ {
						payload := fmt.Sprintf("%s-a%d-n%d-%d", round, app, sender, i)
						if h.seen[receiver][app][payload] == 0 {
							missing = fmt.Sprintf("node %d app %d payload %s", receiver, app, payload)
						}
					}
				}
			}
		}
		h.mu.Unlock()
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("cast never delivered: %s", missing)
		}
		time.Sleep(time.Millisecond)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for app := range h.apps {
		ms := members(app)
		for _, receiver := range ms {
			for payload, n := range h.seen[receiver][app] {
				if n > 1 {
					h.t.Fatalf("node %d app %d: payload %q delivered %d times", receiver, app, payload, n)
				}
			}
		}
	}
}

// waitViewAgreement blocks until every listed member's latest stream view
// for every app has exactly the expected member set, then asserts the
// views agree (same id, coordinator, members).
func (h *rtHarness) waitViewAgreement(members func(wire.AppID) []wire.NodeID) {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		h.mu.Lock()
		for app := range h.apps {
			ms := members(app)
			var ref gcs.View
			for i, node := range ms {
				v := h.views[node][app]
				if !sameIDs(v.Members, ms) {
					ok = false
					break
				}
				if i == 0 {
					ref = v
				} else if v.ID != ref.ID || v.Coord != ref.Coord {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		h.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			h.mu.Lock()
			state := fmt.Sprintf("%v", h.views)
			h.mu.Unlock()
			h.t.Fatalf("stream views never converged: %s", state)
		}
		time.Sleep(time.Millisecond)
	}
}

func sameIDs(a, b []wire.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[wire.NodeID]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, x := range b {
		if !in[x] {
			return false
		}
	}
	return true
}

func without(ms []wire.NodeID, gone wire.NodeID) []wire.NodeID {
	var out []wire.NodeID
	for _, m := range ms {
		if m != gone {
			out = append(out, m)
		}
	}
	return out
}

// TestRouterPropertySeeded is the concurrent-streams property test: four
// apps with overlapping member sets run independent sequencer streams on
// four nodes; every member must agree on every stream view and deliver
// every scoped cast exactly once — including across a member crash whose
// verdict arrives from the (simulated) main group, which for app 5 kills
// the stream's own coordinator.
func TestRouterPropertySeeded(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			apps := map[wire.AppID][]wire.NodeID{
				1: {1, 2, 3, 4},
				2: {1, 2},
				3: {2, 3, 4},
				5: {1, 2, 4}, // Creator(5, {1,2,4}) == 4: the crash below kills its coordinator
			}
			h := newRtHarness(t, 4, apps)
			h.ensureAll()

			all := func(app wire.AppID) []wire.NodeID { return apps[app] }
			h.castAll(seed, 20, "r1", all)
			h.waitExactlyOnce(20, "r1", all)
			h.waitViewAgreement(all)

			// Crash node 4; the main group's verdict flows in via ReportDead.
			victim := wire.NodeID(4)
			h.mu.Lock()
			delete(h.seen, victim) // stop asserting on the dead node's deliveries
			h.mu.Unlock()
			h.routers[victim].Close()
			for _, id := range h.nodes {
				if id != victim {
					h.routers[id].ReportDead(victim)
				}
			}

			survivors := func(app wire.AppID) []wire.NodeID { return without(apps[app], victim) }
			h.waitViewAgreement(survivors)
			h.castAll(seed+7, 10, "r2", survivors)
			h.waitExactlyOnce(10, "r2", survivors)
		})
	}
}
