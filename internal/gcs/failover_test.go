package gcs

import (
	"fmt"
	"testing"
	"time"

	"starfish/internal/chaosnet"
	"starfish/internal/leakcheck"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

func TestSequentialCrashesDownToQuorum(t *testing.T) {
	fn, eps := testGroup(t, 5)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4, 5)
	}
	// Crash 4 then 5: each removal keeps a majority of the then-current
	// view (4/5, then 3/4).
	fn.Crash("node4")
	go eps[3].Close()
	for _, ep := range []*Endpoint{eps[0], eps[1], eps[2], eps[4]} {
		waitForView(t, ep, 1, 2, 3, 5)
	}
	fn.Crash("node5")
	go eps[4].Close()
	for _, ep := range eps[:3] {
		waitForView(t, ep, 1, 2, 3)
	}
	// The group still sequences casts.
	if err := eps[2].Cast([]byte("post-crashes")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[:3] {
		e := nextEvent(t, ep)
		if e.Kind != ECast || string(e.Payload) != "post-crashes" {
			t.Errorf("node %d: %+v", ep.Node(), e)
		}
	}
}

func TestQuorumHoldsBackMinorityCoordinator(t *testing.T) {
	// In a 4-member group, the coordinator loses contact with 2 members
	// at once (they crash). 2 of 4 is not a strict majority, so no view
	// may be installed while both are suspected... but these members are
	// genuinely dead, so the group must NOT be stuck forever either —
	// quorum rules trade availability for safety only while the suspicion
	// set is too large. Here we verify the safe half: with half the view
	// gone, the survivors install no new view (they wait).
	fn, eps := testGroup(t, 4)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	fn.Crash("node3")
	fn.Crash("node4")
	go eps[2].Close()
	go eps[3].Close()

	// Give the failure detector ample time; no view with fewer members
	// than quorum may appear.
	timeout := time.After(300 * time.Millisecond)
	for {
		select {
		case e := <-eps[0].Events():
			if e.Kind == EView && len(e.View.Members) < 3 {
				t.Fatalf("minority view installed: %v", e.View)
			}
		case <-timeout:
			return // held back, as required
		}
	}
}

func TestJoinAfterCrashReusesGroup(t *testing.T) {
	fn, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	fn.Crash("node3")
	go eps[2].Close()
	for _, ep := range eps[:2] {
		waitForView(t, ep, 1, 2)
	}
	// A new node (fresh id) joins the surviving group.
	ep4, err := Join(Config{
		Node: 4, Transport: fn, Addr: "node4b", Contact: "node1",
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep4.Close()
	for _, ep := range []*Endpoint{eps[0], eps[1], ep4} {
		waitForView(t, ep, 1, 2, 4)
	}
	if err := ep4.Cast([]byte("newcomer")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[0])
	if e.Kind != ECast || e.From != 4 {
		t.Errorf("%+v", e)
	}
}

func TestChurnManyCastsAcrossViewChanges(t *testing.T) {
	// Casts issued continuously while members leave must keep total order
	// among the survivors.
	_, eps := testGroup(t, 4)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			eps[1].Cast([]byte(fmt.Sprintf("m%d", i)))
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	eps[3].Leave()
	time.Sleep(10 * time.Millisecond)
	eps[2].Leave()
	time.Sleep(20 * time.Millisecond)
	close(stop)

	// Drain both survivors; their cast sequences must be identical.
	collect := func(ep *Endpoint) []string {
		var out []string
		for {
			select {
			case e := <-ep.Events():
				if e.Kind == ECast {
					out = append(out, string(e.Payload))
				}
			case <-time.After(200 * time.Millisecond):
				return out
			}
		}
	}
	s0 := collect(eps[0])
	s1 := collect(eps[1])
	n := min(len(s0), len(s1))
	for i := 0; i < n; i++ {
		if s0[i] != s1[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, s0[i], s1[i])
		}
	}
	if n == 0 {
		t.Fatal("no casts delivered")
	}
}

func TestHasQuorum(t *testing.T) {
	cases := []struct {
		remaining, total int
		want             bool
	}{
		{1, 1, true}, {1, 2, true}, {0, 2, false},
		{2, 3, true}, {1, 3, false},
		{3, 4, true}, {2, 4, false},
		{3, 5, true}, {2, 5, false},
	}
	for _, c := range cases {
		if got := hasQuorum(c.remaining, c.total); got != c.want {
			t.Errorf("hasQuorum(%d, %d) = %v, want %v", c.remaining, c.total, got, c.want)
		}
	}
}

func TestStateTransferReflectsLatestState(t *testing.T) {
	// The coordinator's StateProvider is consulted at join time, so a
	// joiner sees state that includes all casts sequenced before its
	// view.
	fn := vni.NewFastnet(0)
	state := []byte("v1")
	a, err := Join(Config{
		Node: 1, Transport: fn, Addr: "st1",
		HeartbeatEvery: 5 * time.Millisecond,
		StateProvider:  func() []byte { return state },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	nextEvent(t, a)
	state = []byte("v2") // coordinator state evolves

	b, err := Join(Config{
		Node: 2, Transport: fn, Addr: "st2", Contact: "st1",
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	e := nextEvent(t, b)
	if string(e.State) != "v2" {
		t.Errorf("joiner state = %q, want v2", e.State)
	}
}

func TestSendAfterViewShrink(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	eps[2].Leave()
	waitForView(t, eps[0], 1, 2)
	// Point-to-point to the departed member fails cleanly.
	if err := eps[0].Send(wire.NodeID(3), []byte("x")); err != ErrNoMember {
		t.Errorf("Send to departed member: %v, want ErrNoMember", err)
	}
	// Point-to-point among survivors still works.
	if err := eps[0].Send(2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[1])
	for e.Kind != ESend {
		e = nextEvent(t, eps[1])
	}
	if string(e.Payload) != "alive" {
		t.Errorf("payload = %q", e.Payload)
	}
}

// TestHeartbeatDuringElectionAbortsSync reproduces the mid-election revival
// bug: members 2 and 3 lose the coordinator's heartbeats (one-way partition,
// so the coordinator still hears them and removes nobody), member 2 starts a
// failover sync, and the partition heals while member 3's sync response is
// still in flight (injected 60ms delay). The coordinator's fresh heartbeat
// must abort the election; before the fix the delayed response completed the
// sync and installed a spurious view {2,3} that split the group.
func TestHeartbeatDuringElectionAbortsSync(t *testing.T) {
	leakcheck.Check(t, 0)
	const hb = 10 * time.Millisecond
	net := chaosnet.New(vni.NewFastnet(0), 0xE1EC, chaosnet.Config{})
	ctl := net.Controller()

	mk := func(i int, failAfter time.Duration, misses int) *Endpoint {
		cfg := Config{
			Node:               wire.NodeID(i),
			Transport:          net.Node(fmt.Sprintf("node%d", i)),
			Addr:               fmt.Sprintf("node%d", i),
			HeartbeatEvery:     hb,
			FailAfter:          failAfter,
			SuspectAfterMisses: misses,
		}
		if i > 1 {
			cfg.Contact = "node1"
		}
		ep, err := Join(cfg)
		if err != nil {
			t.Fatalf("Join node%d: %v", i, err)
		}
		t.Cleanup(ep.Close)
		return ep
	}
	// The coordinator is given a long failure budget so the stalls this
	// test injects on the members never make IT remove anyone; members use
	// the tunable miss threshold (8 misses × 10ms = 80ms).
	eps := []*Endpoint{mk(1, 5*time.Second, 0), mk(2, 0, 8), mk(3, 0, 8)}
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}

	// Member 3's sync response to candidate 2 will arrive 60ms late —
	// after the heal below, but before candidate 2's sync round times out.
	ctl.SetLinkFaults("node3", "node2", chaosnet.Faults{DelayProb: 1, Delay: 6 * hb})
	// Cut coordinator→member heartbeats only.
	ctl.PartitionOneWay("node1", "node2")
	ctl.PartitionOneWay("node1", "node3")
	// Members suspect at ~80ms and member 2 starts its sync; heal at 110ms
	// so a fresh coordinator heartbeat lands mid-election.
	time.Sleep(11 * hb)
	ctl.Heal()
	// Let the delayed sync response land (~140-150ms) and any spurious
	// view change play out.
	time.Sleep(15 * hb)
	ctl.ClearFaults()

	// The group must be intact: a cast from the original coordinator
	// reaches everyone, and nobody saw a view change.
	if err := eps[0].Cast([]byte("still-one-group")); err != nil {
		t.Fatalf("cast after heal: %v", err)
	}
	for _, ep := range eps {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case e, ok := <-ep.Events():
				if !ok {
					t.Fatalf("node %d: events closed (excluded from group)", ep.Node())
				}
				if e.Kind == EView {
					t.Fatalf("node %d: spurious view change %v after mid-election heartbeat", ep.Node(), e.View)
				}
				if e.Kind == ECast && string(e.Payload) == "still-one-group" {
					goto next
				}
			case <-deadline:
				t.Fatalf("node %d: cast never delivered after healed election", ep.Node())
			}
		}
	next:
	}
}

// TestRetransRepairsDeliveryGap drops 30% of the coordinator's kDeliver
// traffic to member 2 and verifies the gap-repair path (kRetransReq +
// heartbeat sequence hints) still delivers every cast, in order.
func TestRetransRepairsDeliveryGap(t *testing.T) {
	leakcheck.Check(t, 0)
	net := chaosnet.New(vni.NewFastnet(0), 0xD407, chaosnet.Config{})
	mk := func(i int) *Endpoint {
		cfg := Config{
			Node:           wire.NodeID(i),
			Transport:      net.Node(fmt.Sprintf("node%d", i)),
			Addr:           fmt.Sprintf("node%d", i),
			HeartbeatEvery: 5 * time.Millisecond,
			// Lossy links need a forgiving miss threshold.
			SuspectAfterMisses: 40,
		}
		if i > 1 {
			cfg.Contact = "node1"
		}
		ep, err := Join(cfg)
		if err != nil {
			t.Fatalf("Join node%d: %v", i, err)
		}
		t.Cleanup(ep.Close)
		return ep
	}
	eps := []*Endpoint{mk(1), mk(2), mk(3)}
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	net.Controller().SetLinkFaults("node1", "node2", chaosnet.Faults{Drop: 0.3})

	const casts = 120
	go func() {
		for i := 0; i < casts; i++ {
			eps[0].Cast([]byte{byte(i)})
		}
	}()
	for _, ep := range eps {
		deadline := time.After(30 * time.Second)
		for got := 0; got < casts; {
			select {
			case e, ok := <-ep.Events():
				if !ok {
					t.Fatalf("node %d: events closed", ep.Node())
				}
				if e.Kind == EView {
					t.Fatalf("node %d: spurious view change %v under 30%% loss", ep.Node(), e.View)
				}
				if e.Kind != ECast {
					continue
				}
				if int(e.Payload[0]) != got {
					t.Fatalf("node %d: cast %d arrived out of order (want %d)", ep.Node(), e.Payload[0], got)
				}
				got++
			case <-deadline:
				t.Fatalf("node %d: stalled at %d/%d casts under loss", ep.Node(), got, casts)
			}
		}
	}
}
