// Package ckpt implements Starfish's checkpoint/restart machinery: the two
// checkpoint encoders (native process-level and portable VM-level), the
// on-disk checkpoint store, dependency tracking for uncoordinated
// checkpointing, and recovery-line computation.
//
// The distributed C/R protocols themselves (stop-and-sync, Chandy–Lamport,
// independent checkpointing) are driven by the C/R module of each
// application process (internal/proc) using the message kinds defined here;
// this package holds everything that is protocol-state-free.
package ckpt

import (
	"errors"
	"fmt"

	"starfish/internal/svm"
	"starfish/internal/wire"
)

// Kind selects a checkpoint encoder.
type Kind uint8

// Checkpoint kinds (§3.2.2 of the paper).
const (
	// Native is process-level (homogeneous) checkpointing: the dump
	// contains the whole runtime image — data, stack and heap segments of
	// the process, including the virtual machine's own state — and can
	// only be restored on an identical architecture.
	Native Kind = iota + 1
	// Portable is VM-level (heterogeneous) checkpointing: only the
	// virtual machine's *program* state is saved, in the checkpointing
	// machine's native representation with a representation tag, and it
	// is converted on restart (§4, [2]).
	Portable
)

func (k Kind) String() string {
	switch k {
	case Native:
		return "native"
	case Portable:
		return "portable"
	default:
		return fmt.Sprintf("ckpt.Kind(%d)", uint8(k))
	}
}

// Paper-measured empty-program checkpoint sizes (§5): the native dump of an
// empty program is 632 KB (it contains the run-time system's data, stack
// and heap plus the VM), while the VM-level dump is 260 KB. The encoders
// model those fixed runtime images with real bytes so that checkpoint-size
// and checkpoint-time measurements include them, preserving the paper's
// size relationship between figures 3 and 4.
const (
	// DefaultNativeRuntimeSize is the simulated process-level runtime
	// image (data+stack+heap segments of the run-time system, VM
	// included).
	DefaultNativeRuntimeSize = 632 << 10
	// DefaultVMHeaderSize is the simulated VM-level bookkeeping saved
	// with a portable dump (channel tables, module state — but not the
	// VM internals, which is why it is smaller).
	DefaultVMHeaderSize = 260 << 10
)

// Encoding/decoding errors.
var (
	ErrArchMismatch = errors.New("ckpt: native checkpoint taken on a different architecture")
	ErrBadImage     = errors.New("ckpt: malformed checkpoint image")
	ErrKindMismatch = errors.New("ckpt: image was written by a different encoder kind")
)

// Encoder turns application state bytes into a checkpoint image and back.
// The state bytes are opaque here: for SVM apps they are an svm image (the
// portable path converts representations by construction); for Go-native
// apps they are whatever the application's Marshal produced.
type Encoder interface {
	Kind() Kind
	// Encode wraps state into a checkpoint image taken on arch.
	Encode(state []byte, arch svm.Arch) ([]byte, error)
	// Decode unwraps a checkpoint image for restoration on arch,
	// returning the state bytes. Native images refuse foreign
	// architectures; portable images convert.
	Decode(img []byte, arch svm.Arch) ([]byte, error)
	// Overhead is the fixed image size of an empty program (the §5
	// checkpoint-size floor).
	Overhead() int
}

const (
	imgMagicNative   = 0xC0DE0001
	imgMagicPortable = 0xC0DE0002
)

// NativeEncoder is the homogeneous, process-level encoder.
type NativeEncoder struct {
	// RuntimeImageSize is the size of the simulated runtime segments
	// included in every dump; defaults to DefaultNativeRuntimeSize.
	RuntimeImageSize int
}

// Kind implements Encoder.
func (e *NativeEncoder) Kind() Kind { return Native }

// Overhead implements Encoder.
func (e *NativeEncoder) Overhead() int {
	if e.RuntimeImageSize > 0 {
		return e.RuntimeImageSize
	}
	return DefaultNativeRuntimeSize
}

// Encode implements Encoder. The image embeds the architecture tag, the
// simulated runtime segments, and the raw state.
func (e *NativeEncoder) Encode(state []byte, arch svm.Arch) ([]byte, error) {
	runtime := make([]byte, e.Overhead())
	// Deterministic fill: a real core dump is not zeros, and a
	// non-trivial pattern keeps the I/O path honest (no sparse-file or
	// zero-page shortcuts).
	for i := range runtime {
		runtime[i] = byte(i * 2654435761)
	}
	w := wire.NewWriter(32 + len(runtime) + len(state))
	w.U32(imgMagicNative)
	w.U8(uint8(arch.Order)).U8(uint8(arch.WordBits))
	w.Bytes32(runtime)
	w.Bytes32(state)
	return w.Bytes(), nil
}

// Decode implements Encoder.
func (e *NativeEncoder) Decode(img []byte, arch svm.Arch) ([]byte, error) {
	r := wire.NewReader(img)
	magic := r.U32()
	order, bits := svm.Endian(r.U8()), int(r.U8())
	r.Bytes32() // simulated runtime segments, discarded on restore
	state := r.Bytes32()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, ErrBadImage
	}
	if magic == imgMagicPortable {
		return nil, ErrKindMismatch
	}
	if magic != imgMagicNative {
		return nil, ErrBadImage
	}
	if order != arch.Order || bits != arch.WordBits {
		return nil, fmt.Errorf("%w: image %s/%d-bit, host %s/%d-bit",
			ErrArchMismatch, order, bits, arch.Order, arch.WordBits)
	}
	return append([]byte(nil), state...), nil
}

// PortableEncoder is the heterogeneous, VM-level encoder.
type PortableEncoder struct {
	// VMHeaderSize is the size of the simulated VM-level bookkeeping;
	// defaults to DefaultVMHeaderSize.
	VMHeaderSize int
}

// Kind implements Encoder.
func (e *PortableEncoder) Kind() Kind { return Portable }

// Overhead implements Encoder.
func (e *PortableEncoder) Overhead() int {
	if e.VMHeaderSize > 0 {
		return e.VMHeaderSize
	}
	return DefaultVMHeaderSize
}

// Encode implements Encoder. State is stored as-is: for SVM apps it is
// already in the machine's native representation with its own tag, which
// is what makes the portable path heterogeneous.
func (e *PortableEncoder) Encode(state []byte, arch svm.Arch) ([]byte, error) {
	header := make([]byte, e.Overhead())
	for i := range header {
		header[i] = byte(i * 40503)
	}
	w := wire.NewWriter(32 + len(header) + len(state))
	w.U32(imgMagicPortable)
	w.U8(uint8(arch.Order)).U8(uint8(arch.WordBits))
	w.Bytes32(header)
	w.Bytes32(state)
	return w.Bytes(), nil
}

// Decode implements Encoder. Any architecture may restore a portable image;
// representation conversion of the embedded state happens in the layer that
// understands it (svm.DecodeImage for VM apps).
func (e *PortableEncoder) Decode(img []byte, arch svm.Arch) ([]byte, error) {
	r := wire.NewReader(img)
	magic := r.U32()
	r.U8()      // origin order (informational)
	r.U8()      // origin word bits
	r.Bytes32() // VM-level header, consumed by svm.DecodeImage when needed
	state := r.Bytes32()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, ErrBadImage
	}
	if magic == imgMagicNative {
		return nil, ErrKindMismatch
	}
	if magic != imgMagicPortable {
		return nil, ErrBadImage
	}
	return append([]byte(nil), state...), nil
}

// ImageOrigin reports the architecture representation an image was taken
// on, for either encoder kind.
func ImageOrigin(img []byte) (svm.Arch, Kind, error) {
	r := wire.NewReader(img)
	magic := r.U32()
	order, bits := svm.Endian(r.U8()), int(r.U8())
	if r.Err() != nil {
		return svm.Arch{}, 0, ErrBadImage
	}
	var k Kind
	switch magic {
	case imgMagicNative:
		k = Native
	case imgMagicPortable:
		k = Portable
	default:
		return svm.Arch{}, 0, ErrBadImage
	}
	return svm.Arch{Name: "image-origin", Order: order, WordBits: bits}, k, nil
}
