package mpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

// TestSendRetriesAcrossPeerRestart verifies the crash-window semantics: a
// send to a peer whose NIC died blocks (retrying) rather than erroring,
// and completes once the peer comes back at the same address.
func TestSendRetriesAcrossPeerRestart(t *testing.T) {
	fn := vni.NewFastnet(0)
	nic0, err := vni.NewNIC(fn, "sr-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer nic0.Close()
	nic1, err := vni.NewNIC(fn, "sr-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[wire.Rank]string{0: "sr-0", 1: "sr-1"}
	c0, err := New(Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	// Establish the connection, then kill the peer's NIC.
	if err := c0.Send(1, 0, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	nic1.Close()
	fn.Crash("sr-1")

	var sendDone atomic.Bool
	go func() {
		// This send must stall, then succeed after the peer restarts.
		if err := c0.Send(1, 0, []byte("during-outage")); err == nil {
			sendDone.Store(true)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	if sendDone.Load() {
		t.Fatal("send completed while peer was down")
	}

	// Peer restarts at the same address (same incarnation).
	nic1b, err := vni.NewNIC(fn, "sr-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer nic1b.Close()
	c1, err := New(Config{App: 1, Rank: 1, Size: 2, NIC: nic1b, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	data, _, err := c1.Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "during-outage" {
		t.Errorf("got %q", data)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sendDone.Load() {
		if time.Now().After(deadline) {
			t.Fatal("send never completed after peer restart")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSendToDeadPeerAfterOutage verifies the other resolution: the runtime
// marks the rank dead and the stalled send fails with ErrPeerDead.
func TestSendToDeadPeerAfterOutage(t *testing.T) {
	fn := vni.NewFastnet(0)
	nic0, _ := vni.NewNIC(fn, "sd-0", 0)
	defer nic0.Close()
	nic1, _ := vni.NewNIC(fn, "sd-1", 0)
	addrs := map[wire.Rank]string{0: "sd-0", 1: "sd-1"}
	c0, err := New(Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c0.Send(1, 0, []byte("pre"))
	nic1.Close()
	fn.Crash("sd-1")

	errc := make(chan error, 1)
	go func() { errc <- c0.Send(1, 0, []byte("stalls")) }()
	time.Sleep(20 * time.Millisecond)
	c0.SetDead(1) // the daemon's view change arrives
	select {
	case err := <-errc:
		if !errors.Is(err, ErrPeerDead) {
			t.Errorf("err = %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled send never resolved")
	}
}

// TestCloseResolvesStalledSend: aborting the process (comm close) unblocks
// a send stalled on a dead link.
func TestCloseResolvesStalledSend(t *testing.T) {
	fn := vni.NewFastnet(0)
	nic0, _ := vni.NewNIC(fn, "sc-0", 0)
	defer nic0.Close()
	nic1, _ := vni.NewNIC(fn, "sc-1", 0)
	addrs := map[wire.Rank]string{0: "sc-0", 1: "sc-1"}
	c0, err := New(Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	c0.Send(1, 0, []byte("pre"))
	nic1.Close()
	fn.Crash("sc-1")

	errc := make(chan error, 1)
	go func() { errc <- c0.Send(1, 0, []byte("stalls")) }()
	time.Sleep(20 * time.Millisecond)
	c0.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled send never resolved")
	}
}

func TestStageTimerIntegration(t *testing.T) {
	timer := vni.NewStageTimer()
	comms := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 0 {
			cfg.Timer = timer
		}
	})
	for i := 0; i < 10; i++ {
		if err := comms[0].Send(1, 0, []byte("tick")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := comms[1].Recv(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if timer.Count(vni.StageMPISend) != 10 || timer.Count(vni.StageVNISend) != 10 {
		t.Errorf("send stages: mpi=%d vni=%d, want 10 each",
			timer.Count(vni.StageMPISend), timer.Count(vni.StageVNISend))
	}
	// Receive-side stages are recorded on the receiver, which has no
	// timer here; send a message the other way through a timed receiver.
	comms2 := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 1 {
			cfg.Timer = timer
		}
	})
	comms2[0].Send(1, 0, []byte("x"))
	if _, _, err := comms2[1].Recv(0, 0); err != nil {
		t.Fatal(err)
	}
	if timer.Count(vni.StageVNIRecv) == 0 || timer.Count(vni.StageMPIRecv) == 0 {
		t.Errorf("recv stages not recorded: vni=%d mpi=%d",
			timer.Count(vni.StageVNIRecv), timer.Count(vni.StageMPIRecv))
	}
}

func TestWaitAllAggregatesErrors(t *testing.T) {
	comms := world(t, 2)
	good := comms[0].Isend(1, 0, []byte("fine"))
	bad := comms[0].Isend(9, 0, []byte("bad rank"))
	if err := WaitAll(good, bad); !errors.Is(err, ErrBadRank) {
		t.Errorf("WaitAll error = %v, want ErrBadRank", err)
	}
	if _, _, err := comms[1].Recv(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSetCountsAndDuplicateSuppression(t *testing.T) {
	comms := world(t, 2)
	// Simulate a restored receiver that already consumed 2 messages from
	// rank 0.
	comms[1].SetCounts(nil, map[wire.Rank]uint64{0: 2})
	// Sender replays its log: seqs 1..3; the first two must be dropped.
	for seq := uint64(1); seq <= 3; seq++ {
		if err := comms[0].Replay(RecordedMsg{
			Dst: 1, Tag: 5, Data: []byte{byte(seq)}, Seq: seq, Interval: 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	data, st, err := comms[1].Recv(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 3 || st.Source != 0 {
		t.Errorf("got seq-%d message, want seq-3", data[0])
	}
	if _, ok := comms[1].Iprobe(wire.AnyRank, wire.AnyTag); ok {
		t.Error("duplicates were not suppressed")
	}
}

func TestSentLogCapture(t *testing.T) {
	comms := worldCfg(t, 2, func(cfg *Config) {
		if cfg.Rank == 0 {
			cfg.LogSends = true
		}
	})
	comms[0].SetInterval(4)
	comms[0].Send(1, 7, []byte("logged-a"))
	comms[0].Send(1, 8, []byte("logged-b"))
	log := comms[0].TakeSentLog()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Dst != 1 || log[0].Tag != 7 || log[0].Seq != 1 || log[0].Interval != 4 {
		t.Errorf("log[0] = %+v", log[0])
	}
	if log[1].Seq != 2 || string(log[1].Data) != "logged-b" {
		t.Errorf("log[1] = %+v", log[1])
	}
	// Taking clears.
	if len(comms[0].TakeSentLog()) != 0 {
		t.Error("TakeSentLog did not clear")
	}
	// Drain receiver.
	comms[1].Recv(0, 7)
	comms[1].Recv(0, 8)
}
