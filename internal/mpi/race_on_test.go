//go:build race

package mpi

// raceEnabled: under -race, sync.Pool randomly drops Puts to shake out
// lifetime bugs, so zero-miss steady-state assertions are skipped.
const raceEnabled = true
