package cluster

// The live-observability acceptance test: a `starfishctl tail`-equivalent
// client follows a cluster's event stream over real TCP while a seeded
// chaos soak kills a rank-hosting node underneath it. The stream must show
// the recovery story in sequence order — kill, suspicion, view change,
// restore — and a forced mid-stream disconnect must resume with
// `seq><last-seen>` replaying no duplicates and dropping no records.

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/evstore"
	"starfish/internal/leakcheck"
	"starfish/internal/mgmt"
)

const tailApp = chaosApp + 1

// errForceDrop is the sentinel a tail callback returns to simulate an
// abrupt client-side disconnect mid-stream.
var errForceDrop = errors.New("forced disconnect")

func TestTailUnderChaos(t *testing.T) {
	for _, seed := range []int64{0x7A110001, 0x7A110002} {
		t.Run(fmt.Sprintf("seed_%#x", seed), func(t *testing.T) {
			runTailUnderChaos(t, seed)
		})
	}
}

func runTailUnderChaos(t *testing.T, seed int64) {
	leakcheck.Check(t, 4)
	c, err := New(Options{
		Nodes:          4,
		StoreDir:       t.TempDir(),
		HeartbeatEvery: 10 * time.Millisecond,
		FailAfter:      600 * time.Millisecond,
		ChaosSeed:      seed,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	waitMainView(t, c, 4)

	// A management server on node 1 (the contact daemon, which survives
	// the kill), exactly as starfishd would run it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	//starfish:allow goleak server lives until the listener closes at cleanup
	go mgmt.NewServer(c.AnyDaemon(), "sekrit").Serve(l)
	addr := l.Addr().String()

	// The tail client runs concurrently with the soak. It follows the
	// whole stream (empty query), forces one abrupt disconnect the moment
	// the kill record arrives, resumes with seq><last-seen>, and stops
	// cleanly at the application's completion record.
	var (
		lines  []string
		last   uint64
		forced bool
	)
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		for attempt := 0; ; attempt++ {
			if attempt > 20 {
				t.Error("tail never reached the app-done record")
				return
			}
			tc, err := mgmt.Dial(addr)
			if err != nil {
				t.Errorf("tail dial: %v", err)
				return
			}
			if err := tc.LoginAdmin("sekrit"); err != nil {
				tc.Close()
				t.Errorf("tail login: %v", err)
				return
			}
			query := ""
			if last > 0 {
				query = fmt.Sprintf("seq>%d", last)
			}
			err = tc.Tail(query, func(line string) error {
				seq, ok := evstore.LineSeq(line)
				if !ok {
					t.Errorf("tail line without seq prefix: %q", line)
				}
				lines = append(lines, line)
				last = seq
				if !forced && strings.Contains(line, "kind=kill ") {
					forced = true
					return errForceDrop
				}
				if strings.Contains(line, "kind=app-done") {
					return mgmt.ErrStopTail
				}
				return nil
			})
			tc.Close()
			if err == nil {
				if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "kind=app-done") {
					// Server ended the stream (e.g. store closed) before
					// completion; that is a failure, not a retry.
					t.Errorf("tail stream ended early after %d lines", len(lines))
				}
				return
			}
			if !errors.Is(err, errForceDrop) {
				t.Errorf("tail: %v", err)
				return
			}
		}
	}()

	// The soak: same shape as the chaos kill scenario — ring job
	// checkpointing to the replicated memory store, node 3 (rank host)
	// killed after the first committed line.
	spec := ringSpec(tailApp, 3, chaosRounds())
	spec.CkptEverySteps = 1000
	spec.Store = ckpt.StoreMemory
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitCommittedLine(tailApp, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(tailApp, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
	select {
	case <-tailDone:
	case <-time.After(60 * time.Second):
		t.Fatal("tail did not finish after the app completed")
	}
	if t.Failed() {
		return
	}
	if !forced {
		t.Fatal("kill record never arrived, disconnect path untested")
	}

	// Sequence numbers must be strictly increasing across the disconnect:
	// no duplicates, no reordering.
	seqs := make([]uint64, len(lines))
	for i, l := range lines {
		seqs[i], _ = evstore.LineSeq(l)
		if i > 0 && seqs[i] <= seqs[i-1] {
			t.Fatalf("line %d: seq %d after %d (dup or reorder across reconnect)", i, seqs[i], seqs[i-1])
		}
	}

	// The recovery story reads in order: kill → suspicion → view change →
	// process restore.
	idx := func(after int, substr string) int {
		for i := after + 1; i < len(lines); i++ {
			if strings.Contains(lines[i], substr) {
				return i
			}
		}
		t.Fatalf("no %q record after line %d", substr, after)
		return -1
	}
	killIdx := idx(-1, "kind=kill ")
	suspectIdx := idx(killIdx, "component=gcs kind=suspect")
	vcIdx := idx(suspectIdx, "component=gcs kind=view-change")
	idx(vcIdx, "component=proc kind=restore")

	// No drops: the tailed lines are exactly the store's records up to the
	// last one seen, rendered identically.
	want := c.ContactEvents().Query(mustQuery(t, fmt.Sprintf("seq<=%d", last)))
	if len(want) != len(lines) {
		t.Fatalf("tailed %d lines, store has %d records up to seq %d", len(lines), len(want), last)
	}
	for i, r := range want {
		if lines[i] != r.String() {
			t.Fatalf("line %d diverges from store:\n  tail:  %s\n  store: %s", i, lines[i], r.String())
		}
	}
}

func mustQuery(t *testing.T, s string) *evstore.Query {
	t.Helper()
	q, err := evstore.ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
