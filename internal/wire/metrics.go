package wire

import "sync/atomic"

// Global per-type message counters, incremented by every transport and
// daemon-process link send in the system. They exist for the Table-1
// audit: a full application run can be accounted for by message type,
// demonstrating which traffic flows through the system (and, notably, that
// data volume dwarfs control volume). The counters are process-global and
// monotonic; benchmarks reset them around a run.
var msgCounts [typeCount]atomic.Uint64

// CountMsg records one sent message of type t.
func CountMsg(t Type) {
	if t.Valid() {
		msgCounts[t].Add(1)
	}
}

// MsgCounts returns a snapshot of the global per-type send counters,
// indexed by Type.
func MsgCounts() [8]uint64 {
	var out [8]uint64
	for t := TInvalid + 1; t < typeCount; t++ {
		out[t] = msgCounts[t].Load()
	}
	return out
}

// ResetMsgCounts zeroes the global counters.
func ResetMsgCounts() {
	for t := range msgCounts {
		msgCounts[t].Store(0)
	}
}
