// Package poolcheck enforces the wire.BufPool ownership discipline
// statically: a pooled buffer acquired in a function must reach exactly one
// release point — Release, Put/PutBuf, or an ownership-transferring send
// (SendOwned/IsendOwned) — on every local path, and must not be touched
// after it is given up.
//
// The checker is a flow-sensitive abstract interpreter over each function
// body. A local that receives the result of a pool acquire (wire.GetBuf,
// BufPool.Get/GetAlloc, wire.ReadMsgBuf) is tracked as Owned. Passing the
// value anywhere ownership could move — a call argument, a return value, a
// channel send, a struct/slice store, a closure capture, an alias — ends
// tracking conservatively (no report). Within the tracked region the
// checker reports:
//
//   - leak-on-return: a return (including falling off the end of the body)
//     while the local is still Owned and no deferred release covers it;
//   - double release: a second PutBuf/Put/SendOwned of the same buffer
//     (Msg.Release is documented idempotent on the same Msg value and is
//     exempt);
//   - use-after-release: any read of a released buffer, or of a released
//     message's Payload.
//
// The checker is interprocedural through Pass.Prog: calls into summarized
// program functions apply the callee's per-parameter ownership effects, so
// a helper that wraps wire.GetBuf is an acquire site, a helper that wraps
// PutBuf is a release site, and a helper that only inspects its argument
// leaves tracking intact instead of conservatively ending it.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"starfish/internal/analysis"
)

// Analyzer is the poolcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "enforce exactly-once release of wire.BufPool buffers on all local paths",
	Run:  run,
}

// The acquire/release/terminator fact tables live in the analysis package
// (PoolAcquires, PoolReleases, MsgRelease, Terminators), shared with the
// interprocedural summary builder.
var releases = analysis.PoolReleases

const msgRelease = analysis.MsgRelease

type status int

const (
	owned status = iota
	released
	maybe // differing states joined across branches: tracked but quiet
)

type varState struct {
	st             status
	kind           analysis.PoolAcquireSpec // msg or buf
	acquirePos     token.Pos
	acquireName    string // short callee name for messages
	releasePos     token.Pos
	releasedAtExit bool // a deferred release covers this var
}

type env struct {
	vars map[*types.Var]*varState
	dead bool
}

func newEnv() *env { return &env{vars: make(map[*types.Var]*varState)} }

func (e *env) clone() *env {
	c := newEnv()
	c.dead = e.dead
	for v, s := range e.vars {
		cp := *s
		c.vars[v] = &cp
	}
	return c
}

// join merges two branch outcomes. Vars missing from either side drop out
// (their scope ended or tracking stopped); differing statuses degrade to
// maybe, which suppresses reports downstream.
func join(a, b *env) *env {
	if a.dead {
		return b
	}
	if b.dead {
		return a
	}
	out := newEnv()
	for v, sa := range a.vars {
		sb, ok := b.vars[v]
		if !ok {
			continue
		}
		m := *sa
		if sa.st != sb.st {
			m.st = maybe
		}
		m.releasedAtExit = sa.releasedAtExit || sb.releasedAtExit
		out.vars[v] = &m
	}
	return out
}

func run(pass *analysis.Pass) error {
	ip := &interp{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					ip.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				ip.checkFunc(fn.Body)
			}
			return true
		})
	}
	return nil
}

type interp struct {
	pass *analysis.Pass
}

func (ip *interp) info() *types.Info { return ip.pass.TypesInfo }

func (ip *interp) checkFunc(body *ast.BlockStmt) {
	e := ip.stmt(body, newEnv())
	if !e.dead {
		ip.leakCheck(e, body.End())
	}
}

// leakCheck reports every still-Owned var at a function exit point.
func (ip *interp) leakCheck(e *env, at token.Pos) {
	for _, s := range e.vars {
		if s.st == owned && !s.releasedAtExit {
			ip.pass.Reportf(s.acquirePos,
				"pooled buffer from %s leaks on the return at %s: want exactly one Release/PutBuf/SendOwned on every path",
				s.acquireName, ip.pos(at))
		}
	}
}

func (ip *interp) pos(p token.Pos) string {
	pos := ip.pass.Fset.Position(p)
	return pos.String()
}

// ---- statements ----

func (ip *interp) stmt(s ast.Stmt, e *env) *env {
	if e.dead || s == nil {
		return e
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			e = ip.stmt(st, e)
		}
		return e
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			name := analysis.CalleeName(ip.info(), call)
			if _, ok := analysis.AcquireSpecFor(ip.info(), ip.pass.Prog, call); ok {
				ip.pass.Reportf(call.Pos(), "result of %s is discarded: the pooled buffer leaks immediately", shortCallee(ip.info(), call))
				ip.callArgs(call, e)
				return e
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				ip.expr(s.X, e, false)
				e.dead = true
				return e
			}
			if analysis.Terminators[name] {
				ip.expr(s.X, e, false)
				e.dead = true
				return e
			}
		}
		ip.expr(s.X, e, false)
		return e
	case *ast.AssignStmt:
		return ip.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					ip.expr(val, e, true)
				}
			}
		}
		return e
	case *ast.IfStmt:
		e = ip.stmt(s.Init, e)
		ip.expr(s.Cond, e, false)
		thenEnv := ip.stmt(s.Body, e.clone())
		elseEnv := e
		if s.Else != nil {
			elseEnv = ip.stmt(s.Else, e.clone())
		}
		return join(thenEnv, elseEnv)
	case *ast.ForStmt:
		e = ip.stmt(s.Init, e)
		ip.expr(s.Cond, e, false)
		bodyEnv := ip.stmt(s.Body, e.clone())
		bodyEnv = ip.stmt(s.Post, bodyEnv)
		if s.Cond == nil && !hasBreak(s.Body) {
			// `for {}` with no break: the only exits are return/panic
			// inside the body; code after is unreachable.
			bodyEnv.dead = true
			return bodyEnv
		}
		return join(e, bodyEnv)
	case *ast.RangeStmt:
		ip.expr(s.X, e, false)
		bodyEnv := ip.stmt(s.Body, e.clone())
		return join(e, bodyEnv)
	case *ast.SwitchStmt:
		e = ip.stmt(s.Init, e)
		ip.expr(s.Tag, e, false)
		return ip.caseJoin(s.Body, e, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		e = ip.stmt(s.Init, e)
		ip.stmt(s.Assign, e)
		return ip.caseJoin(s.Body, e, hasDefault(s.Body))
	case *ast.SelectStmt:
		return ip.caseJoin(s.Body, e, true) // a select always takes some case
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ip.expr(r, e, true)
		}
		ip.leakCheck(e, s.Pos())
		e.dead = true
		return e
	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path rather than model
		// the jump target. Conservative: no reports, possible misses.
		e.dead = true
		return e
	case *ast.DeferStmt:
		ip.deferStmt(s, e)
		return e
	case *ast.GoStmt:
		// The goroutine may release the buffer on its own schedule;
		// ownership escapes.
		ip.expr(s.Call.Fun, e, true)
		for _, a := range s.Call.Args {
			ip.expr(a, e, true)
		}
		return e
	case *ast.SendStmt:
		ip.expr(s.Chan, e, false)
		ip.expr(s.Value, e, true)
		return e
	case *ast.LabeledStmt:
		return ip.stmt(s.Stmt, e)
	case *ast.IncDecStmt:
		ip.expr(s.X, e, false)
		return e
	default:
		return e
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // break inside these doesn't exit the outer loop
		}
		return !found
	})
	return found
}

// caseJoin interprets each case body from a copy of e and joins the
// outcomes; when the construct may skip every case (switch without
// default), e itself joins in.
func (ip *interp) caseJoin(body *ast.BlockStmt, e *env, exhaustive bool) *env {
	var out *env
	add := func(b *env) {
		if out == nil {
			out = b
		} else {
			out = join(out, b)
		}
	}
	for _, c := range body.List {
		branch := e.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, x := range c.List {
				ip.expr(x, branch, false)
			}
			for _, st := range c.Body {
				branch = ip.stmt(st, branch)
			}
		case *ast.CommClause:
			branch = ip.stmt(c.Comm, branch)
			for _, st := range c.Body {
				branch = ip.stmt(st, branch)
			}
		}
		add(branch)
	}
	if !exhaustive || out == nil {
		add(e)
	}
	return out
}

// assign handles acquire recognition plus general RHS/LHS effects.
func (ip *interp) assign(s *ast.AssignStmt, e *env) *env {
	// Self-slicing keeps ownership: b = b[:n], b = b[lo:hi].
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if lid, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
			if sl, ok := ast.Unparen(s.Rhs[0]).(*ast.SliceExpr); ok {
				if rid, ok := ast.Unparen(sl.X).(*ast.Ident); ok && rid.Name == lid.Name {
					if v := analysis.UsedVar(ip.info(), rid); v != nil {
						if st, ok := e.vars[v]; ok && st.st == released {
							ip.reportUse(rid.Pos(), v, st)
						}
						return e
					}
				}
			}
		}
	}

	// Acquire: single call RHS whose callee is a pool acquire — a table
	// entry or a program function summarized as returning a fresh buffer.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if spec, ok := analysis.AcquireSpecFor(ip.info(), ip.pass.Prog, call); ok {
				ip.callArgs(call, e)
				for i, lhs := range s.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					if i != spec.Result {
						continue
					}
					if id.Name == "_" {
						ip.pass.Reportf(call.Pos(), "pooled buffer from %s is discarded immediately (assigned to _)", shortCallee(ip.info(), call))
						continue
					}
					v := defOrUse(ip.info(), id)
					if v == nil {
						continue
					}
					e.vars[v] = &varState{
						st: owned, kind: spec,
						acquirePos:  call.Pos(),
						acquireName: shortCallee(ip.info(), call),
					}
				}
				// Non-pooled results (bools, errors) need no handling.
				return e
			}
		}
	}

	for _, r := range s.Rhs {
		ip.expr(r, e, true)
	}
	for _, l := range s.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			ip.expr(l, e, false) // v[i] = x, s.f = x: reads of v / s checked
			continue
		}
		if v := defOrUse(ip.info(), id); v != nil {
			delete(e.vars, v) // reassigned: tracking ends
		}
	}
	return e
}

func defOrUse(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func shortCallee(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "pool acquire"
}

// deferStmt handles deferred releases: `defer PutBuf(b)`, `defer
// m.Release()`, and release calls inside a deferred closure mark the var
// released-at-exit. Any other tracked-var reference in a defer escapes.
func (ip *interp) deferStmt(s *ast.DeferStmt, e *env) {
	call := s.Call
	name := analysis.CalleeName(ip.info(), call)
	if idx, ok := releases[name]; ok && idx < len(call.Args) {
		if v := analysis.UsedVar(ip.info(), call.Args[idx]); v != nil {
			if st, ok := e.vars[v]; ok {
				st.releasedAtExit = true
				return
			}
		}
	}
	if name == msgRelease {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if v := analysis.UsedVar(ip.info(), sel.X); v != nil {
				if st, ok := e.vars[v]; ok {
					st.releasedAtExit = true
					return
				}
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Closure deferred: releases inside cover their vars; other
		// captured tracked vars escape.
		relVars := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cn := analysis.CalleeName(ip.info(), c)
			if idx, ok := releases[cn]; ok && idx < len(c.Args) {
				if v := analysis.UsedVar(ip.info(), c.Args[idx]); v != nil {
					relVars[v] = true
				}
			}
			if cn == msgRelease {
				if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
					if v := analysis.UsedVar(ip.info(), sel.X); v != nil {
						relVars[v] = true
					}
				}
			}
			return true
		})
		for v := range relVars {
			if st, ok := e.vars[v]; ok {
				st.releasedAtExit = true
			}
		}
		ip.escapeFreeVars(lit, e, relVars)
		return
	}
	// Deferred call into a summarized releaser: `defer freeFrame(b)`
	// covers b at every exit, exactly like `defer PutBuf(b)`.
	if ip.pass.Prog != nil {
		if sum := ip.pass.Prog.Summary(analysis.Callee(ip.info(), call)); sum != nil {
			markExit := func(x ast.Expr) {
				if v := analysis.UsedVar(ip.info(), x); v != nil {
					if st, ok := e.vars[v]; ok {
						st.releasedAtExit = true
					}
				}
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				switch sum.Recv {
				case analysis.ParamReleases:
					markExit(sel.X)
				case analysis.ParamEscapes:
					ip.expr(sel.X, e, true)
				}
			}
			for i, a := range call.Args {
				eff := analysis.ParamEscapes
				if len(sum.Params) > 0 {
					j := i
					if j >= len(sum.Params) {
						j = len(sum.Params) - 1
					}
					eff = sum.Params[j]
				}
				switch eff {
				case analysis.ParamReleases:
					markExit(a)
				case analysis.ParamEscapes:
					ip.expr(a, e, true)
				}
			}
			return
		}
	}
	// Unknown deferred call: args escape.
	for _, a := range call.Args {
		ip.expr(a, e, true)
	}
}

// ---- expressions ----

// expr walks one expression. aliasing marks positions where the value
// itself flows somewhere ownership could move (assignment RHS, call args,
// returns, sends, composite literals); such uses end tracking.
func (ip *interp) expr(x ast.Expr, e *env, aliasing bool) {
	if x == nil || e.dead {
		return
	}
	switch x := x.(type) {
	case *ast.Ident:
		v := analysis.UsedVar(ip.info(), x)
		if v == nil {
			return
		}
		st, ok := e.vars[v]
		if !ok {
			return
		}
		if st.st == released {
			ip.reportUse(x.Pos(), v, st)
			delete(e.vars, v)
			return
		}
		if aliasing {
			delete(e.vars, v) // ownership moved or aliased: stop tracking
		}
	case *ast.ParenExpr:
		ip.expr(x.X, e, aliasing)
	case *ast.CallExpr:
		ip.call(x, e)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			ip.expr(x.X, e, true) // address taken: alias
			return
		}
		ip.expr(x.X, e, false)
	case *ast.StarExpr:
		ip.expr(x.X, e, false)
	case *ast.SliceExpr:
		// A subslice aliases the buffer; propagate the context.
		ip.expr(x.X, e, aliasing)
		ip.expr(x.Low, e, false)
		ip.expr(x.High, e, false)
		ip.expr(x.Max, e, false)
	case *ast.IndexExpr:
		ip.expr(x.X, e, false)
		ip.expr(x.Index, e, false)
	case *ast.SelectorExpr:
		ip.selector(x, e, aliasing)
	case *ast.BinaryExpr:
		ip.expr(x.X, e, false)
		ip.expr(x.Y, e, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			ip.expr(el, e, true)
		}
	case *ast.KeyValueExpr:
		ip.expr(x.Key, e, false)
		ip.expr(x.Value, e, aliasing)
	case *ast.TypeAssertExpr:
		ip.expr(x.X, e, aliasing)
	case *ast.FuncLit:
		ip.escapeFreeVars(x, e, nil)
	}
}

// selector handles m.Payload reads on released messages; other selectors
// just walk their receiver.
func (ip *interp) selector(x *ast.SelectorExpr, e *env, aliasing bool) {
	if v := analysis.UsedVar(ip.info(), x.X); v != nil {
		if st, ok := e.vars[v]; ok && st.kind.Msg {
			if st.st == released && x.Sel.Name == "Payload" {
				ip.reportUse(x.Pos(), v, st)
				delete(e.vars, v)
				return
			}
			if aliasing && x.Sel.Name == "Payload" {
				// msg payload aliased out: stop tracking the msg.
				delete(e.vars, v)
			}
			return
		}
	}
	ip.expr(x.X, e, false)
}

// call classifies a call: release transitions for known sinks, escapes for
// everything else, builtins treated as pure reads.
func (ip *interp) call(call *ast.CallExpr, e *env) {
	name := analysis.CalleeName(ip.info(), call)

	// Release by argument position.
	if idx, ok := releases[name]; ok {
		for i, a := range call.Args {
			if i == idx {
				ip.releaseArg(call, a, e)
			} else {
				ip.expr(a, e, true)
			}
		}
		ip.receiverRead(call, e)
		return
	}
	// Msg.Release on a tracked message var.
	if name == msgRelease {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if v := analysis.UsedVar(ip.info(), sel.X); v != nil {
				if st, ok := e.vars[v]; ok {
					// Documented idempotent on the same Msg value: a second
					// Release is not a double release.
					st.st = released
					st.releasePos = call.Pos()
					return
				}
			}
		}
	}

	if isBuiltin(ip.info(), call) {
		for _, a := range call.Args {
			ip.expr(a, e, false)
		}
		return
	}
	// Summarized program callee: apply its per-parameter ownership effects
	// instead of conservatively escaping (the interprocedural upgrade).
	if ip.applySummary(call, e) {
		return
	}
	// Unknown call: reads the receiver, and argument values may be
	// retained — ownership of tracked args conservatively escapes.
	ip.receiverRead(call, e)
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: free vars escape like a call.
		ip.escapeFreeVars(ast.Unparen(call.Fun).(*ast.FuncLit), e, nil)
	}
	for _, a := range call.Args {
		ip.expr(a, e, true)
	}
}

// applySummary handles a call to a program function with a computed
// interprocedural summary: each argument (and the receiver) gets the
// callee's effect — read keeps tracking, release transitions the state,
// escape ends tracking. Returns false when no summary is available so the
// caller can fall back to the conservative path.
func (ip *interp) applySummary(call *ast.CallExpr, e *env) bool {
	if ip.pass.Prog == nil {
		return false
	}
	fn := analysis.Callee(ip.info(), call)
	sum := ip.pass.Prog.Summary(fn)
	if sum == nil {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sum.Recv {
		case analysis.ParamReleases:
			ip.releaseArg(call, sel.X, e)
		case analysis.ParamRead:
			ip.expr(sel.X, e, false)
		default:
			ip.expr(sel.X, e, true)
		}
	}
	for i, a := range call.Args {
		eff := analysis.ParamEscapes
		if len(sum.Params) > 0 {
			j := i
			if j >= len(sum.Params) {
				j = len(sum.Params) - 1 // variadic tail
			}
			eff = sum.Params[j]
		}
		switch eff {
		case analysis.ParamReleases:
			ip.releaseArg(call, a, e)
		case analysis.ParamRead:
			ip.expr(a, e, false)
		default:
			ip.expr(a, e, true)
		}
	}
	return true
}

// releaseArg applies a release transition to the argument if it is a
// tracked var (or a tracked message's .Payload), with double-release
// detection for byte buffers.
func (ip *interp) releaseArg(call *ast.CallExpr, arg ast.Expr, e *env) {
	// PutBuf(m.Payload): releases the message's payload.
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
		if v := analysis.UsedVar(ip.info(), sel.X); v != nil {
			if st, ok := e.vars[v]; ok && st.kind.Msg {
				ip.transitionRelease(call, v, st, e)
				return
			}
		}
	}
	v := analysis.UsedVar(ip.info(), arg)
	if v == nil {
		// Releasing a subslice or other expression: treat contained vars
		// as escaping (e.g. PutBuf(b[:0]) — unusual, not modeled).
		ip.expr(arg, e, true)
		return
	}
	st, ok := e.vars[v]
	if !ok {
		return
	}
	ip.transitionRelease(call, v, st, e)
}

func (ip *interp) transitionRelease(call *ast.CallExpr, v *types.Var, st *varState, e *env) {
	switch st.st {
	case released:
		ip.pass.Reportf(call.Pos(),
			"double release of pooled buffer %q (previous release at %s)",
			v.Name(), ip.pos(st.releasePos))
		delete(e.vars, v)
	case owned, maybe:
		if st.releasedAtExit {
			ip.pass.Reportf(call.Pos(),
				"release of pooled buffer %q that a deferred release already covers (double release at function exit)",
				v.Name())
			delete(e.vars, v)
			return
		}
		st.st = released
		st.releasePos = call.Pos()
	}
}

// callArgs walks a call's receiver and arguments as plain reads (used for
// acquire calls, whose arguments are sizes/readers, never pooled values).
func (ip *interp) callArgs(call *ast.CallExpr, e *env) {
	ip.receiverRead(call, e)
	for _, a := range call.Args {
		ip.expr(a, e, false)
	}
}

func (ip *interp) receiverRead(call *ast.CallExpr, e *env) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ip.expr(sel.X, e, false)
	}
}

func (ip *interp) reportUse(pos token.Pos, v *types.Var, st *varState) {
	what := "pooled buffer"
	if st.kind.Msg {
		what = "released message payload"
	}
	ip.pass.Reportf(pos, "use of %s %q after release at %s",
		what, v.Name(), ip.pos(st.releasePos))
}

// escapeFreeVars ends tracking for every tracked var referenced inside a
// function literal (minus those in skip): the closure may use or release
// it at any time.
func (ip *interp) escapeFreeVars(lit *ast.FuncLit, e *env, skip map[*types.Var]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := ip.info().Uses[id].(*types.Var); ok {
			if skip != nil && skip[v] {
				return true
			}
			if st, ok := e.vars[v]; ok {
				if st.st == released {
					ip.reportUse(id.Pos(), v, st)
				}
				delete(e.vars, v)
			}
		}
		return true
	})
}

func isBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}
