package goleak

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestGoleakFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
