package detcheck

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestDetcheckFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
