package mpi

import (
	"fmt"

	"starfish/internal/wire"
)

// Reduction algorithms. Unlike broadcast, every rank knows the buffer size
// (all contributions are equally shaped), so algorithm selection is a pure
// local decision from the tuning table — no header needed.
//
//   - Reduce: binomial tree combining into a pooled accumulator (in-place
//     for registered operators), the accumulator itself moving up the tree
//     via SendOwned.
//   - ReduceScatter: recursive halving for power-of-two sizes (each round
//     halves the data in flight), pairwise exchange otherwise.
//   - Allreduce: Rabenseifner's algorithm for large aligned buffers —
//     reduce-scatter then allgather, moving ~2/n of the buffer per rank
//     per phase instead of log2(n) full copies — and tree reduce + bcast
//     below the crossover.

// Reduce combines every rank's contribution with fn and delivers the
// result to root (binomial-tree reduction). fn must be associative and
// commutative. Non-root ranks return nil. contrib is never modified.
func (c *Comm) Reduce(root wire.Rank, contrib []byte, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	if n == 1 {
		return contrib, nil
	}
	if c.CollTuning().ForceNaive {
		return c.naiveReduce(root, contrib, fn)
	}
	return c.treeReduce(root, contrib, fn)
}

// naiveReduce is the seed algorithm, kept as the reference oracle: the
// allocating fn runs at every merge.
func (c *Comm) naiveReduce(root wire.Rank, contrib []byte, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	vrank := c.collVrank(root)
	acc := contrib
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := vrank &^ mask
			if err := c.Send(collReal(parent, root, n), tagReduce, acc); err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
			return nil, nil
		}
		child := vrank | mask
		if child < n {
			data, _, err := c.Recv(collReal(child, root, n), tagReduce)
			if err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
			if acc, err = fn(acc, data); err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
		}
		mask <<= 1
	}
	return acc, nil
}

// treeReduce is the tuned binomial reduction: the first merge copies
// contrib into a pooled accumulator, later merges combine in place, and
// interior ranks move the accumulator itself to their parent.
func (c *Comm) treeReduce(root wire.Rank, contrib []byte, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	vrank := c.collVrank(root)
	var acc []byte // pooled; nil until the first merge
	fail := func(err error) ([]byte, error) {
		if acc != nil {
			wire.PutBuf(acc)
		}
		return nil, fmt.Errorf("reduce: %w", err)
	}
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := collReal(vrank&^mask, root, n)
			var err error
			if acc != nil {
				err = c.SendOwned(parent, tagReduce, acc)
			} else {
				// Leaf: contrib goes up unmodified (one boundary copy).
				err = c.Send(parent, tagReduce, contrib)
			}
			if err != nil {
				return nil, fmt.Errorf("reduce: %w", err)
			}
			return nil, nil
		}
		child := vrank | mask
		if child < n {
			data, st, err := c.Recv(collReal(child, root, n), tagReduce)
			if err != nil {
				return fail(err)
			}
			if acc == nil {
				acc = wire.GetBuf(len(contrib))
				copy(acc, contrib)
				wire.CountCopy(wire.CopyColl, len(contrib))
			}
			err = combineInto(acc, data, fn)
			if st.Pooled {
				wire.PutBuf(data)
			}
			if err != nil {
				return fail(err)
			}
		}
		mask <<= 1
	}
	if acc == nil {
		return contrib, nil
	}
	return acc, nil
}

// ReduceScatter combines every rank's contribution elementwise and leaves
// rank r with the counts[r]-byte slice of the result starting at
// offset counts[0]+...+counts[r-1] (MPI_Reduce_scatter). counts must sum
// to len(contrib) and be identical on every rank; a nil counts splits the
// buffer evenly on ElemAlign boundaries. contrib is never modified.
func (c *Comm) ReduceScatter(contrib []byte, counts []int, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	t := c.CollTuning()
	if counts == nil {
		if len(contrib)%t.ElemAlign != 0 {
			return nil, fmt.Errorf("reduce-scatter: %w: %d bytes not a multiple of the %d-byte element", ErrBadLength, len(contrib), t.ElemAlign)
		}
		counts, _ = evenByteCounts(len(contrib), n, t.ElemAlign)
	}
	if len(counts) != n {
		return nil, fmt.Errorf("reduce-scatter: %w: %d counts for %d ranks", ErrBadLength, len(counts), n)
	}
	sum := 0
	for _, cnt := range counts {
		if cnt < 0 {
			return nil, fmt.Errorf("reduce-scatter: %w: negative count %d", ErrBadLength, cnt)
		}
		sum += cnt
	}
	if sum != len(contrib) {
		return nil, fmt.Errorf("reduce-scatter: %w: counts sum to %d, contribution is %d bytes", ErrBadLength, sum, len(contrib))
	}
	if n == 1 {
		return contrib, nil
	}
	offs := make([]int, n+1)
	for i, cnt := range counts {
		offs[i+1] = offs[i] + cnt
	}
	me := int(c.cfg.Rank)
	out := make([]byte, counts[me])
	if t.ForceNaive {
		if err := c.naiveReduceScatter(contrib, counts, offs, fn, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := c.reduceScatterTo(contrib, counts, offs, fn, out, tagReduceScatter); err != nil {
		return nil, fmt.Errorf("reduce-scatter: %w", err)
	}
	return out, nil
}

// naiveReduceScatter is the reference oracle: seed-style binomial reduce
// to rank 0, then a flat scatter of the chunks.
func (c *Comm) naiveReduceScatter(contrib []byte, counts, offs []int, fn ReduceFunc, dst []byte) error {
	n := c.cfg.Size
	me := int(c.cfg.Rank)
	acc := contrib
	atRoot := true
	mask := 1
	for mask < n {
		if me&mask != 0 {
			if err := c.Send(wire.Rank(me&^mask), tagReduceScatter, acc); err != nil {
				return fmt.Errorf("reduce-scatter: %w", err)
			}
			atRoot = false
			break
		}
		child := me | mask
		if child < n {
			data, _, err := c.Recv(wire.Rank(child), tagReduceScatter)
			if err != nil {
				return fmt.Errorf("reduce-scatter: %w", err)
			}
			if acc, err = fn(acc, data); err != nil {
				return fmt.Errorf("reduce-scatter: %w", err)
			}
		}
		mask <<= 1
	}
	if atRoot {
		for r := 1; r < n; r++ {
			if err := c.Send(wire.Rank(r), tagReduceScatter, acc[offs[r]:offs[r+1]]); err != nil {
				return fmt.Errorf("reduce-scatter: %w", err)
			}
		}
		copy(dst, acc[:counts[0]])
		return nil
	}
	data, _, err := c.Recv(0, tagReduceScatter)
	if err != nil {
		return fmt.Errorf("reduce-scatter: %w", err)
	}
	if len(data) != len(dst) {
		return fmt.Errorf("reduce-scatter: %w: chunk %d bytes, want %d", ErrBadLength, len(data), len(dst))
	}
	copy(dst, data)
	return nil
}

// reduceScatterTo writes this rank's combined chunk into dst. Power-of-two
// communicators use recursive halving — the live range halves every round,
// so total traffic is ~len(contrib) per rank; other sizes use pairwise
// exchange (n-1 light rounds of one chunk each).
func (c *Comm) reduceScatterTo(contrib []byte, counts, offs []int, fn ReduceFunc, dst []byte, tag int32) error {
	n := c.cfg.Size
	me := int(c.cfg.Rank)
	if n&(n-1) == 0 {
		// The first round sends straight out of contrib, so the pooled
		// accumulator is allocated at half size only once the live range has
		// already halved — the classic full-buffer staging copy never happens.
		var acc []byte // holds chunks [lo,hi) at acc[offs[i]-base:]
		base := 0
		fail := func(err error) error {
			if acc != nil {
				wire.PutBuf(acc)
			}
			return err
		}
		lo, hi := 0, n // chunk range this rank still owns
		for d := n / 2; d >= 1; d /= 2 {
			partner := me ^ d
			mid := (lo + hi) / 2
			keepLo, keepHi, sendLo, sendHi := lo, mid, mid, hi
			if me&d != 0 {
				keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
			}
			src, sb := acc, base
			if acc == nil {
				src, sb = contrib, 0
			}
			seg := src[offs[sendLo]-sb : offs[sendHi]-sb]
			if err := c.Send(wire.Rank(partner), tag, seg); err != nil {
				return fail(err)
			}
			wire.CountCollSeg(len(seg))
			// Blocking Recv suffices: the transport queues the partner's
			// half regardless of whether a receive is posted.
			got, st, err := c.Recv(wire.Rank(partner), tag)
			if err != nil {
				return fail(err)
			}
			if len(got) != offs[keepHi]-offs[keepLo] {
				return fail(fmt.Errorf("%w: halving block %d bytes, want %d", ErrBadLength, len(got), offs[keepHi]-offs[keepLo]))
			}
			if acc == nil {
				acc = wire.GetBuf(offs[keepHi] - offs[keepLo])
				base = offs[keepLo]
				copy(acc, contrib[offs[keepLo]:offs[keepHi]])
				wire.CountCopy(wire.CopyColl, len(acc))
			}
			err = combineInto(acc[offs[keepLo]-base:offs[keepHi]-base], got, fn)
			if st.Pooled {
				wire.PutBuf(got)
			}
			if err != nil {
				return fail(err)
			}
			lo, hi = keepLo, keepHi
		}
		copy(dst, acc[offs[lo]-base:offs[hi]-base]) // lo == me, hi == me+1
		wire.CountCopy(wire.CopyColl, len(dst))
		wire.PutBuf(acc)
		return nil
	}
	// Pairwise exchange: every rank sends rank (me+s) its chunk straight
	// out of contrib and folds what arrives into dst.
	copy(dst, contrib[offs[me]:offs[me+1]])
	wire.CountCopy(wire.CopyColl, len(dst))
	for s := 1; s < n; s++ {
		to := (me + s) % n
		from := (me - s + n) % n
		seg := contrib[offs[to]:offs[to+1]]
		if err := c.Send(wire.Rank(to), tag, seg); err != nil {
			return err
		}
		wire.CountCollSeg(len(seg))
		got, st, err := c.Recv(wire.Rank(from), tag)
		if err != nil {
			return err
		}
		if len(got) != counts[me] {
			return fmt.Errorf("%w: pairwise chunk %d bytes, want %d", ErrBadLength, len(got), counts[me])
		}
		err = combineInto(dst, got, fn)
		if st.Pooled {
			wire.PutBuf(got)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Allreduce combines every rank's contribution and returns the result at
// every rank. Large element-aligned buffers take Rabenseifner's
// reduce-scatter + allgather; everything else reduces to rank 0 and
// broadcasts. contrib is never modified.
func (c *Comm) Allreduce(contrib []byte, fn ReduceFunc) ([]byte, error) {
	n := c.cfg.Size
	if n == 1 {
		return contrib, nil
	}
	t := c.CollTuning()
	if allreduceUseRab(t, len(contrib), n) {
		return c.allreduceRab(contrib, fn, t)
	}
	acc, err := c.Reduce(0, contrib, fn)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, acc)
}

// allreduceUseRab decides whether a size-byte allreduce on n ranks takes
// the Rabenseifner path: a pure function of the tuning table, identical on
// every rank (ranks disagreeing would deadlock in mismatched schedules).
//
//starfish:deterministic
func allreduceUseRab(t CollTuning, size, n int) bool {
	return !t.ForceNaive && size >= t.AllreduceRabMin &&
		size%t.ElemAlign == 0 && size/t.ElemAlign >= n
}

func (c *Comm) allreduceRab(contrib []byte, fn ReduceFunc, t CollTuning) ([]byte, error) {
	me := int(c.cfg.Rank)
	counts, offs := c.evenGeom(len(contrib), t.ElemAlign)
	// Pooled result (every byte is overwritten below): the caller owns it
	// and may PutBuf it back, or simply drop it.
	result := wire.GetBuf(len(contrib))
	if err := c.reduceScatterTo(contrib, counts, offs, fn, result[offs[me]:offs[me+1]], tagAllreduceRS); err != nil {
		return nil, fmt.Errorf("allreduce: %w", err)
	}
	if err := c.collAllgatherChunks(0, me, result, offs, false, tagAllreduceAG); err != nil {
		return nil, fmt.Errorf("allreduce: %w", err)
	}
	return result, nil
}
