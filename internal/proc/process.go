package proc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"starfish/internal/bus"
	"starfish/internal/ckpt"
	"starfish/internal/evstore"
	"starfish/internal/mpi"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// Process errors.
var (
	ErrAborted = errors.New("proc: aborted by daemon")
)

// Config assembles one application process.
type Config struct {
	Spec AppSpec
	Rank wire.Rank
	// Arch is the simulated architecture of the hosting node.
	Arch svm.Arch
	// Store is the checkpoint backend this application writes to and
	// restores from (disk, replicated memory, or tiered — chosen per
	// application at submission time).
	Store ckpt.Backend
	// Link connects to the local daemon's lightweight endpoint module.
	Link DaemonLink
	// Transport and ListenAddr create the process's data-path NIC.
	Transport  vni.Transport
	ListenAddr string
	// Timer optionally instruments the data path (Figure 6).
	Timer *vni.StageTimer
	// Events optionally receives structured records about the process
	// lifecycle and checkpoint protocol (the daemon passes its store's
	// "proc" emitter).
	Events evstore.Sink
	// Logf optionally receives runtime diagnostics.
	Logf func(string, ...any)
}

// Process is one running application process: the container of Figure 1's
// group handler, application module, C/R module, MPI module and VNI.
type Process struct {
	spec    AppSpec
	rank    wire.Rank
	arch    svm.Arch
	store   ckpt.Backend
	link    DaemonLink
	nic     *vni.NIC
	comm    *mpi.Comm
	app     App
	cr      *crModule
	events  evstore.Sink
	encoder ckpt.Encoder
	objBus  *bus.Bus
	timer   *vni.StageTimer
	logf    func(string, ...any)

	ctx *Ctx

	// ctl carries daemon messages into the main loop (fed by the group
	// handler goroutine).
	ctl      chan wire.Msg
	deferred []wire.Msg

	viewHandler  func(alive, departed []wire.Rank)
	coordHandler func(from wire.Rank, payload []byte)
	pendingViews []LWViewInfo
	pendingCoord []wire.Msg

	ckptRequested bool
	suspended     bool
	aborted       bool
	hardAbort     atomic.Bool

	// cmu guards comm for access from the group-handler goroutine
	// (out-of-band abort).
	cmu sync.Mutex

	steps     uint64
	sinceCkpt uint64

	done chan struct{}
	err  error
}

// New creates a process. Its data NIC starts listening immediately (the
// daemon reads Addr to publish the placement), but execution waits for the
// daemon's CfgStart message. Run the process with Start.
func New(cfg Config) (*Process, error) {
	nic, err := vni.NewNIC(cfg.Transport, cfg.ListenAddr, 0)
	if err != nil {
		return nil, err
	}
	app, err := NewApp(cfg.Spec.Name, cfg.Spec.Args)
	if err != nil {
		nic.Close()
		return nil, err
	}
	p := &Process{
		spec:    cfg.Spec,
		rank:    cfg.Rank,
		arch:    cfg.Arch,
		store:   cfg.Store,
		link:    cfg.Link,
		nic:     nic,
		app:     app,
		events:  cfg.Events,
		encoder: cfg.Spec.NewEncoder(),
		objBus:  bus.New(0),
		timer:   cfg.Timer,
		logf:    cfg.Logf,
		ctl:     make(chan wire.Msg, 1024),
		done:    make(chan struct{}),
	}
	p.cr = newCRModule(p)
	return p, nil
}

// Addr returns the process's data-path listen address.
func (p *Process) Addr() string { return p.nic.Addr() }

// Rank returns the process rank.
func (p *Process) Rank() wire.Rank { return p.rank }

// Done is closed when the process terminates.
func (p *Process) Done() <-chan struct{} { return p.done }

// Err returns the terminal error (nil on success); valid after Done.
func (p *Process) Err() error { return p.err }

// Start launches the group handler and main loop.
func (p *Process) Start() {
	p.objBus.Start()
	go p.groupHandler()
	go p.run()
}

// groupHandler is the module connecting the process to its daemon: it
// translates daemon messages into object-bus events and forwards them to
// the main loop's control queue.
func (p *Process) groupHandler() {
	for {
		select {
		case m := <-p.link.Recv():
			// An abort must be able to interrupt an application blocked
			// inside a receive, so it is handled out of band: closing
			// the communicator unblocks the main loop, which then sees
			// the queued CfgAbort.
			if m.Type == wire.TConfiguration && m.Kind == CfgAbort {
				p.hardAbort.Store(true)
				p.cmu.Lock()
				if p.comm != nil {
					p.comm.Close()
				}
				p.cmu.Unlock()
			}
			// Post on the bus for any subscribed module (observability,
			// extensions), and queue for the scheduler.
			topic := bus.TopicConfig
			switch m.Type {
			case wire.TCheckpoint:
				topic = bus.TopicCheckpoint
			case wire.TCoordination:
				topic = bus.TopicCoordination
			case wire.TLWMembership:
				topic = bus.TopicLWView
			}
			p.objBus.Post(bus.Event{Topic: topic, Msg: m})
			select {
			case p.ctl <- m:
			case <-p.done:
				return
			}
		case <-p.link.Done():
			// Daemon connection lost: the scheduler sees a closed queue
			// and aborts.
			close(p.ctl)
			return
		case <-p.done:
			return
		}
	}
}

// sendToDaemon forwards a message to the daemon over the group-handler
// connection.
func (p *Process) sendToDaemon(m wire.Msg) error {
	p.objBus.Post(bus.Event{Topic: bus.TopicOutbound, Msg: m})
	return p.link.Send(m)
}

// event forwards a structured record to the configured sink.
func (p *Process) event(r evstore.Record) {
	if p.events != nil {
		p.events.Emit(r)
	}
}

func (p *Process) logff(format string, args ...any) {
	if p.logf != nil {
		p.logf(fmt.Sprintf("[app %d rank %d] ", p.spec.ID, p.rank)+format, args...)
	}
}

func (p *Process) requestCheckpoint() { p.ckptRequested = true }

// Bus exposes the process's object bus (module extensions, tests).
func (p *Process) Bus() *bus.Bus { return p.objBus }

// run is the scheduler: it waits for the daemon's start message, builds
// the MPI module, restores state if this is a restart, and then alternates
// application steps with control-message handling.
func (p *Process) run() {
	defer func() {
		if p.comm != nil {
			p.comm.Close()
		}
		p.nic.Close()
		p.objBus.Stop()
		close(p.done)
	}()

	si, ok := p.waitStart()
	if !ok {
		p.err = ErrAborted
		p.reportDone(p.err)
		return
	}
	if err := p.initialize(si); err != nil {
		p.err = err
		p.reportDone(err)
		return
	}
	if si.Restore && si.RestoreIndex > 0 {
		p.event(evstore.EvRank("restore", p.spec.ID, p.rank,
			evstore.F("index", si.RestoreIndex), evstore.F("size", si.Size)))
	} else {
		p.event(evstore.EvRank("start", p.spec.ID, p.rank,
			evstore.F("size", si.Size)))
	}

	for {
		// Handle everything the daemon queued, then any deferred
		// messages from a blocking protocol round.
		if err := p.drainCtl(); err != nil {
			p.finish(err)
			return
		}
		if p.aborted {
			p.finish(ErrAborted)
			return
		}
		if p.suspended {
			m, open := <-p.ctl
			if !open {
				p.finish(ErrAborted)
				return
			}
			if err := p.handleCtl(m); err != nil {
				p.finish(err)
				return
			}
			continue
		}

		// Deliver pending upcalls at the safe point.
		p.deliverUpcalls()

		// Checkpoint work due at this boundary.
		if id, due := p.cr.pendingSnapshot(); due {
			if err := p.cr.clBegin(id); err != nil {
				p.finish(err)
				return
			}
		}
		if p.ckptRequested {
			p.ckptRequested = false
			if err := p.cr.initiate(); err != nil {
				p.finish(err)
				return
			}
		}

		done, err := p.app.Step(p.ctx)
		if err != nil {
			p.finish(err)
			return
		}
		p.steps++
		p.sinceCkpt++
		// Stop-and-sync drains complete as messages arrive; poll at the
		// boundary.
		p.cr.sfsPoll()
		if p.spec.CkptEverySteps > 0 && p.sinceCkpt >= p.spec.CkptEverySteps {
			p.sinceCkpt = 0
			// System-initiated cadence: coordinated rounds start at rank
			// 0 only (the index authority); the independent protocol
			// checkpoints locally at every rank.
			if p.rank == 0 || p.spec.Protocol == ckpt.Independent {
				if err := p.cr.initiate(); err != nil {
					p.finish(err)
					return
				}
			}
		}
		if done {
			// The coordinator finishes its outstanding round before
			// declaring completion so end-of-run checkpoints commit.
			if p.rank == 0 {
				p.drainRounds()
			}
			p.finish(nil)
			// Keep serving protocol traffic (acks, markers, flushes,
			// late round requests) until the daemon tears the process
			// down — peers may still be running.
			p.serveUntilTeardown()
			return
		}
	}
}

// serveUntilTeardown keeps a completed process responsive to C/R protocol
// traffic until its daemon closes the connection (all ranks reported done)
// or aborts it. Without this, a round initiated just before the last
// application step would lose participants and never commit.
func (p *Process) serveUntilTeardown() {
	backstop := time.After(60 * time.Second)
	for {
		p.cr.sfsPoll()
		if id, due := p.cr.pendingSnapshot(); due {
			p.cr.clBegin(id)
		}
		select {
		case m, open := <-p.ctl:
			if !open {
				return
			}
			if m.Type == wire.TConfiguration && m.Kind == CfgAbort {
				return
			}
			if err := p.handleCtl(m); err != nil {
				return
			}
		case <-time.After(5 * time.Millisecond):
			// Drain progress is driven by data-path arrivals; re-poll.
		case <-backstop:
			return
		}
	}
}

// drainRounds keeps the process alive after application completion until
// any in-flight checkpoint round it participates in (or coordinates) has
// finished, so end-of-run checkpoints still commit. Bounded so a crashed
// peer cannot hold a finished process hostage.
func (p *Process) drainRounds() {
	deadline := time.After(10 * time.Second)
	for p.cr.roundsOutstanding() {
		p.cr.sfsPoll()
		if !p.cr.roundsOutstanding() {
			return
		}
		select {
		case m, open := <-p.ctl:
			if !open {
				return
			}
			if m.Type == wire.TConfiguration && m.Kind == CfgAbort {
				return
			}
			if err := p.handleCtl(m); err != nil {
				return
			}
		case <-time.After(5 * time.Millisecond):
			// Re-poll: drain progress is driven by data arrivals, which
			// do not come through the control queue.
		case <-deadline:
			p.logff("giving up on unfinished checkpoint round")
			return
		}
	}
}

func (p *Process) finish(err error) {
	if p.hardAbort.Load() && err != nil {
		err = ErrAborted
	}
	p.err = err
	p.reportDone(err)
}

func (p *Process) reportDone(err error) {
	kv := []evstore.KV{}
	if err != nil {
		kv = append(kv, evstore.F("err", err.Error()))
	}
	p.event(evstore.EvRank("done", p.spec.ID, p.rank, kv...))
	msg := wire.Msg{Type: wire.TConfiguration, Kind: CfgDone, App: p.spec.ID, Src: p.rank}
	if err != nil {
		msg.Payload = []byte(err.Error())
	}
	p.link.Send(msg)
}

// waitStart blocks until CfgStart, buffering any earlier protocol traffic
// for handling once the communicator exists.
func (p *Process) waitStart() (StartInfo, bool) {
	for m := range p.ctl {
		if m.Type == wire.TConfiguration {
			switch m.Kind {
			case CfgStart:
				si, err := DecodeStartInfo(m.Payload)
				if err != nil {
					p.logff("bad start info: %v", err)
					return StartInfo{}, false
				}
				return si, true
			case CfgAbort:
				return StartInfo{}, false
			}
			continue
		}
		p.deferred = append(p.deferred, m)
	}
	return StartInfo{}, false
}

// initialize builds the communicator and application state for this
// incarnation.
func (p *Process) initialize(si StartInfo) error {
	mcfg := mpi.Config{
		App:   p.spec.ID,
		Rank:  p.rank,
		Size:  si.Size,
		NIC:   p.nic,
		Addrs: si.Addrs,
		Timer: p.timer,
	}
	switch p.spec.Protocol {
	case ckpt.ChandyLamport:
		mcfg.OnMarker = p.cr.onMarker
	case ckpt.Independent:
		mcfg.OnReceive = p.cr.onReceive
		mcfg.LogSends = true
	}
	// On a restart, read the checkpoint before building the communicator:
	// the restored sequence counts must be live from the communicator's
	// first instant. Ranks restore at different speeds, and a peer that
	// finished earlier is already re-sending messages our restored state
	// has consumed; if the progress engine ran with zeroed counts even
	// briefly, those duplicates would be accepted instead of suppressed
	// and would desynchronize the application permanently.
	restore := si.Restore && si.RestoreIndex > 0
	var img []byte
	var meta *ckpt.Meta
	if restore {
		var err error
		img, meta, err = p.store.Get(p.spec.ID, p.rank, si.RestoreIndex)
		if err != nil {
			return fmt.Errorf("proc: restart: %w", err)
		}
		mcfg.SentCounts, mcfg.RecvCounts = meta.SentCounts, meta.RecvCounts
	}
	comm, err := mpi.New(mcfg)
	if err != nil {
		return err
	}
	p.cmu.Lock()
	p.comm = comm
	aborting := p.hardAbort.Load()
	p.cmu.Unlock()
	if aborting {
		comm.Close()
		return ErrAborted
	}
	p.ctx = &Ctx{
		Comm: comm, Rank: p.rank, Size: si.Size,
		Gen: si.Gen, Arch: p.arch, p: p,
	}
	p.cr.nextIndex = si.NextCkptIndex
	if p.cr.nextIndex == 0 {
		p.cr.nextIndex = 1
	}

	if restore {
		raw, err := p.encoder.Decode(img, p.arch)
		if err != nil {
			return fmt.Errorf("proc: restart decode: %w", err)
		}
		state, pending, recorded, err := decodeCkptState(raw)
		if err != nil {
			return fmt.Errorf("proc: restart state: %w", err)
		}
		if err := p.app.Restore(p.ctx, state); err != nil {
			return fmt.Errorf("proc: restore: %w", err)
		}
		// Re-inject the MPI-layer state (sequence continuity was seeded at
		// construction): pending messages were counted before the snapshot,
		// recorded channel state arrived after it.
		comm.InjectRecorded(pending, false)
		comm.InjectRecorded(recorded, true)
		comm.SetInterval(si.RestoreIndex)
		p.cr.lastIndex = si.RestoreIndex
		if p.spec.Protocol == ckpt.Independent {
			if err := p.replayLostMessages(si); err != nil {
				return fmt.Errorf("proc: log replay: %w", err)
			}
		}
		return nil
	}
	if si.Restore && p.spec.Protocol == ckpt.Independent {
		// This rank restarts from its initial state (line entry 0) but
		// peers may still need nothing from us; nothing to replay — the
		// full re-execution resends everything.
		return p.app.Init(p.ctx)
	}
	return p.app.Init(p.ctx)
}

// replayLostMessages implements the recovery side of sender-based message
// logging for uncoordinated checkpointing: messages this rank sent before
// its restore point, which a peer's restored state has not yet received,
// are retransmitted from the persisted log. Without this step, rolled-back
// receivers would wait forever for messages nobody will resend (the
// classic lost-message problem of independent checkpointing).
func (p *Process) replayLostMessages(si StartInfo) error {
	// Collect this rank's logged sends from every checkpoint up to the
	// restore point, in order.
	var logged []mpi.RecordedMsg
	indices, err := p.store.List(p.spec.ID, p.rank)
	if err != nil {
		return err
	}
	for _, n := range indices {
		if n > si.RestoreIndex {
			continue
		}
		_, meta, err := p.store.Get(p.spec.ID, p.rank, n)
		if err != nil {
			return err
		}
		if len(meta.SentLog) == 0 {
			continue
		}
		msgs, err := decodeMsgList(meta.SentLog)
		if err != nil {
			return err
		}
		logged = append(logged, msgs...)
	}
	if len(logged) == 0 {
		return nil
	}
	// For each peer, find how far its restored state had received from
	// us, and replay everything past that.
	received := make(map[wire.Rank]uint64, si.Size)
	for r := 0; r < si.Size; r++ {
		rank := wire.Rank(r)
		if rank == p.rank {
			continue
		}
		if idx := si.Line[rank]; idx > 0 {
			_, meta, err := p.store.Get(p.spec.ID, rank, idx)
			if err != nil {
				return err
			}
			received[rank] = meta.RecvCounts[p.rank]
		}
	}
	for _, m := range logged {
		if m.Seq > received[m.Dst] {
			if err := p.comm.Replay(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainCtl handles all queued control messages without blocking.
func (p *Process) drainCtl() error {
	if len(p.deferred) > 0 {
		msgs := p.deferred
		p.deferred = nil
		for _, m := range msgs {
			if err := p.handleCtl(m); err != nil {
				return err
			}
		}
	}
	for {
		select {
		case m, open := <-p.ctl:
			if !open {
				p.aborted = true
				return nil
			}
			if err := p.handleCtl(m); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// handleCtl dispatches one daemon message. Runs in the main loop, i.e. at
// a step boundary — the safe point for protocol work.
func (p *Process) handleCtl(m wire.Msg) error {
	switch m.Type {
	case wire.TConfiguration:
		switch m.Kind {
		case CfgAbort:
			p.aborted = true
		case CfgCkptNow:
			p.ckptRequested = true
		case CfgSuspend:
			p.suspended = true
		case CfgResume:
			p.suspended = false
		}
	case wire.TCheckpoint:
		switch m.Kind {
		case ckpt.KRequest:
			return p.cr.handleRequest(m)
		case ckpt.KAck, ckpt.KCommit:
			p.cr.handleAckCommit(m)
		case ckpt.KFlush:
			p.cr.onFlush(m)
		}
	case wire.TCoordination:
		p.pendingCoord = append(p.pendingCoord, m)
	case wire.TLWMembership:
		if m.Kind == LWViewKind {
			v, err := DecodeLWViewInfo(m.Payload)
			if err == nil {
				for _, dead := range v.Departed {
					p.comm.SetDead(dead)
				}
				p.pendingViews = append(p.pendingViews, v)
			}
		}
	}
	return nil
}

// deliverUpcalls invokes registered application handlers for queued view
// changes and coordination messages.
func (p *Process) deliverUpcalls() {
	if len(p.pendingViews) > 0 {
		views := p.pendingViews
		p.pendingViews = nil
		if p.viewHandler != nil {
			for _, v := range views {
				p.viewHandler(v.Alive, v.Departed)
			}
		}
	}
	if len(p.pendingCoord) > 0 {
		msgs := p.pendingCoord
		p.pendingCoord = nil
		if p.coordHandler != nil {
			for _, m := range msgs {
				p.coordHandler(m.Src, m.Payload)
			}
		}
	}
}
