package gossip

import (
	"bytes"
	"testing"
	"time"

	"starfish/internal/wire"
)

// sim drives a set of detectors in virtual time with immediate in-memory
// delivery: no goroutines, no wall clock, fully deterministic under seeds.
type sim struct {
	now   time.Time
	ids   []wire.NodeID
	peers map[wire.NodeID]*Detector
	// down peers drop all inbound traffic (crash).
	down map[wire.NodeID]bool
	// cut severs every link touching a peer (partition, peer still alive).
	cut map[wire.NodeID]bool
	// delivered counts messages accepted by live peers.
	delivered uint64
}

func newSim(n int, p Params) *sim {
	s := &sim{
		now:   time.Unix(0, 0),
		peers: make(map[wire.NodeID]*Detector),
		down:  make(map[wire.NodeID]bool),
		cut:   make(map[wire.NodeID]bool),
	}
	for i := 1; i <= n; i++ {
		id := wire.NodeID(i)
		s.ids = append(s.ids, id)
		s.peers[id] = New(Config{Self: id, Seed: uint64(i), Params: p})
	}
	for _, d := range s.peers {
		d.SetMembers(s.ids)
	}
	return s
}

// step advances virtual time by dt, ticks every live peer and delivers all
// resulting traffic (including replies) within the step.
func (s *sim) step(dt time.Duration) {
	s.now = s.now.Add(dt)
	var queue []struct {
		from wire.NodeID
		env  Envelope
	}
	for _, id := range s.ids {
		if s.down[id] {
			continue
		}
		for _, env := range s.peers[id].Tick(s.now) {
			queue = append(queue, struct {
				from wire.NodeID
				env  Envelope
			}{id, env})
		}
	}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		to := item.env.To
		if s.down[to] || s.cut[to] || s.cut[item.from] {
			continue
		}
		s.delivered++
		replies, err := s.peers[to].Handle(s.now, item.env.Payload)
		if err != nil {
			panic(err)
		}
		for _, r := range replies {
			queue = append(queue, struct {
				from wire.NodeID
				env  Envelope
			}{to, r})
		}
	}
}

func testParams() Params {
	return Params{
		ProbeEvery:     10 * time.Millisecond,
		ProbeTimeout:   5 * time.Millisecond,
		SuspectAfter:   80 * time.Millisecond,
		IndirectFanout: 3,
	}
}

func TestDetectConfirmsDeadPeer(t *testing.T) {
	s := newSim(8, testParams())
	for i := 0; i < 20; i++ {
		s.step(5 * time.Millisecond)
	}
	victim := wire.NodeID(8)
	s.down[victim] = true

	deadline := 400
	for i := 0; ; i++ {
		s.step(5 * time.Millisecond)
		allDead := true
		for _, id := range s.ids {
			if id == victim {
				continue
			}
			if s.peers[id].Status(victim) != Dead {
				allDead = false
			}
		}
		if allDead {
			break
		}
		if i > deadline {
			t.Fatalf("not all survivors confirmed node %d dead within %d steps", victim, deadline)
		}
	}
	// No survivor may have buried a live peer.
	for _, id := range s.ids {
		if id == victim {
			continue
		}
		for _, other := range s.ids {
			if other == victim || other == id {
				continue
			}
			if st := s.peers[id].Status(other); st == Dead {
				t.Fatalf("peer %d wrongly confirmed live peer %d dead", id, other)
			}
		}
	}
	// The observer's change stream must show suspect before dead.
	var saw []Status
	for _, ch := range s.peers[1].Changes() {
		if ch.Node == victim {
			saw = append(saw, ch.Status)
		}
	}
	if len(saw) < 2 || saw[0] != Suspect || saw[len(saw)-1] != Dead {
		t.Fatalf("change stream for victim = %v, want suspect...dead", saw)
	}
}

func TestRefuteClearsFalseSuspicion(t *testing.T) {
	s := newSim(6, testParams())
	for i := 0; i < 20; i++ {
		s.step(5 * time.Millisecond)
	}
	// Partition node 3 for half the suspicion budget: long enough to be
	// suspected, short enough to refute before confirmation.
	s.cut[3] = true
	for i := 0; i < 8; i++ { // 40ms < SuspectAfter (80ms)
		s.step(5 * time.Millisecond)
	}
	suspected := false
	for _, id := range s.ids {
		if id != 3 && s.peers[id].Status(3) == Suspect {
			suspected = true
		}
	}
	delete(s.cut, 3)
	for i := 0; i < 60; i++ {
		s.step(5 * time.Millisecond)
	}
	for _, id := range s.ids {
		if id == 3 {
			continue
		}
		if st := s.peers[id].Status(3); st != Alive {
			t.Fatalf("peer %d still sees node 3 as %v after heal", id, st)
		}
	}
	if !suspected {
		t.Log("partition healed before any suspicion arose (timing-dependent); refute path untested this run")
	}
}

func TestLoadIsConstantPerRound(t *testing.T) {
	load := func(n int) float64 {
		s := newSim(n, testParams())
		// Settle, then measure over 50 rounds.
		for i := 0; i < 20; i++ {
			s.step(5 * time.Millisecond)
		}
		start := s.delivered
		var rounds0 uint64
		for _, d := range s.peers {
			rounds0 += d.Stats().Rounds
		}
		for i := 0; i < 100; i++ {
			s.step(5 * time.Millisecond)
		}
		var rounds uint64
		for _, d := range s.peers {
			rounds += d.Stats().Rounds
		}
		return float64(s.delivered-start) / float64(rounds-rounds0)
	}
	small, big := load(16), load(256)
	if big > 2*small || big > 6 {
		t.Fatalf("per-round message load grew with group size: n=16 → %.2f, n=256 → %.2f", small, big)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []byte {
		s := newSim(5, testParams())
		var buf bytes.Buffer
		for i := 0; i < 40; i++ {
			s.now = s.now.Add(5 * time.Millisecond)
			for _, id := range s.ids {
				for _, env := range s.peers[id].Tick(s.now) {
					buf.WriteByte(byte(env.To))
					buf.Write(env.Payload)
					if replies, err := s.peers[env.To].Handle(s.now, env.Payload); err == nil {
						for _, r := range replies {
							buf.WriteByte(byte(r.To))
							buf.Write(r.Payload)
						}
					}
				}
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical seeds produced different protocol traffic")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	in := Message{
		Kind: mPingReq, From: 7, Target: 9, Origin: 3, Seq: 42,
		Updates: []Update{
			{Node: 1, Status: Alive, Inc: 0},
			{Node: 2, Status: Suspect, Inc: 5},
			{Node: 3, Status: Dead, Inc: 1},
		},
	}
	out, err := DecodeMessage(EncodeMessage(&in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.From != in.From || out.Target != in.Target ||
		out.Origin != in.Origin || out.Seq != in.Seq || len(out.Updates) != 3 {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Updates {
		if out.Updates[i] != in.Updates[i] {
			t.Fatalf("update %d mismatch: %+v vs %+v", i, out.Updates[i], in.Updates[i])
		}
	}
	if _, err := DecodeMessage([]byte{0xff, 0x01}); err == nil {
		t.Fatal("truncated/garbage message decoded without error")
	}
}

func TestRefuteBumpsIncarnation(t *testing.T) {
	d := New(Config{Self: 1, Seed: 1, Params: testParams()})
	d.SetMembers([]wire.NodeID{1, 2, 3})
	// Deliver a rumor accusing us at incarnation 4.
	accusation := Message{Kind: mPing, From: 2, Seq: 1,
		Updates: []Update{{Node: 1, Status: Suspect, Inc: 4}}}
	out, err := d.Handle(time.Unix(1, 0), EncodeMessage(&accusation))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("want 1 ack, got %d envelopes", len(out))
	}
	ack, err := DecodeMessage(out[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range ack.Updates {
		if u.Node == 1 && u.Status == Alive && u.Inc == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ack does not carry the alive@5 refutation: %+v", ack.Updates)
	}
}
