// Package mpi is Starfish's MPI module: the message-passing library that
// application code programs against.
//
// It implements blocking and non-blocking point-to-point operations with
// MPI matching semantics (source/tag wildcards, per-pair FIFO), the
// standard collectives, and the Starfish-specific hooks the paper adds on
// top of MPI: checkpoint-interval tagging for uncoordinated C/R, send
// pausing and channel draining for stop-and-sync, and in-band markers with
// channel recording for Chandy–Lamport snapshots.
//
// Data messages travel on the fast path — directly from this module to the
// VNI — and never touch the object bus or the daemons, which is the
// paper's key performance decision. Receives are serviced from a queue
// filled by the VNI's polling goroutines (§2.2.1), so a blocking receive
// whose message already arrived is a queue pop, not a kernel interaction.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

// API errors.
var (
	ErrClosed    = errors.New("mpi: communicator closed")
	ErrBadRank   = errors.New("mpi: rank out of range")
	ErrPeerDead  = errors.New("mpi: peer rank failed")
	ErrTooLarge  = errors.New("mpi: message exceeds wire.MaxPayload")
	ErrBadLength = errors.New("mpi: buffer length mismatch")
)

// msgPool recycles the Msg header structs built once per send. Both
// transports consume the Msg before Send returns — fastnet copies it by
// value into the queue, TCP serializes it onto the socket — so the struct
// is dead the moment NIC.Send comes back and can be reused. At the
// chunked collectives' message rates this is the send path's only
// steady-state allocation.
var msgPool = sync.Pool{New: func() any { return new(wire.Msg) }}

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source wire.Rank
	Tag    int32
	// Interval is the sender's checkpoint-interval index at send time
	// (uncoordinated C/R dependency tracking).
	Interval uint64
	// Pooled reports that the payload delivered with this status is owned
	// by the receiver via the wire.BufPool discipline: the receiver may
	// hand it back with wire.PutBuf (or resend it with SendOwned) once
	// done, closing the zero-copy recycling loop. Ignoring it is safe —
	// the buffer is then simply garbage-collected.
	Pooled bool
}

// Config assembles a communicator.
type Config struct {
	App  wire.AppID
	Rank wire.Rank
	Size int
	// NIC is the process's data-path endpoint.
	NIC *vni.NIC
	// Addrs maps every rank to its data-path address.
	Addrs map[wire.Rank]string
	// Timer, when non-nil, records per-layer times (Figure 6).
	Timer *vni.StageTimer
	// OnMarker is invoked from the progress goroutine when a
	// Chandy–Lamport marker arrives on the data path.
	OnMarker func(src wire.Rank, ckptID uint64)
	// OnReceive is invoked (from the progress goroutine) for every data
	// message, with the sender's interval — the C/R module records the
	// dependency.
	OnReceive func(src wire.Rank, srcInterval uint64)
	// LogSends keeps a copy of every outgoing data message (sender-based
	// message logging). The uncoordinated C/R protocol persists the log
	// with each checkpoint and replays it at restart so that messages a
	// rolled-back receiver forgot are not lost.
	LogSends bool
	// Coll, when non-nil, overrides the collective algorithm tuning table
	// (crossover thresholds, segment sizes). Nil means DefaultCollTuning.
	Coll *CollTuning
	// SentCounts/RecvCounts seed the per-pair sequence counters before the
	// progress engine starts. A restarted rank MUST seed its restored counts
	// here rather than install them afterwards: peers that finished their own
	// restore earlier are already re-sending, and any message accepted while
	// the counters still read zero would bypass duplicate suppression and
	// linger in the unexpected queue as a stale extra token.
	SentCounts map[wire.Rank]uint64
	RecvCounts map[wire.Rank]uint64
}

// envelope is a matched or matchable message inside the engine.
type envelope struct {
	src      wire.Rank
	tag      int32
	data     []byte
	pooled   bool // data is pool-owned; ownership passes to the receiver
	interval uint64
	seq      uint64
	arrived  time.Time
}

// RecordedMsg is one data message captured outside the live queue: channel
// state recorded by Chandy–Lamport, pending messages captured with a
// checkpoint, or an entry of the sender-side message log.
type RecordedMsg struct {
	Src      wire.Rank
	Dst      wire.Rank // used by sender-log entries
	Tag      int32
	Data     []byte
	Interval uint64
	Seq      uint64
}

// Comm is a communicator over a fixed set of ranks (one incarnation of an
// application). All methods are safe for concurrent use.
type Comm struct {
	cfg Config

	mu         sync.Mutex
	cond       *sync.Cond
	unexpected []envelope
	closed     bool
	dead       map[wire.Rank]bool
	paused     bool

	sentCount map[wire.Rank]uint64
	recvCount map[wire.Rank]uint64

	interval uint64

	recording    bool
	recordFrom   map[wire.Rank]bool
	recorded     []RecordedMsg
	recordCkptID uint64

	heldFrom map[wire.Rank]bool
	held     []envelope

	sentLog []RecordedMsg

	coll CollTuning

	// One-entry cache of the even chunk geometry (guarded by mu): the
	// chunked collectives recompute the same counts/offs every call, and a
	// steady workload repeats one message size.
	collGeomTotal int
	collGeomAlign int
	collGeomCnts  []int
	collGeomOffs  []int

	done chan struct{}
	wg   sync.WaitGroup

	// onClose, if set, runs after the progress engine stops (used by
	// owners that want the NIC torn down with the communicator).
	onClose func()
}

// New creates a communicator and starts its progress engine.
func New(cfg Config) (*Comm, error) {
	if cfg.Size <= 0 || int(cfg.Rank) < 0 || int(cfg.Rank) >= cfg.Size {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrBadRank, cfg.Rank, cfg.Size)
	}
	c := &Comm{
		cfg:       cfg,
		dead:      make(map[wire.Rank]bool),
		sentCount: make(map[wire.Rank]uint64),
		recvCount: make(map[wire.Rank]uint64),
		done:      make(chan struct{}),
	}
	for r, n := range cfg.SentCounts {
		c.sentCount[r] = n
	}
	for r, n := range cfg.RecvCounts {
		c.recvCount[r] = n
	}
	if cfg.Coll != nil {
		c.coll = *cfg.Coll
	} else {
		c.coll = DefaultCollTuning()
	}
	c.coll.normalize()
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(1)
	go c.progress()
	return c, nil
}

// Rank returns this process's rank.
func (c *Comm) Rank() wire.Rank { return c.cfg.Rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.cfg.Size }

// App returns the application id.
func (c *Comm) App() wire.AppID { return c.cfg.App }

// progress drains the NIC queue into the matching engine. This is the
// consumer side of the paper's polling-thread design.
func (c *Comm) progress() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case m := <-c.cfg.NIC.Queue():
			c.handle(m)
		}
	}
}

func (c *Comm) handle(m wire.Msg) {
	if m.App != c.cfg.App {
		m.Release() // stale traffic from a previous incarnation
		return
	}
	switch m.Type {
	case wire.TData:
		arrived := time.Time{}
		if c.cfg.Timer != nil {
			arrived = time.Now()
		}
		interval := uint64(m.Kind)
		// The pooled transport buffer goes straight into the matcher —
		// the receive path performs no copy; the application becomes the
		// payload's owner when Recv matches it.
		env := envelope{src: m.Src, tag: m.Tag, data: m.Payload, pooled: m.Pooled, interval: interval, seq: m.Seq, arrived: arrived}
		c.mu.Lock()
		// Duplicate suppression: after a restart, the sender-side log is
		// replayed and may include messages this rank's restored state
		// already consumed; their per-pair sequence numbers are not
		// beyond our receive count.
		if env.seq != 0 && env.seq <= c.recvCount[m.Src] {
			c.mu.Unlock()
			m.Release()
			return
		}
		c.mu.Unlock()
		if c.cfg.OnReceive != nil {
			c.cfg.OnReceive(m.Src, interval)
		}
		c.mu.Lock()
		if c.heldFrom[m.Src] {
			// Channel is cut (its marker arrived before the local
			// snapshot): divert post-marker messages until the snapshot
			// is taken, so the state capture cannot include them.
			c.held = append(c.held, env)
			c.mu.Unlock()
			return
		}
		if c.recording && c.recordFrom[m.Src] {
			wire.CountCopy(wire.CopyCR, len(m.Payload))
			c.recorded = append(c.recorded, RecordedMsg{
				Src: m.Src, Tag: m.Tag,
				Data:     append([]byte(nil), m.Payload...),
				Interval: interval, Seq: env.seq,
			})
		}
		c.unexpected = append(c.unexpected, env)
		c.bumpRecvLocked(m.Src, env.seq)
		c.cond.Broadcast()
		c.mu.Unlock()
		if c.cfg.Timer != nil {
			c.cfg.Timer.Add(vni.StageVNIRecv, time.Since(arrived))
		}
	case wire.TCheckpoint:
		// Only markers travel in-band on the data path.
		if c.cfg.OnMarker != nil {
			r := wire.NewReader(m.Payload)
			id := r.U64()
			if r.Err() == nil {
				c.cfg.OnMarker(m.Src, id)
			}
		}
		m.Release()
	default:
		m.Release() // not fast-path traffic; recycle and drop
	}
}

// bumpRecvLocked advances the per-peer receive count: sequenced messages
// set it to their sequence number, unsequenced ones (raw test traffic,
// injected channel state) just increment.
func (c *Comm) bumpRecvLocked(src wire.Rank, seq uint64) {
	if seq != 0 {
		if seq > c.recvCount[src] {
			c.recvCount[src] = seq
		}
		return
	}
	c.recvCount[src]++
}

// ---- point-to-point ----

// Send transmits buf to dst with the given tag. It blocks until the
// message is handed to the transport (eager/buffered semantics: the caller
// may immediately reuse buf). Sends block while the communicator is paused
// by a stop-and-sync checkpoint.
//
// This is the MPI API boundary, and the one place on the fast path where a
// payload copy is mandatory: MPI semantics return buf to the caller, so
// Send stages it once into a pooled buffer that then travels application →
// MPI → VNI → receiver with no further copies (see "Fast-path copy budget"
// in DESIGN.md). Callers that can give up their buffer use SendOwned and
// skip even that copy.
func (c *Comm) Send(dst wire.Rank, tag int32, buf []byte) error {
	return c.send(dst, tag, buf, false)
}

// SendOwned is the zero-copy variant of Send: ownership of payload — a
// buffer checked out of the wire.BufPool (wire.GetBuf), or one delivered by
// a Recv whose Status reported Pooled — transfers to the library, which
// moves it through the transport without copying. The caller must not
// read, reuse, or release payload after SendOwned returns, success or not.
func (c *Comm) SendOwned(dst wire.Rank, tag int32, payload []byte) error {
	return c.send(dst, tag, payload, true)
}

func (c *Comm) send(dst wire.Rank, tag int32, buf []byte, owned bool) error {
	var t0 time.Time
	if c.cfg.Timer != nil {
		t0 = time.Now()
	}
	releaseOnErr := func() {
		if owned {
			wire.PutBuf(buf)
		}
	}
	if int(dst) < 0 || int(dst) >= c.cfg.Size {
		releaseOnErr()
		return fmt.Errorf("%w: dst %d", ErrBadRank, dst)
	}
	if len(buf) > wire.MaxPayload {
		releaseOnErr()
		return ErrTooLarge
	}

	c.mu.Lock()
	for c.paused && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		releaseOnErr()
		return ErrClosed
	}
	if c.dead[dst] {
		c.mu.Unlock()
		releaseOnErr()
		return fmt.Errorf("%w: rank %d", ErrPeerDead, dst)
	}
	addr, ok := c.cfg.Addrs[dst]
	interval := c.interval
	c.sentCount[dst]++
	seq := c.sentCount[dst]
	if c.cfg.LogSends {
		wire.CountCopy(wire.CopyCR, len(buf))
		c.sentLog = append(c.sentLog, RecordedMsg{
			Src: c.cfg.Rank, Dst: dst, Tag: tag,
			Data:     append([]byte(nil), buf...),
			Interval: interval, Seq: seq,
		})
	}
	c.mu.Unlock()
	if !ok {
		releaseOnErr()
		return fmt.Errorf("%w: no address for rank %d", ErrBadRank, dst)
	}

	// Stage the caller's buffer into a pooled payload (the single
	// API-boundary copy); an owned payload moves through as-is.
	payload, pooled := buf, owned && len(buf) > 0
	if !owned && len(buf) > 0 {
		var missed bool
		payload, missed = wire.Pool.GetAlloc(len(buf))
		copy(payload, buf)
		pooled = true
		wire.CountCopy(wire.CopyBoundary, len(buf))
		if c.cfg.Timer != nil {
			c.cfg.Timer.AddCopy(vni.StageMPISend, len(buf))
			if missed {
				c.cfg.Timer.AddAlloc(vni.StageMPISend)
			}
		}
	}
	m := msgPool.Get().(*wire.Msg)
	*m = wire.Msg{
		Type: wire.TData, App: c.cfg.App, Kind: uint16(interval),
		Src: c.cfg.Rank, Dst: dst, Tag: tag, Seq: seq,
		Payload: payload, Pooled: pooled,
	}
	var t1 time.Time
	if c.cfg.Timer != nil {
		t1 = time.Now()
		c.cfg.Timer.Add(vni.StageMPISend, t1.Sub(t0))
	}
	err := c.cfg.NIC.Send(addr, m)
	if c.cfg.Timer != nil {
		c.cfg.Timer.Add(vni.StageVNISend, time.Since(t1))
	}
	if err != nil {
		err = c.sendRetry(dst, addr, m, err)
	}
	if err != nil {
		// Terminal failure: the payload never left, reclaim it.
		m.Release()
	}
	msgPool.Put(m)
	return err
}

// sendRetry handles a transport-level send failure. A dead connection is
// the first symptom of a peer-node crash, but the verdict belongs to the
// cluster: the failure detector will either mark the rank dead (notify
// policy), abort this process (restart policy), or the link flaps back.
// Until one of those happens the send stays pending, mirroring MPI
// semantics where a send to a crashed rank blocks rather than erroring.
func (c *Comm) sendRetry(dst wire.Rank, addr string, m *wire.Msg, first error) error {
	if errors.Is(first, wire.ErrPayloadTooLarge) {
		return fmt.Errorf("mpi: send to rank %d: %w", dst, first)
	}
	for {
		c.mu.Lock()
		closed, dead := c.closed, c.dead[dst]
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if dead {
			return fmt.Errorf("%w: rank %d", ErrPeerDead, dst)
		}
		// Deliberate backoff between redial attempts; the loop exits via
		// the closed/dead checks above when recovery declares the peer gone.
		time.Sleep(time.Millisecond)
		c.cfg.NIC.Disconnect(addr) // drop the dead connection, then redial
		if err := c.cfg.NIC.Send(addr, m); err == nil {
			return nil
		}
	}
}

// matches reports whether env satisfies a receive posted for (src, tag).
func matches(env *envelope, src wire.Rank, tag int32) bool {
	if src != wire.AnyRank && env.src != src {
		return false
	}
	if tag != wire.AnyTag && env.tag != tag {
		return false
	}
	return true
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be wire.AnyRank and tag wire.AnyTag. The caller owns
// the returned payload; when the status reports Pooled, handing it back
// with wire.PutBuf (or forwarding it with SendOwned) closes the fast
// path's zero-allocation recycling loop.
func (c *Comm) Recv(src wire.Rank, tag int32) ([]byte, Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i := range c.unexpected {
			if matches(&c.unexpected[i], src, tag) {
				env := c.unexpected[i]
				c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
				if c.cfg.Timer != nil && !env.arrived.IsZero() {
					c.cfg.Timer.Add(vni.StageMPIRecv, time.Since(env.arrived))
				}
				return env.data, Status{Source: env.src, Tag: env.tag, Interval: env.interval, Pooled: env.pooled}, nil
			}
		}
		if c.closed {
			return nil, Status{}, ErrClosed
		}
		if src != wire.AnyRank && c.dead[src] {
			return nil, Status{}, fmt.Errorf("%w: rank %d", ErrPeerDead, src)
		}
		c.cond.Wait()
	}
}

// Probe blocks until a matching message is available without receiving it,
// returning its status (like MPI_Probe).
func (c *Comm) Probe(src wire.Rank, tag int32) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i := range c.unexpected {
			if matches(&c.unexpected[i], src, tag) {
				e := &c.unexpected[i]
				return Status{Source: e.src, Tag: e.tag, Interval: e.interval}, nil
			}
		}
		if c.closed {
			return Status{}, ErrClosed
		}
		if src != wire.AnyRank && c.dead[src] {
			return Status{}, fmt.Errorf("%w: rank %d", ErrPeerDead, src)
		}
		c.cond.Wait()
	}
}

// Iprobe is the non-blocking Probe: it reports whether a matching message
// is available.
func (c *Comm) Iprobe(src wire.Rank, tag int32) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.unexpected {
		if matches(&c.unexpected[i], src, tag) {
			e := &c.unexpected[i]
			return Status{Source: e.src, Tag: e.tag, Interval: e.interval}, true
		}
	}
	return Status{}, false
}

// Request is a handle on a non-blocking operation, like MPI_Request.
type Request struct {
	done   chan struct{}
	data   []byte
	status Status
	err    error
}

// Wait blocks until the operation completes and returns its result. For
// receives the returned bytes are the message payload.
func (r *Request) Wait() ([]byte, Status, error) {
	<-r.done
	return r.data, r.status, r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(dst wire.Rank, tag int32, buf []byte) *Request {
	r := &Request{done: make(chan struct{})}
	// Eager sends complete as soon as the transport takes the bytes, but
	// a paused communicator may block, so complete asynchronously. The
	// async-safety copy goes straight into a pooled buffer and moves from
	// there (one copy total, not copy-then-stage).
	data := wire.GetBuf(len(buf))
	copy(data, buf)
	if len(buf) > 0 {
		wire.CountCopy(wire.CopyBoundary, len(buf))
	}
	go func() {
		r.err = c.SendOwned(dst, tag, data)
		close(r.done)
	}()
	return r
}

// IsendOwned starts a non-blocking send of a pool-owned payload (same
// ownership contract as SendOwned: the caller must not touch payload after
// the call). Collectives use it to fan segments out to several children
// concurrently without the Isend staging copy.
func (c *Comm) IsendOwned(dst wire.Rank, tag int32, payload []byte) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.err = c.SendOwned(dst, tag, payload)
		close(r.done)
	}()
	return r
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(src wire.Rank, tag int32) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.data, r.status, r.err = c.Recv(src, tag)
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- Starfish C/R hooks ----

// SetInterval sets the checkpoint-interval index stamped on outgoing data
// messages (uncoordinated C/R).
func (c *Comm) SetInterval(n uint64) {
	c.mu.Lock()
	c.interval = n
	c.mu.Unlock()
}

// Interval returns the current checkpoint-interval index.
func (c *Comm) Interval() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interval
}

// PauseSends blocks all subsequent Send calls until ResumeSends — the
// "stop" phase of stop-and-sync.
func (c *Comm) PauseSends() {
	c.mu.Lock()
	c.paused = true
	c.mu.Unlock()
}

// ResumeSends releases senders blocked by PauseSends.
func (c *Comm) ResumeSends() {
	c.mu.Lock()
	c.paused = false
	c.cond.Broadcast()
	c.mu.Unlock()
}

// SentCounts returns a snapshot of cumulative data messages sent per peer.
func (c *Comm) SentCounts() map[wire.Rank]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[wire.Rank]uint64, len(c.sentCount))
	for r, n := range c.sentCount {
		out[r] = n
	}
	return out
}

// RecvCounts returns a snapshot of cumulative data messages received per
// peer.
func (c *Comm) RecvCounts() map[wire.Rank]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[wire.Rank]uint64, len(c.recvCount))
	for r, n := range c.recvCount {
		out[r] = n
	}
	return out
}

// WaitDrained blocks until, for every peer in targets, this communicator
// has received at least the given number of data messages — the "sync"
// phase of stop-and-sync (targets are the peers' announced sent counts).
func (c *Comm) WaitDrained(targets map[wire.Rank]uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		drained := true
		for r, want := range targets {
			if c.recvCount[r] < want {
				drained = false
				break
			}
		}
		if drained {
			return nil
		}
		if c.closed {
			return ErrClosed
		}
		c.cond.Wait()
	}
}

// SendMarker sends a Chandy–Lamport marker for checkpoint id on the data
// channel to dst. Markers travel in-band: they are FIFO-ordered with data
// messages on the same channel, which is what makes the snapshot cut
// consistent.
func (c *Comm) SendMarker(dst wire.Rank, ckptID uint64) error {
	addr, ok := c.cfg.Addrs[dst]
	if !ok {
		return fmt.Errorf("%w: no address for rank %d", ErrBadRank, dst)
	}
	payload := wire.GetBuf(8)
	binary.BigEndian.PutUint64(payload, ckptID)
	// Pooled: the receiver's marker handler releases it after decoding, so
	// steady marker traffic recycles one 8-byte-class buffer.
	m := wire.Msg{Type: wire.TCheckpoint, App: c.cfg.App, Src: c.cfg.Rank, Dst: dst, Payload: payload, Pooled: true}
	err := c.cfg.NIC.Send(addr, &m)
	if err != nil {
		m.Release()
	}
	return err
}

// StartRecording begins capturing incoming data messages from every peer
// in from (typically all peers except self) as channel state for
// checkpoint ckptID. Recorded messages are still delivered normally.
func (c *Comm) StartRecording(ckptID uint64, from []wire.Rank) {
	c.mu.Lock()
	c.recording = true
	c.recordCkptID = ckptID
	c.recordFrom = make(map[wire.Rank]bool, len(from))
	for _, r := range from {
		c.recordFrom[r] = true
	}
	c.recorded = nil
	c.mu.Unlock()
}

// StopRecordingFrom stops recording the channel from src (its marker
// arrived) and reports whether any channels are still being recorded.
func (c *Comm) StopRecordingFrom(src wire.Rank) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.recordFrom, src)
	if len(c.recordFrom) == 0 {
		c.recording = false
	}
	return c.recording
}

// Recorded returns the channel-state messages captured since
// StartRecording.
func (c *Comm) Recorded() []RecordedMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RecordedMsg(nil), c.recorded...)
}

// InjectRecorded replays messages from a restored checkpoint into the
// receive queue, as if they had just arrived. counted says whether these
// messages advance the receive counts: pending-queue messages were already
// counted before the snapshot (pass false), while recorded channel-state
// messages arrived after it (pass true).
func (c *Comm) InjectRecorded(msgs []RecordedMsg, counted bool) {
	c.mu.Lock()
	for _, m := range msgs {
		c.unexpected = append(c.unexpected, envelope{
			src: m.Src, tag: m.Tag, data: m.Data, interval: m.Interval, seq: m.Seq,
		})
		if counted {
			c.bumpRecvLocked(m.Src, m.Seq)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// SetCounts restores the per-peer cumulative send/receive counters from a
// checkpoint, re-establishing per-pair sequence continuity across the
// restart.
//
// Deprecated for the restart path: installing counts after New leaves a
// window in which the already-running progress engine accepts (and fails to
// suppress) stale duplicates from peers that restored faster. Restarted
// ranks must seed Config.SentCounts/RecvCounts instead; SetCounts remains
// for tests and for callers that can guarantee no in-flight traffic.
func (c *Comm) SetCounts(sent, recv map[wire.Rank]uint64) {
	c.mu.Lock()
	c.sentCount = make(map[wire.Rank]uint64, len(sent))
	for r, n := range sent {
		c.sentCount[r] = n
	}
	c.recvCount = make(map[wire.Rank]uint64, len(recv))
	for r, n := range recv {
		c.recvCount[r] = n
	}
	c.mu.Unlock()
}

// TakeSentLog returns and clears the sender-side message log (the sends of
// the checkpoint interval just closed). Requires Config.LogSends.
func (c *Comm) TakeSentLog() []RecordedMsg {
	c.mu.Lock()
	log := c.sentLog
	c.sentLog = nil
	c.mu.Unlock()
	return log
}

// Replay retransmits a logged message verbatim — original tag, per-pair
// sequence number and interval — so the receiver's duplicate suppression
// and dependency tracking see exactly the original send.
func (c *Comm) Replay(m RecordedMsg) error {
	addr, ok := c.cfg.Addrs[m.Dst]
	if !ok {
		return fmt.Errorf("%w: no address for rank %d", ErrBadRank, m.Dst)
	}
	out := wire.Msg{
		Type: wire.TData, App: c.cfg.App, Kind: uint16(m.Interval),
		Src: c.cfg.Rank, Dst: m.Dst, Tag: m.Tag, Seq: m.Seq,
		Payload: m.Data,
	}
	return c.cfg.NIC.Send(addr, &out)
}

// HoldFrom diverts subsequent incoming data messages from src into a side
// buffer until the next Cut. Chandy–Lamport calls this when a marker
// arrives before the local snapshot: messages behind the marker are
// post-snapshot and must not enter the capturable queue.
func (c *Comm) HoldFrom(src wire.Rank) {
	c.mu.Lock()
	if c.heldFrom == nil {
		c.heldFrom = make(map[wire.Rank]bool)
	}
	c.heldFrom[src] = true
	c.mu.Unlock()
}

// Cut is the snapshot point of the MPI layer: atomically it (1) captures
// the current pending (received-but-unconsumed) messages — they are part
// of the process checkpoint, (2) starts channel recording from the ranks
// in recordFrom, and (3) releases every held channel, delivering the
// diverted post-marker messages normally. It returns the captured pending
// messages together with the send/receive counters as of the cut.
func (c *Comm) Cut(ckptID uint64, recordFrom []wire.Rank) (pendingMsgs []RecordedMsg, sent, recv map[wire.Rank]uint64) {
	c.mu.Lock()
	pending := make([]RecordedMsg, 0, len(c.unexpected))
	for _, env := range c.unexpected {
		wire.CountCopy(wire.CopyCR, len(env.data))
		pending = append(pending, RecordedMsg{
			Src: env.src, Tag: env.tag,
			Data:     append([]byte(nil), env.data...),
			Interval: env.interval, Seq: env.seq,
		})
	}
	c.recording = len(recordFrom) > 0
	c.recordCkptID = ckptID
	c.recordFrom = make(map[wire.Rank]bool, len(recordFrom))
	for _, r := range recordFrom {
		c.recordFrom[r] = true
	}
	c.recorded = nil
	// Release held channels: their messages are post-snapshot.
	if len(c.held) > 0 {
		c.unexpected = append(c.unexpected, c.held...)
		for _, env := range c.held {
			c.bumpRecvLocked(env.src, env.seq)
		}
		c.held = nil
		c.cond.Broadcast()
	}
	c.heldFrom = nil
	sent = make(map[wire.Rank]uint64, len(c.sentCount))
	for r, n := range c.sentCount {
		sent[r] = n
	}
	recv = make(map[wire.Rank]uint64, len(c.recvCount))
	for r, n := range c.recvCount {
		recv[r] = n
	}
	c.mu.Unlock()
	return pending, sent, recv
}

// SetDead marks a rank failed: sends to it fail fast and receives naming
// it specifically return ErrPeerDead instead of hanging. Driven by
// lightweight view changes.
func (c *Comm) SetDead(rank wire.Rank) {
	c.mu.Lock()
	c.dead[rank] = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Alive returns the ranks not marked dead, ascending.
func (c *Comm) Alive() []wire.Rank {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Rank, 0, c.cfg.Size)
	for r := 0; r < c.cfg.Size; r++ {
		if !c.dead[wire.Rank(r)] {
			out = append(out, wire.Rank(r))
		}
	}
	return out
}

// Close shuts the communicator down; blocked operations return ErrClosed.
// The NIC is not closed (it belongs to the process runtime).
func (c *Comm) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	if c.onClose != nil {
		c.onClose()
	}
}
