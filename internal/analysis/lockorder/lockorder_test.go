package lockorder

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestLockorderFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
