package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedPragmasReported: an allow pragma without a reason (or
// without a check name) is itself a diagnostic — suppressions must be
// documented.
func TestMalformedPragmasReported(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

//starfish:allow errdrop
func a() {}

//starfish:allow
func b() {}

//starfish:allow errdrop this one carries the mandatory reason
func c() {}

//starfish:allowance is a different word and not our pragma
func d() {}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(testModuleRoot(t))
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(pkg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "no reason") {
		t.Errorf("diag 0 = %q, want a missing-reason report", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "names no check") {
		t.Errorf("diag 1 = %q, want a missing-check report", diags[1].Message)
	}
	for _, d := range diags {
		if d.Check != "pragma" {
			t.Errorf("diagnostic check = %q, want pragma", d.Check)
		}
	}
}

func testModuleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
