// Quickstart: boot a simulated Starfish cluster, submit an MPI job, wait
// for it, and inspect the result — the minimal end-to-end use of the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"starfish/internal/apps"
	"starfish/internal/core"
)

func main() {
	// A three-workstation cluster with a shared checkpoint store.
	env, err := core.New(core.Options{Nodes: 3, StoreDir: "/tmp/starfish-quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Shutdown()
	if err := env.WaitView(3, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: nodes %v\n", env.Nodes())

	// Submit the ring application: three MPI processes pass a token
	// around for 100 rounds and self-verify the result.
	status, err := env.Run(core.Job{
		ID:    1,
		Name:  apps.RingName,
		Args:  apps.RingArgs(100),
		Ranks: 3,
	}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application finished: status=%v generation=%d\n", status.Status, status.Gen)
	for rank, node := range status.Placement {
		fmt.Printf("  rank %d ran on node %d\n", rank, node)
	}
	if status.Status != core.StatusDone {
		log.Fatalf("run failed: %s", status.Failure)
	}
	fmt.Println("ok: 100 ring rounds verified on 3 nodes")
}
