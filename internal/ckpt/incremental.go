package ckpt

import (
	"bytes"
	"fmt"

	"starfish/internal/wire"
)

// Incremental checkpointing — the optimization family the paper points to
// via libckpt [33] and its future-work direction ("developing newer and
// faster C/R protocols"). Instead of dumping the full state every time, a
// delta checkpoint stores only the blocks that changed since a base
// checkpoint; restart reconstructs the state by applying the delta chain
// to the last full dump.
//
// Deltas operate on fixed-size blocks (DeltaBlockSize) of the raw state
// bytes; a block is included if any byte in it changed, or if the state
// grew into it. State shrinkage is carried explicitly so chains are exact.

// DeltaBlockSize is the granularity of change detection (4 KiB, a page).
const DeltaBlockSize = 4096

const deltaMagic = 0xD1FF0001

// Delta is the difference between two state snapshots.
type Delta struct {
	// BaseLen and NewLen are the byte lengths of the base and target
	// states.
	BaseLen, NewLen int
	// Blocks maps block index -> new block content (only changed or
	// newly grown blocks; the last block may be shorter than
	// DeltaBlockSize).
	Blocks map[int][]byte
}

// ComputeDelta returns the block delta that turns base into next.
//
//starfish:deterministic
func ComputeDelta(base, next []byte) *Delta {
	d := &Delta{BaseLen: len(base), NewLen: len(next), Blocks: map[int][]byte{}}
	nBlocks := (len(next) + DeltaBlockSize - 1) / DeltaBlockSize
	for b := 0; b < nBlocks; b++ {
		lo := b * DeltaBlockSize
		hi := min(lo+DeltaBlockSize, len(next))
		newBlock := next[lo:hi]
		if lo < len(base) {
			oldHi := min(lo+DeltaBlockSize, len(base))
			oldBlock := base[lo:oldHi]
			if len(oldBlock) == len(newBlock) && bytes.Equal(oldBlock, newBlock) {
				continue
			}
		}
		d.Blocks[b] = append([]byte(nil), newBlock...)
	}
	return d
}

// ByteSpan is a half-open byte range [Off, Off+Len) of an encoded state,
// used as a dirty hint: bytes outside every hint span are known unchanged.
type ByteSpan struct {
	Off, Len int
}

// ComputeDeltaHinted is ComputeDelta restricted to blocks overlapping the
// given dirty spans. A block outside every span is assumed unchanged and is
// compared only for the structural cases (growth past the base, or a length
// change of the shared tail block). The hints must be sound — a span list
// missing a genuinely changed byte produces an incorrect delta; callers
// derive spans from write tracking (see svm's dirty segments).
//
//starfish:deterministic
func ComputeDeltaHinted(base, next []byte, spans []ByteSpan) *Delta {
	if spans == nil {
		return ComputeDelta(base, next)
	}
	d := &Delta{BaseLen: len(base), NewLen: len(next), Blocks: map[int][]byte{}}
	nBlocks := (len(next) + DeltaBlockSize - 1) / DeltaBlockSize
	dirty := make([]bool, nBlocks)
	for _, sp := range spans {
		if sp.Len <= 0 {
			continue
		}
		first := max(sp.Off, 0) / DeltaBlockSize
		last := (min(sp.Off+sp.Len, len(next)) - 1) / DeltaBlockSize
		for b := first; b <= last && b < nBlocks; b++ {
			dirty[b] = true
		}
	}
	for b := 0; b < nBlocks; b++ {
		lo := b * DeltaBlockSize
		hi := min(lo+DeltaBlockSize, len(next))
		newBlock := next[lo:hi]
		if lo < len(base) {
			oldHi := min(lo+DeltaBlockSize, len(base))
			oldBlock := base[lo:oldHi]
			if len(oldBlock) == len(newBlock) {
				if !dirty[b] {
					continue // hinted clean, same geometry: unchanged
				}
				if bytes.Equal(oldBlock, newBlock) {
					continue
				}
			}
		}
		d.Blocks[b] = append([]byte(nil), newBlock...)
	}
	return d
}

// Apply reconstructs the target state from base.
func (d *Delta) Apply(base []byte) ([]byte, error) {
	if len(base) != d.BaseLen {
		return nil, fmt.Errorf("ckpt: delta expects base of %d bytes, got %d", d.BaseLen, len(base))
	}
	out := make([]byte, d.NewLen)
	copy(out, base[:min(len(base), d.NewLen)])
	for b, block := range d.Blocks {
		lo := b * DeltaBlockSize
		if lo+len(block) > d.NewLen {
			return nil, fmt.Errorf("ckpt: delta block %d overruns state", b)
		}
		copy(out[lo:], block)
	}
	return out, nil
}

// ApplyInPlace reconstructs the target state reusing base's storage when it
// is large enough, avoiding the per-link allocation of Apply during chain
// replay. The caller must own base exclusively — it is overwritten.
func (d *Delta) ApplyInPlace(base []byte) ([]byte, error) {
	if len(base) != d.BaseLen {
		return nil, fmt.Errorf("ckpt: delta expects base of %d bytes, got %d", d.BaseLen, len(base))
	}
	out := base
	if cap(out) < d.NewLen {
		out = make([]byte, d.NewLen)
		copy(out, base[:min(len(base), d.NewLen)])
	} else {
		grown := out[:d.NewLen]
		// Bytes revealed by growth must be zeroed: they may hold stale
		// content from an earlier, longer state.
		for i := len(base); i < d.NewLen; i++ {
			grown[i] = 0
		}
		out = grown
	}
	for b, block := range d.Blocks {
		lo := b * DeltaBlockSize
		if lo+len(block) > d.NewLen {
			return nil, fmt.Errorf("ckpt: delta block %d overruns state", b)
		}
		copy(out[lo:], block)
	}
	return out, nil
}

// Size returns the encoded payload size of the delta (the savings metric).
func (d *Delta) Size() int {
	n := 16
	for _, b := range d.Blocks {
		n += 8 + len(b)
	}
	return n
}

// Encode serializes the delta.
func (d *Delta) Encode() []byte {
	w := wire.NewWriter(d.Size() + 16)
	w.U32(deltaMagic)
	w.U32(uint32(d.BaseLen)).U32(uint32(d.NewLen))
	w.U32(uint32(len(d.Blocks)))
	// Deterministic order.
	maxB := (d.NewLen + DeltaBlockSize - 1) / DeltaBlockSize
	for b := 0; b < maxB; b++ {
		if block, ok := d.Blocks[b]; ok {
			w.U32(uint32(b)).Bytes32(block)
		}
	}
	return w.Bytes()
}

// DecodeDelta parses an encoded delta.
func DecodeDelta(buf []byte) (*Delta, error) {
	r := wire.NewReader(buf)
	if r.U32() != deltaMagic {
		return nil, ErrBadImage
	}
	d := &Delta{BaseLen: int(r.U32()), NewLen: int(r.U32()), Blocks: map[int][]byte{}}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		b := int(r.U32())
		d.Blocks[b] = append([]byte(nil), r.Bytes32()...)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, ErrBadImage
	}
	return d, nil
}

// DeltaChain reconstructs a state from a full base snapshot and an ordered
// sequence of deltas.
func DeltaChain(base []byte, deltas ...*Delta) ([]byte, error) {
	state := base
	for i, d := range deltas {
		next, err := d.Apply(state)
		if err != nil {
			return nil, fmt.Errorf("ckpt: delta %d: %w", i, err)
		}
		state = next
	}
	return state, nil
}
