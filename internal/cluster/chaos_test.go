package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"starfish/internal/chaosnet"
	"starfish/internal/ckpt"
	"starfish/internal/daemon"
	"starfish/internal/evstore"
	"starfish/internal/leakcheck"
	"starfish/internal/wire"
)

// The chaos soak: an MPI job checkpointing to the replicated memory store
// runs to completion while a seeded chaosnet injects kills, partitions,
// message loss and delay spikes underneath it. The Ring application is
// self-verifying — Step fails unless the final value matches the fault-free
// result — so "status Done" certifies that the output is identical to an
// undisturbed run.
//
// Fault placement follows the recovery contract of each layer: the gcs and
// rstore planes repair loss themselves (sequenced-stream retransmission,
// request retries), so they absorb drops and delays; the MPI data plane is
// loss-free but dedupes by per-pair sequence number, so it absorbs
// duplication. Data-plane delay is applied in-line (no reordering).

// chaosScenario is one entry of the soak seed table.
type chaosScenario struct {
	name string
	seed int64
	// misses, when positive, selects the miss-count failure detector
	// (Options.SuspectAfterMisses).
	misses int
	// preset programs the fault plan after the cluster forms, before the
	// application is submitted.
	preset func(ctl *chaosnet.Controller)
	// script injects mid-run faults; it runs after the first recovery line
	// commits and returns when injection is done.
	script func(t *testing.T, c *Cluster)
	// verify asserts scenario-specific postconditions after completion.
	verify func(t *testing.T, c *Cluster, ctl *chaosnet.Controller)
}

const chaosApp wire.AppID = 77

func chaosRounds() int64 {
	if testing.Short() {
		return 6000
	}
	return 20000
}

// dataFaults is the data-plane fault mix used by the scenarios that inject
// there (duplication only: the data plane has no retransmission, so loss
// would wedge the job rather than exercise recovery).
var dataFaults = chaosnet.Faults{Dup: 0.02}

func runChaosScenario(t *testing.T, sc chaosScenario) {
	// Registered before the cluster exists so its cleanup runs after
	// Shutdown; slack covers runtime/testing helpers, not ours.
	leakcheck.Check(t, 4)
	c, err := New(Options{
		Nodes:              4,
		StoreDir:           t.TempDir(),
		HeartbeatEvery:     10 * time.Millisecond,
		FailAfter:          600 * time.Millisecond,
		SuspectAfterMisses: sc.misses,
		ChaosSeed:          sc.seed,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	waitMainView(t, c, 4)
	ctl := c.Chaos()
	if ctl == nil {
		t.Fatal("cluster built without chaos controller")
	}
	if sc.preset != nil {
		sc.preset(ctl)
	}

	spec := ringSpec(chaosApp, 3, chaosRounds())
	spec.CkptEverySteps = 1000
	spec.Store = ckpt.StoreMemory
	if err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if sc.script != nil {
		if _, err := c.WaitCommittedLine(chaosApp, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		sc.script(t, c)
	}
	info, err := c.WaitApp(chaosApp, 120*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
	ctl.Heal()
	ctl.ClearFaults()
	if sc.verify != nil {
		sc.verify(t, c, ctl)
	}
}

// verifyDataTraces checks the fixed-seed determinism contract end to end:
// every data-plane stream's recorded fault trace must equal the offline
// Replay of (seed, stream id) under the faults the scenario programmed.
// Data streams only come into existence after the preset runs, so their
// fault plan is constant over their whole index range.
func verifyDataTraces(t *testing.T, ctl *chaosnet.Controller, seed int64, f chaosnet.Faults) {
	t.Helper()
	n := 0
	for _, id := range ctl.Streams() {
		if !strings.HasPrefix(id.Addr, "data-") {
			continue
		}
		trace := ctl.Trace(id)
		if len(trace) == 0 {
			continue
		}
		want := chaosnet.Replay(seed, id, len(trace), f)
		if !bytes.Equal(trace, want) {
			t.Errorf("stream %v: trace diverges from replay (seed %#x)", id, seed)
		}
		n++
	}
	if n == 0 {
		t.Error("no data-plane streams recorded a trace")
	}
}

// evWait polls an event store until the query matches at least min
// records, then returns the matches. Event emission is asynchronous (a
// component's Emit returns before the record lands in the store), so
// at-least-N assertions must absorb the drain delay; the returned slice is
// the settled result for exact-count checks.
func evWait(t *testing.T, st *evstore.Store, query string, min int) []evstore.Record {
	t.Helper()
	q, err := evstore.ParseQuery(query)
	if err != nil {
		t.Fatalf("evWait %q: %v", query, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := st.Query(q)
		if len(recs) >= min || time.Now().After(deadline) {
			return recs
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crashRankNode kills node 3 (host of rank 2 under the round-robin
// placement over nodes 1..4) abruptly; the survivors must detect it and
// restart the rank from the last committed line.
func crashRankNode(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
}

func chaosScenarios() []chaosScenario {
	// Sequence-number watermarks captured by the scripts and read by the
	// verify steps: the event plane assigns seq at receive, so "after the
	// kill" is a seq comparison, not a wall-clock one.
	var killSeq, healSeq uint64
	return []chaosScenario{
		{
			// Randomized kill: a rank-hosting node dies mid-run with light
			// data-plane duplication underneath; recovery restores from the
			// replicated memory store (the crashed node's shard is gone).
			name: "kill",
			seed: 0x5EED0001,
			preset: func(ctl *chaosnet.Controller) {
				ctl.SetClassFaults("data", dataFaults)
			},
			script: func(t *testing.T, c *Cluster) {
				killSeq = c.ContactEvents().LastSeq()
				crashRankNode(t, c)
			},
			verify: func(t *testing.T, c *Cluster, ctl *chaosnet.Controller) {
				s := ctl.Stats()
				if s.Dups == 0 {
					t.Errorf("expected data duplication, stats = %+v", s)
				}
				verifyDataTraces(t, ctl, 0x5EED0001, dataFaults)
				// The survivor's event store tells the recovery story:
				// exactly one view change per kill (detection did not
				// flap), preceded by a suspicion, followed by a restore
				// from the replicated store.
				st := c.ContactEvents()
				vcs := evWait(t, st, fmt.Sprintf("component=gcs kind=view-change seq>%d", killSeq), 1)
				if len(vcs) != 1 {
					t.Errorf("%d view changes after the kill, want exactly 1:", len(vcs))
					for _, r := range vcs {
						t.Errorf("  %s", r.String())
					}
				}
				if len(evWait(t, st, fmt.Sprintf("component=gcs kind=suspect seq>%d", killSeq), 1)) == 0 {
					t.Error("no suspicion recorded after the kill")
				}
				// The SWIM detector drives that suspicion: its own records
				// must show the probe-level story — a suspicion raised and,
				// with no refutation from the dead node, a confirmation.
				if len(evWait(t, st, fmt.Sprintf("component=gossip kind=suspect seq>%d", killSeq), 1)) == 0 {
					t.Error("no gossip-level suspicion recorded after the kill")
				}
				if len(evWait(t, st, fmt.Sprintf("component=gossip kind=confirm-dead seq>%d", killSeq), 1)) == 0 {
					t.Error("no gossip confirm-dead recorded after the kill")
				}
				if len(evWait(t, st, fmt.Sprintf("component=proc kind=restore seq>%d", killSeq), 1)) == 0 {
					t.Error("no process restore recorded after the kill")
				}
			},
		},
		{
			// Partition + heal: node 4 (an rstore replica target, hosting no
			// rank) is symmetrically cut from every peer for longer than the
			// detection budget, forcing a view change and re-replication,
			// then healed. The job must finish on the surviving majority.
			name: "partition-heal",
			seed: 0x5EED0002,
			script: func(t *testing.T, c *Cluster) {
				ctl := c.Chaos()
				for _, peer := range []string{"n1", "n2", "n3"} {
					ctl.Partition("n4", peer)
				}
				time.Sleep(1500 * time.Millisecond)
				healSeq = c.ContactEvents().LastSeq()
				ctl.Heal()
			},
			verify: func(t *testing.T, c *Cluster, ctl *chaosnet.Controller) {
				s := ctl.Stats()
				if s.PartitionDrops == 0 && s.DialsBlocked == 0 {
					t.Errorf("partition injected no faults, stats = %+v", s)
				}
				d, err := c.Daemon(1)
				if err != nil {
					t.Fatal(err)
				}
				if v := d.View(); len(v.Members) != 3 || v.Contains(4) {
					t.Errorf("survivor view = %+v, want 3 members without node 4", v)
				}
				// Excluding node 4 must re-replicate its shard exactly
				// once, during the partition; the heal itself is a
				// non-event — no new view change, no re-replication storm
				// (rstore only re-replicates on view changes, and node 4
				// stays excluded).
				st := c.ContactEvents()
				if len(evWait(t, st, fmt.Sprintf("component=rstore kind=rereplicate seq<=%d", healSeq), 1)) == 0 {
					t.Error("no re-replication recorded while node 4 was partitioned out")
				}
				if recs := evWait(t, st, fmt.Sprintf("component=rstore kind=rereplicate seq>%d", healSeq), 0); len(recs) != 0 {
					t.Errorf("%d re-replication passes after the heal, want 0 (storm)", len(recs))
				}
				if recs := evWait(t, st, fmt.Sprintf("component=gcs kind=view-change seq>%d", healSeq), 0); len(recs) != 0 {
					t.Errorf("%d view changes after the heal, want 0", len(recs))
				}
				// Node 4 left the survivors' gossip membership with the view
				// change, so the healed link must not resurrect probe traffic
				// that reads as a fresh death.
				if recs := evWait(t, st, fmt.Sprintf("component=gossip kind=confirm-dead seq>%d", healSeq), 0); len(recs) != 0 {
					t.Errorf("%d gossip confirm-dead records after the heal, want 0", len(recs))
				}
			},
		},
		{
			// 5% loss on every control plane — the main sequencer, the
			// per-group sequencer streams and the replicated store — while a
			// rank-hosting node dies: gcs recovers casts and views through
			// sequenced-stream retransmission (the per-group streams are gcs
			// engines too, so scoped casts ride the same machinery), rstore
			// through request retries. The miss-count detector keeps random
			// probe loss from reading as death.
			name:   "loss5pct",
			seed:   0x5EED0003,
			misses: 60,
			preset: func(ctl *chaosnet.Controller) {
				ctl.SetClassFaults("gcs", chaosnet.Faults{Drop: 0.05})
				ctl.SetClassFaults("lwg", chaosnet.Faults{Drop: 0.05})
				ctl.SetClassFaults("rstore", chaosnet.Faults{Drop: 0.05})
				ctl.SetClassFaults("data", dataFaults)
			},
			script: crashRankNode,
			verify: func(t *testing.T, c *Cluster, ctl *chaosnet.Controller) {
				s := ctl.Stats()
				if s.Drops == 0 {
					t.Errorf("expected control-plane drops, stats = %+v", s)
				}
				verifyDataTraces(t, ctl, 0x5EED0003, dataFaults)
			},
		},
		{
			// 100ms delay spikes on the gcs plane: heartbeats arrive late in
			// bursts. A chaosnet delay sleeps in-line, so a spike also
			// head-of-line-blocks every queued message on the link; the
			// spike rate must keep the delayed share of link time well
			// under saturation (2% x 100ms against ~150 msg/s ≈ 30%), and
			// the miss threshold (150 x 10ms probes = 1.5s) must absorb
			// chained spikes without reading them as death.
			name:   "delay-spikes",
			seed:   0x5EED0004,
			misses: 150,
			preset: func(ctl *chaosnet.Controller) {
				ctl.SetClassFaults("gcs", chaosnet.Faults{DelayProb: 0.02, Delay: 100 * time.Millisecond})
			},
			verify: func(t *testing.T, c *Cluster, ctl *chaosnet.Controller) {
				s := ctl.Stats()
				if s.Delays == 0 {
					t.Errorf("expected delay injections, stats = %+v", s)
				}
				for _, id := range c.Nodes() {
					d, err := c.Daemon(id)
					if err != nil {
						t.Fatal(err)
					}
					if v := d.View(); len(v.Members) != 4 {
						t.Errorf("node %d view = %+v: delay spikes caused a spurious view change", id, v)
					}
				}
				info, _ := c.AnyDaemon().AppInfo(chaosApp)
				if info.Gen != 1 {
					t.Errorf("app gen = %d: delay spikes caused a spurious restart", info.Gen)
				}
			},
		},
	}
}

// TestChaosSoak runs the full seed table. check.sh runs the two-seed short
// soak (`-short -run 'TestChaosSoak/(kill|loss5pct)'`); `make chaos` runs
// everything under -race.
func TestChaosSoak(t *testing.T) {
	for _, sc := range chaosScenarios() {
		t.Run(sc.name, func(t *testing.T) { runChaosScenario(t, sc) })
	}
}

// TestChaosTransparentLayer pins down that a chaos cluster with no faults
// programmed behaves exactly like a plain one: the decorator must be
// invisible when idle.
func TestChaosTransparentLayer(t *testing.T) {
	leakcheck.Check(t, 4)
	c, err := New(Options{
		Nodes:          3,
		StoreDir:       t.TempDir(),
		HeartbeatEvery: 10 * time.Millisecond,
		FailAfter:      600 * time.Millisecond,
		ChaosSeed:      0x5EED0099,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	waitMainView(t, c, 3)
	if err := c.Submit(ringSpec(chaosApp, 3, 200)); err != nil {
		t.Fatal(err)
	}
	info, err := c.WaitApp(chaosApp, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != daemon.StatusDone {
		t.Fatalf("status = %v, failure = %q", info.Status, info.Failure)
	}
	s := c.Chaos().Stats()
	if s.Drops+s.Dups+s.Delays+s.PartitionDrops+s.DialsBlocked+s.DialsKilled+s.Resets != 0 {
		t.Errorf("idle chaos layer injected faults: %+v", s)
	}
}
