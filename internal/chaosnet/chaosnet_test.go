package chaosnet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

// pair dials a wrapped connection from src to addr and returns both ends.
func pair(t *testing.T, n *Net, src, addr string) (dial, accept vni.Conn) {
	t.Helper()
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	acceptCh := make(chan vni.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	d, err := n.Node(src).Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	a := <-acceptCh
	t.Cleanup(func() { d.Close(); a.Close() })
	return d, a
}

// waitFor polls cond until it holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func msg(seq uint64) *wire.Msg {
	return &wire.Msg{Type: wire.TData, Seq: seq, Payload: []byte("payload")}
}

// recvSeqs receives n messages, returning their sequence numbers.
func recvSeqs(t *testing.T, c vni.Conn, n int) []uint64 {
	t.Helper()
	out := make([]uint64, 0, n)
	for len(out) < n {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("recv after %d of %d: %v", len(out), n, err)
		}
		out = append(out, m.Seq)
		m.Release()
	}
	return out
}

func TestPassThroughWithoutFaults(t *testing.T) {
	n := New(vni.NewFastnet(0), 1, Config{})
	d, a := pair(t, n, "n1", "n2")
	for i := uint64(0); i < 100; i++ {
		if err := d.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := recvSeqs(t, a, 100)
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("seq %d at position %d", s, i)
		}
	}
	if st := n.Controller().Stats(); st.Drops+st.Dups+st.Delays != 0 {
		t.Fatalf("unexpected faults injected: %+v", st)
	}
}

func TestDropAndDupMatchTrace(t *testing.T) {
	n := New(vni.NewFastnet(0), 42, Config{})
	f := Faults{Drop: 0.3, Dup: 0.2}
	n.Controller().SetLinkFaults("n1", "n2", f)
	d, a := pair(t, n, "n1", "n2")

	const total = 500
	for i := uint64(0); i < total; i++ {
		if err := d.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	id := StreamID{Src: "n1", Addr: "n2"}
	trace := n.Controller().Trace(id)
	if len(trace) != total {
		t.Fatalf("trace length %d, want %d", len(trace), total)
	}
	// Expected delivery: each non-dropped message once, duplicated ones
	// twice, in order.
	var want []uint64
	for i, b := range trace {
		if b&FDrop != 0 {
			continue
		}
		want = append(want, uint64(i))
		if b&FDup != 0 {
			want = append(want, uint64(i))
		}
	}
	if len(want) == total || len(want) == 0 {
		t.Fatalf("degenerate fault plan: %d of %d delivered", len(want), total)
	}
	got := recvSeqs(t, a, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got seq %d, want %d", i, got[i], want[i])
		}
	}
	st := n.Controller().Stats()
	if st.Drops == 0 || st.Dups == 0 {
		t.Fatalf("expected drops and dups, got %+v", st)
	}
}

func TestInboundFaults(t *testing.T) {
	n := New(vni.NewFastnet(0), 7, Config{})
	// Faults on the reverse direction n2→n1: applied at the dialer's Recv.
	n.Controller().SetLinkFaults("n2", "n1", Faults{Drop: 0.4})
	d, a := pair(t, n, "n1", "n2")

	const total = 300
	for i := uint64(0); i < total; i++ {
		if err := a.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	trace := Replay(7, StreamID{Src: "n1", Addr: "n2", Inbound: true}, total, Faults{Drop: 0.4})
	var want []uint64
	for i, b := range trace {
		if b&FDrop == 0 {
			want = append(want, uint64(i))
		}
	}
	got := recvSeqs(t, d, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got seq %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []byte {
		n := New(vni.NewFastnet(0), seed, Config{})
		n.Controller().SetDefaultFaults(Faults{Drop: 0.2, Dup: 0.1, DelayProb: 0.05, Delay: time.Microsecond})
		d, a := pair(t, n, "n1", "n2")
		for i := uint64(0); i < 200; i++ {
			if err := d.Send(msg(i)); err != nil {
				t.Fatal(err)
			}
			if err := a.Send(msg(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Drain the inbound side so the in-stream advances deterministically.
		tr := n.Controller().Trace(StreamID{Src: "n1", Addr: "n2", Inbound: true})
		deliver := 0
		for _, b := range tr {
			if b&FDrop == 0 {
				deliver++
				if b&FDup != 0 {
					deliver++
				}
			}
		}
		recvSeqs(t, d, deliver)
		out := n.Controller().Trace(StreamID{Src: "n1", Addr: "n2"})
		in := n.Controller().Trace(StreamID{Src: "n1", Addr: "n2", Inbound: true})
		return append(append([]byte(nil), out...), in...)
	}
	a1, a2 := run(99), run(99)
	if !bytes.Equal(a1, a2) {
		t.Fatal("same seed produced different traces")
	}
	b := run(100)
	if bytes.Equal(a1, b) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestReplayMatchesRecordedTrace(t *testing.T) {
	n := New(vni.NewFastnet(0), 1234, Config{})
	f := Faults{Drop: 0.15, Dup: 0.1, DelayProb: 0.2, Delay: time.Microsecond}
	n.Controller().SetDefaultFaults(f)
	d, _ := pair(t, n, "a", "b")
	for i := uint64(0); i < 400; i++ {
		if err := d.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range n.Controller().Streams() {
		rec := n.Controller().Trace(id)
		rep := Replay(1234, id, len(rec), f)
		if !bytes.Equal(rec, rep) {
			t.Fatalf("stream %v: recorded trace diverges from pure replay", id)
		}
	}
}

func TestStreamSurvivesRedial(t *testing.T) {
	// A re-dialed link must continue its decision stream, not restart it.
	n := New(vni.NewFastnet(0), 5, Config{})
	f := Faults{Drop: 0.5}
	n.Controller().SetLinkFaults("n1", "n2", f)

	ln, err := n.Listen("n2")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					m.Release()
				}
			}()
		}
	}()

	for redial := 0; redial < 3; redial++ {
		c, err := n.Node("n1").Dial("n2")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := c.Send(msg(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}
	rec := n.Controller().Trace(StreamID{Src: "n1", Addr: "n2"})
	if len(rec) != 150 {
		t.Fatalf("stream length %d after 3 dials, want 150", len(rec))
	}
	if !bytes.Equal(rec, Replay(5, StreamID{Src: "n1", Addr: "n2"}, 150, f)) {
		t.Fatal("redialed stream diverges from replay")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(vni.NewFastnet(0), 3, Config{})
	ctl := n.Controller()
	d, a := pair(t, n, "n1", "n2")

	// Poll the dial side continuously, the way a NIC poller does: traffic
	// arriving while the partition is up is judged (and dropped) at Recv.
	inbound := make(chan uint64, 8)
	go func() {
		for {
			m, err := d.Recv()
			if err != nil {
				return
			}
			inbound <- m.Seq
			m.Release()
		}
	}()

	ctl.Partition("n1", "n2")
	if err := d.Send(msg(1)); err != ErrPartitioned {
		t.Fatalf("send across partition: %v, want ErrPartitioned", err)
	}
	if _, err := n.Node("n1").Dial("n2"); err != ErrPartitioned {
		t.Fatalf("dial across partition: %v, want ErrPartitioned", err)
	}
	// In-flight traffic toward the dialer vanishes.
	if err := a.Send(msg(2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ctl.Stats().PartitionDrops >= 2 })
	ctl.Heal()
	if err := d.Send(msg(3)); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if err := a.Send(msg(4)); err != nil {
		t.Fatal(err)
	}
	got := recvSeqs(t, a, 1)
	if got[0] != 3 {
		t.Fatalf("accept side got seq %d, want 3", got[0])
	}
	if s := <-inbound; s != 4 {
		t.Fatalf("dial side got seq %d, want 4 (seq 2 crossed a partition)", s)
	}
	if st := ctl.Stats(); st.PartitionDrops == 0 || st.DialsBlocked == 0 {
		t.Fatalf("partition counters not bumped: %+v", st)
	}
}

func TestOneWayPartition(t *testing.T) {
	n := New(vni.NewFastnet(0), 3, Config{})
	ctl := n.Controller()
	d, a := pair(t, n, "n1", "n2")

	inbound := make(chan uint64, 8)
	go func() {
		for {
			m, err := d.Recv()
			if err != nil {
				return
			}
			inbound <- m.Seq
			m.Release()
		}
	}()

	ctl.PartitionOneWay("n2", "n1")
	// n1→n2 still works.
	if err := d.Send(msg(1)); err != nil {
		t.Fatal(err)
	}
	if got := recvSeqs(t, a, 1); got[0] != 1 {
		t.Fatalf("got seq %d, want 1", got[0])
	}
	// n2→n1 is cut: the accept side's send is swallowed at the dialer.
	if err := a.Send(msg(2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ctl.Stats().PartitionDrops >= 1 })
	ctl.Heal()
	if err := a.Send(msg(3)); err != nil {
		t.Fatal(err)
	}
	if s := <-inbound; s != 3 {
		t.Fatalf("got seq %d, want 3", s)
	}
}

func TestKillDialsAndReset(t *testing.T) {
	n := New(vni.NewFastnet(0), 3, Config{})
	ctl := n.Controller()
	d, _ := pair(t, n, "n1", "n2")

	ctl.KillDialsTo("n2")
	if _, err := n.Node("n1").Dial("n2"); err != ErrDialKilled {
		t.Fatalf("dial to killed node: %v, want ErrDialKilled", err)
	}
	// The established connection still works.
	if err := d.Send(msg(1)); err != nil {
		t.Fatal(err)
	}
	ctl.AllowDialsTo("n2")

	if got := ctl.ResetLink("n1", "n2"); got != 1 {
		t.Fatalf("ResetLink closed %d conns, want 1", got)
	}
	if err := d.Send(msg(2)); err == nil {
		t.Fatal("send on reset link succeeded")
	}
	if _, err := n.Node("n1").Dial("n2"); err != nil {
		t.Fatalf("redial after reset: %v", err)
	}
}

func TestResetLinkAfter(t *testing.T) {
	n := New(vni.NewFastnet(0), 3, Config{})
	d, _ := pair(t, n, "n1", "n2")
	n.Controller().ResetLinkAfter("n1", "n2", 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := d.Send(msg(1)); err != nil {
			return // link was reset
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed reset never fired")
}

func TestDelayHoldsFIFO(t *testing.T) {
	n := New(vni.NewFastnet(0), 11, Config{})
	n.Controller().SetLinkFaults("n1", "n2", Faults{DelayProb: 0.3, Delay: 2 * time.Millisecond})
	d, a := pair(t, n, "n1", "n2")
	go func() {
		for i := uint64(0); i < 60; i++ {
			d.Send(msg(i))
		}
	}()
	got := recvSeqs(t, a, 60)
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("order violated at %d: seq %d", i, s)
		}
	}
	if st := n.Controller().Stats(); st.Delays == 0 {
		t.Fatalf("no delays injected: %+v", st)
	}
}

func TestPooledPayloadOwnership(t *testing.T) {
	n := New(vni.NewFastnet(0), 21, Config{})
	n.Controller().SetLinkFaults("n1", "n2", Faults{Drop: 0.5, Dup: 0.25})
	d, a := pair(t, n, "n1", "n2")
	go func() {
		for {
			m, err := a.Recv()
			if err != nil {
				return
			}
			m.Release()
		}
	}()
	// Pooled sends through drop/dup paths must neither leak nor double-put
	// (the pool's guard mode under `go test` catches double-puts).
	for i := uint64(0); i < 300; i++ {
		buf := wire.GetBuf(64)
		m := &wire.Msg{Type: wire.TData, Seq: i, Payload: buf[:64], Pooled: true}
		if err := d.Send(m); err != nil {
			t.Fatal(err)
		}
		if m.Pooled && m.Payload != nil {
			t.Fatal("successful send left pooled payload with caller")
		}
	}
}

func TestClassFaults(t *testing.T) {
	n := New(vni.NewFastnet(0), 2, Config{
		ClassOf: func(addr string) string {
			if len(addr) >= 3 && addr[:3] == "gcs" {
				return "gcs"
			}
			return "data"
		},
	})
	n.Controller().SetClassFaults("gcs", Faults{Drop: 1.0})
	dg, _ := pair(t, n, "n1", "gcs-n2")
	dd, ad := pair(t, n, "n1", "data-n2")
	if err := dg.Send(msg(1)); err != nil {
		t.Fatal(err)
	}
	if err := dd.Send(msg(2)); err != nil {
		t.Fatal(err)
	}
	if got := recvSeqs(t, ad, 1); got[0] != 2 {
		t.Fatalf("data link got seq %d, want 2", got[0])
	}
	if st := n.Controller().Stats(); st.Drops != 1 {
		t.Fatalf("gcs-class drop not injected: %+v", st)
	}
}

func TestStatsAndStreamsListing(t *testing.T) {
	n := New(vni.NewFastnet(0), 8, Config{})
	d, _ := pair(t, n, "n1", "n2")
	for i := uint64(0); i < 10; i++ {
		if err := d.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	ids := n.Controller().Streams()
	if len(ids) != 1 || ids[0].String() != "n1->n2" {
		t.Fatalf("streams = %v, want [n1->n2]", ids)
	}
	if st := n.Controller().Stats(); st.Messages != 10 {
		t.Fatalf("messages = %d, want 10", st.Messages)
	}
}

func TestWorksOverTCP(t *testing.T) {
	n := New(vni.NewTCP(), 6, Config{
		NodeOf: func(addr string) string { return "srv" },
	})
	ln, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			m.Seq++
			c.Send(&m)
		}
	}()
	c, err := n.Node("cli").Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(msg(41)); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if m.Seq != 42 {
		t.Fatalf("echo seq %d, want 42", m.Seq)
	}
	if n.Name() != "chaos+tcp" {
		t.Fatalf("name %q", n.Name())
	}
}

func TestReplayPrefixProperty(t *testing.T) {
	// Decision i must not depend on how many messages follow it.
	f := Faults{Drop: 0.3, Dup: 0.3, DelayProb: 0.3}
	id := StreamID{Src: "x", Addr: "y"}
	long := Replay(77, id, 1000, f)
	short := Replay(77, id, 10, f)
	if !bytes.Equal(long[:10], short) {
		t.Fatal("replay is not prefix-stable")
	}
}

func TestFaultRatesRoughlyHonored(t *testing.T) {
	f := Faults{Drop: 0.05}
	drops := 0
	const n = 20000
	for _, b := range Replay(1, StreamID{Src: "s", Addr: "d"}, n, f) {
		if b&FDrop != 0 {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.03 || rate > 0.07 {
		t.Fatalf("5%% drop plan injected %.2f%%", 100*rate)
	}
}

func ExampleReplay() {
	f := Faults{Drop: 0.5}
	trace := Replay(42, StreamID{Src: "n1", Addr: "n2"}, 4, f)
	for i, b := range trace {
		fmt.Printf("msg %d dropped=%v\n", i, b&FDrop != 0)
	}
	// Output is seed-determined and stable across runs.
}
