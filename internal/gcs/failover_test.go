package gcs

import (
	"fmt"
	"testing"
	"time"

	"starfish/internal/vni"
	"starfish/internal/wire"
)

func TestSequentialCrashesDownToQuorum(t *testing.T) {
	fn, eps := testGroup(t, 5)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4, 5)
	}
	// Crash 4 then 5: each removal keeps a majority of the then-current
	// view (4/5, then 3/4).
	fn.Crash("node4")
	go eps[3].Close()
	for _, ep := range []*Endpoint{eps[0], eps[1], eps[2], eps[4]} {
		waitForView(t, ep, 1, 2, 3, 5)
	}
	fn.Crash("node5")
	go eps[4].Close()
	for _, ep := range eps[:3] {
		waitForView(t, ep, 1, 2, 3)
	}
	// The group still sequences casts.
	if err := eps[2].Cast([]byte("post-crashes")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[:3] {
		e := nextEvent(t, ep)
		if e.Kind != ECast || string(e.Payload) != "post-crashes" {
			t.Errorf("node %d: %+v", ep.Node(), e)
		}
	}
}

func TestQuorumHoldsBackMinorityCoordinator(t *testing.T) {
	// In a 4-member group, the coordinator loses contact with 2 members
	// at once (they crash). 2 of 4 is not a strict majority, so no view
	// may be installed while both are suspected... but these members are
	// genuinely dead, so the group must NOT be stuck forever either —
	// quorum rules trade availability for safety only while the suspicion
	// set is too large. Here we verify the safe half: with half the view
	// gone, the survivors install no new view (they wait).
	fn, eps := testGroup(t, 4)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	fn.Crash("node3")
	fn.Crash("node4")
	go eps[2].Close()
	go eps[3].Close()

	// Give the failure detector ample time; no view with fewer members
	// than quorum may appear.
	timeout := time.After(300 * time.Millisecond)
	for {
		select {
		case e := <-eps[0].Events():
			if e.Kind == EView && len(e.View.Members) < 3 {
				t.Fatalf("minority view installed: %v", e.View)
			}
		case <-timeout:
			return // held back, as required
		}
	}
}

func TestJoinAfterCrashReusesGroup(t *testing.T) {
	fn, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	fn.Crash("node3")
	go eps[2].Close()
	for _, ep := range eps[:2] {
		waitForView(t, ep, 1, 2)
	}
	// A new node (fresh id) joins the surviving group.
	ep4, err := Join(Config{
		Node: 4, Transport: fn, Addr: "node4b", Contact: "node1",
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep4.Close()
	for _, ep := range []*Endpoint{eps[0], eps[1], ep4} {
		waitForView(t, ep, 1, 2, 4)
	}
	if err := ep4.Cast([]byte("newcomer")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[0])
	if e.Kind != ECast || e.From != 4 {
		t.Errorf("%+v", e)
	}
}

func TestChurnManyCastsAcrossViewChanges(t *testing.T) {
	// Casts issued continuously while members leave must keep total order
	// among the survivors.
	_, eps := testGroup(t, 4)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			eps[1].Cast([]byte(fmt.Sprintf("m%d", i)))
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	eps[3].Leave()
	time.Sleep(10 * time.Millisecond)
	eps[2].Leave()
	time.Sleep(20 * time.Millisecond)
	close(stop)

	// Drain both survivors; their cast sequences must be identical.
	collect := func(ep *Endpoint) []string {
		var out []string
		for {
			select {
			case e := <-ep.Events():
				if e.Kind == ECast {
					out = append(out, string(e.Payload))
				}
			case <-time.After(200 * time.Millisecond):
				return out
			}
		}
	}
	s0 := collect(eps[0])
	s1 := collect(eps[1])
	n := min(len(s0), len(s1))
	for i := 0; i < n; i++ {
		if s0[i] != s1[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, s0[i], s1[i])
		}
	}
	if n == 0 {
		t.Fatal("no casts delivered")
	}
}

func TestHasQuorum(t *testing.T) {
	cases := []struct {
		remaining, total int
		want             bool
	}{
		{1, 1, true}, {1, 2, true}, {0, 2, false},
		{2, 3, true}, {1, 3, false},
		{3, 4, true}, {2, 4, false},
		{3, 5, true}, {2, 5, false},
	}
	for _, c := range cases {
		if got := hasQuorum(c.remaining, c.total); got != c.want {
			t.Errorf("hasQuorum(%d, %d) = %v, want %v", c.remaining, c.total, got, c.want)
		}
	}
}

func TestStateTransferReflectsLatestState(t *testing.T) {
	// The coordinator's StateProvider is consulted at join time, so a
	// joiner sees state that includes all casts sequenced before its
	// view.
	fn := vni.NewFastnet(0)
	state := []byte("v1")
	a, err := Join(Config{
		Node: 1, Transport: fn, Addr: "st1",
		HeartbeatEvery: 5 * time.Millisecond,
		StateProvider:  func() []byte { return state },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	nextEvent(t, a)
	state = []byte("v2") // coordinator state evolves

	b, err := Join(Config{
		Node: 2, Transport: fn, Addr: "st2", Contact: "st1",
		HeartbeatEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	e := nextEvent(t, b)
	if string(e.State) != "v2" {
		t.Errorf("joiner state = %q, want v2", e.State)
	}
}

func TestSendAfterViewShrink(t *testing.T) {
	_, eps := testGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	eps[2].Leave()
	waitForView(t, eps[0], 1, 2)
	// Point-to-point to the departed member fails cleanly.
	if err := eps[0].Send(wire.NodeID(3), []byte("x")); err != ErrNoMember {
		t.Errorf("Send to departed member: %v, want ErrNoMember", err)
	}
	// Point-to-point among survivors still works.
	if err := eps[0].Send(2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	e := nextEvent(t, eps[1])
	for e.Kind != ESend {
		e = nextEvent(t, eps[1])
	}
	if string(e.Payload) != "alive" {
		t.Errorf("payload = %q", e.Payload)
	}
}
