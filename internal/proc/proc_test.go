package proc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/mpi"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// ringApp is a self-verifying BSP application: every step each rank sends
// its value right and receives from the left, setting val = received + 1.
// After R rounds rank i must hold ((i-R) mod n) + R; Step returns an error
// if the invariant fails at completion, so a test only has to check that
// all ranks finished cleanly.
type ringApp struct {
	rounds int64
	round  int64
	val    int64
}

const ringTag int32 = 7

func init() {
	Register("test-ring", func(args []byte) (App, error) {
		r := wire.NewReader(args)
		a := &ringApp{rounds: r.I64()}
		return a, r.Err()
	})
}

func ringArgs(rounds int64) []byte {
	w := wire.NewWriter(8)
	w.I64(rounds)
	return w.Bytes()
}

func (a *ringApp) Init(ctx *Ctx) error {
	a.val = int64(ctx.Rank)
	return nil
}

func (a *ringApp) Restore(_ *Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.rounds, a.round, a.val = r.I64(), r.I64(), r.I64()
	return r.Err()
}

func (a *ringApp) Snapshot() ([]byte, error) {
	w := wire.NewWriter(24)
	w.I64(a.rounds).I64(a.round).I64(a.val)
	return w.Bytes(), nil
}

func (a *ringApp) Step(ctx *Ctx) (bool, error) {
	n := int64(ctx.Size)
	if a.round >= a.rounds {
		want := (int64(ctx.Rank)-a.rounds)%n + a.rounds
		for want < a.rounds { // Go's % can be negative
			want += n
		}
		want = ((int64(ctx.Rank)-a.rounds)%n+n)%n + a.rounds
		if a.val != want {
			return true, fmt.Errorf("rank %d: val %d, want %d", ctx.Rank, a.val, want)
		}
		return true, nil
	}
	right := wire.Rank((int64(ctx.Rank) + 1) % n)
	left := wire.Rank((int64(ctx.Rank) - 1 + n) % n)
	w := wire.NewWriter(8)
	w.I64(a.val)
	if err := ctx.Comm.Send(right, ringTag, w.Bytes()); err != nil {
		return false, err
	}
	data, _, err := ctx.Comm.Recv(left, ringTag)
	if err != nil {
		return false, err
	}
	r := wire.NewReader(data)
	a.val = r.I64() + 1
	if r.Err() != nil {
		return false, r.Err()
	}
	a.round++
	return false, nil
}

// harness plays the daemons for a set of processes: it relays checkpoint
// and coordination messages to every process (the lightweight-group cast)
// in a single total order, and collects completion reports.
type harness struct {
	t     *testing.T
	fn    *vni.Fastnet
	store *ckpt.Store
	spec  AppSpec
	gen   uint32

	mu     sync.Mutex
	procs  []*Process
	dsides []*ChanLink
	doneCh chan doneEvent

	relayq chan wire.Msg
	stop   chan struct{}
}

type doneEvent struct {
	gen  uint32
	rank wire.Rank
	err  string
}

func newHarness(t *testing.T, spec AppSpec) *harness {
	t.Helper()
	store, err := ckpt.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:      t,
		fn:     vni.NewFastnet(0),
		store:  store,
		spec:   spec,
		doneCh: make(chan doneEvent, 64),
		relayq: make(chan wire.Msg, 1024),
		stop:   make(chan struct{}),
	}
	go h.relay()
	t.Cleanup(func() {
		close(h.stop)
		h.closeLinks()
	})
	return h
}

func (h *harness) closeLinks() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.dsides {
		if l != nil {
			l.Close()
		}
	}
}

// relay broadcasts lightweight-group traffic in one total order.
func (h *harness) relay() {
	for {
		select {
		case <-h.stop:
			return
		case m := <-h.relayq:
			h.mu.Lock()
			links := append([]*ChanLink(nil), h.dsides...)
			h.mu.Unlock()
			for _, l := range links {
				if l != nil {
					l.Send(m)
				}
			}
		}
	}
}

// pump reads one process's daemon-side link.
func (h *harness) pump(gen uint32, rank wire.Rank, dside *ChanLink) {
	for {
		select {
		case <-h.stop:
			return
		case <-dside.Done():
			return
		case m := <-dside.Recv():
			switch m.Type {
			case wire.TConfiguration:
				if m.Kind == CfgDone {
					h.doneCh <- doneEvent{gen: gen, rank: rank, err: string(m.Payload)}
				}
			case wire.TCheckpoint, wire.TCoordination:
				select {
				case h.relayq <- m:
				case <-h.stop:
					return
				}
			}
		}
	}
}

// launch starts a fresh or restored incarnation.
func (h *harness) launch(line ckpt.RecoveryLine) {
	h.t.Helper()
	h.closeLinks()
	h.mu.Lock()
	h.gen++
	gen := h.gen
	n := h.spec.Ranks
	h.procs = make([]*Process, n)
	h.dsides = make([]*ChanLink, n)
	h.mu.Unlock()

	addrs := make(map[wire.Rank]string, n)
	for i := 0; i < n; i++ {
		pside, dside := NewChanLink(0)
		p, err := New(Config{
			Spec:       h.spec,
			Rank:       wire.Rank(i),
			Arch:       svm.Machines[i%len(svm.Machines)],
			Store:      h.store,
			Link:       pside,
			Transport:  h.fn,
			ListenAddr: fmt.Sprintf("app%d-g%d-r%d", h.spec.ID, gen, i),
		})
		if err != nil {
			h.t.Fatal(err)
		}
		h.mu.Lock()
		h.procs[i] = p
		h.dsides[i] = dside
		h.mu.Unlock()
		addrs[wire.Rank(i)] = p.Addr()
		go h.pump(gen, wire.Rank(i), dside)
		p.Start()
	}

	var next uint64 = 1
	for _, idx := range line {
		if idx >= next {
			next = idx + 1
		}
	}
	for i := 0; i < n; i++ {
		si := StartInfo{
			Gen: gen, Size: n, Addrs: addrs,
			NextCkptIndex: next,
		}
		if line != nil {
			si.Restore = true
			si.RestoreIndex = line[wire.Rank(i)]
			si.Line = map[wire.Rank]uint64(line)
		}
		h.sendTo(wire.Rank(i), wire.Msg{
			Type: wire.TConfiguration, Kind: CfgStart, App: h.spec.ID,
			Payload: si.Encode(),
		})
	}
}

func (h *harness) sendTo(rank wire.Rank, m wire.Msg) {
	h.mu.Lock()
	l := h.dsides[rank]
	h.mu.Unlock()
	if l != nil {
		l.Send(m)
	}
}

// waitAll blocks until every rank reported done; it fails the test on any
// rank error.
func (h *harness) waitAll() {
	h.t.Helper()
	h.waitAllExpect(nil)
}

func (h *harness) waitAllExpect(okErr func(string) bool) {
	h.t.Helper()
	h.mu.Lock()
	gen := h.gen
	h.mu.Unlock()
	got := map[wire.Rank]bool{}
	deadline := time.After(30 * time.Second)
	for len(got) < h.spec.Ranks {
		select {
		case d := <-h.doneCh:
			if d.gen != gen || got[d.rank] {
				continue
			}
			got[d.rank] = true
			if d.err != "" && (okErr == nil || !okErr(d.err)) {
				h.t.Fatalf("rank %d failed: %s", d.rank, d.err)
			}
		case <-deadline:
			h.t.Fatalf("timeout: only %d/%d ranks finished", len(got), h.spec.Ranks)
		}
	}
	// Every rank reported done: tear the incarnation down (this is what
	// the daemons do), releasing processes still serving protocol
	// traffic.
	h.closeLinks()
}

// abortAll kills the current incarnation and waits for the processes to
// exit.
func (h *harness) abortAll() {
	h.t.Helper()
	h.mu.Lock()
	procs := append([]*Process(nil), h.procs...)
	h.mu.Unlock()
	for i := range procs {
		h.sendTo(wire.Rank(i), wire.Msg{Type: wire.TConfiguration, Kind: CfgAbort})
	}
	for _, p := range procs {
		select {
		case <-p.Done():
		case <-time.After(60 * time.Second):
			h.t.Fatal("process did not abort")
		}
	}
	// Drain stale done reports.
	for {
		select {
		case <-h.doneCh:
		default:
			return
		}
	}
}

// waitForCommittedLine polls the store until a coordinated recovery line
// exists.
func (h *harness) waitForCommittedLine() ckpt.RecoveryLine {
	h.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if line, err := h.store.CommittedLine(h.spec.ID); err == nil {
			return line
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatal("no committed recovery line appeared")
	return nil
}

// waitForIndependentCkpts polls until every rank has at least one
// checkpoint.
func (h *harness) waitForIndependentCkpts() {
	h.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for r := 0; r < h.spec.Ranks; r++ {
			ns, _ := h.store.List(h.spec.ID, wire.Rank(r))
			if len(ns) == 0 {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatal("independent checkpoints did not appear")
}

func ringSpec(id wire.AppID, ranks int, rounds int64) AppSpec {
	return AppSpec{
		ID: id, Name: "test-ring", Args: ringArgs(rounds),
		Ranks: ranks, Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable,
		Policy: PolicyRestart,
	}
}

func TestRingAppCompletes(t *testing.T) {
	h := newHarness(t, ringSpec(1, 3, 30))
	h.launch(nil)
	h.waitAll()
}

func TestVMAppRunsToCompletion(t *testing.T) {
	vmArgs := EncodeVMApp(&VMApp{
		StepSlice: 50,
		NGlobals:  2,
		Globals:   []int64{0, 100},
		Source: `
        push 0
        storeg 0
loop:   loadg 1
        jz done
        loadg 0
        loadg 1
        add
        storeg 0
        loadg 1
        push 1
        sub
        storeg 1
        jmp loop
done:   loadg 0
        out
        halt`,
	})
	spec := AppSpec{
		ID: 2, Name: VMAppName, Args: vmArgs, Ranks: 2,
		Protocol: ckpt.Independent, Encoder: ckpt.Portable, Policy: PolicyRestart,
	}
	h := newHarness(t, spec)
	h.launch(nil)
	h.waitAll()
}

func TestStopAndSyncCheckpointAndRestart(t *testing.T) {
	spec := ringSpec(3, 3, 400)
	spec.Protocol = ckpt.StopAndSync
	spec.CkptEverySteps = 10
	h := newHarness(t, spec)
	h.launch(nil)
	line := h.waitForCommittedLine()
	h.abortAll()

	// Restart the whole application from the committed line; the
	// self-verifying app proves the resumed computation is correct.
	h.launch(line)
	h.waitAll()

	// The line must be uniform (coordinated checkpoint).
	var idx uint64
	for _, n := range line {
		if idx == 0 {
			idx = n
		}
		if n != idx || n == 0 {
			t.Errorf("non-uniform coordinated line: %v", line)
		}
	}
}

func TestChandyLamportCheckpointAndRestart(t *testing.T) {
	spec := ringSpec(4, 3, 400)
	spec.Protocol = ckpt.ChandyLamport
	spec.CkptEverySteps = 10
	h := newHarness(t, spec)
	h.launch(nil)
	line := h.waitForCommittedLine()
	h.abortAll()
	h.launch(line)
	h.waitAll()
}

func TestIndependentCheckpointAndRestart(t *testing.T) {
	spec := ringSpec(5, 3, 400)
	spec.Protocol = ckpt.Independent
	spec.CkptEverySteps = 15
	h := newHarness(t, spec)
	h.launch(nil)
	h.waitForIndependentCkpts()
	h.abortAll()

	line, err := ckpt.GatherLine(h.store, spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	h.launch(line)
	h.waitAll()
}

func TestIndependentRestartFromScratchLine(t *testing.T) {
	// Abort before any checkpoints: GatherLine fails (no checkpoints), so
	// restart is a fresh launch — exercise the zero-index path by
	// restarting with an explicit all-zero line.
	spec := ringSpec(6, 2, 200)
	spec.Protocol = ckpt.Independent
	h := newHarness(t, spec)
	h.launch(nil)
	h.abortAll()
	h.launch(ckpt.RecoveryLine{0: 0, 1: 0})
	h.waitAll()
}

// ckptOnceApp requests a user-initiated checkpoint at step 3 and finishes
// at step 10.
type ckptOnceApp struct{ step int }

func init() {
	Register("test-ckpt-once", func([]byte) (App, error) { return &ckptOnceApp{}, nil })
}

func (a *ckptOnceApp) Init(*Ctx) error { return nil }
func (a *ckptOnceApp) Restore(_ *Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.step = int(r.I64())
	return r.Err()
}
func (a *ckptOnceApp) Snapshot() ([]byte, error) {
	w := wire.NewWriter(8)
	w.I64(int64(a.step))
	return w.Bytes(), nil
}
func (a *ckptOnceApp) Step(ctx *Ctx) (bool, error) {
	a.step++
	if a.step == 3 {
		ctx.RequestCheckpoint()
	}
	return a.step >= 10, nil
}

func TestUserInitiatedCheckpoint(t *testing.T) {
	spec := AppSpec{
		ID: 7, Name: "test-ckpt-once", Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Native, Policy: PolicyRestart,
	}
	h := newHarness(t, spec)
	h.launch(nil)
	h.waitAll()
	line, err := h.store.CommittedLine(spec.ID)
	if err != nil {
		t.Fatalf("user-initiated checkpoint was not committed: %v", err)
	}
	if line[0] != 1 || line[1] != 1 {
		t.Errorf("line = %v", line)
	}
}

// viewApp waits until a view upcall reports a departure, then finishes.
type viewApp struct {
	departed chan []wire.Rank
}

func init() {
	Register("test-view", func([]byte) (App, error) {
		return &viewApp{departed: make(chan []wire.Rank, 1)}, nil
	})
}

func (a *viewApp) Init(ctx *Ctx) error {
	ctx.OnView(func(alive, departed []wire.Rank) {
		if len(departed) > 0 {
			select {
			case a.departed <- departed:
			default:
			}
		}
	})
	return nil
}
func (a *viewApp) Restore(*Ctx, []byte) error { return nil }
func (a *viewApp) Snapshot() ([]byte, error)  { return nil, nil }
func (a *viewApp) Step(ctx *Ctx) (bool, error) {
	select {
	case departed := <-a.departed:
		if len(departed) != 1 || departed[0] != 1 {
			return true, fmt.Errorf("departed = %v", departed)
		}
		alive := ctx.Comm.Alive()
		if len(alive) != 1 || alive[0] != 0 {
			return true, fmt.Errorf("alive = %v", alive)
		}
		return true, nil
	default:
		time.Sleep(time.Millisecond)
		return false, nil
	}
}

func TestViewUpcallAndDeadMarking(t *testing.T) {
	spec := AppSpec{
		ID: 8, Name: "test-view", Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: PolicyNotify,
	}
	h := newHarness(t, spec)
	h.launch(nil)
	// Simulate the daemon reporting rank 1's node crash to rank 0.
	v := LWViewInfo{Alive: []wire.Rank{0}, Departed: []wire.Rank{1}}
	h.sendTo(0, wire.Msg{Type: wire.TLWMembership, Kind: LWViewKind, App: spec.ID, Payload: v.Encode()})
	// Rank 1 is "dead": finish it via abort; rank 0 must complete cleanly.
	h.sendTo(1, wire.Msg{Type: wire.TConfiguration, Kind: CfgAbort})
	h.waitAllExpect(func(e string) bool { return e == ErrAborted.Error() })
}

func TestSuspendResume(t *testing.T) {
	spec := ringSpec(9, 2, 100)
	h := newHarness(t, spec)
	h.launch(nil)
	for r := 0; r < 2; r++ {
		h.sendTo(wire.Rank(r), wire.Msg{Type: wire.TConfiguration, Kind: CfgSuspend})
	}
	// While suspended nothing should complete.
	select {
	case d := <-h.doneCh:
		t.Fatalf("rank %d finished while suspended (%q)", d.rank, d.err)
	case <-time.After(50 * time.Millisecond):
	}
	for r := 0; r < 2; r++ {
		h.sendTo(wire.Rank(r), wire.Msg{Type: wire.TConfiguration, Kind: CfgResume})
	}
	h.waitAll()
}

func TestAbortReportsError(t *testing.T) {
	spec := ringSpec(10, 2, 1<<40) // effectively endless
	h := newHarness(t, spec)
	h.launch(nil)
	h.abortAll()
	h.mu.Lock()
	procs := h.procs
	h.mu.Unlock()
	for _, p := range procs {
		if !errors.Is(p.Err(), ErrAborted) {
			t.Errorf("rank %d err = %v, want ErrAborted", p.Rank(), p.Err())
		}
	}
}

func TestCoordinationMessages(t *testing.T) {
	spec := AppSpec{
		ID: 11, Name: "test-coord", Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: PolicyKill,
	}
	h := newHarness(t, spec)
	h.launch(nil)
	h.waitAll()
}

// coordApp: rank 0 casts a coordination message; both ranks finish once
// they have seen it (sender included — casts echo).
type coordApp struct {
	seen chan struct{}
	sent bool
}

func init() {
	Register("test-coord", func([]byte) (App, error) {
		return &coordApp{seen: make(chan struct{}, 1)}, nil
	})
}

func (a *coordApp) Init(ctx *Ctx) error {
	ctx.OnCoordination(func(from wire.Rank, payload []byte) {
		if from == 0 && string(payload) == "rebalance" {
			select {
			case a.seen <- struct{}{}:
			default:
			}
		}
	})
	return nil
}
func (a *coordApp) Restore(*Ctx, []byte) error { return nil }
func (a *coordApp) Snapshot() ([]byte, error)  { return nil, nil }
func (a *coordApp) Step(ctx *Ctx) (bool, error) {
	if !a.sent && ctx.Rank == 0 {
		a.sent = true
		if err := ctx.Coordinate([]byte("rebalance")); err != nil {
			return true, err
		}
	}
	select {
	case <-a.seen:
		return true, nil
	default:
		time.Sleep(time.Millisecond)
		return false, nil
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := AppSpec{
		ID: 9, Name: "x", Args: []byte{1, 2}, Ranks: 4,
		Protocol: ckpt.ChandyLamport, Encoder: ckpt.Native,
		CkptEverySteps: 100, Policy: PolicyNotify, Owner: "alice",
	}
	got, err := DecodeSpec(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Name != "x" || got.Ranks != 4 || got.Protocol != ckpt.ChandyLamport ||
		got.Encoder != ckpt.Native || got.CkptEverySteps != 100 || got.Policy != PolicyNotify ||
		got.Owner != "alice" {
		t.Errorf("round trip = %+v", got)
	}
	bad := s
	bad.Ranks = 0
	if _, err := DecodeSpec(bad.Encode()); err == nil {
		t.Error("zero-rank spec accepted")
	}
}

func TestStartInfoRoundTrip(t *testing.T) {
	si := StartInfo{
		Gen: 2, Size: 3,
		Addrs:   map[wire.Rank]string{0: "a", 1: "b", 2: "c"},
		Restore: true, RestoreIndex: 4, NextCkptIndex: 5,
		Line: map[wire.Rank]uint64{0: 4, 1: 3, 2: 4},
	}
	got, err := DecodeStartInfo(si.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 2 || got.Size != 3 || got.Addrs[1] != "b" || !got.Restore ||
		got.RestoreIndex != 4 || got.NextCkptIndex != 5 || got.Line[1] != 3 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestLWViewInfoRoundTrip(t *testing.T) {
	v := LWViewInfo{Alive: []wire.Rank{0, 2}, Departed: []wire.Rank{1}}
	got, err := DecodeLWViewInfo(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alive) != 2 || got.Alive[1] != 2 || len(got.Departed) != 1 || got.Departed[0] != 1 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestCkptStateRoundTrip(t *testing.T) {
	pending := []mpi.RecordedMsg{
		{Src: 1, Dst: 0, Tag: 3, Data: []byte("p"), Interval: 2, Seq: 9},
	}
	recorded := []mpi.RecordedMsg{
		{Src: 2, Dst: 0, Tag: 4, Data: []byte("r"), Interval: 1, Seq: 10},
		{Src: 2, Dst: 0, Tag: 4, Data: nil, Interval: 1, Seq: 11},
	}
	b := encodeCkptState([]byte("app-state"), pending, recorded)
	state, gp, gr, err := decodeCkptState(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "app-state" {
		t.Errorf("state = %q", state)
	}
	if len(gp) != 1 || gp[0].Seq != 9 || string(gp[0].Data) != "p" {
		t.Errorf("pending = %+v", gp)
	}
	if len(gr) != 2 || gr[1].Seq != 11 || gr[0].Interval != 1 {
		t.Errorf("recorded = %+v", gr)
	}
	if _, _, _, err := decodeCkptState([]byte{1, 2}); err == nil {
		t.Error("short state decoded")
	}
}

func TestMsgListRoundTrip(t *testing.T) {
	msgs := []mpi.RecordedMsg{
		{Src: 0, Dst: 1, Tag: 5, Data: []byte("log"), Interval: 3, Seq: 17},
	}
	got, err := decodeMsgList(encodeMsgList(msgs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dst != 1 || got[0].Seq != 17 || string(got[0].Data) != "log" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestVMAppArgsRoundTrip(t *testing.T) {
	a := &VMApp{StepSlice: 7, NGlobals: 3, HeapWords: 100, Source: "halt", Globals: []int64{1, -2}}
	got, err := DecodeVMApp(EncodeVMApp(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.StepSlice != 7 || got.NGlobals != 3 || got.HeapWords != 100 ||
		got.Source != "halt" || len(got.Globals) != 2 || got.Globals[1] != -2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeVMApp([]byte{1}); err == nil {
		t.Error("short args decoded")
	}
}

func TestAppRegistry(t *testing.T) {
	if _, err := NewApp("no-such-app", nil); err == nil {
		t.Error("unknown app instantiated")
	}
	names := RegisteredApps()
	found := false
	for _, n := range names {
		if n == VMAppName {
			found = true
		}
	}
	if !found {
		t.Errorf("registry %v missing %q", names, VMAppName)
	}
}
