package mpi

import (
	"encoding/binary"
	"fmt"

	"starfish/internal/wire"
)

// Broadcast algorithms. Only the root knows the message size, so algorithm
// selection is root-driven: the first message every rank receives — always
// from its deterministic binomial-tree parent — carries a small header
// naming the algorithm, the total size, and (for the pipelined tree) the
// segment size. Receivers then follow the same schedule the root chose.
//
//   - naive: the whole message down the binomial tree; latency-optimal for
//     small buffers.
//   - seg: the binomial tree pipelined in BcastSegSize segments, so a rank
//     forwards segment k while segment k+1 is still in flight.
//   - vdG (van de Geijn): binomial scatter of 1/n-size chunks followed by
//     an allgather; bandwidth-optimal (each rank moves ~2x the buffer
//     instead of log2(n) times).
//
// The header costs collHdrLen bytes per hop, so the largest broadcastable
// message is wire.MaxPayload - collHdrLen.

const collHdrLen = 13 // [1B algo][8B total][4B aux]

const (
	collAlgNaive byte = 1
	collAlgSeg   byte = 2
	collAlgVdG   byte = 3
)

func putCollHdr(dst []byte, algo byte, total int, aux uint32) {
	dst[0] = algo
	binary.LittleEndian.PutUint64(dst[1:], uint64(total))
	binary.LittleEndian.PutUint32(dst[9:], aux)
}

func parseCollHdr(b []byte) (algo byte, total int, aux uint32, err error) {
	if len(b) < collHdrLen {
		return 0, 0, 0, fmt.Errorf("%w: %d-byte collective header", ErrBadLength, len(b))
	}
	total64 := binary.LittleEndian.Uint64(b[1:])
	if total64 > uint64(wire.MaxPayload) {
		return 0, 0, 0, fmt.Errorf("%w: header claims %d bytes", ErrBadLength, total64)
	}
	return b[0], int(total64), binary.LittleEndian.Uint32(b[9:]), nil
}

// Bcast broadcasts buf from root to all ranks and returns the received
// buffer (root returns buf unchanged). The algorithm is chosen at the root
// from the tuning table by message size.
func (c *Comm) Bcast(root wire.Rank, buf []byte) ([]byte, error) {
	n := c.cfg.Size
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("bcast: %w: root %d", ErrBadRank, root)
	}
	if n == 1 {
		return buf, nil
	}
	if c.collVrank(root) != 0 {
		return c.bcastRecv(root)
	}
	algo, seg := bcastAlgo(c.CollTuning(), len(buf), n)
	if err := c.bcastRoot(root, buf, algo, seg); err != nil {
		return nil, err
	}
	return buf, nil
}

// bcastAlgo picks the broadcast algorithm and segment size for a message of
// size bytes on n ranks: a pure function of the tuning table, so replicas
// replaying the same broadcast schedule the same messages.
//
//starfish:deterministic
func bcastAlgo(t CollTuning, size, n int) (algo byte, seg int) {
	switch {
	case t.ForceNaive:
	case size >= t.BcastVdGMin && size >= n:
		return collAlgVdG, 0
	case size >= t.BcastSegMin && size > t.BcastSegSize:
		return collAlgSeg, t.BcastSegSize
	}
	return collAlgNaive, 0
}

// bcastRoot runs the root side of the chosen algorithm (split out so tests
// can force one directly while non-roots follow the header).
func (c *Comm) bcastRoot(root wire.Rank, buf []byte, algo byte, seg int) error {
	switch algo {
	case collAlgSeg:
		return c.bcastSegRoot(root, buf, seg)
	case collAlgVdG:
		return c.bcastVdGRoot(root, buf)
	default:
		return c.bcastNaiveRoot(root, buf)
	}
}

// bcastRecv is the non-root side: receive the first message from the
// binomial parent (a deterministic source, so back-to-back broadcasts with
// different roots cannot cross-match) and follow its header.
func (c *Comm) bcastRecv(root wire.Rank) ([]byte, error) {
	n := c.cfg.Size
	v := c.collVrank(root)
	parent := collReal(binomialParent(v), root, n)
	first, st, err := c.Recv(parent, tagBcast)
	if err != nil {
		return nil, fmt.Errorf("bcast: %w", err)
	}
	algo, total, aux, err := parseCollHdr(first)
	if err != nil {
		return nil, fmt.Errorf("bcast: %w", err)
	}
	switch algo {
	case collAlgSeg:
		return c.bcastSegRecv(root, v, first, st, total, int(aux))
	case collAlgVdG:
		return c.bcastVdGRecv(root, v, first, st, total)
	default:
		return c.bcastNaiveRecv(root, v, first, st, total)
	}
}

// ---- naive: whole message down the binomial tree ----

func (c *Comm) bcastNaiveRoot(root wire.Rank, buf []byte) error {
	n := c.cfg.Size
	for _, child := range binomialChildren(0, n) {
		msg := wire.GetBuf(collHdrLen + len(buf))
		putCollHdr(msg, collAlgNaive, len(buf), 0)
		copy(msg[collHdrLen:], buf)
		wire.CountCopy(wire.CopyColl, len(buf))
		if err := c.SendOwned(collReal(child, root, n), tagBcast, msg); err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
	}
	return nil
}

func (c *Comm) bcastNaiveRecv(root wire.Rank, v int, first []byte, st Status, total int) ([]byte, error) {
	n := c.cfg.Size
	if len(first) != collHdrLen+total {
		return nil, fmt.Errorf("bcast: %w: header claims %d bytes, message carries %d", ErrBadLength, total, len(first)-collHdrLen)
	}
	// Forward the whole message (header included) to the children; the
	// result is the payload view of the delivered buffer.
	for _, child := range binomialChildren(v, n) {
		if err := c.Send(collReal(child, root, n), tagBcast, first); err != nil {
			return nil, fmt.Errorf("bcast: %w", err)
		}
	}
	return first[collHdrLen:], nil
}

// ---- seg: pipelined binomial tree ----

func (c *Comm) bcastSegRoot(root wire.Rank, buf []byte, seg int) error {
	n := c.cfg.Size
	total := len(buf)
	children := binomialChildren(0, n)
	for off := 0; off < total; off += seg {
		end := min(off+seg, total)
		for _, child := range children {
			real := collReal(child, root, n)
			var msg []byte
			tag := tagBcastSeg
			if off == 0 {
				// The first segment carries the header on the main tag.
				msg = wire.GetBuf(collHdrLen + end)
				putCollHdr(msg, collAlgSeg, total, uint32(seg))
				copy(msg[collHdrLen:], buf[:end])
				tag = tagBcast
			} else {
				msg = wire.GetBuf(end - off)
				copy(msg, buf[off:end])
			}
			wire.CountCopy(wire.CopyColl, end-off)
			wire.CountCollSeg(end - off)
			if err := c.SendOwned(real, tag, msg); err != nil {
				return fmt.Errorf("bcast: %w", err)
			}
		}
	}
	return nil
}

func (c *Comm) bcastSegRecv(root wire.Rank, v int, first []byte, st Status, total, seg int) ([]byte, error) {
	n := c.cfg.Size
	if seg <= 0 {
		return nil, fmt.Errorf("bcast: %w: segment size %d", ErrBadLength, seg)
	}
	parent := collReal(binomialParent(v), root, n)
	children := binomialChildren(v, n)
	// Pooled result (every segment is copied in below): ownership passes to
	// the caller, who may PutBuf it back or drop it.
	result := wire.GetBuf(total)

	// forward relays one segment (already copied into result) to every
	// child, moving the delivered buffer to the last one when it is pooled
	// and releasing it otherwise.
	forward := func(data []byte, pooled bool, tag int32, size int) error {
		for i, child := range children {
			real := collReal(child, root, n)
			var err error
			if pooled && i == len(children)-1 {
				err = c.SendOwned(real, tag, data)
				data = nil
			} else {
				err = c.Send(real, tag, data)
			}
			if err != nil {
				if pooled && data != nil {
					wire.PutBuf(data)
				}
				return fmt.Errorf("bcast: %w", err)
			}
			wire.CountCollSeg(size)
		}
		if pooled && data != nil {
			wire.PutBuf(data)
		}
		return nil
	}

	end := min(seg, total)
	if len(first) != collHdrLen+end {
		wire.PutBuf(result)
		if st.Pooled {
			wire.PutBuf(first)
		}
		return nil, fmt.Errorf("bcast: %w: first segment %d bytes, want %d", ErrBadLength, len(first)-collHdrLen, end)
	}
	copy(result, first[collHdrLen:])
	wire.CountCopy(wire.CopyColl, end)
	if err := forward(first, st.Pooled, tagBcast, end); err != nil {
		wire.PutBuf(result)
		return nil, err
	}
	for off := end; off < total; off += seg {
		segEnd := min(off+seg, total)
		data, sst, err := c.Recv(parent, tagBcastSeg)
		if err != nil {
			wire.PutBuf(result)
			return nil, fmt.Errorf("bcast: %w", err)
		}
		if len(data) != segEnd-off {
			wire.PutBuf(result)
			if sst.Pooled {
				wire.PutBuf(data)
			}
			return nil, fmt.Errorf("bcast: %w: segment %d bytes, want %d", ErrBadLength, len(data), segEnd-off)
		}
		copy(result[off:], data)
		wire.CountCopy(wire.CopyColl, segEnd-off)
		if err := forward(data, sst.Pooled, tagBcastSeg, segEnd-off); err != nil {
			wire.PutBuf(result)
			return nil, err
		}
	}
	return result, nil
}

// ---- vdG: binomial scatter + allgather ----

func (c *Comm) bcastVdGRoot(root wire.Rank, buf []byte) error {
	n := c.cfg.Size
	total := len(buf)
	_, offs := c.evenGeom(total, 1)
	children := binomialChildren(0, n)
	reqs := make([]*Request, 0, len(children))
	for i := len(children) - 1; i >= 0; i-- { // largest subtree first
		child := children[i]
		blk := buf[offs[child]:offs[subtreeEnd(child, n)]]
		msg := wire.GetBuf(collHdrLen + len(blk))
		putCollHdr(msg, collAlgVdG, total, 0)
		copy(msg[collHdrLen:], blk)
		wire.CountCopy(wire.CopyColl, len(blk))
		wire.CountCollSeg(len(blk))
		reqs = append(reqs, c.IsendOwned(collReal(child, root, n), tagBcast, msg))
	}
	if err := WaitAll(reqs...); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	// Allgather phase: the root already holds everything but must feed its
	// chunks into the exchange on schedule.
	if err := c.collAllgatherChunks(root, 0, buf, offs, true, tagBcastAG); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	return nil
}

func (c *Comm) bcastVdGRecv(root wire.Rank, v int, first []byte, st Status, total int) ([]byte, error) {
	n := c.cfg.Size
	_, offs := c.evenGeom(total, 1)
	end := subtreeEnd(v, n)
	if len(first) != collHdrLen+offs[end]-offs[v] {
		if st.Pooled {
			wire.PutBuf(first)
		}
		return nil, fmt.Errorf("bcast: %w: scatter block %d bytes, want %d", ErrBadLength, len(first)-collHdrLen, offs[end]-offs[v])
	}
	// Forward each child its subtree's chunk range, keep my own chunk.
	children := binomialChildren(v, n)
	reqs := make([]*Request, 0, len(children))
	for i := len(children) - 1; i >= 0; i-- {
		child := children[i]
		sub := first[collHdrLen+offs[child]-offs[v] : collHdrLen+offs[subtreeEnd(child, n)]-offs[v]]
		msg := wire.GetBuf(collHdrLen + len(sub))
		putCollHdr(msg, collAlgVdG, total, 0)
		copy(msg[collHdrLen:], sub)
		wire.CountCopy(wire.CopyColl, len(sub))
		wire.CountCollSeg(len(sub))
		reqs = append(reqs, c.IsendOwned(collReal(child, root, n), tagBcast, msg))
	}
	// Pooled result (own chunk copied here, the allgather fills the rest):
	// ownership passes to the caller, who may PutBuf it back or drop it.
	result := wire.GetBuf(total)
	mine := offs[v+1] - offs[v]
	copy(result[offs[v]:], first[collHdrLen:collHdrLen+mine])
	wire.CountCopy(wire.CopyColl, mine)
	if st.Pooled {
		wire.PutBuf(first)
	}
	if err := WaitAll(reqs...); err != nil {
		wire.PutBuf(result)
		return nil, fmt.Errorf("bcast: %w", err)
	}
	if err := c.collAllgatherChunks(root, v, result, offs, false, tagBcastAG); err != nil {
		wire.PutBuf(result)
		return nil, fmt.Errorf("bcast: %w", err)
	}
	return result, nil
}

// collAllgatherChunks completes a ring allgather over the n chunks whose
// byte boundaries are offs (in vrank space rotated by root): on entry rank
// v holds chunk v at data[offs[v]:offs[v+1]]; on return data holds all
// chunks. haveAll marks a rank (the vdG root) that already holds the full
// buffer — it feeds the exchange on schedule but skips the result copies.
//
// Only the first step stages a copy onto the wire; every later step
// forwards the pooled chunk received in the previous step with SendOwned,
// so a chunk circles the whole ring as one buffer and per-rank traffic is
// one staged chunk plus n-1 received-chunk copies.
func (c *Comm) collAllgatherChunks(root wire.Rank, v int, data []byte, offs []int, haveAll bool, tag int32) error {
	n := c.cfg.Size
	right := collReal((v+1)%n, root, n)
	left := collReal((v-1+n)%n, root, n)
	var fwd []byte // chunk received last step, to forward this step
	fwdPooled := false
	for s := 0; s < n-1; s++ {
		recvIdx := (v - s - 1 + n) % n
		var err error
		switch {
		case s == 0:
			seg := data[offs[v]:offs[v+1]]
			wire.CountCollSeg(len(seg))
			err = c.Send(right, tag, seg)
		case fwdPooled:
			wire.CountCollSeg(len(fwd))
			err = c.SendOwned(right, tag, fwd)
		default:
			wire.CountCollSeg(len(fwd))
			err = c.Send(right, tag, fwd)
		}
		if err != nil {
			return err
		}
		// A plain blocking Recv: the NIC's receiver loop queues the chunk
		// from the left neighbor whether or not a receive is posted, so no
		// Irecv (request + goroutine) is needed for progress.
		got, st, err := c.Recv(left, tag)
		if err != nil {
			return err
		}
		if len(got) != offs[recvIdx+1]-offs[recvIdx] {
			return fmt.Errorf("%w: allgather chunk %d bytes, want %d", ErrBadLength, len(got), offs[recvIdx+1]-offs[recvIdx])
		}
		if !haveAll {
			copy(data[offs[recvIdx]:], got)
			wire.CountCopy(wire.CopyColl, len(got))
		}
		fwd, fwdPooled = got, st.Pooled
	}
	if fwdPooled {
		wire.PutBuf(fwd)
	}
	return nil
}
