package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"starfish/internal/wire"
)

// Randomized equivalence tests: every tuned collective algorithm must
// produce results bit-identical to the seed (naive) reference across rank
// counts 2..9 — powers of two and not — odd message sizes, and odd segment
// boundaries. The reduction tests use int64 operators, whose folds are
// exactly associative, so any combine order must match the sequential one
// bit for bit.

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func randInt64Buf(rng *rand.Rand, elems int) []byte {
	vs := make([]int64, elems)
	for i := range vs {
		vs[i] = rng.Int63() - rng.Int63()
	}
	return Int64Bytes(vs)
}

// foldSeq is the sequential oracle: fn(...fn(fn(c0, c1), c2)..., c_{n-1}).
func foldSeq(t *testing.T, contribs [][]byte, fn ReduceFunc) []byte {
	t.Helper()
	acc := contribs[0]
	for _, c := range contribs[1:] {
		var err error
		if acc, err = fn(acc, c); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// byteMaxFn is a test-only operator with no registered in-place variant
// (exercising combineInto's allocating fallback) that accepts any length.
func byteMaxFn(a, b []byte) ([]byte, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrBadLength, len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = max(a[i], b[i])
	}
	return out, nil
}

func TestBcastAlgorithmsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type algoCase struct {
		name  string
		algo  byte
		seg   int
		sizes []int
	}
	for n := 2; n <= 9; n++ {
		cases := []algoCase{
			{"naive", collAlgNaive, 0, []int{0, 1, 7, 1000}},
			{"seg33", collAlgSeg, 33, []int{1, 32, 33, 34, 100, 4097}},
			{"seg1024", collAlgSeg, 1024, []int{1000, 1024, 5000}},
			{"vdg", collAlgVdG, 0, []int{n, n + 3, 1000, 8191}},
		}
		comms := world(t, n)
		for _, tc := range cases {
			for _, size := range tc.sizes {
				root := wire.Rank(rng.Intn(n))
				payload := randBytes(rng, size)
				results := make([][]byte, n)
				runRanks(t, comms, func(c *Comm) error {
					if c.Rank() == root {
						results[c.Rank()] = payload
						return c.bcastRoot(root, payload, tc.algo, tc.seg)
					}
					got, err := c.Bcast(root, nil)
					results[c.Rank()] = got
					return err
				})
				for r, got := range results {
					if !bytes.Equal(got, payload) {
						t.Fatalf("n=%d %s size=%d root=%d: rank %d got %d bytes, want %d",
							n, tc.name, size, root, r, len(got), len(payload))
					}
				}
			}
		}
	}
}

// TestBcastBackToBackDifferentRoots is the regression for the seed bug:
// the child receive used wire.AnyRank, so consecutive broadcasts with
// different roots could cross-match when a later round's parent message
// arrived first. Receiving from the deterministic parent fixes it.
func TestBcastBackToBackDifferentRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 3; n <= 5; n++ {
		comms := world(t, n)
		const rounds = 20
		roots := make([]wire.Rank, rounds)
		payloads := make([][]byte, rounds)
		for i := range roots {
			roots[i] = wire.Rank(rng.Intn(n))
			payloads[i] = randBytes(rng, 16+rng.Intn(64))
			payloads[i][0] = byte(i) // distinguishable per round
		}
		results := make([][][]byte, rounds)
		for i := range results {
			results[i] = make([][]byte, n)
		}
		runRanks(t, comms, func(c *Comm) error {
			for i := 0; i < rounds; i++ {
				var buf []byte
				if c.Rank() == roots[i] {
					buf = payloads[i]
				}
				got, err := c.Bcast(roots[i], buf)
				if err != nil {
					return err
				}
				results[i][c.Rank()] = got
			}
			return nil
		})
		for i := range results {
			for r, got := range results[i] {
				if !bytes.Equal(got, payloads[i]) {
					t.Fatalf("n=%d round %d root=%d: rank %d received the wrong broadcast", n, i, roots[i], r)
				}
			}
		}
	}
}

func TestReduceScatterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 2; n <= 9; n++ {
		for _, tuned := range []bool{false, true} {
			comms := worldCfg(t, n, func(cfg *Config) {
				cfg.Coll = &CollTuning{ForceNaive: !tuned}
			})
			for trial := 0; trial < 3; trial++ {
				elems := n + rng.Intn(40)
				contribs := make([][]byte, n)
				for r := range contribs {
					contribs[r] = randInt64Buf(rng, elems)
				}
				// nil counts (even split) and a random aligned split with
				// zero-length chunks mixed in.
				countSets := [][]int{nil}
				counts := make([]int, n)
				left := elems
				for r := 0; r < n-1; r++ {
					c := rng.Intn(left + 1)
					if rng.Intn(4) == 0 {
						c = 0
					}
					counts[r] = 8 * c
					left -= c
				}
				counts[n-1] = 8 * left
				countSets = append(countSets, counts)
				for _, cs := range countSets {
					full := foldSeq(t, contribs, SumInt64)
					results := make([][]byte, n)
					runRanks(t, comms, func(c *Comm) error {
						got, err := c.ReduceScatter(contribs[c.Rank()], cs, SumInt64)
						results[c.Rank()] = got
						return err
					})
					offs := 0
					for r := 0; r < n; r++ {
						var want []byte
						if cs == nil {
							per, _ := evenByteCounts(8*elems, n, 8)
							want = full[offs : offs+per[r]]
							offs += per[r]
						} else {
							want = full[offs : offs+cs[r]]
							offs += cs[r]
						}
						if !bytes.Equal(results[r], want) {
							t.Fatalf("n=%d tuned=%v trial=%d: rank %d chunk mismatch", n, tuned, trial, r)
						}
					}
				}
			}
		}
	}
}

func TestAllreduceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ops := []struct {
		name string
		fn   ReduceFunc
	}{{"sum", SumInt64}, {"min", MinInt64}, {"max", MaxInt64}}
	for n := 2; n <= 9; n++ {
		// AllreduceRabMin=1 forces Rabenseifner for every aligned size.
		comms := worldCfg(t, n, func(cfg *Config) {
			cfg.Coll = &CollTuning{AllreduceRabMin: 1}
		})
		naive := worldCfg(t, n, func(cfg *Config) {
			cfg.Coll = &CollTuning{ForceNaive: true}
		})
		for _, op := range ops {
			for _, elems := range []int{n, n + 13, 257} {
				contribs := make([][]byte, n)
				for r := range contribs {
					contribs[r] = randInt64Buf(rng, elems)
				}
				want := foldSeq(t, contribs, op.fn)
				for _, w := range [][]*Comm{comms, naive} {
					results := make([][]byte, n)
					runRanks(t, w, func(c *Comm) error {
						got, err := c.Allreduce(contribs[c.Rank()], op.fn)
						results[c.Rank()] = got
						return err
					})
					for r := range results {
						if !bytes.Equal(results[r], want) {
							t.Fatalf("n=%d op=%s elems=%d: rank %d mismatch", n, op.name, elems, r)
						}
					}
				}
			}
		}
		// Unaligned length: falls back to tree reduce + bcast, with an
		// operator that has no in-place variant.
		size := 8*n + 3
		contribs := make([][]byte, n)
		for r := range contribs {
			contribs[r] = randBytes(rng, size)
		}
		want := foldSeq(t, contribs, byteMaxFn)
		results := make([][]byte, n)
		runRanks(t, comms, func(c *Comm) error {
			got, err := c.Allreduce(contribs[c.Rank()], byteMaxFn)
			results[c.Rank()] = got
			return err
		})
		for r := range results {
			if !bytes.Equal(results[r], want) {
				t.Fatalf("n=%d unaligned byte-max: rank %d mismatch", n, r)
			}
		}
	}
}

func TestGatherScatterTreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 2; n <= 9; n++ {
		comms := world(t, n)
		for trial := 0; trial < 4; trial++ {
			root := wire.Rank(rng.Intn(n))

			contribs := make([][]byte, n)
			for r := range contribs {
				contribs[r] = randBytes(rng, rng.Intn(200)) // includes 0-length
			}
			var gathered [][]byte
			runRanks(t, comms, func(c *Comm) error {
				got, err := c.Gather(root, contribs[c.Rank()])
				if c.Rank() == root {
					gathered = got
				}
				return err
			})
			for r := range contribs {
				if !bytes.Equal(gathered[r], contribs[r]) {
					t.Fatalf("n=%d root=%d: gather entry %d mismatch", n, root, r)
				}
			}

			parts := make([][]byte, n)
			for r := range parts {
				parts[r] = randBytes(rng, rng.Intn(200))
			}
			scattered := make([][]byte, n)
			runRanks(t, comms, func(c *Comm) error {
				var in [][]byte
				if c.Rank() == root {
					in = parts
				}
				got, err := c.Scatter(root, in)
				scattered[c.Rank()] = got
				return err
			})
			for r := range parts {
				if !bytes.Equal(scattered[r], parts[r]) {
					t.Fatalf("n=%d root=%d: scatter part %d mismatch", n, root, r)
				}
			}

			var gatheredV [][]byte
			runRanks(t, comms, func(c *Comm) error {
				got, err := c.Gatherv(root, contribs[c.Rank()])
				if c.Rank() == root {
					gatheredV = got
				}
				return err
			})
			for r := range contribs {
				if !bytes.Equal(gatheredV[r], contribs[r]) {
					t.Fatalf("n=%d root=%d: gatherv entry %d mismatch", n, root, r)
				}
			}
		}
	}
}

// TestCollectivesPooledGuardLarge drives the segmented and chunked paths
// at >=1 MiB with odd boundaries while the pool guard is active (it always
// is under go test): any use-after-release in the pipelines reads 0xDB
// poison and fails the content checks.
func TestCollectivesPooledGuardLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large-buffer test")
	}
	if !wire.PoolGuardEnabled() {
		t.Fatal("pool guard should be on under go test")
	}
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{4, 5} { // power of two and not
		for _, tune := range []struct {
			name string
			coll CollTuning
		}{
			{"seg8191", CollTuning{BcastSegMin: 1, BcastSegSize: 8191, BcastVdGMin: 1 << 30}},
			{"vdg", CollTuning{BcastVdGMin: 1}},
		} {
			comms := worldCfg(t, n, func(cfg *Config) {
				coll := tune.coll
				cfg.Coll = &coll
			})
			size := 1<<20 + 7
			payload := randBytes(rng, size)
			results := make([][]byte, n)
			runRanks(t, comms, func(c *Comm) error {
				var buf []byte
				if c.Rank() == 1 {
					buf = payload
				}
				got, err := c.Bcast(1, buf)
				results[c.Rank()] = got
				return err
			})
			for r := range results {
				if !bytes.Equal(results[r], payload) {
					t.Fatalf("n=%d %s: rank %d bcast corrupted", n, tune.name, r)
				}
			}

			elems := 1 << 17 // 1 MiB of int64s
			contribs := make([][]byte, n)
			for r := range contribs {
				contribs[r] = randInt64Buf(rng, elems)
			}
			want := foldSeq(t, contribs, SumInt64)
			allres := make([][]byte, n)
			runRanks(t, comms, func(c *Comm) error {
				got, err := c.Allreduce(contribs[c.Rank()], SumInt64)
				allres[c.Rank()] = got
				return err
			})
			for r := range allres {
				if !bytes.Equal(allres[r], want) {
					t.Fatalf("n=%d %s: rank %d allreduce corrupted", n, tune.name, r)
				}
			}

			blocks := make([][]byte, n)
			for r := range blocks {
				blocks[r] = randBytes(rng, 64<<10)
			}
			var gathered [][]byte
			var mu sync.Mutex
			runRanks(t, comms, func(c *Comm) error {
				got, err := c.Gather(0, blocks[c.Rank()])
				if c.Rank() == 0 {
					mu.Lock()
					gathered = got
					mu.Unlock()
				}
				return err
			})
			for r := range blocks {
				if !bytes.Equal(gathered[r], blocks[r]) {
					t.Fatalf("n=%d %s: rank %d gather corrupted", n, tune.name, r)
				}
			}
		}
	}
}
