// Package starfish is a from-scratch Go reproduction of "Starfish:
// Fault-Tolerant Dynamic MPI Programs on Clusters of Workstations"
// (Agbaria & Friedman, HPDC 1999).
//
// The system lives under internal/: see internal/core for the public
// facade, DESIGN.md for the architecture and per-experiment index, and
// EXPERIMENTS.md for the measured reproduction of every figure and table
// in the paper's evaluation section. The benchmarks in bench_test.go
// regenerate each figure; cmd/starfish-bench prints them as paper-style
// tables.
package starfish
