// starfishctl is the management client for a Starfish cluster — the
// command-line replacement for the paper's Java GUI. It speaks the ASCII
// management protocol of §3.1.1 to any daemon.
//
//	starfishctl -addr 127.0.0.1:7100 -admin starfish NODES
//	starfishctl -addr 127.0.0.1:7100 -user alice SUBMIT 1 ring 3 sfs portable restart 0 <hexargs>
//	starfishctl -addr 127.0.0.1:7100 -user alice SUBMIT 2 ring 3 sfs portable restart 0 - memory
//	starfishctl -addr 127.0.0.1:7100 -user alice STATUS 1
//	starfishctl -addr 127.0.0.1:7100 -admin starfish RSTORE   # memory-store health
//	starfishctl -addr 127.0.0.1:7100 -admin starfish      # interactive session
//
// SUBMIT's optional trailing field selects the checkpoint storage backend
// (disk, memory, or tiered); RSTORE reports the local replicated
// memory-store shard: size, replica health, and push/fetch counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"starfish/internal/mgmt"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7100", "daemon management address")
		admin = flag.String("admin", "", "log in as administrator with this password")
		user  = flag.String("user", "", "log in as this user")
	)
	flag.Parse()

	c, err := mgmt.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch {
	case *admin != "":
		err = c.LoginAdmin(*admin)
	case *user != "":
		err = c.LoginUser(*user)
	default:
		log.Fatal("starfishctl: one of -admin or -user is required")
	}
	if err != nil {
		log.Fatalf("starfishctl: login: %v", err)
	}

	if flag.NArg() > 0 {
		run(c, strings.Join(flag.Args(), " "))
		return
	}

	// Interactive session.
	fmt.Println("starfishctl: connected; type commands (QUIT to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		run(c, line)
		if strings.EqualFold(line, "QUIT") {
			return
		}
	}
}

func run(c *mgmt.Client, line string) {
	out, err := c.Do(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ERR %v\n", err)
		if flag.NArg() > 0 {
			os.Exit(1)
		}
		return
	}
	if len(out) == 0 {
		fmt.Println("OK")
		return
	}
	for _, l := range out {
		if l != "" {
			fmt.Println(l)
		}
	}
}
