// Package evfix is the evcheck golden fixture: emit sites whose kind
// argument resolves (or fails to resolve) at the three supported levels —
// literal, literal-assigned local, parameter with literal call sites. The
// query-side checks need a whole-repo load and are exercised by the repo
// run itself, not here.
package evfix

import "starfish/internal/evstore"

func literalOK() evstore.Record {
	return evstore.Ev("view-change")
}

func literalBogus() evstore.Record {
	return evstore.Ev("bogus-kind") // want "not declared in the evstore Registry"
}

func localOK() evstore.Record {
	kind := "suspend"
	if len(kind) > 0 {
		kind = "resume"
	}
	return evstore.EvApp(kind, 1)
}

func localBad(s string) evstore.Record {
	kind := "suspect"
	kind = s // want "assigned a non-literal value"
	return evstore.Ev(kind)
}

// viaParam forwards its kind parameter to the constructor: every call
// site must pass a literal so the kind stays statically checkable.
func viaParam(kind string) evstore.Record {
	return evstore.Ev(kind)
}

func someKind() string { return "drop" }

func callers() {
	viaParam("drop")
	viaParam("oops-kind") // want "not declared in the evstore Registry"
	viaParam(someKind())  // want "not a string literal"
}

func unresolvable(m map[string]string) evstore.Record {
	return evstore.Ev(m["k"]) // want "not statically resolvable"
}
