package daemon

import (
	"fmt"

	"starfish/internal/ckpt"
	"starfish/internal/proc"
	"starfish/internal/wire"
)

// Everything daemons agree on travels as a totally ordered multicast on the
// main Starfish group. Each cast carries a one-byte envelope tag choosing
// between lightweight-group operations and replicated cluster commands; the
// commands form the deterministic state machine every daemon applies
// identically (§3.1.1's coherent state via Ensemble's total order).

// Envelope tags.
const (
	envLWG uint8 = 1 // payload: lwg.Op
	envCmd uint8 = 2 // payload: Cmd
)

// CmdKind discriminates replicated cluster commands.
type CmdKind uint8

// Cluster commands.
const (
	// CmdSubmit registers and launches an application. Payload: AppSpec.
	CmdSubmit CmdKind = iota + 1
	// CmdDelete terminates an application and discards its state.
	CmdDelete
	// CmdSuspend pauses an application's processes at their next safe
	// point; CmdResume continues them.
	CmdSuspend
	CmdResume
	// CmdCheckpoint triggers a checkpoint round of the application's
	// configured protocol.
	CmdCheckpoint
	// CmdRankDone records one process's completion (Err empty on
	// success). Gen guards against reports from torn-down incarnations.
	CmdRankDone
	// CmdRestart relaunches an application from a recovery line with a
	// fresh placement (crash recovery, and migration when issued
	// manually). Issued by the leader so every daemon uses the same line.
	CmdRestart
	// CmdSetNodeEnabled includes or excludes a node from future
	// placements (management ENABLE/DISABLE NODE).
	CmdSetNodeEnabled
	// CmdSetParam updates a named cluster parameter.
	CmdSetParam
)

func (k CmdKind) String() string {
	switch k {
	case CmdSubmit:
		return "submit"
	case CmdDelete:
		return "delete"
	case CmdSuspend:
		return "suspend"
	case CmdResume:
		return "resume"
	case CmdCheckpoint:
		return "checkpoint"
	case CmdRankDone:
		return "rank-done"
	case CmdRestart:
		return "restart"
	case CmdSetNodeEnabled:
		return "set-node-enabled"
	case CmdSetParam:
		return "set-param"
	default:
		return fmt.Sprintf("daemon.CmdKind(%d)", uint8(k))
	}
}

// Cmd is one replicated cluster command.
type Cmd struct {
	Kind CmdKind
	App  wire.AppID
	Node wire.NodeID
	Rank wire.Rank
	Gen  uint32
	Err  string
	// Spec is set for CmdSubmit.
	Spec *proc.AppSpec
	// Line is set for CmdRestart.
	Line ckpt.RecoveryLine
	// Key/Value are set for CmdSetParam.
	Key, Value string
	// Flag is set for CmdSetNodeEnabled.
	Flag bool
}

// encodeCmd serializes a command.
func encodeCmd(c *Cmd) []byte {
	w := wire.NewWriter(64)
	w.U8(uint8(c.Kind)).U32(uint32(c.App)).U32(uint32(c.Node))
	w.U32(uint32(c.Rank)).U32(c.Gen).String(c.Err).Bool(c.Flag)
	w.String(c.Key).String(c.Value)
	if c.Spec != nil {
		w.Bytes32(c.Spec.Encode())
	} else {
		w.Bytes32(nil)
	}
	w.U32(uint32(len(c.Line)))
	for _, r := range c.Line.Ranks() {
		w.U32(uint32(r)).U64(c.Line[r])
	}
	return w.Bytes()
}

// decodeCmd parses a command.
func decodeCmd(b []byte) (Cmd, error) {
	r := wire.NewReader(b)
	c := Cmd{
		Kind: CmdKind(r.U8()),
		App:  wire.AppID(r.U32()),
		Node: wire.NodeID(r.U32()),
		Rank: wire.Rank(r.U32()),
		Gen:  r.U32(),
		Err:  r.String(),
		Flag: r.Bool(),
		Key:  r.String(),
	}
	c.Value = r.String()
	if specBytes := r.Bytes32(); len(specBytes) > 0 {
		spec, err := proc.DecodeSpec(specBytes)
		if err != nil {
			return Cmd{}, err
		}
		c.Spec = &spec
	}
	n := r.U32()
	if n > 0 {
		c.Line = make(ckpt.RecoveryLine, n)
	}
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		rank := wire.Rank(r.U32())
		c.Line[rank] = r.U64()
	}
	if r.Err() != nil {
		return Cmd{}, r.Err()
	}
	return c, nil
}

// envelope wraps a payload with its tag.
func envelope(tag uint8, payload []byte) []byte {
	out := make([]byte, 0, 1+len(payload))
	out = append(out, tag)
	return append(out, payload...)
}

// lwMeta is the metadata a daemon attaches when joining an application's
// lightweight group: the ranks it hosts and their data-path addresses,
// plus — when this daemon created the app's per-group sequencer stream —
// the stream's contact address for the other members to join through.
type lwMeta struct {
	Gen   uint32
	GCS   string // per-group stream contact (creator only; "" otherwise)
	Addrs map[wire.Rank]string
}

func encodeLWMeta(m *lwMeta) []byte {
	w := wire.NewWriter(16)
	w.U32(m.Gen).String(m.GCS)
	w.U32(uint32(len(m.Addrs)))
	for _, p := range sortedAddrPairs(m.Addrs) {
		w.U32(uint32(p.rank)).String(p.addr)
	}
	return w.Bytes()
}

type addrPair struct {
	rank wire.Rank
	addr string
}

func sortedAddrPairs(m map[wire.Rank]string) []addrPair {
	out := make([]addrPair, 0, len(m))
	for r, a := range m {
		out = append(out, addrPair{r, a})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].rank < out[j-1].rank; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func decodeLWMeta(b []byte) (lwMeta, error) {
	r := wire.NewReader(b)
	m := lwMeta{Gen: r.U32(), GCS: r.String()}
	n := r.U32()
	m.Addrs = make(map[wire.Rank]string, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		rank := wire.Rank(r.U32())
		m.Addrs[rank] = r.String()
	}
	return m, r.Err()
}

// encodeRelay wraps a process-level message for transport inside a
// lightweight-group cast (coordination and C/R messages are opaque to the
// daemons, §2.2).
func encodeRelay(m *wire.Msg) []byte {
	buf, err := m.Encode()
	if err != nil {
		return nil
	}
	return buf
}

func decodeRelay(b []byte) (wire.Msg, error) {
	m, _, err := wire.Decode(b)
	if err != nil {
		return wire.Msg{}, err
	}
	return m.Clone(), nil
}
