// Golden fixture for goleak: every goroutine tied to a lifecycle signal.
package fixture

import (
	"sync"
	"time"
)

func process(int)       {}
func compute() int      { return 0 }
func recv() (int, bool) { return 0, false }

// ---- violations ----

func loopNoStop(work chan int) {
	go func() { // want "loops with no stop signal"
		for {
			process(<-work)
		}
	}()
}

func oneShotSilent() {
	go func() { // want "neither observes a stop signal nor signals completion"
		compute()
	}()
}

func outOfPackageBody() {
	go time.Sleep(time.Millisecond) // want "outside this package"
}

type spinner struct{ n int }

func (s *spinner) spin() {
	for {
		s.n++
	}
}

func namedLoopNoStop(s *spinner) {
	go s.spin() // want "loops with no stop signal"
}

// ---- compliant ----

func loopWithStop(work chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case w := <-work:
				process(w)
			case <-stop:
				return
			}
		}
	}()
}

func rangeDrain(work chan int) {
	go func() {
		// for range ch ends when the sender closes the channel.
		for w := range work {
			process(w)
		}
	}()
}

func oneShotCompletion(res chan int) {
	go func() {
		res <- compute()
	}()
}

func oneShotClose(done chan struct{}) {
	go func() {
		compute()
		close(done)
	}()
}

func closeDrained(msgs chan int) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		// The Close-drained pattern: whatever unblocks recv() ends the
		// loop, and the deferred close hands the exit to the waiter.
		defer close(done)
		for {
			v, ok := recv()
			if !ok {
				return
			}
			msgs <- v
		}
	}()
	return done
}

func wgTracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
}

type server struct {
	stop chan struct{}
	work chan int
}

func (s *server) loop() {
	for {
		select {
		case w := <-s.work:
			process(w)
		case <-s.stop:
			return
		}
	}
}

func namedLoopWithStop(s *server) {
	// The checker follows same-package declarations.
	go s.loop()
}

func annotatedOutOfPackage() {
	//starfish:allow goleak fixture: the nap is the goroutine's whole lifetime
	go time.Sleep(time.Millisecond)
}
