// Control-plane benchmarks. scripts/check.sh runs them and folds the
// results into BENCH_controlplane.json, which gates the sharded control
// plane's two scaling claims:
//
//   - casts: with 8 applications live, routing each app's scoped casts
//     through its own per-group sequencer must beat funnelling them all
//     through one cluster-wide sequencer by >=4x. The win is not CPU
//     parallelism (the gate must hold on a single-core box) but fan-out:
//     a cast on the shared group is delivered to every cluster member and
//     scoped at the receiver, while a cast on a per-group stream only ever
//     touches the app's own members.
//
//   - gossip: the SWIM detector's per-node message load must stay O(1) as
//     the simulated cluster grows 64 -> 1024 nodes, and confirmed-dead
//     detection latency must grow no worse than the rumor-spread log
//     factor. The detector is a pure state machine, so both are measured
//     under deterministic virtual time — no wall-clock sleeping.
package starfish_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starfish/internal/gcs"
	"starfish/internal/gossip"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

const (
	cpApps      = 8  // concurrently live applications
	cpGroupSize = 4  // nodes hosting each application
	cpCluster   = 32 // cluster size for the single-sequencer mode
)

// cpCounter tracks casts delivered at one endpoint.
type cpCounter struct {
	total  atomic.Int64
	perApp [cpApps]atomic.Int64
}

// cpGroup forms one sequencer group over the given node ids, with failure
// detection effectively disabled (the cast benchmark kills nobody, and
// detector noise would pollute the timing).
func cpGroup(b *testing.B, fn *vni.Fastnet, prefix string, ids []wire.NodeID) []*gcs.Endpoint {
	b.Helper()
	eps := make([]*gcs.Endpoint, len(ids))
	contact := ""
	for i, id := range ids {
		ep, err := gcs.Join(gcs.Config{
			Node:           id,
			Transport:      fn,
			Addr:           fmt.Sprintf("%s-n%d", prefix, id),
			Contact:        contact,
			HeartbeatEvery: 200 * time.Millisecond,
			FailAfter:      time.Hour,
		})
		if err != nil {
			b.Fatalf("join %s node %d: %v", prefix, id, err)
		}
		if i == 0 {
			contact = ep.Addr()
		}
		eps[i] = ep
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, ep := range eps {
		for len(ep.View().Members) != len(ids) {
			if time.Now().After(deadline) {
				b.Fatalf("group %s never formed: view %v", prefix, ep.View().Members)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return eps
}

// cpPump drains one endpoint's events, counting delivered casts by the
// app tag in the payload's first byte. It exits when the endpoint closes.
func cpPump(ep *gcs.Endpoint, c *cpCounter, wg *sync.WaitGroup) {
	defer wg.Done()
	for ev := range ep.Events() {
		if ev.Kind == gcs.ECast && len(ev.Payload) > 0 && int(ev.Payload[0]) < cpApps {
			c.perApp[ev.Payload[0]].Add(1)
			c.total.Add(1)
		}
	}
}

// cpRunCasts drives the cast workload: one sender goroutine per app issues
// b.N tagged casts (windowed against its own delivery count so the
// sequencer queue stays bounded), then the caller-provided wait predicate
// blocks until every expected delivery landed. One benchmark op is "each
// of the 8 apps casts once".
func cpRunCasts(b *testing.B, senders [cpApps]*gcs.Endpoint, own [cpApps]*cpCounter, wait func(n int64)) {
	const window = 64
	var swg sync.WaitGroup
	for app := 0; app < cpApps; app++ {
		swg.Add(1)
		go func(app int) {
			defer swg.Done()
			payload := []byte{byte(app)}
			for i := 0; i < b.N; i++ {
				for own[app].perApp[app].Load() < int64(i-window) {
					time.Sleep(50 * time.Microsecond)
				}
				if err := senders[app].Cast(payload); err != nil {
					b.Errorf("app %d cast: %v", app, err)
					return
				}
			}
		}(app)
	}
	swg.Wait()
	wait(int64(b.N))
}

// BenchmarkControlPlane is the sharded-control-plane suite; sub-benchmarks
// are selected by name in scripts/check.sh and gated through
// BENCH_controlplane.json.
func BenchmarkControlPlane(b *testing.B) {
	// casts=single: the pre-sharding shape. One cluster-wide group of 32
	// endpoints sequences every app's casts; each cast is delivered to all
	// 32 members and scoped at the receiver.
	b.Run("casts=single/apps=8", func(b *testing.B) {
		fn := vni.NewFastnet(0)
		ids := make([]wire.NodeID, cpCluster)
		for i := range ids {
			ids[i] = wire.NodeID(i + 1)
		}
		eps := cpGroup(b, fn, "cp-single", ids)
		counters := make([]*cpCounter, len(eps))
		var pwg sync.WaitGroup
		for i, ep := range eps {
			counters[i] = &cpCounter{}
			pwg.Add(1)
			go cpPump(ep, counters[i], &pwg)
		}
		var senders [cpApps]*gcs.Endpoint
		var own [cpApps]*cpCounter
		for app := 0; app < cpApps; app++ {
			senders[app] = eps[app*cpGroupSize]
			own[app] = counters[app*cpGroupSize]
		}
		b.ResetTimer()
		cpRunCasts(b, senders, own, func(n int64) {
			// Every member of the shared group delivers every app's casts.
			for _, c := range counters {
				for c.total.Load() < cpApps*n {
					time.Sleep(50 * time.Microsecond)
				}
			}
		})
		b.StopTimer()
		for _, ep := range eps {
			ep.Close()
		}
		pwg.Wait()
	})

	// casts=sharded: the same 8 apps and the same per-app member count,
	// but each app's casts ride its own 4-member sequencer stream.
	b.Run("casts=sharded/apps=8", func(b *testing.B) {
		fn := vni.NewFastnet(0)
		var all []*gcs.Endpoint
		counters := make(map[*gcs.Endpoint]*cpCounter)
		groups := make([][]*gcs.Endpoint, cpApps)
		var pwg sync.WaitGroup
		for app := 0; app < cpApps; app++ {
			ids := make([]wire.NodeID, cpGroupSize)
			for i := range ids {
				ids[i] = wire.NodeID(app*cpGroupSize + i + 1)
			}
			eps := cpGroup(b, fn, fmt.Sprintf("cp-g%d", app), ids)
			groups[app] = eps
			for _, ep := range eps {
				c := &cpCounter{}
				counters[ep] = c
				all = append(all, ep)
				pwg.Add(1)
				go cpPump(ep, c, &pwg)
			}
		}
		var senders [cpApps]*gcs.Endpoint
		var own [cpApps]*cpCounter
		for app := 0; app < cpApps; app++ {
			// Spread senders across member positions so not every group's
			// load originates at its coordinator.
			ep := groups[app][app%cpGroupSize]
			senders[app] = ep
			own[app] = counters[ep]
		}
		b.ResetTimer()
		cpRunCasts(b, senders, own, func(n int64) {
			// Each group's members deliver only their own app's casts.
			for app := 0; app < cpApps; app++ {
				for _, ep := range groups[app] {
					for counters[ep].perApp[app].Load() < n {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
		})
		b.StopTimer()
		for _, ep := range all {
			ep.Close()
		}
		pwg.Wait()
	})

	// gossip: virtual-time scaling of the SWIM detector.
	for _, n := range []int{64, 256, 1024} {
		n := n
		b.Run(fmt.Sprintf("gossip/nodes=%d", n), func(b *testing.B) {
			var msgs, detectMs float64
			for i := 0; i < b.N; i++ {
				msgs, detectMs = cpGossipSim(b, n)
			}
			b.ReportMetric(msgs, "msgs_node_round")
			b.ReportMetric(detectMs, "detect_ms")
		})
	}
}

// cpGossipSim runs one deterministic virtual-time simulation of n gossip
// detectors: measure steady-state message load per node per round, then
// kill one node and measure how long until every survivor has confirmed it
// dead (first suspicion, the unrefuted-suspicion budget, and the epidemic
// spread of the dead rumor all included).
func cpGossipSim(b *testing.B, n int) (msgsPerNodeRound, detectMs float64) {
	b.Helper()
	params := gossip.Params{ProbeEvery: 25 * time.Millisecond}
	ids := make([]wire.NodeID, n)
	dets := make(map[wire.NodeID]*gossip.Detector, n)
	down := make(map[wire.NodeID]bool)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
		dets[ids[i]] = gossip.New(gossip.Config{
			Self:   ids[i],
			Seed:   uint64(i+1) * 7919,
			Params: params,
		})
	}
	for _, d := range dets {
		d.SetMembers(ids)
	}
	now := time.Unix(0, 0)

	var deliver func(envs []gossip.Envelope)
	deliver = func(envs []gossip.Envelope) {
		for _, e := range envs {
			if down[e.To] {
				continue
			}
			outs, err := dets[e.To].Handle(now, e.Payload)
			if err != nil {
				b.Fatalf("gossip handle: %v", err)
			}
			deliver(outs)
		}
	}
	round := func() {
		now = now.Add(params.ProbeEvery)
		for _, id := range ids {
			if !down[id] {
				deliver(dets[id].Tick(now))
			}
		}
	}

	// Let the initial probe traffic settle, then measure steady-state load.
	for i := 0; i < 12; i++ {
		round()
	}
	const loadRounds = 16
	var before uint64
	for _, id := range ids {
		before += dets[id].Stats().Sent
	}
	for i := 0; i < loadRounds; i++ {
		round()
	}
	var after uint64
	for _, id := range ids {
		after += dets[id].Stats().Sent
	}
	msgsPerNodeRound = float64(after-before) / float64(n) / float64(loadRounds)

	// Kill one mid-ring node; run until every survivor confirms it dead.
	victim := ids[n/2]
	down[victim] = true
	killed := now
	for r := 0; ; r++ {
		if r > 400 {
			b.Fatalf("gossip nodes=%d: victim not confirmed dead after %d rounds", n, r)
		}
		round()
		confirmed := true
		for _, id := range ids {
			if !down[id] && dets[id].Status(victim) != gossip.Dead {
				confirmed = false
				break
			}
		}
		if confirmed {
			break
		}
	}
	detectMs = float64(now.Sub(killed).Milliseconds())
	return msgsPerNodeRound, detectMs
}
