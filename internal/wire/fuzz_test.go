package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode exercises the frame decoder with hostile input: truncated
// headers, oversized length fields, invalid type bytes, and random bytes. A
// transport peer controls every byte of a frame, so Decode must never panic
// and must only succeed on frames Encode could have produced.
func FuzzDecode(f *testing.F) {
	// A valid frame as the mutation starting point.
	valid := Msg{Type: TData, App: 7, Kind: 3, Src: 1, Dst: 2, Tag: 99, Seq: 42, Payload: []byte("payload")}
	enc := func() []byte {
		b, err := valid.Encode()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(enc())

	// Truncated headers, byte by byte around the boundary.
	f.Add([]byte{})
	f.Add([]byte{byte(TData)})
	f.Add(enc()[:headerLen-1])
	f.Add(enc()[:headerLen]) // header intact, payload missing

	// Invalid type byte.
	bad := enc()
	bad[0] = 0xFF
	f.Add(bad)
	bad2 := enc()
	bad2[0] = byte(typeCount)
	f.Add(bad2)

	// Oversized length field (claims more than MaxPayload).
	huge := enc()
	binary.BigEndian.PutUint32(huge[headerLen-4:], MaxPayload+1)
	f.Add(huge)
	// Length field larger than the buffer actually holds.
	lying := enc()
	binary.BigEndian.PutUint32(lying[headerLen-4:], 1<<20)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if len(m.Payload) > MaxPayload {
			t.Fatalf("Decode accepted payload of %d bytes", len(m.Payload))
		}
		// Round-trip: re-encoding a decoded frame must reproduce the
		// consumed bytes exactly.
		got, err := m.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:n])
		}
	})
}
