// Package leakcheck is a tiny shared goroutine-leak detector for tests.
//
// The chaos soak's acceptance bar includes "no leaked goroutines": a
// failure path that forgets to stop a poller or an engine loop passes a
// single test run silently and only shows up as creeping resource use.
// Check snapshots the goroutine count when called and verifies on test
// cleanup — after the package under test has shut down — that the count
// returned to (near) the baseline, retrying briefly to let exiting
// goroutines unwind before declaring a leak and dumping all stacks.
package leakcheck

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if, by the end of the test, more than slack goroutines above the
// baseline remain. Call it first in a test, before the system under test
// starts, and after any t.Cleanup whose teardown must run first (cleanups
// run last-registered-first). slack <= 0 selects 0: any growth fails.
func Check(t testing.TB, slack int) {
	t.Helper()
	if slack < 0 {
		slack = 0
	}
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Give exiting goroutines a moment to unwind: Close methods often
		// return before their workers have finished dying.
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= base+slack || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if now > base+slack {
			t.Errorf("leakcheck: %d goroutines at start, %d at end (slack %d)\n%s",
				base, now, slack, stacks())
		}
	})
}

// stacks formats all goroutine stacks, trimmed to a readable size.
func stacks() []byte {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	b := buf[:n]
	if len(b) > 64<<10 {
		b = append(b[:64<<10:64<<10], []byte("\n... (truncated)")...)
	}
	return bytes.TrimSpace(b)
}
