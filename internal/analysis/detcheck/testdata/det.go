// Package det is the detcheck golden fixture: functions under the
// //starfish:deterministic contract paired with `// want` expectations.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// clock is unmarked: free to read the wall clock. Marked callers that
// reach it are tainted through the summary, with the evidence attributed
// via the callee.
func clock() time.Time { return time.Now() }

// seedOf only builds a generator: deterministic given its argument.
//
//starfish:deterministic
func seedOf(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

//starfish:deterministic
func wallClock() int64 {
	return time.Now().UnixNano() // want "reaches time.Now"
}

//starfish:deterministic
func viaHelper() time.Time {
	return clock() // want "reaches time.Now (via clock)"
}

//starfish:deterministic
func globalRand() int {
	return rand.Int() // want "unseeded math/rand.Int"
}

//starfish:deterministic
func spawns(ch chan int) {
	go func() { ch <- 1 }() // want "goroutine spawn"
}

//starfish:deterministic
func leakOrder(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order reaches a channel send"
		ch <- k
	}
}

//starfish:deterministic
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "without a subsequent sort"
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the blessed pattern: collect, then sort in the same block.
//
//starfish:deterministic
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// perKeyWrites never observes iteration order: map writes are per-key.
//
//starfish:deterministic
func perKeyWrites(m map[string]int) {
	for k, v := range m {
		m[k] = v + 1
	}
}

// drawSeeded draws from a caller-provided generator: deterministic given
// the generator's state.
//
//starfish:deterministic
func drawSeeded(r *rand.Rand) int { return r.Intn(10) }
