// Benchmarks regenerating the paper's evaluation (§5): one bench family
// per figure. Absolute numbers differ from the 1999 testbed (300 MHz
// Pentium II, IDE disks, Myrinet), but the shapes the paper reports are
// reproduced: checkpoint time linear in state size and growing with node
// count (figures 3 and 4, with the VM-level floor below the native floor);
// round-trip latency linear in message size with the user-level transport
// well below TCP (figure 5); and per-layer software overheads independent
// of message size (figure 6).
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFigure3 -benchtime=3x
package starfish_test

import (
	"fmt"
	"testing"
	"time"

	"starfish/internal/apps"
	"starfish/internal/ckpt"
	"starfish/internal/core"
	"starfish/internal/gcs"
	"starfish/internal/mpi"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// ---- Figures 3 & 4: distributed checkpoint time vs size and node count ----

// ckptSizes are the per-process state sizes swept by the checkpoint
// benchmarks. The paper sweeps 632 KB – 135 MB (native) and 260 KB – 96 MB
// (VM-level); the shape (linearity) shows at laptop-friendly sizes.
var ckptSizes = []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}

var ckptNodeCounts = []int{1, 2, 4}

// benchCheckpoint measures one full coordinated checkpoint round
// (stop-and-sync: request broadcast, cut, drain, dump to disk, ack,
// commit) of an application with stateBytes of live state per rank.
func benchCheckpoint(b *testing.B, nodes, stateBytes int, encoder ckpt.Kind) {
	b.Helper()
	// A long failure-detection budget: big state dumps and busy CPUs must
	// not trip false suspicions mid-benchmark.
	env, err := core.New(core.Options{
		Nodes: nodes, StoreDir: b.TempDir(),
		HeartbeatEvery: 20 * time.Millisecond, FailAfter: 5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Shutdown()
	if err := env.WaitView(nodes, 15*time.Second); err != nil {
		b.Fatal(err)
	}
	const app = core.AppID(1)
	if err := env.Submit(core.Job{
		ID: app, Name: apps.SizerName, Args: apps.SizerArgs(stateBytes, 1<<40),
		Ranks: nodes, Protocol: core.StopAndSync, Encoder: encoder,
	}); err != nil {
		b.Fatal(err)
	}
	// Wait until the application is actually stepping.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if st, ok := env.Status(app); ok && st.Status != 0 && st.Status.String() == "running" {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("application never started")
		}
		time.Sleep(500 * time.Microsecond)
	}

	var enc ckpt.Encoder = &ckpt.NativeEncoder{}
	if encoder == ckpt.Portable {
		enc = &ckpt.PortableEncoder{}
	}
	perRank := int64(stateBytes + enc.Overhead())
	b.SetBytes(perRank * int64(nodes))

	var lastIdx uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.Checkpoint(app); err != nil {
			b.Fatal(err)
		}
		// The round is complete when the committed line advances.
		for {
			line, err := env.CommittedLine(app)
			if err == nil {
				idx := line[0]
				if idx > lastIdx {
					lastIdx = idx
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(perRank)/(1<<20), "MB/rank")
}

// BenchmarkFigure3 reproduces figure 3: native (homogeneous, process-
// level) checkpoint time as a function of checkpoint size, on 1, 2 and 4
// nodes, using the stop-and-sync protocol. Every dump carries the
// simulated 632 KB runtime image, the paper's empty-program floor.
func BenchmarkFigure3(b *testing.B) {
	for _, nodes := range ckptNodeCounts {
		for _, size := range ckptSizes {
			b.Run(fmt.Sprintf("nodes=%d/state=%s", nodes, sizeLabel(size)), func(b *testing.B) {
				benchCheckpoint(b, nodes, size, ckpt.Native)
			})
		}
	}
}

// BenchmarkFigure4 reproduces figure 4: VM-level (heterogeneous, portable)
// checkpoint time for the same sweep. The portable floor (260 KB of
// VM-level bookkeeping, no VM internals) is smaller than the native one,
// so for equal application state the dumps are smaller and faster —
// exactly the relationship between the paper's figures 3 and 4.
func BenchmarkFigure4(b *testing.B) {
	for _, nodes := range ckptNodeCounts {
		for _, size := range ckptSizes {
			b.Run(fmt.Sprintf("nodes=%d/state=%s", nodes, sizeLabel(size)), func(b *testing.B) {
				benchCheckpoint(b, nodes, size, ckpt.Portable)
			})
		}
	}
}

// ---- Figure 5: round-trip delay vs message size, fast transport vs TCP ----

var rtSizes = []int{1, 64, 256, 1024, 4096, 16384, 65536}

// pingWorld builds a two-rank MPI world on the given transport and starts
// an echo server on rank 1.
func pingWorld(b *testing.B, tr vni.Transport, addr func(int) string, timer *vni.StageTimer) (*mpi.Comm, func()) {
	b.Helper()
	// Latency benchmarks measure the data path, not the pool's test-mode
	// ownership instrumentation.
	guard := wire.SetPoolGuard(false)
	nic0, err := vni.NewNIC(tr, addr(0), 0)
	if err != nil {
		b.Fatal(err)
	}
	nic1, err := vni.NewNIC(tr, addr(1), 0)
	if err != nil {
		b.Fatal(err)
	}
	addrs := map[wire.Rank]string{0: nic0.Addr(), 1: nic1.Addr()}
	c0, err := mpi.New(mpi.Config{App: 1, Rank: 0, Size: 2, NIC: nic0, Addrs: addrs, Timer: timer})
	if err != nil {
		b.Fatal(err)
	}
	c1, err := mpi.New(mpi.Config{App: 1, Rank: 1, Size: 2, NIC: nic1, Addrs: addrs})
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			data, _, err := c1.Recv(0, 0)
			if err != nil {
				return
			}
			if err := c1.Send(0, 0, data); err != nil {
				return
			}
		}
	}()
	cleanup := func() {
		c0.Close()
		c1.Close()
		<-done
		nic0.Close()
		nic1.Close()
		wire.SetPoolGuard(guard)
	}
	return c0, cleanup
}

// BenchmarkFigure5 reproduces figure 5: application-level round-trip delay
// versus message size over the fastnet transport (the BIP/Myrinet
// stand-in) and over real loopback TCP. ns/op is one round trip.
func BenchmarkFigure5(b *testing.B) {
	transports := []struct {
		name string
		tr   vni.Transport
		addr func(int) string
	}{
		{"bip-fastnet", vni.NewFastnet(0), func(i int) string { return fmt.Sprintf("f5-%d", i) }},
		{"tcp", vni.NewTCP(), func(int) string { return "127.0.0.1:0" }},
	}
	for _, tc := range transports {
		for _, size := range rtSizes {
			b.Run(fmt.Sprintf("%s/size=%d", tc.name, size), func(b *testing.B) {
				c0, cleanup := pingWorld(b, tc.tr, tc.addr, nil)
				defer cleanup()
				buf := make([]byte, size)
				b.SetBytes(int64(2 * size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c0.Send(1, 0, buf); err != nil {
						b.Fatal(err)
					}
					if _, _, err := c0.Recv(1, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Figure 6: per-layer software overhead, independent of size ----

// BenchmarkFigure6 reproduces figure 6: the time a message spends in each
// software layer for sending and receiving. The per-layer means are
// reported as custom metrics; running the bench at several message sizes
// shows they stay flat — messages are never copied between layers, the
// paper's explanation for the same observation.
func BenchmarkFigure6(b *testing.B) {
	for _, size := range []int{1, 1024, 65536} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			timer := vni.NewStageTimer()
			fn := vni.NewFastnet(0)
			c0, cleanup := pingWorld(b, fn, func(i int) string { return fmt.Sprintf("f6-%d", i) }, timer)
			defer cleanup()
			buf := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c0.Send(1, 0, buf); err != nil {
					b.Fatal(err)
				}
				if _, _, err := c0.Recv(1, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, st := range []vni.Stage{vni.StageMPISend, vni.StageVNISend, vni.StageVNIRecv, vni.StageMPIRecv} {
				b.ReportMetric(float64(timer.Mean(st).Nanoseconds()), st.String()+"-ns")
			}
		})
	}
}

// ---- supporting micro-benchmarks (substrate performance) ----

// BenchmarkEncoders measures raw checkpoint encode+decode throughput for
// both encoders at 1 MB of state.
func BenchmarkEncoders(b *testing.B) {
	state := make([]byte, 1<<20)
	for i := range state {
		state[i] = byte(i)
	}
	arch := svm.Machines[0]
	for _, enc := range []ckpt.Encoder{&ckpt.NativeEncoder{}, &ckpt.PortableEncoder{}} {
		b.Run(enc.Kind().String(), func(b *testing.B) {
			b.SetBytes(int64(len(state) + enc.Overhead()))
			for i := 0; i < b.N; i++ {
				img, err := enc.Encode(state, arch)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := enc.Decode(img, arch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSVM measures VM execution speed and cross-architecture image
// conversion.
func BenchmarkSVM(b *testing.B) {
	prog := svm.MustAssemble(`
loop:   loadg 0
        push 1
        add
        storeg 0
        jmp loop`)
	b.Run("step", func(b *testing.B) {
		m := svm.New(svm.Machines[0], prog, 1)
		b.ResetTimer()
		if _, err := m.RunSteps(b.N); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("convert-le32-to-be64", func(b *testing.B) {
		m := svm.New(svm.Machines[0], prog, 1)
		m.Grow(64 << 10) // 64 Ki words of heap
		img := m.EncodeImage()
		b.SetBytes(int64(len(img)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svm.DecodeImage(img, svm.Machines[5]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGCSCast measures the totally ordered multicast (request to
// sequencer, sequencing, delivery at every member) on a 4-member group.
func BenchmarkGCSCast(b *testing.B) {
	fn := vni.NewFastnet(0)
	var eps []*gcs.Endpoint
	for i := 0; i < 4; i++ {
		cfg := gcs.Config{
			Node: wire.NodeID(i + 1), Transport: fn,
			Addr:           fmt.Sprintf("bench-gcs-%d", i+1),
			HeartbeatEvery: 50 * time.Millisecond,
		}
		if i > 0 {
			cfg.Contact = "bench-gcs-1"
		}
		ep, err := gcs.Join(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer ep.Close()
		eps = append(eps, ep)
	}
	// Wait for the full view everywhere.
	for _, ep := range eps {
		for ev := range ep.Events() {
			if ev.Kind == gcs.EView && len(ev.View.Members) == 4 {
				break
			}
		}
	}
	payload := []byte("benchmark-cast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eps[1].Cast(payload); err != nil {
			b.Fatal(err)
		}
		// Completion = delivery at the sender (total order reached us).
		for ev := range eps[1].Events() {
			if ev.Kind == gcs.ECast {
				break
			}
		}
	}
}

// BenchmarkCollectivesLatency measures small-message Barrier and Allreduce
// on 4 ranks (the large-message sweep lives in bench_collectives_test.go).
func BenchmarkCollectivesLatency(b *testing.B) {
	world := func(b *testing.B) []*mpi.Comm {
		fn := vni.NewFastnet(0)
		addrs := map[wire.Rank]string{}
		nics := make([]*vni.NIC, 4)
		for i := range nics {
			nic, err := vni.NewNIC(fn, fmt.Sprintf("col-%d", i), 0)
			if err != nil {
				b.Fatal(err)
			}
			nics[i] = nic
			addrs[wire.Rank(i)] = nic.Addr()
			b.Cleanup(func() { nic.Close() })
		}
		comms := make([]*mpi.Comm, 4)
		for i := range comms {
			c, err := mpi.New(mpi.Config{App: 1, Rank: wire.Rank(i), Size: 4, NIC: nics[i], Addrs: addrs})
			if err != nil {
				b.Fatal(err)
			}
			comms[i] = c
			b.Cleanup(c.Close)
		}
		return comms
	}
	b.Run("barrier", func(b *testing.B) {
		comms := world(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, 4)
			for _, c := range comms {
				go func(c *mpi.Comm) { errs <- c.Barrier() }(c)
			}
			for range comms {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("allreduce-64f", func(b *testing.B) {
		comms := world(b)
		contrib := mpi.Float64Bytes(make([]float64, 64))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, 4)
			for _, c := range comms {
				go func(c *mpi.Comm) {
					_, err := c.Allreduce(contrib, mpi.SumFloat64)
					errs <- err
				}(c)
			}
			for range comms {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRecoveryLine measures recovery-line computation over a large
// dependency set (the uncoordinated-restart cost).
func BenchmarkRecoveryLine(b *testing.B) {
	const ranks, ckpts = 16, 64
	latest := map[wire.Rank]uint64{}
	var deps []ckpt.Dep
	for r := 0; r < ranks; r++ {
		latest[wire.Rank(r)] = ckpts
		for c := uint64(0); c < ckpts; c++ {
			deps = append(deps, ckpt.Dep{
				From: ckpt.IntervalID{Rank: wire.Rank(r), Index: c},
				To:   ckpt.IntervalID{Rank: wire.Rank((r + 1) % ranks), Index: c},
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckpt.ComputeRecoveryLine(latest, deps)
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ---- ablation: the three C/R protocols side by side ----

// BenchmarkProtocolComparison measures one complete checkpoint of the same
// application under each protocol — the side-by-side comparison the
// paper's architecture was explicitly built to enable (§6: "our
// architecture allows us to implement, side-by-side, both coordinated and
// uncoordinated protocols"). ns/op is one full round: for the coordinated
// protocols until the recovery line commits, for the independent protocol
// until every rank's local checkpoint is on disk.
func BenchmarkProtocolComparison(b *testing.B) {
	const nodes = 3
	const stateBytes = 256 << 10
	for _, protocol := range []ckpt.Protocol{ckpt.StopAndSync, ckpt.ChandyLamport, ckpt.Independent} {
		b.Run(protocol.String(), func(b *testing.B) {
			env, err := core.New(core.Options{
				Nodes: nodes, StoreDir: b.TempDir(),
				HeartbeatEvery: 20 * time.Millisecond, FailAfter: 5 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Shutdown()
			if err := env.WaitView(nodes, 15*time.Second); err != nil {
				b.Fatal(err)
			}
			const app = core.AppID(1)
			if err := env.Submit(core.Job{
				ID: app, Name: apps.SizerName, Args: apps.SizerArgs(stateBytes, 1<<40),
				Ranks: nodes, Protocol: protocol, Encoder: core.Portable,
			}); err != nil {
				b.Fatal(err)
			}
			deadline := time.Now().Add(15 * time.Second)
			for {
				if st, ok := env.Status(app); ok && st.Status.String() == "running" {
					break
				}
				if time.Now().After(deadline) {
					b.Fatal("application never started")
				}
				time.Sleep(time.Millisecond)
			}

			store := env.Cluster().Store()
			var lastIdx uint64
			lastCounts := make([]int, nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Checkpoint(app); err != nil {
					b.Fatal(err)
				}
				if protocol.Coordinated() {
					for {
						line, err := env.CommittedLine(app)
						if err == nil && line[0] > lastIdx {
							lastIdx = line[0]
							break
						}
						time.Sleep(200 * time.Microsecond)
					}
					continue
				}
				// Independent: wait for every rank's new local checkpoint.
				for r := 0; r < nodes; r++ {
					for {
						ns, err := store.List(app, core.Rank(r))
						if err == nil && len(ns) > lastCounts[r] {
							lastCounts[r] = len(ns)
							break
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
			}
		})
	}
}

// BenchmarkIncrementalCheckpoint contrasts full-state dumps with the
// incremental (block-delta) extension for a sparsely mutating 16 MB state —
// the optimization direction the paper cites from libckpt [33] and lists as
// future work. delta-bytes reports the encoded delta size.
func BenchmarkIncrementalCheckpoint(b *testing.B) {
	const stateSize = 16 << 20
	base := make([]byte, stateSize)
	for i := range base {
		base[i] = byte(i)
	}
	next := append([]byte(nil), base...)
	// Mutate 16 scattered pages.
	for i := 0; i < 16; i++ {
		next[i*(stateSize/16)+i] ^= 0xFF
	}

	b.Run("full-encode", func(b *testing.B) {
		enc := &ckpt.PortableEncoder{VMHeaderSize: 4096}
		b.SetBytes(stateSize)
		for i := 0; i < b.N; i++ {
			img, err := enc.Encode(next, svm.Machines[0])
			if err != nil {
				b.Fatal(err)
			}
			_ = img
		}
	})
	b.Run("delta-encode", func(b *testing.B) {
		b.SetBytes(stateSize)
		var deltaBytes int
		for i := 0; i < b.N; i++ {
			d := ckpt.ComputeDelta(base, next)
			deltaBytes = len(d.Encode())
		}
		b.ReportMetric(float64(deltaBytes), "delta-bytes")
	})
	b.Run("delta-apply", func(b *testing.B) {
		d := ckpt.ComputeDelta(base, next)
		b.SetBytes(stateSize)
		for i := 0; i < b.N; i++ {
			if _, err := d.Apply(base); err != nil {
				b.Fatal(err)
			}
		}
	})
}
