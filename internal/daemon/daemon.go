// Package daemon implements the Starfish daemon (§2.1): the per-node
// service whose instances form the Starfish group, spawn and track
// application processes, manage the replicated cluster configuration,
// relay coordination and checkpoint/restart messages through lightweight
// groups, and drive the fault-tolerance policies of §3.2.2.
//
// A daemon is composed of the four modules of Figure 1: the group
// communication system (internal/gcs, the Ensemble stand-in), a management
// module (the replicated command state machine plus the management
// protocol front end in internal/mgmt), the lightweight membership module
// (internal/lwg), and one lightweight endpoint module per local
// application process.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/evstore"
	"starfish/internal/gcs"
	"starfish/internal/lwg"
	"starfish/internal/proc"
	"starfish/internal/rstore"
	"starfish/internal/svm"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// AppStatus describes an application's lifecycle state.
type AppStatus uint8

// Application states.
const (
	StatusLaunching AppStatus = iota + 1
	StatusRunning
	StatusSuspended
	StatusDone
	StatusFailed
	StatusRestarting
)

func (s AppStatus) String() string {
	switch s {
	case StatusLaunching:
		return "launching"
	case StatusRunning:
		return "running"
	case StatusSuspended:
		return "suspended"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusRestarting:
		return "restarting"
	default:
		return fmt.Sprintf("daemon.AppStatus(%d)", uint8(s))
	}
}

// Config assembles one daemon.
type Config struct {
	// Node is this daemon's cluster-unique id.
	Node wire.NodeID
	// Transport carries both group communication and application data.
	Transport vni.Transport
	// GCSAddr is the daemon's group-communication listen address.
	GCSAddr string
	// Contact is any existing daemon's GCSAddr; empty creates a new
	// cluster.
	Contact string
	// Store is the on-disk checkpoint store (a shared file system in the
	// simulated cluster). It backs applications that select StoreDisk and
	// is the spill target of the tiered backend.
	Store *ckpt.Store
	// Memory is this node's shard of the replicated in-memory checkpoint
	// store; nil disables the memory and tiered backends (applications
	// selecting them fall back to disk). The daemon feeds main-group view
	// changes into it so replica placement tracks the live membership.
	Memory *rstore.Store
	// Arch is the node's simulated architecture (heterogeneous clusters).
	Arch svm.Arch
	// DataAddr names the data-path listen address for a local process;
	// nil uses a deterministic fastnet-style name.
	DataAddr func(app wire.AppID, gen uint32, rank wire.Rank) string
	// GroupAddr names this node's listen address for one application's
	// per-group sequencer stream; nil uses a deterministic fastnet-style
	// name (TCP deployments return host:0 — peers learn the concrete
	// address from the creator's announce).
	GroupAddr func(app wire.AppID, gen uint32) string
	// HeartbeatEvery/FailAfter tune the failure detector.
	HeartbeatEvery time.Duration
	FailAfter      time.Duration
	// SuspectAfterMisses, when positive, expresses the failure-detector
	// threshold as a count of consecutive missed probe intervals instead of
	// a duration; it takes precedence over FailAfter (see gcs.Config).
	SuspectAfterMisses int
	// GossipEvery/GossipFanout/SuspectAfter tune the SWIM gossip membership
	// the main group runs instead of all-to-coordinator heartbeats. Zero
	// values take the gcs defaults: probe every heartbeat interval, three
	// indirect-probe proxies, confirm-dead after half the detection budget
	// stays unrefuted.
	GossipEvery  time.Duration
	GossipFanout int
	SuspectAfter time.Duration
	// Events, when non-nil, is this node's structured event store. The
	// daemon records application lifecycle transitions in it and hands
	// component-tagged emitters to the subsystems it owns (gcs, proc,
	// ckpt). nil disables the event plane.
	Events *evstore.Store
	// Logf receives diagnostics when non-nil.
	Logf func(string, ...any)
}

// appState is the replicated per-application state; every daemon holds an
// identical copy, updated only by totally ordered commands and views.
type appState struct {
	spec      proc.AppSpec
	status    AppStatus
	gen       uint32
	placement map[wire.Rank]wire.NodeID
	// addrs collects rank data addresses from lightweight joins of the
	// current generation.
	addrs map[wire.Rank]string
	// line is the recovery line the current generation restores from
	// (nil for a fresh launch).
	line ckpt.RecoveryLine
	// started records that CfgStart was issued for the current gen.
	started bool
	// done tracks finished ranks of the current gen.
	done map[wire.Rank]bool
	// lost tracks ranks abandoned under PolicyNotify (their nodes died
	// and the survivors repartitioned); they no longer count toward
	// completion.
	lost map[wire.Rank]bool
	// failure holds the first rank error, if any.
	failure string
}

// endpoint is a lightweight endpoint module: the daemon-side handle of one
// local application process.
type endpoint struct {
	rank wire.Rank
	gen  uint32
	link *proc.ChanLink
	p    *proc.Process
}

// inboxMsg is a message from a local process entering the daemon loop.
type inboxMsg struct {
	app  wire.AppID
	rank wire.Rank
	gen  uint32
	m    wire.Msg
}

// Daemon is one Starfish daemon.
type Daemon struct {
	cfg Config
	ep  *gcs.Endpoint
	lwm *lwg.Manager
	// router runs the per-application sequencer streams: scoped casts of
	// disjoint apps ride independent per-group coordinators instead of all
	// ordering through the main group (the sharded control plane).
	router *lwg.Router
	// ev is the daemon-tagged event emitter (inert when no store is
	// configured — a nil *Emitter discards).
	ev *evstore.Emitter
	// tiered is the memory-first backend with disk spill, built once when
	// both tiers are configured.
	tiered *ckpt.Tiered

	mu   sync.Mutex
	view gcs.View
	apps map[wire.AppID]*appState
	// change is the current state generation: closed and replaced by the
	// event loop whenever observable state may have moved, so waiters can
	// block on it instead of polling (see Changed).
	change chan struct{}
	// disabled nodes are excluded from new placements.
	disabled map[wire.NodeID]bool
	params   map[string]string
	// local endpoints per app.
	local map[wire.AppID]map[wire.Rank]*endpoint

	inbox chan inboxMsg
	stop  chan struct{}
	dead  chan struct{}

	// pipelines caches one incremental-capture wrapper per delta-enabled
	// app: the writer-side diff caches inside are stateful, so every
	// checkpoint of an app must go through the same Pipeline instance.
	pipeMu    sync.Mutex
	pipelines map[wire.AppID]*ckpt.Pipeline
}

// New creates a daemon and joins (or creates) the cluster.
func New(cfg Config) (*Daemon, error) {
	if cfg.DataAddr == nil {
		node := cfg.Node
		cfg.DataAddr = func(app wire.AppID, gen uint32, rank wire.Rank) string {
			return fmt.Sprintf("data-n%d-a%d-g%d-r%d", node, app, gen, rank)
		}
	}
	if cfg.GroupAddr == nil {
		node := cfg.Node
		cfg.GroupAddr = func(app wire.AppID, gen uint32) string {
			return fmt.Sprintf("lwg-a%d-g%d-n%d", app, gen, node)
		}
	}
	ep, err := gcs.Join(gcs.Config{
		Node:               cfg.Node,
		Transport:          cfg.Transport,
		Addr:               cfg.GCSAddr,
		Contact:            cfg.Contact,
		HeartbeatEvery:     cfg.HeartbeatEvery,
		FailAfter:          cfg.FailAfter,
		SuspectAfterMisses: cfg.SuspectAfterMisses,
		UseGossip:          true,
		GossipEvery:        cfg.GossipEvery,
		GossipFanout:       cfg.GossipFanout,
		SuspectAfter:       cfg.SuspectAfter,
		GossipEvents:       cfg.Events.Emitter("gossip"),
		Events:             cfg.Events.Emitter("gcs"),
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		ep:        ep,
		lwm:       lwg.NewManager(cfg.Node),
		ev:        cfg.Events.Emitter("daemon"),
		apps:      make(map[wire.AppID]*appState),
		disabled:  make(map[wire.NodeID]bool),
		params:    make(map[string]string),
		local:     make(map[wire.AppID]map[wire.Rank]*endpoint),
		inbox:     make(chan inboxMsg, 1024),
		change:    make(chan struct{}),
		stop:      make(chan struct{}),
		dead:      make(chan struct{}),
		pipelines: make(map[wire.AppID]*ckpt.Pipeline),
	}
	if cfg.Memory != nil && cfg.Store != nil {
		d.tiered = ckpt.NewTiered(cfg.Memory, cfg.Store, cfg.Logf)
	}
	d.router = lwg.NewRouter(lwg.RouterConfig{
		Self:           cfg.Node,
		Transport:      cfg.Transport,
		GroupAddr:      cfg.GroupAddr,
		HeartbeatEvery: cfg.HeartbeatEvery,
		FailAfter:      cfg.FailAfter,
		Events:         cfg.Events.Emitter("lwg"),
		Logf:           cfg.Logf,
	})
	go d.run()
	return d, nil
}

// backendFor resolves the checkpoint backend an application's spec selects,
// falling back to disk when the requested tier is not configured on this
// node. Delta-enabled apps get the storage tier wrapped in their cached
// incremental capture pipeline (one per app — its writer-side diff state
// must see every epoch).
func (d *Daemon) backendFor(spec *proc.AppSpec) ckpt.Backend {
	var be ckpt.Backend = d.cfg.Store
	switch spec.Store {
	case ckpt.StoreMemory:
		if d.cfg.Memory != nil {
			be = d.cfg.Memory
		}
	case ckpt.StoreTiered:
		if d.tiered != nil {
			be = d.tiered
		}
	}
	if !spec.DeltaCkpt {
		return be
	}
	cb, ok := be.(ckpt.ChunkedBackend)
	if !ok {
		return be // tier cannot store records: fall back to opaque images
	}
	d.pipeMu.Lock()
	defer d.pipeMu.Unlock()
	p := d.pipelines[spec.ID]
	if p == nil {
		p = ckpt.NewPipeline(cb, int(spec.FullEvery))
		// Adapt the pipeline's observer callback onto the event plane
		// (ckpt sits below evstore in the import graph, so it cannot
		// emit records itself).
		if em := d.cfg.Events.Emitter("ckpt"); em != nil {
			p.Observer = func(e ckpt.EpochEvent) {
				em.Emit(evstore.EvRank("epoch", e.App, e.Rank,
					evstore.F("index", e.Index),
					evstore.F("delta", e.Delta),
					evstore.F("base", e.Base),
					evstore.F("chain", e.ChainLen),
					evstore.F("raw", e.RawBytes),
					evstore.F("stored", e.StoredBytes)))
			}
		}
		d.pipelines[spec.ID] = p
	}
	return p
}

// EventStore exposes this node's structured event store (nil when the
// event plane is disabled). The management module serves EVENTS/TAIL
// queries from it.
func (d *Daemon) EventStore() *evstore.Store { return d.cfg.Events }

// ResolveApp maps a registered application name to an id, so operators can
// query events by name (`app=ring`). When several applications share the
// name, the most recently submitted (highest id) wins.
func (d *Daemon) ResolveApp(name string) (wire.AppID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var best wire.AppID
	found := false
	for id, st := range d.apps {
		if st.spec.Name == name && (!found || id > best) {
			best, found = id, true
		}
	}
	return best, found
}

// CommittedLine reads the last committed recovery line of an application
// from whichever backend the application checkpoints to.
func (d *Daemon) CommittedLine(app wire.AppID) (ckpt.RecoveryLine, error) {
	d.mu.Lock()
	st, ok := d.apps[app]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("daemon: unknown app %d", app)
	}
	return d.backendFor(&st.spec).CommittedLine(app)
}

// StoreStats reports this node's replicated-memory store counters; ok is
// false when no memory store is configured.
func (d *Daemon) StoreStats() (rstore.Stats, bool) {
	if d.cfg.Memory == nil {
		return rstore.Stats{}, false
	}
	return d.cfg.Memory.Stats(), true
}

// Node returns this daemon's id.
func (d *Daemon) Node() wire.NodeID { return d.cfg.Node }

// GCSAddr returns the daemon's group-communication address (the contact
// address new nodes join through).
func (d *Daemon) GCSAddr() string { return d.ep.Addr() }

// Close shuts the daemon down without leaving the group gracefully — the
// failure detector will notice (this is how tests crash a node). Local
// processes are aborted.
func (d *Daemon) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.dead
}

// Leave departs the cluster gracefully and shuts down.
func (d *Daemon) Leave() {
	d.ep.Leave()
	d.Close()
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(fmt.Sprintf("[daemon %d] ", d.cfg.Node)+format, args...)
	}
}

// run is the daemon's event loop: it serializes group events, local
// process traffic and shutdown.
func (d *Daemon) run() {
	defer func() {
		d.mu.Lock()
		eps := d.allEndpointsLocked()
		d.mu.Unlock()
		for _, ep := range eps {
			ep.link.Send(wire.Msg{Type: wire.TConfiguration, Kind: proc.CfgAbort})
			ep.link.Close()
		}
		d.router.Close()
		d.ep.Close()
		if d.tiered != nil {
			d.tiered.Close() // drain pending disk spills
		}
		close(d.dead)
		d.bump() // release any Changed waiters blocked across shutdown
	}()
	for {
		select {
		case <-d.stop:
			return
		case ev, ok := <-d.ep.Events():
			if !ok {
				return
			}
			d.handleGCS(ev)
			d.bump()
		case ge := <-d.router.Events():
			d.handleGroupEvent(ge)
			d.bump()
		case im := <-d.inbox:
			d.handleProcessMsg(im)
			d.bump()
		}
	}
}

// handleGroupEvent dispatches one event from a per-application sequencer
// stream. A scoped cast carries exactly the relay payload the main-group
// OpCast path would have delivered — hand it to the local endpoints of the
// matching generation. Stream view changes need no action here: group
// membership stays anchored in the main group (applyLWOp), and failure
// policy runs off main-group views.
func (d *Daemon) handleGroupEvent(ge lwg.GroupEvent) {
	if ge.Ev.Kind != gcs.ECast {
		return
	}
	m, err := decodeRelay(ge.Ev.Payload)
	if err != nil {
		d.logf("bad stream relay payload (app %d): %v", ge.App, err)
		return
	}
	d.mu.Lock()
	var eps []*endpoint
	if st := d.apps[ge.App]; st != nil && st.gen == ge.Gen {
		eps = d.localEndpointsLocked(ge.App)
	}
	d.mu.Unlock()
	for _, ep := range eps {
		ep.link.Send(m)
	}
}

// Changed returns the current state-generation channel; it is closed the
// next time the daemon's observable state (view, app table, checkpoint
// lines) may have changed. To wait for a condition, take the channel
// BEFORE evaluating the predicate, then block on it — any state change
// after the read closes the channel taken before it, so no edge is lost.
func (d *Daemon) Changed() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.change
}

// bump wakes every Changed waiter by closing the current generation
// channel and installing a fresh one.
func (d *Daemon) bump() {
	d.mu.Lock()
	ch := d.change
	d.change = make(chan struct{})
	d.mu.Unlock()
	close(ch)
}

func (d *Daemon) allEndpointsLocked() []*endpoint {
	var out []*endpoint
	for _, eps := range d.local {
		for _, ep := range eps {
			out = append(out, ep)
		}
	}
	return out
}

// cast multicasts an envelope on the main group.
func (d *Daemon) cast(tag uint8, payload []byte) error {
	return d.ep.Cast(envelope(tag, payload))
}

// castCmd multicasts a replicated command.
func (d *Daemon) castCmd(c *Cmd) error { return d.cast(envCmd, encodeCmd(c)) }

// castLW multicasts a lightweight-group operation.
func (d *Daemon) castLW(op *lwg.Op) error { return d.cast(envLWG, op.Encode()) }

// handleGCS dispatches one group event.
func (d *Daemon) handleGCS(ev gcs.Event) {
	switch ev.Kind {
	case gcs.EView:
		d.handleMainView(ev.View)
	case gcs.ECast:
		if len(ev.Payload) == 0 {
			return
		}
		tag, body := ev.Payload[0], ev.Payload[1:]
		switch tag {
		case envLWG:
			op, err := lwg.DecodeOp(body)
			if err != nil {
				d.logf("bad lwg op: %v", err)
				return
			}
			d.applyLWOp(op, ev.From)
		case envCmd:
			cmd, err := decodeCmd(body)
			if err != nil {
				d.logf("bad command: %v", err)
				return
			}
			d.applyCmd(&cmd)
		}
	}
}

// leader reports whether this daemon is the current view's leader (lowest
// id) — the one that makes non-deterministic decisions (recovery lines)
// and turns them into deterministic commands.
func (d *Daemon) leader() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.view.Members) > 0 && d.view.Members[0] == d.cfg.Node
}

// eligibleNodes returns the enabled members of the current view, sorted.
func (d *Daemon) eligibleNodesLocked() []wire.NodeID {
	var out []wire.NodeID
	for _, n := range d.view.Members {
		if !d.disabled[n] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// placeRanks distributes ranks round-robin over the given nodes. Every
// daemon computes the same placement from the same replicated inputs.
func placeRanks(ranks int, nodes []wire.NodeID) map[wire.Rank]wire.NodeID {
	if len(nodes) == 0 {
		return nil
	}
	out := make(map[wire.Rank]wire.NodeID, ranks)
	for r := 0; r < ranks; r++ {
		out[wire.Rank(r)] = nodes[r%len(nodes)]
	}
	return out
}

// ErrNoNodes is returned when an application cannot be placed.
var ErrNoNodes = errors.New("daemon: no eligible nodes")
