package proc

import (
	"fmt"
	"sync"

	"starfish/internal/ckpt"
	"starfish/internal/evstore"
	"starfish/internal/mpi"
	"starfish/internal/wire"
)

// crModule is the checkpoint/restart module of one application process. It
// drives the application-side of all three C/R protocols; which one runs
// is fixed by the application's spec, and because the module only speaks
// the generic C/R message vocabulary (ckpt.K*), different applications on
// the same cluster can run different protocols side by side — one of the
// paper's architectural goals.
type crModule struct {
	p *Process

	mu sync.Mutex

	// nextIndex is the index the next coordinated round will use;
	// lastIndex is the last locally completed checkpoint.
	nextIndex uint64
	lastIndex uint64

	// Independent-protocol state: receipts recorded since the last
	// checkpoint.
	deps []ckpt.Dep

	// Chandy–Lamport round state.
	clActive        bool
	clID            uint64
	clSnapshotTaken bool
	clPendingFlag   bool
	clMarkersIn     map[wire.Rank]bool
	clStagedState   []byte
	clStagedPending []mpi.RecordedMsg
	clStagedSent    map[wire.Rank]uint64
	clStagedRecv    map[wire.Rank]uint64

	// Stop-and-sync round state (safe-point adaptation: the cut happens
	// at the step boundary, and the "sync" drains announced in-flight
	// messages into recorded channel state instead of blocking senders).
	sfsActive        bool
	sfsID            uint64
	sfsStagedState   []byte
	sfsStagedPending []mpi.RecordedMsg
	sfsStagedSent    map[wire.Rank]uint64
	sfsStagedRecv    map[wire.Rank]uint64
	sfsTargets       map[wire.Rank]uint64 // peer -> messages it sent us pre-cut
	sfsFlushes       map[wire.Rank]bool

	// Coordinator (rank 0) ack collection and commit tracking.
	acks         map[wire.Rank]bool
	ackRound     uint64
	awaitingAcks bool
}

func newCRModule(p *Process) *crModule {
	return &crModule{p: p, nextIndex: 1}
}

// ---- checkpoint payload: application state + MPI-layer state ----

// encodeMsgList serializes captured data messages (pending queue, recorded
// channel state, or the sender-side log).
func encodeMsgList(msgs []mpi.RecordedMsg) []byte {
	w := wire.NewWriter(16 + 24*len(msgs))
	writeMsgList(w, msgs)
	return w.Bytes()
}

func writeMsgList(w *wire.Writer, msgs []mpi.RecordedMsg) {
	w.U32(uint32(len(msgs)))
	for _, m := range msgs {
		w.U32(uint32(m.Src)).U32(uint32(m.Dst)).I32(m.Tag)
		w.U64(m.Interval).U64(m.Seq).Bytes32(m.Data)
	}
}

func readMsgList(r *wire.Reader) []mpi.RecordedMsg {
	n := r.U32()
	msgs := make([]mpi.RecordedMsg, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		m := mpi.RecordedMsg{
			Src:      wire.Rank(r.U32()),
			Dst:      wire.Rank(r.U32()),
			Tag:      r.I32(),
			Interval: r.U64(),
			Seq:      r.U64(),
		}
		m.Data = append([]byte(nil), r.Bytes32()...)
		msgs = append(msgs, m)
	}
	return msgs
}

// decodeMsgList parses a list written by encodeMsgList.
func decodeMsgList(b []byte) ([]mpi.RecordedMsg, error) {
	r := wire.NewReader(b)
	msgs := readMsgList(r)
	return msgs, r.Err()
}

// encodeCkptState bundles the application snapshot with the MPI layer's
// pending (received-but-unconsumed) messages and, for Chandy–Lamport, the
// recorded channel state.
func encodeCkptState(appState []byte, pending, recorded []mpi.RecordedMsg) []byte {
	w := wire.NewWriter(64 + len(appState))
	w.Bytes32(appState)
	writeMsgList(w, pending)
	writeMsgList(w, recorded)
	return w.Bytes()
}

func decodeCkptState(b []byte) (appState []byte, pending, recorded []mpi.RecordedMsg, err error) {
	r := wire.NewReader(b)
	appState = append([]byte(nil), r.Bytes32()...)
	pending = readMsgList(r)
	recorded = readMsgList(r)
	if r.Err() != nil {
		return nil, nil, nil, r.Err()
	}
	return appState, pending, recorded, nil
}

// ---- callbacks from the MPI progress engine ----

// onReceive records a dependency for uncoordinated checkpointing. Runs on
// the progress goroutine.
func (cr *crModule) onReceive(src wire.Rank, srcInterval uint64) {
	cr.mu.Lock()
	cr.deps = append(cr.deps, ckpt.Dep{
		From: ckpt.IntervalID{Rank: src, Index: srcInterval},
		To:   ckpt.IntervalID{Rank: cr.p.rank, Index: cr.lastIndex},
	})
	cr.mu.Unlock()
}

// onMarker handles a Chandy–Lamport marker. Runs on the progress goroutine
// of the channel it arrived on, synchronously before any later message of
// that channel is processed — which is what makes HoldFrom sound.
func (cr *crModule) onMarker(src wire.Rank, id uint64) {
	cr.mu.Lock()
	if !cr.clActive {
		// A peer snapshotted first: this marker starts our round.
		cr.startRoundLocked(id)
	}
	if cr.clID != id {
		cr.mu.Unlock()
		return // stale marker from an aborted round
	}
	cr.clMarkersIn[src] = true
	if !cr.clSnapshotTaken {
		// Marker before our snapshot: every pre-snapshot message of this
		// channel has already arrived (FIFO), so its channel state is
		// empty. Post-marker messages that sneak into the queue before
		// our snapshot are harmless: they are captured with the pending
		// queue, and the sender's deterministic re-execution resends
		// them with the same per-pair sequence numbers, which duplicate
		// suppression drops.
		cr.clPendingFlag = true
		cr.mu.Unlock()
		return
	}
	cr.p.comm.StopRecordingFrom(src)
	finalize := cr.allMarkersInLocked()
	cr.mu.Unlock()
	if finalize {
		cr.finalizeCL()
	}
}

func (cr *crModule) startRoundLocked(id uint64) {
	cr.clActive = true
	cr.clID = id
	cr.clSnapshotTaken = false
	cr.clMarkersIn = make(map[wire.Rank]bool)
	cr.clStagedState = nil
	cr.clStagedPending = nil
}

func (cr *crModule) allMarkersInLocked() bool {
	return cr.clSnapshotTaken && len(cr.clMarkersIn) == cr.p.spec.Ranks-1
}

// pendingSnapshot reports whether the main loop must take a CL snapshot at
// the next boundary, and for which round.
func (cr *crModule) pendingSnapshot() (uint64, bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.clID, cr.clPendingFlag && !cr.clSnapshotTaken
}

// clBegin takes the local Chandy–Lamport snapshot. Main loop, at a step
// boundary.
func (cr *crModule) clBegin(id uint64) error {
	cr.mu.Lock()
	if !cr.clActive {
		cr.startRoundLocked(id)
	}
	if cr.clID != id || cr.clSnapshotTaken {
		cr.mu.Unlock()
		return nil
	}
	cr.clPendingFlag = false
	cr.clSnapshotTaken = true
	// Record every channel whose marker has not yet arrived.
	var recordFrom []wire.Rank
	for r := 0; r < cr.p.spec.Ranks; r++ {
		rank := wire.Rank(r)
		if rank != cr.p.rank && !cr.clMarkersIn[rank] {
			recordFrom = append(recordFrom, rank)
		}
	}
	cr.clStagedPending, cr.clStagedSent, cr.clStagedRecv = cr.p.comm.Cut(id, recordFrom)
	cr.mu.Unlock()

	state, err := cr.p.app.Snapshot()
	if err != nil {
		return fmt.Errorf("proc: snapshot: %w", err)
	}

	cr.mu.Lock()
	cr.clStagedState = state
	finalize := cr.allMarkersInLocked()
	cr.mu.Unlock()

	// Markers go out after the snapshot point and before any further
	// application sends (we are at a step boundary, so none can race).
	for r := 0; r < cr.p.spec.Ranks; r++ {
		if rank := wire.Rank(r); rank != cr.p.rank {
			if err := cr.p.comm.SendMarker(rank, id); err != nil {
				cr.p.logff("marker to %d: %v", rank, err)
			}
		}
	}
	if finalize {
		cr.finalizeCL()
	}
	return nil
}

// finalizeCL writes the completed Chandy–Lamport checkpoint (snapshot +
// channel state) and acks the coordinator.
func (cr *crModule) finalizeCL() {
	cr.mu.Lock()
	if !cr.clActive {
		cr.mu.Unlock()
		return
	}
	id := cr.clID
	state := cr.clStagedState
	pending := cr.clStagedPending
	sent, recv := cr.clStagedSent, cr.clStagedRecv
	cr.clActive = false
	cr.clPendingFlag = false
	cr.lastIndex = id
	if cr.nextIndex <= id {
		cr.nextIndex = id + 1
	}
	cr.mu.Unlock()

	recorded := cr.p.comm.Recorded()
	img, err := cr.p.encoder.Encode(encodeCkptState(state, pending, recorded), cr.p.arch)
	if err != nil {
		cr.p.logff("encode checkpoint %d: %v", id, err)
		return
	}
	meta := &ckpt.Meta{Rank: cr.p.rank, Index: id, SentCounts: sent, RecvCounts: recv}
	if err := cr.p.store.Put(cr.p.spec.ID, cr.p.rank, id, img, meta); err != nil {
		cr.p.logff("store checkpoint %d: %v", id, err)
		return
	}
	cr.p.event(evstore.EvRank("checkpoint", cr.p.spec.ID, cr.p.rank,
		evstore.F("index", id), evstore.F("protocol", "chandy-lamport"),
		evstore.F("bytes", len(img))))
	cr.sendAck(id)
}

func (cr *crModule) sendAck(id uint64) {
	w := wire.NewWriter(12)
	w.U64(id)
	cr.p.sendToDaemon(wire.Msg{
		Type: wire.TCheckpoint, Kind: ckpt.KAck, App: cr.p.spec.ID,
		Src: cr.p.rank, Payload: w.Bytes(),
	})
}

// onAck collects coordinator-side acknowledgements (rank 0 only).
func (cr *crModule) onAck(from wire.Rank, id uint64) {
	if cr.p.rank != 0 {
		return
	}
	cr.mu.Lock()
	if cr.acks == nil || cr.ackRound != id {
		cr.acks = make(map[wire.Rank]bool)
		cr.ackRound = id
	}
	cr.acks[from] = true
	complete := len(cr.acks) == cr.p.spec.Ranks
	if complete {
		cr.acks = nil
		cr.awaitingAcks = false
	}
	cr.mu.Unlock()
	if !complete {
		return
	}
	line := make(ckpt.RecoveryLine, cr.p.spec.Ranks)
	for r := 0; r < cr.p.spec.Ranks; r++ {
		line[wire.Rank(r)] = id
	}
	if err := cr.p.store.CommitLine(cr.p.spec.ID, line); err != nil {
		cr.p.logff("commit line %d: %v", id, err)
		return
	}
	cr.p.event(evstore.EvApp("commit", cr.p.spec.ID, evstore.F("line", id)))
	w := wire.NewWriter(8)
	w.U64(id)
	cr.p.sendToDaemon(wire.Msg{
		Type: wire.TCheckpoint, Kind: ckpt.KCommit, App: cr.p.spec.ID,
		Src: cr.p.rank, Payload: w.Bytes(),
	})
}

// ---- independent (uncoordinated) checkpointing ----

// takeLocal writes an independent checkpoint at the current boundary.
func (cr *crModule) takeLocal() error {
	cr.mu.Lock()
	idx := cr.lastIndex + 1
	deps := cr.deps
	cr.deps = nil
	cr.mu.Unlock()

	pending, sent, recv := cr.p.comm.Cut(idx, nil)
	state, err := cr.p.app.Snapshot()
	if err != nil {
		return fmt.Errorf("proc: snapshot: %w", err)
	}
	img, err := cr.p.encoder.Encode(encodeCkptState(state, pending, nil), cr.p.arch)
	if err != nil {
		return err
	}
	meta := &ckpt.Meta{
		Rank: cr.p.rank, Index: idx, Deps: deps,
		SentCounts: sent, RecvCounts: recv,
		// Persist the sends of the interval this checkpoint closes, for
		// lost-message replay at restart.
		SentLog: encodeMsgList(cr.p.comm.TakeSentLog()),
	}
	if err := cr.p.store.Put(cr.p.spec.ID, cr.p.rank, idx, img, meta); err != nil {
		return err
	}
	cr.p.event(evstore.EvRank("checkpoint", cr.p.spec.ID, cr.p.rank,
		evstore.F("index", idx), evstore.F("protocol", "independent"),
		evstore.F("bytes", len(img))))

	cr.mu.Lock()
	cr.lastIndex = idx
	cr.mu.Unlock()
	// Entering interval idx: stamp subsequent sends with it.
	cr.p.comm.SetInterval(idx)
	return nil
}

// ---- stop-and-sync ----

// The paper's stop-and-sync protocol stops every process, drains the
// channels, dumps state, and resumes after the coordinator commits. This
// runtime checkpoints at application safe points, where literally stopping
// a process can strand a peer mid-step, so the protocol is adapted: the
// "stop" is the cut each process takes at its next step boundary (state +
// pending queue + counters), and the "sync" drains the in-flight messages
// announced by every peer's flush into recorded channel state instead of
// blocking the senders. Per-pair sequence numbers make the cut exact: the
// checkpoint keeps exactly the messages with seq <= the sender's announced
// count, and duplicate suppression discards re-sends after restart.

// sfsBegin takes the local cut for round idx and announces sent counts.
// Main loop, step boundary.
func (cr *crModule) sfsBegin(idx uint64) error {
	cr.mu.Lock()
	if cr.sfsActive {
		// Either this round is already running (duplicate trigger —
		// merge) or a stale trigger for a different index arrived while
		// a round is in flight (drop it; the commit advances nextIndex).
		cr.mu.Unlock()
		return nil
	}
	cr.sfsActive = true
	cr.sfsID = idx
	cr.sfsTargets = make(map[wire.Rank]uint64)
	cr.sfsFlushes = make(map[wire.Rank]bool)
	cr.mu.Unlock()

	// Cut: capture pending + counters and record every channel from here
	// on (the recording is trimmed to the announced counts at finalize).
	var allPeers []wire.Rank
	for r := 0; r < cr.p.spec.Ranks; r++ {
		if rank := wire.Rank(r); rank != cr.p.rank {
			allPeers = append(allPeers, rank)
		}
	}
	pending, sent, recv := cr.p.comm.Cut(idx, allPeers)
	state, err := cr.p.app.Snapshot()
	if err != nil {
		return fmt.Errorf("proc: snapshot: %w", err)
	}

	cr.mu.Lock()
	cr.sfsStagedState = state
	cr.sfsStagedPending = pending
	cr.sfsStagedSent = sent
	cr.sfsStagedRecv = recv
	cr.mu.Unlock()

	// Announce cumulative sent counts: each receiver drains until it has
	// everything we sent before our cut.
	fw := wire.NewWriter(16 + 12*len(sent))
	fw.U64(idx)
	fw.U32(uint32(len(sent)))
	for r := 0; r < cr.p.spec.Ranks; r++ {
		if n, ok := sent[wire.Rank(r)]; ok {
			fw.U32(uint32(r)).U64(n)
		}
	}
	cr.p.sendToDaemon(wire.Msg{
		Type: wire.TCheckpoint, Kind: ckpt.KFlush, App: cr.p.spec.ID,
		Src: cr.p.rank, Payload: fw.Bytes(),
	})
	return nil
}

// onFlush records a peer's announced sent counts. Main loop.
func (cr *crModule) onFlush(m wire.Msg) {
	r := wire.NewReader(m.Payload)
	idx := r.U64()
	n := r.U32()
	counts := make(map[wire.Rank]uint64, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		dst := wire.Rank(r.U32())
		counts[dst] = r.U64()
	}
	if r.Err() != nil {
		return
	}
	cr.mu.Lock()
	if !cr.sfsActive || cr.sfsID != idx {
		cr.mu.Unlock()
		return
	}
	if !cr.sfsFlushes[m.Src] {
		cr.sfsFlushes[m.Src] = true
		if m.Src != cr.p.rank {
			cr.sfsTargets[m.Src] = counts[cr.p.rank]
		}
	}
	cr.mu.Unlock()
	cr.sfsPoll()
}

// sfsPoll finalizes the round once every flush arrived and every announced
// message has been received. Called at step boundaries and on protocol
// events; never blocks.
func (cr *crModule) sfsPoll() {
	cr.mu.Lock()
	if !cr.sfsActive || len(cr.sfsFlushes) < cr.p.spec.Ranks {
		cr.mu.Unlock()
		return
	}
	targets := cr.sfsTargets
	idx := cr.sfsID
	cr.mu.Unlock()

	recv := cr.p.comm.RecvCounts()
	for peer, want := range targets {
		if recv[peer] < want {
			return // still draining
		}
	}

	cr.mu.Lock()
	if !cr.sfsActive || cr.sfsID != idx {
		cr.mu.Unlock()
		return
	}
	state := cr.sfsStagedState
	pending := cr.sfsStagedPending
	sent, recvAtCut := cr.sfsStagedSent, cr.sfsStagedRecv
	cr.sfsActive = false
	cr.lastIndex = idx
	if cr.nextIndex <= idx {
		cr.nextIndex = idx + 1
	}
	cr.mu.Unlock()

	// Channel state: recorded messages up to each sender's announced
	// count; anything later was sent after the sender's cut and will be
	// resent by its re-execution.
	var channelState []mpi.RecordedMsg
	for _, m := range cr.p.comm.Recorded() {
		if m.Seq <= targets[m.Src] {
			channelState = append(channelState, m)
		}
	}
	img, err := cr.p.encoder.Encode(encodeCkptState(state, pending, channelState), cr.p.arch)
	if err != nil {
		cr.p.logff("encode checkpoint %d: %v", idx, err)
		return
	}
	meta := &ckpt.Meta{Rank: cr.p.rank, Index: idx, SentCounts: sent, RecvCounts: recvAtCut}
	if err := cr.p.store.Put(cr.p.spec.ID, cr.p.rank, idx, img, meta); err != nil {
		cr.p.logff("store checkpoint %d: %v", idx, err)
		return
	}
	cr.p.event(evstore.EvRank("checkpoint", cr.p.spec.ID, cr.p.rank,
		evstore.F("index", idx), evstore.F("protocol", "sync-flush"),
		evstore.F("bytes", len(img))))
	cr.sendAck(idx)
}

// handleAckCommit processes KAck/KCommit outside and inside rounds.
func (cr *crModule) handleAckCommit(m wire.Msg) {
	r := wire.NewReader(m.Payload)
	id := r.U64()
	if r.Err() != nil {
		return
	}
	switch m.Kind {
	case ckpt.KAck:
		cr.onAck(m.Src, id)
	case ckpt.KCommit:
		cr.mu.Lock()
		if cr.lastIndex < id {
			cr.lastIndex = id
		}
		if cr.nextIndex <= id {
			cr.nextIndex = id + 1
		}
		cr.mu.Unlock()
		// A committed recovery line makes every older checkpoint of this
		// rank garbage (coordinated protocols only — the committed line
		// is always the restart point).
		if cr.p.spec.Protocol.Coordinated() {
			if err := cr.p.store.GC(cr.p.spec.ID, cr.p.rank, id); err != nil {
				cr.p.logff("checkpoint gc: %v", err)
			}
		}
	}
}

// initiate starts a checkpoint round of the configured protocol. For
// coordinated protocols only rank 0 initiates (broadcasting the request in
// the lightweight group); for the independent protocol the checkpoint is
// purely local.
func (cr *crModule) initiate() error {
	switch cr.p.spec.Protocol {
	case ckpt.Independent:
		return cr.takeLocal()
	default:
		// Round indices are assigned by rank 0 (the checkpoint
		// coordinator). A user-initiated downcall on another rank casts a
		// proposal (index 0); rank 0 turns it into a real round. This
		// keeps a single index authority so delayed duplicate triggers
		// cannot restart old rounds.
		if cr.p.rank != 0 {
			w := wire.NewWriter(12)
			w.U64(0)
			w.U8(uint8(cr.p.spec.Protocol))
			return cr.p.sendToDaemon(wire.Msg{
				Type: wire.TCheckpoint, Kind: ckpt.KRequest, App: cr.p.spec.ID,
				Src: cr.p.rank, Payload: w.Bytes(),
			})
		}
		cr.mu.Lock()
		if cr.clActive || cr.sfsActive || cr.awaitingAcks {
			cr.mu.Unlock()
			return nil // round already running
		}
		idx := cr.nextIndex
		cr.awaitingAcks = true
		cr.ackRound = idx
		cr.acks = nil
		cr.mu.Unlock()
		w := wire.NewWriter(12)
		w.U64(idx)
		w.U8(uint8(cr.p.spec.Protocol))
		return cr.p.sendToDaemon(wire.Msg{
			Type: wire.TCheckpoint, Kind: ckpt.KRequest, App: cr.p.spec.ID,
			Src: cr.p.rank, Payload: w.Bytes(),
		})
	}
}

// handleRequest reacts to a KRequest broadcast (main loop, step boundary).
func (cr *crModule) handleRequest(m wire.Msg) error {
	r := wire.NewReader(m.Payload)
	idx := r.U64()
	proto := ckpt.Protocol(r.U8())
	if r.Err() != nil {
		return nil
	}
	if idx == 0 {
		// A proposal from another rank: rank 0 starts a real round.
		if cr.p.rank == 0 {
			return cr.initiate()
		}
		return nil
	}
	cr.mu.Lock()
	if idx < cr.nextIndex {
		// A stale duplicate of an already-completed round; starting it
		// again would overwrite the committed checkpoint.
		cr.mu.Unlock()
		return nil
	}
	cr.mu.Unlock()
	switch proto {
	case ckpt.StopAndSync:
		return cr.sfsBegin(idx)
	case ckpt.ChandyLamport:
		return cr.clBegin(idx)
	case ckpt.Independent:
		return cr.takeLocal()
	}
	return nil
}

// roundsOutstanding reports whether protocol work is still unfinished at
// this process: an active local round, or (rank 0) a commit still owed.
// Completing processes stay alive until this clears, so checkpoints that
// straddle application completion still commit.
func (cr *crModule) roundsOutstanding() bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.clActive || cr.sfsActive || cr.awaitingAcks
}
