// Package vni implements the Virtual Network Interface of a Starfish
// application process.
//
// The VNI isolates the rest of the system from the concrete network. The
// paper supports Myrinet through the BIP user-level interface (for
// performance) and plain TCP/IP (for convenience); porting to another
// network only requires a thin transport layer. This package provides the
// same split: a real TCP transport (kernel socket path) and an in-process
// "fastnet" transport that stands in for BIP/Myrinet by avoiding the kernel
// entirely. The polling thread of §2.2.1 is realized by per-connection
// receive goroutines feeding a single received-message queue.
package vni

import (
	"errors"

	"starfish/internal/wire"
)

// ErrClosed is returned by operations on a closed connection, listener or
// NIC.
var ErrClosed = errors.New("vni: closed")

// ErrNoRoute is returned when dialing an address nobody listens on.
var ErrNoRoute = errors.New("vni: no route to address")

// Conn is a bidirectional, reliable, ordered message connection. Send and
// Recv may be used concurrently with each other; concurrent Sends are
// serialized internally.
type Conn interface {
	// Send transmits one message. For non-pooled messages the payload is
	// copied (or serialized) before Send returns, so the caller may reuse
	// its buffer. For pooled messages (m.Pooled, see wire.Msg) Send takes
	// ownership on success — the payload moves to the receiver or back to
	// the BufPool with no copy, and m.Payload is nil when Send returns.
	// On error, ownership of a pooled payload stays with the caller (so
	// retry loops can resend), and a closed connection does no work at
	// all: no copy, no stats count.
	Send(m *wire.Msg) error
	// Recv blocks for the next message. It returns ErrClosed (or an
	// underlying transport error) once the connection is down. Serialized
	// transports deliver pool-owned payloads (wire.ReadMsgBuf); the final
	// consumer of a message should call Release.
	Recv() (wire.Msg, error)
	// Close tears the connection down, unblocking pending Recvs on both
	// ends.
	Close() error
	// RemoteAddr returns the peer's listen address if known, else the
	// transport-specific remote identity.
	RemoteAddr() string
}

// Listener accepts inbound connections on a transport address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the bound address (useful when listening on port 0).
	Addr() string
}

// Transport creates listeners and connections. Implementations: NewTCP
// (kernel sockets) and NewFastnet (in-process, BIP/Myrinet stand-in).
type Transport interface {
	// Name identifies the transport ("tcp" or "fastnet") in diagnostics
	// and benchmark output.
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}
