package proc

import (
	"errors"

	"starfish/internal/wire"
)

// ErrLinkClosed is returned when sending on a closed daemon link.
var ErrLinkClosed = errors.New("proc: daemon link closed")

// DaemonLink is the connection between an application process's group
// handler and its daemon's lightweight endpoint module (the paper's local
// TCP connection). The simulated cluster uses an in-process link; a real
// deployment would frame wire messages over TCP.
type DaemonLink interface {
	// Send transmits a message from the process to the daemon.
	Send(m wire.Msg) error
	// Recv exposes messages from the daemon to the process.
	Recv() <-chan wire.Msg
	// Done is closed when the link goes down.
	Done() <-chan struct{}
	// Close tears the link down (both directions).
	Close()
}

// ChanLink is an in-process DaemonLink. NewChanLink returns the two
// half-views: one for the process, one for the daemon's endpoint module.
type ChanLink struct {
	out    chan<- wire.Msg
	in     <-chan wire.Msg
	closed chan struct{}
	other  *ChanLink
}

// NewChanLink creates a connected link pair (process side, daemon side).
func NewChanLink(buf int) (*ChanLink, *ChanLink) {
	if buf <= 0 {
		buf = 256
	}
	a2b := make(chan wire.Msg, buf)
	b2a := make(chan wire.Msg, buf)
	closed := make(chan struct{})
	p := &ChanLink{out: a2b, in: b2a, closed: closed}
	d := &ChanLink{out: b2a, in: a2b, closed: closed}
	p.other = d
	d.other = p
	return p, d
}

// Send implements DaemonLink.
func (l *ChanLink) Send(m wire.Msg) error {
	wire.CountMsg(m.Type)
	select {
	case <-l.closed:
		return ErrLinkClosed
	default:
	}
	select {
	case l.out <- m:
		return nil
	case <-l.closed:
		return ErrLinkClosed
	}
}

// Recv implements DaemonLink.
func (l *ChanLink) Recv() <-chan wire.Msg { return l.in }

// Done implements DaemonLink.
func (l *ChanLink) Done() <-chan struct{} { return l.closed }

// Close implements DaemonLink. Closing either side closes both.
func (l *ChanLink) Close() {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
}

// Closed reports whether the link has been closed.
func (l *ChanLink) Closed() bool {
	select {
	case <-l.closed:
		return true
	default:
		return false
	}
}
