package mpi

import (
	"fmt"

	"starfish/internal/wire"
)

// Collective operations. All are built on the point-to-point layer with
// reserved tags, so they inherit the fast path. Every rank of the
// communicator must call the collective; tags separate concurrent
// collectives of different kinds but, as in MPI, collectives of the same
// kind must be issued in the same order everywhere.
//
// Each collective picks its algorithm from the communicator's CollTuning
// table (see coll_tuning.go): latency-optimal trees for small messages,
// segmented/pipelined or bandwidth-optimal algorithms for large ones. The
// individual algorithms live in coll_bcast.go (broadcast), coll_reduce.go
// (reductions), and coll_fanout.go (rooted scatter/gather trees).
//
// Internal tags live above 1<<30 so they can never collide with user tags.
const (
	tagBarrier int32 = 1<<30 + iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagScan
	tagGatherv
	tagSendrecv
	tagBcastSeg
	tagBcastAG
	tagReduceScatter
	tagAllreduceRS
	tagAllreduceAG
)

// ReduceFunc combines two equally-shaped buffers into one.
type ReduceFunc func(a, b []byte) ([]byte, error)

// Binomial-tree geometry, shared by bcast, reduce, scatter, and gather.
// Trees are laid out in virtual-rank space with the root rotated to vrank
// 0; vrank v's parent is v with its lowest set bit cleared, its children
// are v|m for each power of two m below that bit, and the subtree rooted
// at v spans the contiguous vrank range [v, v+lowbit(v)) — which is what
// lets scatter and gather ship a child's whole subtree as one block.

// collVrank maps this rank into the tree's virtual-rank space.
func (c *Comm) collVrank(root wire.Rank) int {
	return (int(c.cfg.Rank) - int(root) + c.cfg.Size) % c.cfg.Size
}

// collReal maps a virtual rank back to a real one.
func collReal(v int, root wire.Rank, n int) wire.Rank {
	return wire.Rank((v + int(root)) % n)
}

// binomialParent returns v's parent vrank (v must be non-zero).
func binomialParent(v int) int { return v &^ (v & -v) }

// binomialChildren returns v's child vranks in ascending-subtree order.
func binomialChildren(v, n int) []int {
	limit := v & -v
	if v == 0 {
		limit = n
	}
	var out []int
	for m := 1; m < limit; m <<= 1 {
		child := v | m
		if child >= n {
			break
		}
		out = append(out, child)
	}
	return out
}

// subtreeEnd returns one past the last vrank of v's subtree.
func subtreeEnd(v, n int) int {
	if v == 0 {
		return n
	}
	return min(v+(v&-v), n)
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2 n) rounds).
func (c *Comm) Barrier() error {
	n := c.cfg.Size
	if n == 1 {
		return nil
	}
	me := int(c.cfg.Rank)
	for dist := 1; dist < n; dist *= 2 {
		dst := wire.Rank((me + dist) % n)
		src := wire.Rank((me - dist + n) % n)
		req := c.Irecv(src, tagBarrier)
		if err := c.Send(dst, tagBarrier, nil); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		if _, _, err := req.Wait(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
	}
	return nil
}

// Allgather collects every rank's contribution at every rank (ring
// algorithm: n-1 steps, each forwarding the piece received last step).
func (c *Comm) Allgather(contrib []byte) ([][]byte, error) {
	n := c.cfg.Size
	out := make([][]byte, n)
	out[c.cfg.Rank] = contrib
	if n == 1 {
		return out, nil
	}
	me := int(c.cfg.Rank)
	right := wire.Rank((me + 1) % n)
	left := wire.Rank((me - 1 + n) % n)
	carry := contrib
	carryOwner := me
	for step := 0; step < n-1; step++ {
		req := c.Irecv(left, tagAllgather)
		if err := c.Send(right, tagAllgather, carry); err != nil {
			return nil, fmt.Errorf("allgather: %w", err)
		}
		data, _, err := req.Wait()
		if err != nil {
			return nil, fmt.Errorf("allgather: %w", err)
		}
		carryOwner = (carryOwner - 1 + n) % n
		carry = data
		out[carryOwner] = data
	}
	return out, nil
}

// Alltoall performs a personalized all-to-all exchange: parts[r] goes to
// rank r; the result's element r came from rank r.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	n := c.cfg.Size
	if len(parts) != n {
		return nil, fmt.Errorf("alltoall: %w: %d parts for %d ranks", ErrBadLength, len(parts), n)
	}
	out := make([][]byte, n)
	out[c.cfg.Rank] = parts[c.cfg.Rank]
	me := int(c.cfg.Rank)
	// Pairwise exchange on the rotation schedule, with every receive
	// posted up front so arrivals drain in any order.
	reqs := make([]*Request, 0, n-1)
	for step := 1; step < n; step++ {
		dst := wire.Rank((me + step) % n)
		src := wire.Rank((me - step + n) % n)
		req := c.Irecv(src, tagAlltoall)
		reqs = append(reqs, req)
		if err := c.Send(dst, tagAlltoall, parts[dst]); err != nil {
			return nil, fmt.Errorf("alltoall: %w", err)
		}
	}
	for step := 1; step < n; step++ {
		src := wire.Rank((me - step + n) % n)
		data, _, err := reqs[step-1].Wait()
		if err != nil {
			return nil, fmt.Errorf("alltoall: %w", err)
		}
		out[src] = data
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank r receives
// fn(contrib_0, ..., contrib_r) (linear chain).
func (c *Comm) Scan(contrib []byte, fn ReduceFunc) ([]byte, error) {
	me := int(c.cfg.Rank)
	acc := contrib
	if me > 0 {
		prev, _, err := c.Recv(wire.Rank(me-1), tagScan)
		if err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
		if acc, err = fn(prev, contrib); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	if me < c.cfg.Size-1 {
		if err := c.Send(wire.Rank(me+1), tagScan, acc); err != nil {
			return nil, fmt.Errorf("scan: %w", err)
		}
	}
	return acc, nil
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv): buf goes
// to dst while one message is received from src — deadlock-free even when
// every rank calls it simultaneously in a ring, because the send is eager.
func (c *Comm) Sendrecv(dst wire.Rank, sendTag int32, buf []byte, src wire.Rank, recvTag int32) ([]byte, Status, error) {
	req := c.Irecv(src, recvTag)
	if err := c.Send(dst, sendTag, buf); err != nil {
		return nil, Status{}, fmt.Errorf("sendrecv: %w", err)
	}
	data, st, err := req.Wait()
	if err != nil {
		return nil, st, fmt.Errorf("sendrecv: %w", err)
	}
	return data, st, nil
}

// Gatherv collects variable-length contributions at root (MPI_Gatherv).
// Buffers carry their own lengths in this library, so the signature matches
// Gather; it uses a distinct internal tag so concurrent Gather and Gatherv
// collectives cannot cross-match. The root posts one receive per sender up
// front, so concurrently arriving contributions drain without head-of-line
// blocking. Non-root ranks return nil.
func (c *Comm) Gatherv(root wire.Rank, contrib []byte) ([][]byte, error) {
	if c.cfg.Rank != root {
		if err := c.Send(root, tagGatherv, contrib); err != nil {
			return nil, fmt.Errorf("gatherv: %w", err)
		}
		return nil, nil
	}
	n := c.cfg.Size
	out := make([][]byte, n)
	out[root] = contrib
	reqs := make([]*Request, 0, n-1)
	srcs := make([]wire.Rank, 0, n-1)
	for r := 0; r < n; r++ {
		if wire.Rank(r) == root {
			continue
		}
		reqs = append(reqs, c.Irecv(wire.Rank(r), tagGatherv))
		srcs = append(srcs, wire.Rank(r))
	}
	for i, req := range reqs {
		data, _, err := req.Wait()
		if err != nil {
			return nil, fmt.Errorf("gatherv: %w", err)
		}
		out[srcs[i]] = data
	}
	return out, nil
}
