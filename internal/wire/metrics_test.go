package wire

import "testing"

func TestCopySiteStrings(t *testing.T) {
	cases := map[CopySite]string{
		CopyClone:     "clone",
		CopyBoundary:  "api-boundary",
		CopyCR:        "checkpoint-restart",
		CopyColl:      "collective-staging",
		copySiteCount: "unknown-copy-site",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("CopySite(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestCollSegCounters(t *testing.T) {
	ResetCollSegStats()
	CountCollSeg(1000)
	CountCollSeg(24)
	segs, bytes := CollSegStats()
	if segs != 2 || bytes != 1024 {
		t.Fatalf("CollSegStats() = (%d, %d), want (2, 1024)", segs, bytes)
	}
	ResetCollSegStats()
	segs, bytes = CollSegStats()
	if segs != 0 || bytes != 0 {
		t.Fatalf("after reset: (%d, %d), want (0, 0)", segs, bytes)
	}
}

func TestCopyCollCounted(t *testing.T) {
	ResetCopyStats()
	CountCopy(CopyColl, 512)
	counts, bytes := CopyStats()
	if counts[CopyColl] != 1 || bytes[CopyColl] != 512 {
		t.Fatalf("CopyColl stats = (%d, %d), want (1, 512)", counts[CopyColl], bytes[CopyColl])
	}
	if CopiedBytes() != 512 {
		t.Fatalf("CopiedBytes() = %d, want 512", CopiedBytes())
	}
	ResetCopyStats()
}
