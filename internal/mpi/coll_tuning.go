package mpi

// CollTuning is the per-communicator collective algorithm selection table.
// Small messages take the latency-optimal trees; large messages switch to
// segmented/pipelined or bandwidth-optimal algorithms, with the crossover
// points below — the same shape real MPI stacks (MPICH, Open MPI) ship.
// Zero-valued thresholds are replaced by the defaults; set a threshold
// above any message size you use to pin the latency-optimal algorithm.
type CollTuning struct {
	// ForceNaive routes every collective through the seed (pre-tuning)
	// algorithm: whole-message binomial bcast/reduce, linear scatter and
	// gather, reduce-to-0-plus-bcast allreduce. Kept as the reference
	// oracle for the equivalence tests and as the benchmark baseline.
	ForceNaive bool

	// ElemAlign is the element width, in bytes, that reduce-scatter-based
	// algorithms must not split (default 8, the builtin op width).
	// Chunk boundaries are multiples of this.
	ElemAlign int

	// BcastSegMin is the smallest message broadcast with the segmented
	// (pipelined) binomial tree rather than as one message.
	BcastSegMin int
	// BcastSegSize is the pipeline segment size for segmented broadcast.
	BcastSegSize int
	// BcastVdGMin is the smallest message broadcast with the van de Geijn
	// algorithm (binomial scatter + allgather), which is bandwidth-optimal
	// but pays more latency than the pipelined tree.
	BcastVdGMin int

	// AllreduceRabMin is the smallest message reduced with the
	// Rabenseifner algorithm (reduce-scatter + allgather). Below it, the
	// latency-optimal tree reduce + broadcast runs instead.
	AllreduceRabMin int
}

// DefaultCollTuning returns the stock tuning table.
func DefaultCollTuning() CollTuning {
	return CollTuning{
		ElemAlign:       8,
		BcastSegMin:     64 << 10,
		BcastSegSize:    128 << 10,
		BcastVdGMin:     1 << 20,
		AllreduceRabMin: 64 << 10,
	}
}

// normalize fills zero thresholds with the defaults.
func (t *CollTuning) normalize() {
	d := DefaultCollTuning()
	if t.ElemAlign <= 0 {
		t.ElemAlign = d.ElemAlign
	}
	if t.BcastSegMin <= 0 {
		t.BcastSegMin = d.BcastSegMin
	}
	if t.BcastSegSize <= 0 {
		t.BcastSegSize = d.BcastSegSize
	}
	if t.BcastVdGMin <= 0 {
		t.BcastVdGMin = d.BcastVdGMin
	}
	if t.AllreduceRabMin <= 0 {
		t.AllreduceRabMin = d.AllreduceRabMin
	}
}

// CollTuning returns the communicator's current tuning table.
func (c *Comm) CollTuning() CollTuning {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coll
}

// SetCollTuning replaces the tuning table (zero thresholds become the
// defaults). Like the collectives themselves, tuning changes must be made
// at the same point of the program on every rank.
func (c *Comm) SetCollTuning(t CollTuning) {
	t.normalize()
	c.mu.Lock()
	c.coll = t
	c.mu.Unlock()
}

// evenByteCounts splits total bytes over n chunks whose boundaries fall on
// align-byte multiples, front-loading the remainder: chunk sizes differ by
// at most one align unit, and any odd tail (total%align) lands in the last
// chunk. With align 1 this is the plain even split used by broadcast; the
// reduction algorithms pass the element width so no element is torn.
func evenByteCounts(total, n, align int) (counts, offs []int) {
	counts = make([]int, n)
	offs = make([]int, n+1)
	units := total / align
	tail := total % align
	base, rem := units/n, units%n
	for i := 0; i < n; i++ {
		counts[i] = base * align
		if i < rem {
			counts[i] += align
		}
	}
	counts[n-1] += tail
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + counts[i]
	}
	return counts, offs
}

// evenGeom is evenByteCounts behind the communicator's one-entry geometry
// cache: steady workloads repeat one message size, and the two slices per
// call would otherwise be the chunked collectives' only steady-state
// allocations. The returned slices are shared — callers must not modify.
func (c *Comm) evenGeom(total, align int) (counts, offs []int) {
	c.mu.Lock()
	if c.collGeomCnts != nil && c.collGeomTotal == total && c.collGeomAlign == align {
		counts, offs = c.collGeomCnts, c.collGeomOffs
		c.mu.Unlock()
		return counts, offs
	}
	c.mu.Unlock()
	counts, offs = evenByteCounts(total, c.cfg.Size, align)
	c.mu.Lock()
	c.collGeomTotal, c.collGeomAlign = total, align
	c.collGeomCnts, c.collGeomOffs = counts, offs
	c.mu.Unlock()
	return counts, offs
}
