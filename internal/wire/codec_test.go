package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xff).U16(0xbeef).U32(0xdeadbeef).U64(1<<63 + 5).
		I32(-17).I64(-1 << 40).F64(math.Pi).Bool(true).Bool(false).
		String("starfish").Bytes32([]byte{9, 8, 7}).
		U32Slice([]uint32{1, 2, 3}).U64Slice([]uint64{4, 5})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xff {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63+5 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I32(); got != -17 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.I64(); got != -1<<40 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.String(); got != "starfish" {
		t.Errorf("String = %q", got)
	}
	b := r.Bytes32()
	if len(b) != 3 || b[0] != 9 || b[2] != 7 {
		t.Errorf("Bytes32 = %v", b)
	}
	u32s := r.U32Slice()
	if len(u32s) != 3 || u32s[2] != 3 {
		t.Errorf("U32Slice = %v", u32s)
	}
	u64s := r.U64Slice()
	if len(u64s) != 2 || u64s[1] != 5 {
		t.Errorf("U64Slice = %v", u64s)
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32() // runs past end
	if r.Err() != ErrShortBuffer {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// All subsequent reads must return zero values and keep the error.
	if r.U64() != 0 || r.String() != "" || r.Bytes32() != nil {
		t.Error("reads after error returned non-zero values")
	}
	if r.Err() != ErrShortBuffer {
		t.Errorf("sticky error lost: %v", r.Err())
	}
}

func TestReaderMaliciousLengths(t *testing.T) {
	// A length prefix claiming more data than exists must not panic or
	// allocate unboundedly.
	w := NewWriter(8)
	w.U32(0xffffffff)
	r := NewReader(w.Bytes())
	if b := r.Bytes32(); b != nil {
		t.Errorf("Bytes32 with oversized length returned %d bytes", len(b))
	}
	if r.Err() == nil {
		t.Error("expected error for oversized length")
	}

	r = NewReader(w.Bytes())
	if s := r.U32Slice(); s != nil {
		t.Errorf("U32Slice with oversized length returned %d elems", len(s))
	}
	r = NewReader(w.Bytes())
	if s := r.U64Slice(); s != nil {
		t.Errorf("U64Slice with oversized length returned %d elems", len(s))
	}
}

func TestQuickCodecPrimitives(t *testing.T) {
	prop := func(a uint8, b uint16, c uint32, d uint64, e int32, f int64, g float64, h bool, s string) bool {
		if math.IsNaN(g) {
			g = 0
		}
		w := NewWriter(32)
		w.U8(a).U16(b).U32(c).U64(d).I32(e).I64(f).F64(g).Bool(h).String(s)
		r := NewReader(w.Bytes())
		ok := r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d &&
			r.I32() == e && r.I64() == f && r.F64() == g && r.Bool() == h &&
			r.String() == s
		return ok && r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCodecSlices(t *testing.T) {
	prop := func(a []uint32, b []uint64, raw []byte) bool {
		w := NewWriter(64)
		w.U32Slice(a).U64Slice(b).Bytes32(raw)
		r := NewReader(w.Bytes())
		ga, gb, graw := r.U32Slice(), r.U64Slice(), r.Bytes32()
		if r.Err() != nil {
			return false
		}
		if len(ga) != len(a) || len(gb) != len(b) || len(graw) != len(raw) {
			return false
		}
		for i := range a {
			if ga[i] != a[i] {
				return false
			}
		}
		for i := range b {
			if gb[i] != b[i] {
				return false
			}
		}
		for i := range raw {
			if graw[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
