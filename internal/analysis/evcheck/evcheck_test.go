package evcheck

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestEvcheckFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
