package ckpt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"starfish/internal/wire"
)

// metaEqual compares two Metas semantically (map iteration order and
// nil-vs-empty normalisation make byte comparison of encodings the wrong
// test for decoded values).
func metaEqual(a, b *Meta) bool {
	if a.Rank != b.Rank || a.Index != b.Index || len(a.Deps) != len(b.Deps) {
		return false
	}
	for i := range a.Deps {
		if a.Deps[i] != b.Deps[i] {
			return false
		}
	}
	countsEqual := func(x, y map[wire.Rank]uint64) bool {
		if len(x) != len(y) {
			return false
		}
		for r, n := range x {
			if y[r] != n {
				return false
			}
		}
		return true
	}
	return countsEqual(a.SentCounts, b.SentCounts) &&
		countsEqual(a.RecvCounts, b.RecvCounts) &&
		bytes.Equal(a.SentLog, b.SentLog)
}

// FuzzDecodeMeta exercises the checkpoint-metadata decoder with hostile
// input, mirroring wire.FuzzDecode: metadata is read back from a shared
// store (or a peer's RAM replica), so a corrupt or truncated blob must
// produce an error, never a panic or a huge allocation. Decoded metadata
// must survive a re-encode round trip.
func FuzzDecodeMeta(f *testing.F) {
	valid := (&Meta{
		Rank:  2,
		Index: 5,
		Deps: []Dep{
			{From: IntervalID{Rank: 0, Index: 3}, To: IntervalID{Rank: 2, Index: 4}},
		},
		SentCounts: map[wire.Rank]uint64{0: 10, 1: 7},
		RecvCounts: map[wire.Rank]uint64{1: 3},
		SentLog:    []byte("log"),
	}).Encode()
	f.Add(valid)
	f.Add((&Meta{Rank: 0, Index: 0}).Encode())

	// Truncations around every section boundary.
	f.Add([]byte{})
	f.Add(valid[:3])
	f.Add(valid[:12])           // rank+index intact, dep count missing
	f.Add(valid[:len(valid)-1]) // sent log cut short
	f.Add(valid[:len(valid)/2]) // mid-deps

	// Oversized dep count: claims millions of deps a short buffer cannot
	// hold; the decoder must fail, not allocate for the claim.
	hugeDeps := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(hugeDeps[12:], 1<<30)
	f.Add(hugeDeps)

	// Oversized count-map and sent-log length fields.
	hugeLog := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(hugeLog[len(hugeLog)-4-3:], 1<<31)
	f.Add(hugeLog)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMeta(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode back to itself.
		m2, err := DecodeMeta(m.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded meta failed: %v", err)
		}
		if !metaEqual(m, m2) {
			t.Fatalf("round trip drifted:\n  first  %+v\n  second %+v", m, m2)
		}
	})
}

// TestQuickMetaRoundTrip is the property-test companion of FuzzDecodeMeta:
// any well-formed Meta survives Encode/DecodeMeta unchanged.
func TestQuickMetaRoundTrip(t *testing.T) {
	prop := func(rank uint16, index uint64, depWords []uint32,
		sent map[uint16]uint64, recv map[uint16]uint64, log []byte) bool {
		m := &Meta{Rank: wire.Rank(rank), Index: index, SentLog: log}
		if len(log) == 0 {
			m.SentLog = nil
		}
		for i := 0; i+3 < len(depWords); i += 4 {
			m.Deps = append(m.Deps, Dep{
				From: IntervalID{Rank: wire.Rank(depWords[i]), Index: uint64(depWords[i+1])},
				To:   IntervalID{Rank: wire.Rank(depWords[i+2]), Index: uint64(depWords[i+3])},
			})
		}
		for r, n := range sent {
			if m.SentCounts == nil {
				m.SentCounts = make(map[wire.Rank]uint64)
			}
			m.SentCounts[wire.Rank(r)] = n
		}
		for r, n := range recv {
			if m.RecvCounts == nil {
				m.RecvCounts = make(map[wire.Rank]uint64)
			}
			m.RecvCounts[wire.Rank(r)] = n
		}
		got, err := DecodeMeta(m.Encode())
		if err != nil {
			return false
		}
		return metaEqual(m, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
