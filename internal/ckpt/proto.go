package ckpt

// Protocol identifies a distributed checkpointing protocol. Starfish can
// run several protocols side by side — one of the paper's design goals —
// so each application selects its protocol at submission time.
type Protocol uint8

// The implemented C/R protocols.
const (
	// StopAndSync is the blocking coordinated protocol of [14] used for
	// the paper's measurements (figures 3 and 4): the coordinator asks
	// every process to stop sending, the processes drain in-flight data
	// messages, everyone dumps state, the coordinator commits the line.
	StopAndSync Protocol = iota + 1
	// ChandyLamport is the non-blocking coordinated snapshot [10]:
	// markers cut the channels, and messages arriving on a channel after
	// the local snapshot but before that channel's marker are recorded
	// as channel state.
	ChandyLamport
	// Independent is uncoordinated checkpointing: every process
	// checkpoints on its own schedule and records message dependencies;
	// restart computes a recovery line (and may suffer the domino
	// effect).
	Independent
)

func (p Protocol) String() string {
	switch p {
	case StopAndSync:
		return "stop-and-sync"
	case ChandyLamport:
		return "chandy-lamport"
	case Independent:
		return "independent"
	default:
		return "unknown-protocol"
	}
}

// Coordinated reports whether the protocol forms its recovery lines at
// checkpoint time (true) or at restart time (false).
func (p Protocol) Coordinated() bool { return p == StopAndSync || p == ChandyLamport }

// Message sub-kinds carried in wire.Msg.Kind for Type=TCheckpoint traffic.
// These messages travel between C/R modules through the daemons (Table 1) —
// except KMarker, which by construction of the Chandy–Lamport protocol must
// travel in-band on the data channels.
const (
	// KRequest: checkpoint coordinator -> participants. Payload: ckpt
	// index (u64) + protocol (u8).
	KRequest uint16 = 0x30
	// KFlush: participant -> participants (stop-and-sync). Payload: the
	// sender's cumulative per-peer sent counts, so receivers know when
	// their channels are drained.
	KFlush uint16 = 0x31
	// KAck: participant -> coordinator. Payload: ckpt index (u64).
	KAck uint16 = 0x32
	// KCommit: coordinator -> participants. Payload: ckpt index (u64).
	KCommit uint16 = 0x33
	// KMarker: Chandy–Lamport marker, sent on every outgoing data
	// channel. Payload: ckpt index (u64).
	KMarker uint16 = 0x34
	// KRestart: daemon -> process C/R module: restore from the given
	// checkpoint index. Payload: ckpt index (u64).
	KRestart uint16 = 0x35
)
