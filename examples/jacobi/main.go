// Jacobi demonstrates fault tolerance end to end: a distributed Jacobi
// relaxation runs with periodic coordinated checkpoints; midway through, a
// node hosting one of its processes is crashed. The failure detector
// notices, the leader computes the recovery line, every daemon restarts
// the application from the last committed checkpoint on the surviving
// nodes, and the computation finishes — verifying its result against a
// sequential reference at rank 0.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"time"

	"starfish/internal/apps"
	"starfish/internal/core"
)

func main() {
	env, err := core.New(core.Options{Nodes: 4, StoreDir: "/tmp/starfish-jacobi"})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Shutdown()
	if err := env.WaitView(4, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: nodes %v\n", env.Nodes())

	const appID = 1
	job := core.Job{
		ID:    appID,
		Name:  apps.JacobiName,
		Args:  apps.JacobiArgs(256, 4000, 1.0, 0.0), // 256 points, 4000 sweeps
		Ranks: 4,
		// Checkpoint every 100 sweeps with the stop-and-sync protocol.
		CheckpointEverySteps: 100,
		Protocol:             core.StopAndSync,
		Policy:               core.PolicyRestart,
	}
	if err := env.Submit(job); err != nil {
		log.Fatal(err)
	}
	fmt.Println("jacobi submitted: 4 ranks, checkpoint every 100 sweeps")

	// Wait for the first committed recovery line, then kill a node.
	line, err := env.Cluster().WaitCommittedLine(appID, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first recovery line committed: %v\n", line)

	victim := core.NodeID(3)
	fmt.Printf("crashing node %d ...\n", victim)
	if err := env.Crash(victim); err != nil {
		log.Fatal(err)
	}

	status, err := env.Wait(appID, 120*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application finished: status=%v generation=%d\n", status.Status, status.Gen)
	if status.Status != core.StatusDone {
		log.Fatalf("run failed: %s", status.Failure)
	}
	if status.Gen < 2 {
		log.Fatalf("expected a restart (generation >= 2), got %d", status.Gen)
	}
	for rank, node := range status.Placement {
		fmt.Printf("  rank %d finished on node %d\n", rank, node)
	}
	fmt.Println("ok: distributed result matched the sequential reference after crash + restart")
}
