package vni

import (
	"sync"
	"time"
)

// Stage identifies a software layer a message passes through. Figure 6 of
// the paper reports the time a message spends in each layer for both the
// send and the receive direction; because messages are never copied between
// layers, these times are independent of message size.
type Stage uint8

// The instrumented layers, matching Figure 1's application-process boxes.
const (
	// StageAppSend: from the application's send call until the MPI module
	// takes over.
	StageAppSend Stage = iota
	// StageMPISend: inside the MPI module (matching bookkeeping, header
	// construction) until the message is handed to the VNI.
	StageMPISend
	// StageVNISend: inside the VNI until the message is on the network
	// (transport Send returns).
	StageVNISend
	// StageVNIRecv: from network arrival until the polling thread has
	// queued the message.
	StageVNIRecv
	// StageMPIRecv: matching an arrived message against a posted receive.
	StageMPIRecv
	// StageAppRecv: from match until the application's receive call
	// returns.
	StageAppRecv

	StageCount
)

// String returns the layer name used in Figure-6 output.
func (s Stage) String() string {
	switch s {
	case StageAppSend:
		return "application(send)"
	case StageMPISend:
		return "mpi(send)"
	case StageVNISend:
		return "vni(send)"
	case StageVNIRecv:
		return "vni(recv)"
	case StageMPIRecv:
		return "mpi(recv)"
	case StageAppRecv:
		return "application(recv)"
	default:
		return "unknown-stage"
	}
}

// StageTimer accumulates per-layer durations, and — for the fast-path copy
// budget — per-layer payload copy and allocation counts. A nil *StageTimer
// is valid and records nothing, so the hot path pays only a nil check when
// profiling is off.
type StageTimer struct {
	mu        sync.Mutex
	total     [StageCount]time.Duration
	count     [StageCount]uint64
	copies    [StageCount]uint64
	copyBytes [StageCount]uint64
	allocs    [StageCount]uint64
}

// NewStageTimer returns an empty timer.
func NewStageTimer() *StageTimer { return &StageTimer{} }

// Add records one traversal of stage taking d.
func (t *StageTimer) Add(stage Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total[stage] += d
	t.count[stage]++
	t.mu.Unlock()
}

// Mean returns the average time per traversal of stage, or 0 if the stage
// was never recorded.
func (t *StageTimer) Mean(stage Stage) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count[stage] == 0 {
		return 0
	}
	return t.total[stage] / time.Duration(t.count[stage])
}

// Count returns how many traversals of stage were recorded.
func (t *StageTimer) Count(stage Stage) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count[stage]
}

// AddCopy records one payload copy of n bytes attributed to stage.
func (t *StageTimer) AddCopy(stage Stage, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.copies[stage]++
	t.copyBytes[stage] += uint64(n)
	t.mu.Unlock()
}

// AddAlloc records one heap allocation attributed to stage (a buffer-pool
// miss on the fast path counts here; a pool hit does not).
func (t *StageTimer) AddAlloc(stage Stage) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.allocs[stage]++
	t.mu.Unlock()
}

// Copies returns the number of payload copies and total bytes copied
// recorded against stage.
func (t *StageTimer) Copies(stage Stage) (copies, bytes uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copies[stage], t.copyBytes[stage]
}

// Allocs returns the number of allocations recorded against stage.
func (t *StageTimer) Allocs(stage Stage) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocs[stage]
}

// Reset clears all accumulated data.
func (t *StageTimer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = [StageCount]time.Duration{}
	t.count = [StageCount]uint64{}
	t.copies = [StageCount]uint64{}
	t.copyBytes = [StageCount]uint64{}
	t.allocs = [StageCount]uint64{}
	t.mu.Unlock()
}
