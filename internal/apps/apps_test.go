package apps

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"starfish/internal/proc"
	"starfish/internal/wire"
)

func TestRegisteredNames(t *testing.T) {
	names := proc.RegisteredApps()
	want := map[string]bool{RingName: true, JacobiName: true, PartitionName: true,
		SizerName: true, PingPongName: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing registrations: %v (have %v)", want, names)
	}
}

func TestRingArgsRoundTrip(t *testing.T) {
	a, err := DecodeRing(RingArgs(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != 42 {
		t.Errorf("rounds = %d", a.Rounds)
	}
}

func TestRingSnapshotRestore(t *testing.T) {
	a := &Ring{Rounds: 10}
	a.round, a.val = 4, 17
	b, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var restored Ring
	if err := restored.Restore(nil, b); err != nil {
		t.Fatal(err)
	}
	if restored.Rounds != 10 || restored.round != 4 || restored.val != 17 {
		t.Errorf("restored = %+v", restored)
	}
}

func TestJacobiArgsValidation(t *testing.T) {
	if _, err := DecodeJacobi(JacobiArgs(0, 5, 0, 0)); err == nil {
		t.Error("zero-point grid accepted")
	}
	if _, err := DecodeJacobi([]byte{1}); err == nil {
		t.Error("short args accepted")
	}
	a, err := DecodeJacobi(JacobiArgs(16, 3, 1.5, -0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 16 || a.Iters != 3 || a.Left != 1.5 || a.Right != -0.5 {
		t.Errorf("args = %+v", a)
	}
}

func TestBlockBounds(t *testing.T) {
	// 10 points over 3 ranks: 4+3+3, contiguous, complete.
	covered := 0
	prevEnd := 0
	for r := 0; r < 3; r++ {
		lo, size := blockBounds(10, 3, wire.Rank(r))
		if lo != prevEnd {
			t.Errorf("rank %d starts at %d, want %d", r, lo, prevEnd)
		}
		prevEnd = lo + size
		covered += size
	}
	if covered != 10 {
		t.Errorf("covered %d points", covered)
	}
}

func TestQuickBlockBoundsPartition(t *testing.T) {
	prop := func(nRaw, ranksRaw uint8) bool {
		n := int(nRaw%200) + 1
		ranks := int(ranksRaw%8) + 1
		prevEnd, covered := 0, 0
		for r := 0; r < ranks; r++ {
			lo, size := blockBounds(n, ranks, wire.Rank(r))
			if lo != prevEnd || size < 0 {
				return false
			}
			prevEnd = lo + size
			covered += size
		}
		return covered == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSequentialJacobiConverges(t *testing.T) {
	// With boundaries 1 and 0, the solution tends to the linear profile.
	u := SequentialJacobi(9, 20000, 1, 0)
	for i, v := range u {
		want := 1 - float64(i+1)/10
		if math.Abs(v-want) > 1e-3 {
			t.Errorf("u[%d] = %f, want ~%f", i, v, want)
		}
	}
}

func TestJacobiSnapshotRestore(t *testing.T) {
	a := &Jacobi{N: 8, Iters: 5, Left: 1, Right: 0}
	a.iter = 2
	a.lo, a.size = 3, 2
	a.u = []float64{0.5, 0.25, 0.125, 0.0625}
	b, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var r Jacobi
	if err := r.Restore(nil, b); err != nil {
		t.Fatal(err)
	}
	if r.N != 8 || r.iter != 2 || r.lo != 3 || r.size != 2 || len(r.u) != 4 || r.u[1] != 0.25 {
		t.Errorf("restored = %+v", r)
	}
}

func TestPartitionArgsValidation(t *testing.T) {
	if _, err := DecodePartition(PartitionArgs(0, 1)); err == nil {
		t.Error("zero chunks accepted")
	}
	a, err := DecodePartition(PartitionArgs(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NChunks != 10 || a.WorkPerChunk != 5 {
		t.Errorf("args = %+v", a)
	}
}

func TestPartitionAssignment(t *testing.T) {
	a := &Partition{NChunks: 9}
	a.alive = []wire.Rank{0, 1, 2}
	// Round-robin: chunk c belongs to alive[c % 3].
	for c := 0; c < 9; c++ {
		owner := wire.Rank(c % 3)
		for r := wire.Rank(0); r < 3; r++ {
			if got := a.mine(c, r); got != (r == owner) {
				t.Errorf("chunk %d rank %d: mine=%v", c, r, got)
			}
		}
	}
	// After rank 1 departs, chunks redistribute over {0, 2}.
	a.alive = []wire.Rank{0, 2}
	if !a.mine(0, 0) || !a.mine(1, 2) || !a.mine(2, 0) {
		t.Error("repartitioned assignment wrong")
	}
}

func TestPartitionSnapshotRestore(t *testing.T) {
	a := &Partition{NChunks: 5, WorkPerChunk: 1}
	a.processed = map[int]bool{1: true, 3: true}
	a.sum = 99
	b, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := &Partition{NChunks: 5, WorkPerChunk: 1}
	ctx := &proc.Ctx{Rank: 0, Size: 2}
	if err := r.Restore(ctx, b); err != nil {
		t.Fatal(err)
	}
	if r.sum != 99 || !r.processed[1] || !r.processed[3] || r.processed[0] {
		t.Errorf("restored = %+v", r)
	}
}

func TestSizerArgs(t *testing.T) {
	a, err := DecodeSizer(SizerArgsSleep(1024, 7, 3*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if a.StateBytes != 1024 || a.Steps != 7 || a.StepSleep != 3*time.Millisecond {
		t.Errorf("args = %+v", a)
	}
	if _, err := DecodeSizer([]byte{1}); err == nil {
		t.Error("short args accepted")
	}
}

func TestSizerRunsAndSnapshots(t *testing.T) {
	a, _ := DecodeSizer(SizerArgsSleep(100, 3, 0))
	if err := a.Init(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if done, err := a.Step(nil); err != nil || done {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	b, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var r Sizer
	if err := r.Restore(nil, b); err != nil {
		t.Fatal(err)
	}
	if r.step != 2 || len(r.data) != 100 {
		t.Errorf("restored = step %d, %d bytes", r.step, len(r.data))
	}
	if done, err := r.Step(nil); err != nil || !done {
		t.Errorf("final step: done=%v err=%v", done, err)
	}
}

func TestPingPongArgs(t *testing.T) {
	a, err := DecodePingPong(PingPongArgs([]int{1, 64}, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sizes) != 2 || a.Sizes[1] != 64 || a.Reps != 10 || !a.Report {
		t.Errorf("args = %+v", a)
	}
	// Default reps.
	a, _ = DecodePingPong(PingPongArgs(nil, 0, false))
	if a.Reps != 100 {
		t.Errorf("default reps = %d", a.Reps)
	}
}
