package lwg

import (
	"bytes"
	"testing"
	"testing/quick"

	"starfish/internal/wire"
)

func TestOpEncodeDecode(t *testing.T) {
	op := Op{Kind: OpJoin, App: 7, Node: 3, Meta: []byte("ranks:0,1"), Payload: nil}
	got, err := DecodeOp(op.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != OpJoin || got.App != 7 || got.Node != 3 || string(got.Meta) != "ranks:0,1" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodeOpErrors(t *testing.T) {
	if _, err := DecodeOp(nil); err == nil {
		t.Error("DecodeOp(nil) succeeded")
	}
	bad := Op{Kind: 0, App: 1}
	if _, err := DecodeOp(bad.Encode()); err == nil {
		t.Error("DecodeOp with kind 0 succeeded")
	}
}

func TestJoinProducesViewOnlyForMembers(t *testing.T) {
	// Three daemons replay the same op stream; only members of the group
	// should get view notifications (the paper: changes that affect only
	// lightweight groups are reported in the lightweight group only).
	m1 := NewManager(1)
	m2 := NewManager(2)
	m3 := NewManager(3)
	ops := []Op{
		{Kind: OpJoin, App: 10, Node: 1, Meta: []byte("r0")},
		{Kind: OpJoin, App: 10, Node: 2, Meta: []byte("r1")},
	}
	var n1, n2, n3 []Notification
	for _, op := range ops {
		n1 = append(n1, m1.HandleOp(op, op.Node)...)
		n2 = append(n2, m2.HandleOp(op, op.Node)...)
		n3 = append(n3, m3.HandleOp(op, op.Node)...)
	}
	if len(n1) != 2 { // node1 is a member from op 1
		t.Errorf("node1 notifications = %d, want 2", len(n1))
	}
	if len(n2) != 1 { // node2 becomes a member at op 2
		t.Errorf("node2 notifications = %d, want 1", len(n2))
	}
	if len(n3) != 0 { // node3 never joins app 10
		t.Errorf("node3 notifications = %d, want 0", len(n3))
	}
	v := n2[0].View
	if !v.Contains(1) || !v.Contains(2) || v.Contains(3) {
		t.Errorf("view members = %v", v.Members)
	}
	if string(v.Meta[1]) != "r0" || string(v.Meta[2]) != "r1" {
		t.Errorf("view meta = %v", v.Meta)
	}
}

func TestDeterministicAcrossReplicas(t *testing.T) {
	// Same op stream => same membership at every replica.
	ops := []Op{
		{Kind: OpJoin, App: 1, Node: 1},
		{Kind: OpJoin, App: 1, Node: 2},
		{Kind: OpJoin, App: 2, Node: 2},
		{Kind: OpLeave, App: 1, Node: 1},
		{Kind: OpJoin, App: 2, Node: 3},
	}
	ms := []*Manager{NewManager(1), NewManager(2), NewManager(3)}
	for _, op := range ops {
		for _, m := range ms {
			m.HandleOp(op, op.Node)
		}
	}
	for _, m := range ms[1:] {
		for _, app := range []wire.AppID{1, 2} {
			a, b := ms[0].Members(app), m.Members(app)
			if len(a) != len(b) {
				t.Fatalf("app %d: replica disagreement %v vs %v", app, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("app %d: replica disagreement %v vs %v", app, a, b)
				}
			}
		}
	}
	if got := ms[0].Members(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("app1 members = %v, want [2]", got)
	}
	if got := ms[0].Members(2); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("app2 members = %v, want [2 3]", got)
	}
}

func TestScopedCastDeliveredOnlyToMembers(t *testing.T) {
	member := NewManager(1)
	outsider := NewManager(9)
	join := Op{Kind: OpJoin, App: 5, Node: 1}
	member.HandleOp(join, 1)
	outsider.HandleOp(join, 1)

	cast := Op{Kind: OpCast, App: 5, Payload: []byte("repartition")}
	got := member.HandleOp(cast, 1)
	if len(got) != 1 || got[0].Kind != NCast || string(got[0].Payload) != "repartition" || got[0].From != 1 {
		t.Errorf("member notifications = %+v", got)
	}
	if n := outsider.HandleOp(cast, 1); len(n) != 0 {
		t.Errorf("outsider received scoped cast: %+v", n)
	}
	// Cast to a nonexistent group is silently scoped away.
	if n := member.HandleOp(Op{Kind: OpCast, App: 99}, 1); len(n) != 0 {
		t.Errorf("cast to unknown group delivered: %+v", n)
	}
}

func TestLeaveNotifiesRemainingMembers(t *testing.T) {
	m := NewManager(1)
	m.HandleOp(Op{Kind: OpJoin, App: 3, Node: 1}, 1)
	m.HandleOp(Op{Kind: OpJoin, App: 3, Node: 2}, 2)
	ns := m.HandleOp(Op{Kind: OpLeave, App: 3, Node: 2}, 2)
	if len(ns) != 1 || ns[0].Kind != NView {
		t.Fatalf("notifications = %+v", ns)
	}
	v := ns[0].View
	if len(v.Members) != 1 || v.Members[0] != 1 {
		t.Errorf("members after leave = %v", v.Members)
	}
	if len(v.Departed) != 1 || v.Departed[0] != 2 {
		t.Errorf("departed = %v", v.Departed)
	}
	// Leaving an unknown member is a no-op.
	if ns := m.HandleOp(Op{Kind: OpLeave, App: 3, Node: 42}, 42); len(ns) != 0 {
		t.Errorf("unknown leave notified: %+v", ns)
	}
}

func TestDissolve(t *testing.T) {
	m := NewManager(1)
	m.HandleOp(Op{Kind: OpJoin, App: 3, Node: 1}, 1)
	m.HandleOp(Op{Kind: OpJoin, App: 3, Node: 2}, 2)
	ns := m.HandleOp(Op{Kind: OpDissolve, App: 3}, 1)
	if len(ns) != 1 || ns[0].Kind != NView || len(ns[0].View.Members) != 0 {
		t.Fatalf("dissolve notifications = %+v", ns)
	}
	if len(ns[0].View.Departed) != 2 {
		t.Errorf("departed = %v", ns[0].View.Departed)
	}
	if m.Members(3) != nil {
		t.Error("group survived dissolve")
	}
	if ns := m.HandleOp(Op{Kind: OpDissolve, App: 3}, 1); len(ns) != 0 {
		t.Error("double dissolve notified")
	}
}

func TestMainViewRemovesCrashedNodes(t *testing.T) {
	// Node 2 crashes out of the Starfish group: it must leave every
	// lightweight group it was in, and only co-members get notified.
	m1 := NewManager(1)
	m3 := NewManager(3)
	ops := []Op{
		{Kind: OpJoin, App: 1, Node: 1},
		{Kind: OpJoin, App: 1, Node: 2},
		{Kind: OpJoin, App: 2, Node: 2},
		{Kind: OpJoin, App: 2, Node: 3},
		{Kind: OpJoin, App: 3, Node: 3},
	}
	for _, op := range ops {
		m1.HandleOp(op, op.Node)
		m3.HandleOp(op, op.Node)
	}
	// Main view now {1,3}: node 2 crashed.
	n1 := m1.HandleMainView([]wire.NodeID{1, 3})
	n3 := m3.HandleMainView([]wire.NodeID{1, 3})

	if len(n1) != 1 || n1[0].App != 1 {
		t.Fatalf("node1 notifications = %+v", n1)
	}
	if got := n1[0].View.Departed; len(got) != 1 || got[0] != 2 {
		t.Errorf("node1 departed = %v", got)
	}
	if len(n3) != 1 || n3[0].App != 2 {
		t.Fatalf("node3 notifications = %+v", n3)
	}
	// App 3 (only node 3) unaffected.
	if got := m3.Members(3); len(got) != 1 || got[0] != 3 {
		t.Errorf("app3 members = %v", got)
	}
	// App 1 now only node 1; app 2 only node 3.
	if got := m1.Members(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("app1 members = %v", got)
	}
}

func TestMainViewCrashOfSoleMemberDeletesGroup(t *testing.T) {
	m := NewManager(1)
	m.HandleOp(Op{Kind: OpJoin, App: 9, Node: 2}, 2)
	ns := m.HandleMainView([]wire.NodeID{1})
	if len(ns) != 0 {
		t.Errorf("non-member notified of remote group death: %+v", ns)
	}
	if m.Members(9) != nil {
		t.Error("empty group retained")
	}
	if len(m.Groups()) != 0 {
		t.Errorf("groups = %v", m.Groups())
	}
}

func TestViewIDMonotonicallyIncreases(t *testing.T) {
	m := NewManager(1)
	var last uint64
	step := func(op Op) {
		for _, n := range m.HandleOp(op, op.Node) {
			if n.Kind == NView {
				if n.View.ID <= last {
					t.Fatalf("view id went from %d to %d", last, n.View.ID)
				}
				last = n.View.ID
			}
		}
	}
	step(Op{Kind: OpJoin, App: 1, Node: 1})
	step(Op{Kind: OpJoin, App: 1, Node: 2})
	step(Op{Kind: OpLeave, App: 1, Node: 2})
	step(Op{Kind: OpJoin, App: 1, Node: 3})
}

func TestQuickOpRoundTrip(t *testing.T) {
	prop := func(kind uint8, app uint32, node uint32, meta, payload []byte) bool {
		k := OpKind(kind%4) + OpJoin
		op := Op{Kind: k, App: wire.AppID(app), Node: wire.NodeID(node), Meta: meta, Payload: payload}
		got, err := DecodeOp(op.Encode())
		if err != nil {
			return false
		}
		return got.Kind == k && got.App == op.App && got.Node == op.Node &&
			bytes.Equal(got.Meta, meta) && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickReplicaAgreement(t *testing.T) {
	// Property: replaying any op stream leaves all replicas with identical
	// group membership.
	prop := func(seed []byte) bool {
		ms := []*Manager{NewManager(1), NewManager(2), NewManager(3)}
		for i := 0; i+2 < len(seed); i += 3 {
			op := Op{
				Kind: OpKind(seed[i]%3) + OpJoin, // join/leave/cast
				App:  wire.AppID(seed[i+1] % 4),
				Node: wire.NodeID(seed[i+2]%5 + 1),
			}
			for _, m := range ms {
				m.HandleOp(op, op.Node)
			}
		}
		for app := wire.AppID(0); app < 4; app++ {
			ref := ms[0].Members(app)
			for _, m := range ms[1:] {
				got := m.Members(app)
				if len(got) != len(ref) {
					return false
				}
				for i := range ref {
					if got[i] != ref[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
