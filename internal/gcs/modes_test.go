package gcs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// collector is a thread-safe evstore.Sink for asserting on emitted records.
type collector struct {
	mu   sync.Mutex
	recs []evstore.Record
}

func (c *collector) Emit(r evstore.Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func (c *collector) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.recs {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// TestElectionFromSurvivingView is the regression test for coordinator
// election: the coordinator role must stay with the previous coordinator
// while it survives (even when lower ids join), and fall back to the
// lowest *surviving* member only when it departs. Before the fix the
// sequencer role thrashed to the lowest global id on every join.
func TestElectionFromSurvivingView(t *testing.T) {
	fn := vni.NewFastnet(0)
	mk := func(id wire.NodeID, contact string) *Endpoint {
		ep, err := Join(Config{
			Node:           id,
			Transport:      fn,
			Addr:           fmt.Sprintf("node%d", id),
			Contact:        contact,
			HeartbeatEvery: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("Join node%d: %v", id, err)
		}
		t.Cleanup(ep.Close)
		return ep
	}
	// A high-id node creates the group; lower ids join it.
	ep5 := mk(5, "")
	ep3 := mk(3, "node5")
	ep7 := mk(7, "node5")

	v, _ := waitForView(t, ep5, 3, 5, 7)
	if v.Coord != 5 {
		t.Fatalf("after joins coord = %d, want creator 5 to keep the role", v.Coord)
	}
	waitForView(t, ep3, 3, 5, 7)
	waitForView(t, ep7, 3, 5, 7)

	// The coordinator leaves: the lowest survivor takes over.
	if err := ep5.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	v, _ = waitForView(t, ep3, 3, 7)
	if v.Coord != 3 {
		t.Fatalf("after coordinator left coord = %d, want lowest survivor 3", v.Coord)
	}
	waitForView(t, ep7, 3, 7)

	// The new coordinator crashes: the remaining member self-elects.
	ep3.Close()
	v, _ = waitForView(t, ep7, 7)
	if v.Coord != 7 {
		t.Fatalf("after coordinator crash coord = %d, want survivor 7", v.Coord)
	}
}

// gossipGroup spins up n endpoints in gossip-FD mode on one fastnet.
func gossipGroup(t *testing.T, n int, sink evstore.Sink) []*Endpoint {
	t.Helper()
	fn := vni.NewFastnet(0)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Node:           wire.NodeID(i + 1),
			Transport:      fn,
			Addr:           fmt.Sprintf("node%d", i+1),
			HeartbeatEvery: 5 * time.Millisecond,
			UseGossip:      true,
			SuspectAfter:   40 * time.Millisecond,
			GossipEvents:   sink,
		}
		if i > 0 {
			cfg.Contact = "node1"
		}
		ep, err := Join(cfg)
		if err != nil {
			t.Fatalf("Join node%d: %v", i+1, err)
		}
		eps[i] = ep
		t.Cleanup(ep.Close)
	}
	return eps
}

// TestGossipModeDetectsCrash checks the SWIM path end to end: a crashed
// member is suspected, confirmed dead and removed from the view, with the
// detector's records visible on the gossip sink — and casts keep flowing
// through the same endpoints afterwards.
func TestGossipModeDetectsCrash(t *testing.T) {
	sink := &collector{}
	eps := gossipGroup(t, 5, sink)
	all := []wire.NodeID{1, 2, 3, 4, 5}
	for _, ep := range eps {
		waitForView(t, ep, all...)
	}

	eps[4].Close() // crash node 5
	survivors := []wire.NodeID{1, 2, 3, 4}
	var casts []Event
	for _, ep := range eps[:4] {
		v, c := waitForView(t, ep, survivors...)
		if v.Contains(5) {
			t.Fatalf("node %d: view still contains crashed member", ep.Node())
		}
		casts = append(casts, c...)
	}
	if len(casts) != 0 {
		t.Fatalf("unexpected casts before any were sent: %d", len(casts))
	}
	if sink.count("suspect") == 0 {
		t.Fatal("no gossip suspect record emitted for the crash")
	}
	if sink.count("confirm-dead") == 0 {
		t.Fatal("no gossip confirm-dead record emitted for the crash")
	}

	// The surviving group still sequences casts.
	if err := eps[1].Cast([]byte("after-crash")); err != nil {
		t.Fatalf("cast after crash: %v", err)
	}
	for _, ep := range eps[:4] {
		for {
			e := nextEvent(t, ep)
			if e.Kind == ECast {
				if string(e.Payload) != "after-crash" {
					t.Fatalf("node %d: wrong cast payload %q", ep.Node(), e.Payload)
				}
				break
			}
		}
	}
}

// TestGossipModeCoordinatorFailover kills the sequencer itself under the
// gossip detector: the survivors must confirm it dead, elect the lowest
// survivor and install exactly one new view.
func TestGossipModeCoordinatorFailover(t *testing.T) {
	eps := gossipGroup(t, 4, nil)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3, 4)
	}
	eps[0].Close() // crash the coordinator
	for _, ep := range eps[1:] {
		v, _ := waitForView(t, ep, 2, 3, 4)
		if v.Coord != 2 {
			t.Fatalf("node %d: coord = %d after failover, want 2", ep.Node(), v.Coord)
		}
	}
}

// externalGroup spins up n endpoints with no failure detection of their
// own (ExternalFD): removals only happen through ReportDead.
func externalGroup(t *testing.T, n int) []*Endpoint {
	t.Helper()
	fn := vni.NewFastnet(0)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Node:           wire.NodeID(i + 1),
			Transport:      fn,
			Addr:           fmt.Sprintf("node%d", i+1),
			HeartbeatEvery: 5 * time.Millisecond,
			ExternalFD:     true,
		}
		if i > 0 {
			cfg.Contact = "node1"
		}
		ep, err := Join(cfg)
		if err != nil {
			t.Fatalf("Join node%d: %v", i+1, err)
		}
		eps[i] = ep
		t.Cleanup(ep.Close)
	}
	return eps
}

// TestExternalFDWaitsForVerdict checks both halves of the injected-FD
// contract: a silent (crashed) member is NOT removed until the supervisor
// says so, and once reported dead it is removed promptly.
func TestExternalFDWaitsForVerdict(t *testing.T) {
	eps := externalGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}

	eps[2].Close() // crash node 3 — nobody is watching
	time.Sleep(100 * time.Millisecond)
	if v := eps[0].View(); !v.Contains(3) {
		t.Fatal("external-FD group removed a member without a verdict")
	}

	for _, ep := range eps[:2] {
		if err := ep.ReportDead(3); err != nil {
			t.Fatalf("node %d ReportDead: %v", ep.Node(), err)
		}
	}
	for _, ep := range eps[:2] {
		v, _ := waitForView(t, ep, 1, 2)
		if v.Contains(3) {
			t.Fatalf("node %d: view still contains reported-dead member", ep.Node())
		}
	}
}

// TestExternalFDCoordinatorFailover injects a verdict against the
// sequencer: the surviving members must run the failover sync and elect a
// new coordinator, even though the two survivors of a three-member view
// are driven purely by external reports.
func TestExternalFDCoordinatorFailover(t *testing.T) {
	eps := externalGroup(t, 3)
	for _, ep := range eps {
		waitForView(t, ep, 1, 2, 3)
	}
	eps[0].Close() // crash the coordinator
	for _, ep := range eps[1:] {
		if err := ep.ReportDead(1); err != nil {
			t.Fatalf("node %d ReportDead: %v", ep.Node(), err)
		}
	}
	for _, ep := range eps[1:] {
		v, _ := waitForView(t, ep, 2, 3)
		if v.Coord != 2 {
			t.Fatalf("node %d: coord = %d after failover, want 2", ep.Node(), v.Coord)
		}
	}
	// The re-formed group still sequences casts through the new coordinator.
	if err := eps[2].Cast([]byte("post-failover")); err != nil {
		t.Fatalf("cast: %v", err)
	}
	for _, ep := range eps[1:] {
		for {
			e := nextEvent(t, ep)
			if e.Kind == ECast {
				if string(e.Payload) != "post-failover" {
					t.Fatalf("node %d: wrong payload %q", ep.Node(), e.Payload)
				}
				break
			}
		}
	}
}
