package apps

import (
	"fmt"
	"math"

	"starfish/internal/mpi"
	"starfish/internal/proc"
	"starfish/internal/wire"
)

// Jacobi solves the 1-D heat equation u_i <- (u_{i-1} + u_{i+1}) / 2 on a
// grid of N interior points with fixed boundaries, distributed by
// contiguous blocks over the ranks. Each step performs one halo exchange
// (the classic nearest-neighbour MPI pattern) and one relaxation sweep.
// After the final iteration the segments are gathered at rank 0, which
// recomputes the whole run sequentially and fails if the distributed
// result deviates — making every cluster run self-verifying, including
// runs that crashed and restarted from a checkpoint.
type Jacobi struct {
	N     int   // interior grid points
	Iters int64 // relaxation sweeps
	Left  float64
	Right float64

	iter int64
	u    []float64 // local block, including two halo cells
	lo   int       // global index of first owned point
	size int       // owned points
}

const (
	jacobiTagHalo   int32 = 200
	jacobiTagGather int32 = 201
)

// JacobiArgs encodes submission arguments.
func JacobiArgs(n int, iters int64, left, right float64) []byte {
	w := wire.NewWriter(32)
	w.U32(uint32(n)).I64(iters).F64(left).F64(right)
	return w.Bytes()
}

// DecodeJacobi parses JacobiArgs.
func DecodeJacobi(args []byte) (*Jacobi, error) {
	r := wire.NewReader(args)
	a := &Jacobi{N: int(r.U32()), Iters: r.I64(), Left: r.F64(), Right: r.F64()}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if a.N <= 0 || a.Iters < 0 {
		return nil, fmt.Errorf("jacobi: bad args n=%d iters=%d", a.N, a.Iters)
	}
	return a, nil
}

// blockBounds returns the contiguous block [lo, lo+size) owned by rank.
func blockBounds(n, ranks int, rank wire.Rank) (lo, size int) {
	base := n / ranks
	rem := n % ranks
	r := int(rank)
	lo = r*base + min(r, rem)
	size = base
	if r < rem {
		size++
	}
	return lo, size
}

// Init implements proc.App.
func (a *Jacobi) Init(ctx *proc.Ctx) error {
	a.lo, a.size = blockBounds(a.N, ctx.Size, ctx.Rank)
	a.u = make([]float64, a.size+2)
	// Initial interior value 0; boundary conditions via halos of the edge
	// ranks.
	a.u[0] = a.Left
	a.u[a.size+1] = a.Right
	return nil
}

// Restore implements proc.App.
func (a *Jacobi) Restore(_ *proc.Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.N = int(r.U32())
	a.Iters = r.I64()
	a.Left, a.Right = r.F64(), r.F64()
	a.iter = r.I64()
	a.lo = int(r.U32())
	a.size = int(r.U32())
	vals := r.Bytes32()
	if r.Err() != nil {
		return r.Err()
	}
	u, err := mpi.BytesFloat64(vals)
	if err != nil {
		return err
	}
	a.u = u
	return nil
}

// Snapshot implements proc.App.
func (a *Jacobi) Snapshot() ([]byte, error) {
	w := wire.NewWriter(64 + 8*len(a.u))
	w.U32(uint32(a.N)).I64(a.Iters).F64(a.Left).F64(a.Right)
	w.I64(a.iter).U32(uint32(a.lo)).U32(uint32(a.size))
	w.Bytes32(mpi.Float64Bytes(a.u))
	return w.Bytes(), nil
}

// Step implements proc.App: one halo exchange + one sweep; on completion,
// gather and verify at rank 0.
func (a *Jacobi) Step(ctx *proc.Ctx) (bool, error) {
	if a.iter >= a.Iters {
		return true, a.verify(ctx)
	}
	if err := a.exchangeHalos(ctx); err != nil {
		return false, err
	}
	next := make([]float64, len(a.u))
	copy(next, a.u)
	for i := 1; i <= a.size; i++ {
		next[i] = (a.u[i-1] + a.u[i+1]) / 2
	}
	next[0], next[a.size+1] = a.u[0], a.u[a.size+1]
	a.u = next
	a.iter++
	return false, nil
}

func (a *Jacobi) exchangeHalos(ctx *proc.Ctx) error {
	rank, size := int(ctx.Rank), ctx.Size
	// Exchange with the left neighbour.
	if rank > 0 {
		if err := ctx.Comm.Send(wire.Rank(rank-1), jacobiTagHalo,
			mpi.Float64Bytes(a.u[1:2])); err != nil {
			return err
		}
	}
	if rank < size-1 {
		if err := ctx.Comm.Send(wire.Rank(rank+1), jacobiTagHalo,
			mpi.Float64Bytes(a.u[a.size:a.size+1])); err != nil {
			return err
		}
	}
	if rank > 0 {
		data, _, err := ctx.Comm.Recv(wire.Rank(rank-1), jacobiTagHalo)
		if err != nil {
			return err
		}
		v, err := mpi.BytesFloat64(data)
		if err != nil {
			return err
		}
		a.u[0] = v[0]
	}
	if rank < size-1 {
		data, _, err := ctx.Comm.Recv(wire.Rank(rank+1), jacobiTagHalo)
		if err != nil {
			return err
		}
		v, err := mpi.BytesFloat64(data)
		if err != nil {
			return err
		}
		a.u[a.size+1] = v[0]
	}
	return nil
}

// verify gathers the distributed solution at rank 0 and compares it with a
// sequential recomputation.
func (a *Jacobi) verify(ctx *proc.Ctx) error {
	if ctx.Size == 1 {
		return a.verifyAgainst(a.u[1 : a.size+1])
	}
	if ctx.Rank != 0 {
		return ctx.Comm.Send(0, jacobiTagGather, mpi.Float64Bytes(a.u[1:a.size+1]))
	}
	full := make([]float64, a.N)
	copy(full, a.u[1:a.size+1])
	for r := 1; r < ctx.Size; r++ {
		data, _, err := ctx.Comm.Recv(wire.Rank(r), jacobiTagGather)
		if err != nil {
			return err
		}
		seg, err := mpi.BytesFloat64(data)
		if err != nil {
			return err
		}
		lo, size := blockBounds(a.N, ctx.Size, wire.Rank(r))
		if len(seg) != size {
			return fmt.Errorf("jacobi: rank %d sent %d points, want %d", r, len(seg), size)
		}
		copy(full[lo:lo+size], seg)
	}
	return a.verifyAgainst(full)
}

func (a *Jacobi) verifyAgainst(got []float64) error {
	ref := SequentialJacobi(a.N, a.Iters, a.Left, a.Right)
	for i := range ref {
		if math.Abs(ref[i]-got[i]) > 1e-9 {
			return fmt.Errorf("jacobi: mismatch at %d: distributed %.12f, sequential %.12f",
				i, got[i], ref[i])
		}
	}
	return nil
}

// SequentialJacobi is the single-machine reference implementation.
func SequentialJacobi(n int, iters int64, left, right float64) []float64 {
	u := make([]float64, n+2)
	u[0], u[n+1] = left, right
	next := make([]float64, n+2)
	copy(next, u)
	for it := int64(0); it < iters; it++ {
		for i := 1; i <= n; i++ {
			next[i] = (u[i-1] + u[i+1]) / 2
		}
		u, next = next, u
		copy(next, u)
	}
	return u[1 : n+1]
}
