package poolcheck

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestPoolcheckFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
