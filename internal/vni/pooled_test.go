package vni

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"starfish/internal/wire"
)

// connPair dials through tc and returns the client and server ends.
func connPair(t *testing.T, tr Transport, addr string) (cli, srv Conn) {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	acc := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err = tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	select {
	case srv = <-acc:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { srv.Close() })
	return cli, srv
}

// TestConnSendAfterCloseDoesNoWork: a closed connection must fail the send
// without copying the payload, without counting the message, and — for a
// pooled payload — without taking ownership, so the caller can still release
// or resend the buffer.
func TestConnSendAfterCloseDoesNoWork(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			cli, _ := connPair(t, tc.tr, tc.addr(30))
			cli.Close()

			payload := wire.GetBuf(512)
			m := wire.Msg{Type: wire.TData, Payload: payload, Pooled: true}
			before := wire.MsgCounts()
			_, bytesBefore := wire.CopyStats()

			err := cli.Send(&m)
			if err == nil {
				t.Fatal("Send on closed conn succeeded")
			}
			if tc.name == "fastnet" && !errors.Is(err, ErrClosed) {
				t.Errorf("Send error = %v, want ErrClosed", err)
			}
			if after := wire.MsgCounts(); after != before {
				t.Errorf("failed send incremented message counts: %v -> %v", before, after)
			}
			if _, bytesAfter := wire.CopyStats(); bytesAfter[wire.CopyClone] != bytesBefore[wire.CopyClone] {
				t.Error("failed send cloned the payload")
			}
			if !m.Pooled || m.Payload == nil {
				t.Fatal("failed send stole ownership of the pooled payload")
			}
			m.Release() // ownership stayed with us; this must not double-free
		})
	}
}

// TestNICSendAfterCloseNoStats: NIC.Send on a closed NIC is ErrClosed and
// leaves the traffic counters untouched.
func TestNICSendAfterCloseNoStats(t *testing.T) {
	fn := NewFastnet(0)
	a, err := NewNIC(fn, "stats-closed-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNIC(fn, "stats-closed-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(b.Addr(), &wire.Msg{Type: wire.TData, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	sentBefore, _ := a.Stats().Snapshot()

	if err := a.Send(b.Addr(), &wire.Msg{Type: wire.TData, Payload: []byte("y")}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
	sentAfter, _ := a.Stats().Snapshot()
	if sentAfter != sentBefore {
		t.Errorf("failed send changed NIC stats: %v -> %v", sentBefore, sentAfter)
	}
}

// TestFastnetMoveSemantics: a pooled send over fastnet moves the buffer to
// the receiver — same backing array, no copy recorded — and strips the
// sender's reference.
func TestFastnetMoveSemantics(t *testing.T) {
	cli, srv := connPair(t, NewFastnet(0), "move")

	payload := wire.GetBuf(1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	orig := &payload[0]
	copiedBefore := wire.CopiedBytes()

	m := wire.Msg{Type: wire.TData, Tag: 9, Payload: payload, Pooled: true}
	if err := cli.Send(&m); err != nil {
		t.Fatal(err)
	}
	if m.Payload != nil || m.Pooled {
		t.Error("successful pooled send left the sender holding the payload")
	}
	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pooled {
		t.Error("receiver did not inherit pool ownership")
	}
	if &got.Payload[0] != orig {
		t.Error("pooled payload was copied, not moved")
	}
	if got.Payload[1] != 1 || len(got.Payload) != 1024 {
		t.Errorf("payload corrupted in transit: len=%d", len(got.Payload))
	}
	if copied := wire.CopiedBytes() - copiedBefore; copied != 0 {
		t.Errorf("move recorded %d copied bytes, want 0", copied)
	}
	got.Release()
}

// TestTCPRecvDeliversPooled: the serialized transport reads payloads into
// pooled buffers and hands ownership to the receiver.
func TestTCPRecvDeliversPooled(t *testing.T) {
	cli, srv := connPair(t, NewTCP(), "127.0.0.1:0")

	// Cover both framing paths: below and above the writev threshold.
	for _, n := range []int{100, tcpWritevThreshold + 1} {
		payload := wire.GetBuf(n)
		for i := range payload {
			payload[i] = byte(n + i)
		}
		want := append([]byte(nil), payload...)
		m := wire.Msg{Type: wire.TData, Payload: payload, Pooled: true}
		if err := cli.Send(&m); err != nil {
			t.Fatal(err)
		}
		if m.Payload != nil || m.Pooled {
			t.Error("tcp Send did not consume the pooled payload")
		}
		got, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Pooled {
			t.Errorf("size %d: tcp Recv payload not pooled", n)
		}
		if !bytes.Equal(got.Payload, want) {
			t.Errorf("size %d: payload corrupted in transit", n)
		}
		got.Release()
	}
}

// TestTimerCopyAccounting: the per-stage copy/alloc counters accumulate and
// reset, including on a nil timer.
func TestTimerCopyAccounting(t *testing.T) {
	st := NewStageTimer()
	st.AddCopy(StageMPISend, 100)
	st.AddCopy(StageMPISend, 50)
	st.AddAlloc(StageMPISend)
	copies, b := st.Copies(StageMPISend)
	if copies != 2 || b != 150 {
		t.Errorf("Copies = %d/%d, want 2/150", copies, b)
	}
	if st.Allocs(StageMPISend) != 1 {
		t.Errorf("Allocs = %d, want 1", st.Allocs(StageMPISend))
	}
	st.Reset()
	if c, _ := st.Copies(StageMPISend); c != 0 || st.Allocs(StageMPISend) != 0 {
		t.Error("Reset did not clear copy/alloc counters")
	}

	var nilT *StageTimer
	nilT.AddCopy(StageVNISend, 1)
	nilT.AddAlloc(StageVNISend)
	if c, _ := nilT.Copies(StageVNISend); c != 0 || nilT.Allocs(StageVNISend) != 0 {
		t.Error("nil StageTimer misbehaved on copy accounting")
	}
}
