// Package rstore implements a replicated in-memory checkpoint store.
//
// Each Starfish daemon embeds one rstore.Store: an in-RAM shard of checkpoint
// images plus a small replication protocol that pushes every image to k peer
// daemons over the ordinary wire/vni transport. Recovery after a node failure
// then restores a rank from a surviving peer's RAM instead of a shared file
// system — the dominant cost of restart in the paper's disk-based design.
//
// Design:
//
//   - Placement is deterministic: the holders of (app, rank) are k consecutive
//     members of the current sorted membership starting at an FNV-1a hash of
//     the pair. Every node computes the same holder set from the same view,
//     so no directory service is needed. The writer always keeps a local copy
//     regardless of placement (it is about to be the one reading it back).
//   - A lightweight index of which checkpoints exist (app, rank, n) is
//     replicated to every member, so List/Ranks/GatherLine work on any node,
//     including nodes that never hosted the rank. Committed recovery lines
//     are likewise broadcast.
//   - On a view change the daemon calls UpdateView; a background pass then
//     re-replicates: every locally held image whose holder set under the new
//     view includes peers that have not acknowledged a copy is pushed again.
//     The pass is idempotent (puts of the same (app, rank, n) overwrite), so
//     racing passes and duplicate pushes are harmless.
//   - Replication reuses the pooled-buffer ownership discipline of the fast
//     data path: an outgoing image is staged once into a wire.BufPool buffer
//     and then moves to the peer with no further copies. Get returns the
//     store's internal buffer (callers treat images as read-only), so a
//     restore from local or peer RAM never copies the image at all.
//
// The store speaks TControl messages on its own listener, daemon-to-daemon —
// the one route Table 1 allows for system traffic.
package rstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/evstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// Protocol message kinds (wire.Msg.Kind on TControl messages).
//
// Whole images travel in their own frame (kPutData/kGetData, tag-paired with
// the request) rather than being concatenated with the metadata: the image
// frame is staged into an exactly-sized pooled buffer, so an 8 MiB image
// costs one 8 MiB-class checkout instead of overflowing into the next
// power-of-two class with the metadata prefix glued on.
const (
	kPut       uint16 = 0x60 // header: App, Src=rank, Seq=n; payload: meta; followed by kPutData
	kGet       uint16 = 0x61 // header: App, Src=rank, Seq=n
	kGetOK     uint16 = 0x62 // payload: meta; followed by kGetData
	kGetMiss   uint16 = 0x63
	kIndex     uint16 = 0x64 // payload: count, then (app, rank, n) entries
	kCommit    uint16 = 0x65 // header: App; payload: encoded recovery line
	kLineGet   uint16 = 0x66 // header: App
	kLineOK    uint16 = 0x67 // payload: encoded recovery line
	kLineMiss  uint16 = 0x68
	kGC        uint16 = 0x69 // header: App, Src=rank, Seq=keepFrom
	kDrop      uint16 = 0x6A // header: App
	kOK        uint16 = 0x6B // generic ack
	kPutData   uint16 = 0x6C // second frame of kPut: the image bytes
	kGetData   uint16 = 0x6D // second frame of kGetOK: the image bytes
	kPutRec    uint16 = 0x6E // header: App, Src=rank, Seq=n; payload: meta|env; reply kRecOK
	kRecOK     uint16 = 0x6F // payload: u32 count + still-missing block ids
	kBlockHas  uint16 = 0x70 // payload: u32 count + block ids; reply kHasOK
	kHasOK     uint16 = 0x71 // payload: one byte per queried id (1 = held)
	kBlockPut  uint16 = 0x72 // payload: u32 count + (id, u32 len, data) entries
	kBlockGet  uint16 = 0x73 // payload: one block id
	kBlockOK   uint16 = 0x74 // payload: the block bytes
	kBlockMiss uint16 = 0x75
)

// Config parameterizes a Store.
type Config struct {
	// Node is this daemon's identity; it must appear in every membership
	// passed to UpdateView.
	Node wire.NodeID
	// Transport carries replication traffic (the same fastnet/TCP transport
	// the daemons use).
	Transport vni.Transport
	// Addr is the listen address for peer replication connections.
	Addr string
	// PeerAddr maps a member to its rstore listen address.
	PeerAddr func(wire.NodeID) string
	// Replicas is the target number of in-memory copies of each checkpoint,
	// counting the writer's own (default 2, i.e. survive one node loss).
	Replicas int
	// RequestTimeout bounds one peer request/reply round trip (default 2s).
	// A request whose reply does not arrive in time drops the connection
	// (so a desynchronized stream can never pair replies with the wrong
	// requests) and counts as a failure.
	RequestTimeout time.Duration
	// RequestRetries is how many extra attempts a failed peer request gets
	// (default 2). Every peer operation is idempotent — puts overwrite,
	// reads are pure — so retrying after a timeout or a dropped reply is
	// always safe.
	RequestRetries int
	// Logf, when non-nil, receives replication diagnostics.
	Logf func(string, ...any)
	// Events optionally receives structured records about view updates,
	// replication pushes, re-replication passes and GC (the daemon passes
	// its store's "rstore" emitter).
	Events evstore.Sink
}

type key struct {
	app  wire.AppID
	rank wire.Rank
	n    uint64
}

type entry struct {
	img  []byte
	meta *ckpt.Meta
	// origin marks images this node stored on behalf of a local process (as
	// opposed to replicas pushed by a peer); origin entries drive the
	// under-replication counter.
	origin bool
}

// blockEntry is one content-addressed block of the chunked checkpoint
// pipeline (see rstore_chunked.go).
type blockEntry struct {
	data []byte
	// refs counts references from locally held record envelopes (one per
	// occurrence); a block at zero references is garbage unless pinned.
	refs int
	// pinned marks a block pushed ahead of its record (kBlockPut): it must
	// survive until the kPutRec that references it lands, even across a
	// concurrent GC broadcast.
	pinned bool
}

// Stats is a snapshot of one store's replica health and size counters.
type Stats struct {
	Node     wire.NodeID
	Members  int
	Replicas int
	// Images and Bytes count locally resident checkpoint images.
	Images int
	Bytes  int64
	// IndexEntries counts cluster-wide known checkpoints (the replicated
	// index), Commits the apps with a known committed line.
	IndexEntries int
	Commits      int
	// UnderReplicated counts origin images with fewer acknowledged live
	// copies than the replication target.
	UnderReplicated int
	// Pushes/PushFailures count replica push attempts; PeerFetches counts
	// Get requests served from a peer's RAM, PeerFetchMisses failed ones.
	Pushes          uint64
	PushFailures    uint64
	PeerFetches     uint64
	PeerFetchMisses uint64
	// Blocks and BlockBytes count locally resident content-addressed
	// blocks of the chunked checkpoint pipeline.
	Blocks     int
	BlockBytes int64
	// BytesReplicated is the total payload bytes this node actually pushed
	// to peers (images, record envelopes, and block data) — the savings
	// metric of delta replication.
	BytesReplicated uint64
}

// String formats the snapshot as a single management-protocol-friendly line.
func (st Stats) String() string {
	return fmt.Sprintf(
		"node %d members %d replicas %d images %d bytes %d index %d commits %d under-replicated %d pushes %d push-failures %d peer-fetches %d peer-fetch-misses %d blocks %d block-bytes %d replicated-bytes %d",
		st.Node, st.Members, st.Replicas, st.Images, st.Bytes, st.IndexEntries,
		st.Commits, st.UnderReplicated, st.Pushes, st.PushFailures,
		st.PeerFetches, st.PeerFetchMisses, st.Blocks, st.BlockBytes,
		st.BytesReplicated)
}

// peerConn is one lazily dialed, lockstep request/response connection to a
// peer store. The mutex serializes requests; each request carries a tag the
// reply must echo, so a duplicated or stale reply on the stream is discarded
// instead of being paired with the wrong request.
type peerConn struct {
	mu   sync.Mutex
	conn vni.Conn
	tag  int32
}

// Store is a replicated in-memory checkpoint repository. It implements
// ckpt.Backend; Get may return internal buffers, which callers must treat as
// read-only (the Backend contract).
type Store struct {
	cfg Config
	ln  vni.Listener

	// bg tracks background view-change work (re-replication passes and
	// stale-peer teardown). Close waits for it: cfg.Logf is often a
	// test's t.Logf, which must not be called after the test returns.
	bg sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	members []wire.NodeID
	viewGen uint64
	images  map[key]*entry
	index   map[wire.AppID]map[wire.Rank]map[uint64]bool
	commits map[wire.AppID]ckpt.RecoveryLine
	// acked records which peers acknowledged holding a replica of a key.
	acked map[key]map[wire.NodeID]bool
	peers map[wire.NodeID]*peerConn
	// blocks is the content-addressed block shard; resolved caches the
	// raw image behind a record chain, materialized eagerly as records
	// arrive so a restore from a chain is pointer-speed (rstore_chunked.go).
	blocks   map[ckpt.BlockID]*blockEntry
	resolved map[key][]byte

	pushes, pushFailures, peerFetches, peerFetchMisses, repBytes uint64
}

var _ ckpt.Backend = (*Store)(nil)

// New opens a store: it starts listening for peer replication traffic and
// begins with a singleton membership of just cfg.Node.
func New(cfg Config) (*Store, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.RequestRetries < 0 {
		cfg.RequestRetries = 0
	} else if cfg.RequestRetries == 0 {
		cfg.RequestRetries = 2
	}
	ln, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rstore: listen %s: %w", cfg.Addr, err)
	}
	s := &Store{
		cfg:      cfg,
		ln:       ln,
		members:  []wire.NodeID{cfg.Node},
		images:   make(map[key]*entry),
		index:    make(map[wire.AppID]map[wire.Rank]map[uint64]bool),
		commits:  make(map[wire.AppID]ckpt.RecoveryLine),
		acked:    make(map[key]map[wire.NodeID]bool),
		peers:    make(map[wire.NodeID]*peerConn),
		blocks:   make(map[ckpt.BlockID]*blockEntry),
		resolved: make(map[key][]byte),
	}
	//starfish:allow goleak accept loop returns when Close closes s.ln
	go s.serve()
	return s, nil
}

// Close stops serving peers and drops all connections. Held images remain
// readable locally (the daemon may still be draining), but no further
// replication happens.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	peers := s.peers
	s.peers = map[wire.NodeID]*peerConn{}
	s.mu.Unlock()
	for _, pc := range peers {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	err := s.ln.Close()
	// Wait for background re-replication: its per-step closed checks and
	// the now-failing peer requests bound the wait, and afterwards nothing
	// can call cfg.Logf again.
	s.bg.Wait()
	return err
}

// Addr returns the store's bound listen address.
func (s *Store) Addr() string { return s.ln.Addr() }

func (s *Store) event(r evstore.Record) {
	if s.cfg.Events != nil {
		s.cfg.Events.Emit(r)
	}
}

func (s *Store) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// hashKey is FNV-1a over (app, rank); it seeds replica placement.
func hashKey(app wire.AppID, rank wire.Rank) uint32 {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:], uint32(app))
	binary.BigEndian.PutUint32(b[4:], uint32(rank))
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// holdersLocked returns the members that should hold (app, rank) under the
// current view: min(Replicas, len(members)) consecutive members starting at
// the placement hash. Callers hold s.mu.
func (s *Store) holdersLocked(app wire.AppID, rank wire.Rank) []wire.NodeID {
	n := len(s.members)
	if n == 0 {
		return nil
	}
	k := s.cfg.Replicas
	if k > n {
		k = n
	}
	start := int(hashKey(app, rank) % uint32(n))
	out := make([]wire.NodeID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, s.members[(start+i)%n])
	}
	return out
}

// UpdateView installs a new membership (sorted copy taken) and starts a
// background re-replication pass restoring the replication target for every
// image this node holds. Acks from departed members are pruned so the
// under-replication counter reflects live copies only.
func (s *Store) UpdateView(members []wire.NodeID) {
	ms := append([]wire.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.members = ms
	s.viewGen++
	gen := s.viewGen
	live := make(map[wire.NodeID]bool, len(ms))
	for _, m := range ms {
		live[m] = true
	}
	for k, acks := range s.acked {
		for n := range acks {
			if !live[n] {
				delete(acks, n)
			}
		}
		if len(acks) == 0 {
			delete(s.acked, k)
		}
	}
	for n, pc := range s.peers {
		if !live[n] {
			delete(s.peers, n)
			s.bg.Add(1)
			go func(pc *peerConn) {
				defer s.bg.Done()
				pc.mu.Lock()
				if pc.conn != nil {
					pc.conn.Close()
					pc.conn = nil
				}
				pc.mu.Unlock()
			}(pc)
		}
	}
	s.bg.Add(1)
	s.mu.Unlock()
	s.event(evstore.Ev("view",
		evstore.F("gen", gen), evstore.F("members", evstore.List(ms))))
	go func() {
		defer s.bg.Done()
		s.reReplicate(gen)
	}()
}

// Members returns the current sorted membership (copy).
func (s *Store) Members() []wire.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.NodeID(nil), s.members...)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Node:            s.cfg.Node,
		Members:         len(s.members),
		Replicas:        s.cfg.Replicas,
		Images:          len(s.images),
		Commits:         len(s.commits),
		Pushes:          s.pushes,
		PushFailures:    s.pushFailures,
		PeerFetches:     s.peerFetches,
		PeerFetchMisses: s.peerFetchMisses,
		Blocks:          len(s.blocks),
		BytesReplicated: s.repBytes,
	}
	for _, e := range s.images {
		st.Bytes += int64(len(e.img))
	}
	for _, b := range s.blocks {
		st.BlockBytes += int64(len(b.data))
	}
	for _, ranks := range s.index {
		for _, ns := range ranks {
			st.IndexEntries += len(ns)
		}
	}
	want := s.cfg.Replicas
	if want > len(s.members) {
		want = len(s.members)
	}
	for k, e := range s.images {
		if !e.origin {
			continue
		}
		have := 1 // our own copy
		for n := range s.acked[k] {
			if n != s.cfg.Node {
				have++
			}
		}
		if have < want {
			st.UnderReplicated++
		}
	}
	return st
}

// indexAddLocked records that checkpoint (app, rank, n) exists somewhere in
// the cluster. Callers hold s.mu.
func (s *Store) indexAddLocked(app wire.AppID, rank wire.Rank, n uint64) {
	ranks := s.index[app]
	if ranks == nil {
		ranks = make(map[wire.Rank]map[uint64]bool)
		s.index[app] = ranks
	}
	ns := ranks[rank]
	if ns == nil {
		ns = make(map[uint64]bool)
		ranks[rank] = ns
	}
	ns[n] = true
}

// ---------------------------------------------------------------------------
// ckpt.Backend implementation
// ---------------------------------------------------------------------------

// Put stores checkpoint n of (app, rank) in local RAM, pushes replicas to the
// holder peers, and replicates the index entry to every member. Replication
// failures do not fail the Put — the local copy exists and the
// under-replication counter (and the next view change's re-replication pass)
// pick up the slack.
func (s *Store) Put(app wire.AppID, rank wire.Rank, n uint64, img []byte, meta *ckpt.Meta) error {
	if meta == nil {
		meta = &ckpt.Meta{Rank: rank, Index: n}
	}
	k := key{app, rank, n}
	// Keep our own reference to the stored copy: once published in s.images,
	// a concurrent replica push (handle kPut) may swap the entry's img.
	stored := append([]byte(nil), img...)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("rstore: store closed")
	}
	s.setImageLocked(k, stored, meta, true)
	s.indexAddLocked(app, rank, n)
	holders := s.holdersLocked(app, rank)
	members := append([]wire.NodeID(nil), s.members...)
	s.mu.Unlock()

	mb := meta.Encode()
	for _, h := range holders {
		if h == s.cfg.Node {
			continue
		}
		if err := s.pushImage(h, k, mb, stored); err != nil {
			s.logf("[rstore %d] push #%d of app %d rank %d to node %d: %v",
				s.cfg.Node, n, app, rank, h, err)
			s.event(evstore.EvRank("push-failure", app, rank,
				evstore.F("n", n), evstore.F("peer", h)))
		}
	}
	s.broadcastIndex(members, []key{k})
	return nil
}

// pushImage sends one image to a peer and records the ack. The metadata
// rides in the request frame; the image is staged into an exactly-sized
// pooled buffer that moves to the peer copy-free in a second frame. A
// successful Send gives the buffer away, so each retry after a timeout or
// dropped reply restages a fresh one (puts are idempotent overwrites).
func (s *Store) pushImage(peer wire.NodeID, k key, metaBytes, img []byte) error {
	s.mu.Lock()
	s.pushes++
	s.mu.Unlock()
	var err error
	for attempt := 0; attempt <= s.cfg.RequestRetries; attempt++ {
		hdr := &wire.Msg{
			Type: wire.TControl, Kind: kPut,
			App: k.app, Src: k.rank, Seq: k.n,
			Payload: metaBytes,
		}
		buf := wire.GetBuf(len(img))
		copy(buf, img)
		data := &wire.Msg{
			Type: wire.TControl, Kind: kPutData,
			App: k.app, Src: k.rank, Seq: k.n,
			Payload: buf, Pooled: true,
		}
		var replies []wire.Msg
		replies, err = s.exchange(peer, []*wire.Msg{hdr, data}, nil)
		if err == nil && replies[0].Kind != kOK {
			err = fmt.Errorf("rstore: unexpected reply kind %#x", replies[0].Kind)
		}
		if err == nil {
			s.mu.Lock()
			s.repBytes += uint64(len(metaBytes) + len(img))
			s.ackLocked(k, peer)
			s.mu.Unlock()
			return nil
		}
		if s.isClosed() {
			break
		}
	}
	s.mu.Lock()
	s.pushFailures++
	s.mu.Unlock()
	return err
}

// ackLocked records that peer acknowledged holding a replica of k.
func (s *Store) ackLocked(k key, peer wire.NodeID) {
	acks := s.acked[k]
	if acks == nil {
		acks = make(map[wire.NodeID]bool)
		s.acked[k] = acks
	}
	acks[peer] = true
}

func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// broadcastIndex replicates index entries to every member except ourselves.
// Index traffic is advisory: failures are logged, not returned.
func (s *Store) broadcastIndex(members []wire.NodeID, keys []key) {
	if len(keys) == 0 {
		return
	}
	w := wire.NewWriter(4 + 16*len(keys))
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U32(uint32(k.app)).U32(uint32(k.rank)).U64(k.n)
	}
	payload := w.Bytes()
	for _, peer := range members {
		if peer == s.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kIndex, Payload: payload}
		if reply, err := s.request(peer, &m); err != nil || reply.Kind != kOK {
			s.logf("[rstore %d] index broadcast to node %d failed: %v",
				s.cfg.Node, peer, err)
		}
	}
}

// Get loads checkpoint n of (app, rank) and always returns a raw image: a
// slot holding a record envelope of the incremental pipeline is resolved to
// the state it encodes (materialized cache first, chain walk otherwise). The
// returned image references store-internal memory; treat it as read-only.
func (s *Store) Get(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *ckpt.Meta, error) {
	img, meta, err := s.getImage(app, rank, n)
	if err != nil {
		return nil, nil, err
	}
	if !ckpt.IsRecord(img) {
		return img, meta, nil
	}
	raw, err := s.resolveEnv(app, rank, n, img)
	if err != nil {
		return nil, nil, err
	}
	return raw, meta, nil
}

// getImage loads the slot contents of checkpoint n of (app, rank) verbatim
// (a raw image or a record envelope): from local RAM when present, else by
// fetching from a peer (holders first, then everyone) and caching the result.
func (s *Store) getImage(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *ckpt.Meta, error) {
	k := key{app, rank, n}
	s.mu.Lock()
	if e, ok := s.images[k]; ok {
		// Snapshot under mu: a concurrent replica push (handle kPut)
		// swaps an origin entry's img/meta fields in place.
		img, meta := e.img, e.meta
		s.mu.Unlock()
		return img, meta, nil
	}
	candidates := s.fetchOrderLocked(app, rank)
	s.mu.Unlock()

	for _, peer := range candidates {
		img, meta, err := s.fetchImage(peer, k)
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.peerFetches++
		e, ok := s.images[k]
		if !ok {
			s.setImageLocked(k, img, meta, false)
			s.indexAddLocked(app, rank, n)
			e = s.images[k]
		}
		img, meta = e.img, e.meta // snapshot under mu (see above)
		s.mu.Unlock()
		return img, meta, nil
	}
	s.mu.Lock()
	s.peerFetchMisses++
	s.mu.Unlock()
	return nil, nil, fmt.Errorf("%w: app %d rank %d #%d (no in-memory replica)",
		ckpt.ErrNoCheckpoint, app, rank, n)
}

// fetchOrderLocked lists the peers to ask for (app, rank), holders first,
// then the remaining members. Callers hold s.mu.
func (s *Store) fetchOrderLocked(app wire.AppID, rank wire.Rank) []wire.NodeID {
	holders := s.holdersLocked(app, rank)
	inHolders := make(map[wire.NodeID]bool, len(holders))
	out := make([]wire.NodeID, 0, len(s.members))
	for _, h := range holders {
		inHolders[h] = true
		if h != s.cfg.Node {
			out = append(out, h)
		}
	}
	for _, m := range s.members {
		if m != s.cfg.Node && !inHolders[m] {
			out = append(out, m)
		}
	}
	return out
}

// fetchImage asks one peer for one image. A hit comes back as two frames:
// kGetOK carrying the metadata, then kGetData carrying the image in its own
// exactly-sized pooled buffer, which this store retains by aliasing (pooled
// buffers are simply never recycled — dropping without Release is safe).
func (s *Store) fetchImage(peer wire.NodeID, k key) ([]byte, *ckpt.Meta, error) {
	m := &wire.Msg{Type: wire.TControl, Kind: kGet, App: k.app, Src: k.rank, Seq: k.n}
	var lastErr error
	for attempt := 0; attempt <= s.cfg.RequestRetries; attempt++ {
		replies, err := s.exchange(peer, []*wire.Msg{m}, func(first *wire.Msg) int {
			if first.Kind == kGetOK {
				return 1 // the kGetData frame
			}
			return 0
		})
		if err != nil {
			lastErr = err
			if s.isClosed() {
				break
			}
			continue
		}
		if replies[0].Kind != kGetOK || len(replies) != 2 || replies[1].Kind != kGetData {
			return nil, nil, ckpt.ErrNoCheckpoint
		}
		meta, err := ckpt.DecodeMeta(replies[0].Payload)
		if err != nil {
			return nil, nil, err
		}
		return replies[1].Payload, meta, nil
	}
	return nil, nil, lastErr
}

// decodeMetaEnv splits a kPutRec payload into metadata and record envelope.
// The envelope aliases the payload buffer, which the store retains.
func decodeMetaEnv(p []byte) ([]byte, *ckpt.Meta, error) {
	if len(p) < 4 {
		return nil, nil, ckpt.ErrBadImage
	}
	ml := binary.BigEndian.Uint32(p)
	if uint64(4+ml) > uint64(len(p)) {
		return nil, nil, ckpt.ErrBadImage
	}
	meta, err := ckpt.DecodeMeta(p[4 : 4+ml])
	if err != nil {
		return nil, nil, err
	}
	return p[4+ml:], meta, nil
}

// List returns the checkpoint indices known cluster-wide for (app, rank).
func (s *Store) List(app wire.AppID, rank wire.Rank) ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.index[app][rank]
	if len(ns) == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, len(ns))
	for n := range ns {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Ranks returns the ranks with at least one checkpoint known cluster-wide.
func (s *Store) Ranks(app wire.AppID) ([]wire.Rank, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranks := s.index[app]
	if len(ranks) == 0 {
		return nil, nil
	}
	out := make([]wire.Rank, 0, len(ranks))
	for r, ns := range ranks {
		if len(ns) > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// CommitLine records a committed recovery line and broadcasts it to every
// member, so restart can read it on whichever node coordinates recovery.
func (s *Store) CommitLine(app wire.AppID, line ckpt.RecoveryLine) error {
	cp := make(ckpt.RecoveryLine, len(line))
	for r, n := range line {
		cp[r] = n
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("rstore: store closed")
	}
	s.commits[app] = cp
	members := append([]wire.NodeID(nil), s.members...)
	s.mu.Unlock()
	payload := ckpt.EncodeLine(cp)
	for _, peer := range members {
		if peer == s.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kCommit, App: app, Payload: payload}
		if reply, err := s.request(peer, &m); err != nil || reply.Kind != kOK {
			s.logf("[rstore %d] commit broadcast to node %d failed: %v",
				s.cfg.Node, peer, err)
		}
	}
	return nil
}

// CommittedLine returns the last committed line for app, asking peers when
// this node has none (e.g. it joined after the commit).
func (s *Store) CommittedLine(app wire.AppID) (ckpt.RecoveryLine, error) {
	s.mu.Lock()
	if line, ok := s.commits[app]; ok {
		s.mu.Unlock()
		return line, nil
	}
	members := append([]wire.NodeID(nil), s.members...)
	s.mu.Unlock()
	for _, peer := range members {
		if peer == s.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kLineGet, App: app}
		reply, err := s.request(peer, &m)
		if err != nil || reply.Kind != kLineOK {
			continue
		}
		line, err := ckpt.DecodeLine(reply.Payload)
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.commits[app] = line
		s.mu.Unlock()
		return line, nil
	}
	return nil, fmt.Errorf("%w: app %d has no committed line", ckpt.ErrNoCheckpoint, app)
}

// GC drops local images of (app, rank) older than keepFrom, updates the
// index, and broadcasts the collection to every member.
func (s *Store) GC(app wire.AppID, rank wire.Rank, keepFrom uint64) error {
	s.event(evstore.EvRank("gc", app, rank, evstore.F("keep-from", keepFrom)))
	s.mu.Lock()
	s.gcLocked(app, rank, keepFrom)
	members := append([]wire.NodeID(nil), s.members...)
	s.mu.Unlock()
	for _, peer := range members {
		if peer == s.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kGC, App: app, Src: rank, Seq: keepFrom}
		if reply, err := s.request(peer, &m); err != nil || reply.Kind != kOK {
			s.logf("[rstore %d] GC broadcast to node %d failed: %v",
				s.cfg.Node, peer, err)
		}
	}
	return nil
}

func (s *Store) gcLocked(app wire.AppID, rank wire.Rank, keepFrom uint64) {
	for k := range s.images {
		if k.app == app && k.rank == rank && k.n < keepFrom {
			s.deleteImageLocked(k)
		}
	}
	for n := range s.index[app][rank] {
		if n < keepFrom {
			delete(s.index[app][rank], n)
		}
	}
}

// DropApp removes every image, index entry and commit record of app, locally
// and on every member.
func (s *Store) DropApp(app wire.AppID) error {
	s.mu.Lock()
	s.dropAppLocked(app)
	members := append([]wire.NodeID(nil), s.members...)
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil
	}
	for _, peer := range members {
		if peer == s.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kDrop, App: app}
		if reply, err := s.request(peer, &m); err != nil || reply.Kind != kOK {
			s.logf("[rstore %d] drop broadcast to node %d failed: %v",
				s.cfg.Node, peer, err)
		}
	}
	return nil
}

func (s *Store) dropAppLocked(app wire.AppID) {
	for k := range s.images {
		if k.app == app {
			s.deleteImageLocked(k)
		}
	}
	delete(s.index, app)
	delete(s.commits, app)
}

// Evict drops the local copy of one image (memory pressure hook). The
// replicated index still records its existence, so a later Get re-fetches it
// from a peer.
func (s *Store) Evict(app wire.AppID, rank wire.Rank, n uint64) {
	s.mu.Lock()
	s.deleteImageLocked(key{app, rank, n})
	s.mu.Unlock()
}

// Holds reports whether this node's RAM currently contains the image.
func (s *Store) Holds(app wire.AppID, rank wire.Rank, n uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.images[key{app, rank, n}]
	return ok
}

// ---------------------------------------------------------------------------
// Re-replication
// ---------------------------------------------------------------------------

// reReplicate restores the replication target after a view change: it pushes
// the full index and all commit lines to every member, then every locally
// held image to holder peers that have not acknowledged a copy. The pass
// aborts if a newer view arrives mid-way (a fresh pass covers it).
func (s *Store) reReplicate(gen uint64) {
	var pushed, failed int
	done := func(aborted bool) {
		s.event(evstore.Ev("rereplicate",
			evstore.F("gen", gen), evstore.F("pushed", pushed),
			evstore.F("failed", failed), evstore.F("aborted", aborted)))
	}
	s.mu.Lock()
	if s.closed || gen != s.viewGen {
		s.mu.Unlock()
		return
	}
	members := append([]wire.NodeID(nil), s.members...)
	allKeys := make([]key, 0, len(s.images))
	for k := range s.images {
		allKeys = append(allKeys, k)
	}
	for app, ranks := range s.index {
		for rank, ns := range ranks {
			for n := range ns {
				k := key{app, rank, n}
				if _, held := s.images[k]; !held {
					allKeys = append(allKeys, k)
				}
			}
		}
	}
	commits := make(map[wire.AppID]ckpt.RecoveryLine, len(s.commits))
	for app, line := range s.commits {
		commits[app] = line
	}
	s.mu.Unlock()

	sort.Slice(allKeys, func(i, j int) bool {
		a, b := allKeys[i], allKeys[j]
		if a.app != b.app {
			return a.app < b.app
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.n < b.n
	})
	s.broadcastIndex(members, allKeys)
	for app, line := range commits {
		payload := ckpt.EncodeLine(line)
		for _, peer := range members {
			if peer == s.cfg.Node {
				continue
			}
			m := wire.Msg{Type: wire.TControl, Kind: kCommit, App: app, Payload: payload}
			if reply, err := s.request(peer, &m); err != nil || reply.Kind != kOK {
				s.logf("[rstore %d] commit re-broadcast to node %d failed: %v",
					s.cfg.Node, peer, err)
			}
		}
	}

	for _, k := range allKeys {
		s.mu.Lock()
		if s.closed || gen != s.viewGen {
			s.mu.Unlock()
			done(true)
			return
		}
		e, held := s.images[k]
		if !held {
			s.mu.Unlock()
			continue
		}
		holders := s.holdersLocked(k.app, k.rank)
		inHolders := false
		for _, h := range holders {
			if h == s.cfg.Node {
				inHolders = true
			}
		}
		var targets []wire.NodeID
		for _, h := range holders {
			if h != s.cfg.Node && !s.acked[k][h] {
				targets = append(targets, h)
			}
		}
		// Only holders and origins re-push: a node that merely cached a
		// fetched image must not take over placement.
		if !e.origin && !inHolders {
			targets = nil
		}
		var mb []byte
		if len(targets) > 0 {
			mb = e.meta.Encode()
		}
		img := e.img
		s.mu.Unlock()
		for _, h := range targets {
			var err error
			if ckpt.IsRecord(img) {
				err = s.pushRecord(h, k, mb, img)
			} else {
				err = s.pushImage(h, k, mb, img)
			}
			if err != nil {
				failed++
				s.logf("[rstore %d] re-replicate #%d of app %d rank %d to node %d: %v",
					s.cfg.Node, k.n, k.app, k.rank, h, err)
			} else {
				pushed++
			}
		}
	}
	done(false)
}

// ---------------------------------------------------------------------------
// Peer RPC plumbing
// ---------------------------------------------------------------------------

// request sends one single-frame request and waits for its single reply.
func (s *Store) request(peer wire.NodeID, m *wire.Msg) (wire.Msg, error) {
	replies, err := s.exchange(peer, []*wire.Msg{m}, nil)
	if err != nil {
		return wire.Msg{}, err
	}
	return replies[0], nil
}

// exchange performs one logical request/reply exchange with a peer. All
// request frames share one tag; the reply may span multiple frames (more,
// when non-nil, reports how many extra frames follow the first). Unpooled
// exchanges are retried here (every peer operation is idempotent); an
// exchange carrying a pooled frame gets exactly one attempt — a successful
// Send moves the payload away, so those callers restage and retry
// themselves (see pushImage).
func (s *Store) exchange(peer wire.NodeID, msgs []*wire.Msg, more func(*wire.Msg) int) ([]wire.Msg, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		releaseUnsent(msgs)
		return nil, fmt.Errorf("rstore: store closed")
	}
	pc := s.peers[peer]
	if pc == nil {
		pc = &peerConn{}
		s.peers[peer] = pc
	}
	s.mu.Unlock()

	attempts := 1
	pooled := false
	for _, m := range msgs {
		pooled = pooled || m.Pooled
	}
	if !pooled {
		attempts += s.cfg.RequestRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		replies, err := s.roundTrip(pc, peer, msgs, more)
		if err == nil {
			return replies, nil
		}
		lastErr = err
		if s.isClosed() {
			break
		}
	}
	return nil, lastErr
}

// roundTrip performs one tagged multi-frame request/reply exchange with a
// timeout. Connections are dialed lazily, serialized per peer, and dropped
// on any error or timeout so the next attempt starts on a clean stream.
// Pooled payloads of frames that never moved are released before returning
// an error, so callers uniformly own nothing afterwards.
func (s *Store) roundTrip(pc *peerConn, peer wire.NodeID, msgs []*wire.Msg, more func(*wire.Msg) int) ([]wire.Msg, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		conn, err := s.cfg.Transport.Dial(s.cfg.PeerAddr(peer))
		if err != nil {
			releaseUnsent(msgs)
			return nil, err
		}
		pc.conn = conn
	}
	pc.tag++
	tag := pc.tag
	for i, m := range msgs {
		m.Tag = tag
		if err := pc.conn.Send(m); err != nil {
			pc.conn.Close()
			pc.conn = nil
			releaseUnsent(msgs[i:])
			return nil, err
		}
	}

	// Receive in a helper goroutine so the wait can time out; mismatched
	// tags (a duplicated reply, or the late reply of a predecessor that
	// timed out after Send) are discarded.
	conn := pc.conn
	type res struct {
		ms  []wire.Msg
		err error
	}
	ch := make(chan res)
	done := make(chan struct{})
	defer close(done)
	go func() {
		var got []wire.Msg
		want := 1
		for {
			r, err := conn.Recv()
			if err != nil {
				for i := range got {
					got[i].Release()
				}
				select {
				case ch <- res{err: err}:
				case <-done:
				}
				return
			}
			if r.Tag != tag {
				r.Release()
				continue
			}
			got = append(got, r)
			if len(got) == 1 && more != nil {
				want += more(&got[0])
			}
			if len(got) < want {
				continue
			}
			select {
			case ch <- res{ms: got}:
			case <-done:
				for i := range got {
					got[i].Release()
				}
			}
			return
		}
	}()

	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	//starfish:allow lockcheck pc.mu deliberately serializes one request per peer; the wait is bounded by RequestTimeout
	select {
	case r := <-ch:
		if r.err != nil {
			pc.conn.Close()
			pc.conn = nil
			return nil, r.err
		}
		return r.ms, nil
	case <-timer.C:
		// Closing the connection unblocks the receiver goroutine and
		// guarantees a late reply can never be mispaired.
		pc.conn.Close()
		pc.conn = nil
		return nil, fmt.Errorf("rstore: request to node %d timed out after %v",
			peer, s.cfg.RequestTimeout)
	}
}

// releaseUnsent returns the pooled payloads of frames that never moved to
// the transport.
func releaseUnsent(msgs []*wire.Msg) {
	for _, m := range msgs {
		if m.Pooled && m.Payload != nil {
			m.Release()
		}
	}
}

// serve accepts peer connections for the life of the store.
func (s *Store) serve() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		//starfish:allow goleak connection loop returns when the conn is closed (by the peer or by Close dropping all conns)
		go s.serveConn(c)
	}
}

// serveConn handles one peer connection: strict request/reply, one exchange
// in flight. kPut requests arrive as two frames (metadata, then the image in
// its own pooled frame); replies may likewise span multiple frames, all
// echoing the request's tag.
func (s *Store) serveConn(c vni.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		var replies []*wire.Msg
		if m.Kind == kPut {
			data, err := c.Recv()
			if err != nil {
				return
			}
			if data.Kind != kPutData || data.Tag != m.Tag {
				data.Release()
				replies = []*wire.Msg{{Type: wire.TControl, Kind: kGetMiss}}
			} else {
				replies = s.handlePut(&m, &data)
			}
		} else {
			replies = s.handle(&m)
		}
		for i, r := range replies {
			r.Tag = m.Tag // pair the reply with its request
			if err := c.Send(r); err != nil {
				releaseUnsent(replies[i:])
				return
			}
		}
	}
}

// handlePut services a two-frame replica push: metadata in the kPut frame,
// the image in the kPutData frame, retained by aliasing the pooled receive
// buffer (it is never recycled, which is safe — the pool just misses a reuse).
func (s *Store) handlePut(m, data *wire.Msg) []*wire.Msg {
	meta, err := ckpt.DecodeMeta(m.Payload)
	if err != nil {
		data.Release()
		return []*wire.Msg{{Type: wire.TControl, Kind: kGetMiss}}
	}
	k := key{m.App, m.Src, m.Seq}
	s.mu.Lock()
	s.setImageLocked(k, data.Payload, meta, false)
	s.indexAddLocked(m.App, m.Src, m.Seq)
	s.materializeLocked(k)
	s.mu.Unlock()
	return []*wire.Msg{{Type: wire.TControl, Kind: kOK}}
}

// handle services one single-frame peer request, returning the reply frames.
func (s *Store) handle(m *wire.Msg) []*wire.Msg {
	one := func(r *wire.Msg) []*wire.Msg { return []*wire.Msg{r} }
	switch m.Kind {
	case kGet:
		k := key{m.App, m.Src, m.Seq}
		s.mu.Lock()
		e, ok := s.images[k]
		var img []byte
		var meta *ckpt.Meta
		if ok {
			img, meta = e.img, e.meta // snapshot under mu: kPut swaps origin entries in place
		}
		s.mu.Unlock()
		if !ok {
			return one(&wire.Msg{Type: wire.TControl, Kind: kGetMiss})
		}
		buf := wire.GetBuf(len(img))
		copy(buf, img)
		return []*wire.Msg{
			{Type: wire.TControl, Kind: kGetOK, Payload: meta.Encode()},
			{Type: wire.TControl, Kind: kGetData, Payload: buf, Pooled: true},
		}

	case kPutRec:
		return one(s.handlePutRec(m))

	case kBlockHas:
		return one(s.handleBlockHas(m))

	case kBlockPut:
		return one(s.handleBlockPut(m))

	case kBlockGet:
		return one(s.handleBlockGet(m))

	case kIndex:
		r := wire.NewReader(m.Payload)
		count := r.U32()
		s.mu.Lock()
		for i := uint32(0); i < count && r.Err() == nil; i++ {
			app := wire.AppID(r.U32())
			rank := wire.Rank(r.U32())
			n := r.U64()
			if r.Err() == nil {
				s.indexAddLocked(app, rank, n)
			}
		}
		s.mu.Unlock()
		return one(&wire.Msg{Type: wire.TControl, Kind: kOK})

	case kCommit:
		line, err := ckpt.DecodeLine(m.Payload)
		if err == nil {
			s.mu.Lock()
			s.commits[m.App] = line
			s.mu.Unlock()
		}
		return one(&wire.Msg{Type: wire.TControl, Kind: kOK})

	case kLineGet:
		s.mu.Lock()
		line, ok := s.commits[m.App]
		s.mu.Unlock()
		if !ok {
			return one(&wire.Msg{Type: wire.TControl, Kind: kLineMiss})
		}
		return one(&wire.Msg{Type: wire.TControl, Kind: kLineOK, Payload: ckpt.EncodeLine(line)})

	case kGC:
		s.mu.Lock()
		s.gcLocked(m.App, m.Src, m.Seq)
		s.mu.Unlock()
		return one(&wire.Msg{Type: wire.TControl, Kind: kOK})

	case kDrop:
		s.mu.Lock()
		s.dropAppLocked(m.App)
		s.mu.Unlock()
		return one(&wire.Msg{Type: wire.TControl, Kind: kOK})

	default:
		return one(&wire.Msg{Type: wire.TControl, Kind: kGetMiss})
	}
}
