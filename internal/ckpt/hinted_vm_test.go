package ckpt

import (
	"bytes"
	"testing"

	"starfish/internal/svm"
)

// memWriter walks the heap writing one word per iteration — the incremental
// checkpointing workload: a little state changes per epoch, most does not.
const memWriter = `
loop:   loadg 1       ; remaining
        jz done
        loadg 0       ; addr
        loadg 1
        storem        ; mem[addr] = remaining
        loadg 0
        push 1
        add
        storeg 0      ; addr++
        loadg 1
        push 1
        sub
        storeg 1      ; remaining--
        jmp loop
done:   halt
`

// TestHintedDeltaMatchesFullDiff runs a VM across several checkpoint epochs
// and verifies the end-to-end hint path: the spans DirtyByteSpans reports
// make ComputeDeltaHinted produce exactly the delta a full byte comparison
// would, at a fraction of the scan work. The hints being sound is what lets
// a capture path skip diffing untouched heap blocks.
func TestHintedDeltaMatchesFullDiff(t *testing.T) {
	m := svm.New(svm.Machines[0], svm.MustAssemble(memWriter), 2)
	m.Globals[1] = 2000 // iterations
	m.Grow(64 * 1024)   // 64K-word heap, mostly untouched
	m.TrackDirty()
	prev := m.EncodeImage()

	for epoch := 0; epoch < 5; epoch++ {
		halted, err := m.RunSteps(1500)
		if err != nil {
			t.Fatal(err)
		}
		next := m.EncodeImage()
		var spans []ByteSpan
		for _, sp := range m.DirtyByteSpans() {
			spans = append(spans, ByteSpan{Off: sp.Off, Len: sp.Len})
		}
		m.ResetDirty()

		hinted := ComputeDeltaHinted(prev, next, spans)
		full := ComputeDelta(prev, next)
		if len(hinted.Blocks) != len(full.Blocks) {
			t.Fatalf("epoch %d: hinted delta has %d blocks, full diff %d",
				epoch, len(hinted.Blocks), len(full.Blocks))
		}
		for b, want := range full.Blocks {
			if !bytes.Equal(hinted.Blocks[b], want) {
				t.Fatalf("epoch %d: block %d differs between hinted and full diff", epoch, b)
			}
		}
		out, err := hinted.Apply(prev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, next) {
			t.Fatalf("epoch %d: hinted delta does not reconstruct the image", epoch)
		}
		// The delta must actually be incremental: a sliver of the image.
		if epoch > 0 && hinted.Size() >= len(next)/4 {
			t.Errorf("epoch %d: delta of %d bytes for a %d-byte image", epoch, hinted.Size(), len(next))
		}
		prev = next
		if halted {
			break
		}
	}
}
