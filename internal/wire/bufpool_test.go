package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestPoolClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {255, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2},
		{64 << 10, 16 - 8}, // 2^16 class
		{(64 << 10) + 1, 17 - 8},
		{1 << 24, poolClassCount - 1},
		{(1 << 24) + 1, -1},
	}
	for _, c := range cases {
		if got := poolClassFor(c.n); got != c.class {
			t.Errorf("poolClassFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if poolClassSize(poolClassCount-1) != MaxPayload {
		t.Errorf("largest class %d != MaxPayload %d", poolClassSize(poolClassCount-1), MaxPayload)
	}
}

func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	b := p.Get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("Get(1000): len=%d cap=%d, want 1000/1024", len(b), cap(b))
	}
	p.Put(b)
	// Same class: must come back from the free list, not a fresh allocation.
	b2 := p.Get(700)
	if &b[0] != &b2[0] {
		t.Error("Get after Put did not recycle the buffer")
	}
	gets, puts, misses := p.Stats()
	if gets != 2 || puts != 1 || misses != 1 {
		t.Errorf("Stats = %d/%d/%d, want 2/1/1", gets, puts, misses)
	}
}

func TestBufPoolEdgeSizes(t *testing.T) {
	var p BufPool
	if b := p.Get(0); b != nil {
		t.Errorf("Get(0) = %v, want nil", b)
	}
	// Oversized requests fall back to plain allocation; Put ignores them.
	big := p.Get(MaxPayload + 1)
	if len(big) != MaxPayload+1 {
		t.Fatalf("oversized Get: len=%d", len(big))
	}
	p.Put(big) // must not panic or poison anything
	// Foreign buffers (non-class capacity) are ignored too.
	p.Put(make([]byte, 100))
	_, puts, _ := p.Stats()
	if puts != 0 {
		t.Errorf("puts = %d after only ignorable Puts, want 0", puts)
	}
}

func TestPoolGuardDoublePutPanics(t *testing.T) {
	if !PoolGuardEnabled() {
		t.Fatal("guard mode should be on under go test")
	}
	b := GetBuf(64)
	PutBuf(b)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double PutBuf did not panic")
		}
		if !strings.Contains(r.(string), "not checked out") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	PutBuf(b)
}

func TestPoolGuardForeignPutPanics(t *testing.T) {
	// A buffer with a class-sized capacity that never came from the pool.
	b := make([]byte, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign PutBuf did not panic")
		}
	}()
	PutBuf(b)
}

func TestPoolPoisonOnRelease(t *testing.T) {
	b := GetBuf(128)
	for i := range b {
		b[i] = 0xAA
	}
	keep := b[:cap(b)] // stale alias, as a buggy retainer would hold
	PutBuf(b)
	if !bytes.Equal(keep, bytes.Repeat([]byte{0xDB}, len(keep))) {
		t.Error("released buffer was not poisoned with 0xDB")
	}
	// Drain it back out so the poisoned buffer doesn't leak into other tests'
	// expectations about recycled contents (contents are unspecified anyway).
	_ = GetBuf(128)
}

func TestMsgReleaseOnlyPooled(t *testing.T) {
	// Non-pooled Release must be a no-op for the pool (no guard panic).
	m := Msg{Type: TData, Payload: []byte("hello")}
	m.Release()
	if m.Payload != nil {
		t.Error("Release did not clear the payload")
	}

	p := GetBuf(32)
	pm := Msg{Type: TData, Payload: p, Pooled: true}
	pm.Release()
	if pm.Payload != nil || pm.Pooled {
		t.Error("Release left pooled state behind")
	}
	// The buffer is back in the pool: next Get of the class returns it.
	q := GetBuf(32)
	if &q[:1][0] != &p[:1][0] {
		t.Error("Release did not return the payload to the pool")
	}
	PutBuf(q)
}

func TestCloneIsNotPooled(t *testing.T) {
	ResetCopyStats()
	p := GetBuf(40)
	m := Msg{Type: TData, Payload: p, Pooled: true}
	c := m.Clone()
	if c.Pooled {
		t.Error("Clone must not inherit pool ownership")
	}
	if &c.Payload[0] == &p[0] {
		t.Error("Clone aliases the original payload")
	}
	counts, bytes_ := CopyStats()
	if counts[CopyClone] != 1 || bytes_[CopyClone] != 40 {
		t.Errorf("CopyStats clone = %d/%d, want 1/40", counts[CopyClone], bytes_[CopyClone])
	}
	m.Release()
}
