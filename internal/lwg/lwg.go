// Package lwg implements Starfish's lightweight groups (§2.1, figure 2).
//
// Every application running on the cluster is associated with a lightweight
// process group whose members are the daemons hosting that application's
// processes. Rather than paying for a full process group per application,
// lightweight groups derive their membership from the single main Starfish
// group: join/leave operations and scoped casts travel as totally ordered
// multicasts on the main group, and every daemon runs the same deterministic
// state machine over that stream. Because the stream is totally ordered,
// all daemons agree on every lightweight view without extra agreement
// rounds — this is the efficiency argument of [19] realized over one group.
//
// The Manager is a pure state machine: the daemon feeds it decoded
// operations (plus main-group view changes) and routes the notifications it
// returns to local application processes. Only notifications relevant to
// groups this node belongs to are produced, which mirrors the paper's point
// that lightweight events do not disturb unrelated nodes.
package lwg

import (
	"fmt"
	"sort"

	"starfish/internal/wire"
)

// OpKind discriminates lightweight-group operations.
type OpKind uint8

// Operations carried (encoded) inside main-group casts.
const (
	// OpJoin adds a node (with metadata, e.g. its rank placement) to an
	// application's lightweight group.
	OpJoin OpKind = iota + 1
	// OpLeave removes a node from an application's lightweight group.
	OpLeave
	// OpCast is a scoped multicast delivered only to the group's members.
	OpCast
	// OpDissolve removes the whole group (application terminated).
	OpDissolve
)

// Op is one lightweight-group operation.
type Op struct {
	Kind OpKind
	App  wire.AppID
	Node wire.NodeID
	// Meta is opaque per-member metadata carried with OpJoin; Starfish
	// daemons store the ranks placed on the node here.
	Meta []byte
	// Payload is the scoped-cast body for OpCast.
	Payload []byte
}

// Encode serializes the operation for transport inside a main-group cast.
func (o *Op) Encode() []byte {
	w := wire.NewWriter(16 + len(o.Meta) + len(o.Payload))
	w.U8(uint8(o.Kind)).U32(uint32(o.App)).U32(uint32(o.Node))
	w.Bytes32(o.Meta).Bytes32(o.Payload)
	return w.Bytes()
}

// DecodeOp parses an operation encoded by Encode.
func DecodeOp(b []byte) (Op, error) {
	r := wire.NewReader(b)
	o := Op{
		Kind: OpKind(r.U8()),
		App:  wire.AppID(r.U32()),
		Node: wire.NodeID(r.U32()),
	}
	o.Meta = append([]byte(nil), r.Bytes32()...)
	o.Payload = append([]byte(nil), r.Bytes32()...)
	if r.Err() != nil {
		return Op{}, r.Err()
	}
	if o.Kind < OpJoin || o.Kind > OpDissolve {
		return Op{}, fmt.Errorf("lwg: bad op kind %d", o.Kind)
	}
	return o, nil
}

// View is a lightweight-group view: the member daemons of one application's
// group, plus their metadata, at a given epoch.
type View struct {
	App     wire.AppID
	ID      uint64
	Members []wire.NodeID
	// Meta maps each member to the metadata it joined with.
	Meta map[wire.NodeID][]byte
	// Departed lists members removed relative to the previous view,
	// so listeners can tell crash-driven shrinks from grows.
	Departed []wire.NodeID
}

// Contains reports whether node is a member of the view.
func (v *View) Contains(node wire.NodeID) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// NotifyKind discriminates Manager notifications.
type NotifyKind uint8

// Notification kinds.
const (
	// NView reports a lightweight view change for a group this node
	// belongs to (or just left).
	NView NotifyKind = iota + 1
	// NCast delivers a scoped multicast for a group this node belongs to.
	NCast
)

// Notification is the Manager's output: the daemon routes NView/NCast to
// the local processes of the named application.
type Notification struct {
	Kind    NotifyKind
	View    View // for NView
	From    wire.NodeID
	App     wire.AppID
	Payload []byte // for NCast
}

type group struct {
	viewID  uint64
	members map[wire.NodeID][]byte // member -> meta
}

// Manager is the lightweight membership module of one daemon. It is a
// deterministic state machine over the totally ordered operation stream;
// it is NOT safe for concurrent use (drive it from one goroutine, e.g. the
// daemon's event loop).
type Manager struct {
	self   wire.NodeID
	groups map[wire.AppID]*group
}

// NewManager creates the module for the daemon running on node self.
func NewManager(self wire.NodeID) *Manager {
	return &Manager{self: self, groups: make(map[wire.AppID]*group)}
}

// Groups returns the ids of all known lightweight groups, sorted.
func (m *Manager) Groups() []wire.AppID {
	out := make([]wire.AppID, 0, len(m.groups))
	for id := range m.groups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the current member set of app's group (nil if unknown).
func (m *Manager) Members(app wire.AppID) []wire.NodeID {
	g := m.groups[app]
	if g == nil {
		return nil
	}
	return sortedMembers(g)
}

// MemberMeta returns the metadata node joined app's group with.
func (m *Manager) MemberMeta(app wire.AppID, node wire.NodeID) []byte {
	g := m.groups[app]
	if g == nil {
		return nil
	}
	return g.members[node]
}

// IsLocalMember reports whether this node belongs to app's group.
func (m *Manager) IsLocalMember(app wire.AppID) bool {
	g := m.groups[app]
	return g != nil && g.members[m.self] != nil
}

func sortedMembers(g *group) []wire.NodeID {
	ms := make([]wire.NodeID, 0, len(g.members))
	for n := range g.members {
		ms = append(ms, n)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

func (m *Manager) viewNotification(app wire.AppID, g *group, departed []wire.NodeID) Notification {
	v := View{App: app, ID: g.viewID, Members: sortedMembers(g), Meta: map[wire.NodeID][]byte{}, Departed: departed}
	for n, meta := range g.members {
		v.Meta[n] = meta
	}
	return Notification{Kind: NView, App: app, View: v}
}

// HandleOp applies one decoded operation from the totally ordered stream
// and returns notifications for local delivery. `from` is the main-group
// sender of the cast carrying the op.
func (m *Manager) HandleOp(op Op, from wire.NodeID) []Notification {
	switch op.Kind {
	case OpJoin:
		g := m.groups[op.App]
		if g == nil {
			g = &group{members: map[wire.NodeID][]byte{}}
			m.groups[op.App] = g
		}
		meta := op.Meta
		if meta == nil {
			meta = []byte{}
		}
		g.members[op.Node] = meta
		g.viewID++
		if g.members[m.self] != nil {
			return []Notification{m.viewNotification(op.App, g, nil)}
		}
	case OpLeave:
		g := m.groups[op.App]
		if g == nil || g.members[op.Node] == nil {
			return nil
		}
		wasMember := g.members[m.self] != nil
		delete(g.members, op.Node)
		g.viewID++
		if len(g.members) == 0 {
			delete(m.groups, op.App)
		}
		if wasMember {
			return []Notification{m.viewNotification(op.App, &group{
				viewID:  g.viewID,
				members: g.members,
			}, []wire.NodeID{op.Node})}
		}
	case OpCast:
		// Receiver-side scoping: only members of the group deliver.
		if m.IsLocalMember(op.App) {
			return []Notification{{Kind: NCast, App: op.App, From: from, Payload: op.Payload}}
		}
	case OpDissolve:
		g := m.groups[op.App]
		if g == nil {
			return nil
		}
		wasMember := g.members[m.self] != nil
		members := sortedMembers(g)
		viewID := g.viewID + 1
		delete(m.groups, op.App)
		if wasMember {
			return []Notification{{Kind: NView, App: op.App, View: View{
				App: op.App, ID: viewID, Members: nil,
				Meta: map[wire.NodeID][]byte{}, Departed: members,
			}}}
		}
	}
	return nil
}

// HandleMainView reconciles all lightweight groups with a new main-group
// view: members that crashed out of the Starfish group are removed from
// every lightweight group they belonged to. This is the translation of
// main-group membership events into lightweight membership events (§2.1).
func (m *Manager) HandleMainView(members []wire.NodeID) []Notification {
	alive := map[wire.NodeID]bool{}
	for _, n := range members {
		alive[n] = true
	}
	var out []Notification
	apps := make([]wire.AppID, 0, len(m.groups))
	for app := range m.groups {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	for _, app := range apps {
		g := m.groups[app]
		var departed []wire.NodeID
		for n := range g.members {
			if !alive[n] {
				departed = append(departed, n)
			}
		}
		if len(departed) == 0 {
			continue
		}
		sort.Slice(departed, func(i, j int) bool { return departed[i] < departed[j] })
		wasMember := g.members[m.self] != nil
		for _, n := range departed {
			delete(g.members, n)
		}
		g.viewID++
		if len(g.members) == 0 {
			delete(m.groups, app)
		}
		if wasMember && g.members[m.self] != nil {
			out = append(out, m.viewNotification(app, g, departed))
		}
	}
	return out
}
