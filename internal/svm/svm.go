package svm

import (
	"errors"
	"fmt"
)

// Op is a bytecode opcode.
type Op uint8

// The SVM instruction set: a conventional stack machine with globals, a
// growable heap, calls, and an output stream for observable effects.
const (
	NOP    Op = iota
	PUSH      // push operand
	POP       // discard top
	DUP       // duplicate top
	SWAP      // swap top two
	ADD       // pop b, a; push a+b
	SUB       // pop b, a; push a-b
	MUL       // pop b, a; push a*b
	DIV       // pop b, a; push a/b (error on b==0)
	MOD       // pop b, a; push a%b (error on b==0)
	NEG       // negate top
	EQ        // pop b, a; push a==b (1/0)
	LT        // pop b, a; push a<b
	GT        // pop b, a; push a>b
	NOT       // logical not of top
	JMP       // jump to operand
	JZ        // pop v; jump to operand if v==0
	JNZ       // pop v; jump to operand if v!=0
	LOADG     // push globals[operand]
	STOREG    // pop v; globals[operand]=v
	LOADM     // pop addr; push mem[addr]
	STOREM    // pop v, addr; mem[addr]=v
	ALLOC     // pop n; grow memory by n zero words; push old size (base)
	CALL      // push pc+1 on call stack; jump to operand
	RET       // pop return address from call stack
	OUT       // pop v; append to output stream
	HALT      // stop
	AND       // pop b, a; push a & b
	OR        // pop b, a; push a | b
	XOR       // pop b, a; push a ^ b
	SHL       // pop b, a; push a << (b mod word bits)
	SHR       // pop b, a; push a >> (b mod word bits), arithmetic

	opCount
)

var opNames = [...]string{
	NOP: "nop", PUSH: "push", POP: "pop", DUP: "dup", SWAP: "swap",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod", NEG: "neg",
	EQ: "eq", LT: "lt", GT: "gt", NOT: "not",
	JMP: "jmp", JZ: "jz", JNZ: "jnz",
	LOADG: "loadg", STOREG: "storeg", LOADM: "loadm", STOREM: "storem",
	ALLOC: "alloc", CALL: "call", RET: "ret", OUT: "out", HALT: "halt",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// hasOperand reports whether the opcode takes an immediate operand.
func (o Op) hasOperand() bool {
	switch o {
	case PUSH, JMP, JZ, JNZ, LOADG, STOREG, CALL:
		return true
	}
	return false
}

// Instr is one bytecode instruction.
type Instr struct {
	Op  Op
	Arg int64
}

func (i Instr) String() string {
	if i.Op.hasOperand() {
		return fmt.Sprintf("%s %d", i.Op, i.Arg)
	}
	return i.Op.String()
}

// Execution errors.
var (
	ErrHalted        = errors.New("svm: machine is halted")
	ErrStackEmpty    = errors.New("svm: stack underflow")
	ErrBadPC         = errors.New("svm: program counter out of range")
	ErrBadAddress    = errors.New("svm: memory address out of range")
	ErrBadGlobal     = errors.New("svm: global index out of range")
	ErrDivByZero     = errors.New("svm: division by zero")
	ErrCallDepth     = errors.New("svm: call stack overflow")
	ErrRetEmpty      = errors.New("svm: return with empty call stack")
	ErrStepLimit     = errors.New("svm: step limit exceeded")
	errShortImage    = errors.New("svm: truncated image")
	ErrBadImage      = errors.New("svm: malformed image")
	ErrArchMismatch  = errors.New("svm: image architecture does not match machine")
	ErrNotHalted     = errors.New("svm: program has not halted")
	ErrBadInstrImage = errors.New("svm: image contains invalid instruction")
)

// maxCallDepth bounds recursion so runaway programs fail fast.
const maxCallDepth = 1 << 16

// VM is one Starfish virtual machine instance, executing on a simulated
// architecture. All arithmetic wraps at the architecture's word length, so
// a program behaves identically before a checkpoint on machine A and after
// restart on machine B (provided its values fit B's words).
type VM struct {
	Arch Arch

	Code      []Instr
	PC        int
	Stack     []int64
	CallStack []int64
	Globals   []int64
	Mem       []int64
	Output    []int64
	Steps     uint64
	Halted    bool

	// dirty, when non-nil, tracks writes since the last ResetDirty for
	// incremental checkpointing (see dirty.go). Deliberately unexported and
	// outside the image: a restored VM starts untracked.
	dirty *dirtyState
}

// New creates a VM for prog with nglobals global slots, running on arch.
func New(arch Arch, prog []Instr, nglobals int) *VM {
	return &VM{
		Arch:    arch,
		Code:    append([]Instr(nil), prog...),
		Globals: make([]int64, nglobals),
	}
}

// Grow pre-allocates n words of heap (equivalent to executing ALLOC n and
// dropping the base). Used to size checkpoint experiments.
func (m *VM) Grow(n int) {
	m.Mem = append(m.Mem, make([]int64, n)...)
}

func (m *VM) push(v int64) { m.Stack = append(m.Stack, m.Arch.wrap(v)) }

func (m *VM) pop() (int64, error) {
	if len(m.Stack) == 0 {
		return 0, ErrStackEmpty
	}
	v := m.Stack[len(m.Stack)-1]
	m.Stack = m.Stack[:len(m.Stack)-1]
	return v, nil
}

func (m *VM) pop2() (a, b int64, err error) {
	if b, err = m.pop(); err != nil {
		return
	}
	a, err = m.pop()
	return
}

// Step executes one instruction.
func (m *VM) Step() error {
	if m.Halted {
		return ErrHalted
	}
	if m.PC < 0 || m.PC >= len(m.Code) {
		return fmt.Errorf("%w: pc=%d len=%d", ErrBadPC, m.PC, len(m.Code))
	}
	in := m.Code[m.PC]
	next := m.PC + 1
	m.Steps++

	switch in.Op {
	case NOP:
	case PUSH:
		m.push(in.Arg)
	case POP:
		if _, err := m.pop(); err != nil {
			return err
		}
	case DUP:
		if len(m.Stack) == 0 {
			return ErrStackEmpty
		}
		m.push(m.Stack[len(m.Stack)-1])
	case SWAP:
		a, b, err := m.pop2()
		if err != nil {
			return err
		}
		m.push(b)
		m.push(a)
	case ADD, SUB, MUL, DIV, MOD, EQ, LT, GT, AND, OR, XOR, SHL, SHR:
		a, b, err := m.pop2()
		if err != nil {
			return err
		}
		var v int64
		switch in.Op {
		case ADD:
			v = a + b
		case SUB:
			v = a - b
		case MUL:
			v = a * b
		case DIV:
			if b == 0 {
				return ErrDivByZero
			}
			v = a / b
		case MOD:
			if b == 0 {
				return ErrDivByZero
			}
			v = a % b
		case EQ:
			v = boolWord(a == b)
		case LT:
			v = boolWord(a < b)
		case GT:
			v = boolWord(a > b)
		case AND:
			v = a & b
		case OR:
			v = a | b
		case XOR:
			v = a ^ b
		case SHL:
			v = a << (uint64(b) % uint64(m.Arch.WordBits))
		case SHR:
			v = a >> (uint64(b) % uint64(m.Arch.WordBits))
		}
		m.push(v)
	case NEG:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.push(-v)
	case NOT:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.push(boolWord(v == 0))
	case JMP:
		next = int(in.Arg)
	case JZ, JNZ:
		v, err := m.pop()
		if err != nil {
			return err
		}
		if (in.Op == JZ) == (v == 0) {
			next = int(in.Arg)
		}
	case LOADG:
		if in.Arg < 0 || in.Arg >= int64(len(m.Globals)) {
			return fmt.Errorf("%w: %d", ErrBadGlobal, in.Arg)
		}
		m.push(m.Globals[in.Arg])
	case STOREG:
		if in.Arg < 0 || in.Arg >= int64(len(m.Globals)) {
			return fmt.Errorf("%w: %d", ErrBadGlobal, in.Arg)
		}
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Globals[in.Arg] = v
		if m.dirty != nil {
			m.dirty.globals = true
		}
	case LOADM:
		addr, err := m.pop()
		if err != nil {
			return err
		}
		if addr < 0 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("%w: %d", ErrBadAddress, addr)
		}
		m.push(m.Mem[addr])
	case STOREM:
		v, err := m.pop()
		if err != nil {
			return err
		}
		addr, err := m.pop()
		if err != nil {
			return err
		}
		if addr < 0 || addr >= int64(len(m.Mem)) {
			return fmt.Errorf("%w: %d", ErrBadAddress, addr)
		}
		m.Mem[addr] = v
		if m.dirty != nil {
			m.dirty.markMem(int(addr))
		}
	case ALLOC:
		n, err := m.pop()
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("%w: alloc %d", ErrBadAddress, n)
		}
		base := int64(len(m.Mem))
		m.Mem = append(m.Mem, make([]int64, n)...)
		m.push(base)
	case CALL:
		if len(m.CallStack) >= maxCallDepth {
			return ErrCallDepth
		}
		m.CallStack = append(m.CallStack, int64(m.PC+1))
		next = int(in.Arg)
	case RET:
		if len(m.CallStack) == 0 {
			return ErrRetEmpty
		}
		next = int(m.CallStack[len(m.CallStack)-1])
		m.CallStack = m.CallStack[:len(m.CallStack)-1]
	case OUT:
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Output = append(m.Output, v)
	case HALT:
		m.Halted = true
		return nil
	default:
		return fmt.Errorf("svm: unknown opcode %d at pc=%d", in.Op, m.PC)
	}
	m.PC = next
	return nil
}

// Run executes until HALT or maxSteps instructions, whichever first.
func (m *VM) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if m.Halted {
			return nil
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	if m.Halted {
		return nil
	}
	return ErrStepLimit
}

// RunSteps executes at most n instructions and reports whether the machine
// halted. It is the unit of interleaving between computation and the
// Starfish runtime (checkpoints are taken between RunSteps slices).
func (m *VM) RunSteps(n int) (halted bool, err error) {
	for i := 0; i < n && !m.Halted; i++ {
		if err := m.Step(); err != nil {
			return false, err
		}
	}
	return m.Halted, nil
}

func boolWord(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Equal reports whether two machines have identical observable state
// (ignoring the simulated architecture). Used to verify that checkpoint →
// convert → restore → resume produces the same computation.
func (m *VM) Equal(o *VM) bool {
	if m.PC != o.PC || m.Halted != o.Halted || m.Steps != o.Steps {
		return false
	}
	if !eqSlice(m.Stack, o.Stack) || !eqSlice(m.CallStack, o.CallStack) ||
		!eqSlice(m.Globals, o.Globals) || !eqSlice(m.Mem, o.Mem) ||
		!eqSlice(m.Output, o.Output) {
		return false
	}
	if len(m.Code) != len(o.Code) {
		return false
	}
	for i := range m.Code {
		if m.Code[i] != o.Code[i] {
			return false
		}
	}
	return true
}

func eqSlice(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
