// Golden fixture for errdrop: no silently discarded errors.
package fixture

import (
	"errors"
	"io"

	"starfish/internal/wire"
)

var errBoom = errors.New("boom")

func mayFail() error       { return errBoom }
func decode() (int, error) { return 0, errBoom }
func pair() (int, int)     { return 0, 0 }

// ---- violations ----

func dropBlank() {
	_ = mayFail() // want "discarded"
}

func dropTuple() int {
	v, _ := decode() // want "discarded"
	return v
}

func dropWritePath(w io.Writer, m *wire.Msg) {
	wire.WriteMsg(w, m) // want "write-path"
}

// ---- compliant ----

func handled() (int, error) {
	if err := mayFail(); err != nil {
		return 0, err
	}
	return decode()
}

func blankNonError() int {
	a, _ := pair() // dropping a non-error is fine
	return a
}

func writePathChecked(w io.Writer, m *wire.Msg) error {
	return wire.WriteMsg(w, m)
}

func allowedDrop() {
	//starfish:allow errdrop fixture: failure only matters to the peer, which times out
	_ = mayFail()
}

func allowedWritePath(w io.Writer, m *wire.Msg) {
	//starfish:allow errdrop fixture: best-effort notification, peer death is detected elsewhere
	wire.WriteMsg(w, m)
}
