package vni

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"starfish/internal/leakcheck"
	"starfish/internal/wire"
)

// transports returns one instance of each transport plus an address factory
// appropriate for it, so every test runs against both implementations.
func transports() []struct {
	name string
	tr   Transport
	addr func(i int) string
} {
	fn := NewFastnet(0)
	return []struct {
		name string
		tr   Transport
		addr func(i int) string
	}{
		{"fastnet", fn, func(i int) string { return fmt.Sprintf("node%d", i) }},
		{"tcp", NewTCP(), func(int) string { return "127.0.0.1:0" }},
	}
}

func TestConnSendRecv(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := tc.tr.Listen(tc.addr(1))
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			type acceptResult struct {
				c   Conn
				err error
			}
			acc := make(chan acceptResult, 1)
			go func() {
				c, err := ln.Accept()
				acc <- acceptResult{c, err}
			}()

			cli, err := tc.tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			ar := <-acc
			if ar.err != nil {
				t.Fatal(ar.err)
			}
			srv := ar.c
			defer srv.Close()

			want := wire.Msg{Type: wire.TData, App: 1, Src: 0, Dst: 1, Tag: 42, Seq: 7, Payload: []byte("ping")}
			if err := cli.Send(&want); err != nil {
				t.Fatal(err)
			}
			got, err := srv.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Tag != 42 || got.Seq != 7 || !bytes.Equal(got.Payload, []byte("ping")) {
				t.Errorf("got %+v", got)
			}

			// And the reverse direction.
			reply := wire.Msg{Type: wire.TData, Tag: 43, Payload: []byte("pong")}
			if err := srv.Send(&reply); err != nil {
				t.Fatal(err)
			}
			got, err = cli.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.Tag != 43 {
				t.Errorf("reverse direction got %+v", got)
			}
		})
	}
}

func TestConnSenderMayReuseBuffer(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			ln, _ := tc.tr.Listen(tc.addr(2))
			defer ln.Close()
			acc := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					acc <- c
				}
			}()
			cli, err := tc.tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			srv := <-acc
			defer srv.Close()

			buf := []byte{1, 1, 1, 1}
			m := wire.Msg{Type: wire.TData, Payload: buf}
			if err := cli.Send(&m); err != nil {
				t.Fatal(err)
			}
			// Scribble over the buffer after Send returned.
			for i := range buf {
				buf[i] = 9
			}
			got, err := srv.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Payload, []byte{1, 1, 1, 1}) {
				t.Errorf("payload corrupted by sender buffer reuse: %v", got.Payload)
			}
		})
	}
}

func TestConnOrdering(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			ln, _ := tc.tr.Listen(tc.addr(3))
			defer ln.Close()
			acc := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					acc <- c
				}
			}()
			cli, err := tc.tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			srv := <-acc
			defer srv.Close()

			const n = 500
			go func() {
				for i := 0; i < n; i++ {
					m := wire.Msg{Type: wire.TData, Seq: uint64(i)}
					if err := cli.Send(&m); err != nil {
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				got, err := srv.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if got.Seq != uint64(i) {
					t.Fatalf("out of order: got seq %d at position %d", got.Seq, i)
				}
			}
		})
	}
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			ln, _ := tc.tr.Listen(tc.addr(4))
			defer ln.Close()
			acc := make(chan Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					acc <- c
				}
			}()
			cli, err := tc.tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			srv := <-acc

			errc := make(chan error, 1)
			go func() {
				_, err := srv.Recv()
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cli.Close()
			select {
			case err := <-errc:
				if err == nil {
					t.Error("Recv returned nil error after peer close")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not unblock after peer close")
			}
			srv.Close()
		})
	}
}

func TestDialUnknownAddress(t *testing.T) {
	fn := NewFastnet(0)
	if _, err := fn.Dial("nowhere"); err == nil {
		t.Error("fastnet Dial to unknown address succeeded")
	}
	tcp := NewTCP()
	if _, err := tcp.Dial("127.0.0.1:1"); err == nil {
		t.Error("tcp Dial to closed port succeeded")
	}
}

func TestFastnetDuplicateListen(t *testing.T) {
	fn := NewFastnet(0)
	if _, err := fn.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fn.Listen("a"); err == nil {
		t.Error("duplicate Listen succeeded")
	}
}

func TestFastnetCrashSeversPeers(t *testing.T) {
	fn := NewFastnet(0)
	ln, _ := fn.Listen("victim")
	acc := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err := fn.Dial("victim")
	if err != nil {
		t.Fatal(err)
	}
	<-acc

	fn.Crash("victim")

	if err := cli.Send(&wire.Msg{Type: wire.TData}); err == nil {
		t.Error("Send to crashed node succeeded")
	}
	if _, err := cli.Recv(); err == nil {
		t.Error("Recv from crashed node succeeded")
	}
	// The address becomes free again (node restart).
	if _, err := fn.Listen("victim"); err != nil {
		t.Errorf("re-Listen after crash failed: %v", err)
	}
}

func TestNICSendReceive(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewNIC(tc.tr, tc.addr(10), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := NewNIC(tc.tr, tc.addr(11), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()

			m := wire.Msg{Type: wire.TData, Tag: 5, Payload: []byte("hi")}
			if err := a.Send(b.Addr(), &m); err != nil {
				t.Fatal(err)
			}
			select {
			case got := <-b.Queue():
				if got.Tag != 5 || string(got.Payload) != "hi" {
					t.Errorf("got %+v", got)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("message never arrived")
			}

			// Reply over the reverse path (separate dial).
			r := wire.Msg{Type: wire.TData, Tag: 6}
			if err := b.Send(a.Addr(), &r); err != nil {
				t.Fatal(err)
			}
			select {
			case got := <-a.Queue():
				if got.Tag != 6 {
					t.Errorf("got %+v", got)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("reply never arrived")
			}
		})
	}
}

func TestNICConcurrentSenders(t *testing.T) {
	for _, tc := range transports() {
		t.Run(tc.name, func(t *testing.T) {
			dst, err := NewNIC(tc.tr, tc.addr(20), 0)
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Close()

			const senders, per = 4, 100
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				src, err := NewNIC(tc.tr, tc.addr(21+s), 0)
				if err != nil {
					t.Fatal(err)
				}
				defer src.Close()
				wg.Add(1)
				go func(src *NIC, id int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m := wire.Msg{Type: wire.TData, Src: wire.Rank(id), Seq: uint64(i)}
						if err := src.Send(dst.Addr(), &m); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(src, s)
			}
			wg.Wait()

			// Per-sender FIFO must hold even with interleaving.
			next := make([]uint64, senders)
			for i := 0; i < senders*per; i++ {
				select {
				case m := <-dst.Queue():
					if m.Seq != next[m.Src] {
						t.Fatalf("sender %d: got seq %d want %d", m.Src, m.Seq, next[m.Src])
					}
					next[m.Src]++
				case <-time.After(5 * time.Second):
					t.Fatalf("only %d/%d messages arrived", i, senders*per)
				}
			}
		})
	}
}

func TestNICStats(t *testing.T) {
	fn := NewFastnet(0)
	a, _ := NewNIC(fn, "sa", 0)
	defer a.Close()
	b, _ := NewNIC(fn, "sb", 0)
	defer b.Close()

	for i := 0; i < 3; i++ {
		a.Send(b.Addr(), &wire.Msg{Type: wire.TData, Payload: []byte("xy")})
	}
	a.Send(b.Addr(), &wire.Msg{Type: wire.TControl})

	deadline := time.After(5 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case <-b.Queue():
		case <-deadline:
			t.Fatal("messages missing")
		}
	}
	sent, _ := a.Stats().Snapshot()
	_, recv := b.Stats().Snapshot()
	if sent[wire.TData] != 3 || sent[wire.TControl] != 1 {
		t.Errorf("sender stats = %v", sent)
	}
	if recv[wire.TData] != 3 || recv[wire.TControl] != 1 {
		t.Errorf("receiver stats = %v", recv)
	}
}

func TestNICCloseIdempotentAndRejects(t *testing.T) {
	fn := NewFastnet(0)
	a, _ := NewNIC(fn, "ca", 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("anywhere", &wire.Msg{Type: wire.TData}); err != ErrClosed {
		t.Errorf("Send after Close: %v, want ErrClosed", err)
	}
	if err := a.Connect("anywhere"); err != ErrClosed {
		t.Errorf("Connect after Close: %v, want ErrClosed", err)
	}
}

func TestStageTimer(t *testing.T) {
	st := NewStageTimer()
	st.Add(StageMPISend, 10*time.Microsecond)
	st.Add(StageMPISend, 30*time.Microsecond)
	if got := st.Mean(StageMPISend); got != 20*time.Microsecond {
		t.Errorf("Mean = %v, want 20µs", got)
	}
	if got := st.Count(StageMPISend); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := st.Mean(StageAppRecv); got != 0 {
		t.Errorf("unrecorded stage Mean = %v, want 0", got)
	}
	st.Reset()
	if st.Count(StageMPISend) != 0 {
		t.Error("Reset did not clear counts")
	}

	// A nil timer must be safe everywhere (profiling off).
	var nilT *StageTimer
	nilT.Add(StageVNISend, time.Second)
	if nilT.Mean(StageVNISend) != 0 || nilT.Count(StageVNISend) != 0 {
		t.Error("nil StageTimer misbehaved")
	}
	nilT.Reset()
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < StageCount; s++ {
		name := s.String()
		if name == "" || name == "unknown-stage" || seen[name] {
			t.Errorf("stage %d has bad name %q", s, name)
		}
		seen[name] = true
	}
}

func TestQuickFastnetPayloadIntegrity(t *testing.T) {
	fn := NewFastnet(0)
	ln, _ := fn.Listen("q")
	acc := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err := fn.Dial("q")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc
	defer cli.Close()

	prop := func(payload []byte, tag int32, seq uint64) bool {
		m := wire.Msg{Type: wire.TData, Tag: tag, Seq: seq, Payload: payload}
		if err := cli.Send(&m); err != nil {
			return false
		}
		got, err := srv.Recv()
		if err != nil {
			return false
		}
		return got.Tag == tag && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// countingTransport counts dials and can fail the first failN of them,
// for exercising the NIC's single-flight and retry logic.
type countingTransport struct {
	Transport
	mu    sync.Mutex
	dials int
	failN int
}

func (c *countingTransport) Dial(addr string) (Conn, error) {
	c.mu.Lock()
	c.dials++
	fail := c.dials <= c.failN
	c.mu.Unlock()
	if fail {
		return nil, ErrNoRoute
	}
	return c.Transport.Dial(addr)
}

func (c *countingTransport) dialCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dials
}

func TestNICConnectSingleFlight(t *testing.T) {
	leakcheck.Check(t, 0)
	fn := NewFastnet(0)
	peer, err := NewNIC(fn, "peer", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	ct := &countingTransport{Transport: fn}
	n, err := NewNIC(ct, "self", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Many goroutines race Connect to the same address: exactly one dial
	// must happen, and nobody may observe an error.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- n.Connect("peer")
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := ct.dialCount(); got != 1 {
		t.Fatalf("%d dials for 32 concurrent Connects, want 1", got)
	}
}

func TestNICConnectRetriesTransientFailure(t *testing.T) {
	leakcheck.Check(t, 0)
	fn := NewFastnet(0)
	peer, err := NewNIC(fn, "peer", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	ct := &countingTransport{Transport: fn, failN: 2}
	n, err := NewNIC(ct, "self", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetDialRetry(4, 100*time.Microsecond, time.Second)

	if err := n.Connect("peer"); err != nil {
		t.Fatalf("Connect with 2 transient failures: %v", err)
	}
	if got := ct.dialCount(); got != 3 {
		t.Fatalf("%d dials, want 3 (two failures + success)", got)
	}
}

func TestNICConnectCooldownFailsFast(t *testing.T) {
	leakcheck.Check(t, 0)
	fn := NewFastnet(0)
	ct := &countingTransport{Transport: fn, failN: 1 << 30}
	n, err := NewNIC(ct, "self", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetDialRetry(3, 100*time.Microsecond, time.Minute)

	if err := n.Connect("nowhere"); err != ErrNoRoute {
		t.Fatalf("Connect to dead addr: %v, want ErrNoRoute", err)
	}
	dialsAfterRound := ct.dialCount()
	if dialsAfterRound != 3 {
		t.Fatalf("%d dials in first round, want 3", dialsAfterRound)
	}
	// During the cooldown the cached error comes back without dialing.
	if err := n.Connect("nowhere"); err != ErrNoRoute {
		t.Fatalf("cooldown Connect: %v, want ErrNoRoute", err)
	}
	if got := ct.dialCount(); got != dialsAfterRound {
		t.Fatalf("cooldown Connect dialed (%d total)", got)
	}
}

func TestNICCloseDuringDialBackoff(t *testing.T) {
	fn := NewFastnet(0)
	ct := &countingTransport{Transport: fn, failN: 1 << 30}
	n, err := NewNIC(ct, "self", 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetDialRetry(10, 50*time.Millisecond, time.Minute)

	done := make(chan error, 1)
	go func() { done <- n.Connect("nowhere") }()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Connect succeeded against a dead addr")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Connect did not return after NIC close")
	}
}
