// Command starfish-vet runs the repo's custom static checks — poolcheck,
// lockcheck, goleak, errdrop, detcheck, lockorder, evcheck — over module
// packages (test files excluded).
//
// Usage:
//
//	starfish-vet [-checks poolcheck,lockcheck] [-json] [-stats file] [packages...]
//	starfish-vet -dir path/to/bare/dir
//
// Exit status is 1 when any diagnostic is reported. The -dir mode
// analyzes a directory of Go files outside the module package graph (used
// by scripts/check.sh to prove each analyzer still fires on a seeded
// violation). -json switches the findings to one JSON record per line
// (file/line/col/check/message); -stats writes a JSON summary (packages,
// functions summarized, findings by check, wall time) to a file for the
// bench-tracking harness. Suppress an individual finding with a
// `//starfish:allow <check> <reason>` comment on or above the line.
//
// All packages are loaded and analyzed as one program: the analyzers see
// cross-package call-graph summaries, and per-package passes run on a
// bounded worker pool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"starfish/internal/analysis"
	"starfish/internal/analysis/detcheck"
	"starfish/internal/analysis/errdrop"
	"starfish/internal/analysis/evcheck"
	"starfish/internal/analysis/goleak"
	"starfish/internal/analysis/lockcheck"
	"starfish/internal/analysis/lockorder"
	"starfish/internal/analysis/poolcheck"
)

var all = []*analysis.Analyzer{
	poolcheck.Analyzer,
	lockcheck.Analyzer,
	goleak.Analyzer,
	errdrop.Analyzer,
	detcheck.Analyzer,
	lockorder.Analyzer,
	evcheck.Analyzer,
}

func main() {
	dir := flag.String("dir", "", "analyze the .go files of one bare directory instead of module packages")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON records, one per line")
	statsFile := flag.String("stats", "", "write a JSON run summary (packages, functions, findings, wall time) to this file")
	workers := flag.Int("workers", 0, "max packages analyzed concurrently (default: GOMAXPROCS, capped at 8)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: starfish-vet [-checks names] [-json] [-stats file] [packages...] | starfish-vet -dir path\n\nchecks:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	enabled := all
	if *checks != "" {
		enabled = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					enabled = append(enabled, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "starfish-vet: unknown check %q\n", name)
				os.Exit(2)
			}
		}
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
		if *workers > 8 {
			*workers = 8
		}
	}

	start := time.Now()
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(root)

	var pkgs []*analysis.Package
	progRoot := root
	if *dir != "" {
		p, err := loader.LoadDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
			os.Exit(2)
		}
		pkgs = []*analysis.Package{p}
		progRoot = "" // bare directory: no repo-wide cross-references
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
			os.Exit(2)
		}
	}

	prog := analysis.BuildProgram(progRoot, pkgs)
	diags, err := analysis.CheckProgram(prog, enabled, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starfish-vet: %v\n", err)
		os.Exit(2)
	}

	byCheck := make(map[string]int)
	fset := prog.Fset()
	for _, d := range diags {
		byCheck[d.Check]++
		pos := fset.Position(d.Pos)
		rel := pos.Filename
		if r, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		if *jsonOut {
			//starfish:allow errdrop marshaling a map of strings and ints cannot fail
			rec, _ := json.Marshal(map[string]any{
				"file": rel, "line": pos.Line, "col": pos.Column,
				"check": d.Check, "message": d.Message,
			})
			fmt.Println(string(rec))
		} else {
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Check, d.Message)
		}
	}

	if *statsFile != "" {
		findings := make(map[string]int, len(enabled))
		for _, a := range enabled {
			findings[a.Name] = byCheck[a.Name]
		}
		//starfish:allow errdrop marshaling a map of strings and ints cannot fail
		stats, _ := json.MarshalIndent(map[string]any{
			"packages_analyzed":    len(pkgs),
			"functions_summarized": prog.NumFuncs(),
			"findings_by_check":    findings,
			"findings_total":       len(diags),
			"wall_ms":              time.Since(start).Milliseconds(),
		}, "", "  ")
		if err := os.WriteFile(*statsFile, append(stats, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "starfish-vet: writing stats: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module directory, so the tool works
// from any subdirectory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
