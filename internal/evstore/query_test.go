package evstore

import (
	"strings"
	"testing"
	"time"
)

// TestLexGolden pins the token stream of representative queries.
func TestLexGolden(t *testing.T) {
	cases := []struct {
		in   string
		want []token // pos ignored when -1
	}{
		{"", []token{{kind: tokEOF}}},
		{"component=gcs", []token{
			{tokKey, "component", 0}, {tokOp, "=", 9}, {tokValue, "gcs", 10}, {kind: tokEOF},
		}},
		{"  kind!=view-change\tseq>=42 ", []token{
			{tokKey, "kind", 2}, {tokOp, "!=", 6}, {tokValue, "view-change", 8},
			{tokKey, "seq", 20}, {tokOp, ">=", 23}, {tokValue, "42", 25}, {kind: tokEOF},
		}},
		{`msg="boom now" err="a \"b\""`, []token{
			{tokKey, "msg", 0}, {tokOp, "=", 3}, {tokValue, "boom now", 4},
			{tokKey, "err", 15}, {tokOp, "=", 18}, {tokValue, `a "b"`, 19}, {kind: tokEOF},
		}},
	}
	for _, tc := range cases {
		got, err := lexQuery(tc.in)
		if err != nil {
			t.Fatalf("lex %q: %v", tc.in, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("lex %q: got %d tokens %v, want %d", tc.in, len(got), got, len(tc.want))
		}
		for i := range got {
			w := tc.want[i]
			if got[i].kind != w.kind || got[i].text != w.text {
				t.Errorf("lex %q token %d: got {%d %q}, want {%d %q}",
					tc.in, i, got[i].kind, got[i].text, w.kind, w.text)
			}
			if w.kind != tokEOF && got[i].pos != w.pos {
				t.Errorf("lex %q token %d: pos %d, want %d", tc.in, i, got[i].pos, w.pos)
			}
		}
	}
}

// TestParseGolden pins parse results via the canonical String form.
func TestParseGolden(t *testing.T) {
	cases := []struct{ in, canon string }{
		{"", ""},
		{"component=gcs kind=view-change", "component=gcs kind=view-change"},
		{"  seq>10   seq<=20 ", "seq>10 seq<=20"},
		{"node!=3 rank>=1 app=7", "node!=3 rank>=1 app=7"},
		{"app=ring since=5s limit=100", "app=ring since=5s limit=100"},
		{`msg="boom now"`, `msg="boom now"`},
		{"limit=3 component=rstore", "component=rstore limit=3"},
	}
	for _, tc := range cases {
		q, err := ParseQuery(tc.in)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.in, err)
		}
		if got := q.String(); got != tc.canon {
			t.Errorf("parse %q: canonical %q, want %q", tc.in, got, tc.canon)
		}
		// Canonical form must reparse to itself.
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("reparse %q: got %q", q.String(), q2.String())
		}
	}
}

// TestParseErrors pins rejection of malformed queries.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"component=",        // missing value
		"=gcs",              // missing key
		"component gcs",     // missing operator
		"component>gcs",     // ordering op on string key
		"seq>abc",           // non-numeric comparison
		"rank=x",            // non-numeric rank
		"since=abc",         // bad duration
		"since=-5s",         // negative duration
		"since>5s",          // since takes =
		"limit=0",           // limit wants >= 1
		"limit=x",           // bad limit
		"app>ring",          // ordering op on app name
		`msg="unterminated`, // unterminated quote
		"foo>bar",           // ordering op on attribute
		"0key=v",            // key starts with digit
	}
	for _, in := range bad {
		if q, err := ParseQuery(in); err == nil {
			t.Errorf("parse %q: expected error, got %q", in, q.String())
		}
	}
	// Odd but legal: a bare value may itself contain '='.
	if _, err := ParseQuery("k==v"); err != nil {
		t.Errorf("parse k==v: %v (bare values may contain '=')", err)
	}
}

// TestMatch exercises the evaluator over one record.
func TestMatch(t *testing.T) {
	now := time.Now()
	r := Record{
		Seq: 42, WriteTS: now.Add(-2 * time.Second).UnixNano(), Node: 3,
		Component: "gcs", Kind: "view-change", App: 7, Rank: 1,
		KV: []KV{{"view", "4"}, {"coord", "1"}},
	}
	yes := []string{
		"", "component=gcs", "kind=view-change", "node=3", "app=7", "rank=1",
		"seq>41 seq<43", "seq>=42 seq<=42", "view=4", "coord!=2", "missing!=x",
		"since=5s", "component!=rstore", "rank>=1", "app>6",
	}
	no := []string{
		"component=rstore", "kind!=view-change", "node=4", "app=8", "rank=0",
		"seq>42", "seq<42", "view=5", "coord!=1", "missing=x", "since=1s",
		"app=ring", // unresolved name matches nothing
	}
	for _, in := range yes {
		q, err := ParseQuery(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		if !q.Match(&r, now) {
			t.Errorf("query %q should match %s", in, r.String())
		}
	}
	for _, in := range no {
		q, err := ParseQuery(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		if q.Match(&r, now) {
			t.Errorf("query %q should not match %s", in, r.String())
		}
	}

	// Rank-unscoped records match only rank!= terms.
	nr := Ev("heal")
	if q, _ := ParseQuery("rank=0"); q.Match(&nr, now) {
		t.Error("rank=0 matched a rank-unscoped record")
	}
	if q, _ := ParseQuery("rank!=0"); !q.Match(&nr, now) {
		t.Error("rank!=0 should match a rank-unscoped record")
	}
}

// TestResolveApps checks name → id rewriting.
func TestResolveApps(t *testing.T) {
	q, err := ParseQuery("component=gcs app=ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.ResolveApps(func(name string) (uint64, bool) {
		if name == "ring" {
			return 7, true
		}
		return 0, false
	}); err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "component=gcs app=7" {
		t.Errorf("resolved query = %q", got)
	}
	q2, _ := ParseQuery("app=nosuch")
	if err := q2.ResolveApps(func(string) (uint64, bool) { return 0, false }); err == nil {
		t.Error("unknown app name should fail resolution")
	}
}

// TestLineSeq checks the tail client's resume-point parser.
func TestLineSeq(t *testing.T) {
	r := EvApp("submit", 7, F("name", "ring"))
	r.Seq = 99
	if seq, ok := LineSeq(r.String()); !ok || seq != 99 {
		t.Errorf("LineSeq(%q) = %d,%v", r.String(), seq, ok)
	}
	for _, bad := range []string{"", "ts=1", "seq=x foo", "nope"} {
		if _, ok := LineSeq(bad); ok {
			t.Errorf("LineSeq(%q) should fail", bad)
		}
	}
}

// FuzzParseQuery: the parser must never panic, and anything it accepts
// must round-trip through the canonical form.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"", "component=gcs kind=view-change app=ring since=5s",
		"seq>10 seq<=20 limit=5", `msg="boom now"`, "a=b c!=d",
		"since=1h30m", "k==v", "=", "\"", `x="\"`, "app>1 rank<2 node>=3",
		strings.Repeat("k=v ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := ParseQuery(in)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, canon, q2.String())
		}
	})
}
