package wire

import (
	"fmt"
	"math/bits"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// BufPool is a size-classed free list of payload/frame buffers for the fast
// data path. Buffers are recycled through per-class sync.Pools, so a warm
// ping-pong or collective performs zero payload allocations: the buffer a
// receiver releases is the buffer the next send checks out.
//
// Ownership discipline (see also Msg.Pooled):
//
//   - Get returns a buffer with exactly one owner: the caller.
//   - Ownership moves with the buffer (sender -> transport -> receiver);
//     the previous owner must not touch the buffer again after handing it
//     off.
//   - The final owner calls Put (or Msg.Release) exactly once, or simply
//     drops the buffer — an unreleased buffer is garbage-collected like any
//     other allocation, so forgetting to release is safe, merely a missed
//     reuse.
//   - Put accepts only buffers whose capacity is one of the pool's size
//     classes; anything else is ignored, so foreign buffers cannot poison
//     the free lists.
//
// Under `go test` a guard mode is enabled automatically (see SetPoolGuard):
// Put panics on a buffer that is not currently checked out (double release,
// or release of a foreign buffer), and released buffers are poisoned with
// 0xDB so use-after-release surfaces as corrupted data — with -race, as a
// data race against the poisoning write.
type BufPool struct {
	classes [poolClassCount]sync.Pool // each holds *[]byte with cap == poolClassSize(i)
	// headers holds spare *[]byte boxes so the steady-state Get/Put cycle
	// allocates nothing (storing a bare slice in a sync.Pool would box it
	// on every Put).
	headers sync.Pool

	gets, puts, misses atomic.Uint64
}

// Size classes are powers of two from 256 B to MaxPayload (16 MiB).
const (
	poolMinShift   = 8
	poolMaxShift   = 24 // 1<<24 == MaxPayload
	poolClassCount = poolMaxShift - poolMinShift + 1
)

func poolClassSize(i int) int { return 1 << (poolMinShift + i) }

// poolClassFor returns the index of the smallest class holding n bytes, or
// -1 if n exceeds the largest class.
func poolClassFor(n int) int {
	if n <= 1<<poolMinShift {
		return 0
	}
	if n > 1<<poolMaxShift {
		return -1
	}
	return bits.Len(uint(n-1)) - poolMinShift
}

// Get returns a buffer of length n with one of the pool's class capacities.
// Contents are unspecified (in guard mode, freshly recycled buffers carry
// the poison pattern until overwritten). The caller owns the buffer and
// must eventually Put it back — or drop it — exactly once. n == 0 returns
// nil; n beyond the largest class falls back to a plain allocation that Put
// will ignore.
func (p *BufPool) Get(n int) []byte {
	b, _ := p.GetAlloc(n)
	return b
}

// GetAlloc is Get, additionally reporting whether the pool missed and had
// to allocate — the hook for per-stage allocation counters.
func (p *BufPool) GetAlloc(n int) (b []byte, allocated bool) {
	if n <= 0 {
		return nil, false
	}
	ci := poolClassFor(n)
	if ci < 0 {
		return make([]byte, n), true
	}
	p.gets.Add(1)
	if hp, _ := p.classes[ci].Get().(*[]byte); hp != nil {
		b := (*hp)[:n]
		*hp = nil
		p.headers.Put(hp)
		guardCheckout(b)
		return b, false
	}
	p.misses.Add(1)
	b = make([]byte, n, poolClassSize(ci))
	guardCheckout(b)
	return b, true
}

// Put returns a buffer obtained from Get to its free list. Buffers whose
// capacity is not a pool class (including Get's oversized fallback) are
// ignored. After Put the caller no longer owns the buffer and must not
// read, write, or Put it again.
func (p *BufPool) Put(b []byte) {
	c := cap(b)
	ci := poolClassFor(c)
	if c == 0 || ci < 0 || poolClassSize(ci) != c {
		return
	}
	guardCheckin(b)
	p.puts.Add(1)
	hp, _ := p.headers.Get().(*[]byte)
	if hp == nil {
		hp = new([]byte)
	}
	*hp = b[:0:c]
	p.classes[ci].Put(hp)
}

// Stats returns the pool's cumulative checkout, release, and miss counts.
// gets-puts is the number of buffers currently owned by callers (or
// dropped to the GC); misses counts Gets that had to allocate.
func (p *BufPool) Stats() (gets, puts, misses uint64) {
	return p.gets.Load(), p.puts.Load(), p.misses.Load()
}

// Pool is the process-global buffer pool used by the fast data path
// (transport framing, MPI payload staging).
var Pool BufPool

// GetBuf returns a length-n buffer from the global Pool.
func GetBuf(n int) []byte { return Pool.Get(n) }

// PutBuf releases a buffer obtained from GetBuf back to the global Pool.
func PutBuf(b []byte) { Pool.Put(b) }

// ---- guard mode ----

var poolGuard struct {
	on atomic.Bool
	mu sync.Mutex
	// live is keyed by the buffer's base address as a uintptr, NOT a
	// pointer: a buffer that is checked out and then dropped (a legal way
	// to give one up) must stay collectable, so the registry may not
	// retain it. The cost is a stale entry per dropped buffer — at worst a
	// missed diagnostic if a later allocation reuses the address, never a
	// false panic on a correct program.
	live map[uintptr]struct{}
}

func init() {
	// Test binaries are named <pkg>.test; enable ownership checking and
	// poisoning for every `go test` run without any per-test setup.
	if strings.HasSuffix(os.Args[0], ".test") {
		poolGuard.on.Store(true)
	}
	poolGuard.live = make(map[uintptr]struct{})
}

// SetPoolGuard switches the pool's guard/poison mode and returns the
// previous setting. Guard mode is on by default under `go test`. Toggling
// it while buffers are checked out makes the bookkeeping inconsistent, so
// do it only around quiescent points.
func SetPoolGuard(on bool) bool {
	prev := poolGuard.on.Load()
	poolGuard.on.Store(on)
	if !prev && on {
		poolGuard.mu.Lock()
		poolGuard.live = make(map[uintptr]struct{})
		poolGuard.mu.Unlock()
	}
	return prev
}

// PoolGuardEnabled reports whether guard mode is active.
func PoolGuardEnabled() bool { return poolGuard.on.Load() }

func guardKey(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[:1][0])) }

func guardCheckout(b []byte) {
	if !poolGuard.on.Load() {
		return
	}
	poolGuard.mu.Lock()
	poolGuard.live[guardKey(b)] = struct{}{}
	poolGuard.mu.Unlock()
}

func guardCheckin(b []byte) {
	if !poolGuard.on.Load() {
		return
	}
	k := guardKey(b)
	poolGuard.mu.Lock()
	_, ok := poolGuard.live[k]
	if ok {
		delete(poolGuard.live, k)
	}
	poolGuard.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("wire: Put of a %d-byte buffer that is not checked out (double release, or release of a buffer not from the pool)", cap(b)))
	}
	// Poison so a stale reference reads garbage instead of silently
	// observing the next owner's data (and races with the next owner
	// under -race).
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xDB
	}
}
