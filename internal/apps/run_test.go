package apps

import (
	"fmt"
	"sync"
	"testing"

	"starfish/internal/mpi"
	"starfish/internal/proc"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// driveApps runs one instance of an application per rank to completion,
// directly on MPI communicators (no daemon/runtime), and returns the app
// instances for inspection.
func driveApps(t *testing.T, size int, mk func(rank wire.Rank) proc.App) []proc.App {
	t.Helper()
	fn := vni.NewFastnet(0)
	addrs := make(map[wire.Rank]string, size)
	nics := make([]*vni.NIC, size)
	for i := 0; i < size; i++ {
		nic, err := vni.NewNIC(fn, fmt.Sprintf("drv-%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		nics[i] = nic
		addrs[wire.Rank(i)] = nic.Addr()
		t.Cleanup(func() { nic.Close() })
	}
	instances := make([]proc.App, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		comm, err := mpi.New(mpi.Config{App: 1, Rank: wire.Rank(i), Size: size, NIC: nics[i], Addrs: addrs})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(comm.Close)
		app := mk(wire.Rank(i))
		instances[i] = app
		ctx := &proc.Ctx{Comm: comm, Rank: wire.Rank(i), Size: size}
		wg.Add(1)
		go func(i int, app proc.App, ctx *proc.Ctx) {
			defer wg.Done()
			if err := app.Init(ctx); err != nil {
				errs[i] = err
				return
			}
			for steps := 0; steps < 1<<20; steps++ {
				done, err := app.Step(ctx)
				if err != nil {
					errs[i] = err
					return
				}
				if done {
					return
				}
			}
			errs[i] = fmt.Errorf("rank %d: step limit", i)
		}(i, app, ctx)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return instances
}

func TestRingDirectDrive(t *testing.T) {
	for _, size := range []int{1, 2, 4} {
		insts := driveApps(t, size, func(wire.Rank) proc.App {
			a, _ := DecodeRing(RingArgs(25))
			return a
		})
		// Self-verification happened inside Step; also check values.
		for r, inst := range insts {
			ring := inst.(*Ring)
			want := ((int64(r)-25)%int64(size)+int64(size))%int64(size) + 25
			if ring.Value() != want {
				t.Errorf("size %d rank %d: val %d, want %d", size, r, ring.Value(), want)
			}
		}
	}
}

func TestJacobiDirectDrive(t *testing.T) {
	// Uneven block sizes (10 points over 3 ranks) and enough sweeps for a
	// non-trivial profile; rank 0 verifies against the sequential run
	// inside Step.
	driveApps(t, 3, func(wire.Rank) proc.App {
		a, _ := DecodeJacobi(JacobiArgs(10, 300, 2.0, -1.0))
		return a
	})
	driveApps(t, 1, func(wire.Rank) proc.App {
		a, _ := DecodeJacobi(JacobiArgs(7, 50, 1.0, 0.0))
		return a
	})
}

func TestPartitionDirectDrive(t *testing.T) {
	insts := driveApps(t, 3, func(wire.Rank) proc.App {
		a, _ := DecodePartition(PartitionArgs(31, 100))
		return a
	})
	total := 0
	for _, inst := range insts {
		total += inst.(*Partition).Processed()
	}
	if total != 31 {
		t.Errorf("chunks processed = %d, want 31 (exactly once each)", total)
	}
}

func TestPingPongDirectDrive(t *testing.T) {
	insts := driveApps(t, 2, func(wire.Rank) proc.App {
		a, _ := DecodePingPong(PingPongArgs([]int{1, 256}, 5, false))
		return a
	})
	pp := insts[0].(*PingPong)
	if len(pp.Results) != 2 {
		t.Fatalf("results = %+v", pp.Results)
	}
	for i, want := range []int{1, 256} {
		if pp.Results[i].Size != want || pp.Results[i].RTT <= 0 {
			t.Errorf("result[%d] = %+v", i, pp.Results[i])
		}
	}
}

func TestPingPongRequiresTwoRanks(t *testing.T) {
	a, _ := DecodePingPong(PingPongArgs([]int{1}, 1, false))
	ctx := &proc.Ctx{Rank: 0, Size: 1}
	if err := a.Init(ctx); err == nil {
		t.Error("single-rank pingpong accepted")
	}
}

func TestSizerDirectDrive(t *testing.T) {
	insts := driveApps(t, 1, func(wire.Rank) proc.App {
		a, _ := DecodeSizer(SizerArgsSleep(4096, 5, 0))
		return a
	})
	s := insts[0].(*Sizer)
	if s.step != 5 {
		t.Errorf("steps = %d", s.step)
	}
}
