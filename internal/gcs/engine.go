package gcs

import (
	"fmt"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/gossip"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// logKeep is how many recent sequenced messages each member retains for
// coordinator-failover retransmission.
const logKeep = 512

// hasQuorum reports whether `remaining` members out of a view of `total`
// form a strict majority — the primary-partition condition for
// crash-driven view changes. A single-member view always has quorum, and
// in a two-member view the survivor is allowed to continue (the classic
// two-node ambiguity is resolved in favour of availability, as daemons
// share a checkpoint store rather than contending for one resource).
func hasQuorum(remaining, total int) bool {
	if total <= 2 {
		return remaining >= 1
	}
	return 2*remaining > total
}

// chooseCoord elects the coordinator of a new view: the previous
// coordinator keeps the role while it survives, otherwise the lowest-id
// surviving member takes over. Sticking with the survivor (rather than
// always re-electing the lowest global id) keeps per-app group
// coordinators where their groups put them — a group whose lowest-id
// member departed, or that was created by a high-id node, still elects
// deterministically from its own view instead of thrashing the sequencer
// role on every membership change.
func chooseCoord(prev wire.NodeID, members []wire.NodeID) wire.NodeID {
	for _, m := range members { // sorted ascending
		if m == prev {
			return m
		}
	}
	return members[0]
}

// Endpoint is one member of a process group.
type Endpoint struct {
	cfg Config
	nic *vni.NIC
	evq *equeue

	cmds chan command
	stop chan struct{}
	dead chan struct{}
}

type cmdKind uint8

const (
	cmdCast cmdKind = iota + 1
	cmdSend
	cmdLeave
	cmdView
	cmdReportDead
	cmdReportAlive
)

type command struct {
	kind    cmdKind
	to      wire.NodeID
	payload []byte
	reply   chan error
	viewOut chan View
}

// engine holds all protocol state; it is owned exclusively by the run
// goroutine, so none of it needs locking.
type engine struct {
	ep   *Endpoint
	cfg  Config
	nic  *vni.NIC
	view View
	left bool

	// delivery
	delivered  uint64
	pendingDel map[uint64]seqMsg
	log        map[uint64]seqMsg
	lastSender map[wire.NodeID]uint64 // dedup: highest delivered senderSeq

	// sending
	nextSenderSeq uint64
	pendingCasts  []seqMsg // unconfirmed own casts (Seq unset)

	// coordinator
	nextSeq   uint64
	lastHeard map[wire.NodeID]time.Time

	// member-side failure detection
	lastCoordHeard time.Time
	suspected      map[wire.NodeID]bool
	// announced dedups suspicion event records (per suspect, per view) so
	// the 10ms tick loop does not flood the event plane while a removal
	// is quorum-blocked.
	announced map[wire.NodeID]bool

	// failover candidate state
	syncing      bool
	syncFor      wire.NodeID // the coordinator this sync is replacing
	syncStarted  time.Time
	syncResps    map[wire.NodeID]syncResp
	syncTargets  map[wire.NodeID]bool
	failoverWait time.Time // non-candidate: when we started waiting for the candidate

	// gap repair
	lastRetransReq time.Time

	// gossip failure detection (UseGossip): replaces the heartbeat timers
	// above; e.suspected is recomputed from fd verdicts each tick.
	fd *gossip.Detector
	// gap beacon (gossip/external modes): the coordinator re-advertises its
	// highest sequenced slot for a bounded window after sequencing activity,
	// so a member that lost the final kDeliver of a burst still notices the
	// gap. lastSeqAt tracks the activity window; lastBeacon rate-limits.
	lastSeqAt  time.Time
	lastBeacon time.Time
}

type syncResp struct {
	delivered uint64
	entries   []seqMsg
}

// Join creates an endpoint and joins (or creates) the group. It blocks
// until the first view is known, and returns an endpoint whose Events
// channel starts with that view.
func Join(cfg Config) (*Endpoint, error) {
	cfg = cfg.withDefaults()
	nic, err := vni.NewNIC(cfg.Transport, cfg.Addr, 0)
	if err != nil {
		return nil, err
	}
	ep := &Endpoint{
		cfg:  cfg,
		nic:  nic,
		evq:  newEqueue(),
		cmds: make(chan command),
		stop: make(chan struct{}),
		dead: make(chan struct{}),
	}
	eng := &engine{
		ep:         ep,
		cfg:        cfg,
		nic:        nic,
		pendingDel: make(map[uint64]seqMsg),
		log:        make(map[uint64]seqMsg),
		lastSender: make(map[wire.NodeID]uint64),
		lastHeard:  make(map[wire.NodeID]time.Time),
		suspected:  make(map[wire.NodeID]bool),
	}
	if cfg.UseGossip {
		eng.fd = gossip.New(gossip.Config{
			Self: cfg.Node,
			Seed: cfg.GossipSeed,
			Params: gossip.Params{
				ProbeEvery:     cfg.GossipEvery,
				SuspectAfter:   cfg.SuspectAfter,
				IndirectFanout: cfg.GossipFanout,
			},
			Events: cfg.GossipEvents,
		})
	}

	if cfg.Contact == "" {
		// Create a new singleton group.
		v := View{
			ID:      1,
			Coord:   cfg.Node,
			Members: []wire.NodeID{cfg.Node},
			Addrs:   map[wire.NodeID]string{cfg.Node: nic.Addr()},
		}
		eng.view = v
		eng.delivered = 1
		eng.nextSeq = 2
		eng.lastCoordHeard = time.Now()
		if eng.fd != nil {
			eng.fd.SetMembers(v.Members)
		}
		ep.evq.push(Event{Kind: EView, View: v.Clone()})
	} else if err := eng.joinExisting(); err != nil {
		nic.Close()
		ep.evq.close()
		return nil, err
	}

	go eng.run()
	return ep, nil
}

// joinExisting performs the synchronous join handshake with the contact.
func (e *engine) joinExisting() error {
	req := wire.NewWriter(16)
	req.U32(uint32(e.cfg.Node)).String(e.nic.Addr())

	deadline := time.Now().Add(50 * e.cfg.HeartbeatEvery)
	attempt := 0
	for time.Now().Before(deadline) {
		attempt++
		m := wire.Msg{Type: wire.TControl, Kind: kJoinReq, Src: wire.Rank(e.cfg.Node), Payload: req.Bytes()}
		if err := e.nic.Send(e.cfg.Contact, &m); err != nil {
			// Deliberate backoff: the contact may still be starting up;
			// retry at heartbeat pace until the join deadline.
			time.Sleep(e.cfg.HeartbeatEvery)
			continue
		}
		// Wait for the welcome; requeue-worthy traffic cannot arrive
		// before it on the coordinator connection (FIFO), and any stray
		// deliveries with seq > welcome seq are buffered by handleMsg
		// after the loop starts.
		timer := time.NewTimer(10 * e.cfg.HeartbeatEvery)
		for {
			select {
			case in := <-e.nic.Queue():
				if in.Type == wire.TControl && in.Kind == kWelcome {
					timer.Stop()
					return e.applyWelcome(in)
				}
				// Not the welcome (e.g. an early heartbeat); process it
				// once the engine runs. Deliveries before the welcome
				// can only have seq <= welcome seq and will be ignored,
				// so dropping anything but kDeliver here is safe; buffer
				// deliveries.
				if in.Type == wire.TControl && in.Kind == kDeliver {
					if sm, err := decodeSeqMsg(in.Payload); err == nil {
						e.pendingDel[sm.Seq] = sm
					}
				}
				continue
			case <-timer.C:
			}
			break
		}
	}
	return fmt.Errorf("%w: no welcome from %q", ErrJoin, e.cfg.Contact)
}

func (e *engine) applyWelcome(m wire.Msg) error {
	r := wire.NewReader(m.Payload)
	seq := r.U64()
	viewBytes := r.Bytes32()
	state := append([]byte(nil), r.Bytes32()...)
	if r.Err() != nil {
		return fmt.Errorf("%w: bad welcome: %v", ErrJoin, r.Err())
	}
	v, err := decodeView(viewBytes)
	if err != nil {
		return fmt.Errorf("%w: bad welcome view: %v", ErrJoin, err)
	}
	e.view = v
	e.delivered = seq
	e.lastCoordHeard = time.Now()
	if e.fd != nil {
		e.fd.SetMembers(v.Members)
	}
	ev := Event{Kind: EView, View: v.Clone()}
	if len(state) > 0 {
		ev.State = state
	}
	e.ep.evq.push(ev)
	// Flush deliveries that raced ahead of the welcome.
	e.drainPending()
	return nil
}

// ---- public API ----

// Events returns the ordered stream of group events. The channel closes
// after Close/Leave (or after this member is excluded from the group).
func (ep *Endpoint) Events() <-chan Event { return ep.evq.out }

// Node returns this endpoint's id.
func (ep *Endpoint) Node() wire.NodeID { return ep.cfg.Node }

// Addr returns this endpoint's transport address.
func (ep *Endpoint) Addr() string { return ep.nic.Addr() }

// Cast multicasts payload to the group with total-order semantics. The
// message is also delivered back to the caller through Events.
func (ep *Endpoint) Cast(payload []byte) error {
	return ep.do(command{kind: cmdCast, payload: payload})
}

// Send delivers payload to one member (FIFO per pair, unordered relative
// to casts).
func (ep *Endpoint) Send(to wire.NodeID, payload []byte) error {
	return ep.do(command{kind: cmdSend, to: to, payload: payload})
}

// View returns the endpoint's current view.
func (ep *Endpoint) View() View {
	c := command{kind: cmdView, viewOut: make(chan View, 1), reply: make(chan error, 1)}
	select {
	case ep.cmds <- c:
		<-c.reply
		return <-c.viewOut
	case <-ep.dead:
		return View{}
	}
}

// ReportDead injects an external failure verdict: the member is treated
// as crashed and removed from the view (coordinator) or counted against
// the coordinator for failover (member). Meaningful with Config.ExternalFD,
// where the endpoint runs no failure detection of its own.
func (ep *Endpoint) ReportDead(n wire.NodeID) error {
	return ep.do(command{kind: cmdReportDead, to: n})
}

// ReportAlive retracts an injected verdict before it was acted on, and
// aborts a failover election the verdict may have started.
func (ep *Endpoint) ReportAlive(n wire.NodeID) error {
	return ep.do(command{kind: cmdReportAlive, to: n})
}

// Leave announces departure to the group and shuts the endpoint down.
func (ep *Endpoint) Leave() error {
	err := ep.do(command{kind: cmdLeave})
	ep.Close()
	return err
}

// Close tears the endpoint down without notifying the group (the failure
// detector will remove it — this is how tests simulate a crash).
func (ep *Endpoint) Close() {
	select {
	case <-ep.stop:
	default:
		close(ep.stop)
	}
	<-ep.dead
}

func (ep *Endpoint) do(c command) error {
	c.reply = make(chan error, 1)
	select {
	case ep.cmds <- c:
		return <-c.reply
	case <-ep.dead:
		return ErrLeft
	}
}

// ---- engine loop ----

func (e *engine) run() {
	tickEvery := e.cfg.HeartbeatEvery
	if e.fd != nil && e.cfg.GossipEvery < tickEvery {
		tickEvery = e.cfg.GossipEvery
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	defer func() {
		e.nic.Close()
		e.ep.evq.close()
		close(e.ep.dead)
	}()

	for {
		select {
		case <-e.ep.stop:
			return
		case m := <-e.nic.Queue():
			e.handleMsg(m)
			if e.left {
				return
			}
		case <-ticker.C:
			e.tick()
		case c := <-e.ep.cmds:
			e.handleCmd(c)
			if e.left {
				return
			}
		}
	}
}

func (e *engine) isCoord() bool { return e.view.Coord == e.cfg.Node }

// event forwards a structured record to the configured sink. All calls run
// on the engine goroutine; the sink is non-blocking by contract.
func (e *engine) event(r evstore.Record) {
	if e.cfg.Events != nil {
		e.cfg.Events.Emit(r)
	}
}

// suspectEvent announces one suspicion, deduplicated per suspect per view.
func (e *engine) suspectEvent(n wire.NodeID, role string) {
	if e.announced[n] {
		return
	}
	if e.announced == nil {
		e.announced = make(map[wire.NodeID]bool)
	}
	e.announced[n] = true
	e.event(evstore.Ev("suspect",
		evstore.F("target", n), evstore.F("role", role),
		evstore.F("view", e.view.ID)))
}

// cast is best-effort delivery of group-protocol traffic (heartbeats,
// sequencer casts, sync and retransmission messages). The protocol is
// self-healing: a lost send is recovered by retransmission requests, and
// a dead destination is noticed by failure detection — the error itself
// carries no information the engine does not already extract.
func (e *engine) cast(addr string, m *wire.Msg) {
	//starfish:allow errdrop best-effort cast; retransmission and failure detection recover lost sends
	e.nic.Send(addr, m)
}

func (e *engine) handleCmd(c command) {
	switch c.kind {
	case cmdView:
		c.viewOut <- e.view.Clone()
		c.reply <- nil
	case cmdCast:
		e.nextSenderSeq++
		sm := seqMsg{Kind: dCast, Sender: e.cfg.Node, SenderSeq: e.nextSenderSeq,
			Payload: append([]byte(nil), c.payload...)}
		e.pendingCasts = append(e.pendingCasts, sm)
		e.forwardCast(sm)
		c.reply <- nil
	case cmdSend:
		addr, ok := e.view.Addrs[c.to]
		if !ok {
			c.reply <- ErrNoMember
			return
		}
		m := wire.Msg{Type: wire.TControl, Kind: kP2P, Src: wire.Rank(e.cfg.Node), Payload: c.payload}
		c.reply <- e.nic.Send(addr, &m)
	case cmdReportDead:
		if c.to != e.cfg.Node && e.view.Contains(c.to) {
			e.suspected[c.to] = true
			e.suspectEvent(c.to, "external")
		}
		c.reply <- nil
	case cmdReportAlive:
		delete(e.suspected, c.to)
		if e.syncing && e.syncFor == c.to {
			e.abortSync()
		}
		if c.to == e.view.Coord {
			e.failoverWait = time.Time{}
		}
		c.reply <- nil
	case cmdLeave:
		if e.isCoord() {
			// Sequence our own removal before going away.
			e.installViewWithout([]wire.NodeID{e.cfg.Node})
		} else if addr, ok := e.view.Addrs[e.view.Coord]; ok {
			m := wire.Msg{Type: wire.TControl, Kind: kLeave, Src: wire.Rank(e.cfg.Node)}
			e.cast(addr, &m)
		}
		e.left = true
		c.reply <- nil
	}
}

// forwardCast routes an own cast toward the sequencer.
func (e *engine) forwardCast(sm seqMsg) {
	if e.isCoord() {
		e.sequence(sm)
		return
	}
	if addr, ok := e.view.Addrs[e.view.Coord]; ok {
		m := wire.Msg{Type: wire.TControl, Kind: kMcastReq, Src: wire.Rank(e.cfg.Node),
			Payload: encodeSeqMsg(&sm)}
		e.cast(addr, &m)
	}
}

// sequence assigns the next total-order slot to sm and broadcasts it.
// Coordinator only.
func (e *engine) sequence(sm seqMsg) {
	if sm.Kind == dCast && sm.SenderSeq <= e.lastSender[sm.Sender] {
		return // duplicate (resend after failover)
	}
	sm.Seq = e.nextSeq
	e.nextSeq++
	if e.fd != nil || e.cfg.ExternalFD {
		e.lastSeqAt = time.Now() // opens the gap-beacon window
	}
	e.broadcast(sm)
	e.deliver(sm)
}

func (e *engine) broadcast(sm seqMsg) {
	payload := encodeSeqMsg(&sm)
	for _, member := range e.view.Members {
		if member == e.cfg.Node {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kDeliver, Src: wire.Rank(e.cfg.Node), Payload: payload}
		e.cast(e.view.Addrs[member], &m)
	}
}

// deliver applies one sequenced message locally, in order.
func (e *engine) deliver(sm seqMsg) {
	if sm.Seq != e.delivered+1 {
		if sm.Seq > e.delivered {
			e.pendingDel[sm.Seq] = sm
		}
		return
	}
	e.applyDeliver(sm)
	e.drainPending()
}

func (e *engine) drainPending() {
	for {
		next, ok := e.pendingDel[e.delivered+1]
		if !ok {
			return
		}
		delete(e.pendingDel, e.delivered+1)
		e.applyDeliver(next)
	}
}

func (e *engine) applyDeliver(sm seqMsg) {
	e.delivered = sm.Seq
	e.log[sm.Seq] = sm
	delete(e.log, sm.Seq-logKeep)

	switch sm.Kind {
	case dCast:
		if sm.SenderSeq > e.lastSender[sm.Sender] {
			e.lastSender[sm.Sender] = sm.SenderSeq
		}
		if sm.Sender == e.cfg.Node {
			e.confirmPending(sm.SenderSeq)
		}
		e.ep.evq.push(Event{Kind: ECast, From: sm.Sender, Payload: sm.Payload})
	case dView:
		v, err := decodeView(sm.Payload)
		if err != nil {
			return
		}
		e.applyView(v)
	}
}

func (e *engine) confirmPending(senderSeq uint64) {
	keep := e.pendingCasts[:0]
	for _, p := range e.pendingCasts {
		if p.SenderSeq > senderSeq {
			keep = append(keep, p)
		}
	}
	e.pendingCasts = keep
}

func (e *engine) applyView(v View) {
	e.view = v
	if e.cfg.ExternalFD {
		// Injected verdicts outlive view changes that don't remove their
		// subject (e.g. a join sequenced while a removal is still pending);
		// only the supervisor retracts them.
		for n := range e.suspected {
			if !v.Contains(n) {
				delete(e.suspected, n)
			}
		}
	} else {
		e.suspected = make(map[wire.NodeID]bool)
	}
	if e.fd != nil {
		e.fd.SetMembers(v.Members)
	}
	e.announced = nil
	e.syncing = false
	e.failoverWait = time.Time{}
	e.lastCoordHeard = time.Now()
	if e.isCoord() {
		if e.nextSeq <= e.delivered {
			e.nextSeq = e.delivered + 1
		}
		now := time.Now()
		e.lastHeard = make(map[wire.NodeID]time.Time)
		for _, m := range v.Members {
			e.lastHeard[m] = now
		}
	}
	if !v.Contains(e.cfg.Node) {
		// Excluded (false suspicion or forced removal): shut down.
		e.event(evstore.Ev("excluded", evstore.F("view", v.ID)))
		e.left = true
		return
	}
	e.event(evstore.Ev("view-change",
		evstore.F("view", v.ID), evstore.F("coord", v.Coord),
		evstore.F("members", evstore.List(v.Members))))
	e.ep.evq.push(Event{Kind: EView, View: v.Clone()})
	// Re-route unconfirmed casts to the (possibly new) coordinator.
	for _, p := range e.pendingCasts {
		e.forwardCast(p)
	}
}

// ---- message handling ----

func (e *engine) handleMsg(m wire.Msg) {
	if m.Type != wire.TControl {
		m.Release() // not bus traffic; recycle the pooled payload
		return
	}
	from := wire.NodeID(m.Src)
	switch m.Kind {
	case kHeartbeat:
		e.noteAlive(from)
		if from == e.view.Coord && !e.isCoord() && len(m.Payload) >= 8 {
			if last := wire.NewReader(m.Payload).U64(); last > e.delivered {
				e.requestRetrans()
			}
		}
	case kRetransReq:
		e.handleRetransReq(m)
	case kDeliver:
		if from == e.view.Coord || e.syncTargets != nil {
			e.noteAlive(from)
		}
		sm, err := decodeSeqMsg(m.Payload)
		if err == nil {
			e.deliver(sm)
		}
	case kMcastReq:
		if !e.isCoord() {
			// Stale routing: forward to the real coordinator.
			if addr, ok := e.view.Addrs[e.view.Coord]; ok && e.view.Coord != e.cfg.Node {
				e.cast(addr, &m)
			}
			return
		}
		if !e.view.Contains(from) {
			return
		}
		sm, err := decodeSeqMsg(m.Payload)
		if err == nil {
			e.sequence(sm)
		}
	case kJoinReq:
		e.handleJoin(m)
	case kLeave:
		if e.isCoord() && e.view.Contains(from) {
			e.installViewWithout([]wire.NodeID{from})
		}
	case kP2P:
		e.ep.evq.push(Event{Kind: ESend, From: from, Payload: append([]byte(nil), m.Payload...)})
		m.Release() // copied above; the pooled buffer can go back

	case kSyncReq:
		e.handleSyncReq(m)
	case kSyncResp:
		e.handleSyncResp(m)

	case kGossip:
		if e.fd != nil {
			if outs, err := e.fd.Handle(time.Now(), m.Payload); err == nil {
				e.sendGossip(outs)
			}
		}
		m.Release() // the detector decodes into its own structures
	}
}

func (e *engine) noteAlive(n wire.NodeID) {
	if e.fd != nil || e.cfg.ExternalFD {
		// Liveness is owned by the gossip detector or the external
		// supervisor; incidental protocol traffic must not clear verdicts.
		return
	}
	now := time.Now()
	if n == e.view.Coord {
		e.lastCoordHeard = now
		// A live coordinator means no failover is needed: stop waiting for
		// a candidate, and if we are the candidate mid-election, abort the
		// sync — completing it would install a spurious view that excludes
		// a coordinator that merely fell silent for a while.
		e.failoverWait = time.Time{}
		if e.syncing && e.syncFor == n {
			e.abortSync()
		}
	}
	if e.isCoord() {
		e.lastHeard[n] = now
	}
	delete(e.suspected, n)
}

// abortSync cancels an in-progress failover election without installing a
// view; late kSyncResp messages are ignored because syncTargets is cleared.
func (e *engine) abortSync() {
	if e.syncing {
		e.event(evstore.Ev("election-abort",
			evstore.F("for", e.syncFor), evstore.F("view", e.view.ID)))
	}
	e.syncing = false
	e.syncResps = nil
	e.syncTargets = nil
}

func (e *engine) handleJoin(m wire.Msg) {
	r := wire.NewReader(m.Payload)
	node := wire.NodeID(r.U32())
	addr := r.String()
	if r.Err() != nil {
		return
	}
	if !e.isCoord() {
		if caddr, ok := e.view.Addrs[e.view.Coord]; ok {
			e.cast(caddr, &m)
		}
		return
	}
	if e.view.Contains(node) {
		// Duplicate join request (retry): resend welcome with the current
		// view so the joiner can finish its handshake.
		e.sendWelcome(node, addr, e.delivered)
		return
	}
	// Build the next view including the joiner.
	nv := e.view.Clone()
	nv.ID++
	nv.Members = append(nv.Members, node)
	sortMembers(nv.Members)
	nv.Addrs[node] = addr
	nv.Coord = chooseCoord(e.view.Coord, nv.Members)

	seq := e.nextSeq // the slot the view message will take
	sm := seqMsg{Kind: dView, Sender: e.cfg.Node, Payload: encodeView(&nv)}
	// Welcome first (FIFO guarantees it precedes any later deliveries on
	// the same connection).
	e.sendWelcomeView(node, addr, seq, &nv)
	e.sequence(sm)
}

func (e *engine) sendWelcome(node wire.NodeID, addr string, seq uint64) {
	v := e.view
	e.sendWelcomeView(node, addr, seq, &v)
}

func (e *engine) sendWelcomeView(node wire.NodeID, addr string, seq uint64, v *View) {
	var state []byte
	if e.cfg.StateProvider != nil {
		state = e.cfg.StateProvider()
	}
	w := wire.NewWriter(64 + len(state))
	w.U64(seq).Bytes32(encodeView(v)).Bytes32(state)
	m := wire.Msg{Type: wire.TControl, Kind: kWelcome, Src: wire.Rank(e.cfg.Node), Payload: w.Bytes()}
	e.cast(addr, &m)
}

// installViewWithout sequences a new view that excludes the given members.
// Coordinator only.
func (e *engine) installViewWithout(gone []wire.NodeID) {
	goneSet := map[wire.NodeID]bool{}
	for _, g := range gone {
		goneSet[g] = true
	}
	nv := View{ID: e.view.ID + 1, Addrs: map[wire.NodeID]string{}}
	for _, member := range e.view.Members {
		if !goneSet[member] {
			nv.Members = append(nv.Members, member)
			nv.Addrs[member] = e.view.Addrs[member]
		}
	}
	if len(nv.Members) == 0 {
		e.left = true
		return
	}
	sortMembers(nv.Members)
	nv.Coord = chooseCoord(e.view.Coord, nv.Members)
	sm := seqMsg{Kind: dView, Sender: e.cfg.Node, Payload: encodeView(&nv)}
	e.sequence(sm)
}

// ---- timers ----

// tick dispatches on the failure-detection mode: legacy all-to-coordinator
// heartbeats (the default), SWIM gossip (UseGossip), or none at all with
// verdicts injected by a supervisor (ExternalFD).
func (e *engine) tick() {
	switch {
	case e.cfg.ExternalFD:
		e.tickExternal()
	case e.fd != nil:
		e.tickGossip()
	default:
		e.tickLegacy()
	}
}

// tickGossip drives the SWIM detector and derives suspicion from its
// confirmed-dead verdicts: a merely-Suspect peer may still refute itself,
// so only Dead drives view changes — keeping "exactly one view change per
// kill" intact under gossip.
func (e *engine) tickGossip() {
	now := time.Now()
	e.sendGossip(e.fd.Tick(now))
	e.fd.Changes() // drain; statuses are read below, records flow via GossipEvents

	for _, member := range e.view.Members {
		if member == e.cfg.Node {
			continue
		}
		if e.fd.Status(member) == gossip.Dead {
			e.suspected[member] = true
			role := "member"
			if member == e.view.Coord {
				role = "coord"
			}
			e.suspectEvent(member, role)
		} else {
			delete(e.suspected, member)
		}
	}
	// A resurrected coordinator (alive at a higher incarnation) cancels an
	// in-flight failover election.
	if e.syncing && e.fd.Status(e.syncFor) == gossip.Alive {
		e.abortSync()
	}
	e.beacon(now)

	if e.isCoord() {
		var gone []wire.NodeID
		for _, member := range e.view.Members {
			if member != e.cfg.Node && e.suspected[member] {
				gone = append(gone, member)
			}
		}
		if len(gone) > 0 && hasQuorum(len(e.view.Members)-len(gone), len(e.view.Members)) {
			e.installViewWithout(gone)
		}
		return
	}
	e.memberMaintenance()
	e.failoverTick(now)
}

// tickExternal runs no failure detection of its own: e.suspected changes
// only through ReportDead/ReportAlive. Crash-driven view changes skip the
// quorum rule because the injected verdicts already carry the
// supervisor's agreement.
func (e *engine) tickExternal() {
	now := time.Now()
	e.beacon(now)
	if e.isCoord() {
		var gone []wire.NodeID
		for _, member := range e.view.Members {
			if member != e.cfg.Node && e.suspected[member] {
				gone = append(gone, member)
			}
		}
		if len(gone) > 0 {
			e.installViewWithout(gone)
		}
		return
	}
	e.memberMaintenance()
	e.failoverTick(now)
}

func (e *engine) tickLegacy() {
	now := time.Now()
	if e.isCoord() {
		// Probe members, detect member crashes. The heartbeat carries the
		// highest assigned sequence number so a member that lost the tail
		// of the delivery stream notices the gap even when no further
		// traffic arrives.
		hbPayload := wire.NewWriter(8).U64(e.nextSeq - 1).Bytes()
		var gone []wire.NodeID
		for _, member := range e.view.Members {
			if member == e.cfg.Node {
				continue
			}
			hb := wire.Msg{Type: wire.TControl, Kind: kHeartbeat, Src: wire.Rank(e.cfg.Node), Payload: hbPayload}
			e.cast(e.view.Addrs[member], &hb)
			if last, ok := e.lastHeard[member]; ok && now.Sub(last) > e.cfg.FailAfter {
				gone = append(gone, member)
				e.suspectEvent(member, "member")
			}
		}
		// Primary-partition rule: a crash-driven view change must retain
		// a strict majority of the current view, or this side might be
		// the partitioned minority (e.g. mutual false suspicion under
		// load) and installing the view would split the brain. Defer the
		// removal until either the suspicions clear or enough members
		// remain.
		if len(gone) > 0 && hasQuorum(len(e.view.Members)-len(gone), len(e.view.Members)) {
			e.installViewWithout(gone)
		}
		return
	}

	// Member: probe the coordinator, resend unconfirmed casts.
	if addr, ok := e.view.Addrs[e.view.Coord]; ok {
		hb := wire.Msg{Type: wire.TControl, Kind: kHeartbeat, Src: wire.Rank(e.cfg.Node)}
		e.cast(addr, &hb)
	}
	for _, p := range e.pendingCasts {
		e.forwardCast(p)
	}
	// A buffered out-of-order delivery means an earlier kDeliver was lost:
	// ask the coordinator to repair the gap from its retransmission log.
	if !e.syncing && len(e.pendingDel) > 0 && !e.suspected[e.view.Coord] {
		e.requestRetrans()
	}

	if !e.syncing && now.Sub(e.lastCoordHeard) > e.cfg.FailAfter {
		e.suspected[e.view.Coord] = true
		e.suspectEvent(e.view.Coord, "coord")
	}
	e.failoverTick(now)
}

// memberMaintenance re-forwards unconfirmed casts and repairs delivery
// gaps; shared by the gossip and external-FD modes (the legacy mode does
// the same inline in tickLegacy).
func (e *engine) memberMaintenance() {
	for _, p := range e.pendingCasts {
		e.forwardCast(p)
	}
	// A buffered out-of-order delivery means an earlier kDeliver was lost:
	// ask the coordinator to repair the gap from its retransmission log.
	if !e.syncing && len(e.pendingDel) > 0 && !e.suspected[e.view.Coord] {
		e.requestRetrans()
	}
}

// failoverTick is the member-side failover state machine, shared by all
// FD modes; callers decide how e.suspected gets populated.
func (e *engine) failoverTick(now time.Time) {
	if e.syncing {
		if now.Sub(e.syncStarted) > e.cfg.FailAfter {
			// Non-responders are dropped; finish with what we have.
			e.finishSync()
		}
		return
	}
	if !e.suspected[e.view.Coord] {
		return
	}

	// Coordinator is suspected: the lowest-id survivor runs the failover.
	candidate := e.lowestSurvivor()
	if candidate == e.cfg.Node {
		e.startSync()
		return
	}
	// Wait for the candidate; if it too stays silent, suspect it as well.
	if e.failoverWait.IsZero() {
		e.failoverWait = now
	} else if now.Sub(e.failoverWait) > 2*e.cfg.FailAfter {
		e.suspected[candidate] = true
		e.suspectEvent(candidate, "candidate")
		e.failoverWait = now
	}
}

// beacon re-advertises the coordinator's highest sequenced slot for a
// bounded window after sequencing activity. The gossip and external-FD
// modes have no per-tick heartbeat to carry that horizon, so without the
// beacon a member that lost the *final* kDeliver of a burst would never
// notice the gap. Outside the activity window the beacon is silent,
// keeping the idle control-plane load O(1).
func (e *engine) beacon(now time.Time) {
	if !e.isCoord() || len(e.view.Members) <= 1 {
		return
	}
	if e.lastSeqAt.IsZero() || now.Sub(e.lastSeqAt) > 2*e.cfg.FailAfter {
		return
	}
	if now.Sub(e.lastBeacon) < e.cfg.FailAfter/4 {
		return
	}
	e.lastBeacon = now
	hbPayload := wire.NewWriter(8).U64(e.nextSeq - 1).Bytes()
	for _, member := range e.view.Members {
		if member == e.cfg.Node {
			continue
		}
		hb := wire.Msg{Type: wire.TControl, Kind: kHeartbeat, Src: wire.Rank(e.cfg.Node), Payload: hbPayload}
		e.cast(e.view.Addrs[member], &hb)
	}
}

// sendGossip transmits detector envelopes over the group transport,
// resolving member ids through the current view.
func (e *engine) sendGossip(envs []gossip.Envelope) {
	for _, env := range envs {
		addr, ok := e.view.Addrs[env.To]
		if !ok {
			continue
		}
		m := wire.Msg{Type: wire.TControl, Kind: kGossip, Src: wire.Rank(e.cfg.Node), Payload: env.Payload}
		e.cast(addr, &m)
	}
}

func (e *engine) lowestSurvivor() wire.NodeID {
	for _, member := range e.view.Members { // sorted ascending
		if !e.suspected[member] {
			return member
		}
	}
	return e.cfg.Node
}

// ---- failover ----

func (e *engine) startSync() {
	e.syncing = true
	e.syncFor = e.view.Coord
	e.event(evstore.Ev("election-start",
		evstore.F("for", e.syncFor), evstore.F("view", e.view.ID)))
	e.syncStarted = time.Now()
	e.syncResps = make(map[wire.NodeID]syncResp)
	e.syncTargets = make(map[wire.NodeID]bool)
	req := wire.Msg{Type: wire.TControl, Kind: kSyncReq, Src: wire.Rank(e.cfg.Node)}
	for _, member := range e.view.Members {
		if member == e.cfg.Node || e.suspected[member] {
			continue
		}
		e.syncTargets[member] = true
		e.cast(e.view.Addrs[member], &req)
	}
	if len(e.syncTargets) == 0 {
		e.finishSync()
	}
}

func (e *engine) handleSyncReq(m wire.Msg) {
	from := wire.NodeID(m.Src)
	if !e.view.Contains(from) {
		return
	}
	// The candidate is acting coordinator-elect: treat its probe as a sign
	// of life so we don't start a competing sync.
	e.lastCoordHeard = time.Now()
	e.failoverWait = time.Time{}

	w := wire.NewWriter(256)
	w.U64(e.delivered)
	// Send the retained suffix of the delivery log.
	var seqs []uint64
	for s := range e.log {
		seqs = append(seqs, s)
	}
	w.U32(uint32(len(seqs)))
	for _, s := range seqs {
		sm := e.log[s]
		w.Bytes32(encodeSeqMsg(&sm))
	}
	resp := wire.Msg{Type: wire.TControl, Kind: kSyncResp, Src: wire.Rank(e.cfg.Node), Payload: w.Bytes()}
	if addr, ok := e.view.Addrs[from]; ok {
		e.cast(addr, &resp)
	}
}

func (e *engine) handleSyncResp(m wire.Msg) {
	if !e.syncing {
		return
	}
	from := wire.NodeID(m.Src)
	if !e.syncTargets[from] {
		return
	}
	r := wire.NewReader(m.Payload)
	sr := syncResp{delivered: r.U64()}
	n := r.U32()
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		if sm, err := decodeSeqMsg(r.Bytes32()); err == nil {
			sr.entries = append(sr.entries, sm)
		}
	}
	if r.Err() != nil {
		return
	}
	e.syncResps[from] = sr
	if len(e.syncResps) == len(e.syncTargets) {
		e.finishSync()
	}
}

// finishSync completes the failover: the candidate merges everyone's
// delivered suffix, re-broadcasts anything not seen everywhere, assumes the
// sequencer role, and installs the post-failure view.
func (e *engine) finishSync() {
	e.syncing = false
	responders := e.syncResps
	e.syncResps = nil
	e.syncTargets = nil

	// Primary-partition rule: the candidate may only take over if it and
	// its responders form a strict majority of the current view. A
	// minority side (real partition or false suspicion) waits — the
	// failure detector clears transient suspicions, and a later tick
	// retries the sync if they persist. External-FD groups skip the rule:
	// their verdicts were agreed in the main group, so a lone survivor of
	// an app group may legitimately take over.
	if !e.cfg.ExternalFD && !hasQuorum(len(responders)+1, len(e.view.Members)) {
		e.event(evstore.Ev("election-stalled",
			evstore.F("for", e.syncFor), evstore.F("view", e.view.ID),
			evstore.F("responders", len(responders))))
		return
	}
	e.event(evstore.Ev("election-win",
		evstore.F("for", e.syncFor), evstore.F("view", e.view.ID),
		evstore.F("responders", len(responders))))

	// Merge all known sequenced messages.
	all := make(map[uint64]seqMsg)
	for s, sm := range e.log {
		all[s] = sm
	}
	maxSeq := e.delivered
	minDelivered := e.delivered
	for _, sr := range responders {
		if sr.delivered > maxSeq {
			maxSeq = sr.delivered
		}
		if sr.delivered < minDelivered {
			minDelivered = sr.delivered
		}
		for _, sm := range sr.entries {
			all[sm.Seq] = sm
		}
	}

	// Catch up locally.
	for s := e.delivered + 1; s <= maxSeq; s++ {
		if sm, ok := all[s]; ok {
			e.deliver(sm)
		}
	}
	// It is possible the old coordinator's last view removed us; then we
	// are no longer entitled to lead.
	if e.left || !e.view.Contains(e.cfg.Node) {
		return
	}

	// Re-broadcast the suffix so every survivor reaches maxSeq (receivers
	// drop already-delivered seqs).
	survivors := []wire.NodeID{e.cfg.Node}
	for n := range responders {
		survivors = append(survivors, n)
	}
	for s := minDelivered + 1; s <= maxSeq; s++ {
		sm, ok := all[s]
		if !ok {
			continue
		}
		payload := encodeSeqMsg(&sm)
		for _, n := range survivors {
			if n == e.cfg.Node {
				continue
			}
			if addr, ok := e.view.Addrs[n]; ok {
				out := wire.Msg{Type: wire.TControl, Kind: kDeliver, Src: wire.Rank(e.cfg.Node), Payload: payload}
				e.cast(addr, &out)
			}
		}
	}

	// Assume the sequencer role and install the new view. Keep only
	// members that are (a) in the current view and (b) responded or are
	// self.
	e.nextSeq = e.delivered + 1
	respSet := map[wire.NodeID]bool{e.cfg.Node: true}
	for n := range responders {
		respSet[n] = true
	}
	var gone []wire.NodeID
	for _, member := range e.view.Members {
		if !respSet[member] {
			gone = append(gone, member)
		}
	}
	// Temporarily act as coordinator to sequence the view even though the
	// current view names the dead node: receivers accept deliveries by
	// seq, not by source identity.
	nv := View{ID: e.view.ID + 1, Addrs: map[wire.NodeID]string{}}
	for _, member := range e.view.Members {
		skip := false
		for _, g := range gone {
			if member == g {
				skip = true
				break
			}
		}
		if !skip {
			nv.Members = append(nv.Members, member)
			nv.Addrs[member] = e.view.Addrs[member]
		}
	}
	sortMembers(nv.Members)
	if len(nv.Members) == 0 {
		e.left = true
		return
	}
	// The candidate that ran the sync self-elects: it already holds the
	// merged suffix, so handing the sequencer role elsewhere would only
	// force an immediate second view change.
	nv.Coord = chooseCoord(e.cfg.Node, nv.Members)
	sm := seqMsg{Seq: e.nextSeq, Kind: dView, Sender: e.cfg.Node, Payload: encodeView(&nv)}
	e.nextSeq++
	payload := encodeSeqMsg(&sm)
	for _, n := range survivors {
		if n == e.cfg.Node {
			continue
		}
		if addr, ok := e.view.Addrs[n]; ok {
			out := wire.Msg{Type: wire.TControl, Kind: kDeliver, Src: wire.Rank(e.cfg.Node), Payload: payload}
			e.cast(addr, &out)
		}
	}
	e.deliver(sm)
}

// ---- gap repair ----

// requestRetrans asks the coordinator to resend every sequenced message
// above our delivered horizon, rate-limited to one request per heartbeat
// interval so a long outage does not flood the sequencer.
func (e *engine) requestRetrans() {
	now := time.Now()
	if now.Sub(e.lastRetransReq) < e.cfg.HeartbeatEvery {
		return
	}
	e.lastRetransReq = now
	addr, ok := e.view.Addrs[e.view.Coord]
	if !ok || e.isCoord() {
		return
	}
	m := wire.Msg{Type: wire.TControl, Kind: kRetransReq, Src: wire.Rank(e.cfg.Node),
		Payload: wire.NewWriter(8).U64(e.delivered).Bytes()}
	e.cast(addr, &m)
}

// handleRetransReq resends log entries above the requester's delivered
// horizon, at most retransBatch per request. Coordinator only.
func (e *engine) handleRetransReq(m wire.Msg) {
	from := wire.NodeID(m.Src)
	if !e.isCoord() || !e.view.Contains(from) {
		return
	}
	r := wire.NewReader(m.Payload)
	horizon := r.U64()
	if r.Err() != nil {
		return
	}
	addr, ok := e.view.Addrs[from]
	if !ok {
		return
	}
	sent := 0
	for s := horizon + 1; s <= e.delivered && sent < retransBatch; s++ {
		sm, ok := e.log[s]
		if !ok {
			continue
		}
		out := wire.Msg{Type: wire.TControl, Kind: kDeliver, Src: wire.Rank(e.cfg.Node),
			Payload: encodeSeqMsg(&sm)}
		e.cast(addr, &out)
		sent++
	}
}
