package lockcheck

import (
	"testing"

	"starfish/internal/analysis/analysistest"
)

func TestLockcheckFixture(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata")
}
