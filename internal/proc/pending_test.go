package proc

import (
	"fmt"
	"testing"
	"time"

	"starfish/internal/ckpt"
	"starfish/internal/wire"
)

// pendingApp verifies that messages sitting unconsumed in the MPI receive
// queue at checkpoint time are part of the checkpoint and are re-delivered
// after restart, and that the sender's restored sequence state prevents
// both loss and duplication.
//
// Rank 0 sends three tagged messages and then waits for an "ok". Rank 1
// lets them arrive WITHOUT consuming them, requests a checkpoint, and then
// idles; only a restored incarnation (Gen > 0) consumes — so the three
// payloads it reads can only have come from the checkpoint's captured
// pending queue.
type pendingApp struct {
	phase int64
}

const pendingTag int32 = 77

func init() {
	Register("test-pending", func([]byte) (App, error) { return &pendingApp{}, nil })
}

func (a *pendingApp) Init(*Ctx) error { return nil }

func (a *pendingApp) Restore(_ *Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.phase = r.I64()
	return r.Err()
}

func (a *pendingApp) Snapshot() ([]byte, error) {
	w := wire.NewWriter(8)
	w.I64(a.phase)
	return w.Bytes(), nil
}

func (a *pendingApp) Step(ctx *Ctx) (bool, error) {
	switch ctx.Rank {
	case 0:
		if a.phase == 0 {
			for i := 0; i < 3; i++ {
				if err := ctx.Comm.Send(1, pendingTag, []byte(fmt.Sprintf("msg-%d", i))); err != nil {
					return false, err
				}
			}
			a.phase = 1
			return false, nil
		}
		// Wait for rank 1's confirmation (only sent after a restart).
		// Poll instead of blocking so this rank keeps reaching step
		// boundaries and can participate in checkpoint rounds.
		if _, ok := ctx.Comm.Iprobe(1, pendingTag); !ok {
			time.Sleep(time.Millisecond)
			return false, nil
		}
		data, _, err := ctx.Comm.Recv(1, pendingTag)
		if err != nil {
			return false, err
		}
		if string(data) != "ok" {
			return true, fmt.Errorf("rank 0: got %q", data)
		}
		return true, nil
	default:
		if a.phase == 0 {
			// Let all three messages arrive without consuming them.
			if err := ctx.Comm.WaitDrained(map[wire.Rank]uint64{0: 3}); err != nil {
				return false, err
			}
			ctx.RequestCheckpoint()
			a.phase = 1
			return false, nil
		}
		if ctx.Gen == 1 {
			// Pre-crash incarnation: idle until the harness aborts us.
			time.Sleep(time.Millisecond)
			return false, nil
		}
		// Restored incarnation: the three messages must be waiting in the
		// restored pending queue, in order.
		for i := 0; i < 3; i++ {
			data, _, err := ctx.Comm.Recv(0, pendingTag)
			if err != nil {
				return false, err
			}
			if want := fmt.Sprintf("msg-%d", i); string(data) != want {
				return true, fmt.Errorf("rank 1: pending[%d] = %q, want %q", i, data, want)
			}
		}
		// No duplicates may follow.
		if _, ok := ctx.Comm.Iprobe(0, pendingTag); ok {
			return true, fmt.Errorf("rank 1: duplicate pending message")
		}
		return true, ctx.Comm.Send(0, pendingTag, []byte("ok"))
	}
}

func TestPendingQueueSurvivesRestart(t *testing.T) {
	for _, protocol := range []ckpt.Protocol{ckpt.StopAndSync, ckpt.ChandyLamport} {
		t.Run(protocol.String(), func(t *testing.T) {
			spec := AppSpec{
				ID: wire.AppID(40 + uint32(protocol)), Name: "test-pending", Ranks: 2,
				Protocol: protocol, Encoder: ckpt.Portable, Policy: PolicyRestart,
			}
			h := newHarness(t, spec)
			h.launch(nil)
			line := h.waitForCommittedLine()
			if line[1] == 0 {
				t.Fatalf("line = %v", line)
			}
			h.abortAll()
			h.launch(line)
			h.waitAll()
		})
	}
}

func TestPendingQueueSurvivesIndependentRestart(t *testing.T) {
	spec := AppSpec{
		ID: 44, Name: "test-pending", Ranks: 2,
		Protocol: ckpt.Independent, Encoder: ckpt.Native, Policy: PolicyRestart,
	}
	h := newHarness(t, spec)
	h.launch(nil)
	// Independent: rank 1 checkpoints locally (no commit); wait for its
	// checkpoint to appear.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if ns, _ := h.store.List(spec.ID, 1); len(ns) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rank 1 never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.abortAll()
	line, err := ckpt.GatherLine(h.store, spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 may have no checkpoint: it restarts from scratch and its
	// sends are suppressed as duplicates at rank 1... but rank 1's line
	// entry must not be orphaned by rank 0's resends — ComputeRecoveryLine
	// handles that via the recorded dependencies. Fill missing entries.
	if _, ok := line[0]; !ok {
		line[0] = 0
	}
	h.launch(line)
	h.waitAll()
}

// pacedApp sleeps each step so checkpoint rounds are spaced out enough for
// several to commit during one run.
type pacedApp struct{ step int64 }

func init() {
	Register("test-paced", func([]byte) (App, error) { return &pacedApp{}, nil })
}

func (a *pacedApp) Init(*Ctx) error { return nil }
func (a *pacedApp) Restore(_ *Ctx, state []byte) error {
	r := wire.NewReader(state)
	a.step = r.I64()
	return r.Err()
}
func (a *pacedApp) Snapshot() ([]byte, error) {
	w := wire.NewWriter(8)
	w.I64(a.step)
	return w.Bytes(), nil
}
func (a *pacedApp) Step(*Ctx) (bool, error) {
	a.step++
	time.Sleep(2 * time.Millisecond)
	return a.step >= 150, nil
}

func TestCommittedLineGarbageCollectsOldCheckpoints(t *testing.T) {
	spec := AppSpec{
		ID: 45, Name: "test-paced", Ranks: 2,
		Protocol: ckpt.StopAndSync, Encoder: ckpt.Portable, Policy: PolicyRestart,
	}
	spec.CkptEverySteps = 25 // several rounds over the run
	h := newHarness(t, spec)
	h.launch(nil)
	h.waitAll()
	line, err := h.store.CommittedLine(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if line[0] < 2 {
		t.Fatalf("want at least two committed rounds, line = %v", line)
	}
	for r := wire.Rank(0); r < 2; r++ {
		ns, err := h.store.List(spec.ID, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) == 0 {
			t.Fatalf("rank %d has no checkpoints", r)
		}
		// Every commit garbage-collects older checkpoints; the very last
		// commit's collection can race process teardown, so at most one
		// checkpoint below the final line may survive.
		if len(ns) > 2 || ns[len(ns)-1] < line[r] {
			t.Errorf("rank %d: surviving checkpoints %v vs committed line %d",
				r, ns, line[r])
		}
	}
}
