// Package lockcheck enforces the repo's lock discipline: no blocking
// operation while a sync.Mutex or sync.RWMutex is held. Blocking under a
// mutex is the deadlock class behind the gcs election and rstore
// re-replication hangs: a goroutine parks holding the lock every other
// path needs to make progress.
//
// Flagged while a lock is held on the current path:
//
//   - channel sends and receives outside a select with a default case,
//     and selects without a default (they park the goroutine);
//   - time.Sleep;
//   - sync.WaitGroup.Wait;
//   - known long-blocking calls: dialing (net.Dial*, vni.NIC.Dial) and
//     network reads (wire.ReadMsg/ReadMsgBuf on a live connection).
//
// sync.Cond.Wait is exempt — it is specified to be called with the lock
// held and releases it while parked. Held-ness is tracked path-
// sensitively; at control-flow joins a lock counts as held only if every
// arriving path holds it, so conditional unlocks do not produce false
// positives. Deliberate blocking under a lock (e.g. a transport
// serializing writes on purpose) is annotated //starfish:allow lockcheck.
//
// The checker is interprocedural through Pass.Prog: calling a lock helper
// (a function whose summary says it leaves a receiver-rooted mutex held)
// updates the held set exactly like an inline mu.Lock(), and calling a
// function that may block transitively is reported like a direct blocking
// call, with the callee named in the diagnostic.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"starfish/internal/analysis"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "forbid blocking operations (chan ops, sleeps, dials, waits) while a sync.Mutex/RWMutex is held",
	Run:  run,
}

// The table of known-blocking callees lives in the analysis package
// (BlockingCalls), shared with the interprocedural summary builder.
var blockingCalls = analysis.BlockingCalls

type lockEnv struct {
	held map[string]token.Pos // lock expr (e.g. "c.mu") -> Lock() position
	dead bool
}

func newLockEnv() *lockEnv { return &lockEnv{held: make(map[string]token.Pos)} }

func (e *lockEnv) clone() *lockEnv {
	c := newLockEnv()
	c.dead = e.dead
	for k, v := range e.held {
		c.held[k] = v
	}
	return c
}

// joinLocks intersects held sets: a lock is held after a join only if it
// is held on every live arriving path.
func joinLocks(a, b *lockEnv) *lockEnv {
	if a.dead {
		return b
	}
	if b.dead {
		return a
	}
	out := newLockEnv()
	for k, pos := range a.held {
		if _, ok := b.held[k]; ok {
			out.held[k] = pos
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.stmt(fn.Body, newLockEnv())
				}
			case *ast.FuncLit:
				// Literals get a fresh environment: a goroutine or callback
				// does not inherit the spawner's locks. (An immediately
				// invoked literal would — rare enough to ignore.)
				c.stmt(fn.Body, newLockEnv())
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) info() *types.Info { return c.pass.TypesInfo }

// lockRecv returns the rendered receiver ("c.mu") of a Lock/Unlock-style
// call on a sync mutex, or "".
func (c *checker) lockRecv(call *ast.CallExpr, methods ...string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
		}
	}
	if !match {
		return ""
	}
	tv, ok := c.info().Types[sel.X]
	if !ok || !analysis.IsMutex(tv.Type) {
		return ""
	}
	return types.ExprString(sel.X)
}

func (c *checker) stmt(s ast.Stmt, e *lockEnv) *lockEnv {
	if e.dead || s == nil {
		return e
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			e = c.stmt(st, e)
		}
		return e
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if k := c.lockRecv(call, "Lock", "RLock"); k != "" {
				e.held[k] = call.Pos()
				return e
			}
			if k := c.lockRecv(call, "Unlock", "RUnlock"); k != "" {
				delete(e.held, k)
				return e
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				e.dead = true
				return e
			}
		}
		c.exprOps(s.X, e)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			c.applyLockDeltas(call, e)
		}
		return e
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function end — that
		// is the discipline, not a violation; nothing to track. Deferred
		// closures run at return with whatever is then held; not modeled.
		return e
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.exprOps(r, e)
		}
		for _, l := range s.Lhs {
			c.exprOps(l, e)
		}
		return e
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.exprOps(v, e)
					}
				}
			}
		}
		return e
	case *ast.IfStmt:
		e = c.stmt(s.Init, e)
		c.exprOps(s.Cond, e)
		thenEnv := c.stmt(s.Body, e.clone())
		elseEnv := e
		if s.Else != nil {
			elseEnv = c.stmt(s.Else, e.clone())
		}
		return joinLocks(thenEnv, elseEnv)
	case *ast.ForStmt:
		e = c.stmt(s.Init, e)
		c.exprOps(s.Cond, e)
		body := c.stmt(s.Body, e.clone())
		body = c.stmt(s.Post, body)
		return joinLocks(e, body)
	case *ast.RangeStmt:
		// Ranging over a channel while holding a lock blocks between
		// elements.
		if tv, ok := c.info().Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.reportHeld(e, s.X.Pos(), "range over channel")
			}
		}
		c.exprOps(s.X, e)
		body := c.stmt(s.Body, e.clone())
		return joinLocks(e, body)
	case *ast.SwitchStmt:
		e = c.stmt(s.Init, e)
		c.exprOps(s.Tag, e)
		return c.caseJoin(s.Body, e, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		e = c.stmt(s.Init, e)
		e = c.stmt(s.Assign, e)
		return c.caseJoin(s.Body, e, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		if !hasDefaultClause(s.Body) {
			c.reportHeld(e, s.Pos(), "blocking select")
		}
		// Walk case bodies (comm clauses themselves are the select's
		// blocking point, already reported above when lock-held).
		out := e.clone()
		var joined *lockEnv
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := out.clone()
			for _, st := range cc.Body {
				branch = c.stmt(st, branch)
			}
			if joined == nil {
				joined = branch
			} else {
				joined = joinLocks(joined, branch)
			}
		}
		if joined == nil {
			return e
		}
		return joined
	case *ast.SendStmt:
		c.reportHeld(e, s.Pos(), "channel send")
		c.exprOps(s.Value, e)
		return e
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.exprOps(r, e)
		}
		e.dead = true
		return e
	case *ast.BranchStmt:
		e.dead = true
		return e
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.exprOps(a, e)
		}
		return e
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, e)
	case *ast.IncDecStmt:
		return e
	default:
		return e
	}
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

func (c *checker) caseJoin(body *ast.BlockStmt, e *lockEnv, exhaustive bool) *lockEnv {
	var out *lockEnv
	add := func(b *lockEnv) {
		if out == nil {
			out = b
		} else {
			out = joinLocks(out, b)
		}
	}
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := e.clone()
		for _, x := range cc.List {
			c.exprOps(x, branch)
		}
		for _, st := range cc.Body {
			branch = c.stmt(st, branch)
		}
		add(branch)
	}
	if !exhaustive || out == nil {
		add(e)
	}
	return out
}

// exprOps scans an expression for blocking operations: channel receives
// and calls to known-blocking functions. Function literals are skipped
// (fresh goroutine/callback context, analyzed separately).
func (c *checker) exprOps(x ast.Expr, e *lockEnv) {
	if x == nil || len(e.held) == 0 {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.reportHeld(e, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			name := analysis.CalleeName(c.info(), n)
			if desc, ok := blockingCalls[name]; ok {
				c.reportHeld(e, n.Pos(), "call to "+desc)
				return true
			}
			// Interprocedural: a summarized program callee that may park the
			// goroutine is as bad as a direct blocking call.
			if c.pass.Prog != nil {
				fn := analysis.Callee(c.info(), n)
				if sum := c.pass.Prog.Summary(fn); sum != nil && len(sum.Blocks) > 0 {
					c.reportHeld(e, n.Pos(), analysis.DescribeSite(analysis.Site{
						What: sum.Blocks[0].What, Via: fn,
					}))
				}
			}
		}
		return true
	})
}

// applyLockDeltas updates the held set for a top-level call into a lock or
// unlock helper: the callee's summarized receiver/parameter-rooted lock
// deltas are substituted through the call's receiver and arguments, so
// `c.lockState()` counts as `c.mu.Lock()` at the call site.
func (c *checker) applyLockDeltas(call *ast.CallExpr, e *lockEnv) {
	if c.pass.Prog == nil {
		return
	}
	fn := analysis.Callee(c.info(), call)
	sum := c.pass.Prog.Summary(fn)
	if sum == nil {
		return
	}
	for _, ref := range sum.UnLocks {
		if k := substLockKey(call, ref); k != "" {
			delete(e.held, k)
		}
	}
	for _, ref := range sum.NetLocks {
		if k := substLockKey(call, ref); k != "" {
			e.held[k] = call.Pos()
		}
	}
}

// substLockKey renders the caller-side lock expression for a callee lock
// ref: receiver-rooted refs use the call's receiver expression, parameter-
// rooted refs the corresponding argument.
func substLockKey(call *ast.CallExpr, ref analysis.LockRef) string {
	var root ast.Expr
	if ref.Param < 0 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		root = sel.X
	} else {
		if ref.Param >= len(call.Args) {
			return ""
		}
		root = call.Args[ref.Param]
	}
	key := types.ExprString(ast.Unparen(root))
	if ref.Path != "" {
		key += "." + ref.Path
	}
	return key
}

func (c *checker) reportHeld(e *lockEnv, pos token.Pos, what string) {
	for k, lockPos := range e.held {
		c.pass.Reportf(pos, "%s while holding %s (locked at %s)",
			what, k, c.pass.Fset.Position(lockPos))
		return // one report per site is enough
	}
}
