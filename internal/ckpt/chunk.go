package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"starfish/internal/wire"
)

// Content-addressed checkpoint records. Instead of storing an opaque image
// per epoch, the incremental pipeline (see Pipeline) stores a small *record
// envelope* in the (app, rank, n) slot of a Backend, plus the image's 4 KiB
// blocks in a content-addressed block store (hash -> block). A full record
// lists every block of the image; a delta record lists only the blocks that
// changed since the previous epoch, plus the index of the record it builds
// on. Identical blocks — across epochs, across ranks, across the zero-filled
// heap — are stored once.
//
// Envelopes are self-describing (IsRecord), so backends and restore paths
// that predate the pipeline keep working on raw images unchanged.

// BlockID is the content address of one block: its SHA-256 digest.
type BlockID [32]byte

// HashBlock returns the content address of a block.
func HashBlock(b []byte) BlockID { return sha256.Sum256(b) }

func (id BlockID) String() string { return fmt.Sprintf("%x", id[:8]) }

// BlockRef names one stored block and its (uncompressed) length.
type BlockRef struct {
	ID  BlockID
	Len uint32
}

// DeltaRef is one changed block of a delta record: the block's position in
// the image and its content address.
type DeltaRef struct {
	Index uint32 // block index (offset Index*DeltaBlockSize)
	Ref   BlockRef
}

// RecBlock pairs a block's address with its data for ChunkedBackend.Put.
type RecBlock struct {
	Ref  BlockRef
	Data []byte
}

// Record kinds.
const (
	RecFull  = 1 // the envelope lists every block of the image
	RecDelta = 2 // the envelope lists only blocks changed since Base
)

const recMagic = 0xC1A1D001

// Record is a decoded checkpoint record envelope.
type Record struct {
	Kind   uint8
	RawLen int // byte length of the reconstructed image
	// Full records: the blocks of the image, in order.
	Refs []BlockRef
	// Delta records: the checkpoint index this delta builds on, the byte
	// length of that base image, and the changed blocks.
	Base    uint64
	BaseLen int
	Deltas  []DeltaRef
}

// Typed reconstruction failures. Both wrap ErrNoCheckpoint so existing
// restart paths treat an unreconstructable chain like a missing checkpoint.
var (
	// ErrBrokenChain reports a delta chain whose base record is missing or
	// unreadable.
	ErrBrokenChain = fmt.Errorf("%w: delta chain link missing", ErrNoCheckpoint)
	// ErrMissingBlock reports a record referencing a block the store no
	// longer holds (or holds with the wrong content).
	ErrMissingBlock = fmt.Errorf("%w: content block missing or corrupt", ErrNoCheckpoint)
)

// IsRecord reports whether an image slot holds a record envelope rather than
// a raw checkpoint image.
func IsRecord(img []byte) bool {
	return len(img) >= 4 && binary.BigEndian.Uint32(img) == recMagic
}

// EncodeFullRecord serializes a full record over the given ordered blocks.
func EncodeFullRecord(rawLen int, refs []BlockRef) []byte {
	buf := make([]byte, 0, 4+1+8+4+len(refs)*36)
	buf = binary.BigEndian.AppendUint32(buf, recMagic)
	buf = append(buf, RecFull)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rawLen))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(refs)))
	for _, r := range refs {
		buf = append(buf, r.ID[:]...)
		buf = binary.BigEndian.AppendUint32(buf, r.Len)
	}
	return buf
}

// EncodeDeltaRecord serializes a delta record building on checkpoint base.
func EncodeDeltaRecord(base uint64, baseLen, rawLen int, deltas []DeltaRef) []byte {
	buf := make([]byte, 0, 4+1+8+8+8+4+len(deltas)*40)
	buf = binary.BigEndian.AppendUint32(buf, recMagic)
	buf = append(buf, RecDelta)
	buf = binary.BigEndian.AppendUint64(buf, uint64(rawLen))
	buf = binary.BigEndian.AppendUint64(buf, base)
	buf = binary.BigEndian.AppendUint64(buf, uint64(baseLen))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(deltas)))
	for _, d := range deltas {
		buf = binary.BigEndian.AppendUint32(buf, d.Index)
		buf = append(buf, d.Ref.ID[:]...)
		buf = binary.BigEndian.AppendUint32(buf, d.Ref.Len)
	}
	return buf
}

var errBadRecord = errors.New("ckpt: malformed record envelope")

type recReader struct {
	buf []byte
	err error
}

func (r *recReader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.err = errBadRecord
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *recReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *recReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *recReader) ref() (ref BlockRef) {
	b := r.take(32)
	if b != nil {
		copy(ref.ID[:], b)
	}
	ref.Len = r.u32()
	return ref
}

// DecodeRecord parses a record envelope.
func DecodeRecord(env []byte) (*Record, error) {
	r := &recReader{buf: env}
	if r.u32() != recMagic || r.err != nil {
		return nil, errBadRecord
	}
	kind := r.take(1)
	if kind == nil {
		return nil, errBadRecord
	}
	rec := &Record{Kind: kind[0], RawLen: int(r.u64())}
	switch rec.Kind {
	case RecFull:
		n := r.u32()
		// Each ref is 36 bytes; reject counts the envelope cannot hold
		// before allocating.
		if r.err != nil || uint64(n)*36 > uint64(len(r.buf)) {
			return nil, errBadRecord
		}
		rec.Refs = make([]BlockRef, n)
		for i := range rec.Refs {
			rec.Refs[i] = r.ref()
		}
	case RecDelta:
		rec.Base = r.u64()
		rec.BaseLen = int(r.u64())
		n := r.u32()
		if r.err != nil || uint64(n)*40 > uint64(len(r.buf)) {
			return nil, errBadRecord
		}
		rec.Deltas = make([]DeltaRef, n)
		for i := range rec.Deltas {
			rec.Deltas[i].Index = r.u32()
			rec.Deltas[i].Ref = r.ref()
		}
	default:
		return nil, errBadRecord
	}
	if r.err != nil || len(r.buf) != 0 {
		return nil, errBadRecord
	}
	return rec, nil
}

// RecordRefs returns every block reference of a record envelope (for
// refcounting and mark-sweep GC) without the caller caring about its kind.
func RecordRefs(env []byte) ([]BlockRef, error) {
	rec, err := DecodeRecord(env)
	if err != nil {
		return nil, err
	}
	if rec.Kind == RecFull {
		return rec.Refs, nil
	}
	refs := make([]BlockRef, len(rec.Deltas))
	for i, d := range rec.Deltas {
		refs[i] = d.Ref
	}
	return refs, nil
}

// SplitBlocks cuts a raw image into DeltaBlockSize blocks (the last one may
// be short). The returned slices alias raw.
func SplitBlocks(raw []byte) [][]byte {
	n := (len(raw) + DeltaBlockSize - 1) / DeltaBlockSize
	out := make([][]byte, 0, n)
	for lo := 0; lo < len(raw); lo += DeltaBlockSize {
		hi := min(lo+DeltaBlockSize, len(raw))
		out = append(out, raw[lo:hi])
	}
	return out
}

// ChunkedBackend is the optional Backend extension the incremental pipeline
// targets: record envelopes travel through the ordinary (app, rank, n) image
// slots, while block contents live in a shared content-addressed store.
//
// Block data passed to PutRecord is only guaranteed valid for the duration
// of the call; implementations that retain blocks asynchronously must copy.
// GetBlock may return internal storage; callers treat blocks as read-only.
type ChunkedBackend interface {
	Backend
	// PutRecord stores checkpoint n of (app, rank) as a record envelope
	// plus the (new) blocks it references. Blocks already present under
	// their content address may be skipped by the implementation.
	PutRecord(app wire.AppID, rank wire.Rank, n uint64, env []byte, blocks []RecBlock, meta *Meta) error
	// GetBlock fetches one content-addressed block. app/rank are a
	// locality hint (which replica set to ask), not part of the address.
	GetBlock(app wire.AppID, rank wire.Rank, ref BlockRef) ([]byte, error)
}

// RecordResolver is implemented by backends that can reconstruct the raw
// image behind a record chain themselves (e.g. the replicated memory store,
// which materializes chains eagerly as deltas arrive). Pipeline.Get prefers
// it over the generic block-by-block walk.
type RecordResolver interface {
	ResolveRecord(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error)
}

// EnvelopeGetter is implemented by backends whose Get resolves record
// envelopes into raw images (the replicated memory store). GetEnvelope
// returns the stored slot bytes verbatim, which chain walkers — GC clamping,
// ResolveChain's link walk — need: they must see the envelope links, not the
// images behind them.
type EnvelopeGetter interface {
	GetEnvelope(app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error)
}

// envelopeGet reads slot n's stored bytes without record resolution,
// whichever way the backend offers that.
func envelopeGet(be ChunkedBackend, app wire.AppID, rank wire.Rank, n uint64) ([]byte, *Meta, error) {
	if eg, ok := be.(EnvelopeGetter); ok {
		return eg.GetEnvelope(app, rank, n)
	}
	return be.Get(app, rank, n)
}
