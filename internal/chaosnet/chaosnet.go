// Package chaosnet is a fault-injecting decorator around any vni.Transport.
//
// Starfish's claims are about surviving failures, so the transport the test
// harness runs on must be able to misbehave on demand: drop, delay, or
// duplicate messages on individual links, reset live connections, refuse
// dials, and partition the network asymmetrically or symmetrically — and do
// all of it reproducibly. chaosnet wraps an inner transport (fastnet or tcp)
// and applies a scripted fault plan driven by a deterministic PRNG: the
// fault decision for the i-th message crossing a directed link is a pure
// function of (seed, source node, destination address, direction, i),
// independent of wall-clock time and goroutine scheduling. Two runs with the
// same seed therefore agree byte-for-byte on every common prefix of each
// link's decision stream, and a recorded stream can be re-derived offline
// with Replay.
//
// Identity model: Transport.Dial alone does not reveal who is dialing, so a
// chaos net hands out one facade per node — Net.Node("n3") returns a
// vni.Transport whose dials are attributed to source node "n3". The
// destination node is derived from the dialed address by Config.NodeOf
// (for example "gcs-node5" → "n5"). Faults are keyed by directed node pair;
// an optional Config.ClassOf lets a script target only one traffic class
// (for example every "gcs" link) without enumerating pairs.
//
// Fault application sites: every connection has exactly one dial side, and
// both directions of the link are policed there. Outbound faults
// (src → dst) are applied in Send; inbound faults (dst → src) are applied
// in Recv, before the message is surfaced. Accept-side connections pass
// through untouched, so wrapping the dial side covers every message on the
// link exactly once. A delayed message sleeps in place, which preserves
// per-link FIFO order and applies sender/poller backpressure the way a
// congested link would. A partition surfaces as an error on Send and Dial
// (the way a kernel TCP path surfaces a timed-out write) and silently
// discards messages already in flight toward the dialer.
package chaosnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// ErrPartitioned is returned by Send and Dial across a partitioned link.
var ErrPartitioned = errors.New("chaosnet: link partitioned")

// ErrDialKilled is returned by Dial when dials to the target node have been
// killed with KillDialsTo.
var ErrDialKilled = errors.New("chaosnet: dials to node killed")

// Fault-decision bits recorded in a link's trace, one byte per message.
const (
	FDrop  byte = 1 << iota // message discarded
	FDup                    // message delivered twice
	FDelay                  // message delayed by Faults.Delay
)

// Faults are the probabilistic fault rates of one directed link.
type Faults struct {
	Drop      float64       // probability a message is discarded
	Dup       float64       // probability a message is delivered twice
	DelayProb float64       // probability a message is delayed
	Delay     time.Duration // added latency when a message is delayed
}

// Config customizes a chaos net.
type Config struct {
	// NodeOf maps a transport address to the node that owns it, so faults
	// can be keyed by node pair rather than by individual listener. Nil
	// treats every address as its own node.
	NodeOf func(addr string) string
	// ClassOf maps a transport address to a traffic class ("gcs",
	// "rstore", "data", ...) for SetClassFaults. Nil maps everything to "".
	ClassOf func(addr string) string
	// TraceCap bounds the per-link decision trace (<=0 selects 65536).
	TraceCap int
}

// Stats counts injected faults since the net was created.
type Stats struct {
	Messages       uint64 // fault decisions made (messages seen)
	Drops          uint64 // messages discarded by Faults.Drop
	Dups           uint64 // messages duplicated by Faults.Dup
	Delays         uint64 // messages delayed by Faults.DelayProb
	PartitionDrops uint64 // sends/receives suppressed by a partition
	DialsBlocked   uint64 // dials refused by a partition
	DialsKilled    uint64 // dials refused by KillDialsTo
	Resets         uint64 // connections closed by ResetLink
}

// StreamID names one directed decision stream: messages sent by node Src
// over the connection it dialed to Addr. Inbound selects the reverse
// direction (messages arriving at Src from Addr).
type StreamID struct {
	Src     string
	Addr    string
	Inbound bool
}

func (id StreamID) String() string {
	if id.Inbound {
		return fmt.Sprintf("%s<-%s", id.Src, id.Addr)
	}
	return fmt.Sprintf("%s->%s", id.Src, id.Addr)
}

type link struct{ src, dst string }

// stream is one directed link's decision state: a seed derived from
// (net seed, stream id), the next message index, and the recorded trace.
type stream struct {
	mu   sync.Mutex
	seed uint64
	n    uint64
	rec  []byte
	cap  int
}

// next draws the decision byte for this stream's next message and records
// it in the bounded trace. Pure in (seed, index, rates) modulo the trace
// append, so a recorded trace replays exactly.
//
//starfish:deterministic
func (s *stream) next(f Faults) byte {
	s.mu.Lock()
	b := decideAt(s.seed, s.n, f)
	s.n++
	if len(s.rec) < s.cap {
		s.rec = append(s.rec, b)
	}
	s.mu.Unlock()
	return b
}

// Controller is the runtime control surface of a chaos net: it owns the
// fault plan (link/class/default fault rates, partitions, killed dials),
// the live-connection registry, and the per-link decision streams.
type Controller struct {
	seed    int64
	inner   vni.Transport
	nodeOf  func(string) string
	classOf func(string) string
	trcCap  int

	mu          sync.Mutex
	events      evstore.Sink
	defFaults   Faults
	classFaults map[string]Faults
	linkFaults  map[link]Faults
	blocked     map[link]bool // directed partitions
	killDials   map[string]bool
	conns       map[*conn]struct{}
	streams     map[StreamID]*stream
	timers      []*time.Timer

	messages, drops, dups, delays atomic.Uint64
	partDrops, dialsBlocked       atomic.Uint64
	dialsKilled, resets           atomic.Uint64
}

// Net is a fault-injecting vni.Transport. The Net itself attributes dials
// to the anonymous source node ""; use Node to obtain per-node facades.
type Net struct {
	ctl *Controller
}

// New wraps inner in a chaos net seeded with seed. The zero Config is
// valid: every address is its own node and no faults are injected until
// the Controller is told otherwise.
func New(inner vni.Transport, seed int64, cfg Config) *Net {
	nodeOf := cfg.NodeOf
	if nodeOf == nil {
		nodeOf = func(addr string) string { return addr }
	}
	classOf := cfg.ClassOf
	if classOf == nil {
		classOf = func(string) string { return "" }
	}
	cap := cfg.TraceCap
	if cap <= 0 {
		cap = 1 << 16
	}
	return &Net{ctl: &Controller{
		seed:        seed,
		inner:       inner,
		nodeOf:      nodeOf,
		classOf:     classOf,
		trcCap:      cap,
		classFaults: make(map[string]Faults),
		linkFaults:  make(map[link]Faults),
		blocked:     make(map[link]bool),
		killDials:   make(map[string]bool),
		conns:       make(map[*conn]struct{}),
		streams:     make(map[StreamID]*stream),
	}}
}

// Controller returns the net's runtime control surface.
func (n *Net) Controller() *Controller { return n.ctl }

// Seed returns the seed the net was created with.
func (n *Net) Seed() int64 { return n.ctl.seed }

// Name identifies the transport in diagnostics.
func (n *Net) Name() string { return "chaos+" + n.ctl.inner.Name() }

// Listen passes through to the inner transport: inbound connections are
// policed by their dial-side wrapper, not here.
func (n *Net) Listen(addr string) (vni.Listener, error) { return n.ctl.inner.Listen(addr) }

// Dial connects as the anonymous node "".
func (n *Net) Dial(addr string) (vni.Conn, error) { return n.ctl.dialFrom("", addr) }

// Node returns a vni.Transport facade whose dials are attributed to the
// named source node. Facades share the net's fault plan and streams.
func (n *Net) Node(name string) vni.Transport { return &nodeTr{ctl: n.ctl, src: name} }

type nodeTr struct {
	ctl *Controller
	src string
}

func (t *nodeTr) Name() string                             { return "chaos+" + t.ctl.inner.Name() }
func (t *nodeTr) Listen(addr string) (vni.Listener, error) { return t.ctl.inner.Listen(addr) }
func (t *nodeTr) Dial(addr string) (vni.Conn, error)       { return t.ctl.dialFrom(t.src, addr) }

func (c *Controller) dialFrom(src, addr string) (vni.Conn, error) {
	dst := c.nodeOf(addr)
	c.mu.Lock()
	killed := c.killDials[dst]
	blocked := c.blocked[link{src, dst}] || c.blocked[link{dst, src}]
	c.mu.Unlock()
	if killed {
		c.dialsKilled.Add(1)
		return nil, ErrDialKilled
	}
	if blocked {
		// A TCP handshake needs both directions, so a partition in either
		// one fails the dial.
		c.dialsBlocked.Add(1)
		return nil, ErrPartitioned
	}
	inner, err := c.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	cn := &conn{
		ctl:     c,
		inner:   inner,
		srcNode: src,
		dstNode: dst,
		class:   c.classOf(addr),
		out:     c.stream(StreamID{Src: src, Addr: addr}),
		in:      c.stream(StreamID{Src: src, Addr: addr, Inbound: true}),
	}
	c.mu.Lock()
	c.conns[cn] = struct{}{}
	c.mu.Unlock()
	return cn, nil
}

// stream returns the decision stream for id, creating it on first use.
// Streams outlive connections: a re-dialed link continues its indices.
func (c *Controller) stream(id StreamID) *stream {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.streams[id]
	if s == nil {
		s = &stream{seed: streamSeed(c.seed, id), cap: c.trcCap}
		c.streams[id] = s
	}
	return s
}

// faultsFor resolves the fault rates for the directed link src→dst of the
// given class: a per-link override wins, then a class override, then the
// default.
func (c *Controller) faultsFor(src, dst, class string) Faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.linkFaults[link{src, dst}]; ok {
		return f
	}
	if f, ok := c.classFaults[class]; ok {
		return f
	}
	return c.defFaults
}

func (c *Controller) linkBlocked(src, dst string) bool {
	c.mu.Lock()
	b := c.blocked[link{src, dst}]
	c.mu.Unlock()
	return b
}

// SetDefaultFaults applies f to every link without a more specific rule.
func (c *Controller) SetDefaultFaults(f Faults) {
	c.mu.Lock()
	c.defFaults = f
	c.mu.Unlock()
	c.event(faultsEvent("default", "", f))
}

// SetEvents wires a structured-record sink (component "chaosnet" by the
// daemon's tagging convention): every control operation and every injected
// fault is recorded, so chaos assertions can query what was actually done
// to the network rather than re-deriving it from seeds.
func (c *Controller) SetEvents(s evstore.Sink) {
	c.mu.Lock()
	c.events = s
	c.mu.Unlock()
}

// event forwards one record to the configured sink, outside c.mu (the
// sink is non-blocking by contract but may take its own locks).
func (c *Controller) event(r evstore.Record) {
	c.mu.Lock()
	s := c.events
	c.mu.Unlock()
	if s != nil {
		s.Emit(r)
	}
}

// faultEvent records one fired probabilistic fault on the src→dst link.
func (c *Controller) faultEvent(kind, src, dst, class string) {
	c.event(evstore.Ev(kind,
		evstore.F("src", src), evstore.F("dst", dst), evstore.F("class", class)))
}

// faultsEvent summarizes one fault-rule change.
func faultsEvent(scope, at string, f Faults) evstore.Record {
	kv := []evstore.KV{evstore.F("scope", scope)}
	if at != "" {
		kv = append(kv, evstore.F("at", at))
	}
	kv = append(kv,
		evstore.F("drop", f.Drop), evstore.F("dup", f.Dup),
		evstore.F("delayp", f.DelayProb), evstore.F("delay", f.Delay))
	return evstore.Ev("set-faults", kv...)
}

// SetClassFaults applies f to every link whose dialed address is of the
// given class (per Config.ClassOf) and has no per-link override.
func (c *Controller) SetClassFaults(class string, f Faults) {
	c.mu.Lock()
	c.classFaults[class] = f
	c.mu.Unlock()
	c.event(faultsEvent("class", class, f))
}

// SetLinkFaults applies f to the directed node link src→dst, overriding
// class and default rules.
func (c *Controller) SetLinkFaults(src, dst string, f Faults) {
	c.mu.Lock()
	c.linkFaults[link{src, dst}] = f
	c.mu.Unlock()
	c.event(faultsEvent("link", src+">"+dst, f))
}

// ClearFaults removes every probabilistic fault rule (partitions and
// killed dials are unaffected; see Heal and AllowDialsTo).
func (c *Controller) ClearFaults() {
	c.mu.Lock()
	c.defFaults = Faults{}
	c.classFaults = make(map[string]Faults)
	c.linkFaults = make(map[link]Faults)
	c.mu.Unlock()
	c.event(evstore.Ev("clear-faults"))
}

// Partition symmetrically cuts the links between nodes a and b: sends and
// dials in both directions fail, in-flight traffic is discarded.
func (c *Controller) Partition(a, b string) {
	c.mu.Lock()
	c.blocked[link{a, b}] = true
	c.blocked[link{b, a}] = true
	c.mu.Unlock()
	c.event(evstore.Ev("partition", evstore.F("a", a), evstore.F("b", b)))
}

// PartitionOneWay cuts only the direction src→dst (an asymmetric failure:
// dst still reaches src). Dials between the two nodes fail either way,
// since a connection handshake needs both directions.
func (c *Controller) PartitionOneWay(src, dst string) {
	c.mu.Lock()
	c.blocked[link{src, dst}] = true
	c.mu.Unlock()
	c.event(evstore.Ev("partition-oneway", evstore.F("src", src), evstore.F("dst", dst)))
}

// Heal removes every partition.
func (c *Controller) Heal() {
	c.mu.Lock()
	c.blocked = make(map[link]bool)
	c.mu.Unlock()
	c.event(evstore.Ev("heal"))
}

// KillDialsTo makes every dial to the node fail until AllowDialsTo.
// Established connections are unaffected; combine with ResetLink to force
// reconnect storms.
func (c *Controller) KillDialsTo(node string) {
	c.mu.Lock()
	c.killDials[node] = true
	c.mu.Unlock()
	c.event(evstore.Ev("kill-dials", evstore.F("node", node)))
}

// AllowDialsTo re-enables dials to the node.
func (c *Controller) AllowDialsTo(node string) {
	c.mu.Lock()
	delete(c.killDials, node)
	c.mu.Unlock()
	c.event(evstore.Ev("allow-dials", evstore.F("node", node)))
}

// ResetLink closes every live connection between nodes a and b (either
// dial direction), returning how many were reset. Both endpoints observe
// a connection error, as after a TCP RST.
func (c *Controller) ResetLink(a, b string) int {
	c.mu.Lock()
	var victims []*conn
	for cn := range c.conns {
		if (cn.srcNode == a && cn.dstNode == b) || (cn.srcNode == b && cn.dstNode == a) {
			victims = append(victims, cn)
		}
	}
	c.mu.Unlock()
	for _, cn := range victims {
		cn.Close()
		c.resets.Add(1)
	}
	c.event(evstore.Ev("reset-link",
		evstore.F("a", a), evstore.F("b", b), evstore.F("conns", len(victims))))
	return len(victims)
}

// ResetLinkAfter schedules a one-shot ResetLink(a, b) after d.
func (c *Controller) ResetLinkAfter(a, b string, d time.Duration) {
	t := time.AfterFunc(d, func() { c.ResetLink(a, b) })
	c.mu.Lock()
	c.timers = append(c.timers, t)
	c.mu.Unlock()
}

// Close stops pending timers. Live connections are left to their owners.
func (c *Controller) Close() {
	c.mu.Lock()
	timers := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// Stats snapshots the injected-fault counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Messages:       c.messages.Load(),
		Drops:          c.drops.Load(),
		Dups:           c.dups.Load(),
		Delays:         c.delays.Load(),
		PartitionDrops: c.partDrops.Load(),
		DialsBlocked:   c.dialsBlocked.Load(),
		DialsKilled:    c.dialsKilled.Load(),
		Resets:         c.resets.Load(),
	}
}

// Streams lists every decision stream that has made at least one decision,
// in a stable order.
func (c *Controller) Streams() []StreamID {
	c.mu.Lock()
	ids := make([]StreamID, 0, len(c.streams))
	for id, s := range c.streams {
		s.mu.Lock()
		n := s.n
		s.mu.Unlock()
		if n > 0 {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	return ids
}

// Trace returns a copy of the recorded decision bytes of one stream (one
// byte per message, FDrop|FDup|FDelay bits), capped at Config.TraceCap.
func (c *Controller) Trace(id StreamID) []byte {
	c.mu.Lock()
	s := c.streams[id]
	c.mu.Unlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.rec...)
}

// conn is the dial-side wrapper policing both directions of one link.
type conn struct {
	ctl     *Controller
	inner   vni.Conn
	srcNode string
	dstNode string
	class   string
	out, in *stream

	sendMu sync.Mutex
	recvMu sync.Mutex
	// heldDup is a duplicated inbound message surfaced by the next Recv.
	heldDup *wire.Msg

	closeOnce sync.Once
}

func (c *conn) Send(m *wire.Msg) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.ctl.linkBlocked(c.srcNode, c.dstNode) {
		c.ctl.partDrops.Add(1)
		return ErrPartitioned
	}
	f := c.ctl.faultsFor(c.srcNode, c.dstNode, c.class)
	d := c.out.next(f)
	c.ctl.messages.Add(1)
	if d&FDrop != 0 {
		// The wire ate it: mimic a successful send's ownership transfer so
		// the caller behaves exactly as if the message had gone out (pooled
		// payloads recycle, non-pooled buffers stay with the caller).
		c.ctl.drops.Add(1)
		c.ctl.faultEvent("drop", c.srcNode, c.dstNode, c.class)
		if m.Pooled {
			m.Release()
		}
		return nil
	}
	if d&FDelay != 0 {
		c.ctl.delays.Add(1)
		c.ctl.faultEvent("delay", c.srcNode, c.dstNode, c.class)
		//starfish:allow lockcheck injected latency must delay subsequent sends too — holding sendMu through the sleep is the fault model
		time.Sleep(f.Delay)
	}
	if d&FDup != 0 {
		dup := m.Clone()
		if err := c.inner.Send(m); err != nil {
			return err
		}
		c.ctl.dups.Add(1)
		c.ctl.faultEvent("dup", c.srcNode, c.dstNode, c.class)
		//starfish:allow errdrop the duplicate is injected noise; losing it just means the duplication fault did not fire
		_ = c.inner.Send(&dup)
		return nil
	}
	return c.inner.Send(m)
}

func (c *conn) Recv() (wire.Msg, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.heldDup != nil {
		m := *c.heldDup
		c.heldDup = nil
		return m, nil
	}
	for {
		m, err := c.inner.Recv()
		if err != nil {
			return m, err
		}
		if c.ctl.linkBlocked(c.dstNode, c.srcNode) {
			// In-flight traffic crossing a partition vanishes.
			c.ctl.partDrops.Add(1)
			m.Release()
			continue
		}
		f := c.ctl.faultsFor(c.dstNode, c.srcNode, c.class)
		d := c.in.next(f)
		c.ctl.messages.Add(1)
		if d&FDrop != 0 {
			c.ctl.drops.Add(1)
			c.ctl.faultEvent("drop", c.dstNode, c.srcNode, c.class)
			m.Release()
			continue
		}
		if d&FDelay != 0 {
			c.ctl.delays.Add(1)
			c.ctl.faultEvent("delay", c.dstNode, c.srcNode, c.class)
			//starfish:allow lockcheck injected latency must stall the receive stream in order — holding recvMu through the sleep is the fault model
			time.Sleep(f.Delay)
		}
		if d&FDup != 0 {
			c.ctl.dups.Add(1)
			c.ctl.faultEvent("dup", c.dstNode, c.srcNode, c.class)
			cp := m.Clone()
			c.heldDup = &cp
		}
		return m, nil
	}
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.ctl.mu.Lock()
		delete(c.ctl.conns, c)
		c.ctl.mu.Unlock()
	})
	return c.inner.Close()
}

func (c *conn) RemoteAddr() string { return c.inner.RemoteAddr() }

// --- deterministic decision PRNG -----------------------------------------

// Replay recomputes the first n decision bytes of a stream from scratch:
// the pure function of (seed, stream id, index, fault rates) that the live
// path also uses. A recorded Trace must equal Replay over its length as
// long as the stream's fault rates were constant while it ran.
//
//starfish:deterministic
func Replay(seed int64, id StreamID, n int, f Faults) []byte {
	s := streamSeed(seed, id)
	out := make([]byte, n)
	for i := range out {
		out[i] = decideAt(s, uint64(i), f)
	}
	return out
}

// streamSeed derives a stream's PRNG seed from the net seed and the stream
// identity via FNV-1a over a canonical encoding.
//
//starfish:deterministic
func streamSeed(seed int64, id StreamID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
	}
	for i := 0; i < len(id.Src); i++ {
		mix(id.Src[i])
	}
	mix(0)
	for i := 0; i < len(id.Addr); i++ {
		mix(id.Addr[i])
	}
	mix(0)
	if id.Inbound {
		mix(1)
	} else {
		mix(2)
	}
	return h
}

// decideAt computes the decision byte for message i of a stream: three
// chained splitmix64 draws compared against the configured rates.
//
//starfish:deterministic
func decideAt(streamSeed, i uint64, f Faults) byte {
	r := splitmix64(streamSeed ^ (i+1)*0x9E3779B97F4A7C15)
	var b byte
	if f.Drop > 0 && u01(r) < f.Drop {
		b |= FDrop
	}
	r = splitmix64(r)
	if f.Dup > 0 && u01(r) < f.Dup {
		b |= FDup
	}
	r = splitmix64(r)
	if f.DelayProb > 0 && u01(r) < f.DelayProb {
		b |= FDelay
	}
	return b
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// u01 maps a 64-bit draw to [0, 1) with 53 bits of precision.
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }
