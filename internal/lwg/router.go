package lwg

import (
	"errors"
	"sort"
	"sync"
	"time"

	"starfish/internal/evstore"
	"starfish/internal/gcs"
	"starfish/internal/vni"
	"starfish/internal/wire"
)

// ErrNoGroup is returned by Cast when this node has no joined per-group
// stream for the app (yet); the caller falls back to the main-group path.
var ErrNoGroup = errors.New("lwg: no per-group stream for app")

// GroupEvent is one event from a per-group sequencer stream, tagged with
// the application and generation it belongs to.
type GroupEvent struct {
	App wire.AppID
	Gen uint32
	Ev  gcs.Event
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Self is this daemon's node id.
	Self wire.NodeID
	// Transport carries the per-group streams (the same network the main
	// group uses).
	Transport vni.Transport
	// GroupAddr returns this node's listen address for one group's
	// endpoint (the cluster harness uses "lwg-a<app>-g<gen>-n<node>"; TCP
	// deployments return an ephemeral host:0 — peers learn the concrete
	// address from the creator's announce).
	GroupAddr func(app wire.AppID, gen uint32) string
	// HeartbeatEvery/FailAfter tune each per-group engine (the engines run
	// with ExternalFD, so these only pace maintenance and the gap beacon).
	HeartbeatEvery time.Duration
	FailAfter      time.Duration
	// Events receives per-group sequencer records; the router stamps the
	// app id, the daemon passes its store's "lwg" emitter.
	Events evstore.Sink
	// Logf, if non-nil, receives debug lines.
	Logf func(format string, args ...any)
}

// groupSink stamps the owning app onto per-group engine records.
type groupSink struct {
	sink evstore.Sink
	app  wire.AppID
}

func (s *groupSink) Emit(r evstore.Record) {
	if s.sink == nil {
		return
	}
	if r.App == 0 {
		r.App = s.app
	}
	s.sink.Emit(r)
}

type groupKey struct {
	app wire.AppID
	gen uint32
}

type grp struct {
	app wire.AppID
	gen uint32
	// contact receives the creator's endpoint address (from its OpJoin
	// meta on the main stream); capacity 1, first value wins.
	contact chan string
	stop    chan struct{}
	// ep is set once this node's endpoint has joined (guarded by the
	// router mutex).
	ep *gcs.Endpoint
}

// Router runs one per-application gcs stream per (app, generation) this
// node hosts: scoped casts for disjoint apps ride independent sequencers
// instead of all ordering through the main group. Join/leave stay
// anchored in the main group — the Manager remains the membership
// authority — and failure verdicts flow in from the main group through
// ReportDead/ReportAlive (the per-group engines run no detector of their
// own).
//
// Formation handshake, per group: the deterministic creator (chosen from
// the group's sorted member set) joins first and only then announces its
// OpJoin on the main stream, carrying its endpoint address as the
// contact. The other members join through that contact and only then
// announce their own OpJoins. Because the daemon gates application start
// on *all* members' OpJoins, every member's stream endpoint exists before
// the first scoped cast — each cast travels exactly one path (group
// stream, or the main-group fallback when no stream formed), never both.
type Router struct {
	cfg RouterConfig

	mu     sync.Mutex
	grps   map[groupKey]*grp
	dead   map[wire.NodeID]bool // main-group verdicts for engines joined later
	closed bool

	out    chan GroupEvent
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewRouter creates a router; Close must be called to release its groups.
func NewRouter(cfg RouterConfig) *Router {
	// Mirror the gcs defaults so a zero-valued daemon config still gets a
	// sane formation timeout (50 heartbeat intervals).
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 25 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 8 * cfg.HeartbeatEvery
	}
	return &Router{
		cfg:    cfg,
		grps:   make(map[groupKey]*grp),
		dead:   make(map[wire.NodeID]bool),
		out:    make(chan GroupEvent, 64),
		stopCh: make(chan struct{}),
	}
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Events returns the merged stream of per-group events.
func (r *Router) Events() <-chan GroupEvent { return r.out }

// Creator returns the deterministic stream creator for a group: the
// member the app id hashes to, so coordinators of different apps spread
// across the cluster instead of piling onto the lowest id.
func Creator(app wire.AppID, nodes []wire.NodeID) wire.NodeID {
	sorted := append([]wire.NodeID(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(app)%len(sorted)]
}

// Ensure starts (idempotently) this node's endpoint for one group.
// announce is called exactly once the node is ready to publish its OpJoin
// on the main stream: with the endpoint address when this node created
// the stream, with the empty string otherwise (members and fallbacks).
// It runs on a router goroutine, after the local join completed, so an
// OpJoin on the main stream implies the sender's stream endpoint exists.
func (r *Router) Ensure(app wire.AppID, gen uint32, nodes []wire.NodeID, announce func(gcsAddr string)) {
	key := groupKey{app, gen}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, ok := r.grps[key]; ok {
		r.mu.Unlock()
		return
	}
	g := &grp{app: app, gen: gen, contact: make(chan string, 1), stop: make(chan struct{})}
	r.grps[key] = g
	r.mu.Unlock()

	r.wg.Add(1)
	go r.runGroup(g, Creator(app, nodes), announce)
}

// SetContact feeds the creator's announced endpoint address to a waiting
// group (first value wins; later duplicates are dropped).
func (r *Router) SetContact(app wire.AppID, gen uint32, addr string) {
	if addr == "" {
		return
	}
	r.mu.Lock()
	g := r.grps[groupKey{app, gen}]
	r.mu.Unlock()
	if g == nil {
		return
	}
	select {
	case g.contact <- addr:
	default:
	}
}

// Cast multicasts a scoped payload on the app's stream. ErrNoGroup (or a
// closed-endpoint error) tells the caller to fall back to the main-group
// OpCast path; the cast was not sent.
func (r *Router) Cast(app wire.AppID, gen uint32, payload []byte) error {
	r.mu.Lock()
	g := r.grps[groupKey{app, gen}]
	var ep *gcs.Endpoint
	if g != nil {
		ep = g.ep
	}
	r.mu.Unlock()
	if ep == nil {
		return ErrNoGroup
	}
	return ep.Cast(payload)
}

// ReportDead forwards a main-group failure verdict into every running
// per-group engine, and records it for engines that join later (a group
// forming while the main view changes must not miss the verdict).
func (r *Router) ReportDead(n wire.NodeID) {
	r.mu.Lock()
	r.dead[n] = true
	eps := r.endpoints()
	r.mu.Unlock()
	for _, ep := range eps {
		//starfish:allow errdrop verdict for a non-member or closed group is moot
		ep.ReportDead(n)
	}
}

// ReportAlive retracts a verdict (the main group re-admitted the node).
// Calling it for a node never reported dead is a cheap no-op, so the
// daemon may invoke it for every member of each new main view.
func (r *Router) ReportAlive(n wire.NodeID) {
	r.mu.Lock()
	if !r.dead[n] {
		r.mu.Unlock()
		return
	}
	delete(r.dead, n)
	eps := r.endpoints()
	r.mu.Unlock()
	for _, ep := range eps {
		//starfish:allow errdrop retraction for a closed group is moot
		ep.ReportAlive(n)
	}
}

// endpoints snapshots the joined endpoints; callers hold r.mu.
func (r *Router) endpoints() []*gcs.Endpoint {
	out := make([]*gcs.Endpoint, 0, len(r.grps))
	for _, g := range r.grps {
		if g.ep != nil {
			out = append(out, g.ep)
		}
	}
	return out
}

// Drop tears down every generation of one app's streams (app dissolved).
func (r *Router) Drop(app wire.AppID) {
	r.mu.Lock()
	for key, g := range r.grps {
		if key.app != app {
			continue
		}
		close(g.stop)
		delete(r.grps, key)
	}
	r.mu.Unlock()
}

// Close tears down all streams and, once their pumps exit, closes the
// event channel.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for key, g := range r.grps {
		close(g.stop)
		delete(r.grps, key)
	}
	r.mu.Unlock()
	close(r.stopCh)
	r.wg.Wait()
	close(r.out)
}

// runGroup is the lifecycle goroutine of one group endpoint: wait for the
// contact (members), join, apply tombstoned verdicts, announce, pump
// events.
func (r *Router) runGroup(g *grp, creator wire.NodeID, announce func(gcsAddr string)) {
	defer r.wg.Done()
	isCreator := creator == r.cfg.Self
	contact := ""
	announced := false
	if !isCreator {
		timer := time.NewTimer(50 * r.cfg.HeartbeatEvery)
		select {
		case contact = <-g.contact:
			timer.Stop()
		case <-timer.C:
			// The creator never announced (it likely crashed mid-formation,
			// which the main group's failure policy will handle). Announce
			// without a stream so membership can still form; casts fall
			// back to the main-group path on this node. If the contact
			// arrives late we still join below.
			r.logf("lwg: app %d gen %d: no contact from creator %d, falling back", g.app, g.gen, creator)
			announce("")
			announced = true
			select {
			case contact = <-g.contact:
			case <-g.stop:
				return
			case <-r.stopCh:
				return
			}
		case <-g.stop:
			return
		case <-r.stopCh:
			return
		}
	}

	ep, err := gcs.Join(gcs.Config{
		Node:           r.cfg.Self,
		Transport:      r.cfg.Transport,
		Addr:           r.cfg.GroupAddr(g.app, g.gen),
		Contact:        contact,
		HeartbeatEvery: r.cfg.HeartbeatEvery,
		FailAfter:      r.cfg.FailAfter,
		ExternalFD:     true,
		Events:         &groupSink{sink: r.cfg.Events, app: g.app},
	})
	if err != nil {
		r.logf("lwg: app %d gen %d: stream join failed: %v", g.app, g.gen, err)
		if !announced {
			announce("")
		}
		return
	}

	r.mu.Lock()
	if r.grps[groupKey{g.app, g.gen}] != g {
		// Dropped or closed while joining.
		r.mu.Unlock()
		ep.Close()
		return
	}
	g.ep = ep
	deads := make([]wire.NodeID, 0, len(r.dead))
	for n := range r.dead {
		deads = append(deads, n)
	}
	r.mu.Unlock()
	sort.Slice(deads, func(i, j int) bool { return deads[i] < deads[j] })
	for _, n := range deads {
		//starfish:allow errdrop verdict for a non-member is moot
		ep.ReportDead(n)
	}
	if !announced {
		if isCreator {
			announce(ep.Addr())
		} else {
			announce("")
		}
	}

	for {
		select {
		case ev, ok := <-ep.Events():
			if !ok {
				return
			}
			select {
			case r.out <- GroupEvent{App: g.app, Gen: g.gen, Ev: ev}:
			case <-g.stop:
				ep.Close()
				return
			case <-r.stopCh:
				ep.Close()
				return
			}
		case <-g.stop:
			ep.Close()
			return
		case <-r.stopCh:
			ep.Close()
			return
		}
	}
}
