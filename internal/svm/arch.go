// Package svm implements the Starfish virtual machine — the stand-in for
// the OCaml bytecode VM on which the paper's heterogeneous checkpointing
// (§4, [2]) operates.
//
// An SVM is a small stack machine whose complete state (code, stack, call
// stack, globals, heap, program counter) can be dumped and restored. Dumps
// are written in the *native representation* of the machine taking the
// checkpoint — its endianness and word length — with a concise tag saying
// what that representation is; at restart the image is converted to the
// representation of the restoring machine. That is exactly the mechanism
// of [2], and it is what lets a computation checkpointed on a little-endian
// 32-bit machine resume on a big-endian 64-bit one (Table 2).
package svm

import (
	"errors"
	"fmt"
)

// Endian is a serializable byte order.
type Endian uint8

// Byte orders.
const (
	LittleEndian Endian = 0
	BigEndian    Endian = 1
)

func (e Endian) String() string {
	if e == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Arch describes a machine's data representation: the properties that make
// heterogeneous checkpoint/restart hard (Table 2 of the paper).
type Arch struct {
	// Name of the machine type, e.g. "Intel P-II 350 MHz, i686".
	Name string
	// OS is the operating system the paper tested, for documentation.
	OS string
	// Order is the machine's byte order.
	Order Endian
	// WordBits is the machine word length: 32 or 64.
	WordBits int
}

// String renders the architecture like a Table-2 row.
func (a Arch) String() string {
	return fmt.Sprintf("%s / %s (%s, %d-bit)", a.Name, a.OS, a.Order, a.WordBits)
}

// Machines lists the six machine types of Table 2, all of which the
// heterogeneous C/R path is validated against (36 checkpoint/restart
// pairs in the test suite).
var Machines = []Arch{
	{Name: "Intel P-II 350 MHz, i686", OS: "RedHat 6.1 Linux", Order: LittleEndian, WordBits: 32},
	{Name: "Sun Ultra Enterprise 3000", OS: "SunOS 5.7", Order: BigEndian, WordBits: 32},
	{Name: "RS/6000", OS: "AIX 3.2", Order: BigEndian, WordBits: 32},
	{Name: "Intel P-I, 160 MHz", OS: "FreeBSD 3.2", Order: LittleEndian, WordBits: 32},
	{Name: "Intel P-II, 350 MHz", OS: "Win NT", Order: LittleEndian, WordBits: 32},
	{Name: "Dual Alpha DS20 500 MHz", OS: "RedHat 6.2 Linux", Order: LittleEndian, WordBits: 64},
}

// ErrWordOverflow is returned when restoring a 64-bit image on a 32-bit
// machine and some value does not fit the narrower word.
var ErrWordOverflow = errors.New("svm: value does not fit target word length")

// wordBytes returns the byte width of the architecture's word.
func (a Arch) wordBytes() int { return a.WordBits / 8 }

// wrap truncates v to the architecture's word length (two's complement),
// modelling native word arithmetic.
func (a Arch) wrap(v int64) int64 {
	if a.WordBits == 32 {
		return int64(int32(v))
	}
	return v
}

// fits reports whether v is representable in the architecture's word.
func (a Arch) fits(v int64) bool {
	if a.WordBits == 32 {
		return v >= -1<<31 && v < 1<<31
	}
	return true
}

// putWord appends v in this architecture's native representation.
func (a Arch) putWord(buf []byte, v int64) []byte {
	n := a.wordBytes()
	var tmp [8]byte
	u := uint64(v)
	if a.Order == LittleEndian {
		for i := 0; i < n; i++ {
			tmp[i] = byte(u >> (8 * i))
		}
	} else {
		for i := 0; i < n; i++ {
			tmp[n-1-i] = byte(u >> (8 * i))
		}
	}
	return append(buf, tmp[:n]...)
}

// getWord decodes one native word from buf, sign-extending to int64.
func (a Arch) getWord(buf []byte) (int64, error) {
	n := a.wordBytes()
	if len(buf) < n {
		return 0, errShortImage
	}
	var u uint64
	if a.Order == LittleEndian {
		for i := n - 1; i >= 0; i-- {
			u = u<<8 | uint64(buf[i])
		}
	} else {
		for i := 0; i < n; i++ {
			u = u<<8 | uint64(buf[i])
		}
	}
	if a.WordBits == 32 {
		return int64(int32(uint32(u))), nil
	}
	return int64(u), nil
}

// putU32 appends a 32-bit count in the architecture's byte order (metadata
// is also stored natively; the representation tag covers everything).
func (a Arch) putU32(buf []byte, v uint32) []byte {
	if a.Order == LittleEndian {
		return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// getU32 decodes a count written by putU32.
func (a Arch) getU32(buf []byte) (uint32, error) {
	if len(buf) < 4 {
		return 0, errShortImage
	}
	if a.Order == LittleEndian {
		return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
	}
	return uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]), nil
}
